// Shared helpers for the figure-reproduction binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/shutdown.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/export.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/uarch_campaign.hpp"

namespace restore::bench {

// Campaign exit statuses shared by every campaign-driving binary.
inline constexpr int kExitComplete = 0;
inline constexpr int kExitQuarantined = 3;  // partial: quarantined shards remain
inline constexpr int kExitStopped = 130;    // SIGINT/SIGTERM graceful shutdown

// Shared campaign plumbing for every campaign-driving binary: maps the
// --out-jsonl/--resume/--workers/--shard-trials/--max-shards/--heartbeat/
// --shard-retries/--retry-backoff-ms flags onto run options (workers default
// to hardware concurrency - 1), and arms graceful shutdown: the first
// SIGINT/SIGTERM lets in-flight shards finish and flushes the trace/manifest;
// a second one exits immediately.
inline faultinject::CampaignRunOptions campaign_options(const CliArgs& args) {
  install_shutdown_signal_handlers();
  auto opts =
      faultinject::campaign_options_from_cli(args, default_campaign_workers());
  opts.stop_flag = shutdown_flag();
  return opts;
}

// The per-trial containment budget requested on the command line
// (--trial-max-insns/-cycles/-pages/-bytes; all default to unlimited).
inline ResourceBudget cli_trial_budget(const CliArgs& args) {
  return resolve_campaign_cli(args).trial_budget;
}

// Post-run observability: a one-line summary on stderr (kept off stdout so
// figure output stays deterministic), every quarantined shard with its error,
// and, with --shard-stats PATH, the per-shard wall-time table as CSV.
// Returns the process exit status the binary should propagate: 0 for a
// complete campaign, kExitStopped after a graceful shutdown, kExitQuarantined
// when quarantined shards keep the campaign partial.
inline int report_campaign(const faultinject::CampaignTelemetry& telemetry,
                           const CliArgs& args) {
  const char* state = "";
  if (telemetry.stopped) {
    state = ", STOPPED: shutdown requested";
  } else if (!telemetry.quarantined.empty()) {
    state = ", PARTIAL: shards quarantined";
  } else if (!telemetry.complete) {
    state = ", INCOMPLETE: shard budget hit";
  }
  std::fprintf(stderr,
               "[campaign] %llu trials in %.0f ms (%llu resumed, %zu shards%s)\n",
               static_cast<unsigned long long>(telemetry.trials_total),
               telemetry.wall_ms,
               static_cast<unsigned long long>(telemetry.resumed_trials),
               telemetry.shards.size(), state);
  for (const auto& failure : telemetry.quarantined) {
    std::fprintf(stderr,
                 "[campaign] quarantined shard %llu (%s) after %llu attempts: %s\n",
                 static_cast<unsigned long long>(failure.shard),
                 failure.workload.c_str(),
                 static_cast<unsigned long long>(failure.attempts),
                 failure.error.c_str());
  }
  if (const auto path = resolve_campaign_cli(args).shard_stats) {
    faultinject::write_shard_stats_csv(*path, telemetry.shards);
    std::fprintf(stderr, "[campaign] wrote shard stats to %s\n", path->c_str());
  }
  if (telemetry.stopped) return kExitStopped;
  if (!telemetry.quarantined.empty()) return kExitQuarantined;
  return kExitComplete;
}

inline std::string latency_label(u64 edge) {
  if (edge == kNever) return "inf";
  if (edge >= 1000 && edge % 1000 == 0) return std::to_string(edge / 1000) + "k";
  return std::to_string(edge);
}

// Render the Figures 4-6 stacked-category table: one row per checkpoint
// interval, one column per Table 2 category (shares of all trials).
inline void print_uarch_category_table(
    const std::vector<faultinject::UarchTrialRecord>& trials,
    faultinject::DetectorModel detector, faultinject::ProtectionModel protection) {
  using faultinject::UarchOutcome;
  const auto categories = {UarchOutcome::kMasked,   UarchOutcome::kOther,
                           UarchOutcome::kLatent,   UarchOutcome::kSdc,
                           UarchOutcome::kCfv,      UarchOutcome::kException,
                           UarchOutcome::kDeadlock};
  std::vector<std::string> header = {"interval"};
  for (const auto category : categories) {
    header.emplace_back(to_string(category));
  }
  header.emplace_back("covered/failures");
  TextTable table(std::move(header));

  for (const u64 interval : checkpoint_interval_sweep()) {
    const auto shares =
        faultinject::category_shares(trials, detector, protection, interval);
    std::vector<std::string> row = {std::to_string(interval)};
    double covered = 0, failures = 0;
    for (const auto category : categories) {
      const auto it = shares.find(category);
      const double share = it == shares.end() ? 0.0 : it->second;
      row.push_back(TextTable::fmt_pct(share, 2));
      if (faultinject::is_covered(category)) covered += share;
      if (faultinject::is_failure(category)) failures += share;
    }
    row.push_back(failures > 0
                      ? TextTable::fmt_pct(covered / failures, 1)
                      : std::string("n/a"));
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);
}

}  // namespace restore::bench
