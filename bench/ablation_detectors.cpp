// Ablation: what does each symptom detector contribute, and what would better
// detectors buy? Reproduces three claims from §5.2.1:
//   * "a perfect confidence predictor would yield nearly twice the error
//     coverage" of the JRS-gated detector,
//   * "about a third of the control flow violations are of the illegal
//     variety [which] a control flow monitoring watchdog would capture",
//   * exceptions + the watchdog provide the bulk of the coverage.
//
// Usage: ablation_detectors [--trials N] [--seed S] [--interval N] [--workers N]
#include <cstdio>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/uarch_campaign.hpp"

using namespace restore;
using faultinject::DetectorModel;
using faultinject::ProtectionModel;

namespace {

struct Row {
  const char* name = nullptr;
  double uncovered = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const u64 interval = args.value_u64("interval", 100);

  faultinject::UarchCampaignConfig config;
  config.trials_per_workload = resolve_trial_count(args, 100);
  config.seed = resolve_seed(args, 0xAB1A);
  config.trial_budget = bench::cli_trial_budget(args);
  config.core_config.illegal_flow_watchdog = true;  // record kIllegalFlow events

  // This driver runs two campaigns in one process, so it shares the worker
  // pool sizing with the other binaries but never streams traces: one
  // --out-jsonl path cannot serve two campaign identities.
  auto opts = bench::campaign_options(args);
  opts.out_jsonl.clear();
  opts.resume = false;

  std::printf("=== Ablation: detector configurations (interval=%llu) ===\n\n",
              static_cast<unsigned long long>(interval));
  const auto with_jrs = run_uarch_campaign(config, opts);

  // A second campaign with a perfect confidence predictor (every mispredict
  // flagged high confidence).
  auto perfect_config = config;
  perfect_config.core_config.all_mispredicts_high_conf = true;
  const auto with_perfect_conf = run_uarch_campaign(perfect_config, opts);

  const double failures = faultinject::failure_fraction(with_jrs.trials);
  auto coverage = [&](const std::vector<faultinject::UarchTrialRecord>& trials,
                      DetectorModel detector) {
    const double base = faultinject::failure_fraction(trials);
    const double uncovered = faultinject::uncovered_fraction(
        trials, detector, ProtectionModel::kBaseline, interval);
    return base > 0 ? (base - uncovered) / base : 0.0;
  };

  // cfv-only coverage contributions (failures whose *only* covering symptom
  // is the control-flow detector).
  auto cfv_share = [&](const std::vector<faultinject::UarchTrialRecord>& trials,
                       DetectorModel detector) {
    const auto shares = faultinject::category_shares(trials, detector,
                                                     ProtectionModel::kBaseline,
                                                     interval);
    const auto it = shares.find(faultinject::UarchOutcome::kCfv);
    const double share = it == shares.end() ? 0.0 : it->second;
    const double base = faultinject::failure_fraction(trials);
    return base > 0 ? share / base : 0.0;
  };

  TextTable table({"detector configuration", "coverage of failures",
                   "cfv-covered share"});
  table.add_row({"exceptions + watchdog + JRS cfv (Fig. 5)",
                 TextTable::fmt_pct(coverage(with_jrs.trials,
                                             DetectorModel::kJrsConfidence), 1),
                 TextTable::fmt_pct(cfv_share(with_jrs.trials,
                                              DetectorModel::kJrsConfidence), 1)});
  table.add_row({"... + illegal-flow watchdog (sec. 5.2.1)",
                 TextTable::fmt_pct(coverage(with_jrs.trials,
                                             DetectorModel::kJrsPlusIllegalFlow), 1),
                 TextTable::fmt_pct(cfv_share(with_jrs.trials,
                                              DetectorModel::kJrsPlusIllegalFlow), 1)});
  table.add_row({"perfect confidence predictor (sec. 5.2.1)",
                 TextTable::fmt_pct(coverage(with_perfect_conf.trials,
                                             DetectorModel::kJrsConfidence), 1),
                 TextTable::fmt_pct(cfv_share(with_perfect_conf.trials,
                                              DetectorModel::kJrsConfidence), 1)});
  table.add_row({"perfect cfv identification (Fig. 4)",
                 TextTable::fmt_pct(coverage(with_jrs.trials,
                                             DetectorModel::kPerfectCfv), 1),
                 TextTable::fmt_pct(cfv_share(with_jrs.trials,
                                              DetectorModel::kPerfectCfv), 1)});
  std::fputs(table.render().c_str(), stdout);

  u64 flow_fired = 0, flow_fired_failing = 0;
  for (const auto& t : with_jrs.trials) {
    if (t.lat_illegal_flow == kNever) continue;
    ++flow_fired;
    if (t.arch_corrupt_at_end || t.lat_exception != kNever ||
        t.lat_deadlock != kNever || t.lat_cfv != kNever) {
      ++flow_fired_failing;
    }
  }
  std::printf("\nillegal-flow watchdog fired in %llu trials (%llu failing) — in\n"
              "this model the failing ones are also exception-covered, so the\n"
              "watchdog's added coverage is the *illegal* cfv residue only,\n"
              "as §5.2.1 predicts.\n",
              static_cast<unsigned long long>(flow_fired),
              static_cast<unsigned long long>(flow_fired_failing));
  std::printf("\nbaseline failure probability: %s (%zu trials)\n",
              TextTable::fmt_pct(failures, 1).c_str(), with_jrs.trials.size());
  std::printf("paper: JRS cfv covers ~5%% of failures; a perfect confidence\n"
              "predictor would nearly double that; an illegal-flow watchdog\n"
              "captures the ~1/3 of cfv that are illegal transfers.\n");
  return 0;
}
