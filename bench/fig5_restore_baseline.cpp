// Figure 5 — "ReStore coverage vs. checkpoint latency in the baseline
// pipeline" (paper §5.2.1): the realistic detector configuration, where
// control-flow symptoms are gated by the JRS confidence predictor. Control
// flow violations that the confidence predictor misses fall into `sdc`.
//
// Usage: fig5_restore_baseline [--trials N] [--seed S] [--out-jsonl PATH]
//                              [--resume] [--workers N] [--shard-trials N]
//                              [--heartbeat N] [--shard-stats PATH]
#include <cstdio>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/export.hpp"
#include "faultinject/uarch_campaign.hpp"

using namespace restore;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  faultinject::UarchCampaignConfig config;
  config.trials_per_workload = resolve_trial_count(args, 150);
  config.seed = resolve_seed(args, 0xC0FE);
  config.trial_budget = bench::cli_trial_budget(args);

  std::printf("=== Figure 5: ReStore coverage, baseline pipeline ===\n");
  std::printf(
      "detectors: ISA exceptions + JRS high-confidence mispredictions + watchdog\n\n");

  faultinject::CampaignTelemetry telemetry;
  const auto result = run_uarch_campaign(config, bench::campaign_options(args), &telemetry);
  const int status = bench::report_campaign(telemetry, args);
  std::printf("trials: %zu\n\n", result.trials.size());
  if (const auto csv = args.value("csv")) {
    faultinject::write_uarch_trials_csv(*csv, result.trials);
    std::printf("wrote per-trial data to %s\n\n", csv->c_str());
  }

  bench::print_uarch_category_table(result.trials,
                                    faultinject::DetectorModel::kJrsConfidence,
                                    faultinject::ProtectionModel::kBaseline);

  const double failures = faultinject::failure_fraction(result.trials);
  const double uncovered_100 = faultinject::uncovered_fraction(
      result.trials, faultinject::DetectorModel::kJrsConfidence,
      faultinject::ProtectionModel::kBaseline, 100);
  const auto shares_100 = faultinject::category_shares(
      result.trials, faultinject::DetectorModel::kJrsConfidence,
      faultinject::ProtectionModel::kBaseline, 100);
  const auto cfv_it = shares_100.find(faultinject::UarchOutcome::kCfv);
  const double cfv = cfv_it == shares_100.end() ? 0.0 : cfv_it->second;

  std::printf("\nsummary (100-insn checkpoint interval):\n");
  std::printf("  baseline failure probability:      %s  (paper: ~7%%)\n",
              TextTable::fmt_pct(failures, 1).c_str());
  std::printf("  failures slipping past ReStore:    %s  (paper: ~3.5%%)\n",
              TextTable::fmt_pct(uncovered_100, 1).c_str());
  if (failures > 0) {
    std::printf("  JRS-gated cfv coverage:            %s of failures (paper: ~5%%)\n",
                TextTable::fmt_pct(cfv / failures, 1).c_str());
  }
  std::printf("  MTBF improvement vs baseline:      %.2fx  (paper: ~2x)\n",
              faultinject::mtbf_improvement(result.trials,
                                            faultinject::DetectorModel::kJrsConfidence,
                                            faultinject::ProtectionModel::kBaseline,
                                            100));
  return status;
}
