// Figure 4 — "Propagation of soft errors vs. checkpoint latency" (paper
// §5.1.1) and the §5.1.2 latch-only study (--latches-only), with Table 2's
// categories and perfect identification of control-flow violations.
//
// Usage: fig4_uarch_all_state [--trials N] [--seed S] [--latches-only]
//                             [--fault-model single|multi|burst|set|targeted|rate]
//                             [--fault-bits K] [--burst-entries N]
//                             [--fault-target load|store] [--vdd-mv MV]
//                             [--freq-mhz MHZ] [--upset-ppm PPM]
//                             [--out-jsonl PATH] [--resume] [--workers N]
//                             [--shard-trials N] [--heartbeat N] [--shard-stats PATH]
//        Expanded fault models (fault_model.hpp) change how each trial's bits
//        are chosen/flipped; the default single-bit model keeps the campaign
//        byte-identical to its historical traces.
#include <cstdio>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/uarch_campaign.hpp"

using namespace restore;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  faultinject::UarchCampaignConfig config;
  config.trials_per_workload = resolve_trial_count(args, 150);
  config.seed = resolve_seed(args, 0xC0FE);
  config.latches_only = args.has_flag("latches-only");
  config.trial_budget = bench::cli_trial_budget(args);
  config.fault_model = faultinject::fault_model_from_cli(args);

  std::printf("=== Figure 4: microarchitectural fault injection, %s ===\n",
              config.latches_only ? "pipeline latches only (sec. 5.1.2)"
                                  : "all eligible state");
  if (!faultinject::is_default_fault_model(config.fault_model)) {
    std::printf("expanded fault model: %s (%s)\n",
                std::string(to_string(config.fault_model.model)).c_str(),
                faultinject::fault_model_identity_key(config.fault_model).c_str());
  }
  std::printf("detector model: perfect exception + control-flow identification\n");
  std::printf("monitored %llu cycles/trial; %llu trials/workload\n\n",
              static_cast<unsigned long long>(config.monitor_cycles),
              static_cast<unsigned long long>(config.trials_per_workload));

  faultinject::CampaignTelemetry telemetry;
  const auto result = run_uarch_campaign(config, bench::campaign_options(args), &telemetry);
  const int status = bench::report_campaign(telemetry, args);
  std::printf("eligible state bits: %llu (paper's model: ~46,000)\n",
              static_cast<unsigned long long>(result.eligible_bits));
  std::printf("trials: %zu\n\n", result.trials.size());

  bench::print_uarch_category_table(result.trials,
                                    faultinject::DetectorModel::kPerfectCfv,
                                    faultinject::ProtectionModel::kBaseline);

  const double failures = faultinject::failure_fraction(result.trials);
  std::printf("\nsummary:\n");
  std::printf("  faults propagating to failure:  %s  (paper: ~8%%%s)\n",
              TextTable::fmt_pct(failures, 1).c_str(),
              config.latches_only ? ", latch faults are likelier to hit in-flight state"
                                  : "");
  const double uncovered = faultinject::uncovered_fraction(
      result.trials, faultinject::DetectorModel::kPerfectCfv,
      faultinject::ProtectionModel::kBaseline, 100);
  if (failures > 0) {
    std::printf("  covered at 100-insn interval:   %s of failures (paper: ~half%s)\n",
                TextTable::fmt_pct((failures - uncovered) / failures, 1).c_str(),
                config.latches_only ? "; ~75%% for latches" : "");
  }
  return status;
}
