// Ablation: how many live checkpoints, and at what interval? The paper keeps
// two checkpoints so the rollback always reaches at least one full interval
// back (mean distance 1.5n, §5.2.3). This ablation runs the real ReStoreCore
// with 1/2/4 live checkpoints across intervals and reports both the overhead
// (fault-free) and the end-to-end recovery rate under injected faults.
//
// Usage: ablation_checkpoints [--trials N] [--seed S]
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/restore_core.hpp"
#include "uarch/state_registry.hpp"
#include "workloads/workloads.hpp"

using namespace restore;

namespace {

struct Cell {
  double recovery_rate = 0.0;
  double slowdown = 0.0;
  double mean_distance = 0.0;
};

Cell evaluate(const workloads::Workload& wl, u64 interval, unsigned live,
              u64 trials, Rng& rng, u64 baseline_cycles) {
  Cell cell;

  // Overhead on a clean run.
  core::ReStoreOptions options;
  options.checkpoint_interval = interval;
  options.live_checkpoints = live;
  {
    core::ReStoreCore restore(wl.program, options);
    restore.run(400'000'000);
    cell.slowdown =
        static_cast<double>(restore.cycle_count()) / baseline_cycles - 1.0;
  }

  // Recovery under injected faults.
  const auto& reg = uarch::StateRegistry::instance();
  u64 recovered = 0, total_distance = 0, rollbacks = 0;
  for (u64 t = 0; t < trials; ++t) {
    core::ReStoreCore restore(wl.program, options);
    restore.run(500 + rng.below(3'000));
    if (!restore.running()) {
      ++recovered;  // finished before injection: trivially correct
      continue;
    }
    reg.flip(restore.core(), reg.sample(rng));
    restore.run(100'000'000);
    if (restore.status() == core::ReStoreCore::Status::kHalted &&
        restore.output() == wl.clean_output) {
      ++recovered;
    }
    total_distance += restore.stats().reexecuted_insns;
    rollbacks += restore.stats().rollbacks;
  }
  cell.recovery_rate = static_cast<double>(recovered) / trials;
  cell.mean_distance =
      rollbacks ? static_cast<double>(total_distance) / rollbacks : 0.0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const u64 trials = resolve_trial_count(args, 60);
  Rng rng(resolve_seed(args, 0xCCDD));

  const auto& wl = workloads::by_name("mcf");
  uarch::Core baseline(wl.program);
  baseline.run(100'000'000);

  std::printf("=== Ablation: live checkpoints x interval (workload: %s) ===\n\n",
              wl.name.c_str());
  TextTable table({"interval", "live ckpts", "recovery rate", "slowdown",
                   "mean rollback distance"});
  for (const u64 interval : {50ull, 100ull, 500ull}) {
    for (const unsigned live : {1u, 2u, 4u}) {
      const Cell cell =
          evaluate(wl, interval, live, trials, rng, baseline.cycle_count());
      table.add_row({std::to_string(interval), std::to_string(live),
                     TextTable::fmt_pct(cell.recovery_rate, 1),
                     TextTable::fmt_pct(cell.slowdown, 1),
                     TextTable::fmt_f(cell.mean_distance, 0)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nWith one live checkpoint the rollback may land *after* the error's\n"
      "injection point (distance < detection latency), losing coverage; the\n"
      "paper's two-checkpoint scheme guarantees at least one interval of\n"
      "reach at ~1.5x the re-execution cost.\n");
  return 0;
}
