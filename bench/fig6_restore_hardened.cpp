// Figure 6 — "ReStore coverage vs. checkpoint latency in the hardened
// pipeline" (paper §5.2.2): the "low-hanging-fruit" pipeline adds ECC to the
// register file, alias tables, fetch queue and ROB, and parity to pipeline
// control-word latches; ReStore is layered on top. Faults into protected
// state are corrected or detected+recovered (they surface in `other`).
//
// Usage: fig6_restore_hardened [--trials N] [--seed S] [--out-jsonl PATH]
//                              [--resume] [--workers N] [--shard-trials N]
//                              [--heartbeat N] [--shard-stats PATH]
#include <cstdio>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/uarch_campaign.hpp"

using namespace restore;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  faultinject::UarchCampaignConfig config;
  config.trials_per_workload = resolve_trial_count(args, 150);
  config.seed = resolve_seed(args, 0xC0FE);
  config.trial_budget = bench::cli_trial_budget(args);

  std::printf("=== Figure 6: ReStore coverage, hardened (lhf) pipeline ===\n\n");

  faultinject::CampaignTelemetry telemetry;
  const auto result =
      run_uarch_campaign(config, bench::campaign_options(args), &telemetry);
  const int status = bench::report_campaign(telemetry, args);
  std::printf("trials: %zu\n\n", result.trials.size());

  bench::print_uarch_category_table(result.trials,
                                    faultinject::DetectorModel::kJrsConfidence,
                                    faultinject::ProtectionModel::kLhf);

  using faultinject::DetectorModel;
  using faultinject::ProtectionModel;
  const double base_fail =
      faultinject::failure_fraction(result.trials, ProtectionModel::kBaseline);
  const double lhf_fail =
      faultinject::failure_fraction(result.trials, ProtectionModel::kLhf);
  const double lhf_restore_100 = faultinject::uncovered_fraction(
      result.trials, DetectorModel::kJrsConfidence, ProtectionModel::kLhf, 100);

  std::printf("\nsummary (100-insn checkpoint interval):\n");
  std::printf("  baseline failure probability:          %s  (paper: ~7%%)\n",
              TextTable::fmt_pct(base_fail, 1).c_str());
  std::printf("  lhf (parity/ECC) alone:                %s  (paper: ~3%%)\n",
              TextTable::fmt_pct(lhf_fail, 1).c_str());
  std::printf("  lhf + ReStore:                         %s  (paper: ~1%%)\n",
              TextTable::fmt_pct(lhf_restore_100, 1).c_str());
  std::printf("  MTBF improvement vs baseline:          %.2fx  (paper: ~7x)\n",
              faultinject::mtbf_improvement(result.trials,
                                            DetectorModel::kJrsConfidence,
                                            ProtectionModel::kLhf, 100));
  return status;
}
