// Google-benchmark microbenchmarks for the simulators themselves: cycles/sec
// of the detailed core, instructions/sec of the architectural VM, trial
// throughput of the injection harness, and checkpoint/rollback cost.
//
// Before the google-benchmark suites run, main() times the fault-injection
// hot path directly and writes a machine-readable BENCH_*.json family so the
// perf trajectory is enforceable across PRs (scripts/check_bench.sh):
//
//   BENCH_snapshot.json     snapshot fork + digest cost, one record per
//                           workload (COW fork vs. deep copy, VM positioning)
//   BENCH_uarch_inner.json  inner-loop primitives per workload: core
//                           cycles/sec, VM insns/sec, state hash/equality,
//                           trial-image copy
//   BENCH_campaign.json     end-to-end uarch campaign trials/sec across all
//                           seven workloads, fast paths off vs. on
//   BENCH_faultmodel.json   expanded-fault-model campaign trials/sec, one
//                           record per model (plan sampling + plan-driven
//                           trials must not regress the single-bit path)
//   BENCH_analytics.json    trace compaction MB/sec plus outcome-aggregation
//                           rows/sec from the columnar store vs. re-parsing
//                           the JSONL (the store must stay >= 10x faster)
//
// Committed baselines live next to this file (bench/BENCH_*.json); the CI
// bench job regenerates the numbers and fails on regression past tolerance.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analytics/column_store.hpp"
#include "analytics/compact.hpp"
#include "analytics/queries.hpp"
#include "core/restore_core.hpp"
#include "faultinject/campaign_io.hpp"
#include "faultinject/export.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/trial_speed.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"
#include "uarch/core.hpp"
#include "uarch/state_registry.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace restore;

// Schema of every BENCH_*.json record; bump when fields change shape so the
// check_bench gate can refuse to compare incompatible baselines.
constexpr int kBenchSchemaVersion = 2;

const workloads::Workload& bench_workload(int index) {
  return workloads::all()[static_cast<std::size_t>(index)];
}

void BM_VmInstructionRate(benchmark::State& state) {
  const auto& wl = bench_workload(static_cast<int>(state.range(0)));
  state.SetLabel(wl.name);
  for (auto _ : state) {
    vm::Vm vm(wl.program);
    vm.run(20'000);
    benchmark::DoNotOptimize(vm.retired_count());
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_VmInstructionRate)->DenseRange(0, 6);

void BM_CoreCycleRate(benchmark::State& state) {
  const auto& wl = bench_workload(static_cast<int>(state.range(0)));
  state.SetLabel(wl.name);
  for (auto _ : state) {
    uarch::Core core(wl.program);
    core.run(10'000);
    benchmark::DoNotOptimize(core.retired_count());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_CoreCycleRate)->DenseRange(0, 6);

void BM_CoreSnapshotCopy(benchmark::State& state) {
  const auto& wl = bench_workload(static_cast<int>(state.range(0)));
  state.SetLabel(wl.name);
  uarch::Core core(wl.program);
  core.run(5'000);
  for (auto _ : state) {
    uarch::Core copy = core;
    benchmark::DoNotOptimize(copy.cycle_count());
  }
}
BENCHMARK(BM_CoreSnapshotCopy)->DenseRange(0, 6);

void BM_SnapshotForkDigest(benchmark::State& state) {
  // The per-trial cost the campaign pays: fork the golden machine and digest
  // its memory. COW pages + cached page digests make both O(mapped pages).
  const auto& wl = bench_workload(static_cast<int>(state.range(0)));
  state.SetLabel(wl.name);
  uarch::Core core(wl.program);
  core.run(5'000);
  core.memory().digest();  // warm the page-digest caches, as a campaign would
  for (auto _ : state) {
    uarch::Core copy = core;
    benchmark::DoNotOptimize(copy.memory().digest());
  }
}
BENCHMARK(BM_SnapshotForkDigest)->DenseRange(0, 6);

void BM_StateHash(benchmark::State& state) {
  const auto& wl = bench_workload(static_cast<int>(state.range(0)));
  state.SetLabel(wl.name);
  uarch::Core core(wl.program);
  core.run(5'000);
  const auto& reg = uarch::StateRegistry::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.hash_state(core));
  }
}
BENCHMARK(BM_StateHash)->DenseRange(0, 6);

void BM_InjectionTrial(benchmark::State& state) {
  const auto& wl = bench_workload(static_cast<int>(state.range(0)));
  state.SetLabel(wl.name);
  uarch::Core warm(wl.program);
  warm.run(2'000);
  const auto& reg = uarch::StateRegistry::instance();
  Rng rng(1);
  for (auto _ : state) {
    const auto record =
        faultinject::run_uarch_trial(warm, reg.sample(rng), 2'000, 2'000);
    benchmark::DoNotOptimize(record.arch_corrupt_at_end);
  }
}
BENCHMARK(BM_InjectionTrial)->DenseRange(0, 6);

void BM_CheckpointRollback(benchmark::State& state) {
  const auto& wl = workloads::by_name("gap");
  for (auto _ : state) {
    core::ReStoreCore restore(wl.program);
    restore.run(2'000);
    benchmark::DoNotOptimize(restore.stats().rollbacks);
  }
}
BENCHMARK(BM_CheckpointRollback);

// ---- BENCH_*.json reports ----

using Clock = std::chrono::steady_clock;

// Median-of-runs wall time of `body`, in nanoseconds.
template <typename F>
double time_ns(int runs, F&& body) {
  std::vector<double> samples;
  samples.reserve(runs);
  for (int r = 0; r < runs; ++r) {
    const auto start = Clock::now();
    body();
    const auto stop = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Snapshot fork + digest cost, one record per workload.
void write_snapshot_report() {
  std::FILE* out = std::fopen("BENCH_snapshot.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"schema_version\": %d,\n"
                 "  \"benchmark\": \"snapshot\",\n"
                 "  \"workloads\": [\n",
                 kBenchSchemaVersion);
  }
  bool first = true;
  for (const auto& wl : workloads::all()) {
    // Golden machine at a typical injection point, digest caches warm (the
    // campaign digests the golden end state once per continuation).
    uarch::Core golden(wl.program);
    golden.run(5'000);
    golden.memory().digest();
    const std::size_t pages = golden.memory().mapped_pages();
    const auto page_indices = golden.memory().mapped_page_indices();

    // After: COW fork + cached digest — what run_uarch_campaign pays.
    const double cow_ns = time_ns(64, [&] {
      uarch::Core copy = golden;
      benchmark::DoNotOptimize(copy.memory().digest());
    });

    // Before: the pre-COW cost — every page deep-copied (forced here by
    // touching each page of the fork, which clones it) and the digest
    // recomputed over the full footprint.
    const double deep_ns = time_ns(64, [&] {
      uarch::Core copy = golden;
      for (const u64 page : page_indices) {
        const u64 addr = page << vm::kPageShift;
        copy.memory().write_byte(addr, copy.memory().read_byte(addr));
      }
      benchmark::DoNotOptimize(copy.memory().recompute_digest());
    });

    // VM-campaign trial setup: fork from an incrementally advanced golden
    // VM. Early vs. late injection index — the fork cost must not depend on
    // it — against positioning by re-execution from program start.
    vm::Vm probe(wl.program);
    u64 trace_len = 0;
    while (probe.step()) ++trace_len;
    const u64 early_index = trace_len / 10;
    const u64 late_index = trace_len * 9 / 10;

    vm::Vm golden_early(wl.program);
    golden_early.run(early_index + 1);
    const double fork_early_ns = time_ns(64, [&] {
      vm::Vm trial = golden_early;
      benchmark::DoNotOptimize(trial.pc());
    });

    vm::Vm golden_late(wl.program);
    golden_late.run(late_index + 1);
    const double fork_late_ns = time_ns(64, [&] {
      vm::Vm trial = golden_late;
      benchmark::DoNotOptimize(trial.pc());
    });

    const double reexec_late_ns = time_ns(8, [&] {
      vm::Vm trial(wl.program);
      trial.run(late_index + 1);
      benchmark::DoNotOptimize(trial.pc());
    });

    const double fork_speedup = cow_ns > 0 ? deep_ns / cow_ns : 0.0;
    if (out != nullptr) {
      std::fprintf(out,
                   "%s    {\"workload\": \"%s\", \"mapped_pages\": %zu, "
                   "\"cow_ns\": %.1f, \"deep_copy_ns\": %.1f, "
                   "\"fork_speedup\": %.2f, \"vm_trace_length\": %llu, "
                   "\"vm_fork_at_10pct_ns\": %.1f, \"vm_fork_at_90pct_ns\": "
                   "%.1f, \"vm_reexec_to_90pct_ns\": %.1f}",
                   first ? "" : ",\n", wl.name.c_str(), pages, cow_ns, deep_ns,
                   fork_speedup, static_cast<unsigned long long>(trace_len),
                   fork_early_ns, fork_late_ns, reexec_late_ns);
    }
    first = false;
    std::printf("snapshot %-7s: cow %.0f ns, deep %.0f ns (%.1fx)\n",
                wl.name.c_str(), cow_ns, deep_ns, fork_speedup);
  }
  if (out != nullptr) {
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
  }
  std::printf("-> BENCH_snapshot.json\n");
}

// Inner-loop primitives the trial loop is built from, per workload.
void write_uarch_inner_report() {
  const auto& reg = uarch::StateRegistry::instance();
  std::FILE* out = std::fopen("BENCH_uarch_inner.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"schema_version\": %d,\n"
                 "  \"benchmark\": \"uarch_inner\",\n"
                 "  \"workloads\": [\n",
                 kBenchSchemaVersion);
  }
  bool first = true;
  for (const auto& wl : workloads::all()) {
    constexpr u64 kCycles = 10'000;
    const double core_ns = time_ns(9, [&] {
      uarch::Core core(wl.program);
      core.run(kCycles);
      benchmark::DoNotOptimize(core.retired_count());
    });
    const double core_cps = core_ns > 0 ? kCycles * 1e9 / core_ns : 0.0;

    constexpr u64 kInsns = 20'000;
    const double vm_ns = time_ns(9, [&] {
      vm::Vm vm(wl.program);
      vm.run(kInsns);
      benchmark::DoNotOptimize(vm.retired_count());
    });
    const double vm_ips = vm_ns > 0 ? kInsns * 1e9 / vm_ns : 0.0;

    uarch::Core warm(wl.program);
    warm.run(5'000);
    warm.memory().digest();
    const uarch::Core twin = warm;

    const double hash_ns =
        time_ns(64, [&] { benchmark::DoNotOptimize(reg.hash_state(warm)); });
    // Worst case for state_equal: the operands ARE equal, so every field is
    // compared (a trial's convergence probe pays exactly this).
    const double equal_ns = time_ns(
        64, [&] { benchmark::DoNotOptimize(warm.state_equal(twin)); });
    // Arena restore: copy-assign into a persistent image (the per-trial
    // setup cost with the trial arena on).
    uarch::Core arena = warm;
    const double restore_ns = time_ns(64, [&] {
      arena = warm;
      benchmark::DoNotOptimize(arena.cycle_count());
    });

    if (out != nullptr) {
      std::fprintf(out,
                   "%s    {\"workload\": \"%s\", \"core_cycles_per_sec\": "
                   "%.0f, \"vm_insns_per_sec\": %.0f, \"state_hash_ns\": "
                   "%.1f, \"state_equal_ns\": %.1f, \"arena_restore_ns\": "
                   "%.1f}",
                   first ? "" : ",\n", wl.name.c_str(), core_cps, vm_ips,
                   hash_ns, equal_ns, restore_ns);
    }
    first = false;
    std::printf("inner %-7s: core %.2f Mcyc/s, vm %.2f Minsn/s, "
                "state_equal %.0f ns\n",
                wl.name.c_str(), core_cps / 1e6, vm_ips / 1e6, equal_ns);
  }
  if (out != nullptr) {
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
  }
  std::printf("-> BENCH_uarch_inner.json\n");
}

// End-to-end campaign throughput across all seven workloads, trial-speed
// fast paths off vs. on. Both runs produce byte-identical trial records
// (test_trial_speed proves it); only the clock differs.
void write_campaign_report() {
  faultinject::UarchCampaignConfig config;
  config.seed = 4242;
  config.trials_per_workload = 32;

  struct Timing {
    u64 trials = 0;
    double wall_ms = 0.0;
    double rate = 0.0;
  };
  const auto run_once = [&config] {
    faultinject::clear_continuation_cache();
    const auto start = Clock::now();
    const auto result = faultinject::run_uarch_campaign(config);
    const auto stop = Clock::now();
    Timing t;
    t.trials = result.trials.size();
    t.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
    t.rate = t.wall_ms > 0 ? static_cast<double>(t.trials) * 1000.0 / t.wall_ms
                           : 0.0;
    return t;
  };

  faultinject::TrialSpeedConfig off;
  off.continuation_cache = false;
  off.trial_arena = false;
  off.convergence_shortcut = false;
  faultinject::set_trial_speed(off);
  const Timing baseline = run_once();

  faultinject::set_trial_speed(faultinject::TrialSpeedConfig{});
  const Timing optimized = run_once();
  const auto cache = faultinject::continuation_cache_stats();

  const double speedup =
      optimized.rate > 0 && baseline.rate > 0 ? optimized.rate / baseline.rate
                                              : 0.0;
  std::FILE* out = std::fopen("BENCH_campaign.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"schema_version\": %d,\n"
        "  \"benchmark\": \"campaign\",\n"
        "  \"kind\": \"uarch\",\n"
        "  \"seed\": %llu,\n"
        "  \"trials_per_workload\": %llu,\n"
        "  \"monitor_cycles\": %llu,\n"
        "  \"baseline\": {\"trials\": %llu, \"wall_ms\": %.1f, "
        "\"trials_per_sec\": %.1f},\n"
        "  \"optimized\": {\"trials\": %llu, \"wall_ms\": %.1f, "
        "\"trials_per_sec\": %.1f},\n"
        "  \"speedup\": %.2f,\n"
        "  \"continuation_cache\": {\"hits\": %llu, \"misses\": %llu, "
        "\"evictions\": %llu}\n"
        "}\n",
        kBenchSchemaVersion, static_cast<unsigned long long>(config.seed),
        static_cast<unsigned long long>(config.trials_per_workload),
        static_cast<unsigned long long>(config.monitor_cycles),
        static_cast<unsigned long long>(baseline.trials), baseline.wall_ms,
        baseline.rate, static_cast<unsigned long long>(optimized.trials),
        optimized.wall_ms, optimized.rate, speedup,
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(cache.evictions));
    std::fclose(out);
  }
  std::printf("campaign: baseline %.1f trials/s, optimized %.1f trials/s "
              "(%.2fx) -> BENCH_campaign.json\n",
              baseline.rate, optimized.rate, speedup);
}

// Per-fault-model campaign throughput: the expanded models run the same
// plan-driven trial body, so their rates should track the single-bit rate
// (plan sampling is O(bits-per-plan); SET adds one revert pass per trial).
void write_faultmodel_report() {
  const std::pair<const char*, faultinject::FaultModel> models[] = {
      {"single", faultinject::FaultModel::kSingleBit},
      {"multi", faultinject::FaultModel::kMultiBitAdjacent},
      {"burst", faultinject::FaultModel::kBurst},
      {"set", faultinject::FaultModel::kSet},
      {"targeted", faultinject::FaultModel::kTargeted},
      {"rate", faultinject::FaultModel::kRateDriven},
  };

  std::FILE* out = std::fopen("BENCH_faultmodel.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"schema_version\": %d,\n"
                 "  \"benchmark\": \"faultmodel\",\n"
                 "  \"kind\": \"uarch\",\n"
                 "  \"trials_per_workload\": 24,\n"
                 "  \"models\": [\n",
                 kBenchSchemaVersion);
  }
  double single_rate = 0.0;
  for (std::size_t i = 0; i < std::size(models); ++i) {
    faultinject::UarchCampaignConfig config;
    config.seed = 4243;
    config.trials_per_workload = 24;
    config.workloads = {"gzip", "mcf"};
    config.monitor_cycles = 2000;
    config.catchup_cycles = 2000;
    config.fault_model.model = models[i].second;
    faultinject::clear_continuation_cache();
    const auto start = Clock::now();
    const auto result = faultinject::run_uarch_campaign(config);
    const auto stop = Clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    const double rate =
        wall_ms > 0 ? static_cast<double>(result.trials.size()) * 1000.0 / wall_ms
                    : 0.0;
    if (i == 0) single_rate = rate;
    if (out != nullptr) {
      std::fprintf(out,
                   "    {\"model\": \"%s\", \"trials\": %llu, "
                   "\"wall_ms\": %.1f, \"trials_per_sec\": %.1f}%s\n",
                   models[i].first,
                   static_cast<unsigned long long>(result.trials.size()), wall_ms,
                   rate, i + 1 < std::size(models) ? "," : "");
    }
    std::printf("faultmodel %-8s %.1f trials/s\n", models[i].first, rate);
  }
  if (out != nullptr) {
    std::fprintf(out, "  ],\n  \"single_bit_trials_per_sec\": %.1f\n}\n",
                 single_rate);
    std::fclose(out);
  }
  std::printf("-> BENCH_faultmodel.json\n");
}

// Analytics path: compact a fixed-seed vm trace, then aggregate the outcome
// breakdown from the columnar store vs. re-parsing the JSONL. The store only
// touches the model/outcome columns, so the gap is structural, not tuning —
// the committed baseline keeps it enforceably >= 10x.
void write_analytics_report() {
  faultinject::VmCampaignConfig config;
  config.seed = 4244;
  config.trials_per_workload = 150;  // all seven workloads -> 1050 rows

  faultinject::CampaignRunOptions run_opts;
  run_opts.shard_trials = 32;
  run_opts.out_jsonl = "bench_analytics_trace.jsonl";
  const auto campaign = faultinject::run_vm_campaign(config, run_opts);
  const u64 rows = campaign.trials.size();

  // Compaction throughput (root-cause replay included, as the daemon runs it).
  const std::string store_path = analytics::store_path_for(run_opts.out_jsonl);
  analytics::CompactResult compacted;
  const double compact_ns = time_ns(3, [&] {
    compacted = analytics::compact_trace(run_opts.out_jsonl, store_path);
  });
  const double compact_mb_per_sec =
      compact_ns > 0 ? static_cast<double>(compacted.jsonl_bytes) * 1e9 /
                           (compact_ns * 1024.0 * 1024.0)
                     : 0.0;

  // Outcome aggregation: columnar store (open + query, as restore-analyze
  // pays it) vs. the same answer re-parsed from the JSONL.
  // The store side finishes in ~100us, so it takes more median samples than
  // the millisecond-scale JSONL side to damp scheduler noise out of the
  // gated speedup ratio.
  const double store_ns = time_ns(15, [&] {
    const analytics::ColumnStoreReader store(store_path);
    benchmark::DoNotOptimize(analytics::outcome_counts(store));
  });
  const double jsonl_ns = time_ns(7, [&] {
    std::ifstream in(run_opts.out_jsonl, std::ios::binary);
    const auto trials = faultinject::read_vm_trials_jsonl(in);
    std::vector<faultinject::VmTrialResult> records;
    records.reserve(trials.size());
    for (const auto& t : trials) records.push_back(t.trial);
    benchmark::DoNotOptimize(faultinject::model_breakdown(records));
  });
  const double query_rows_per_sec =
      store_ns > 0 ? static_cast<double>(rows) * 1e9 / store_ns : 0.0;
  const double jsonl_rows_per_sec =
      jsonl_ns > 0 ? static_cast<double>(rows) * 1e9 / jsonl_ns : 0.0;
  const double speedup =
      jsonl_rows_per_sec > 0 ? query_rows_per_sec / jsonl_rows_per_sec : 0.0;

  std::FILE* out = std::fopen("BENCH_analytics.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"schema_version\": %d,\n"
        "  \"benchmark\": \"analytics\",\n"
        "  \"kind\": \"vm\",\n"
        "  \"seed\": %llu,\n"
        "  \"rows\": %llu,\n"
        "  \"jsonl_bytes\": %llu,\n"
        "  \"store_bytes\": %llu,\n"
        "  \"compact_mb_per_sec\": %.1f,\n"
        "  \"query_rows_per_sec\": %.1f,\n"
        "  \"jsonl_rows_per_sec\": %.1f,\n"
        "  \"query_vs_jsonl_speedup\": %.2f\n"
        "}\n",
        kBenchSchemaVersion, static_cast<unsigned long long>(config.seed),
        static_cast<unsigned long long>(rows),
        static_cast<unsigned long long>(compacted.jsonl_bytes),
        static_cast<unsigned long long>(compacted.store_bytes),
        compact_mb_per_sec, query_rows_per_sec, jsonl_rows_per_sec, speedup);
    std::fclose(out);
  }
  std::printf("analytics: compact %.1f MB/s, query %.1f rows/s vs jsonl "
              "%.1f rows/s (%.2fx) -> BENCH_analytics.json\n",
              compact_mb_per_sec, query_rows_per_sec, jsonl_rows_per_sec,
              speedup);
}

}  // namespace

int main(int argc, char** argv) {
  write_snapshot_report();
  write_uarch_inner_report();
  write_campaign_report();
  write_faultmodel_report();
  write_analytics_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
