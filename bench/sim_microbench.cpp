// Google-benchmark microbenchmarks for the simulators themselves: cycles/sec
// of the detailed core, instructions/sec of the architectural VM, trial
// throughput of the injection harness, and checkpoint/rollback cost.
//
// Before the google-benchmark suites run, main() times the fault-injection
// hot path directly — snapshot fork + memory digest, with and without
// copy-on-write sharing, and VM trial positioning at early vs. late
// injection indices — and writes the numbers to BENCH_snapshot.json so the
// perf trajectory is machine-readable across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/restore_core.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "uarch/core.hpp"
#include "uarch/state_registry.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace restore;

void BM_VmInstructionRate(benchmark::State& state) {
  const auto& wl = workloads::by_name("gzip");
  for (auto _ : state) {
    vm::Vm vm(wl.program);
    vm.run(20'000);
    benchmark::DoNotOptimize(vm.retired_count());
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_VmInstructionRate);

void BM_CoreCycleRate(benchmark::State& state) {
  const auto& wl = workloads::by_name("gzip");
  for (auto _ : state) {
    uarch::Core core(wl.program);
    core.run(10'000);
    benchmark::DoNotOptimize(core.retired_count());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_CoreCycleRate);

void BM_CoreSnapshotCopy(benchmark::State& state) {
  const auto& wl = workloads::by_name("gzip");
  uarch::Core core(wl.program);
  core.run(5'000);
  for (auto _ : state) {
    uarch::Core copy = core;
    benchmark::DoNotOptimize(copy.cycle_count());
  }
}
BENCHMARK(BM_CoreSnapshotCopy);

void BM_SnapshotForkDigest(benchmark::State& state) {
  // The per-trial cost the campaign pays: fork the golden machine and digest
  // its memory. COW pages + cached page digests make both O(mapped pages).
  const auto& wl = workloads::by_name("gzip");
  uarch::Core core(wl.program);
  core.run(5'000);
  core.memory().digest();  // warm the page-digest caches, as a campaign would
  for (auto _ : state) {
    uarch::Core copy = core;
    benchmark::DoNotOptimize(copy.memory().digest());
  }
}
BENCHMARK(BM_SnapshotForkDigest);

void BM_StateHash(benchmark::State& state) {
  const auto& wl = workloads::by_name("gzip");
  uarch::Core core(wl.program);
  core.run(5'000);
  const auto& reg = uarch::StateRegistry::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.hash_state(core));
  }
}
BENCHMARK(BM_StateHash);

void BM_InjectionTrial(benchmark::State& state) {
  const auto& wl = workloads::by_name("mcf");
  uarch::Core warm(wl.program);
  warm.run(2'000);
  const auto& reg = uarch::StateRegistry::instance();
  Rng rng(1);
  for (auto _ : state) {
    const auto record =
        faultinject::run_uarch_trial(warm, reg.sample(rng), 2'000, 2'000);
    benchmark::DoNotOptimize(record.arch_corrupt_at_end);
  }
}
BENCHMARK(BM_InjectionTrial);

void BM_CheckpointRollback(benchmark::State& state) {
  const auto& wl = workloads::by_name("gap");
  for (auto _ : state) {
    core::ReStoreCore restore(wl.program);
    restore.run(2'000);
    benchmark::DoNotOptimize(restore.stats().rollbacks);
  }
}
BENCHMARK(BM_CheckpointRollback);

// ---- snapshot-fork + digest report (BENCH_snapshot.json) ----

using Clock = std::chrono::steady_clock;

// Median-of-runs wall time of `body`, in nanoseconds.
template <typename F>
double time_ns(int runs, F&& body) {
  std::vector<double> samples;
  samples.reserve(runs);
  for (int r = 0; r < runs; ++r) {
    const auto start = Clock::now();
    body();
    const auto stop = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void write_snapshot_report() {
  const auto& wl = workloads::by_name("gzip");

  // Golden machine at a typical injection point, digest caches warm (the
  // campaign digests the golden end state once per continuation).
  uarch::Core golden(wl.program);
  golden.run(5'000);
  golden.memory().digest();
  const std::size_t pages = golden.memory().mapped_pages();
  const auto page_indices = golden.memory().mapped_page_indices();

  // After: COW fork + cached digest — what run_uarch_campaign pays per trial.
  const double cow_ns = time_ns(64, [&] {
    uarch::Core copy = golden;
    benchmark::DoNotOptimize(copy.memory().digest());
  });

  // Before: the pre-COW cost — every page deep-copied (forced here by
  // touching each page of the fork, which clones it) and the digest
  // recomputed over the full footprint.
  const double deep_ns = time_ns(64, [&] {
    uarch::Core copy = golden;
    for (const u64 page : page_indices) {
      const u64 addr = page << vm::kPageShift;
      copy.memory().write_byte(addr, copy.memory().read_byte(addr));
    }
    benchmark::DoNotOptimize(copy.memory().recompute_digest());
  });

  // VM-campaign trial setup: fork from an incrementally advanced golden VM.
  // Early vs. late injection index — the fork cost must not depend on it.
  vm::Vm probe(wl.program);
  u64 trace_len = 0;
  while (probe.step()) ++trace_len;
  const u64 early_index = trace_len / 10;
  const u64 late_index = trace_len * 9 / 10;

  vm::Vm golden_early(wl.program);
  golden_early.run(early_index + 1);
  const double fork_early_ns = time_ns(64, [&] {
    vm::Vm trial = golden_early;
    benchmark::DoNotOptimize(trial.pc());
  });

  vm::Vm golden_late(wl.program);
  golden_late.run(late_index + 1);
  const double fork_late_ns = time_ns(64, [&] {
    vm::Vm trial = golden_late;
    benchmark::DoNotOptimize(trial.pc());
  });

  // Before: positioning by re-execution from program start (what
  // run_vm_trial still does for one-off trials).
  const double reexec_late_ns = time_ns(8, [&] {
    vm::Vm trial(wl.program);
    trial.run(late_index + 1);
    benchmark::DoNotOptimize(trial.pc());
  });

  const double fork_speedup = cow_ns > 0 ? deep_ns / cow_ns : 0.0;
  std::FILE* out = std::fopen("BENCH_snapshot.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n"
                 "  \"workload\": \"gzip\",\n"
                 "  \"mapped_pages\": %zu,\n"
                 "  \"uarch_fork_digest\": {\n"
                 "    \"cow_ns\": %.1f,\n"
                 "    \"deep_copy_ns\": %.1f,\n"
                 "    \"speedup\": %.2f\n"
                 "  },\n"
                 "  \"vm_trial_setup\": {\n"
                 "    \"trace_length\": %llu,\n"
                 "    \"fork_at_10pct_ns\": %.1f,\n"
                 "    \"fork_at_90pct_ns\": %.1f,\n"
                 "    \"reexec_to_90pct_ns\": %.1f\n"
                 "  }\n"
                 "}\n",
                 pages, cow_ns, deep_ns, fork_speedup,
                 static_cast<unsigned long long>(trace_len), fork_early_ns,
                 fork_late_ns, reexec_late_ns);
    std::fclose(out);
  }
  std::printf(
      "snapshot fork+digest: cow %.0f ns, deep %.0f ns (%.1fx); "
      "vm setup: fork@10%% %.0f ns, fork@90%% %.0f ns, reexec@90%% %.0f ns "
      "-> BENCH_snapshot.json\n",
      cow_ns, deep_ns, fork_speedup, fork_early_ns, fork_late_ns,
      reexec_late_ns);
}

}  // namespace

int main(int argc, char** argv) {
  write_snapshot_report();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
