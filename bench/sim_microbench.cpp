// Google-benchmark microbenchmarks for the simulators themselves: cycles/sec
// of the detailed core, instructions/sec of the architectural VM, trial
// throughput of the injection harness, and checkpoint/rollback cost.
#include <benchmark/benchmark.h>

#include "core/restore_core.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "uarch/core.hpp"
#include "uarch/state_registry.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace restore;

void BM_VmInstructionRate(benchmark::State& state) {
  const auto& wl = workloads::by_name("gzip");
  for (auto _ : state) {
    vm::Vm vm(wl.program);
    vm.run(20'000);
    benchmark::DoNotOptimize(vm.retired_count());
  }
  state.SetItemsProcessed(state.iterations() * 20'000);
}
BENCHMARK(BM_VmInstructionRate);

void BM_CoreCycleRate(benchmark::State& state) {
  const auto& wl = workloads::by_name("gzip");
  for (auto _ : state) {
    uarch::Core core(wl.program);
    core.run(10'000);
    benchmark::DoNotOptimize(core.retired_count());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_CoreCycleRate);

void BM_CoreSnapshotCopy(benchmark::State& state) {
  const auto& wl = workloads::by_name("gzip");
  uarch::Core core(wl.program);
  core.run(5'000);
  for (auto _ : state) {
    uarch::Core copy = core;
    benchmark::DoNotOptimize(copy.cycle_count());
  }
}
BENCHMARK(BM_CoreSnapshotCopy);

void BM_StateHash(benchmark::State& state) {
  const auto& wl = workloads::by_name("gzip");
  uarch::Core core(wl.program);
  core.run(5'000);
  const auto& reg = uarch::StateRegistry::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.hash_state(core));
  }
}
BENCHMARK(BM_StateHash);

void BM_InjectionTrial(benchmark::State& state) {
  const auto& wl = workloads::by_name("mcf");
  uarch::Core warm(wl.program);
  warm.run(2'000);
  const auto& reg = uarch::StateRegistry::instance();
  Rng rng(1);
  for (auto _ : state) {
    const auto record =
        faultinject::run_uarch_trial(warm, reg.sample(rng), 2'000, 2'000);
    benchmark::DoNotOptimize(record.arch_corrupt_at_end);
  }
}
BENCHMARK(BM_InjectionTrial);

void BM_CheckpointRollback(benchmark::State& state) {
  const auto& wl = workloads::by_name("gap");
  for (auto _ : state) {
    core::ReStoreCore restore(wl.program);
    restore.run(2'000);
    benchmark::DoNotOptimize(restore.stats().rollbacks);
  }
}
BENCHMARK(BM_CheckpointRollback);

}  // namespace

BENCHMARK_MAIN();
