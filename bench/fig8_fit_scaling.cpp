// Figure 8 — "FIT rates with device scaling" (paper §5.3).
//
// Runs the microarchitectural campaign once to measure the silent-data-
// corruption probability of each configuration (baseline / ReStore / lhf /
// lhf+ReStore), then extrapolates FIT across design sizes at 0.001 FIT/bit,
// against the 1000-year-MTBF goal line (~114 FIT).
//
// Usage: fig8_fit_scaling [--trials N] [--seed S] [--out-jsonl PATH]
//                         [--resume] [--workers N] [--shard-trials N]
//                         [--heartbeat N] [--shard-stats PATH]
#include <cstdio>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "reliability/fit.hpp"

using namespace restore;
using faultinject::DetectorModel;
using faultinject::ProtectionModel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  faultinject::UarchCampaignConfig config;
  config.trials_per_workload = resolve_trial_count(args, 150);
  config.seed = resolve_seed(args, 0xC0FE);
  config.trial_budget = bench::cli_trial_budget(args);

  std::printf("=== Figure 8: FIT rates with device scaling ===\n\n");
  faultinject::CampaignTelemetry telemetry;
  const auto campaign =
      run_uarch_campaign(config, bench::campaign_options(args), &telemetry);
  const int status = bench::report_campaign(telemetry, args);

  reliability::SdcRates rates;
  rates.baseline = faultinject::failure_fraction(campaign.trials);
  rates.restore = faultinject::uncovered_fraction(
      campaign.trials, DetectorModel::kJrsConfidence, ProtectionModel::kBaseline, 100);
  rates.lhf = faultinject::failure_fraction(campaign.trials, ProtectionModel::kLhf);
  rates.lhf_restore = faultinject::uncovered_fraction(
      campaign.trials, DetectorModel::kJrsConfidence, ProtectionModel::kLhf, 100);

  std::printf("measured SDC probabilities per raw fault:\n");
  std::printf("  baseline=%s  ReStore=%s  lhf=%s  lhf+ReStore=%s\n\n",
              TextTable::fmt_pct(rates.baseline, 2).c_str(),
              TextTable::fmt_pct(rates.restore, 2).c_str(),
              TextTable::fmt_pct(rates.lhf, 2).c_str(),
              TextTable::fmt_pct(rates.lhf_restore, 2).c_str());

  const double goal = reliability::mtbf_goal_fit(1000.0);
  const auto points = reliability::fit_scaling(rates);

  TextTable table({"design bits", "baseline", "ReStore", "lhf", "lhf+ReStore",
                   "meets 1000y goal?"});
  for (const auto& p : points) {
    std::string verdict;
    verdict += p.fit_baseline <= goal ? "base " : "";
    verdict += p.fit_restore <= goal ? "restore " : "";
    verdict += p.fit_lhf <= goal ? "lhf " : "";
    verdict += p.fit_lhf_restore <= goal ? "lhf+restore" : "";
    if (verdict.empty()) verdict = "none";
    table.add_row({bench::latency_label(p.bits), TextTable::fmt_f(p.fit_baseline, 1),
                   TextTable::fmt_f(p.fit_restore, 1), TextTable::fmt_f(p.fit_lhf, 1),
                   TextTable::fmt_f(p.fit_lhf_restore, 1), verdict});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nMTBF goal line: %.1f FIT (1000-year MTBF)\n", goal);

  const u64 base_limit =
      reliability::max_bits_meeting_goal(goal, 0.001, rates.baseline);
  const u64 protected_limit =
      reliability::max_bits_meeting_goal(goal, 0.001, rates.lhf_restore);
  if (base_limit > 0) {
    std::printf(
        "lhf+ReStore sustains a design %.1fx larger at the same MTBF\n"
        "(paper: \"MTBF comparable to a design 1/7th the size\")\n",
        static_cast<double>(protected_limit) / static_cast<double>(base_limit));
  }
  return status;
}
