// Workload sensitivity study: how masking, symptom mix, and ReStore coverage
// vary with the workload's instruction mix. The paper argues (§3.1) that
// exception coverage tracks how much of the program computes addresses and
// control flow, and that footprint/VA-ratio moves the exception/cfv split;
// this bench quantifies that across the seven paper workloads plus the two
// extended ones (ALU-heavy crafty, annealing twolf).
//
// Usage: workload_sensitivity [--trials N] [--seed S] [--interval N] [--workers N]
#include <cstdio>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"
#include "uarch/core.hpp"
#include "workloads/workloads.hpp"

using namespace restore;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const u64 interval = args.value_u64("interval", 100);
  const u64 trials = resolve_trial_count(args, 120);
  const u64 seed = resolve_seed(args, 0x5E15);

  // Many campaigns per process: share worker sizing, never stream traces.
  auto opts = bench::campaign_options(args);
  opts.out_jsonl.clear();
  opts.resume = false;
  const ResourceBudget trial_budget = bench::cli_trial_budget(args);

  std::printf("=== Workload sensitivity (interval=%llu, %llu trials each) ===\n\n",
              static_cast<unsigned long long>(interval),
              static_cast<unsigned long long>(trials));

  std::vector<std::string> names;
  for (const auto& wl : workloads::all()) names.push_back(wl.name);
  for (const auto& wl : workloads::extended()) names.push_back(wl.name);

  TextTable table({"workload", "branch%", "mem%", "VM masked", "VM exception",
                   "uarch failures", "ReStore coverage"});

  for (const auto& name : names) {
    const auto& wl = workloads::by_name(name);

    // Instruction mix from a clean VM run.
    vm::Vm vm(wl.program);
    u64 branches = 0, mem = 0, total = 0;
    while (auto rec = vm.step()) {
      ++total;
      if (rec->is_cond_branch) ++branches;
      if (rec->is_load || rec->is_store) ++mem;
    }

    // Architectural (Figure 2 style) campaign.
    faultinject::VmCampaignConfig vc;
    vc.trials_per_workload = trials;
    vc.seed = seed;
    vc.workloads = {name};
    vc.trial_budget = trial_budget;
    const auto vm_result = run_vm_campaign(vc, opts);

    // Microarchitectural campaign.
    faultinject::UarchCampaignConfig uc;
    uc.trials_per_workload = trials;
    uc.seed = seed;
    uc.workloads = {name};
    uc.trial_budget = trial_budget;
    const auto uarch_result = run_uarch_campaign(uc, opts);

    const double failures = faultinject::failure_fraction(uarch_result.trials);
    const double uncovered = faultinject::uncovered_fraction(
        uarch_result.trials, faultinject::DetectorModel::kJrsConfidence,
        faultinject::ProtectionModel::kBaseline, interval);
    const double coverage = failures > 0 ? 1.0 - uncovered / failures : 0.0;

    table.add_row(
        {name,
         TextTable::fmt_pct(static_cast<double>(branches) / total, 1),
         TextTable::fmt_pct(static_cast<double>(mem) / total, 1),
         TextTable::fmt_pct(vm_result.fraction(faultinject::VmOutcome::kMasked), 1),
         TextTable::fmt_pct(vm_result.fraction(faultinject::VmOutcome::kException), 1),
         TextTable::fmt_pct(failures, 1), TextTable::fmt_pct(coverage, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nExpected gradients (paper §3.1): memory-heavy workloads show more\n"
      "exceptions (wild pointers fault); ALU-heavy ones mask more and lean on\n"
      "control-flow symptoms; coverage follows the exception share.\n");
  return 0;
}
