// Headline numbers (paper abstract & §7): ReStore alone roughly doubles the
// mean time between failures over a contemporary pipeline; coupled with
// parity/ECC on the most vulnerable structures ("lhf"), MTBF improves ~7x.
//
// Usage: headline_mtbf [--trials N] [--seed S] [--interval N] [--out-jsonl PATH]
//                      [--resume] [--workers N] [--shard-trials N]
//                      [--heartbeat N] [--shard-stats PATH]
#include <cstdio>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/uarch_campaign.hpp"

using namespace restore;
using faultinject::DetectorModel;
using faultinject::ProtectionModel;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  faultinject::UarchCampaignConfig config;
  config.trials_per_workload = resolve_trial_count(args, 150);
  config.seed = resolve_seed(args, 0xC0FE);
  config.trial_budget = bench::cli_trial_budget(args);
  const u64 interval = args.value_u64("interval", 100);

  std::printf("=== Headline: MTBF improvement at a %llu-instruction interval ===\n\n",
              static_cast<unsigned long long>(interval));
  faultinject::CampaignTelemetry telemetry;
  const auto campaign =
      run_uarch_campaign(config, bench::campaign_options(args), &telemetry);
  const int status = bench::report_campaign(telemetry, args);

  const double base = faultinject::failure_fraction(campaign.trials);
  const double restore_only = faultinject::uncovered_fraction(
      campaign.trials, DetectorModel::kJrsConfidence, ProtectionModel::kBaseline,
      interval);
  const double lhf_only =
      faultinject::failure_fraction(campaign.trials, ProtectionModel::kLhf);
  const double lhf_restore = faultinject::uncovered_fraction(
      campaign.trials, DetectorModel::kJrsConfidence, ProtectionModel::kLhf, interval);

  TextTable table({"configuration", "failure probability", "MTBF vs baseline",
                   "paper"});
  table.add_row({"baseline (unprotected)", TextTable::fmt_pct(base, 2), "1.0x",
                 "~7% failures"});
  table.add_row({"ReStore", TextTable::fmt_pct(restore_only, 2),
                 TextTable::fmt_f(base / restore_only, 2) + "x", "~3.5%, 2x"});
  table.add_row({"lhf (parity/ECC)", TextTable::fmt_pct(lhf_only, 2),
                 TextTable::fmt_f(base / lhf_only, 2) + "x", "~3%"});
  table.add_row({"lhf + ReStore", TextTable::fmt_pct(lhf_restore, 2),
                 TextTable::fmt_f(base / lhf_restore, 2) + "x", "~1%, 7x"});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\ntrials: %zu across 7 workloads; 95%%-CI margin on the baseline "
              "rate: +/-%s\n",
              campaign.trials.size(),
              TextTable::fmt_pct(
                  wilson_interval(static_cast<std::size_t>(base * campaign.trials.size()),
                                  campaign.trials.size())
                      .margin(),
                  2)
                  .c_str());
  return status;
}
