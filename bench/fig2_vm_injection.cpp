// Figure 2 — "Virtual machine fault injection" (paper §3.1) and Table 1.
//
// Injects single bit flips into the results of randomly chosen instructions
// at the architectural (ISA) level and classifies each trial into Table 1's
// categories, cumulatively per symptom-latency bin. Also reproduces the
// §3.1 follow-up study restricting flips to the low 32 bits (--low32).
//
// Usage: fig2_vm_injection [--trials N] [--seed S] [--low32]
//                          [--fault-model single|multi|targeted|rate] [--fault-bits K]
//                          [--fault-target load|store] [--vdd-mv MV]
//                          [--freq-mhz MHZ] [--upset-ppm PPM]
//                          [--out-jsonl PATH] [--resume] [--workers N]
//                          [--shard-trials N] [--heartbeat N] [--shard-stats PATH]
//        RESTORE_TRIALS=N scales the per-workload trial count (paper: ~1000).
//        With --out-jsonl the campaign streams per-trial results as shards
//        complete and --resume continues an interrupted run from the manifest.
//        Expanded fault models (fault_model.hpp) apply on top of the result-bit
//        model; burst/set need microarchitectural state and are rejected here.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "faultinject/export.hpp"
#include "faultinject/vm_campaign.hpp"

using namespace restore;
using faultinject::VmOutcome;

namespace {

void print_campaign(const faultinject::VmCampaignResult& result) {
  const auto categories = {VmOutcome::kMasked,  VmOutcome::kRegister,
                           VmOutcome::kMemData, VmOutcome::kMemAddr,
                           VmOutcome::kCfv,     VmOutcome::kException};
  std::vector<std::string> header = {"latency<="};
  for (const auto category : categories) header.emplace_back(to_string(category));
  TextTable table(std::move(header));
  for (const u64 edge : figure2_latency_bins()) {
    std::vector<std::string> row = {bench::latency_label(edge)};
    for (const auto category : categories) {
      double share = result.fraction(category, edge);
      if (category == VmOutcome::kMasked) {
        // Masked has no latency; show it only in the terminal bin, where the
        // whole distribution must sum to 100%.
        share = edge == kNever ? result.fraction(VmOutcome::kMasked) : 0.0;
      }
      row.push_back(TextTable::fmt_pct(share, 1));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.render().c_str(), stdout);

  const double masked = result.fraction(VmOutcome::kMasked);
  const double failing = 1.0 - masked;
  const double symptomatic_100 = result.fraction(VmOutcome::kException, 100) +
                                 result.fraction(VmOutcome::kCfv, 100);
  std::printf("\nsummary: trials=%zu\n", result.trials.size());
  std::printf("  masked (no failure):                 %s\n",
              TextTable::fmt_pct(masked, 1).c_str());
  std::printf("  exception or cfv within 100 insns:   %s of all trials\n",
              TextTable::fmt_pct(symptomatic_100, 1).c_str());
  if (failing > 0) {
    std::printf("  ... as a share of failing trials:    %s  (paper: ~80%%)\n",
                TextTable::fmt_pct(symptomatic_100 / failing, 1).c_str());
  }
  const auto ci = wilson_interval(
      result.count(VmOutcome::kException, kNever), result.trials.size());
  std::printf("  exception share 95%%-CI margin:       +/-%s\n",
              TextTable::fmt_pct(ci.margin(), 2).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  faultinject::VmCampaignConfig config;
  config.trials_per_workload = resolve_trial_count(args, 150);
  config.seed = resolve_seed(args, 0x5EED);
  config.low32_only = args.has_flag("low32");
  config.trial_budget = bench::cli_trial_budget(args);
  if (args.value("model").value_or("result") == "register") {
    config.model = faultinject::VmFaultModel::kRegisterBit;
  }
  config.fault_model = faultinject::fault_model_from_cli(args);

  std::printf("=== Figure 2: architectural fault injection (Table 1 categories) ===\n");
  std::printf("fault model: %s%s\n",
              config.model == faultinject::VmFaultModel::kResultBit
                  ? "single bit flip in the result of a random instruction"
                  : "single bit flip in a random live architectural register "
                    "(Gu et al. / rePLay related-work model)",
              config.low32_only ? " (low 32 bits only)" : "");
  if (!faultinject::is_default_fault_model(config.fault_model)) {
    std::printf("expanded fault model: %s (%s)\n",
                std::string(to_string(config.fault_model.model)).c_str(),
                faultinject::fault_model_identity_key(config.fault_model).c_str());
  }
  std::printf("workloads: 7 SPECint analogs, %llu trials each\n\n",
              static_cast<unsigned long long>(config.trials_per_workload));

  const auto opts = bench::campaign_options(args);
  faultinject::CampaignTelemetry telemetry;
  const auto result = run_vm_campaign(config, opts, &telemetry);
  const int status = bench::report_campaign(telemetry, args);
  print_campaign(result);
  if (const auto csv = args.value("csv")) {
    faultinject::write_vm_trials_csv(*csv, result.trials);
    std::printf("\nwrote per-trial data to %s\n", csv->c_str());
  }

  // The follow-up study only makes sense over a complete main campaign, and
  // after a shutdown request the process should wind down, not start another
  // campaign.
  if (!config.low32_only && status == bench::kExitComplete) {
    // The §3.1 follow-up: how does the exception share move when flips are
    // confined to the low 32 bits?
    auto low32 = config;
    low32.low32_only = true;
    // The follow-up study reuses the worker pool but never the trace files:
    // it is a different campaign and must not clobber the main one's manifest.
    auto low32_opts = opts;
    low32_opts.out_jsonl.clear();
    low32_opts.resume = false;
    const auto low = run_vm_campaign(low32, low32_opts);
    const double full_exc = result.fraction(VmOutcome::kException);
    const double low_exc = low.fraction(VmOutcome::kException);
    std::printf("\n--- 32-bit result study (paper: exception category loses ~25%%) ---\n");
    std::printf("  exception share, 64-bit flips: %s\n",
                TextTable::fmt_pct(full_exc, 1).c_str());
    std::printf("  exception share, low-32 flips: %s (%+.0f%% relative)\n",
                TextTable::fmt_pct(low_exc, 1).c_str(),
                full_exc > 0 ? 100.0 * (low_exc - full_exc) / full_exc : 0.0);
    std::printf("  cfv share moves %s -> %s\n",
                TextTable::fmt_pct(result.fraction(VmOutcome::kCfv), 1).c_str(),
                TextTable::fmt_pct(low.fraction(VmOutcome::kCfv), 1).c_str());
  }
  return status;
}
