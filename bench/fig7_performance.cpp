// Figure 7 — "Performance impact of false positive symptoms" (paper §5.2.3).
//
// Runs the real ReStoreCore on fault-free workloads with both rollback
// policies across the checkpoint-interval sweep, measuring the slowdown that
// false-positive high-confidence mispredictions cost relative to a baseline
// core without checkpointing. Also prints the closed-form model for
// comparison. Paper reference points: ~6% slowdown at a 100-instruction
// interval; `delayed` overtakes `imm` around 500-instruction intervals.
//
// Usage: fig7_performance [--quick]
#include <cstdio>

#include "bench_util.hpp"
#include "perfmodel/overhead.hpp"
#include "uarch/core.hpp"
#include "workloads/workloads.hpp"

using namespace restore;
using core::RollbackPolicy;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  perfmodel::OverheadConfig config;
  if (args.has_flag("quick")) {
    config.intervals = {100, 500};
    config.workloads = {"gzip", "mcf", "gap"};
  }

  std::printf("=== Figure 7: performance impact of false-positive symptoms ===\n");
  std::printf("(speedup of ReStore vs a baseline core; <1.0 means slowdown)\n\n");

  const auto points = perfmodel::measure_rollback_overhead(config);

  TextTable table({"interval", "imm", "delayed", "imm(model)", "delayed(model)"});
  // Mean measured false-positive rate feeds the analytic cross-check.
  double symptom_rate = 0.0;
  {
    u64 total_insns = 0, total_symptoms = 0;
    for (const auto& wl : workloads::all()) {
      bool selected = config.workloads.empty();
      for (const auto& name : config.workloads) {
        if (name == wl.name) selected = true;
      }
      if (!selected) continue;
      uarch::Core probe(wl.program);
      probe.run(200'000'000);
      total_insns += probe.retired_count();
      total_symptoms += probe.counters().high_conf_mispredicts;
    }
    symptom_rate = total_insns ? static_cast<double>(total_symptoms) / total_insns : 0;
  }

  for (const u64 interval : config.intervals) {
    table.add_row(
        {std::to_string(interval),
         TextTable::fmt_f(
             perfmodel::mean_speedup(points, interval, RollbackPolicy::kImmediate), 3),
         TextTable::fmt_f(
             perfmodel::mean_speedup(points, interval, RollbackPolicy::kDelayed), 3),
         TextTable::fmt_f(perfmodel::analytic_speedup(symptom_rate, interval,
                                                      RollbackPolicy::kImmediate),
                          3),
         TextTable::fmt_f(perfmodel::analytic_speedup(symptom_rate, interval,
                                                      RollbackPolicy::kDelayed),
                          3)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nmeasured false-positive symptom rate: %.3f per kilo-instruction\n",
              symptom_rate * 1000.0);
  std::printf("paper reference: ~6%% slowdown at interval 100; delayed gains an\n");
  std::printf("advantage at >=500-instruction intervals\n");
  return 0;
}
