// Trial containment, shard quarantine and graceful shutdown.
//
// The properties pinned here:
//   * simulator errors carry deterministic context (address, size, direction)
//     and never escape the trial containment boundary — multi-bit fuzzed
//     corruption of both the VM and the core always yields a classified
//     outcome, never a crash (run under ASan/UBSan by the `sanitize` label);
//   * deterministic resource budgets classify as resource-exhausted
//     identically at any worker count;
//   * a shard whose runner throws is retried, logged per attempt, then
//     quarantined while the rest of the campaign completes; a plain --resume
//     re-attempts it and, once healthy, reproduces the uninterrupted trace
//     byte for byte;
//   * a stop flag ends the campaign gracefully (consistent trace/manifest,
//     resumable), and the schema_version gate rejects future formats.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/budget.hpp"
#include "common/shutdown.hpp"
#include "faultinject/campaign_io.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/containment.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"
#include "uarch/core.hpp"
#include "uarch/state_registry.hpp"
#include "vm/errors.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace restore::faultinject {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "restore_containment_" + tag + ".jsonl";
}

VmCampaignConfig small_vm_config() {
  VmCampaignConfig config;
  config.seed = 0xC0117A1;
  config.trials_per_workload = 24;
  config.workloads = {"gzip", "mcf"};
  return config;
}

CampaignRunOptions streaming_opts(const std::string& trace) {
  CampaignRunOptions opts;
  opts.workers = 2;
  opts.shard_trials = 8;  // 3 shards per workload, 6 total
  opts.out_jsonl = trace;
  opts.retry_backoff_ms = 0;  // tests should not sleep
  return opts;
}

CampaignManifest vm_identity(const VmCampaignConfig& config, u64 shard_trials) {
  CampaignManifest identity;
  identity.kind = "vm";
  identity.config_hash = config_hash(config);
  identity.seed = config.seed;
  identity.shard_trials = shard_trials;
  return identity;
}

// ---- simulator error context (satellite: no more context-free throws) ----

TEST(Containment, UnmappedAccessErrorCarriesAddressSizeAndDirection) {
  vm::PagedMemory memory;
  memory.map_region(0x1000, 0x100, isa::Perms::kReadWrite);

  try {
    (void)memory.read_byte(0xdead0);
    FAIL() << "read of unmapped address did not throw";
  } catch (const vm::UnmappedAccessError& e) {
    EXPECT_EQ(e.vaddr(), 0xdead0u);
    EXPECT_EQ(e.bytes(), 1u);
    EXPECT_FALSE(e.is_write());
    EXPECT_EQ(std::string(e.what()),
              "read of 1 byte(s) at unmapped address 0xdead0");
  }

  try {
    memory.write_byte(0xbeef00, 0x42);
    FAIL() << "write of unmapped address did not throw";
  } catch (const vm::UnmappedAccessError& e) {
    EXPECT_EQ(e.vaddr(), 0xbeef00u);
    EXPECT_TRUE(e.is_write());
    EXPECT_NE(std::string(e.what()).find("0xbeef00"), std::string::npos);
  }

  // The richer type still satisfies pre-existing catch sites.
  EXPECT_THROW((void)memory.read_byte(0xdead0), std::out_of_range);
}

TEST(Containment, PageBudgetViolationThrowsBudgetExceeded) {
  vm::PagedMemory memory;
  memory.set_page_budget(2);
  memory.map_region(0x0, vm::kPageBytes, isa::Perms::kReadWrite);
  memory.map_region(0x10000, vm::kPageBytes, isa::Perms::kReadWrite);
  try {
    memory.map_region(0x20000, vm::kPageBytes, isa::Perms::kReadWrite);
    FAIL() << "mapping past the page budget did not throw";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetKind::kPages);
    EXPECT_EQ(e.limit(), 2u);
    EXPECT_EQ(e.observed(), 3u);
  }
}

TEST(Containment, ContainTrialTagsExceptionTypesDeterministically) {
  auto abort = contain_trial([] { throw vm::UnmappedAccessError(0x40, 1, true); });
  ASSERT_TRUE(abort.has_value());
  EXPECT_EQ(abort->type, "unmapped-access");
  EXPECT_FALSE(abort->resource_exhausted);

  abort = contain_trial([] { throw BudgetExceeded(BudgetKind::kRetired, 10, 11); });
  ASSERT_TRUE(abort.has_value());
  EXPECT_EQ(abort->type, "budget-retired");
  EXPECT_TRUE(abort->resource_exhausted);

  abort = contain_trial([] { throw std::runtime_error("boom"); });
  ASSERT_TRUE(abort.has_value());
  EXPECT_EQ(abort->type, "std::runtime_error");
  EXPECT_EQ(abort->message, "boom");

  abort = contain_trial([] { throw 42; });
  ASSERT_TRUE(abort.has_value());
  EXPECT_EQ(abort->type, "unknown");

  EXPECT_FALSE(contain_trial([] {}).has_value());
  EXPECT_THROW((void)contain_trial([] { throw std::bad_alloc(); }), std::bad_alloc);
}

// ---- fuzz: multi-bit corruption never escapes the boundary ----

TEST(Containment, FuzzedMultiBitVmCorruptionAlwaysClassifies) {
  const auto& wl = workloads::by_name("gzip");
  Rng rng(0xF022);
  for (int trial = 0; trial < 40; ++trial) {
    vm::Vm vm(wl.program);
    const u64 warmup = rng.range(0, 200);
    for (u64 i = 0; i < warmup && vm.running(); ++i) (void)vm.step();
    // Corrupt several registers at once — far nastier than the single-bit
    // campaign model, and guaranteed to hit wild pointers eventually.
    const int flips = static_cast<int>(rng.range(2, 6));
    for (int f = 0; f < flips; ++f) {
      const u8 reg = static_cast<u8>(rng.below(31));
      vm.set_reg(reg, vm.reg(reg) ^ (u64{1} << rng.below(64)) ^ rng.next());
    }
    vm.memory().set_page_budget(64);
    const auto abort = contain_trial([&] {
      u64 executed = 0;
      while (vm.step()) {
        if (++executed > 50'000) {
          throw BudgetExceeded(BudgetKind::kRetired, 50'000, executed);
        }
      }
    });
    if (abort) {
      EXPECT_FALSE(abort->type.empty());
      EXPECT_FALSE(abort->message.empty());
    }
  }
}

TEST(Containment, FuzzedMultiBitCoreCorruptionAlwaysClassifies) {
  const auto& reg = uarch::StateRegistry::instance();
  const auto& wl = workloads::by_name("mcf");
  Rng rng(0xF0CC);
  for (int trial = 0; trial < 12; ++trial) {
    uarch::Core core(wl.program, uarch::CoreConfig{});
    const u64 warmup = rng.range(50, 500);
    for (u64 c = 0; c < warmup && core.running(); ++c) core.cycle();
    const int flips = static_cast<int>(rng.range(2, 8));
    for (int f = 0; f < flips; ++f) reg.flip(core, reg.sample(rng));
    ResourceBudget budget;
    budget.max_cycles = core.cycle_count() + 20'000;
    budget.max_pages = 64;
    core.set_resource_budget(budget);
    const auto abort = contain_trial([&] {
      while (core.running()) core.cycle();
    });
    if (abort) {
      EXPECT_FALSE(abort->type.empty());
    }
  }
}

// ---- resource budgets: deterministic resource-exhausted classification ----

TEST(Containment, TrialBudgetYieldsResourceExhaustedIdenticallyAcrossWorkers) {
  auto config = small_vm_config();
  config.trial_budget.max_retired = 40;  // tight enough to trip on real trials

  CampaignRunOptions inline_opts;
  inline_opts.workers = 0;
  inline_opts.shard_trials = 8;
  const auto serial = run_vm_campaign(config, inline_opts);

  CampaignRunOptions parallel_opts = inline_opts;
  parallel_opts.workers = 8;
  const auto parallel = run_vm_campaign(config, parallel_opts);

  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  std::size_t exhausted = 0;
  for (std::size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_EQ(serial.trials[i].outcome, parallel.trials[i].outcome) << i;
    EXPECT_EQ(serial.trials[i].abort_message, parallel.trials[i].abort_message) << i;
    if (serial.trials[i].outcome == VmOutcome::kResourceExhausted) {
      ++exhausted;
      EXPECT_EQ(serial.trials[i].abort_type, "budget-retired");
      EXPECT_EQ(serial.trials[i].latency, kNever);
    }
  }
  EXPECT_GT(exhausted, 0u) << "budget never tripped; tighten the test budget";

  // The budget is part of the campaign identity: an unlimited config hashes
  // differently, so resuming across the change is refused.
  EXPECT_NE(config_hash(config), config_hash(small_vm_config()));
}

TEST(Containment, AbortedTrialsAreExcludedFromFailureStatistics) {
  UarchTrialRecord clean;
  clean.arch_corrupt_at_end = true;  // a real failure
  UarchTrialRecord aborted;
  aborted.abort_type = "budget-cycles";
  aborted.abort_message = "resource budget exceeded";
  aborted.abort_resource = true;

  const std::vector<UarchTrialRecord> trials = {clean, aborted};
  EXPECT_EQ(classify_trial(aborted, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kResourceExhausted);
  aborted.abort_resource = false;
  EXPECT_EQ(classify_trial(aborted, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kSimAbort);
  // One failure out of one *eligible* trial: were the abort counted in the
  // denominator these would read 0.5, not 1.0.
  EXPECT_DOUBLE_EQ(failure_fraction(trials), 1.0);
  EXPECT_DOUBLE_EQ(uncovered_fraction(trials, DetectorModel::kPerfectCfv,
                                      ProtectionModel::kBaseline, 100),
                   1.0);  // symptom-free corruption: a real, uncovered escape
}

// ---- JSONL round trip of abort records ----

TEST(Containment, AbortFieldsRoundTripThroughJsonl) {
  VmTrialResult vm_trial;
  vm_trial.workload = "gzip";
  vm_trial.outcome = VmOutcome::kSimAbort;
  vm_trial.inject_index = 7;
  vm_trial.bit = 3;
  vm_trial.abort_type = "unmapped-access";
  vm_trial.abort_message = "write of 1 byte(s) at unmapped address 0xdead";
  const auto vm_line = vm_trial_to_jsonl(2, 5, vm_trial);
  const auto vm_parsed = vm_trial_from_jsonl(vm_line);
  ASSERT_TRUE(vm_parsed.has_value());
  EXPECT_EQ(std::get<2>(*vm_parsed).outcome, VmOutcome::kSimAbort);
  EXPECT_EQ(std::get<2>(*vm_parsed).abort_type, vm_trial.abort_type);
  EXPECT_EQ(std::get<2>(*vm_parsed).abort_message, vm_trial.abort_message);

  UarchTrialRecord uarch_trial;
  uarch_trial.workload = "mcf";
  uarch_trial.field_name = "rob.pc";
  uarch_trial.abort_type = "budget-cycles";
  uarch_trial.abort_message = "resource budget exceeded: cycles limit 10";
  uarch_trial.abort_resource = true;
  const auto uarch_line = uarch_trial_to_jsonl(1, 0, uarch_trial);
  const auto uarch_parsed = uarch_trial_from_jsonl(uarch_line);
  ASSERT_TRUE(uarch_parsed.has_value());
  EXPECT_TRUE(std::get<2>(*uarch_parsed).aborted());
  EXPECT_EQ(std::get<2>(*uarch_parsed).abort_type, uarch_trial.abort_type);
  EXPECT_TRUE(std::get<2>(*uarch_parsed).abort_resource);

  // Clean trials keep their historical byte shape: no abort keys at all.
  VmTrialResult clean;
  clean.workload = "gzip";
  EXPECT_EQ(vm_trial_to_jsonl(0, 0, clean).find("abort"), std::string::npos);
}

// ---- shard quarantine with retry, and resume-after-fix byte identity ----

TEST(Containment, ThrowingShardIsRetriedLoggedAndQuarantined) {
  const auto config = small_vm_config();
  const auto shards = plan_shards(config.seed, config.workloads,
                                  config.trials_per_workload, 8);
  ASSERT_EQ(shards.size(), 6u);

  // Reference: clean uninterrupted run.
  const auto clean_trace = temp_path("quarantine_clean");
  {
    auto opts = streaming_opts(clean_trace);
    CampaignTelemetry telemetry;
    run_sharded_campaign<VmTrialResult>(
        shards, vm_identity(config, 8), opts,
        [&](const ShardSpec& shard) { return run_vm_shard(config, shard); },
        vm_trial_to_jsonl, vm_trial_from_jsonl,
        [](const VmTrialResult& t) { return std::string(to_string(t.outcome)); },
        &telemetry);
    EXPECT_TRUE(telemetry.complete);
    EXPECT_TRUE(telemetry.quarantined.empty());
  }

  // Poisoned run: shard 3 throws on every attempt.
  const auto trace = temp_path("quarantine_poisoned");
  std::atomic<bool> poisoned{true};
  std::atomic<int> attempts_on_3{0};
  const auto supervised_run = [&](const ShardSpec& shard) {
    if (poisoned.load() && shard.index == 3) {
      ++attempts_on_3;
      throw std::runtime_error("injected shard failure (test hook)");
    }
    return run_vm_shard(config, shard);
  };
  auto opts = streaming_opts(trace);
  opts.shard_retries = 2;
  std::FILE* log = std::tmpfile();
  ASSERT_NE(log, nullptr);
  opts.heartbeat_stream = log;
  {
    CampaignTelemetry telemetry;
    const auto partial = run_sharded_campaign<VmTrialResult>(
        shards, vm_identity(config, 8), opts, supervised_run, vm_trial_to_jsonl,
        vm_trial_from_jsonl,
        [](const VmTrialResult& t) { return std::string(to_string(t.outcome)); },
        &telemetry);
    // Every other shard completed; the poisoned one was retried to the limit
    // and quarantined.
    EXPECT_EQ(attempts_on_3.load(), 3);  // 1 attempt + 2 retries
    EXPECT_FALSE(telemetry.complete);
    ASSERT_EQ(telemetry.quarantined.size(), 1u);
    EXPECT_EQ(telemetry.quarantined[0].shard, 3u);
    EXPECT_EQ(telemetry.quarantined[0].attempts, 3u);
    EXPECT_NE(telemetry.quarantined[0].error.find("injected shard failure"),
              std::string::npos);
    EXPECT_EQ(partial.size(), 40u);  // 5 healthy shards of 8 trials each
  }

  // Every failing attempt — not just the first — reached the log stream.
  std::rewind(log);
  std::string logged;
  char chunk[256];
  while (std::fgets(chunk, sizeof chunk, log) != nullptr) logged += chunk;
  std::fclose(log);
  for (const char* needle :
       {"attempt 1/3 failed", "attempt 2/3 failed", "attempt 3/3 failed"}) {
    EXPECT_NE(logged.find(needle), std::string::npos) << needle << "\n" << logged;
  }
  EXPECT_NE(logged.find("shard 3 (mcf)"), std::string::npos) << logged;

  // The manifest records the quarantine, and the shard is NOT completed.
  {
    const auto manifest = read_manifest(manifest_path_for(trace));
    ASSERT_TRUE(manifest.has_value());
    ASSERT_TRUE(manifest->has_quarantine());
    EXPECT_EQ(manifest->quarantined, std::vector<u64>{3});
    EXPECT_EQ(manifest->quarantine_attempts, std::vector<u64>{3});
    EXPECT_EQ(manifest->quarantine_workloads, std::vector<std::string>{"mcf"});
    EXPECT_NE(manifest->quarantine_errors[0].find("injected shard failure"),
              std::string::npos);
    EXPECT_EQ(manifest->completed.size(), 5u);
    for (const u64 s : manifest->completed) EXPECT_NE(s, 3u);
  }

  // Fix the hook, plain --resume: only the quarantined shard re-runs, and the
  // final trace is byte-identical to the uninterrupted clean run.
  poisoned.store(false);
  opts.resume = true;
  opts.heartbeat_stream = nullptr;
  {
    CampaignTelemetry telemetry;
    run_sharded_campaign<VmTrialResult>(
        shards, vm_identity(config, 8), opts, supervised_run, vm_trial_to_jsonl,
        vm_trial_from_jsonl,
        [](const VmTrialResult& t) { return std::string(to_string(t.outcome)); },
        &telemetry);
    EXPECT_TRUE(telemetry.complete);
    EXPECT_TRUE(telemetry.quarantined.empty());
    EXPECT_EQ(telemetry.resumed_trials, 40u);  // 5 of 6 shards reloaded
  }
  EXPECT_EQ(slurp(clean_trace), slurp(trace));

  // The healed manifest no longer carries the stale quarantine record.
  const auto healed = read_manifest(manifest_path_for(trace));
  ASSERT_TRUE(healed.has_value());
  EXPECT_FALSE(healed->has_quarantine());
  EXPECT_EQ(healed->completed.size(), 6u);
}

// ---- graceful shutdown via stop flag ----

TEST(Containment, StopFlagEndsCampaignGracefullyAndResumeCompletes) {
  const auto config = small_vm_config();
  const auto shards = plan_shards(config.seed, config.workloads,
                                  config.trials_per_workload, 8);

  const auto clean_trace = temp_path("shutdown_clean");
  {
    auto opts = streaming_opts(clean_trace);
    run_sharded_campaign<VmTrialResult>(
        shards, vm_identity(config, 8), opts,
        [&](const ShardSpec& shard) { return run_vm_shard(config, shard); },
        vm_trial_to_jsonl, vm_trial_from_jsonl,
        [](const VmTrialResult& t) { return std::string(to_string(t.outcome)); },
        nullptr);
  }

  // SIGTERM-equivalent: the stop flag flips after the first shard finishes
  // (inline workers make "first" deterministic). The in-flight shard is
  // flushed; nothing else starts.
  const auto trace = temp_path("shutdown_interrupted");
  std::atomic<bool> stop{false};
  auto opts = streaming_opts(trace);
  opts.workers = 0;
  opts.stop_flag = &stop;
  {
    CampaignTelemetry telemetry;
    const auto partial = run_sharded_campaign<VmTrialResult>(
        shards, vm_identity(config, 8), opts,
        [&](const ShardSpec& shard) {
          auto records = run_vm_shard(config, shard);
          stop.store(true);  // the "signal" lands while this shard is in flight
          return records;
        },
        vm_trial_to_jsonl, vm_trial_from_jsonl,
        [](const VmTrialResult& t) { return std::string(to_string(t.outcome)); },
        &telemetry);
    EXPECT_TRUE(telemetry.stopped);
    EXPECT_FALSE(telemetry.complete);
    EXPECT_EQ(telemetry.shards.size(), 1u);  // in-flight shard completed
    EXPECT_EQ(partial.size(), 8u);
    EXPECT_TRUE(telemetry.quarantined.empty());
  }
  // On-disk state is consistent and resumable.
  {
    const auto manifest = read_manifest(manifest_path_for(trace));
    ASSERT_TRUE(manifest.has_value());
    EXPECT_EQ(manifest->completed.size(), 1u);
  }

  // Clear the flag, resume: byte-identical to the uninterrupted run.
  stop.store(false);
  opts.resume = true;
  opts.workers = 2;
  CampaignTelemetry telemetry;
  run_sharded_campaign<VmTrialResult>(
      shards, vm_identity(config, 8), opts,
      [&](const ShardSpec& shard) { return run_vm_shard(config, shard); },
      vm_trial_to_jsonl, vm_trial_from_jsonl,
      [](const VmTrialResult& t) { return std::string(to_string(t.outcome)); },
      &telemetry);
  EXPECT_TRUE(telemetry.complete);
  EXPECT_FALSE(telemetry.stopped);
  EXPECT_EQ(telemetry.resumed_trials, 8u);
  EXPECT_EQ(slurp(clean_trace), slurp(trace));
}

TEST(Containment, SignalHandlerSetsProcessWideFlagOnce) {
  reset_shutdown_flag();
  install_shutdown_signal_handlers();
  EXPECT_FALSE(shutdown_requested());
  // One SIGTERM requests graceful shutdown. (A second would _Exit(130), so
  // this test sends exactly one.)
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(shutdown_requested());
  EXPECT_TRUE(shutdown_flag()->load());
  reset_shutdown_flag();
  EXPECT_FALSE(shutdown_requested());

  request_shutdown();  // programmatic equivalent
  EXPECT_TRUE(shutdown_requested());
  reset_shutdown_flag();
}

// ---- schema versioning ----

TEST(Containment, ManifestSchemaVersionRoundTripsAndGatesResume) {
  const auto path = temp_path("schema_manifest") + ".manifest.json";
  CampaignManifest manifest;
  manifest.kind = "vm";
  manifest.config_hash = 0xABCD;
  manifest.seed = 7;
  manifest.shard_trials = 8;
  manifest.total_shards = 2;
  manifest.total_trials = 16;
  manifest.quarantined = {1};
  manifest.quarantine_attempts = {3};
  manifest.quarantine_workloads = {"gzip"};
  manifest.quarantine_errors = {"injected \"quoted\" error\nwith newline"};
  write_manifest(path, manifest);

  const auto reread = read_manifest(path);
  ASSERT_TRUE(reread.has_value());
  EXPECT_EQ(reread->schema_version, kCampaignSchemaVersion);
  EXPECT_EQ(reread->quarantine_errors, manifest.quarantine_errors);
  EXPECT_EQ(reread->quarantine_workloads, manifest.quarantine_workloads);

  // A manifest from the future is refused with a clear message.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"schema_version\":99,\"kind\":\"vm\",\"config_hash\":1,\"seed\":1,"
           "\"shard_trials\":8,\"total_shards\":1,\"total_trials\":8,"
           "\"completed\":[],\"completed_trials\":[],\"wall_ms\":[]}\n";
  }
  try {
    (void)read_manifest(path);
    FAIL() << "future schema_version was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("schema_version 99"), std::string::npos);
  }

  // A legacy (pre-versioning) manifest still reads, as version 1.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"kind\":\"vm\",\"config_hash\":1,\"seed\":1,\"shard_trials\":8,"
           "\"total_shards\":1,\"total_trials\":8,"
           "\"completed\":[0],\"completed_trials\":[8],\"wall_ms\":[3]}\n";
  }
  const auto legacy = read_manifest(path);
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->schema_version, 1u);
  EXPECT_FALSE(legacy->has_quarantine());
  EXPECT_EQ(legacy->completed.size(), 1u);
}

TEST(Containment, TraceHeaderIsSkippedByReadersAndFutureVersionsRejected) {
  const auto header = parse_trace_header(trace_header_line("vm"));
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->schema_version, kCampaignSchemaVersion);
  EXPECT_EQ(header->kind, "vm");

  // A trial line is not a header; a header is not a trial line.
  VmTrialResult trial;
  trial.workload = "gzip";
  EXPECT_FALSE(parse_trace_header(vm_trial_to_jsonl(0, 0, trial)).has_value());
  EXPECT_FALSE(vm_trial_from_jsonl(trace_header_line("vm")).has_value());

  // Whole-stream reader: header skipped, trials parsed.
  std::stringstream ok;
  ok << trace_header_line("vm") << '\n' << vm_trial_to_jsonl(0, 0, trial) << '\n';
  EXPECT_EQ(read_vm_trials_jsonl(ok).size(), 1u);

  // A future-format trace is rejected, not misread.
  std::stringstream future;
  future << "{\"schema_version\":99,\"kind\":\"vm\"}\n";
  try {
    (void)read_vm_trials_jsonl(future);
    FAIL() << "future trace header was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("schema_version 99"), std::string::npos);
  }
}

}  // namespace
}  // namespace restore::faultinject
