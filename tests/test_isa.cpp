// Unit + property tests for the SRA-64 instruction set: encode/decode
// round-trips, format classification, and disassembly.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/disasm.hpp"
#include "isa/instruction.hpp"

namespace restore::isa {
namespace {

TEST(Opcode, FormatClassification) {
  EXPECT_EQ(format_of(Opcode::kAdd), Format::kRType);
  EXPECT_EQ(format_of(Opcode::kAddi), Format::kIType);
  EXPECT_EQ(format_of(Opcode::kLd), Format::kLoad);
  EXPECT_EQ(format_of(Opcode::kSd), Format::kStore);
  EXPECT_EQ(format_of(Opcode::kBeq), Format::kBranch);
  EXPECT_EQ(format_of(Opcode::kJal), Format::kJal);
  EXPECT_EQ(format_of(Opcode::kJalr), Format::kJalr);
  EXPECT_EQ(format_of(Opcode::kHalt), Format::kSystem);
  EXPECT_EQ(format_of(u8{0x00}), Format::kIllegal);
  EXPECT_EQ(format_of(u8{0x3F}), Format::kIllegal);
}

TEST(Opcode, Predicates) {
  EXPECT_TRUE(is_load(Opcode::kLw));
  EXPECT_TRUE(is_store(Opcode::kSb));
  EXPECT_TRUE(is_mem(Opcode::kLd));
  EXPECT_FALSE(is_mem(Opcode::kAdd));
  EXPECT_TRUE(is_cond_branch(Opcode::kBne));
  EXPECT_TRUE(is_jump(Opcode::kJal));
  EXPECT_TRUE(is_control(Opcode::kJalr));
  EXPECT_FALSE(is_control(Opcode::kAddi));
  EXPECT_TRUE(is_trapping_alu(Opcode::kAddv));
  EXPECT_FALSE(is_trapping_alu(Opcode::kAdd));
}

TEST(Opcode, MemAccessBytes) {
  EXPECT_EQ(mem_access_bytes(Opcode::kLb), 1u);
  EXPECT_EQ(mem_access_bytes(Opcode::kLhu), 2u);
  EXPECT_EQ(mem_access_bytes(Opcode::kSw), 4u);
  EXPECT_EQ(mem_access_bytes(Opcode::kLd), 8u);
  EXPECT_EQ(mem_access_bytes(Opcode::kAdd), 0u);
}

TEST(Decode, RTypeRoundTrip) {
  const u32 word = encode_rtype(Opcode::kXor, 3, 7, 12);
  const DecodedInst inst = decode(word);
  EXPECT_TRUE(inst.valid);
  EXPECT_EQ(inst.op, Opcode::kXor);
  EXPECT_EQ(inst.rd, 3);
  EXPECT_EQ(inst.rs1, 7);
  EXPECT_EQ(inst.rs2, 12);
  EXPECT_TRUE(inst.writes_reg());
  EXPECT_TRUE(inst.reads_rs1());
  EXPECT_TRUE(inst.reads_rs2());
}

TEST(Decode, ITypeSignExtension) {
  const DecodedInst inst = decode(encode_itype(Opcode::kAddi, 1, 2, -5));
  EXPECT_EQ(inst.imm, -5);
  const DecodedInst logical = decode(encode_itype(Opcode::kOri, 1, 2, 0xFFFF));
  EXPECT_EQ(logical.imm, 0xFFFF);  // logical immediates zero-extend
}

TEST(Decode, LoadStoreFields) {
  const DecodedInst load = decode(encode_load(Opcode::kLw, 5, 10, -16));
  EXPECT_EQ(load.rd, 5);
  EXPECT_EQ(load.rs1, 10);
  EXPECT_EQ(load.imm, -16);
  EXPECT_TRUE(load.writes_reg());

  const DecodedInst store = decode(encode_store(Opcode::kSd, 6, 11, 24));
  EXPECT_EQ(store.rs2, 6);  // data register
  EXPECT_EQ(store.rs1, 11);
  EXPECT_EQ(store.imm, 24);
  EXPECT_FALSE(store.writes_reg());
  EXPECT_TRUE(store.reads_rs2());
}

TEST(Decode, BranchDisplacementInBytes) {
  const DecodedInst inst = decode(encode_branch(Opcode::kBeq, 1, 2, -8));
  EXPECT_EQ(inst.rs1, 1);
  EXPECT_EQ(inst.rs2, 2);
  EXPECT_EQ(inst.imm, -8);
  EXPECT_EQ(static_target(inst, 100), 100 + 4 - 8);
}

TEST(Decode, JalRange) {
  const DecodedInst inst = decode(encode_jal(29, 4 * ((1 << 20) - 1)));
  EXPECT_EQ(inst.rd, 29);
  EXPECT_EQ(inst.imm, 4 * ((1 << 20) - 1));
  const DecodedInst neg = decode(encode_jal(29, -4 * (1 << 20)));
  EXPECT_EQ(neg.imm, -4 * (1 << 20));
}

TEST(Decode, JalrHasNoStaticTarget) {
  const DecodedInst inst = decode(encode_jalr(29, 5, 8));
  EXPECT_EQ(static_target(inst, 0), std::nullopt);
  EXPECT_TRUE(inst.writes_reg());
}

TEST(Decode, SystemOps) {
  EXPECT_EQ(decode(encode_halt()).op, Opcode::kHalt);
  const DecodedInst out = decode(encode_out(9));
  EXPECT_EQ(out.op, Opcode::kOut);
  EXPECT_EQ(out.rs1, 9);
  EXPECT_FALSE(out.writes_reg());
}

TEST(Decode, IllegalOpcodesReported) {
  // Opcode 0 and the gap regions decode as invalid.
  EXPECT_FALSE(decode(0x00000000u).valid);
  EXPECT_FALSE(decode(0x3Fu << 26).valid);
  EXPECT_FALSE(decode(0x15u << 26).valid);  // gap between R-type and I-type
  EXPECT_FALSE(decode(0x2Fu << 26).valid);  // gap between loads and stores
}

TEST(Decode, ZeroRegNeverWritten) {
  const DecodedInst inst = decode(encode_itype(Opcode::kAddi, kZeroReg, 1, 5));
  EXPECT_FALSE(inst.writes_reg());
}

// Property: decoding any 32-bit word never crashes and yields either a valid
// instruction whose re-encoding (via the matching encoder) round-trips, or an
// invalid marker.
TEST(DecodeProperty, AllWordsDecodeSafely) {
  Rng rng(1234);
  for (int i = 0; i < 200000; ++i) {
    const u32 word = static_cast<u32>(rng.next());
    const DecodedInst inst = decode(word);
    if (!inst.valid) continue;
    EXPECT_NE(format_of(inst.op), Format::kIllegal);
    EXPECT_LT(inst.rd, 32);
    EXPECT_LT(inst.rs1, 32);
    EXPECT_LT(inst.rs2, 32);
  }
}

// Property: about one quarter of the opcode space is unpopulated, so random
// corruption of an opcode field can produce ISA-illegal instructions.
TEST(DecodeProperty, OpcodeSpacePartiallyPopulated) {
  int illegal = 0;
  for (u32 op = 0; op < 64; ++op) {
    if (format_of(static_cast<u8>(op)) == Format::kIllegal) ++illegal;
  }
  EXPECT_GE(illegal, 10);
  EXPECT_LE(illegal, 32);
}

TEST(Disasm, Formats) {
  EXPECT_EQ(disassemble(encode_rtype(Opcode::kAdd, 1, 2, 3)), "add r1, r2, r3");
  EXPECT_EQ(disassemble(encode_itype(Opcode::kAddi, 1, 31, -4)), "addi r1, zero, -4");
  EXPECT_EQ(disassemble(encode_load(Opcode::kLd, 4, 30, 8)), "ld r4, 8(r30)");
  EXPECT_EQ(disassemble(encode_store(Opcode::kSw, 5, 30, -8)), "sw r5, -8(r30)");
  EXPECT_EQ(disassemble(encode_halt()), "halt");
  EXPECT_EQ(disassemble(0u), "<illegal>");
}

}  // namespace
}  // namespace restore::isa
