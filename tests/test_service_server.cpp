// End-to-end tests of the restored campaign server, run in-process over a
// Unix-domain socket: trace byte-identity against a direct orchestrator run,
// cache hits and attaches on duplicate submission, survival of a client
// disconnect mid-stream, and drain + restart convergence.
#include "service/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "faultinject/orchestrator.hpp"
#include "faultinject/vm_campaign.hpp"
#include "service/job_queue.hpp"
#include "service/protocol.hpp"

namespace restore::service {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

JobSpec small_vm_spec(u64 seed = 0x51) {
  JobSpec spec;
  spec.kind = "vm";
  spec.seed = seed;
  spec.trials = 8;
  spec.shard_trials = 4;
  spec.workloads = {"gzip", "mcf"};
  return spec;
}

WireMessage submit_message(const JobSpec& spec, bool want_events) {
  WireMessage msg;
  msg.type = MessageType::kSubmit;
  msg.spec = spec;
  msg.want_events = want_events;
  return msg;
}

// Blocking framed client over a Unix-domain socket, with a receive timeout so
// a regression hangs a test instead of the whole suite.
class TestClient {
 public:
  explicit TestClient(const std::string& socket_path) { connect(socket_path); }
  ~TestClient() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send(const WireMessage& msg) {
    const std::string frame = encode_frame(encode_message(msg));
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent, 0);
      ASSERT_GT(n, 0) << std::strerror(errno);
      sent += static_cast<std::size_t>(n);
    }
  }

  std::optional<WireMessage> receive() {
    for (;;) {
      if (auto payload = reader_.next()) return decode_message(*payload);
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) return std::nullopt;  // EOF or timeout
      reader_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  // Skip interleaved frames (e.g. events) until `type` arrives.
  std::optional<WireMessage> receive_type(MessageType type) {
    while (auto msg = receive()) {
      if (msg->type == type) return msg;
    }
    return std::nullopt;
  }

 private:
  void connect(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(socket_path.size(), sizeof addr.sun_path);
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
        << socket_path << ": " << std::strerror(errno);
    timeval timeout{};
    timeout.tv_sec = 120;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  }

  int fd_ = -1;
  FrameReader reader_;
};

// A CampaignServer with its IO loop on a background thread.
struct ServerHandle {
  std::unique_ptr<CampaignServer> server;
  std::thread io;
  int exit_code = -1;

  void start(ServerOptions opts) {
    server = std::make_unique<CampaignServer>(std::move(opts));
    server->start();
    io = std::thread([this] { exit_code = server->run(); });
  }

  void stop_and_join() {
    server->stop();
    if (io.joinable()) io.join();
  }

  ~ServerHandle() {
    if (server) stop_and_join();
  }
};

ServerOptions test_options(const std::string& tag) {
  ServerOptions opts;
  opts.socket_path = testing::TempDir() + "restored_" + tag + ".sock";
  opts.spool_dir = testing::TempDir() + "restored_spool_" + tag;
  // A previous run's spool would turn fresh submissions into cache hits.
  std::filesystem::remove_all(opts.spool_dir);
  opts.heartbeat_every_shards = 1;
  return opts;
}

}  // namespace

TEST(ServiceServer, TraceByteIdenticalToDirectRunAndDuplicateIsCached) {
  auto opts = test_options("ident");
  opts.job_workers = 1;
  opts.campaign_workers = 2;  // daemon runs sharded, reference runs inline
  const std::string spool = opts.spool_dir;

  ServerHandle handle;
  handle.start(opts);

  const JobSpec spec = small_vm_spec();
  TestClient client(handle.server->unix_socket_path());

  client.send(submit_message(spec, /*want_events=*/true));
  const auto submitted = client.receive_type(MessageType::kSubmitted);
  ASSERT_TRUE(submitted.has_value());
  EXPECT_FALSE(submitted->attached);
  EXPECT_FALSE(submitted->cached);
  EXPECT_EQ(submitted->config_hash, spec_config_hash(spec));

  const auto done = client.receive_type(MessageType::kDone);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, "done");
  EXPECT_EQ(done->exit_code, 0u);
  EXPECT_EQ(done->job, submitted->job);

  // Reference: the batch orchestrator, single-threaded, same spec.
  const std::string ref_trace = testing::TempDir() + "restored_ident_ref.jsonl";
  std::remove(ref_trace.c_str());
  faultinject::CampaignRunOptions ref_opts;
  ref_opts.workers = 1;
  ref_opts.shard_trials = spec.shard_trials;
  ref_opts.out_jsonl = ref_trace;
  faultinject::run_vm_campaign(vm_config_for(spec), ref_opts);

  const std::string spool_trace = spool + "/" + spec_trace_filename(spec);
  const std::string daemon_bytes = slurp(spool_trace);
  EXPECT_FALSE(daemon_bytes.empty());
  EXPECT_EQ(daemon_bytes, slurp(ref_trace));

  // Duplicate submission: served from the spool, no second campaign.
  client.send(submit_message(spec, /*want_events=*/true));
  const auto again = client.receive_type(MessageType::kSubmitted);
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->cached);
  const auto cached_done = client.receive_type(MessageType::kDone);
  ASSERT_TRUE(cached_done.has_value());
  EXPECT_EQ(cached_done->exit_code, 0u);
  EXPECT_EQ(handle.server->campaigns_run(), 1u);

  // Fetch streams back exactly the spool bytes.
  WireMessage fetch;
  fetch.type = MessageType::kFetch;
  fetch.job = again->job;
  client.send(fetch);
  std::string fetched;
  for (;;) {
    auto msg = client.receive();
    ASSERT_TRUE(msg.has_value());
    if (msg->type == MessageType::kTraceEnd) {
      EXPECT_EQ(msg->bytes, fetched.size());
      break;
    }
    if (msg->type == MessageType::kTraceData) fetched += msg->data;
  }
  EXPECT_EQ(fetched, daemon_bytes);

  handle.stop_and_join();
  EXPECT_EQ(handle.exit_code, 0);
}

TEST(ServiceServer, DuplicateSubmissionAttachesToQueuedJob) {
  auto opts = test_options("attach");
  opts.job_workers = 0;  // accept-only: jobs queue but never start

  ServerHandle handle;
  handle.start(opts);
  TestClient client(handle.server->unix_socket_path());

  const JobSpec spec = small_vm_spec(0xA77);
  client.send(submit_message(spec, false));
  const auto first = client.receive_type(MessageType::kSubmitted);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->attached);
  EXPECT_EQ(first->state, "queued");

  // Identical spec from a second connection: same job, attached.
  TestClient other(handle.server->unix_socket_path());
  other.send(submit_message(spec, false));
  const auto second = other.receive_type(MessageType::kSubmitted);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->attached);
  EXPECT_EQ(second->job, first->job);

  // Different shard geometry -> different trace bytes -> a new job.
  JobSpec regeometry = spec;
  regeometry.shard_trials = 8;
  other.send(submit_message(regeometry, false));
  const auto third = other.receive_type(MessageType::kSubmitted);
  ASSERT_TRUE(third.has_value());
  EXPECT_FALSE(third->attached);
  EXPECT_NE(third->job, first->job);

  // Drain: both queued jobs are stopped (resumable), daemon exits 0.
  handle.stop_and_join();
  EXPECT_EQ(handle.exit_code, 0);
  EXPECT_EQ(handle.server->campaigns_run(), 0u);
}

TEST(ServiceServer, SurvivesClientDisconnectMidStream) {
  auto opts = test_options("gone");
  opts.job_workers = 1;

  ServerHandle handle;
  handle.start(opts);

  const JobSpec spec = small_vm_spec(0x90E);
  u64 job = 0;
  {
    // Subscribed client vanishes right after submitting: the daemon now has
    // events to deliver to a dead socket and must shrug them off.
    TestClient doomed(handle.server->unix_socket_path());
    doomed.send(submit_message(spec, /*want_events=*/true));
    const auto submitted = doomed.receive_type(MessageType::kSubmitted);
    ASSERT_TRUE(submitted.has_value());
    job = submitted->job;
    doomed.close();
  }

  // A second client still gets service, and the job still completes.
  TestClient client(handle.server->unix_socket_path());
  WireMessage ping;
  ping.type = MessageType::kPing;
  client.send(ping);
  const auto pong = client.receive_type(MessageType::kPong);
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->version, kProtocolVersion);

  for (int attempt = 0;; ++attempt) {
    ASSERT_LT(attempt, 1200) << "job never reached a terminal state";
    WireMessage status;
    status.type = MessageType::kStatus;
    status.job = job;
    client.send(status);
    const auto reply = client.receive_type(MessageType::kJobStatus);
    ASSERT_TRUE(reply.has_value());
    if (reply->state == "done") {
      EXPECT_EQ(reply->exit_code, 0u);
      break;
    }
    ASSERT_NE(reply->state, "failed") << reply->text;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  handle.stop_and_join();
  EXPECT_EQ(handle.exit_code, 0);
}

TEST(ServiceServer, DrainMidJobThenRestartConvergesByteIdentical) {
  // Enough shards (12) that the drain lands mid-campaign; if the campaign
  // happens to finish first the restart path degrades to a cache hit, and the
  // byte-identity assertion still holds either way.
  JobSpec spec = small_vm_spec(0xD12A);
  spec.trials = 24;  // x2 workloads / 4 shard_trials = 12 shards

  std::atomic<bool> stop_first{false};
  auto first_opts = test_options("drain");
  first_opts.job_workers = 1;
  first_opts.stop_flag = &stop_first;
  const std::string spool = first_opts.spool_dir;

  {
    ServerHandle handle;
    handle.start(first_opts);
    TestClient client(handle.server->unix_socket_path());
    client.send(submit_message(spec, /*want_events=*/true));
    const auto submitted = client.receive_type(MessageType::kSubmitted);
    ASSERT_TRUE(submitted.has_value());

    // Let a couple of shards commit, then pull the plug the way SIGTERM
    // does: raise the campaign stop flag and ask the server to drain.
    int shard_events = 0;
    while (shard_events < 2) {
      const auto msg = client.receive();
      ASSERT_TRUE(msg.has_value());
      if (msg->type == MessageType::kDone) break;  // campaign outran us
      if (msg->type == MessageType::kEvent && msg->event == "shard-done") {
        ++shard_events;
      }
    }
    stop_first.store(true);
    handle.stop_and_join();
    EXPECT_EQ(handle.exit_code, 0);
  }

  // Reference trace from an uninterrupted direct run.
  const std::string ref_trace = testing::TempDir() + "restored_drain_ref.jsonl";
  std::remove(ref_trace.c_str());
  faultinject::CampaignRunOptions ref_opts;
  ref_opts.workers = 1;
  ref_opts.shard_trials = spec.shard_trials;
  ref_opts.out_jsonl = ref_trace;
  faultinject::run_vm_campaign(vm_config_for(spec), ref_opts);

  // Restart on the same spool: the resubmitted job resumes from the manifest
  // (or is served from the spool if the first run completed) and converges to
  // the exact bytes of the uninterrupted run.
  auto second_opts = test_options("drain2");
  second_opts.spool_dir = spool;
  second_opts.job_workers = 1;
  ServerHandle handle;
  handle.start(second_opts);
  TestClient client(handle.server->unix_socket_path());
  client.send(submit_message(spec, /*want_events=*/true));
  const auto done = client.receive_type(MessageType::kDone);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, "done");
  EXPECT_EQ(done->exit_code, 0u);

  const std::string spool_trace = spool + "/" + spec_trace_filename(spec);
  EXPECT_EQ(slurp(spool_trace), slurp(ref_trace));

  handle.stop_and_join();
  EXPECT_EQ(handle.exit_code, 0);
}

}  // namespace restore::service
