// Campaign replay: interrupt a streamed campaign after k shards (via the
// max_shards trial-budget hook), resume it from the manifest, and require the
// final trace and aggregates to be byte-identical to an uninterrupted run.
// Also pins the safety property: a manifest written by a different campaign
// (other seed / config / shard geometry) refuses to resume.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "faultinject/campaign_io.hpp"
#include "faultinject/export.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"
#include "service/fleet_coordinator.hpp"
#include "service/fleet_worker.hpp"
#include "service/job_queue.hpp"

namespace restore::faultinject {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_trace(const std::string& tag) {
  return testing::TempDir() + "restore_replay_" + tag + ".jsonl";
}

VmCampaignConfig small_vm_config() {
  VmCampaignConfig config;
  config.seed = 0x4E01;
  config.trials_per_workload = 24;
  config.workloads = {"gzip", "mcf"};
  return config;
}

CampaignRunOptions streaming_opts(const std::string& trace) {
  CampaignRunOptions opts;
  opts.workers = 2;
  opts.shard_trials = 8;  // 3 shards per workload, 6 total
  opts.out_jsonl = trace;
  return opts;
}

TEST(CampaignReplay, InterruptedVmCampaignResumesByteIdentical) {
  const auto config = small_vm_config();

  // Reference: uninterrupted run, single-threaded. The interrupt happens at
  // 8 workers and the resume at 2, so the comparison also spans worker
  // counts (the acceptance property: interrupt+resume at any of 1/2/8
  // workers equals an uninterrupted run).
  const auto full_trace = temp_trace("vm_full");
  auto full_opts = streaming_opts(full_trace);
  full_opts.workers = 1;
  const auto full = run_vm_campaign(config, full_opts);

  // Interrupted run: stop after 2 of the 6 shards.
  const auto trace = temp_trace("vm_interrupted");
  auto opts = streaming_opts(trace);
  opts.workers = 8;
  opts.max_shards = 2;
  CampaignTelemetry killed;
  const auto partial = run_vm_campaign(config, opts, &killed);
  EXPECT_FALSE(killed.complete);
  EXPECT_EQ(killed.shards.size(), 2u);
  EXPECT_LT(partial.trials.size(), full.trials.size());

  // The on-disk state is a consistent prefix: manifest matches what the
  // trace holds.
  const auto mid = read_manifest(manifest_path_for(trace));
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->completed.size(), 2u);

  // Resume without the budget (and at a different worker count); the
  // reloaded shards must not be re-run.
  opts.max_shards = 0;
  opts.workers = 2;
  opts.resume = true;
  CampaignTelemetry resumed;
  const auto finished = run_vm_campaign(config, opts, &resumed);
  EXPECT_TRUE(resumed.complete);
  EXPECT_GT(resumed.resumed_trials, 0u);
  EXPECT_EQ(resumed.resumed_trials, partial.trials.size());

  // Aggregates and trace are byte-identical to the uninterrupted run.
  std::ostringstream full_csv, resumed_csv;
  write_vm_trials_csv(full_csv, full.trials);
  write_vm_trials_csv(resumed_csv, finished.trials);
  EXPECT_EQ(full_csv.str(), resumed_csv.str());
  EXPECT_EQ(slurp(full_trace), slurp(trace));
}

TEST(CampaignReplay, ResumeOfCompleteCampaignRerunsNothing) {
  const auto config = small_vm_config();
  const auto trace = temp_trace("vm_complete");
  auto opts = streaming_opts(trace);
  const auto first = run_vm_campaign(config, opts);

  opts.resume = true;
  CampaignTelemetry telemetry;
  const auto second = run_vm_campaign(config, opts, &telemetry);
  EXPECT_TRUE(telemetry.complete);
  EXPECT_EQ(telemetry.resumed_trials, first.trials.size());
  for (const auto& shard : telemetry.shards) {
    EXPECT_TRUE(shard.resumed) << shard.shard;
  }
  std::ostringstream a, b;
  write_vm_trials_csv(a, first.trials);
  write_vm_trials_csv(b, second.trials);
  EXPECT_EQ(a.str(), b.str());
}

TEST(CampaignReplay, ResumeRejectsManifestFromDifferentCampaign) {
  const auto trace = temp_trace("vm_mismatch");
  auto opts = streaming_opts(trace);
  opts.max_shards = 1;
  run_vm_campaign(small_vm_config(), opts);

  // Same trace path, different campaign identity: the seed changed.
  auto other = small_vm_config();
  other.seed ^= 1;
  opts.max_shards = 0;
  opts.resume = true;
  EXPECT_THROW(run_vm_campaign(other, opts), std::runtime_error);

  // ... and so does a different shard geometry under the same config.
  auto regeometry = streaming_opts(trace);
  regeometry.shard_trials = 5;
  regeometry.resume = true;
  EXPECT_THROW(run_vm_campaign(small_vm_config(), regeometry), std::runtime_error);
}

TEST(CampaignReplay, InterruptedUarchCampaignResumesByteIdentical) {
  UarchCampaignConfig config;
  config.seed = 0x4E02;
  config.trials_per_workload = 12;
  config.workloads = {"gzip"};

  // As in the VM test, the reference, interrupt and resume each use a
  // different worker count (1 / 8 / 2).
  const auto full_trace = temp_trace("uarch_full");
  CampaignRunOptions opts;
  opts.workers = 1;
  opts.shard_trials = 4;  // 3 shards
  opts.out_jsonl = full_trace;
  const auto full = run_uarch_campaign(config, opts);

  const auto trace = temp_trace("uarch_interrupted");
  opts.out_jsonl = trace;
  opts.workers = 8;
  opts.max_shards = 1;
  CampaignTelemetry killed;
  run_uarch_campaign(config, opts, &killed);
  EXPECT_FALSE(killed.complete);

  opts.max_shards = 0;
  opts.workers = 2;
  opts.resume = true;
  CampaignTelemetry resumed;
  const auto finished = run_uarch_campaign(config, opts, &resumed);
  EXPECT_TRUE(resumed.complete);
  EXPECT_GT(resumed.resumed_trials, 0u);

  std::ostringstream a, b;
  write_uarch_trials_csv(a, full.trials);
  write_uarch_trials_csv(b, finished.trials);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(slurp(full_trace), slurp(trace));
}

// The multi-node version of the replay property: a fleet node that crashes
// mid-campaign is quarantined and its shards re-leased to the healthy node,
// the coordinator is then interrupted (max_shards) and resumed — and the
// merged trace is still byte-identical to the uninterrupted single-process
// run. Campaign identity (config_hash x shard geometry) is what makes every
// one of those paths converge on the same bytes.
TEST(CampaignReplay, FleetQuarantineInterruptResumeByteIdentical) {
  service::JobSpec spec;
  spec.kind = "vm";
  spec.seed = 0x4E03;
  spec.trials = 8;
  spec.shard_trials = 4;  // 2 shards per workload, 4 total
  spec.workloads = {"gzip", "mcf"};

  // Reference bytes: the local orchestrator, no fleet anywhere.
  const auto full_trace = temp_trace("fleet_full");
  CampaignRunOptions full_opts;
  full_opts.workers = 1;
  full_opts.shard_trials = spec.shard_trials;
  full_opts.out_jsonl = full_trace;
  run_vm_campaign(service::vm_config_for(spec), full_opts);

  // One worker dies after a single lease, one stays healthy.
  service::FleetWorkerOptions flaky_opts;
  flaky_opts.listen = "127.0.0.1:0";
  flaky_opts.quiet = true;
  flaky_opts.fail_after_leases = 1;
  service::FleetWorker flaky(std::move(flaky_opts));
  service::FleetWorkerOptions healthy_opts;
  healthy_opts.listen = "127.0.0.1:0";
  healthy_opts.quiet = true;
  service::FleetWorker healthy(std::move(healthy_opts));
  flaky.start();
  healthy.start();
  std::thread flaky_thread([&] { flaky.run(); });
  std::thread healthy_thread([&] { healthy.run(); });

  const auto trace = temp_trace("fleet_interrupted");
  service::FleetOptions opts;
  opts.nodes = {flaky.address(), healthy.address()};
  opts.out_jsonl = trace;
  opts.connect_timeout_ms = 500;
  opts.node_retries = 0;
  opts.retry_backoff_ms = 1;
  opts.node_faults_max = 2;
  opts.quiet = true;
  opts.max_shards = 2;  // interrupt after two fresh commits
  service::FleetTelemetry cut;
  EXPECT_EQ(run_fleet_campaign(spec, opts, &cut), 130);
  EXPECT_FALSE(cut.complete);
  EXPECT_TRUE(cut.stopped);

  opts.max_shards = 0;
  opts.resume = true;
  service::FleetTelemetry resumed;
  const int code = run_fleet_campaign(spec, opts, &resumed);
  // 0 if the flaky node's quarantine landed in the first (pre-interrupt)
  // run, 3 if it happened in the resumed one; either way the campaign
  // completes and the bytes match the single-process reference.
  EXPECT_TRUE(code == 0 || code == 3) << code;
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_shards, cut.shards_done);
  EXPECT_EQ(slurp(trace), slurp(full_trace));

  flaky.stop();
  healthy.stop();
  flaky_thread.join();
  healthy_thread.join();
}

}  // namespace
}  // namespace restore::faultinject
