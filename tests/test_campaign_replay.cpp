// Campaign replay: interrupt a streamed campaign after k shards (via the
// max_shards trial-budget hook), resume it from the manifest, and require the
// final trace and aggregates to be byte-identical to an uninterrupted run.
// Also pins the safety property: a manifest written by a different campaign
// (other seed / config / shard geometry) refuses to resume.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "faultinject/campaign_io.hpp"
#include "faultinject/export.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"

namespace restore::faultinject {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_trace(const std::string& tag) {
  return testing::TempDir() + "restore_replay_" + tag + ".jsonl";
}

VmCampaignConfig small_vm_config() {
  VmCampaignConfig config;
  config.seed = 0x4E01;
  config.trials_per_workload = 24;
  config.workloads = {"gzip", "mcf"};
  return config;
}

CampaignRunOptions streaming_opts(const std::string& trace) {
  CampaignRunOptions opts;
  opts.workers = 2;
  opts.shard_trials = 8;  // 3 shards per workload, 6 total
  opts.out_jsonl = trace;
  return opts;
}

TEST(CampaignReplay, InterruptedVmCampaignResumesByteIdentical) {
  const auto config = small_vm_config();

  // Reference: uninterrupted run, single-threaded. The interrupt happens at
  // 8 workers and the resume at 2, so the comparison also spans worker
  // counts (the acceptance property: interrupt+resume at any of 1/2/8
  // workers equals an uninterrupted run).
  const auto full_trace = temp_trace("vm_full");
  auto full_opts = streaming_opts(full_trace);
  full_opts.workers = 1;
  const auto full = run_vm_campaign(config, full_opts);

  // Interrupted run: stop after 2 of the 6 shards.
  const auto trace = temp_trace("vm_interrupted");
  auto opts = streaming_opts(trace);
  opts.workers = 8;
  opts.max_shards = 2;
  CampaignTelemetry killed;
  const auto partial = run_vm_campaign(config, opts, &killed);
  EXPECT_FALSE(killed.complete);
  EXPECT_EQ(killed.shards.size(), 2u);
  EXPECT_LT(partial.trials.size(), full.trials.size());

  // The on-disk state is a consistent prefix: manifest matches what the
  // trace holds.
  const auto mid = read_manifest(manifest_path_for(trace));
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->completed.size(), 2u);

  // Resume without the budget (and at a different worker count); the
  // reloaded shards must not be re-run.
  opts.max_shards = 0;
  opts.workers = 2;
  opts.resume = true;
  CampaignTelemetry resumed;
  const auto finished = run_vm_campaign(config, opts, &resumed);
  EXPECT_TRUE(resumed.complete);
  EXPECT_GT(resumed.resumed_trials, 0u);
  EXPECT_EQ(resumed.resumed_trials, partial.trials.size());

  // Aggregates and trace are byte-identical to the uninterrupted run.
  std::ostringstream full_csv, resumed_csv;
  write_vm_trials_csv(full_csv, full.trials);
  write_vm_trials_csv(resumed_csv, finished.trials);
  EXPECT_EQ(full_csv.str(), resumed_csv.str());
  EXPECT_EQ(slurp(full_trace), slurp(trace));
}

TEST(CampaignReplay, ResumeOfCompleteCampaignRerunsNothing) {
  const auto config = small_vm_config();
  const auto trace = temp_trace("vm_complete");
  auto opts = streaming_opts(trace);
  const auto first = run_vm_campaign(config, opts);

  opts.resume = true;
  CampaignTelemetry telemetry;
  const auto second = run_vm_campaign(config, opts, &telemetry);
  EXPECT_TRUE(telemetry.complete);
  EXPECT_EQ(telemetry.resumed_trials, first.trials.size());
  for (const auto& shard : telemetry.shards) {
    EXPECT_TRUE(shard.resumed) << shard.shard;
  }
  std::ostringstream a, b;
  write_vm_trials_csv(a, first.trials);
  write_vm_trials_csv(b, second.trials);
  EXPECT_EQ(a.str(), b.str());
}

TEST(CampaignReplay, ResumeRejectsManifestFromDifferentCampaign) {
  const auto trace = temp_trace("vm_mismatch");
  auto opts = streaming_opts(trace);
  opts.max_shards = 1;
  run_vm_campaign(small_vm_config(), opts);

  // Same trace path, different campaign identity: the seed changed.
  auto other = small_vm_config();
  other.seed ^= 1;
  opts.max_shards = 0;
  opts.resume = true;
  EXPECT_THROW(run_vm_campaign(other, opts), std::runtime_error);

  // ... and so does a different shard geometry under the same config.
  auto regeometry = streaming_opts(trace);
  regeometry.shard_trials = 5;
  regeometry.resume = true;
  EXPECT_THROW(run_vm_campaign(small_vm_config(), regeometry), std::runtime_error);
}

TEST(CampaignReplay, InterruptedUarchCampaignResumesByteIdentical) {
  UarchCampaignConfig config;
  config.seed = 0x4E02;
  config.trials_per_workload = 12;
  config.workloads = {"gzip"};

  // As in the VM test, the reference, interrupt and resume each use a
  // different worker count (1 / 8 / 2).
  const auto full_trace = temp_trace("uarch_full");
  CampaignRunOptions opts;
  opts.workers = 1;
  opts.shard_trials = 4;  // 3 shards
  opts.out_jsonl = full_trace;
  const auto full = run_uarch_campaign(config, opts);

  const auto trace = temp_trace("uarch_interrupted");
  opts.out_jsonl = trace;
  opts.workers = 8;
  opts.max_shards = 1;
  CampaignTelemetry killed;
  run_uarch_campaign(config, opts, &killed);
  EXPECT_FALSE(killed.complete);

  opts.max_shards = 0;
  opts.workers = 2;
  opts.resume = true;
  CampaignTelemetry resumed;
  const auto finished = run_uarch_campaign(config, opts, &resumed);
  EXPECT_TRUE(resumed.complete);
  EXPECT_GT(resumed.resumed_trials, 0u);

  std::ostringstream a, b;
  write_uarch_trials_csv(a, full.trials);
  write_uarch_trials_csv(b, finished.trials);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(slurp(full_trace), slurp(trace));
}

}  // namespace
}  // namespace restore::faultinject
