// Tests for the seven SPECint-analog workloads: each must assemble, halt
// cleanly, be deterministic, produce a nonzero checksum, and exercise the
// instruction-mix properties the paper's study depends on (branches, memory
// traffic, calls).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "isa/instruction.hpp"
#include "uarch/core.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace restore::workloads {
namespace {

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSuite, HaltsCleanlyWithinBudget) {
  const Workload& wl = by_name(GetParam());
  EXPECT_GT(wl.clean_insns, 5'000u) << "workload too short to be interesting";
  EXPECT_LT(wl.clean_insns, 1'000'000u);
  EXPECT_EQ(wl.clean_output.size(), 8u) << "checksum epilogue must emit 8 bytes";
}

TEST_P(WorkloadSuite, DeterministicAcrossRuns) {
  const Workload& wl = by_name(GetParam());
  vm::Vm a(wl.program), b(wl.program);
  a.run(2'000'000);
  b.run(2'000'000);
  EXPECT_EQ(a.status(), vm::Vm::Status::kHalted);
  EXPECT_EQ(a.output(), b.output());
  EXPECT_EQ(a.retired_count(), b.retired_count());
  EXPECT_EQ(a.output(), wl.clean_output);
}

TEST_P(WorkloadSuite, NonTrivialChecksum) {
  const Workload& wl = by_name(GetParam());
  u64 checksum = 0;
  for (int i = 7; i >= 0; --i) {
    checksum = (checksum << 8) | static_cast<u8>(wl.clean_output[i]);
  }
  EXPECT_NE(checksum, 0u);
}

TEST_P(WorkloadSuite, InstructionMixIsRealistic) {
  const Workload& wl = by_name(GetParam());
  vm::Vm vm(wl.program);
  u64 branches = 0, loads = 0, stores = 0, total = 0;
  while (auto rec = vm.step()) {
    ++total;
    const auto inst = isa::decode(rec->insn);
    if (inst.valid && isa::is_cond_branch(inst.op)) ++branches;
    if (rec->is_load) ++loads;
    if (rec->is_store) ++stores;
  }
  ASSERT_GT(total, 0u);
  // The paper's argument leans on typical programs being dominated by
  // address computation and control flow (§3.1). Sanity-check the mix.
  EXPECT_GT(static_cast<double>(branches) / total, 0.05)
      << "conditional branches should be a noticeable fraction";
  EXPECT_GT(static_cast<double>(loads + stores) / total, 0.05)
      << "memory operations should be a noticeable fraction";
}

TEST_P(WorkloadSuite, TouchesOnlyMappedMemory) {
  const Workload& wl = by_name(GetParam());
  vm::Vm vm(wl.program);
  vm.run(2'000'000);
  EXPECT_EQ(vm.status(), vm::Vm::Status::kHalted);
  EXPECT_EQ(vm.fault(), isa::ExceptionKind::kNone);
}

INSTANTIATE_TEST_SUITE_P(AllSeven, WorkloadSuite,
                         ::testing::Values("bzip2", "gap", "gcc", "gzip", "mcf",
                                           "parser", "vortex"));

TEST(Workloads, RegistryHasSevenUniquePrograms) {
  const auto& list = all();
  ASSERT_EQ(list.size(), 7u);
  std::set<std::string> names, outputs;
  for (const auto& wl : list) {
    names.insert(wl.name);
    outputs.insert(wl.clean_output);
  }
  EXPECT_EQ(names.size(), 7u);
  EXPECT_EQ(outputs.size(), 7u) << "checksums should differ across workloads";
}

TEST(Workloads, ByNameThrowsOnUnknown) {
  EXPECT_THROW(by_name("specfp"), std::out_of_range);
}

TEST(Workloads, ExtendedSetRunsCleanly) {
  const auto& extras = extended();
  ASSERT_EQ(extras.size(), 2u);
  for (const auto& wl : extras) {
    EXPECT_GT(wl.clean_insns, 5'000u) << wl.name;
    EXPECT_EQ(wl.clean_output.size(), 8u) << wl.name;
    u64 checksum = 0;
    for (int i = 7; i >= 0; --i) {
      checksum = (checksum << 8) | static_cast<u8>(wl.clean_output[i]);
    }
    EXPECT_NE(checksum, 0u) << wl.name;
    // Extended workloads are reachable by name but excluded from all().
    EXPECT_NO_THROW(by_name(wl.name));
    for (const auto& base : all()) EXPECT_NE(base.name, wl.name);
  }
}

TEST(Workloads, ExtendedSetCosimsWithCore) {
  for (const auto& wl : extended()) {
    vm::Vm vm(wl.program);
    uarch::Core core(wl.program);
    u64 compared = 0;
    while (core.running()) {
      core.cycle();
      for (const auto& rec : core.retired_this_cycle()) {
        const auto ref = vm.step();
        ASSERT_TRUE(ref.has_value()) << wl.name;
        ASSERT_TRUE(rec.same_effect(*ref))
            << wl.name << " diverged at insn " << compared;
        ++compared;
      }
    }
    EXPECT_EQ(core.status(), uarch::Core::Status::kHalted) << wl.name;
    EXPECT_EQ(core.output(), wl.clean_output) << wl.name;
  }
}

TEST(Workloads, AddressSpaceIsSparse) {
  // The paper's exception symptom relies on the VA space being much larger
  // than the footprint: mapped pages should be a vanishing fraction of 2^52.
  for (const auto& wl : all()) {
    vm::Vm vm(wl.program);
    vm.run(2'000'000);
    EXPECT_LT(vm.memory().mapped_pages(), 200u) << wl.name;
  }
}

}  // namespace
}  // namespace restore::workloads
