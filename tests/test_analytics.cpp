// Analytics-layer regression suite: the columnar store must be an exact,
// deterministic mirror of the JSONL trace, and the query engine's answers
// must be reproducible to the byte.
//
// Four properties are pinned here:
//   1. Golden aggregates — the full fig2-style report over a fixed-seed vm
//      campaign matches tests/golden/analytics_fig2.json byte-for-byte (the
//      current rendering is always written next to the test binary, so
//      regeneration is a copy, never a hand edit).
//   2. Parity — outcome_counts over the store equals model_breakdown over
//      the in-memory trials the campaign produced.
//   3. Round trip — reconstruct_trace_jsonl returns the source trace bytes
//      exactly, for campaign-produced vm/uarch traces (including non-default
//      fault models, which populate the model/extra_bits/upset columns) and
//      for fuzzed synthetic traces probing field-encoding corners.
//   4. Thread identity — compaction and analysis produce identical bytes at
//      1 and 8 threads (the `tsan` label runs this under ThreadSanitizer).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analytics/column_store.hpp"
#include "analytics/compact.hpp"
#include "analytics/queries.hpp"
#include "analytics/report.hpp"
#include "faultinject/campaign_io.hpp"
#include "faultinject/export.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"

#ifndef RESTORE_GOLDEN_ANALYTICS
#error "RESTORE_GOLDEN_ANALYTICS must point at tests/golden/analytics_fig2.json"
#endif

namespace restore::analytics {
namespace {

using faultinject::CampaignManifest;
using faultinject::CampaignRunOptions;
using faultinject::VmCampaignConfig;
using faultinject::VmTrialResult;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "restore_analytics_" + tag;
}

// Runs the fixed-seed fig2-style campaign the golden aggregates pin.
faultinject::VmCampaignResult run_fig2_campaign(const std::string& trace) {
  VmCampaignConfig config;
  config.seed = 7;
  config.trials_per_workload = 24;  // all seven workloads -> 168 trials
  CampaignRunOptions opts;
  opts.shard_trials = 8;
  opts.out_jsonl = trace;
  return run_vm_campaign(config, opts);
}

TEST(Analytics, GoldenFig2ReportMatchesCommittedAggregates) {
  const std::string trace = temp_path("golden.jsonl");
  run_fig2_campaign(trace);

  const std::string store_path = store_path_for(trace);
  compact_trace(trace, store_path);
  const ColumnStoreReader store(store_path);
  const std::string current = report_json(analyze(store)) + "\n";
  std::ofstream("analytics_fig2_current.json", std::ios::binary) << current;

  const std::string golden = slurp(RESTORE_GOLDEN_ANALYTICS);
  ASSERT_FALSE(golden.empty())
      << "cannot read golden report at " << RESTORE_GOLDEN_ANALYTICS;
  EXPECT_EQ(golden, current)
      << "the fig2 aggregate report drifted from the golden file. If this is "
         "intentional, copy analytics_fig2_current.json (written next to the "
         "test binary) over tests/golden/analytics_fig2.json.";
}

TEST(Analytics, OutcomeCountsMatchModelBreakdownOverSourceTrials) {
  const std::string trace = temp_path("parity.jsonl");
  const auto result = run_fig2_campaign(trace);
  ASSERT_EQ(result.trials.size(), 168u);

  const std::string store_path = store_path_for(trace);
  compact_trace(trace, store_path);
  const ColumnStoreReader store(store_path);

  const auto from_store = outcome_counts(store);
  const auto from_trials = faultinject::model_breakdown(result.trials);
  ASSERT_EQ(from_store.size(), from_trials.size());
  u64 total = 0;
  for (std::size_t i = 0; i < from_store.size(); ++i) {
    EXPECT_EQ(from_store[i].model, from_trials[i].model) << i;
    EXPECT_EQ(from_store[i].outcome, from_trials[i].outcome) << i;
    EXPECT_EQ(from_store[i].count, from_trials[i].count) << i;
    total += from_store[i].count;
  }
  EXPECT_EQ(total, 168u);
}

TEST(Analytics, VmTraceRoundTripsThroughStoreByteIdentically) {
  // Multi-bit model so the model/extra_bits columns are exercised too.
  VmCampaignConfig config;
  config.seed = 0xA11C;
  config.trials_per_workload = 16;
  config.workloads = {"gzip", "mcf"};
  config.fault_model.model = faultinject::FaultModel::kMultiBitAdjacent;
  config.fault_model.multi_bits = 3;
  CampaignRunOptions opts;
  opts.shard_trials = 8;
  opts.out_jsonl = temp_path("vm_rt.jsonl");
  run_vm_campaign(config, opts);

  const std::string store_path = store_path_for(opts.out_jsonl);
  compact_trace(opts.out_jsonl, store_path);
  const ColumnStoreReader store(store_path);
  EXPECT_EQ(reconstruct_trace_jsonl(store), slurp(opts.out_jsonl));
}

TEST(Analytics, UarchTraceRoundTripsThroughStoreByteIdentically) {
  faultinject::UarchCampaignConfig config;
  config.seed = 0xA11D;
  config.trials_per_workload = 10;
  config.workloads = {"gzip"};
  config.monitor_cycles = 300;
  config.catchup_cycles = 300;
  config.fault_model.model = faultinject::FaultModel::kBurst;
  config.fault_model.burst_entries = 2;
  CampaignRunOptions opts;
  opts.shard_trials = 4;
  opts.out_jsonl = temp_path("uarch_rt.jsonl");
  run_uarch_campaign(config, opts);

  const std::string store_path = store_path_for(opts.out_jsonl);
  compact_trace(opts.out_jsonl, store_path);
  const ColumnStoreReader store(store_path);
  EXPECT_EQ(reconstruct_trace_jsonl(store), slurp(opts.out_jsonl));
}

// Synthetic vm trials probing encoding corners the campaigns may not hit in
// one run: kNever latencies, empty and multi-element extra_bits, abort
// records with spaces in the message, upset=false rate trials, and enough
// rows to span several row groups' worth of dictionary reuse.
TEST(Analytics, FuzzedVmTraceRoundTripsByteIdentically) {
  std::mt19937_64 rng(0xF022);
  const std::vector<std::string> workloads = {"gzip", "mcf", "art"};
  const std::vector<std::string> outcomes = {"masked", "cfv", "exception",
                                             "register", "sim-abort"};
  const std::vector<std::string> models = {"", "multi", "rate", "targeted"};

  const u64 shard_trials = 64;
  const u64 rows = 512;  // several shards
  std::string trace_text =
      faultinject::trace_header_line("vm") + "\n";
  for (u64 i = 0; i < rows; ++i) {
    VmTrialResult t;
    t.workload = workloads[rng() % workloads.size()];
    const std::string& outcome = outcomes[rng() % outcomes.size()];
    t.outcome = *faultinject::vm_outcome_from_string(outcome);
    t.latency = (rng() % 3 == 0) ? kNever : rng() % 100'000;
    t.inject_index = rng() % 1'000'000;
    t.bit = static_cast<u32>(rng() % 64);
    if (outcome == "sim-abort") {
      t.abort_type = "budget";
      t.abort_message = "trial exceeded step budget (fuzz case)";
    }
    t.model = models[rng() % models.size()];
    if (t.model == "multi") {
      const u64 extras = 1 + rng() % 3;
      for (u64 e = 0; e < extras; ++e) t.extra_bits.push_back(rng() % 64);
    }
    if (t.model == "rate") t.upset = rng() % 2 == 0;
    trace_text +=
        faultinject::vm_trial_to_jsonl(i / shard_trials, i % shard_trials, t) +
        "\n";
  }

  const std::string trace = temp_path("fuzz.jsonl");
  std::ofstream(trace, std::ios::binary) << trace_text;
  CampaignManifest manifest;
  manifest.kind = "vm";
  manifest.config_hash = 0xFADE;
  manifest.seed = 0xF022;
  manifest.shard_trials = shard_trials;
  manifest.total_shards = rows / shard_trials;
  manifest.total_trials = rows;
  for (u64 s = 0; s < manifest.total_shards; ++s) {
    manifest.completed.push_back(s);
    manifest.completed_trials.push_back(shard_trials);
    manifest.wall_ms.push_back(0);
  }
  faultinject::write_manifest(faultinject::manifest_path_for(trace), manifest);

  const std::string store_path = store_path_for(trace);
  // Synthetic inject_index values do not map to real golden runs, so skip
  // the root-cause replay; the round trip never uses derived columns.
  CompactOptions copts;
  copts.derive_root_cause = false;
  compact_trace(trace, store_path, copts);
  const ColumnStoreReader store(store_path);
  EXPECT_EQ(reconstruct_trace_jsonl(store), trace_text);

  const auto trials = reconstruct_vm_trials(store);
  ASSERT_EQ(trials.size(), rows);
  EXPECT_EQ(trials.front().shard, 0u);
  EXPECT_EQ(trials.back().shard, manifest.total_shards - 1);
}

TEST(Analytics, CompactionAndAnalysisAreByteIdenticalAcrossThreadCounts) {
  const std::string trace = temp_path("threads.jsonl");
  run_fig2_campaign(trace);

  std::vector<std::string> stores;
  std::vector<std::string> reports;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    const std::string store_path =
        trace + ".t" + std::to_string(threads) + ".cols";
    CompactOptions copts;
    copts.threads = threads;
    compact_trace(trace, store_path, copts);
    stores.push_back(slurp(store_path));

    const ColumnStoreReader store(store_path);
    QueryOptions qopts;
    qopts.threads = threads;
    reports.push_back(report_json(analyze(store, qopts)));
  }
  EXPECT_EQ(stores[0], stores[1]);
  EXPECT_EQ(reports[0], reports[1]);
}

TEST(Analytics, ReaderRejectsTruncatedAndBitFlippedStores) {
  const std::string trace = temp_path("corrupt.jsonl");
  VmCampaignConfig config;
  config.seed = 3;
  config.trials_per_workload = 8;
  config.workloads = {"gzip"};
  CampaignRunOptions opts;
  opts.shard_trials = 8;
  opts.out_jsonl = trace;
  run_vm_campaign(config, opts);

  const std::string store_path = store_path_for(trace);
  compact_trace(trace, store_path);
  const std::string good = slurp(store_path);

  const std::string truncated_path = temp_path("corrupt_trunc.cols");
  std::ofstream(truncated_path, std::ios::binary)
      << good.substr(0, good.size() / 2);
  EXPECT_THROW(ColumnStoreReader{truncated_path}, std::runtime_error);

  std::string flipped = good;
  flipped[flipped.size() / 3] ^= 0x40;  // inside the segment bytes
  const std::string flipped_path = temp_path("corrupt_flip.cols");
  std::ofstream(flipped_path, std::ios::binary) << flipped;
  EXPECT_THROW(ColumnStoreReader{flipped_path}, std::runtime_error);
}

}  // namespace
}  // namespace restore::analytics
