// Campaign-identity coverage of environment overrides (the getenv hole).
//
// Every env override is declared centrally in kEnvOverrides (common/cli.cpp)
// with an EnvClass; identity-class overrides resolve into config fields that
// feed config_hash(), so identity depends on the *effective* value — a
// campaign configured via RESTORE_TRIALS=40 and one configured via
// `--trials 40` are the same campaign (same hash, mutually resumable), while
// any change to an effective identity value changes the hash. simlint's
// ID-hash family cross-checks the same table statically; this suite proves
// the runtime half of the contract.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "faultinject/fault_model.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"

namespace restore {
namespace {

CliArgs make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "test_bin");
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) { ::unsetenv(name); }
  ~EnvGuard() { ::unsetenv(name_.c_str()); }
  void set(const std::string& value) { ::setenv(name_.c_str(), value.c_str(), 1); }

 private:
  std::string name_;
};

TEST(EnvOverrideTable, DeclaresExactlyTheKnownOverrides) {
  EXPECT_TRUE(env_override_declared("RESTORE_TRIALS"));
  EXPECT_TRUE(env_override_declared("RESTORE_SEED"));
  EXPECT_TRUE(env_override_declared("RESTORE_FAULT_MODEL"));
  EXPECT_FALSE(env_override_declared("RESTORE_BOGUS"));
  EXPECT_FALSE(env_override_declared(""));
}

TEST(EnvOverrideTable, FaultModelFlagBeatsEnvBeatsFallback) {
  EnvGuard model("RESTORE_FAULT_MODEL");
  const auto flag_args = make_args({"--fault-model", "burst"});
  const auto no_args = make_args({});

  EXPECT_FALSE(resolve_fault_model_name(no_args).has_value());
  model.set("set");
  EXPECT_EQ(resolve_fault_model_name(no_args).value_or(""), "set");
  EXPECT_EQ(resolve_fault_model_name(flag_args).value_or(""), "burst");
}

TEST(EnvOverrideTable, FlagBeatsEnvBeatsFallback) {
  EnvGuard trials("RESTORE_TRIALS");
  const auto flag_args = make_args({"--trials", "7"});
  const auto no_args = make_args({});

  EXPECT_EQ(resolve_trial_count(no_args, 99), 99u);
  trials.set("40");
  EXPECT_EQ(resolve_trial_count(no_args, 99), 40u);
  EXPECT_EQ(resolve_trial_count(flag_args, 99), 7u);
}

TEST(EnvOverrideTable, SeedFlagBeatsEnvBeatsFallback) {
  EnvGuard seed("RESTORE_SEED");
  const auto flag_args = make_args({"--seed", "11"});
  const auto no_args = make_args({});

  EXPECT_EQ(resolve_seed(no_args, 5), 5u);
  seed.set("23");
  EXPECT_EQ(resolve_seed(no_args, 5), 23u);
  EXPECT_EQ(resolve_seed(flag_args, 5), 11u);
}

// The identity contract: env-sourced and flag-sourced values produce the SAME
// campaign hash (source independence), and the effective value always reaches
// the hash (sensitivity). Together these close the getenv identity hole — an
// env override can neither smuggle a result-altering change past the
// manifest, nor fork the identity of an equivalently-configured campaign.
TEST(EnvOverrideIdentity, VmHashIsSourceIndependentButValueSensitive) {
  EnvGuard trials("RESTORE_TRIALS");
  EnvGuard seed("RESTORE_SEED");

  faultinject::VmCampaignConfig from_flags;
  from_flags.trials_per_workload =
      resolve_trial_count(make_args({"--trials", "40"}), 150);
  from_flags.seed = resolve_seed(make_args({"--seed", "11"}), 1);

  trials.set("40");
  seed.set("11");
  faultinject::VmCampaignConfig from_env;
  from_env.trials_per_workload = resolve_trial_count(make_args({}), 150);
  from_env.seed = resolve_seed(make_args({}), 1);

  EXPECT_EQ(faultinject::config_hash(from_flags),
            faultinject::config_hash(from_env));

  trials.set("41");
  faultinject::VmCampaignConfig different;
  different.trials_per_workload = resolve_trial_count(make_args({}), 150);
  different.seed = resolve_seed(make_args({}), 1);
  EXPECT_NE(faultinject::config_hash(from_env),
            faultinject::config_hash(different));
}

TEST(EnvOverrideIdentity, UarchHashIsSourceIndependentButValueSensitive) {
  EnvGuard trials("RESTORE_TRIALS");
  EnvGuard seed("RESTORE_SEED");

  faultinject::UarchCampaignConfig from_flags;
  from_flags.trials_per_workload =
      resolve_trial_count(make_args({"--trials", "20"}), 120);
  from_flags.seed = resolve_seed(make_args({"--seed", "11"}), 1);

  trials.set("20");
  seed.set("11");
  faultinject::UarchCampaignConfig from_env;
  from_env.trials_per_workload = resolve_trial_count(make_args({}), 120);
  from_env.seed = resolve_seed(make_args({}), 1);

  EXPECT_EQ(faultinject::config_hash(from_flags),
            faultinject::config_hash(from_env));

  seed.set("12");
  faultinject::UarchCampaignConfig different;
  different.trials_per_workload = resolve_trial_count(make_args({}), 120);
  different.seed = resolve_seed(make_args({}), 1);
  EXPECT_NE(faultinject::config_hash(from_env),
            faultinject::config_hash(different));
}

TEST(EnvOverrideIdentity, EverySeedableConfigFieldReachesTheHash) {
  const faultinject::VmCampaignConfig base;
  auto hash_of = [](auto mutate) {
    faultinject::VmCampaignConfig c;
    mutate(c);
    return faultinject::config_hash(c);
  };
  const u64 base_hash = faultinject::config_hash(base);
  EXPECT_NE(base_hash, hash_of([](auto& c) { c.seed ^= 1; }));
  EXPECT_NE(base_hash, hash_of([](auto& c) { c.trials_per_workload += 1; }));
  EXPECT_NE(base_hash, hash_of([](auto& c) { c.low32_only = true; }));
  EXPECT_NE(base_hash, hash_of([](auto& c) {
              c.model = faultinject::VmFaultModel::kRegisterBit;
            }));
  EXPECT_NE(base_hash, hash_of([](auto& c) { c.workloads = {"gzip"}; }));
}

// Every fault-model knob must reach the hash whenever the selected model
// reads it — and the default single-bit model must ignore all of them, so
// pre-expansion campaign hashes (and their resume manifests) stay stable.
TEST(FaultModelIdentity, EveryModelKnobReachesBothCampaignHashes) {
  auto uarch_hash = [](auto mutate) {
    faultinject::UarchCampaignConfig c;
    mutate(c.fault_model);
    return faultinject::config_hash(c);
  };
  auto vm_hash = [](auto mutate) {
    faultinject::VmCampaignConfig c;
    mutate(c.fault_model);
    return faultinject::config_hash(c);
  };
  using faultinject::FaultModel;
  using faultinject::FaultModelConfig;

  const u64 uarch_base = uarch_hash([](FaultModelConfig&) {});
  const u64 vm_base = vm_hash([](FaultModelConfig&) {});

  // Selecting any non-default model forks the identity of both campaigns
  // (burst/SET are uarch-only, so only the uarch hash is probed for them).
  for (const FaultModel model :
       {FaultModel::kMultiBitAdjacent, FaultModel::kBurst, FaultModel::kSet,
        FaultModel::kTargeted, FaultModel::kRateDriven}) {
    EXPECT_NE(uarch_base, uarch_hash([model](FaultModelConfig& fm) {
                fm.model = model;
              }))
        << to_string(model);
  }
  for (const FaultModel model : {FaultModel::kMultiBitAdjacent,
                                 FaultModel::kTargeted, FaultModel::kRateDriven}) {
    EXPECT_NE(vm_base, vm_hash([model](FaultModelConfig& fm) { fm.model = model; }))
        << to_string(model);
  }

  // Each knob forks the hash of the model that reads it.
  const u64 multi = uarch_hash([](FaultModelConfig& fm) {
    fm.model = FaultModel::kMultiBitAdjacent;
  });
  EXPECT_NE(multi, uarch_hash([](FaultModelConfig& fm) {
              fm.model = FaultModel::kMultiBitAdjacent;
              fm.multi_bits = 5;
            }));
  const u64 burst = uarch_hash([](FaultModelConfig& fm) {
    fm.model = FaultModel::kBurst;
  });
  EXPECT_NE(burst, uarch_hash([](FaultModelConfig& fm) {
              fm.model = FaultModel::kBurst;
              fm.burst_entries = 6;
            }));
  const u64 targeted = uarch_hash([](FaultModelConfig& fm) {
    fm.model = FaultModel::kTargeted;
  });
  EXPECT_NE(targeted, uarch_hash([](FaultModelConfig& fm) {
              fm.model = FaultModel::kTargeted;
              fm.target = "store";
            }));
  const u64 rate = vm_hash([](FaultModelConfig& fm) {
    fm.model = FaultModel::kRateDriven;
  });
  EXPECT_NE(rate, vm_hash([](FaultModelConfig& fm) {
              fm.model = FaultModel::kRateDriven;
              fm.vdd_mv = 900;
            }));
  EXPECT_NE(rate, vm_hash([](FaultModelConfig& fm) {
              fm.model = FaultModel::kRateDriven;
              fm.freq_mhz = 2000;
            }));
  EXPECT_NE(rate, vm_hash([](FaultModelConfig& fm) {
              fm.model = FaultModel::kRateDriven;
              fm.upset_ppm = 77;
            }));

  // The default model ignores every knob: historical hashes are frozen.
  EXPECT_EQ(uarch_base, uarch_hash([](FaultModelConfig& fm) {
              fm.multi_bits = 9;
              fm.burst_entries = 9;
              fm.target = "store";
              fm.vdd_mv = 800;
              fm.freq_mhz = 1600;
              fm.upset_ppm = 7;
            }));
  EXPECT_EQ(vm_base, vm_hash([](FaultModelConfig& fm) {
              fm.multi_bits = 9;
              fm.upset_ppm = 7;
            }));
}

// Source independence for the whole fault-model CLI surface: a campaign
// configured via RESTORE_FAULT_MODEL + flags hashes identically to one
// configured via --fault-model, and every flag value change forks the hash.
TEST(FaultModelIdentity, CliAndEnvSourcesProduceTheSameHash) {
  EnvGuard model("RESTORE_FAULT_MODEL");

  faultinject::UarchCampaignConfig from_flags;
  from_flags.fault_model = faultinject::fault_model_from_cli(
      make_args({"--fault-model", "multi", "--fault-bits", "4"}));

  model.set("multi");
  faultinject::UarchCampaignConfig from_env;
  from_env.fault_model =
      faultinject::fault_model_from_cli(make_args({"--fault-bits", "4"}));

  EXPECT_EQ(faultinject::config_hash(from_flags),
            faultinject::config_hash(from_env));

  faultinject::UarchCampaignConfig different;
  different.fault_model =
      faultinject::fault_model_from_cli(make_args({"--fault-bits", "5"}));
  EXPECT_NE(faultinject::config_hash(from_env),
            faultinject::config_hash(different));
}

}  // namespace
}  // namespace restore
