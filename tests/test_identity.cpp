// Campaign-identity coverage of environment overrides (the getenv hole).
//
// Every env override is declared centrally in kEnvOverrides (common/cli.cpp)
// with an EnvClass; identity-class overrides resolve into config fields that
// feed config_hash(), so identity depends on the *effective* value — a
// campaign configured via RESTORE_TRIALS=40 and one configured via
// `--trials 40` are the same campaign (same hash, mutually resumable), while
// any change to an effective identity value changes the hash. simlint's
// ID-hash family cross-checks the same table statically; this suite proves
// the runtime half of the contract.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"

namespace restore {
namespace {

CliArgs make_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "test_bin");
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) { ::unsetenv(name); }
  ~EnvGuard() { ::unsetenv(name_.c_str()); }
  void set(const std::string& value) { ::setenv(name_.c_str(), value.c_str(), 1); }

 private:
  std::string name_;
};

TEST(EnvOverrideTable, DeclaresExactlyTheKnownOverrides) {
  EXPECT_TRUE(env_override_declared("RESTORE_TRIALS"));
  EXPECT_TRUE(env_override_declared("RESTORE_SEED"));
  EXPECT_FALSE(env_override_declared("RESTORE_BOGUS"));
  EXPECT_FALSE(env_override_declared(""));
}

TEST(EnvOverrideTable, FlagBeatsEnvBeatsFallback) {
  EnvGuard trials("RESTORE_TRIALS");
  const auto flag_args = make_args({"--trials", "7"});
  const auto no_args = make_args({});

  EXPECT_EQ(resolve_trial_count(no_args, 99), 99u);
  trials.set("40");
  EXPECT_EQ(resolve_trial_count(no_args, 99), 40u);
  EXPECT_EQ(resolve_trial_count(flag_args, 99), 7u);
}

TEST(EnvOverrideTable, SeedFlagBeatsEnvBeatsFallback) {
  EnvGuard seed("RESTORE_SEED");
  const auto flag_args = make_args({"--seed", "11"});
  const auto no_args = make_args({});

  EXPECT_EQ(resolve_seed(no_args, 5), 5u);
  seed.set("23");
  EXPECT_EQ(resolve_seed(no_args, 5), 23u);
  EXPECT_EQ(resolve_seed(flag_args, 5), 11u);
}

// The identity contract: env-sourced and flag-sourced values produce the SAME
// campaign hash (source independence), and the effective value always reaches
// the hash (sensitivity). Together these close the getenv identity hole — an
// env override can neither smuggle a result-altering change past the
// manifest, nor fork the identity of an equivalently-configured campaign.
TEST(EnvOverrideIdentity, VmHashIsSourceIndependentButValueSensitive) {
  EnvGuard trials("RESTORE_TRIALS");
  EnvGuard seed("RESTORE_SEED");

  faultinject::VmCampaignConfig from_flags;
  from_flags.trials_per_workload =
      resolve_trial_count(make_args({"--trials", "40"}), 150);
  from_flags.seed = resolve_seed(make_args({"--seed", "11"}), 1);

  trials.set("40");
  seed.set("11");
  faultinject::VmCampaignConfig from_env;
  from_env.trials_per_workload = resolve_trial_count(make_args({}), 150);
  from_env.seed = resolve_seed(make_args({}), 1);

  EXPECT_EQ(faultinject::config_hash(from_flags),
            faultinject::config_hash(from_env));

  trials.set("41");
  faultinject::VmCampaignConfig different;
  different.trials_per_workload = resolve_trial_count(make_args({}), 150);
  different.seed = resolve_seed(make_args({}), 1);
  EXPECT_NE(faultinject::config_hash(from_env),
            faultinject::config_hash(different));
}

TEST(EnvOverrideIdentity, UarchHashIsSourceIndependentButValueSensitive) {
  EnvGuard trials("RESTORE_TRIALS");
  EnvGuard seed("RESTORE_SEED");

  faultinject::UarchCampaignConfig from_flags;
  from_flags.trials_per_workload =
      resolve_trial_count(make_args({"--trials", "20"}), 120);
  from_flags.seed = resolve_seed(make_args({"--seed", "11"}), 1);

  trials.set("20");
  seed.set("11");
  faultinject::UarchCampaignConfig from_env;
  from_env.trials_per_workload = resolve_trial_count(make_args({}), 120);
  from_env.seed = resolve_seed(make_args({}), 1);

  EXPECT_EQ(faultinject::config_hash(from_flags),
            faultinject::config_hash(from_env));

  seed.set("12");
  faultinject::UarchCampaignConfig different;
  different.trials_per_workload = resolve_trial_count(make_args({}), 120);
  different.seed = resolve_seed(make_args({}), 1);
  EXPECT_NE(faultinject::config_hash(from_env),
            faultinject::config_hash(different));
}

TEST(EnvOverrideIdentity, EverySeedableConfigFieldReachesTheHash) {
  const faultinject::VmCampaignConfig base;
  auto hash_of = [](auto mutate) {
    faultinject::VmCampaignConfig c;
    mutate(c);
    return faultinject::config_hash(c);
  };
  const u64 base_hash = faultinject::config_hash(base);
  EXPECT_NE(base_hash, hash_of([](auto& c) { c.seed ^= 1; }));
  EXPECT_NE(base_hash, hash_of([](auto& c) { c.trials_per_workload += 1; }));
  EXPECT_NE(base_hash, hash_of([](auto& c) { c.low32_only = true; }));
  EXPECT_NE(base_hash, hash_of([](auto& c) {
              c.model = faultinject::VmFaultModel::kRegisterBit;
            }));
  EXPECT_NE(base_hash, hash_of([](auto& c) { c.workloads = {"gzip"}; }));
}

}  // namespace
}  // namespace restore
