// Unit tests for microarchitecture components: predictors, caches, the state
// registry, and targeted pipeline behaviours (forwarding, recovery, symptom
// events).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "uarch/caches.hpp"
#include "uarch/core.hpp"
#include "uarch/predictors.hpp"
#include "uarch/state_registry.hpp"
#include "workloads/workloads.hpp"

namespace restore::uarch {
namespace {

// ---- predictors ----

TEST(BranchPredictorTest, LearnsAlwaysTaken) {
  BranchPredictor bp;
  const u64 pc = 0x1000;
  for (int i = 0; i < 16; ++i) bp.update(pc, 0, true);
  EXPECT_TRUE(bp.predict(pc, 0));
}

TEST(BranchPredictorTest, LearnsAlwaysNotTaken) {
  BranchPredictor bp;
  const u64 pc = 0x1000;
  for (int i = 0; i < 16; ++i) bp.update(pc, 0, false);
  EXPECT_FALSE(bp.predict(pc, 0));
}

TEST(BranchPredictorTest, GshareLearnsHistoryCorrelatedPattern) {
  // Alternating T/NT is unpredictable for bimodal but trivial for gshare.
  BranchPredictor bp;
  const u64 pc = 0x2000;
  u16 ghist = 0;
  bool taken = false;
  int correct = 0;
  for (int i = 0; i < 400; ++i) {
    taken = !taken;
    if (i > 200 && bp.predict(pc, ghist) == taken) ++correct;
    bp.update(pc, ghist, taken);
    ghist = static_cast<u16>(((ghist << 1) | (taken ? 1 : 0)) & 0xFFF);
  }
  EXPECT_GT(correct, 180);  // >90% over the last 199 predictions
}

TEST(BtbTest, StoresAndEvicts) {
  Btb btb;
  EXPECT_FALSE(btb.lookup(0x4000).has_value());
  btb.update(0x4000, 0xBEEF0);
  EXPECT_EQ(btb.lookup(0x4000).value_or(0), 0xBEEF0u);
  // A conflicting pc (same index, different tag) evicts.
  const u64 conflicting = 0x4000 + (512ull << 11) * 4;
  btb.update(conflicting, 0xCAFE0);
  EXPECT_EQ(btb.lookup(conflicting).value_or(0), 0xCAFE0u);
}

TEST(RasTest, LifoOrder) {
  ReturnAddressStack ras;
  EXPECT_TRUE(ras.empty());
  EXPECT_EQ(ras.pop(), 0u);
  ras.push(0x100);
  ras.push(0x200);
  EXPECT_EQ(ras.pop(), 0x200u);
  EXPECT_EQ(ras.pop(), 0x100u);
  EXPECT_TRUE(ras.empty());
}

TEST(RasTest, OverflowWrapsKeepingNewest) {
  ReturnAddressStack ras;
  for (u64 i = 1; i <= 12; ++i) ras.push(i * 0x10);
  // Depth is 8: the newest 8 survive.
  EXPECT_EQ(ras.pop(), 0xC0u);
  EXPECT_EQ(ras.pop(), 0xB0u);
}

TEST(JrsTest, ResettingCounterSemantics) {
  JrsConfidence jrs;
  const u64 pc = 0x3000;
  EXPECT_FALSE(jrs.high_confidence(pc, 0, 15));
  for (int i = 0; i < 15; ++i) jrs.update(pc, 0, true, 15);
  EXPECT_TRUE(jrs.high_confidence(pc, 0, 15));
  jrs.update(pc, 0, false, 15);  // one misprediction resets
  EXPECT_FALSE(jrs.high_confidence(pc, 0, 15));
}

// ---- caches ----

TEST(TagCacheTest, MissThenHit) {
  TagCache cache(6, 7);
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1004));  // same 64B line
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(TagCacheTest, ConflictEviction) {
  TagCache cache(6, 7);  // 128 lines of 64B
  cache.access(0x0);
  cache.access(0x0 + 128 * 64);  // same index, different tag
  EXPECT_FALSE(cache.access(0x0));  // evicted
}

TEST(TlbTest, ReachAndMisses) {
  Tlb tlb;
  EXPECT_FALSE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1FFF));  // same page
  EXPECT_FALSE(tlb.access(0x2000));
  EXPECT_EQ(tlb.misses(), 2u);
}

// ---- state registry ----

TEST(StateRegistryTest, TotalBitsNearPaperModel) {
  const auto& reg = StateRegistry::instance();
  // The paper's model has ~46,000 bits of "interesting" state (§5.3); ours
  // must be in the same regime for the Figure 8 extrapolation to hold.
  EXPECT_GT(reg.total_bits(), 35'000u);
  EXPECT_LT(reg.total_bits(), 55'000u);
  EXPECT_GT(reg.total_bits(StorageClass::kLatch), 5'000u);
  EXPECT_GT(reg.total_bits(StorageClass::kSram), 20'000u);
}

TEST(StateRegistryTest, LocateIsConsistent) {
  const auto& reg = StateRegistry::instance();
  // First bit and last bit map to the first and last fields.
  const BitRef first = reg.locate(0);
  EXPECT_EQ(first.field, 0u);
  EXPECT_EQ(first.entry, 0u);
  EXPECT_EQ(first.bit, 0u);
  const BitRef last = reg.locate(reg.total_bits() - 1);
  EXPECT_EQ(last.field, reg.fields().size() - 1);
  EXPECT_THROW(reg.locate(reg.total_bits()), std::out_of_range);
}

TEST(StateRegistryTest, FlipIsSelfInverse) {
  const auto& wl = workloads::by_name("gzip");
  Core core(wl.program);
  core.run(500);
  const auto& reg = StateRegistry::instance();
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const BitRef ref = reg.locate(rng.below(reg.total_bits()));
    const u64 before = reg.read(core, ref);
    reg.flip(core, ref);
    EXPECT_EQ(reg.read(core, ref), before ^ 1);
    reg.flip(core, ref);
    EXPECT_EQ(reg.read(core, ref), before);
  }
}

TEST(StateRegistryTest, HashDetectsSingleBitFlips) {
  const auto& wl = workloads::by_name("gap");
  Core core(wl.program);
  core.run(300);
  const auto& reg = StateRegistry::instance();
  const u64 clean = reg.hash_state(core);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const BitRef ref = reg.locate(rng.below(reg.total_bits()));
    reg.flip(core, ref);
    EXPECT_NE(reg.hash_state(core), clean) << reg.field(ref).name;
    reg.flip(core, ref);
    EXPECT_EQ(reg.hash_state(core), clean);
  }
}

TEST(StateRegistryTest, SampleRespectsStorageFilter) {
  const auto& reg = StateRegistry::instance();
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const BitRef ref = reg.sample(rng, StorageClass::kLatch);
    EXPECT_EQ(reg.field(ref).storage, StorageClass::kLatch);
  }
}

TEST(StateRegistryTest, SampleCoversManyFields) {
  const auto& reg = StateRegistry::instance();
  Rng rng(6);
  std::set<u32> fields;
  for (int i = 0; i < 3000; ++i) fields.insert(reg.sample(rng).field);
  EXPECT_GT(fields.size(), reg.fields().size() / 2);
}

TEST(StateRegistryTest, DiffSeparatesLiveAndDeadState) {
  const auto& wl = workloads::by_name("mcf");
  Core a(wl.program);
  a.run(400);
  Core b = a;  // value semantics: exact copy
  const auto& reg = StateRegistry::instance();
  EXPECT_FALSE(reg.diff(a, b).any);

  // Flip a bit in a dead free-list slot (outside [head, head+count)).
  b.free_ring_[(b.fl_head_ + b.fl_count_ + 2) & (kFreeListEntries - 1)] ^= 1;
  auto d = reg.diff(a, b);
  EXPECT_TRUE(d.any);
  EXPECT_FALSE(d.any_live);

  // Flip architectural state: definitely live.
  Core c = a;
  c.spec_rat_[5] ^= 1;
  d = reg.diff(a, c);
  EXPECT_TRUE(d.any);
  EXPECT_TRUE(d.any_live);
}

TEST(StateRegistryTest, ProtectionClassesAssigned) {
  const auto& reg = StateRegistry::instance();
  u64 parity = 0, ecc = 0, none = 0;
  for (const auto& f : reg.fields()) {
    switch (f.protection) {
      case LhfProtection::kParity: parity += f.total_bits(); break;
      case LhfProtection::kEcc: ecc += f.total_bits(); break;
      case LhfProtection::kNone: none += f.total_bits(); break;
    }
  }
  // The hardened pipeline ECC's the large SRAM arrays and parity-protects the
  // in-order pipeline's control words, leaving datapath values, addresses and
  // CAM-resident structures (scheduler, LSQ) exposed — that residue is what
  // ReStore adds coverage for (paper §5.2.2).
  EXPECT_GT(ecc, 20'000u);
  EXPECT_GT(parity, 2'500u);
  EXPECT_GT(none, 5'000u);
}

// ---- pipeline behaviours ----

TEST(CoreSymptoms, HighConfMispredictEventFires) {
  // Train a loop branch until its JRS counter saturates, then let the final
  // iteration mispredict: the event must be flagged high-confidence.
  const auto program = isa::assemble(
      "main:\n"
      "  li s0, 200\n"
      "loop:\n"
      "  addi s0, s0, -1\n"
      "  bnez s0, loop\n"
      "  halt\n");
  Core core(program);
  bool saw_high_conf = false;
  while (core.running()) {
    core.cycle();
    for (const auto& ev : core.symptoms_this_cycle()) {
      if (ev.kind == SymptomEvent::Kind::kHighConfMispredict) saw_high_conf = true;
    }
  }
  EXPECT_EQ(core.status(), Core::Status::kHalted);
  EXPECT_TRUE(saw_high_conf);
}

TEST(CoreSymptoms, ExceptionEventCarriesFaultKind) {
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 0x123450\n"
      "  slli r1, r1, 24\n"
      "  ld r2, 0(r1)\n"
      "  halt\n");
  Core core(program);
  std::optional<SymptomEvent> event;
  while (core.running()) {
    core.cycle();
    for (const auto& ev : core.symptoms_this_cycle()) {
      if (ev.kind == SymptomEvent::Kind::kException) event = ev;
    }
  }
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->fault, isa::ExceptionKind::kMemTranslation);
  EXPECT_EQ(core.status(), Core::Status::kFaulted);
}

TEST(CoreSymptoms, WatchdogEventOnWedge) {
  const auto program = isa::assemble("main:\nloop: j loop\n");
  CoreConfig config;
  config.watchdog_cycles = 128;
  Core core(program, config);
  core.run(50);
  ASSERT_TRUE(core.running());
  core.rob_head_ = (core.rob_head_ + 17) & (kRobEntries - 1);  // wedge it
  bool saw_watchdog = false;
  while (core.running()) {
    core.cycle();
    for (const auto& ev : core.symptoms_this_cycle()) {
      if (ev.kind == SymptomEvent::Kind::kWatchdog) saw_watchdog = true;
    }
  }
  EXPECT_EQ(core.status(), Core::Status::kDeadlocked);
  EXPECT_TRUE(saw_watchdog);
}

TEST(CoreCopy, ValueSemanticsGiveIdenticalFutures) {
  const auto& wl = workloads::by_name("bzip2");
  Core a(wl.program);
  a.run(1'000);
  Core b = a;
  a.run(5'000);
  b.run(5'000);
  EXPECT_EQ(a.cycle_count(), b.cycle_count());
  EXPECT_EQ(a.retired_count(), b.retired_count());
  const auto& reg = StateRegistry::instance();
  EXPECT_EQ(reg.hash_state(a), reg.hash_state(b));
  EXPECT_EQ(a.memory().digest(), b.memory().digest());
}

TEST(CoreRobustness, RandomFlipsNeverCrashTheSimulator) {
  // Property: any single-bit flip leaves the simulator well-defined — the
  // machine either keeps running, halts, faults, or deadlocks, but never
  // crashes or runs unbounded.
  const auto& wl = workloads::by_name("gzip");
  const auto& reg = StateRegistry::instance();
  Rng rng(0xF11F);
  Core warm(wl.program);
  warm.run(2'000);
  ASSERT_TRUE(warm.running());
  for (int trial = 0; trial < 60; ++trial) {
    Core core = warm;
    const BitRef ref = reg.sample(rng);
    reg.flip(core, ref);
    core.run(6'000);
    SUCCEED() << reg.field(ref).name;
  }
}

}  // namespace
}  // namespace restore::uarch
