// Tests for the Figure 7 overhead model and the Figure 8 FIT scaling model.
#include <gtest/gtest.h>

#include "perfmodel/overhead.hpp"
#include "reliability/fit.hpp"

namespace restore {
namespace {

using core::RollbackPolicy;

// ---- perfmodel ----

TEST(AnalyticSpeedup, NoSymptomsNoOverhead) {
  EXPECT_DOUBLE_EQ(perfmodel::analytic_speedup(0.0, 100, RollbackPolicy::kImmediate),
                   1.0);
  EXPECT_DOUBLE_EQ(perfmodel::analytic_speedup(0.0, 100, RollbackPolicy::kDelayed),
                   1.0);
}

TEST(AnalyticSpeedup, OverheadGrowsWithIntervalForImmediate) {
  const double rate = 0.001;  // 1 false positive per 1000 instructions
  const double s100 = perfmodel::analytic_speedup(rate, 100, RollbackPolicy::kImmediate);
  const double s1000 =
      perfmodel::analytic_speedup(rate, 1000, RollbackPolicy::kImmediate);
  EXPECT_LT(s1000, s100);
  EXPECT_LT(s100, 1.0);
  // 0.001 * 150 = 15% extra work at interval 100.
  EXPECT_NEAR(s100, 1.0 / 1.15, 1e-9);
}

TEST(AnalyticSpeedup, DelayedWinsAtLargeIntervals) {
  // With one rollback per interval at most, a high symptom rate at large
  // intervals favours the delayed policy (paper: delayed gains an advantage
  // at 500-instruction intervals).
  const double rate = 0.002;
  const double imm = perfmodel::analytic_speedup(rate, 1000, RollbackPolicy::kImmediate);
  const double delayed =
      perfmodel::analytic_speedup(rate, 1000, RollbackPolicy::kDelayed);
  EXPECT_GT(delayed, imm);
}

TEST(AnalyticSpeedup, ImmediateWinsAtSmallIntervals) {
  // At small intervals the delayed policy's full-2n rollback distance hurts.
  const double rate = 0.0002;
  const double imm = perfmodel::analytic_speedup(rate, 25, RollbackPolicy::kImmediate);
  const double delayed = perfmodel::analytic_speedup(rate, 25, RollbackPolicy::kDelayed);
  EXPECT_GE(imm, delayed);
}

TEST(MeasuredOverhead, SingleWorkloadProducesSanePoints) {
  perfmodel::OverheadConfig config;
  config.intervals = {100, 500};
  config.workloads = {"mcf"};
  const auto points = perfmodel::measure_rollback_overhead(config);
  ASSERT_EQ(points.size(), 4u);  // 2 intervals x 2 policies
  for (const auto& p : points) {
    EXPECT_GT(p.speedup, 0.3) << p.interval;
    EXPECT_LE(p.speedup, 1.001) << p.interval;
    EXPECT_GT(p.baseline_cycles, 0u);
    EXPECT_GE(p.restore_cycles, p.baseline_cycles / 2);
  }
  const double s100 = perfmodel::mean_speedup(points, 100, RollbackPolicy::kImmediate);
  EXPECT_GT(s100, 0.5);
  EXPECT_LE(s100, 1.0);
}

// ---- reliability ----

TEST(FitModel, LinearInBitsAndProbability) {
  EXPECT_DOUBLE_EQ(reliability::fit_rate(1'000, 0.001, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(reliability::fit_rate(2'000, 0.001, 0.5),
                   2 * reliability::fit_rate(1'000, 0.001, 0.5));
  EXPECT_DOUBLE_EQ(reliability::fit_rate(1'000, 0.001, 0.0), 0.0);
}

TEST(FitModel, MtbfGoalMatchesPaper) {
  // Paper: "a reliability goal of 1000 MTBF ... is reflected by the
  // horizontal line at 115 FIT".
  EXPECT_NEAR(reliability::mtbf_goal_fit(1000.0), 114.2, 1.0);
}

TEST(FitModel, ScalingSweepOrdersConfigurations) {
  reliability::SdcRates rates;
  rates.baseline = 0.08;
  rates.restore = 0.045;
  rates.lhf = 0.03;
  rates.lhf_restore = 0.012;
  const auto points = reliability::fit_scaling(rates);
  ASSERT_EQ(points.size(), 10u);
  for (const auto& p : points) {
    EXPECT_GT(p.fit_baseline, p.fit_restore);
    EXPECT_GT(p.fit_restore, p.fit_lhf);
    EXPECT_GT(p.fit_lhf, p.fit_lhf_restore);
  }
  // FIT scales linearly with design size.
  EXPECT_NEAR(points.back().fit_baseline / points.front().fit_baseline,
              static_cast<double>(points.back().bits) / points.front().bits, 1e-6);
}

TEST(FitModel, ProtectedDesignMatchesSmallerUnprotectedOne) {
  // The paper's §5.3 observation: lhf+ReStore yields an MTBF comparable to a
  // design 1/7th the size. Equivalently, the size meeting a fixed FIT goal
  // scales with 1/sdc_probability.
  const double goal = reliability::mtbf_goal_fit(1000.0);
  const u64 base_bits = reliability::max_bits_meeting_goal(goal, 0.001, 0.07);
  const u64 protected_bits = reliability::max_bits_meeting_goal(goal, 0.001, 0.01);
  EXPECT_NEAR(static_cast<double>(protected_bits) / base_bits, 7.0, 0.01);
}

TEST(FitModel, ZeroSdcProbabilityMeansUnlimited) {
  EXPECT_EQ(reliability::max_bits_meeting_goal(100.0, 0.001, 0.0), ~u64{0});
}

}  // namespace
}  // namespace restore
