// ThreadPool edge cases: the degenerate ranges parallel_for must survive
// (empty, single-element, fewer items than workers) and explicit chunk sizes
// larger than the range. These are exactly the shapes the sharded campaign
// orchestrator produces for tiny test campaigns.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "common/thread_pool.hpp"

namespace restore {
namespace {

TEST(ThreadPool, ParallelForOverZeroItemsIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForOverZeroItemsInlinePool) {
  ThreadPool pool(0);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForSingleItem) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::atomic<std::size_t> seen{999};
  pool.parallel_for(1, [&](std::size_t i) {
    ++calls;
    seen = i;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen.load(), 0u);
}

TEST(ThreadPool, ParallelForFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::mutex mu;
  std::set<std::size_t> indices;
  pool.parallel_for(3, [&](std::size_t i) {
    std::lock_guard lock(mu);
    indices.insert(i);
  });
  EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2}));
}

TEST(ThreadPool, ChunkSizeLargerThanRangeCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(5);
  pool.parallel_for(
      5, [&](std::size_t i) { ++hits[i]; }, /*chunk_size=*/1000);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ExplicitChunkSizeCoversEveryIndexOnce) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 97;  // not a multiple of the chunk size
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(
      kCount, [&](std::size_t i) { ++hits[i]; }, /*chunk_size=*/7);
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, InlinePoolRunsEverythingOnCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const auto caller = std::this_thread::get_id();
  bool same_thread = true;
  pool.parallel_for(16, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) same_thread = false;
  });
  EXPECT_TRUE(same_thread);
}

TEST(ThreadPool, SubmitAndWaitIdleDrainsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { ++done; });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace restore
