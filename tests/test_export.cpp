// Tests for the CSV exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "faultinject/export.hpp"

namespace restore::faultinject {
namespace {

UarchTrialRecord sample_trial() {
  UarchTrialRecord t;
  t.workload = "gzip";
  t.field_name = "rob.pc";
  t.storage = uarch::StorageClass::kSram;
  t.protection = uarch::LhfProtection::kEcc;
  t.lat_exception = 42;
  t.trace_diverged = true;
  t.arch_corrupt_at_end = true;
  return t;
}

TEST(Export, UarchCsvHasHeaderAndRows) {
  std::ostringstream out;
  write_uarch_trials_csv(out, {sample_trial()});
  const std::string text = out.str();
  EXPECT_NE(text.find("workload,field,storage,protection"), std::string::npos);
  EXPECT_NE(text.find("gzip,rob.pc,sram,ecc,42,"), std::string::npos);
  // kNever latencies render as empty cells, not huge numbers.
  EXPECT_EQ(text.find("18446744073709551615"), std::string::npos);
}

TEST(Export, VmCsvRoundsTrip) {
  VmTrialResult trial;
  trial.workload = "mcf";
  trial.outcome = VmOutcome::kCfv;
  trial.latency = 7;
  trial.inject_index = 123;
  trial.bit = 9;
  std::ostringstream out;
  write_vm_trials_csv(out, {trial});
  EXPECT_NE(out.str().find("mcf,cfv,7,123,9"), std::string::npos);
}

TEST(Export, CategorySeriesSharesSumToOnePerRow) {
  std::vector<UarchTrialRecord> trials;
  for (int i = 0; i < 20; ++i) {
    UarchTrialRecord t = sample_trial();
    t.lat_exception = i * 30;
    trials.push_back(t);
  }
  std::ostringstream out;
  write_category_series_csv(out, trials, DetectorModel::kJrsConfidence,
                            ProtectionModel::kBaseline);
  std::string line;
  std::istringstream in(out.str());
  std::getline(in, line);  // header
  int rows = 0;
  while (std::getline(in, line)) {
    std::istringstream cells(line);
    std::string cell;
    std::getline(cells, cell, ',');  // interval
    double total = 0;
    while (std::getline(cells, cell, ',')) total += std::stod(cell);
    EXPECT_NEAR(total, 1.0, 1e-9) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 7);  // the checkpoint-interval sweep
}

TEST(Export, FileWriterRejectsBadPath) {
  EXPECT_THROW(write_vm_trials_csv("/nonexistent-dir/x.csv", {}), std::runtime_error);
}

}  // namespace
}  // namespace restore::faultinject
