// Tests for the CSV exporters, the matching readers and the JSONL campaign
// trace format: both round trips must be exact.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "faultinject/campaign_io.hpp"
#include "faultinject/export.hpp"

namespace restore::faultinject {
namespace {

UarchTrialRecord sample_trial() {
  UarchTrialRecord t;
  t.workload = "gzip";
  t.field_name = "rob.pc";
  t.storage = uarch::StorageClass::kSram;
  t.protection = uarch::LhfProtection::kEcc;
  t.lat_exception = 42;
  t.trace_diverged = true;
  t.arch_corrupt_at_end = true;
  return t;
}

TEST(Export, UarchCsvHasHeaderAndRows) {
  std::ostringstream out;
  write_uarch_trials_csv(out, {sample_trial()});
  const std::string text = out.str();
  EXPECT_NE(text.find("workload,model,field,storage,protection"), std::string::npos);
  // Default-model trials report as "single" in the model column.
  EXPECT_NE(text.find("gzip,single,rob.pc,sram,ecc,42,"), std::string::npos);
  // kNever latencies render as empty cells, not huge numbers.
  EXPECT_EQ(text.find("18446744073709551615"), std::string::npos);
}

TEST(Export, VmCsvRoundsTrip) {
  VmTrialResult trial;
  trial.workload = "mcf";
  trial.outcome = VmOutcome::kCfv;
  trial.latency = 7;
  trial.inject_index = 123;
  trial.bit = 9;
  std::ostringstream out;
  write_vm_trials_csv(out, {trial});
  EXPECT_NE(out.str().find("mcf,single,cfv,7,123,9"), std::string::npos);
}

TEST(Export, ReadersAcceptPreModelColumnLegacyCsv) {
  // Files exported before the fault-model expansion carry no model column;
  // both readers must keep parsing them (as default-model trials).
  std::istringstream legacy_vm(
      "workload,outcome,latency,inject_index,bit\n"
      "mcf,cfv,7,123,9\n");
  const auto vm = read_vm_trials_csv(legacy_vm);
  ASSERT_EQ(vm.size(), 1u);
  EXPECT_EQ(vm[0].workload, "mcf");
  EXPECT_EQ(vm[0].outcome, VmOutcome::kCfv);
  EXPECT_EQ(vm[0].bit, 9u);
  EXPECT_TRUE(vm[0].model.empty());

  std::istringstream legacy_uarch(
      "workload,field,storage,protection,lat_exception,lat_cfv,lat_hiconf,"
      "lat_deadlock,lat_illegal_flow,lat_cache_burst,trace_diverged,"
      "arch_corrupt,uarch_state_equal,live_state_diff,end_status\n"
      "gzip,rob.pc,sram,ecc,42,,,,,,1,1,0,0,0\n");
  const auto uarch = read_uarch_trials_csv(legacy_uarch);
  ASSERT_EQ(uarch.size(), 1u);
  EXPECT_EQ(uarch[0].workload, "gzip");
  EXPECT_EQ(uarch[0].field_name, "rob.pc");
  EXPECT_EQ(uarch[0].lat_exception, 42u);
  EXPECT_TRUE(uarch[0].model.empty());
}

TEST(Export, CategorySeriesSharesSumToOnePerRow) {
  std::vector<UarchTrialRecord> trials;
  for (int i = 0; i < 20; ++i) {
    UarchTrialRecord t = sample_trial();
    t.lat_exception = i * 30;
    trials.push_back(t);
  }
  std::ostringstream out;
  write_category_series_csv(out, trials, DetectorModel::kJrsConfidence,
                            ProtectionModel::kBaseline);
  std::string line;
  std::istringstream in(out.str());
  std::getline(in, line);  // header
  int rows = 0;
  while (std::getline(in, line)) {
    std::istringstream cells(line);
    std::string cell;
    std::getline(cells, cell, ',');  // interval
    double total = 0;
    while (std::getline(cells, cell, ',')) total += std::stod(cell);
    EXPECT_NEAR(total, 1.0, 1e-9) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 7);  // the checkpoint-interval sweep
}

TEST(Export, FileWriterRejectsBadPath) {
  EXPECT_THROW(write_vm_trials_csv("/nonexistent-dir/x.csv", {}), std::runtime_error);
}

// A uarch record exercising every serialized field, including kNever
// latencies (omitted in JSONL, empty cells in CSV) and a non-default
// end status.
UarchTrialRecord full_trial() {
  UarchTrialRecord t;
  t.workload = "vortex";
  t.bit = uarch::BitRef{3, 17, 41};
  t.storage = uarch::StorageClass::kLatch;
  t.protection = uarch::LhfProtection::kParity;
  t.field_name = "iq.op";
  t.lat_exception = kNever;
  t.lat_cfv = 12;
  t.lat_hiconf = 9;
  t.lat_deadlock = kNever;
  t.lat_illegal_flow = 77;
  t.lat_cache_burst = kNever;
  t.trace_diverged = true;
  t.arch_corrupt_at_end = false;
  t.uarch_state_equal = false;
  t.live_state_diff = true;
  t.end_status = uarch::Core::Status::kDeadlocked;
  return t;
}

void expect_same_uarch(const UarchTrialRecord& a, const UarchTrialRecord& b,
                       bool compare_bit) {
  EXPECT_EQ(a.workload, b.workload);
  if (compare_bit) {
    EXPECT_EQ(a.bit.field, b.bit.field);
    EXPECT_EQ(a.bit.entry, b.bit.entry);
    EXPECT_EQ(a.bit.bit, b.bit.bit);
  }
  EXPECT_EQ(a.storage, b.storage);
  EXPECT_EQ(a.protection, b.protection);
  EXPECT_EQ(a.field_name, b.field_name);
  EXPECT_EQ(a.lat_exception, b.lat_exception);
  EXPECT_EQ(a.lat_cfv, b.lat_cfv);
  EXPECT_EQ(a.lat_hiconf, b.lat_hiconf);
  EXPECT_EQ(a.lat_deadlock, b.lat_deadlock);
  EXPECT_EQ(a.lat_illegal_flow, b.lat_illegal_flow);
  EXPECT_EQ(a.lat_cache_burst, b.lat_cache_burst);
  EXPECT_EQ(a.trace_diverged, b.trace_diverged);
  EXPECT_EQ(a.arch_corrupt_at_end, b.arch_corrupt_at_end);
  EXPECT_EQ(a.uarch_state_equal, b.uarch_state_equal);
  EXPECT_EQ(a.live_state_diff, b.live_state_diff);
  EXPECT_EQ(a.end_status, b.end_status);
}

TEST(Export, UarchJsonlRoundTripIsExact) {
  const auto trial = full_trial();
  const std::string line = uarch_trial_to_jsonl(5, 11, trial);
  // kNever latencies are omitted, never printed as 2^64-1.
  EXPECT_EQ(line.find("18446744073709551615"), std::string::npos);
  const auto parsed = uarch_trial_from_jsonl(line);
  ASSERT_TRUE(parsed.has_value());
  const auto& [shard, slot, back] = *parsed;
  EXPECT_EQ(shard, 5u);
  EXPECT_EQ(slot, 11u);
  expect_same_uarch(trial, back, /*compare_bit=*/true);
}

TEST(Export, VmJsonlRoundTripIsExact) {
  VmTrialResult trial;
  trial.workload = "parser";
  trial.outcome = VmOutcome::kMasked;
  trial.latency = kNever;
  trial.inject_index = 100'000;
  trial.bit = 63;
  const std::string line = vm_trial_to_jsonl(2, 0, trial);
  const auto parsed = vm_trial_from_jsonl(line);
  ASSERT_TRUE(parsed.has_value());
  const auto& [shard, slot, back] = *parsed;
  EXPECT_EQ(shard, 2u);
  EXPECT_EQ(slot, 0u);
  EXPECT_EQ(back.workload, trial.workload);
  EXPECT_EQ(back.outcome, trial.outcome);
  EXPECT_EQ(back.latency, trial.latency);
  EXPECT_EQ(back.inject_index, trial.inject_index);
  EXPECT_EQ(back.bit, trial.bit);
}

TEST(Export, JsonlParserRejectsGarbage) {
  EXPECT_FALSE(vm_trial_from_jsonl("not json").has_value());
  EXPECT_FALSE(vm_trial_from_jsonl("{\"shard\":1").has_value());  // torn line
  EXPECT_FALSE(uarch_trial_from_jsonl("{}").has_value());
}

TEST(Export, VmCsvParsesBackExactly) {
  std::vector<VmTrialResult> trials;
  const VmOutcome outcomes[] = {VmOutcome::kMasked, VmOutcome::kException,
                                VmOutcome::kCfv, VmOutcome::kMemAddr};
  for (int i = 0; i < 4; ++i) {
    VmTrialResult t;
    t.workload = "gzip";
    t.outcome = outcomes[i];
    t.latency = t.outcome == VmOutcome::kMasked ? kNever : u64(i) * 10;
    t.inject_index = u64(i) * 997;
    t.bit = u32(i);
    trials.push_back(t);
  }
  std::ostringstream out;
  write_vm_trials_csv(out, trials);
  std::istringstream in(out.str());
  const auto back = read_vm_trials_csv(in);
  ASSERT_EQ(back.size(), trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(back[i].workload, trials[i].workload) << i;
    EXPECT_EQ(back[i].outcome, trials[i].outcome) << i;
    EXPECT_EQ(back[i].latency, trials[i].latency) << i;
    EXPECT_EQ(back[i].inject_index, trials[i].inject_index) << i;
    EXPECT_EQ(back[i].bit, trials[i].bit) << i;
  }
}

TEST(Export, UarchCsvParsesBackWithIdenticalClassification) {
  // Trials hitting the full precedence chain: deadlock > exception > cfv >
  // sdc, plus the non-failure categories.
  std::vector<UarchTrialRecord> trials;
  {
    auto t = full_trial();  // deadlocked with symptoms
    trials.push_back(t);
  }
  {
    auto t = full_trial();
    t.end_status = uarch::Core::Status::kRunning;
    t.lat_exception = 3;  // exception beats cfv
    trials.push_back(t);
  }
  {
    auto t = full_trial();
    t.end_status = uarch::Core::Status::kRunning;
    t.lat_cfv = 40;
    t.lat_hiconf = kNever;
    t.lat_illegal_flow = kNever;
    trials.push_back(t);
  }
  {
    auto t = full_trial();  // silent corruption, no symptoms at all
    t.end_status = uarch::Core::Status::kHalted;
    t.lat_cfv = kNever;
    t.lat_hiconf = kNever;
    t.lat_illegal_flow = kNever;
    t.arch_corrupt_at_end = true;
    trials.push_back(t);
  }
  {
    auto t = full_trial();  // fully masked
    t.end_status = uarch::Core::Status::kHalted;
    t.trace_diverged = false;
    t.live_state_diff = false;
    t.uarch_state_equal = true;
    t.lat_cfv = kNever;
    t.lat_hiconf = kNever;
    t.lat_illegal_flow = kNever;
    trials.push_back(t);
  }

  std::ostringstream out;
  write_uarch_trials_csv(out, trials);
  std::istringstream in(out.str());
  const auto back = read_uarch_trials_csv(in);
  ASSERT_EQ(back.size(), trials.size());

  std::map<UarchOutcome, int> want, got;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    // The CSV does not carry the raw BitRef, but every classification input
    // must survive the round trip.
    expect_same_uarch(trials[i], back[i], /*compare_bit=*/false);
    for (const u64 interval : {10u, 100u, 1000u}) {
      const auto a = classify_trial(trials[i], DetectorModel::kJrsConfidence,
                                    ProtectionModel::kBaseline, interval);
      const auto b = classify_trial(back[i], DetectorModel::kJrsConfidence,
                                    ProtectionModel::kBaseline, interval);
      EXPECT_EQ(a, b) << "trial " << i << " interval " << interval;
    }
    ++want[classify_trial(trials[i], DetectorModel::kPerfectCfv,
                          ProtectionModel::kBaseline, 100)];
    ++got[classify_trial(back[i], DetectorModel::kPerfectCfv,
                         ProtectionModel::kBaseline, 100)];
  }
  EXPECT_EQ(want, got);
}

TEST(Export, FaultModelFieldsRoundTripThroughJsonl) {
  // Uarch: the model token, every extra flipped bit, and the upset marker.
  auto uarch = full_trial();
  uarch.model = "burst";
  uarch.extra_bits = {pack_bit_ref(uarch::BitRef{3, 18, 41}),
                      pack_bit_ref(uarch::BitRef{3, 19, 41})};
  const auto uarch_parsed = uarch_trial_from_jsonl(uarch_trial_to_jsonl(0, 0, uarch));
  ASSERT_TRUE(uarch_parsed.has_value());
  const auto& uarch_back = std::get<2>(*uarch_parsed);
  expect_same_uarch(uarch, uarch_back, /*compare_bit=*/true);
  EXPECT_EQ(uarch_back.model, "burst");
  EXPECT_EQ(uarch_back.extra_bits, uarch.extra_bits);
  EXPECT_TRUE(uarch_back.upset);

  // A rate-driven no-upset trial keeps its explicit marker.
  auto no_upset = full_trial();
  no_upset.model = "rate";
  no_upset.upset = false;
  const auto no_upset_parsed =
      uarch_trial_from_jsonl(uarch_trial_to_jsonl(0, 1, no_upset));
  ASSERT_TRUE(no_upset_parsed.has_value());
  EXPECT_EQ(std::get<2>(*no_upset_parsed).model, "rate");
  EXPECT_FALSE(std::get<2>(*no_upset_parsed).upset);

  // Vm: model plus the extra flipped bit positions.
  VmTrialResult vm;
  vm.workload = "mcf";
  vm.outcome = VmOutcome::kMemData;
  vm.latency = 5;
  vm.inject_index = 77;
  vm.bit = 12;
  vm.model = "multi";
  vm.extra_bits = {13, 14, 15};
  const auto vm_parsed = vm_trial_from_jsonl(vm_trial_to_jsonl(1, 2, vm));
  ASSERT_TRUE(vm_parsed.has_value());
  const auto& vm_back = std::get<2>(*vm_parsed);
  EXPECT_EQ(vm_back.model, "multi");
  EXPECT_EQ(vm_back.extra_bits, vm.extra_bits);
  EXPECT_EQ(vm_back.bit, vm.bit);

  // Default-model lines carry none of the new keys: historical traces are
  // byte-frozen and re-parsing them yields default-model trials.
  const std::string default_line = uarch_trial_to_jsonl(0, 0, full_trial());
  EXPECT_EQ(default_line.find("\"model\""), std::string::npos);
  EXPECT_EQ(default_line.find("\"upset\""), std::string::npos);
}

TEST(Export, ModelColumnRoundTripsThroughCsv) {
  auto uarch = full_trial();
  uarch.model = "set";
  std::ostringstream uarch_out;
  write_uarch_trials_csv(uarch_out, {uarch, full_trial()});
  std::istringstream uarch_in(uarch_out.str());
  const auto uarch_back = read_uarch_trials_csv(uarch_in);
  ASSERT_EQ(uarch_back.size(), 2u);
  EXPECT_EQ(uarch_back[0].model, "set");
  EXPECT_TRUE(uarch_back[1].model.empty());  // "single" maps back to default

  VmTrialResult vm;
  vm.workload = "gzip";
  vm.outcome = VmOutcome::kRegister;
  vm.latency = 3;
  vm.inject_index = 41;
  vm.bit = 2;
  vm.model = "targeted";
  std::ostringstream vm_out;
  write_vm_trials_csv(vm_out, {vm, VmTrialResult{}});
  std::istringstream vm_in(vm_out.str());
  const auto vm_back = read_vm_trials_csv(vm_in);
  ASSERT_EQ(vm_back.size(), 2u);
  EXPECT_EQ(vm_back[0].model, "targeted");
  EXPECT_TRUE(vm_back[1].model.empty());
}

TEST(Export, FaultModelFieldsSurviveJsonlCsvJsonlRoundTrip) {
  // Regression: the CSV writers used to drop extra_bits/upset, so exporting a
  // trace to CSV and re-importing it silently demoted multi-bit/burst/rate
  // trials to plain single-bit ones. The chain JSONL -> CSV -> JSONL must now
  // preserve every fault-model field.
  VmTrialResult vm;
  vm.workload = "mcf";
  vm.outcome = VmOutcome::kMemData;
  vm.latency = 5;
  vm.inject_index = 77;
  vm.bit = 12;
  vm.model = "burst";
  vm.extra_bits = {13, 14, 15};
  VmTrialResult vm_no_upset;
  vm_no_upset.workload = "gzip";
  vm_no_upset.outcome = VmOutcome::kMasked;
  vm_no_upset.latency = kNever;
  vm_no_upset.model = "rate";
  vm_no_upset.upset = false;
  // Start from the JSONL rendering, as a spool trace would.
  std::vector<VmTrialResult> vm_in;
  for (const auto& t : {vm, vm_no_upset}) {
    const auto parsed = vm_trial_from_jsonl(vm_trial_to_jsonl(0, 0, t));
    ASSERT_TRUE(parsed.has_value());
    vm_in.push_back(std::get<2>(*parsed));
  }
  std::ostringstream vm_csv;
  write_vm_trials_csv(vm_csv, vm_in);
  std::istringstream vm_csv_in(vm_csv.str());
  const auto vm_back = read_vm_trials_csv(vm_csv_in);
  ASSERT_EQ(vm_back.size(), 2u);
  EXPECT_EQ(vm_back[0].model, "burst");
  EXPECT_EQ(vm_back[0].extra_bits, vm.extra_bits);
  EXPECT_TRUE(vm_back[0].upset);
  EXPECT_EQ(vm_back[1].model, "rate");
  EXPECT_TRUE(vm_back[1].extra_bits.empty());
  EXPECT_FALSE(vm_back[1].upset);
  // ...and back out to JSONL byte-identically.
  for (std::size_t i = 0; i < vm_in.size(); ++i) {
    EXPECT_EQ(vm_trial_to_jsonl(0, 0, vm_back[i]), vm_trial_to_jsonl(0, 0, vm_in[i]))
        << i;
  }

  auto uarch = full_trial();
  uarch.model = "burst";
  uarch.extra_bits = {pack_bit_ref(uarch::BitRef{3, 18, 41}),
                      pack_bit_ref(uarch::BitRef{3, 19, 41})};
  auto uarch_no_upset = full_trial();
  uarch_no_upset.model = "rate";
  uarch_no_upset.upset = false;
  std::ostringstream uarch_csv;
  write_uarch_trials_csv(uarch_csv, {uarch, uarch_no_upset, full_trial()});
  std::istringstream uarch_csv_in(uarch_csv.str());
  const auto uarch_back = read_uarch_trials_csv(uarch_csv_in);
  ASSERT_EQ(uarch_back.size(), 3u);
  EXPECT_EQ(uarch_back[0].model, "burst");
  EXPECT_EQ(uarch_back[0].extra_bits, uarch.extra_bits);
  EXPECT_TRUE(uarch_back[0].upset);
  EXPECT_EQ(uarch_back[1].model, "rate");
  EXPECT_FALSE(uarch_back[1].upset);
  EXPECT_TRUE(uarch_back[2].model.empty());
  EXPECT_TRUE(uarch_back[2].upset);
}

TEST(Export, ReadersAcceptPreFaultModelColumnCsv) {
  // 6-column vm / 16-column uarch files (model but no extra_bits/upset) keep
  // reading as single-bit always-upset trials.
  std::istringstream vm_csv(
      "workload,model,outcome,latency,inject_index,bit\n"
      "mcf,multi,cfv,7,123,9\n");
  const auto vm = read_vm_trials_csv(vm_csv);
  ASSERT_EQ(vm.size(), 1u);
  EXPECT_EQ(vm[0].model, "multi");
  EXPECT_TRUE(vm[0].extra_bits.empty());
  EXPECT_TRUE(vm[0].upset);

  std::istringstream uarch_csv(
      "workload,model,field,storage,protection,lat_exception,lat_cfv,lat_hiconf,"
      "lat_deadlock,lat_illegal_flow,lat_cache_burst,trace_diverged,"
      "arch_corrupt,uarch_equal,live_diff,end_status\n"
      "gzip,set,rob.pc,sram,ecc,42,,,,,,1,1,0,0,0\n");
  const auto uarch = read_uarch_trials_csv(uarch_csv);
  ASSERT_EQ(uarch.size(), 1u);
  EXPECT_EQ(uarch[0].model, "set");
  EXPECT_TRUE(uarch[0].extra_bits.empty());
  EXPECT_TRUE(uarch[0].upset);
}

TEST(Export, ModelBreakdownAggregatesPerModelAndRoundsTrip) {
  std::vector<VmTrialResult> trials;
  const auto add = [&](const std::string& model, VmOutcome outcome, int n) {
    for (int i = 0; i < n; ++i) {
      VmTrialResult t;
      t.workload = "gzip";
      t.outcome = outcome;
      t.model = model;
      trials.push_back(t);
    }
  };
  add("", VmOutcome::kMasked, 5);
  add("", VmOutcome::kCfv, 2);
  add("multi", VmOutcome::kMasked, 3);
  add("rate", VmOutcome::kMemData, 1);

  const auto rows = model_breakdown(trials);
  ASSERT_EQ(rows.size(), 4u);
  // Sorted by model then outcome; default-model trials report as "single".
  EXPECT_EQ(rows[0].model, "multi");
  EXPECT_EQ(rows[0].outcome, "masked");
  EXPECT_EQ(rows[0].count, 3u);
  EXPECT_EQ(rows[1].model, "rate");
  EXPECT_EQ(rows[1].outcome, "mem-data");
  EXPECT_EQ(rows[2].model, "single");
  EXPECT_EQ(rows[2].outcome, "cfv");
  EXPECT_EQ(rows[2].count, 2u);
  EXPECT_EQ(rows[3].model, "single");
  EXPECT_EQ(rows[3].outcome, "masked");
  EXPECT_EQ(rows[3].count, 5u);

  std::ostringstream out;
  write_model_breakdown_csv(out, rows);
  EXPECT_NE(out.str().find("model,outcome,count"), std::string::npos);
  std::istringstream in(out.str());
  const auto back = read_model_breakdown_csv(in);
  ASSERT_EQ(back.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(back[i].model, rows[i].model) << i;
    EXPECT_EQ(back[i].outcome, rows[i].outcome) << i;
    EXPECT_EQ(back[i].count, rows[i].count) << i;
  }
}

TEST(Export, UarchModelBreakdownClassifiesTrials) {
  auto masked = full_trial();
  masked.model = "burst";
  masked.end_status = uarch::Core::Status::kHalted;
  masked.trace_diverged = false;
  masked.live_state_diff = false;
  masked.uarch_state_equal = true;
  masked.lat_cfv = kNever;
  masked.lat_hiconf = kNever;
  masked.lat_illegal_flow = kNever;
  auto detected = full_trial();  // lat_cfv=12: a detected control-flow violation
  detected.model = "burst";
  const auto rows = model_breakdown({masked, detected, full_trial()},
                                    DetectorModel::kPerfectCfv,
                                    ProtectionModel::kBaseline, 100);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].model, "burst");
  EXPECT_EQ(rows[0].outcome, "cfv");
  EXPECT_EQ(rows[1].model, "burst");
  EXPECT_EQ(rows[1].outcome, "masked");
  EXPECT_EQ(rows[2].model, "single");
  EXPECT_EQ(rows[2].outcome, "cfv");
}

TEST(Export, ShardStatsCsvHasOneRowPerShard) {
  std::vector<ShardStats> shards(2);
  shards[0] = {0, "gzip", 32, 12.5, false};
  shards[1] = {1, "mcf", 16, 4.0, true};
  std::ostringstream out;
  write_shard_stats_csv(out, shards);
  const std::string text = out.str();
  EXPECT_NE(text.find("shard,workload,trials,wall_ms"), std::string::npos);
  EXPECT_NE(text.find("0,gzip,32,"), std::string::npos);
  EXPECT_NE(text.find("1,mcf,16,"), std::string::npos);
}

}  // namespace
}  // namespace restore::faultinject
