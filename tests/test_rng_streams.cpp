// Stream-independence and cross-platform stability of the campaign RNG.
//
// Shard determinism rests on shard_stream_seed(root_seed, workload, ordinal)
// yielding independent xoshiro256** streams: byte-identical traces at any
// worker count require that no two shards ever draw from correlated
// sequences, and resumability across machines requires the streams to be
// bit-stable across platforms/compilers. The golden constants below pin the
// exact values; they may only change together with a deliberate break of
// campaign-trace compatibility (a schema_version bump).
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "faultinject/orchestrator.hpp"

namespace restore::faultinject {
namespace {

const std::vector<std::string> kWorkloads = {"gzip",   "vortex", "mcf",
                                             "parser", "twolf",  "bzip2",
                                             "gap"};

TEST(RngStreams, ShardSeedsArePairwiseDistinct) {
  std::set<u64> seeds;
  std::size_t produced = 0;
  for (u64 root : {u64{11}, u64{0x5EED}, u64{0xC0FE}}) {
    for (const auto& workload : kWorkloads) {
      for (u64 ordinal = 0; ordinal < 64; ++ordinal) {
        seeds.insert(shard_stream_seed(root, workload, ordinal));
        ++produced;
      }
    }
  }
  EXPECT_EQ(seeds.size(), produced);
}

TEST(RngStreams, StreamsAreNonOverlapping) {
  // Draw a prefix from every shard stream of a realistic campaign plan and
  // require all values to be globally distinct. Overlapping streams share a
  // suffix, so any overlap within the first kDraws outputs would collide;
  // for independent 64-bit streams a collision among ~11k draws has
  // probability ~3e-12 (birthday bound).
  constexpr u64 kDraws = 256;
  std::set<u64> values;
  std::size_t produced = 0;
  for (const auto& workload : kWorkloads) {
    for (u64 ordinal = 0; ordinal < 6; ++ordinal) {
      Rng rng(shard_stream_seed(11, workload, ordinal));
      for (u64 i = 0; i < kDraws; ++i) {
        values.insert(rng.next());
        ++produced;
      }
    }
  }
  EXPECT_EQ(values.size(), produced);
}

TEST(RngStreams, ForkedStreamsAreIndependent) {
  Rng parent(11);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngStreams, GoldenShardSeeds) {
  // Pinned values: platform- or compiler-dependent drift here silently breaks
  // resume compatibility of every existing campaign trace.
  EXPECT_EQ(shard_stream_seed(11, "gzip", 0), 13125174783727325892ULL);
  EXPECT_EQ(shard_stream_seed(11, "gzip", 1), 8311748567635029698ULL);
  EXPECT_EQ(shard_stream_seed(11, "vortex", 0), 5434435865690623754ULL);
  EXPECT_EQ(shard_stream_seed(0x5EED, "mcf", 3), 2810143893178811063ULL);
}

TEST(RngStreams, GoldenFirstDraws) {
  Rng rng(shard_stream_seed(11, "gzip", 0));
  EXPECT_EQ(rng.next(), 10354301540935971137ULL);
  EXPECT_EQ(rng.next(), 14719810545430183419ULL);
  EXPECT_EQ(rng.below(46000), 6828ULL);
}

}  // namespace
}  // namespace restore::faultinject
