// Copy-on-write machine snapshots and incremental memory digests.
//
// The fault-injection harness forks thousands of trial machines from golden
// snapshots; these suites pin down the guarantees it relies on:
//  * writes to a fork never leak into the snapshot or sibling forks —
//    including writes replayed by CheckpointManager::rollback;
//  * the cached per-page digest always equals a from-scratch recompute;
//  * forked campaign trials classify identically to re-executed ones.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "faultinject/vm_campaign.hpp"
#include "uarch/core.hpp"
#include "vm/memory.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace restore {
namespace {

vm::PagedMemory patterned_memory(u64 base, u64 bytes, u64 seed) {
  vm::PagedMemory mem;
  mem.map_region(base, bytes, isa::Perms::kReadWrite);
  Rng rng(seed);
  for (u64 addr = base; addr < base + bytes; addr += 8) {
    mem.store(addr, 8, rng.next());
  }
  return mem;
}

// ---- COW isolation ----

TEST(CowIsolation, ForkWritesNeverLeakIntoTheSource) {
  vm::PagedMemory golden = patterned_memory(0x10000, 8 * vm::kPageBytes, 1);
  const u64 golden_digest = golden.digest();

  vm::PagedMemory fork = golden;
  EXPECT_EQ(fork.shared_pages_with(golden), golden.mapped_pages());
  EXPECT_TRUE(fork == golden);

  // Scribble over every page of the fork.
  for (u64 page = 0; page < 8; ++page) {
    ASSERT_TRUE(fork.store(0x10000 + page * vm::kPageBytes, 8, 0xDEADBEEFull).ok());
  }
  EXPECT_EQ(fork.shared_pages_with(golden), 0u);
  EXPECT_FALSE(fork == golden);
  EXPECT_EQ(golden.digest(), golden_digest);
  EXPECT_EQ(golden.digest(), golden.recompute_digest());
  EXPECT_EQ(golden.load(0x10000, 8).value, Rng(1).next());
}

TEST(CowIsolation, SiblingForksAreIndependent) {
  vm::PagedMemory golden = patterned_memory(0x40000, 4 * vm::kPageBytes, 2);
  vm::PagedMemory a = golden;
  vm::PagedMemory b = golden;

  a.store(0x40000, 8, 0x1111);
  b.store(0x40000, 8, 0x2222);
  EXPECT_EQ(a.load(0x40000, 8).value, 0x1111u);
  EXPECT_EQ(b.load(0x40000, 8).value, 0x2222u);
  EXPECT_EQ(golden.load(0x40000, 8).value, Rng(2).next());

  // Untouched pages are still physically shared three ways.
  EXPECT_EQ(a.shared_pages_with(b), golden.mapped_pages() - 1);
}

TEST(CowIsolation, WriteByteAndMapRegionPreserveSiblings) {
  vm::PagedMemory golden = patterned_memory(0x8000, 2 * vm::kPageBytes, 3);
  vm::PagedMemory fork = golden;

  fork.write_byte(0x8001, 0xFF);
  EXPECT_NE(golden.read_byte(0x8001), 0xFF);

  // Extending permissions on the fork must not change the source's behaviour
  // or digest (perms live outside the shared payload).
  const u64 before = golden.digest();
  fork.map_region(0x8000, vm::kPageBytes, isa::Perms::kExec);
  EXPECT_EQ(golden.digest(), before);
  EXPECT_EQ(golden.probe(0x8000, 4, false), isa::ExceptionKind::kNone);
  EXPECT_FALSE(golden == fork);
}

TEST(CowIsolation, RollbackOnForkDoesNotDisturbSnapshotOrSiblings) {
  // Run a real core, snapshot it, keep advancing with checkpoint
  // bookkeeping, then roll the core back. The rollback's undo-log writes go
  // through the COW mutator and must not reach the earlier snapshot or a
  // sibling fork taken at the same time.
  const auto& wl = workloads::by_name("gzip");
  uarch::Core core(wl.program);
  core.run(2'000);
  ASSERT_TRUE(core.running());

  const uarch::Core snapshot = core;   // shares all pages with `core`
  const uarch::Core sibling = snapshot;
  const u64 snapshot_digest = snapshot.memory().digest();

  core::CheckpointManager mgr(100, 2);
  mgr.maybe_checkpoint(core, true);
  const u64 until = core.retired_count() + 1'500;
  while (core.running() && core.retired_count() < until) {
    core.cycle();
    for (const auto& rec : core.retired_this_cycle()) mgr.on_retired(rec);
    mgr.maybe_checkpoint(core);
  }
  ASSERT_TRUE(core.running());
  mgr.rollback(core);

  EXPECT_EQ(snapshot.memory().digest(), snapshot_digest);
  EXPECT_EQ(sibling.memory().digest(), snapshot_digest);
  EXPECT_EQ(snapshot.memory().digest(), snapshot.memory().recompute_digest());
  EXPECT_TRUE(snapshot.memory() == sibling.memory());
}

TEST(CowIsolation, ForkedCoresComputeIdenticalFutures) {
  // The campaign's trial pattern: fork from a warm golden core, run both;
  // the fork's execution (which writes memory through COW pages) must match
  // the original's cycle for cycle.
  const auto& wl = workloads::by_name("bzip2");
  uarch::Core golden(wl.program);
  golden.run(1'000);
  ASSERT_TRUE(golden.running());

  uarch::Core fork = golden;
  golden.run(4'000);
  fork.run(4'000);
  EXPECT_EQ(fork.cycle_count(), golden.cycle_count());
  EXPECT_EQ(fork.retired_count(), golden.retired_count());
  EXPECT_EQ(fork.memory().digest(), golden.memory().digest());
  EXPECT_TRUE(fork.memory() == golden.memory());
}

// ---- digest coherence ----

TEST(DigestCoherence, IncrementalDigestMatchesRecomputeUnderRandomStores) {
  Rng rng(0xD16E57);
  for (int round = 0; round < 8; ++round) {
    vm::PagedMemory mem = patterned_memory(0x20000, 6 * vm::kPageBytes, round);
    vm::PagedMemory fork = mem;  // exercise the shared-page path too
    for (int burst = 0; burst < 40; ++burst) {
      for (int i = 0; i < 25; ++i) {
        const unsigned bytes = 1u << rng.below(4);
        const u64 addr =
            0x20000 + rng.below(6 * vm::kPageBytes / bytes) * bytes;
        vm::PagedMemory& target = rng.below(2) ? mem : fork;
        ASSERT_TRUE(target.store(addr, bytes, rng.next()).ok());
      }
      ASSERT_EQ(mem.digest(), mem.recompute_digest()) << "round " << round;
      ASSERT_EQ(fork.digest(), fork.recompute_digest()) << "round " << round;
      // digest() is a pure observer: repeated calls agree, and equal digests
      // track operator== through the whole sequence.
      ASSERT_EQ(mem.digest(), mem.digest());
      ASSERT_EQ(mem == fork, mem.digest() == fork.digest()) << "round " << round;
    }
  }
}

TEST(DigestCoherence, DigestIsIndependentOfSharingStructure) {
  // The same logical contents must hash identically whether pages are
  // shared, freshly cloned, or rebuilt from scratch.
  vm::PagedMemory a = patterned_memory(0x30000, 3 * vm::kPageBytes, 7);
  vm::PagedMemory b = a;
  b.store(0x30000, 8, 0x5A5A);              // unshare one page…
  b.store(0x30000, 8, a.load(0x30000, 8).value);  // …then restore its bytes
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.digest(), b.digest());

  vm::PagedMemory rebuilt = patterned_memory(0x30000, 3 * vm::kPageBytes, 7);
  EXPECT_EQ(rebuilt.digest(), a.digest());
}

// ---- campaign equivalence: forked trials == re-executed trials ----

TEST(VmCampaignSnapshots, ForkedTrialsMatchReexecutedTrials) {
  // run_vm_campaign positions trials by forking an incrementally advanced
  // golden VM; run_vm_trial re-executes from program start. Both must
  // classify identically.
  faultinject::VmCampaignConfig config;
  config.trials_per_workload = 40;
  config.workloads = {"gzip"};
  config.seed = 0xF0F0;
  const auto campaign = faultinject::run_vm_campaign(config);
  ASSERT_EQ(campaign.trials.size(), 40u);

  const auto& wl = workloads::by_name("gzip");
  for (const auto& trial : campaign.trials) {
    const auto ref = faultinject::run_vm_trial(wl, trial.inject_index, trial.bit,
                                               config.overrun_budget);
    EXPECT_EQ(trial.outcome, ref.outcome) << trial.inject_index;
    EXPECT_EQ(trial.latency, ref.latency) << trial.inject_index;
  }
}

}  // namespace
}  // namespace restore
