// Per-opcode semantic verification: every integer operation is checked
// against an independently written oracle over random operands, and through
// the full machine stack (assembler -> VM -> core) for representative values.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "uarch/core.hpp"
#include "vm/exec.hpp"
#include "vm/vm.hpp"

namespace restore {
namespace {

using isa::DecodedInst;
using isa::Opcode;

// Independent oracle (deliberately written differently from vm::exec_int_op).
i64 oracle(Opcode op, u64 a, u64 b) {
  const auto sa = static_cast<i64>(a);
  const auto sb = static_cast<i64>(b);
  const auto w = [](u64 v) { return static_cast<i64>(static_cast<i32>(v)); };
  switch (op) {
    case Opcode::kAdd: return static_cast<i64>(a + b);
    case Opcode::kSub: return static_cast<i64>(a - b);
    case Opcode::kMul: return static_cast<i64>(a * b);
    case Opcode::kDivu: return b ? static_cast<i64>(a / b) : 0;
    case Opcode::kRemu: return b ? static_cast<i64>(a % b) : 0;
    case Opcode::kAnd: return static_cast<i64>(a & b);
    case Opcode::kOr: return static_cast<i64>(a | b);
    case Opcode::kXor: return static_cast<i64>(a ^ b);
    case Opcode::kSll: return static_cast<i64>(a << (b % 64));
    case Opcode::kSrl: return static_cast<i64>(a >> (b % 64));
    case Opcode::kSra: return sa >> (b % 64);
    case Opcode::kSlt: return sa < sb;
    case Opcode::kSltu: return a < b;
    case Opcode::kSeq: return a == b;
    case Opcode::kAddw: return w(a + b);
    case Opcode::kSubw: return w(a - b);
    case Opcode::kMulw: return w(static_cast<u32>(a) * static_cast<u32>(b));
    default: return 0;
  }
}

class RTypeOracle : public ::testing::TestWithParam<Opcode> {};

TEST_P(RTypeOracle, MatchesIndependentImplementation) {
  const Opcode op = GetParam();
  DecodedInst inst;
  inst.op = op;
  inst.valid = true;
  Rng rng(static_cast<u64>(op) * 7919 + 13);
  for (int i = 0; i < 20'000; ++i) {
    u64 a = rng.next();
    u64 b = rng.next();
    // Mix in small/boundary values.
    if (i % 7 == 0) a = rng.below(4);
    if (i % 11 == 0) b = static_cast<u64>(-1) << rng.below(64);
    if ((op == Opcode::kDivu || op == Opcode::kRemu) && b == 0) b = 1;
    const auto result = vm::exec_int_op(inst, a, b);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(static_cast<i64>(result.value), oracle(op, a, b))
        << isa::mnemonic(op) << " a=" << a << " b=" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RTypeOracle,
    ::testing::Values(Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kDivu,
                      Opcode::kRemu, Opcode::kAnd, Opcode::kOr, Opcode::kXor,
                      Opcode::kSll, Opcode::kSrl, Opcode::kSra, Opcode::kSlt,
                      Opcode::kSltu, Opcode::kSeq, Opcode::kAddw, Opcode::kSubw,
                      Opcode::kMulw),
    [](const ::testing::TestParamInfo<Opcode>& info) {
      return std::string(isa::mnemonic(info.param));
    });

// Trapping variants agree with the non-trapping ones when no overflow occurs,
// and fault exactly when the signed result is unrepresentable.
class TrappingOracle : public ::testing::TestWithParam<Opcode> {};

TEST_P(TrappingOracle, FaultsIffSignedOverflow) {
  const Opcode op = GetParam();
  DecodedInst inst;
  inst.op = op;
  inst.valid = true;
  Rng rng(static_cast<u64>(op) * 104729);
  int faults = 0;
  for (int i = 0; i < 20'000; ++i) {
    const i64 a = static_cast<i64>(rng.next());
    const i64 b = static_cast<i64>(rng.next() >> rng.below(64));
    __int128 wide = 0;
    switch (op) {
      case Opcode::kAddv: wide = static_cast<__int128>(a) + b; break;
      case Opcode::kSubv: wide = static_cast<__int128>(a) - b; break;
      case Opcode::kMulv: wide = static_cast<__int128>(a) * b; break;
      default: break;
    }
    const bool overflows =
        wide > std::numeric_limits<i64>::max() || wide < std::numeric_limits<i64>::min();
    const auto result =
        vm::exec_int_op(inst, static_cast<u64>(a), static_cast<u64>(b));
    EXPECT_EQ(!result.ok(), overflows) << isa::mnemonic(op) << " a=" << a
                                       << " b=" << b;
    if (!result.ok()) {
      ++faults;
      EXPECT_EQ(result.fault, isa::ExceptionKind::kArithOverflow);
    } else {
      EXPECT_EQ(result.value, static_cast<u64>(static_cast<i64>(wide)));
    }
  }
  EXPECT_GT(faults, 0) << "operand mix never overflowed; test is vacuous";
}

INSTANTIATE_TEST_SUITE_P(Trapping, TrappingOracle,
                         ::testing::Values(Opcode::kAddv, Opcode::kSubv,
                                           Opcode::kMulv),
                         [](const ::testing::TestParamInfo<Opcode>& info) {
                           return std::string(isa::mnemonic(info.param));
                         });

// End-to-end spot checks: each R-type op through assembler -> VM -> core with
// fixed operands; all three layers must agree.
struct E2ECase {
  const char* op;
  u64 a;
  u64 b;
};

class OpcodeEndToEnd : public ::testing::TestWithParam<E2ECase> {};

TEST_P(OpcodeEndToEnd, AssemblerVmCoreAgree) {
  const E2ECase& c = GetParam();
  std::ostringstream source;
  source << "main:\n"
         << "  li r1, " << static_cast<i64>(c.a) << "\n"
         << "  li r2, " << static_cast<i64>(c.b) << "\n"
         << "  " << c.op << " r3, r1, r2\n"
         << "  halt\n";
  const auto program = isa::assemble(source.str());

  vm::Vm vm(program);
  vm.run(1'000);
  ASSERT_EQ(vm.status(), vm::Vm::Status::kHalted) << source.str();

  uarch::Core core(program);
  core.run(10'000);
  ASSERT_EQ(core.status(), uarch::Core::Status::kHalted) << source.str();

  DecodedInst inst;
  inst.op = isa::decode(isa::encode_rtype(Opcode::kAdd, 3, 1, 2)).op;  // shape
  EXPECT_EQ(vm.reg(3), core.arch_snapshot().regs[3]) << source.str();
}

INSTANTIATE_TEST_SUITE_P(
    Mix, OpcodeEndToEnd,
    ::testing::Values(E2ECase{"add", 0x7FFFFFFFFFFFull, 1},
                      E2ECase{"sub", 5, 100},
                      E2ECase{"mul", 0x10001, 0x10001},
                      E2ECase{"divu", 1000003, 17},
                      E2ECase{"remu", 1000003, 17},
                      E2ECase{"sll", 0x1234, 20},
                      E2ECase{"sra", static_cast<u64>(-4096), 4},
                      E2ECase{"slt", static_cast<u64>(-1), 0},
                      E2ECase{"sltu", static_cast<u64>(-1), 0},
                      E2ECase{"addw", 0x7FFFFFFF, 1},
                      E2ECase{"mulw", 0xFFFF, 0xFFFF}));

TEST(OpcodeEndToEnd, TrappingAddFaultsInThePipelineToo) {
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 0x7FFFFFFFFFFFFFFF\n"
      "  li r2, 1\n"
      "  addv r3, r1, r2\n"
      "  halt\n");
  uarch::Core core(program);
  core.run(10'000);
  EXPECT_EQ(core.status(), uarch::Core::Status::kFaulted);
  EXPECT_EQ(core.fault(), isa::ExceptionKind::kArithOverflow);
}

TEST(OpcodeEndToEnd, DivByZeroFaultsInThePipelineToo) {
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 7\n"
      "  divu r3, r1, zero\n"
      "  halt\n");
  uarch::Core core(program);
  core.run(10'000);
  EXPECT_EQ(core.status(), uarch::Core::Status::kFaulted);
  EXPECT_EQ(core.fault(), isa::ExceptionKind::kDivByZero);
}

}  // namespace
}  // namespace restore
