// Tests for the pipeline profiler.
#include <gtest/gtest.h>

#include <sstream>

#include "uarch/core.hpp"
#include "uarch/pipeline_stats.hpp"
#include "workloads/workloads.hpp"

namespace restore::uarch {
namespace {

PipelineStats profile(const char* workload, unsigned stride = 0) {
  Core core(workloads::by_name(workload).program);
  PipelineStats stats;
  if (stride) stats.enable_timeline(stride);
  while (core.running()) {
    core.cycle();
    stats.observe(core);
  }
  return stats;
}

TEST(PipelineStats, CountsMatchTheCore) {
  Core core(workloads::by_name("gzip").program);
  PipelineStats stats;
  while (core.running()) {
    core.cycle();
    stats.observe(core);
  }
  EXPECT_EQ(stats.cycles(), core.cycle_count());
  EXPECT_EQ(stats.retired(), core.retired_count());
  EXPECT_NEAR(stats.ipc(),
              static_cast<double>(core.retired_count()) / core.cycle_count(),
              1e-12);
}

TEST(PipelineStats, OccupanciesWithinCapacities) {
  const PipelineStats stats = profile("vortex");
  EXPECT_LE(stats.rob_occupancy().max(), kRobEntries);
  EXPECT_LE(stats.sched_occupancy().max(), kSchedEntries);
  EXPECT_LE(stats.fq_occupancy().max(), kFetchQueueEntries);
  EXPECT_LE(stats.ldq_occupancy().max(), kLdqEntries);
  EXPECT_LE(stats.stq_occupancy().max(), kStqEntries);
  EXPECT_LE(stats.exec_occupancy().max(), kExecSlots);
  EXPECT_GT(stats.rob_occupancy().mean(), 1.0);
}

TEST(PipelineStats, RetireHistogramSumsToCycles) {
  const PipelineStats stats = profile("mcf");
  u64 total = 0, weighted = 0;
  for (unsigned i = 0; i <= kRetireWidth; ++i) {
    total += stats.retire_histogram()[i];
    weighted += u64(i) * stats.retire_histogram()[i];
  }
  EXPECT_EQ(total, stats.cycles());
  EXPECT_EQ(weighted, stats.retired());
}

TEST(PipelineStats, StallAttributionCoversNoRetireCycles) {
  const PipelineStats stats = profile("gap");
  const u64 no_retire = stats.retire_histogram()[0];
  const auto& s = stats.stalls();
  EXPECT_EQ(s.rob_empty + s.head_executing + s.machine_stopped, no_retire);
}

TEST(PipelineStats, TimelineRowsAtStride) {
  const PipelineStats stats = profile("gzip", 64);
  std::ostringstream out;
  stats.write_timeline_csv(out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "cycle,rob,sched,fq,ldq,stq,exec");
  u64 rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, stats.cycles() / 64);
}

TEST(PipelineStats, ReportMentionsKeyNumbers) {
  const PipelineStats stats = profile("bzip2");
  const std::string report = stats.report();
  EXPECT_NE(report.find("ipc="), std::string::npos);
  EXPECT_NE(report.find("occupancy"), std::string::npos);
  EXPECT_NE(report.find("retire slots"), std::string::npos);
}

}  // namespace
}  // namespace restore::uarch
