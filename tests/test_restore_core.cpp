// Tests for the ReStore architecture layer: checkpoint store, event log, and
// the symptom-triggered rollback engine — including end-to-end recovery of
// injected soft errors, genuine-exception delivery, rollback policies, and
// dynamic throttling.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/event_log.hpp"
#include "core/restore_core.hpp"
#include "isa/assembler.hpp"
#include "uarch/state_registry.hpp"
#include "workloads/workloads.hpp"

namespace restore::core {
namespace {

using uarch::Core;

// ---- CheckpointManager ----

TEST(CheckpointManager, TakesCheckpointsAtInterval) {
  const auto& wl = workloads::by_name("gap");
  Core core(wl.program);
  CheckpointManager mgr(100, 2);
  mgr.maybe_checkpoint(core, true);
  u64 taken = 1;
  while (core.running() && core.retired_count() < 2'000) {
    core.cycle();
    for (const auto& rec : core.retired_this_cycle()) mgr.on_retired(rec);
    if (mgr.maybe_checkpoint(core)) ++taken;
  }
  // ~2000 instructions at interval 100 => about 20 checkpoints.
  EXPECT_GE(taken, 15u);
  EXPECT_LE(taken, 25u);
  EXPECT_EQ(mgr.live(), 2u);
}

TEST(CheckpointManager, RollbackRestoresRegistersAndMemory) {
  const auto program = isa::assemble(
      "main:\n"
      "  li s0, 0\n"
      "  la s1, data\n"
      "loop:\n"
      "  sd s0, 0(s1)\n"      // overwrite the same doubleword repeatedly
      "  addi s0, s0, 1\n"
      "  slti t0, s0, 400\n"
      "  bnez t0, loop\n"
      "  halt\n"
      ".data\n"
      ".align 8\n"
      "data: .word64 0xAAAA\n");
  Core core(program);
  CheckpointManager mgr(50, 2);
  mgr.maybe_checkpoint(core, true);

  // Run some instructions with checkpointing.
  while (core.running() && core.retired_count() < 600) {
    core.cycle();
    for (const auto& rec : core.retired_this_cycle()) mgr.on_retired(rec);
    mgr.maybe_checkpoint(core);
  }
  ASSERT_TRUE(core.running());

  const u64 checkpoint_pos = mgr.oldest().retired_at;
  const vm::ArchSnapshot expected = mgr.oldest().arch;
  const u64 expected_mem = [&] {
    // Memory at the checkpoint: data slot held the loop counter at that time.
    return core.memory().load(program.symbol("data"), 8).value;  // placeholder
  }();
  (void)expected_mem;

  const u64 distance = mgr.rollback(core);
  EXPECT_GE(distance, 50u);   // at least one interval back
  EXPECT_LE(distance, 150u);  // at most two intervals + skid
  EXPECT_TRUE(core.running());
  EXPECT_EQ(core.arch_snapshot(), expected);
  (void)checkpoint_pos;

  // Restored memory must be consistent with the restored registers: the data
  // word must be one of the values written before the checkpoint.
  const u64 mem_value = core.memory().load(program.symbol("data"), 8).value;
  const u64 s0_restored = expected.regs[20];
  // data holds s0_restored-1's store or the initial 0xAAAA if none yet.
  EXPECT_TRUE(mem_value == s0_restored - 1 || (s0_restored == 0 && mem_value == 0xAAAA))
      << "mem=" << mem_value << " s0=" << s0_restored;

  // And the machine must re-execute to completion correctly.
  core.run(1'000'000);
  EXPECT_EQ(core.status(), Core::Status::kHalted);
}

TEST(CheckpointManager, RollbackWithoutCheckpointThrows) {
  const auto& wl = workloads::by_name("gap");
  Core core(wl.program);
  CheckpointManager mgr(100, 2);
  EXPECT_THROW(mgr.rollback(core), std::logic_error);
  EXPECT_THROW(mgr.oldest(), std::logic_error);
}

// ---- EventLog ----

vm::Retired make_branch(u64 index, u64 pc, bool taken, u64 target) {
  vm::Retired rec;
  rec.pc = pc;
  rec.is_ctrl = true;
  rec.taken = taken;
  rec.next_pc = target;
  (void)index;
  return rec;
}

TEST(EventLogTest, RecordsOnlyControlFlow) {
  EventLog log;
  vm::Retired alu;
  alu.pc = 0x100;
  log.record(alu, 1);
  EXPECT_EQ(log.size(), 0u);
  log.record(make_branch(2, 0x104, true, 0x200), 2);
  EXPECT_EQ(log.size(), 1u);
}

TEST(EventLogTest, ReplayComparesOutcomes) {
  EventLog log;
  log.record(make_branch(10, 0x100, true, 0x200), 10);
  log.record(make_branch(12, 0x204, false, 0x208), 12);
  log.begin_replay(9, 1000);
  EXPECT_TRUE(log.compare(make_branch(0, 0x100, true, 0x200)));
  // Divergent outcome: detected error.
  EXPECT_FALSE(log.compare(make_branch(0, 0x204, true, 0x300)));
  EXPECT_EQ(log.mismatches(), 1u);
  log.end_replay();
  EXPECT_FALSE(log.replaying());
  EXPECT_EQ(log.size(), 2u);  // the history survives replay
}

TEST(EventLogTest, ReplayStartsAfterCheckpointIndex) {
  EventLog log;
  log.record(make_branch(5, 0xA0, true, 0xB0), 5);
  log.record(make_branch(15, 0xC0, true, 0xD0), 15);
  log.begin_replay(10, 1000);  // checkpoint at retired_count 10
  // The first compared entry must be the one at index 15.
  EXPECT_TRUE(log.compare(make_branch(0, 0xC0, true, 0xD0)));
  EXPECT_EQ(log.compared(), 1u);
}

TEST(EventLogTest, CapacityBounded) {
  EventLog log(8);
  for (u64 i = 0; i < 100; ++i) {
    log.record(make_branch(i, 0x1000 + 4 * i, true, 0x2000), i);
  }
  EXPECT_LE(log.size(), 8u);
}

// ---- ReStoreCore ----

TEST(ReStoreCoreTest, CleanRunCompletesWithCorrectOutput) {
  const auto& wl = workloads::by_name("gzip");
  ReStoreCore restore(wl.program);
  restore.run(10'000'000);
  EXPECT_EQ(restore.status(), ReStoreCore::Status::kHalted);
  EXPECT_EQ(restore.output(), wl.clean_output);
  EXPECT_EQ(restore.stats().genuine_exceptions, 0u);
  EXPECT_GT(restore.checkpoints().checkpoints_taken(), 10u);
}

TEST(ReStoreCoreTest, AllWorkloadsSurviveWithReStoreEnabled) {
  for (const auto& wl : workloads::all()) {
    ReStoreCore restore(wl.program);
    restore.run(20'000'000);
    EXPECT_EQ(restore.status(), ReStoreCore::Status::kHalted) << wl.name;
    EXPECT_EQ(restore.output(), wl.clean_output) << wl.name;
  }
}

// The flagship end-to-end property: inject microarchitectural bit flips that
// produce exception symptoms; ReStore must detect, roll back, and finish the
// program with the correct output.
TEST(ReStoreCoreTest, RecoversInjectedFaults) {
  const auto& wl = workloads::by_name("mcf");
  const auto& reg = uarch::StateRegistry::instance();
  Rng rng(0x4EC0);

  int recovered = 0, attempts = 0, rollback_runs = 0;
  for (int trial = 0; trial < 40; ++trial) {
    ReStoreCore restore(wl.program);
    // Warm up to a random point.
    const u64 warm = 500 + rng.below(4'000);
    restore.run(warm);
    if (!restore.running()) continue;
    ++attempts;
    reg.flip(restore.core(), reg.sample(rng));
    restore.run(20'000'000);
    if (restore.status() == ReStoreCore::Status::kHalted &&
        restore.output() == wl.clean_output) {
      ++recovered;
      if (restore.stats().rollbacks > 0) ++rollback_runs;
    }
  }
  ASSERT_GT(attempts, 30);
  // The vast majority of flips are masked or recovered; only flips that
  // corrupt state *behind* the checkpoint may produce wrong output.
  EXPECT_GE(recovered, attempts * 8 / 10)
      << "recovered " << recovered << "/" << attempts;
  EXPECT_GT(rollback_runs, 0) << "no trial exercised an actual rollback";
}

TEST(ReStoreCoreTest, GenuineExceptionIsDeliveredAfterVerification) {
  const auto program = isa::assemble(
      "main:\n"
      "  li s0, 100\n"
      "warm:\n"
      "  addi s0, s0, -1\n"
      "  bnez s0, warm\n"
      "  li r1, 0x7000000\n"
      "  slli r1, r1, 16\n"
      "  ld r2, 0(r1)\n"  // genuine translation fault
      "  halt\n");
  ReStoreCore restore(program);
  restore.run(1'000'000);
  EXPECT_EQ(restore.status(), ReStoreCore::Status::kArchitectedFault);
  EXPECT_EQ(restore.architected_fault(), isa::ExceptionKind::kMemTranslation);
  // It must have rolled back at least once to verify (re-execute) first.
  EXPECT_GE(restore.stats().exception_rollbacks, 1u);
  EXPECT_EQ(restore.stats().genuine_exceptions, 1u);
}

TEST(ReStoreCoreTest, TransientExceptionDoesNotReachSoftware) {
  // Corrupt a live pointer register value -> exception symptom -> rollback
  // restores the clean value -> program completes.
  const auto& wl = workloads::by_name("vortex");
  const auto& reg = uarch::StateRegistry::instance();
  ReStoreCore restore(wl.program);
  restore.run(2'000);
  ASSERT_TRUE(restore.running());

  // Find the physical register holding a mapped architectural register and
  // flip a high bit so the next dereference explodes.
  uarch::Core& core = restore.core();
  const u8 tag = core.arch_rat_[4];  // a2: a live pointer in the insert loop
  core.prf_[tag & 127] ^= (u64{1} << 40);
  (void)reg;

  restore.run(20'000'000);
  EXPECT_EQ(restore.status(), ReStoreCore::Status::kHalted);
  EXPECT_EQ(restore.output(), wl.clean_output);
}

TEST(ReStoreCoreTest, DelayedPolicyAlsoRecovers) {
  const auto& wl = workloads::by_name("bzip2");
  ReStoreOptions options;
  options.policy = RollbackPolicy::kDelayed;
  ReStoreCore restore(wl.program, options);
  restore.run(10'000'000);
  EXPECT_EQ(restore.status(), ReStoreCore::Status::kHalted);
  EXPECT_EQ(restore.output(), wl.clean_output);
}

TEST(ReStoreCoreTest, BranchSymptomCausesFalsePositiveRollbacks) {
  // With no injected faults at all, high-confidence mispredictions still
  // trigger rollbacks (the false positives whose cost Figure 7 quantifies) —
  // and the program must still complete correctly.
  const auto& wl = workloads::by_name("gap");
  ReStoreOptions options;
  options.throttle_max_rollbacks = 1'000'000;  // disable throttling
  ReStoreCore restore(wl.program, options);
  restore.run(20'000'000);
  EXPECT_EQ(restore.status(), ReStoreCore::Status::kHalted);
  EXPECT_EQ(restore.output(), wl.clean_output);
  EXPECT_GT(restore.stats().branch_rollbacks, 0u);
  EXPECT_GT(restore.stats().reexecuted_insns, 0u);
  // False positives detect no actual error during replay.
  EXPECT_EQ(restore.stats().detected_errors, 0u);
}

TEST(ReStoreCoreTest, ThrottlingLimitsRollbackStorms) {
  const auto& wl = workloads::by_name("gap");
  ReStoreOptions aggressive;
  aggressive.throttle_window = 5'000;
  aggressive.throttle_max_rollbacks = 1;
  aggressive.throttle_penalty = 20'000;
  ReStoreCore throttled(wl.program, aggressive);
  throttled.run(20'000'000);
  EXPECT_EQ(throttled.status(), ReStoreCore::Status::kHalted);

  ReStoreOptions permissive;
  permissive.throttle_max_rollbacks = 1'000'000;
  ReStoreCore unthrottled(wl.program, permissive);
  unthrottled.run(20'000'000);
  EXPECT_EQ(unthrottled.status(), ReStoreCore::Status::kHalted);

  EXPECT_LT(throttled.stats().branch_rollbacks,
            unthrottled.stats().branch_rollbacks);
  EXPECT_GT(throttled.stats().throttle_engagements, 0u);
}

TEST(ReStoreCoreTest, SymptomsCanBeDisabled) {
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 0x7000000\n"
      "  slli r1, r1, 16\n"
      "  ld r2, 0(r1)\n"
      "  halt\n");
  ReStoreOptions options;
  options.exception_symptom = false;
  ReStoreCore restore(program, options);
  restore.run(100'000);
  EXPECT_EQ(restore.status(), ReStoreCore::Status::kArchitectedFault);
  EXPECT_EQ(restore.stats().rollbacks, 0u);
}

TEST(ReStoreCoreTest, CheckpointIntervalSweepAllComplete) {
  const auto& wl = workloads::by_name("gzip");
  for (u64 interval : {10ull, 25ull, 100ull, 500ull, 1000ull}) {
    ReStoreOptions options;
    options.checkpoint_interval = interval;
    ReStoreCore restore(wl.program, options);
    restore.run(30'000'000);
    EXPECT_EQ(restore.status(), ReStoreCore::Status::kHalted) << interval;
    EXPECT_EQ(restore.output(), wl.clean_output) << interval;
  }
}

TEST(ReStoreCoreTest, WatchdogRecoveryHealsWedgedMachine) {
  const auto& wl = workloads::by_name("gap");
  uarch::CoreConfig config;
  config.watchdog_cycles = 256;
  ReStoreCore restore(wl.program, {}, config);
  restore.run(3'000);
  ASSERT_TRUE(restore.running());
  // Wedge the machine: rotate the ROB head so retirement points at junk.
  uarch::Core& core = restore.core();
  core.rob_head_ = (core.rob_head_ + 17) & (uarch::kRobEntries - 1);
  restore.run(30'000'000);
  EXPECT_EQ(restore.status(), ReStoreCore::Status::kHalted);
  EXPECT_EQ(restore.output(), wl.clean_output);
  EXPECT_GE(restore.stats().watchdog_rollbacks, 1u);
}

TEST(ReStoreCoreTest, CheckpointLatencyChargesStallCycles) {
  const auto& wl = workloads::by_name("gzip");
  ReStoreOptions ideal;
  ideal.checkpoint_interval = 100;
  ReStoreCore zero(wl.program, ideal);
  zero.run(100'000'000);
  ASSERT_EQ(zero.status(), ReStoreCore::Status::kHalted);
  EXPECT_EQ(zero.stall_cycles(), 0u);

  ReStoreOptions costly = ideal;
  costly.checkpoint_latency_cycles = 4;
  costly.restore_latency_cycles = 16;
  ReStoreCore priced(wl.program, costly);
  priced.run(100'000'000);
  ASSERT_EQ(priced.status(), ReStoreCore::Status::kHalted);
  EXPECT_EQ(priced.output(), wl.clean_output);
  // Every checkpoint costs 4 cycles (except the free one at construction);
  // rollbacks add 16 each.
  const u64 expected = 4 * (priced.checkpoints().checkpoints_taken() - 1) +
                       16 * priced.stats().rollbacks;
  EXPECT_EQ(priced.stall_cycles(), expected);
  EXPECT_GT(priced.cycle_count(), zero.cycle_count());
}

}  // namespace
}  // namespace restore::core
