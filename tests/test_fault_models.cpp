// Property/fuzz pinning of the expanded fault-model space (fault_model.hpp).
//
// The properties pinned here, per model and per structure class:
//   * every sampled injection plan respects its model's invariants — multi-bit
//     plans flip exactly k physically adjacent bits of one entry, burst plans
//     hit the same bit column across consecutive entries of one SRAM array,
//     SETs land on latches and are transient, targeted plans stay inside the
//     load/store-queue structures, rate-driven plans upset with the
//     operating-point probability;
//   * fuzzed injections of every model always classify into a valid outcome
//     and never escape the trial containment boundary (the `sanitize` label
//     re-runs this binary under ASan/UBSan);
//   * a SET that lands on a latch the pipeline does not overwrite reverts
//     after one monitored cycle (the glitch clears, the upset does not stick);
//   * plan sampling is a pure function of the model substream (byte identity),
//     and substreams are independent of the primary shard stream;
//   * FIT-weighted campaign allocation is integral, exact, proportional and
//     deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/fault_model.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "reliability/fit.hpp"
#include "uarch/core.hpp"
#include "uarch/state_registry.hpp"
#include "workloads/workloads.hpp"

namespace restore::faultinject {
namespace {

using uarch::BitRef;
using uarch::StateRegistry;
using uarch::StorageClass;

constexpr int kFuzzPlans = 400;

const StateRegistry& reg() { return StateRegistry::instance(); }

FaultModelConfig model_config(FaultModel model) {
  FaultModelConfig config;
  config.model = model;
  return config;
}

// A bit reference must address real state: a registered field, an entry within
// its array, a bit within its width.
void expect_valid_bit(const BitRef& bit) {
  ASSERT_LT(bit.field, reg().fields().size());
  const auto& field = reg().fields()[bit.field];
  EXPECT_LT(bit.entry, field.entries) << field.name;
  EXPECT_LT(bit.bit, field.bits_per_entry) << field.name;
}

// ---- token and identity surface ----

TEST(FaultModelTaxonomy, TokensRoundTripForEveryModel) {
  const FaultModel all[] = {FaultModel::kSingleBit, FaultModel::kMultiBitAdjacent,
                            FaultModel::kBurst,     FaultModel::kSet,
                            FaultModel::kTargeted,  FaultModel::kRateDriven};
  std::set<std::string> tokens;
  for (const FaultModel model : all) {
    const std::string token(to_string(model));
    EXPECT_FALSE(token.empty());
    EXPECT_NE(token, "?");
    tokens.insert(token);
    const auto back = fault_model_from_string(token);
    ASSERT_TRUE(back.has_value()) << token;
    EXPECT_EQ(*back, model);
  }
  EXPECT_EQ(tokens.size(), std::size(all)) << "model tokens must be distinct";
  EXPECT_FALSE(fault_model_from_string("cosmic-ray").has_value());
  EXPECT_FALSE(fault_model_from_string("").has_value());
}

TEST(FaultModelTaxonomy, OnlySingleBitIsTheDefaultModel) {
  EXPECT_TRUE(is_default_fault_model(model_config(FaultModel::kSingleBit)));
  for (const FaultModel model :
       {FaultModel::kMultiBitAdjacent, FaultModel::kBurst, FaultModel::kSet,
        FaultModel::kTargeted, FaultModel::kRateDriven}) {
    EXPECT_FALSE(is_default_fault_model(model_config(model)));
  }
  // Knob changes alone do not leave the default model: the paper's single-bit
  // campaigns must keep hashing (and serializing) exactly as before.
  FaultModelConfig knobs;
  knobs.multi_bits = 17;
  knobs.upset_ppm = 3;
  EXPECT_TRUE(is_default_fault_model(knobs));
}

TEST(FaultModelTaxonomy, IdentityKeyIncludesEveryKnobTheModelReads) {
  FaultModelConfig multi = model_config(FaultModel::kMultiBitAdjacent);
  multi.multi_bits = 5;
  EXPECT_NE(fault_model_identity_key(multi).find("k=5"), std::string::npos);

  FaultModelConfig burst = model_config(FaultModel::kBurst);
  burst.burst_entries = 7;
  EXPECT_NE(fault_model_identity_key(burst).find("entries=7"), std::string::npos);

  FaultModelConfig targeted = model_config(FaultModel::kTargeted);
  targeted.target = "store";
  EXPECT_NE(fault_model_identity_key(targeted).find("target=store"),
            std::string::npos);

  FaultModelConfig rate = model_config(FaultModel::kRateDriven);
  rate.vdd_mv = 900;
  rate.freq_mhz = 1500;
  rate.upset_ppm = 42;
  const std::string key = fault_model_identity_key(rate);
  EXPECT_NE(key.find("vdd=900"), std::string::npos);
  EXPECT_NE(key.find("freq=1500"), std::string::npos);
  EXPECT_NE(key.find("ppm=42"), std::string::npos);
}

TEST(FaultModelTaxonomy, UpsetProbabilityFollowsTheOperatingPoint) {
  FaultModelConfig nominal = model_config(FaultModel::kRateDriven);
  nominal.upset_ppm = 1000;  // 1e-3 at the nominal point
  EXPECT_DOUBLE_EQ(upset_probability(nominal), 1e-3);

  // Dropping Vdd by one 250 mV step doubles the rate; raising frequency
  // shrinks the exposure window proportionally.
  FaultModelConfig low_vdd = nominal;
  low_vdd.vdd_mv = 750;
  EXPECT_DOUBLE_EQ(upset_probability(low_vdd), 2e-3);
  FaultModelConfig fast = nominal;
  fast.freq_mhz = 2000;
  EXPECT_DOUBLE_EQ(upset_probability(fast), 5e-4);

  // The probability is clamped: a certain upset stays a probability.
  FaultModelConfig extreme = nominal;
  extreme.upset_ppm = 1'000'000;
  extreme.vdd_mv = 250;
  EXPECT_DOUBLE_EQ(upset_probability(extreme), 1.0);
}

TEST(FaultModelTaxonomy, ValidationRejectsInfeasibleConfigs) {
  for (const bool vm : {false, true}) {
    EXPECT_NO_THROW(validate_fault_model(model_config(FaultModel::kSingleBit), vm));
    FaultModelConfig one_bit = model_config(FaultModel::kMultiBitAdjacent);
    one_bit.multi_bits = 1;
    EXPECT_THROW(validate_fault_model(one_bit, vm), std::invalid_argument);
    FaultModelConfig too_wide = model_config(FaultModel::kMultiBitAdjacent);
    too_wide.multi_bits = 65;
    EXPECT_THROW(validate_fault_model(too_wide, vm), std::invalid_argument);
    FaultModelConfig bad_target = model_config(FaultModel::kTargeted);
    bad_target.target = "branch";
    EXPECT_THROW(validate_fault_model(bad_target, vm), std::invalid_argument);
    FaultModelConfig dead_point = model_config(FaultModel::kRateDriven);
    dead_point.freq_mhz = 0;
    EXPECT_THROW(validate_fault_model(dead_point, vm), std::invalid_argument);
  }
  // Burst and SET are microarchitectural by definition: the vm campaign has
  // no SRAM geometry and no cycle semantics.
  EXPECT_NO_THROW(validate_fault_model(model_config(FaultModel::kBurst), false));
  EXPECT_THROW(validate_fault_model(model_config(FaultModel::kBurst), true),
               std::invalid_argument);
  EXPECT_NO_THROW(validate_fault_model(model_config(FaultModel::kSet), false));
  EXPECT_THROW(validate_fault_model(model_config(FaultModel::kSet), true),
               std::invalid_argument);
  FaultModelConfig thin_burst = model_config(FaultModel::kBurst);
  thin_burst.burst_entries = 1;
  EXPECT_THROW(validate_fault_model(thin_burst, false), std::invalid_argument);
}

// ---- plan-sampling invariants, fuzzed per model x structure class ----

TEST(FaultModelPlans, SingleBitPlansAddressOneValidBit) {
  for (const bool latches_only : {false, true}) {
    Rng rng(0x51u + latches_only);
    for (int i = 0; i < kFuzzPlans; ++i) {
      const auto plan =
          sample_injection_plan(model_config(FaultModel::kSingleBit), reg(),
                                latches_only, rng);
      ASSERT_EQ(plan.bits.size(), 1u);
      expect_valid_bit(plan.bits[0]);
      EXPECT_FALSE(plan.transient);
      EXPECT_TRUE(plan.upset);
      if (latches_only) {
        EXPECT_EQ(reg().field(plan.bits[0]).storage, StorageClass::kLatch);
      }
    }
  }
}

TEST(FaultModelPlans, MultiBitPlansFlipExactlyKAdjacentBitsOfOneEntry) {
  for (const u32 k : {2u, 3u, 8u}) {
    for (const bool latches_only : {false, true}) {
      FaultModelConfig config = model_config(FaultModel::kMultiBitAdjacent);
      config.multi_bits = k;
      Rng rng(0x3117u * k + latches_only);
      for (int i = 0; i < kFuzzPlans; ++i) {
        const auto plan = sample_injection_plan(config, reg(), latches_only, rng);
        ASSERT_EQ(plan.bits.size(), k);
        const auto& field = reg().field(plan.bits[0]);
        ASSERT_GE(field.bits_per_entry, k) << field.name;
        for (u32 b = 0; b < k; ++b) {
          expect_valid_bit(plan.bits[b]);
          // One entry of one field, physically adjacent bit positions.
          EXPECT_EQ(plan.bits[b].field, plan.bits[0].field);
          EXPECT_EQ(plan.bits[b].entry, plan.bits[0].entry);
          EXPECT_EQ(plan.bits[b].bit, plan.bits[0].bit + b);
        }
        if (latches_only) {
          EXPECT_EQ(field.storage, StorageClass::kLatch);
        }
        EXPECT_FALSE(plan.transient);
      }
    }
  }
}

TEST(FaultModelPlans, BurstPlansHitOneColumnOfConsecutiveSramEntries) {
  for (const u32 n : {2u, 4u}) {
    FaultModelConfig config = model_config(FaultModel::kBurst);
    config.burst_entries = n;
    Rng rng(0xB0057u * n);
    for (int i = 0; i < kFuzzPlans; ++i) {
      const auto plan = sample_injection_plan(config, reg(), false, rng);
      ASSERT_EQ(plan.bits.size(), n);
      const auto& field = reg().field(plan.bits[0]);
      EXPECT_EQ(field.storage, StorageClass::kSram) << field.name;
      ASSERT_GE(field.entries, n) << field.name;
      for (u32 b = 0; b < n; ++b) {
        expect_valid_bit(plan.bits[b]);
        // Same array, same bit column, consecutive entries: a column strike.
        EXPECT_EQ(plan.bits[b].field, plan.bits[0].field);
        EXPECT_EQ(plan.bits[b].bit, plan.bits[0].bit);
        EXPECT_EQ(plan.bits[b].entry, plan.bits[0].entry + b);
      }
      EXPECT_FALSE(plan.transient);
    }
  }
}

TEST(FaultModelPlans, SetPlansAreTransientSingleLatchUpsets) {
  Rng rng(0x5E7);
  for (int i = 0; i < kFuzzPlans; ++i) {
    const auto plan =
        sample_injection_plan(model_config(FaultModel::kSet), reg(), false, rng);
    ASSERT_EQ(plan.bits.size(), 1u);
    expect_valid_bit(plan.bits[0]);
    EXPECT_EQ(reg().field(plan.bits[0]).storage, StorageClass::kLatch);
    EXPECT_TRUE(plan.transient);
    EXPECT_TRUE(plan.upset);
  }
}

TEST(FaultModelPlans, TargetedPlansStayInsideTheTargetedQueues) {
  for (const std::string target : {"load", "store"}) {
    FaultModelConfig config = model_config(FaultModel::kTargeted);
    config.target = target;
    const std::string prefix = target == "store" ? "stq." : "ldq.";
    Rng rng(0x7A6u + target.size());
    for (int i = 0; i < kFuzzPlans; ++i) {
      const auto plan = sample_injection_plan(config, reg(), false, rng);
      ASSERT_EQ(plan.bits.size(), 1u);
      expect_valid_bit(plan.bits[0]);
      EXPECT_EQ(reg().field(plan.bits[0]).name.substr(0, prefix.size()), prefix);
    }
  }
}

TEST(FaultModelPlans, RateDrivenUpsetsTrackTheConfiguredProbability) {
  // Certain upset at the nominal point; never an upset at a zero rate.
  FaultModelConfig certain = model_config(FaultModel::kRateDriven);
  Rng rng_certain(0x9A7E);
  FaultModelConfig never = certain;
  never.upset_ppm = 0;
  Rng rng_never(0x9A7F);
  for (int i = 0; i < kFuzzPlans; ++i) {
    EXPECT_TRUE(
        sample_injection_plan(certain, reg(), false, rng_certain).upset);
    EXPECT_FALSE(sample_injection_plan(never, reg(), false, rng_never).upset);
  }
  // An intermediate rate lands near its expectation over many draws.
  FaultModelConfig half = certain;
  half.upset_ppm = 500'000;
  Rng rng_half(0x9A80);
  int upsets = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    upsets += sample_injection_plan(half, reg(), false, rng_half).upset;
  }
  EXPECT_NEAR(static_cast<double>(upsets) / kDraws, 0.5, 0.05);
}

TEST(FaultModelPlans, InfeasibleGeometryIsRejectedNotMisSampled) {
  FaultModelConfig wide = model_config(FaultModel::kMultiBitAdjacent);
  wide.multi_bits = 64;  // no registered field is 64 bits wide and latch-only
  const bool any_wide_latch =
      std::any_of(reg().fields().begin(), reg().fields().end(), [](const auto& f) {
        return f.storage == StorageClass::kLatch && f.bits_per_entry >= 64;
      });
  Rng rng(0xFEA51B1E);
  if (!any_wide_latch) {
    EXPECT_THROW(sample_injection_plan(wide, reg(), true, rng),
                 std::invalid_argument);
  } else {
    EXPECT_NO_THROW(sample_injection_plan(wide, reg(), true, rng));
  }
}

TEST(FaultModelPlans, PackedBitRefsRoundTripExactly) {
  Rng rng(0xBADC0DE);
  for (int i = 0; i < kFuzzPlans; ++i) {
    const BitRef bit = reg().sample(rng);
    const BitRef back = unpack_bit_ref(pack_bit_ref(bit));
    EXPECT_EQ(back.field, bit.field);
    EXPECT_EQ(back.entry, bit.entry);
    EXPECT_EQ(back.bit, bit.bit);
  }
}

// ---- substream determinism ----

TEST(FaultModelStreams, PlansAreAPureFunctionOfTheModelSubstream) {
  for (const FaultModel model :
       {FaultModel::kMultiBitAdjacent, FaultModel::kBurst, FaultModel::kSet,
        FaultModel::kTargeted, FaultModel::kRateDriven}) {
    const FaultModelConfig config = model_config(model);
    const u64 seed = model_stream_seed(0xABCDEF, static_cast<u64>(model));
    Rng a(seed);
    Rng b(seed);
    for (int i = 0; i < 64; ++i) {
      const auto plan_a = sample_injection_plan(config, reg(), false, a);
      const auto plan_b = sample_injection_plan(config, reg(), false, b);
      ASSERT_EQ(plan_a.bits.size(), plan_b.bits.size());
      for (std::size_t j = 0; j < plan_a.bits.size(); ++j) {
        EXPECT_EQ(pack_bit_ref(plan_a.bits[j]), pack_bit_ref(plan_b.bits[j]));
      }
      EXPECT_EQ(plan_a.upset, plan_b.upset);
    }
  }
}

TEST(FaultModelStreams, ModelSubstreamsAreDistinctFromThePrimaryStream) {
  // The whole byte-identity story rests on non-default models never touching
  // the shard's primary draw sequence: the substream seed must differ from the
  // shard seed and between model tags.
  std::set<u64> seeds;
  const u64 shard_seed = 0x5EED;
  seeds.insert(shard_seed);
  for (u64 tag = 0; tag < 6; ++tag) {
    seeds.insert(model_stream_seed(shard_seed, tag));
  }
  EXPECT_EQ(seeds.size(), 7u) << "substream seeds must not collide";
}

// ---- plan-driven trials: containment and SET transience ----

class FaultModelTrials : public ::testing::Test {
 protected:
  // One warmed injection point shared by every trial in the fixture; the
  // containment properties only need a running machine, not a fresh one.
  static void SetUpTestSuite() {
    golden_ = new uarch::Core(workloads::by_name("gzip").program);
    for (int i = 0; i < 400 && golden_->status() == uarch::Core::Status::kRunning;
         ++i) {
      golden_->cycle();
    }
    ASSERT_EQ(golden_->status(), uarch::Core::Status::kRunning);
  }
  static void TearDownTestSuite() {
    delete golden_;
    golden_ = nullptr;
  }
  static uarch::Core* golden_;
};

uarch::Core* FaultModelTrials::golden_ = nullptr;

TEST_F(FaultModelTrials, EveryModelsTrialsClassifyAndNeverEscapeContainment) {
  constexpr int kTrialsPerModel = 24;
  for (const FaultModel model :
       {FaultModel::kSingleBit, FaultModel::kMultiBitAdjacent, FaultModel::kBurst,
        FaultModel::kSet, FaultModel::kTargeted, FaultModel::kRateDriven}) {
    FaultModelConfig config = model_config(model);
    config.multi_bits = 4;
    config.burst_entries = 3;
    Rng model_rng(model_stream_seed(0xF00D, static_cast<u64>(model)));
    for (int i = 0; i < kTrialsPerModel; ++i) {
      const auto plan = sample_injection_plan(config, reg(), false, model_rng);
      UarchTrialRecord record;
      ASSERT_NO_THROW(record = run_uarch_plan_trial(*golden_, plan, 200, 200))
          << to_string(model);
      // Fuzzed corruption must always land in a valid category at every
      // checkpoint interval the figures use.
      for (const u64 interval : {u64{10}, u64{100}, u64{1000}}) {
        const UarchOutcome outcome = classify_trial(
            record, DetectorModel::kPerfectCfv, ProtectionModel::kBaseline,
            interval);
        EXPECT_NE(to_string(outcome), "?") << to_string(model);
      }
      EXPECT_EQ(pack_bit_ref(record.bit), pack_bit_ref(plan.bits.front()));
    }
  }
}

TEST_F(FaultModelTrials, SetTransientsClearAfterOneCycleWhenNotOverwritten) {
  // Run the same latch upset twice: once as a sticking (SEU) flip, once as a
  // one-cycle transient (SET). Over a latch population the transient must be
  // strictly more benign: every SET trial whose SEU twin was masked stays
  // masked, and SETs produce at least as many masked outcomes.
  Rng model_rng(model_stream_seed(0x5E7F00D, static_cast<u64>(FaultModel::kSet)));
  int set_masked = 0, seu_masked = 0;
  constexpr int kPairs = 40;
  for (int i = 0; i < kPairs; ++i) {
    auto plan = sample_injection_plan(model_config(FaultModel::kSet), reg(),
                                      false, model_rng);
    ASSERT_TRUE(plan.transient);
    auto sticky = plan;
    sticky.transient = false;
    const auto set_record = run_uarch_plan_trial(*golden_, plan, 300, 300);
    const auto seu_record = run_uarch_plan_trial(*golden_, sticky, 300, 300);
    const auto outcome_of = [](const UarchTrialRecord& r) {
      return classify_trial(r, DetectorModel::kPerfectCfv,
                            ProtectionModel::kBaseline, 100);
    };
    set_masked += outcome_of(set_record) == UarchOutcome::kMasked;
    seu_masked += outcome_of(seu_record) == UarchOutcome::kMasked;
    if (outcome_of(seu_record) == UarchOutcome::kMasked) {
      EXPECT_EQ(outcome_of(set_record), UarchOutcome::kMasked)
          << "a glitch that clears cannot outlast the same upset sticking";
    }
  }
  EXPECT_GE(set_masked, seu_masked);
  // The revert is real: some latch upsets that stick are cleared by the
  // transient semantics (gzip at this injection point exercises both kinds).
  EXPECT_GT(set_masked, 0);
}

TEST_F(FaultModelTrials, NoUpsetPlansAreExactGoldenReplays) {
  // A rate-driven trial that does not upset flips nothing: the record must be
  // indistinguishable from the golden run (masked, state-equal, no events).
  FaultModelConfig config = model_config(FaultModel::kRateDriven);
  config.upset_ppm = 0;
  Rng model_rng(0xCA1F);
  for (int i = 0; i < 8; ++i) {
    const auto plan = sample_injection_plan(config, reg(), false, model_rng);
    ASSERT_FALSE(plan.upset);
    const auto record = run_uarch_plan_trial(*golden_, plan, 200, 200);
    EXPECT_FALSE(record.trace_diverged);
    EXPECT_FALSE(record.arch_corrupt_at_end);
    EXPECT_TRUE(record.uarch_state_equal);
    EXPECT_EQ(classify_trial(record, DetectorModel::kPerfectCfv,
                             ProtectionModel::kBaseline, 100),
              UarchOutcome::kMasked);
  }
}

// ---- FIT-weighted campaign allocation ----

TEST(FitAllocation, SplitsTrialsProportionallyAndExactly) {
  using reliability::FitStructure;
  const std::vector<FitStructure> structures = {
      {"iq.data", 4096, 1.0}, {"rob.meta", 2048, 1.0}, {"prf.value", 2048, 1.0}};
  const auto alloc = reliability::fit_weighted_allocation(structures, 800);
  ASSERT_EQ(alloc.size(), structures.size());
  EXPECT_EQ(alloc[0] + alloc[1] + alloc[2], 800u);
  EXPECT_EQ(alloc[0], 400u);
  EXPECT_EQ(alloc[1], 200u);
  EXPECT_EQ(alloc[2], 200u);
}

TEST(FitAllocation, WeightScalesTheContributionAndZeroMeansNominal) {
  using reliability::FitStructure;
  // SRAM twice as FIT-sensitive as an equal-sized latch bank.
  const auto weighted = reliability::fit_weighted_allocation(
      {{"sram", 1000, 2.0}, {"latch", 1000, 1.0}}, 300);
  EXPECT_EQ(weighted[0], 200u);
  EXPECT_EQ(weighted[1], 100u);
  // weight 0 is "unspecified", not "immune": it behaves as 1.0.
  const auto nominal = reliability::fit_weighted_allocation(
      {{"a", 500, 0.0}, {"b", 500, 1.0}}, 100);
  EXPECT_EQ(nominal[0], 50u);
  EXPECT_EQ(nominal[1], 50u);
}

TEST(FitAllocation, LargestRemainderKeepsCountsIntegralAndExact) {
  using reliability::FitStructure;
  // 10 trials over three equal structures cannot split evenly; the largest-
  // remainder method hands the leftover out deterministically (lowest index).
  const auto alloc = reliability::fit_weighted_allocation(
      {{"a", 1, 1.0}, {"b", 1, 1.0}, {"c", 1, 1.0}}, 10);
  EXPECT_EQ(alloc[0] + alloc[1] + alloc[2], 10u);
  EXPECT_EQ(alloc[0], 4u);
  EXPECT_EQ(alloc[1], 3u);
  EXPECT_EQ(alloc[2], 3u);
  // Deterministic: the same inputs always produce the same split.
  EXPECT_EQ(alloc, reliability::fit_weighted_allocation(
                       {{"a", 1, 1.0}, {"b", 1, 1.0}, {"c", 1, 1.0}}, 10));
}

TEST(FitAllocation, FuzzedAllocationsAlwaysSumExactly) {
  using reliability::FitStructure;
  Rng rng(0xF17);
  for (int round = 0; round < 200; ++round) {
    std::vector<FitStructure> structures;
    const std::size_t n = 1 + rng.below(8);
    for (std::size_t i = 0; i < n; ++i) {
      structures.push_back({"s" + std::to_string(i), rng.below(100'000),
                            static_cast<double>(rng.below(4))});
    }
    const u64 trials = rng.below(10'000);
    const bool all_zero = std::all_of(
        structures.begin(), structures.end(), [](const FitStructure& s) {
          return s.bits == 0;
        });
    if (all_zero && trials > 0) {
      EXPECT_THROW(reliability::fit_weighted_allocation(structures, trials),
                   std::invalid_argument);
      continue;
    }
    const auto alloc = reliability::fit_weighted_allocation(structures, trials);
    ASSERT_EQ(alloc.size(), structures.size());
    u64 sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += alloc[i];
      if (structures[i].bits == 0) {
        EXPECT_EQ(alloc[i], 0u) << "zero FIT contribution must get zero trials";
      }
    }
    EXPECT_EQ(sum, trials);
  }
}

TEST(FitAllocation, RegistryManifestDrivesARealAllocation) {
  // The workflow documented in EXPERIMENTS.md: build the structure list from
  // the audited state registry and split a campaign across it.
  using reliability::FitStructure;
  std::vector<FitStructure> structures;
  for (const auto& field : reg().fields()) {
    structures.push_back({field.name, field.total_bits(),
                          field.storage == StorageClass::kSram ? 1.0 : 0.5});
  }
  const auto alloc = reliability::fit_weighted_allocation(structures, 12'000);
  u64 sum = 0;
  for (const u64 a : alloc) sum += a;
  EXPECT_EQ(sum, 12'000u);
  // The big SRAM arrays dominate the FIT budget, as in the paper's Table 3.
  const auto max_it = std::max_element(alloc.begin(), alloc.end());
  EXPECT_EQ(structures[max_it - alloc.begin()].weight, 1.0);
}

}  // namespace
}  // namespace restore::faultinject
