// Timing-independence property: the architectural behaviour of the core (its
// retired-effect stream and output) must be identical under any latency
// configuration — only cycle counts may change. This pins down the separation
// between the functional and timing halves of the model.
#include <gtest/gtest.h>

#include "uarch/core.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace restore::uarch {
namespace {

struct TimingCase {
  const char* name;
  CoreConfig config;
};

std::vector<TimingCase> timing_cases() {
  std::vector<TimingCase> cases;
  {
    TimingCase c{"fast_everything", {}};
    c.config.mul_latency = 1;
    c.config.div_latency = 1;
    c.config.l1d_hit_latency = 1;
    c.config.l1d_miss_latency = 2;
    c.config.l1i_miss_penalty = 1;
    cases.push_back(c);
  }
  {
    TimingCase c{"slow_memory", {}};
    c.config.l1d_hit_latency = 6;
    c.config.l1d_miss_latency = 28;
    c.config.l1i_miss_penalty = 20;
    cases.push_back(c);
  }
  {
    TimingCase c{"slow_alu", {}};
    c.config.alu_latency = 2;
    c.config.mul_latency = 8;
    c.config.div_latency = 24;
    cases.push_back(c);
  }
  {
    TimingCase c{"tight_watchdog", {}};
    c.config.watchdog_cycles = 300;  // must never fire on clean runs
    cases.push_back(c);
  }
  return cases;
}

class TimingIndependence
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(TimingIndependence, RetiredStreamInvariant) {
  const auto& [workload, case_index] = GetParam();
  const TimingCase variant = timing_cases()[case_index];
  const auto& wl = workloads::by_name(workload);

  vm::Vm vm(wl.program);
  Core core(wl.program, variant.config);
  u64 compared = 0;
  while (core.running()) {
    core.cycle();
    for (const auto& rec : core.retired_this_cycle()) {
      const auto ref = vm.step();
      ASSERT_TRUE(ref.has_value()) << variant.name;
      ASSERT_TRUE(rec.same_effect(*ref))
          << variant.name << " diverged at insn " << compared;
      ++compared;
    }
  }
  EXPECT_EQ(core.status(), Core::Status::kHalted) << variant.name;
  EXPECT_EQ(core.output(), wl.clean_output) << variant.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TimingIndependence,
    ::testing::Combine(::testing::Values(std::string("gzip"), std::string("vortex"),
                                         std::string("parser")),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{3})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             timing_cases()[std::get<1>(info.param)].name;
    });

TEST(TimingVariance, LatenciesActuallyChangeCycleCounts) {
  // Guard against the timing knobs silently becoming no-ops.
  const auto& wl = workloads::by_name("vortex");
  Core fast(wl.program, timing_cases()[0].config);
  Core slow(wl.program, timing_cases()[1].config);
  fast.run(100'000'000);
  slow.run(100'000'000);
  ASSERT_EQ(fast.status(), Core::Status::kHalted);
  ASSERT_EQ(slow.status(), Core::Status::kHalted);
  EXPECT_LT(fast.cycle_count(), slow.cycle_count());
  EXPECT_EQ(fast.retired_count(), slow.retired_count());
}

}  // namespace
}  // namespace restore::uarch
