// Cross-simulator fuzzing: generate random (but well-formed, terminating)
// SRA-64 programs and require the out-of-order core to retire exactly the
// architectural VM's instruction stream. This is the strongest correctness
// property in the project — any divergence is a bug in one of the two
// simulators.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/restore_core.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "uarch/core.hpp"
#include "vm/vm.hpp"

namespace restore {
namespace {

// Generates a random program:
//   * a prologue materialising random values in r1..r12 and a scratch buffer
//   * `blocks` basic blocks of random ALU/memory ops, each ending in a
//     conditional branch to the next or the following block (forward only, so
//     termination is structural)
//   * bounded loops around some blocks via a dedicated counter register
//   * an epilogue hashing r1..r12 into r1 and OUTing it
// Memory ops address the scratch buffer via r13 (kept pristine) with random
// in-bounds aligned displacements, so no exceptions occur.
std::string generate_program(Rng& rng, int blocks) {
  std::ostringstream out;
  out << "main:\n";
  out << "  la r13, buf\n";
  for (int r = 1; r <= 12; ++r) {
    out << "  li r" << r << ", " << static_cast<i64>(rng.next() % 100000) - 50000
        << "\n";
  }

  auto rr = [&] { return 1 + rng.below(12); };  // r1..r12
  const char* alu3[] = {"add", "sub", "mul", "and", "or", "xor",
                        "sll", "srl", "sra", "slt", "sltu", "seq",
                        "addw", "subw", "mulw"};
  const char* alui[] = {"addi", "andi", "ori", "xori", "slli", "srli",
                        "srai", "slti", "seqi", "addiw"};

  for (int b = 0; b < blocks; ++b) {
    out << "blk" << b << ":\n";
    // Optional bounded loop around this block using r14 as the counter.
    const bool looped = rng.chance(0.3);
    if (looped) {
      out << "  li r14, " << 2 + rng.below(6) << "\n";
      out << "blk" << b << "_loop:\n";
    }
    const int ops = 3 + static_cast<int>(rng.below(8));
    for (int i = 0; i < ops; ++i) {
      switch (rng.below(5)) {
        case 0:
          out << "  " << alu3[rng.below(std::size(alu3))] << " r" << rr() << ", r"
              << rr() << ", r" << rr() << "\n";
          break;
        case 1: {
          const char* op = alui[rng.below(std::size(alui))];
          const bool logical =
              std::string_view(op) == "andi" || std::string_view(op) == "ori" ||
              std::string_view(op) == "xori";
          const i64 imm = logical ? static_cast<i64>(rng.below(0x10000))
                                  : static_cast<i64>(rng.below(0x8000)) - 0x4000;
          out << "  " << op << " r" << rr() << ", r" << rr() << ", " << imm << "\n";
          break;
        }
        case 2: {  // store, 8-byte aligned within the buffer
          const u64 disp = rng.below(64) * 8;
          out << "  sd r" << rr() << ", " << disp << "(r13)\n";
          break;
        }
        case 3: {  // load
          const u64 disp = rng.below(64) * 8;
          out << "  ld r" << rr() << ", " << disp << "(r13)\n";
          break;
        }
        case 4: {  // narrow memory op
          const u64 disp = rng.below(128) * 4;
          if (rng.chance(0.5)) {
            out << "  sw r" << rr() << ", " << disp << "(r13)\n";
          } else {
            out << "  lwu r" << rr() << ", " << disp << "(r13)\n";
          }
          break;
        }
      }
    }
    if (looped) {
      out << "  addi r14, r14, -1\n";
      out << "  bnez r14, blk" << b << "_loop\n";
    }
    // Data-dependent forward branch: to the next block or the one after.
    if (b + 2 < blocks && rng.chance(0.5)) {
      const char* cond[] = {"beq", "bne", "blt", "bge"};
      out << "  " << cond[rng.below(4)] << " r" << rr() << ", r" << rr()
          << ", blk" << (b + 2) << "\n";
    }
  }
  out << "blk" << blocks << ":\n";

  // Epilogue: fold registers into r1 and emit it.
  for (int r = 2; r <= 12; ++r) {
    out << "  li r15, 31\n";
    out << "  mul r1, r1, r15\n";
    out << "  xor r1, r1, r" << r << "\n";
  }
  out << "  li r16, 8\n"
         "fz_emit:\n"
         "  out r1\n"
         "  srli r1, r1, 8\n"
         "  addi r16, r16, -1\n"
         "  bnez r16, fz_emit\n"
         "  halt\n"
         ".data\n"
         ".align 8\n"
         "buf: .space 4096\n";
  return out.str();
}

class FuzzCosim : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzCosim, CoreMatchesVmOnRandomPrograms) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 8; ++iteration) {
    const std::string source = generate_program(rng, 4 + rng.below(12));
    isa::Program program;
    ASSERT_NO_THROW(program = isa::assemble(source)) << source;

    vm::Vm vm(program);
    uarch::Core core(program);
    u64 compared = 0;
    bool diverged = false;
    for (u64 c = 0; c < 1'000'000 && core.running() && !diverged; ++c) {
      core.cycle();
      for (const auto& rec : core.retired_this_cycle()) {
        const auto ref = vm.step();
        if (!ref.has_value() || !rec.same_effect(*ref)) {
          diverged = true;
          ADD_FAILURE() << "divergence at insn #" << compared << " pc=0x"
                        << std::hex << rec.pc << "\nprogram:\n"
                        << source;
          break;
        }
        ++compared;
      }
    }
    if (diverged) return;
    EXPECT_EQ(core.status(), uarch::Core::Status::kHalted) << source;
    EXPECT_EQ(vm.status(), vm::Vm::Status::kHalted);
    EXPECT_EQ(core.output(), vm.output());
    EXPECT_GT(compared, 50u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCosim,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

// The same generator under ReStore with branch symptoms active: random
// programs must still complete with identical output despite false-positive
// rollbacks.
class FuzzReStore : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzReStore, OutputSurvivesRollbacks) {
  Rng rng(GetParam() * 7919);
  for (int iteration = 0; iteration < 4; ++iteration) {
    const std::string source = generate_program(rng, 4 + rng.below(10));
    const isa::Program program = isa::assemble(source);

    vm::Vm vm(program);
    vm.run(10'000'000);
    ASSERT_EQ(vm.status(), vm::Vm::Status::kHalted);

    core::ReStoreOptions options;
    options.checkpoint_interval = 25 + rng.below(200);
    options.policy = rng.chance(0.5) ? core::RollbackPolicy::kImmediate
                                     : core::RollbackPolicy::kDelayed;
    core::ReStoreCore restore(program, options);
    restore.run(50'000'000);
    EXPECT_EQ(restore.status(), core::ReStoreCore::Status::kHalted) << source;
    EXPECT_EQ(restore.output(), vm.output()) << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzReStore, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace restore
