// Tests for the fault-injection framework: VM-level trials (Figure 2
// machinery), microarchitectural trials (Figures 4-6 machinery), and the
// outcome classifier.
#include <gtest/gtest.h>

#include "faultinject/classify.hpp"
#include "isa/assembler.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace restore::faultinject {
namespace {

// ---- outcome taxonomy ----

TEST(Outcome, StringsAndPredicates) {
  EXPECT_EQ(to_string(VmOutcome::kMemAddr), "mem-addr");
  EXPECT_EQ(to_string(UarchOutcome::kSdc), "sdc");
  EXPECT_TRUE(is_failure(UarchOutcome::kLatent));
  EXPECT_TRUE(is_failure(UarchOutcome::kDeadlock));
  EXPECT_FALSE(is_failure(UarchOutcome::kMasked));
  EXPECT_FALSE(is_failure(UarchOutcome::kOther));
  EXPECT_TRUE(is_covered(UarchOutcome::kException));
  EXPECT_TRUE(is_covered(UarchOutcome::kCfv));
  EXPECT_FALSE(is_covered(UarchOutcome::kSdc));
}

// ---- VM campaign ----

TEST(VmCampaign, DeterministicForSeed) {
  VmCampaignConfig config;
  config.trials_per_workload = 20;
  config.workloads = {"gap"};
  const auto a = run_vm_campaign(config);
  const auto b = run_vm_campaign(config);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome);
    EXPECT_EQ(a.trials[i].latency, b.trials[i].latency);
  }
}

TEST(VmCampaign, FlippingDeadResultIsMasked) {
  // r1's value is immediately overwritten: the flip cannot matter.
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 5\n"      // inject here: result dead
      "  li r1, 7\n"
      "  out r1\n"
      "  li r9, 1000\n"
      "w: addi r9, r9, -1\n"
      "  bnez r9, w\n"
      "  halt\n");
  workloads::Workload wl;
  wl.name = "dead-test";
  wl.program = program;
  const auto result = run_vm_trial(wl, 0, 3);
  EXPECT_EQ(result.outcome, VmOutcome::kMasked);
}

TEST(VmCampaign, FlippingPointerHighBitRaisesException) {
  // A pointer with a flipped high bit dereferences an unmapped page.
  const auto program = isa::assemble(
      "main:\n"
      "  la r1, data\n"   // 3 insns (ori/slli/ori); last writes the pointer
      "  ld r2, 0(r1)\n"
      "  out r2\n"
      "  halt\n"
      ".data\n"
      ".align 8\n"
      "data: .word64 42\n");
  workloads::Workload wl;
  wl.name = "ptr-test";
  wl.program = program;
  const auto result = run_vm_trial(wl, 2, 45);  // flip bit 45 of the address
  EXPECT_EQ(result.outcome, VmOutcome::kException);
  EXPECT_EQ(result.latency, 1u);  // next instruction faults
}

TEST(VmCampaign, FlippingBranchOperandCausesCfv) {
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 0\n"            // inject: flip bit 0 -> r1 = 1
      "  beqz r1, iszero\n"     // now falls through instead of branching
      "  li r2, 111\n"
      "  out r2\n"
      "  halt\n"
      "iszero:\n"
      "  li r2, 222\n"
      "  out r2\n"
      "  halt\n");
  workloads::Workload wl;
  wl.name = "cfv-test";
  wl.program = program;
  const auto result = run_vm_trial(wl, 0, 0);
  EXPECT_EQ(result.outcome, VmOutcome::kCfv);
  EXPECT_EQ(result.latency, 2u);  // divergence visible at the branch target
}

TEST(VmCampaign, FlippingStoreDataIsMemData) {
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 0x55\n"   // inject into this result
      "  sd r1, 0(sp)\n"
      "  li r9, 50\n"
      "w: addi r9, r9, -1\n"
      "  bnez r9, w\n"
      "  halt\n");
  workloads::Workload wl;
  wl.name = "memdata-test";
  wl.program = program;
  const auto result = run_vm_trial(wl, 0, 1);
  EXPECT_EQ(result.outcome, VmOutcome::kMemData);
}

TEST(VmCampaign, ExceptionsDominateAndArriveQuickly) {
  // The paper's central §3.1 finding: most failing faults raise an exception
  // or cfv within ~100 instructions.
  VmCampaignConfig config;
  config.trials_per_workload = 60;
  const auto result = run_vm_campaign(config);
  ASSERT_EQ(result.trials.size(), 7u * 60u);

  const double masked = result.fraction(VmOutcome::kMasked);
  const double exc_100 = result.fraction(VmOutcome::kException, 100);
  const double exc_all = result.fraction(VmOutcome::kException);
  const double cfv_100 = result.fraction(VmOutcome::kCfv, 100);

  EXPECT_GT(masked, 0.05);
  EXPECT_GT(exc_all, 0.15) << "exceptions should be the dominant symptom";
  EXPECT_GT(exc_100, exc_all * 0.6) << "most exceptions arrive within 100 insns";
  EXPECT_GT(cfv_100, 0.02);
  // Sanity: every trial is classified exactly once.
  double total = 0;
  for (auto o : {VmOutcome::kMasked, VmOutcome::kException, VmOutcome::kCfv,
                 VmOutcome::kMemAddr, VmOutcome::kMemData, VmOutcome::kRegister}) {
    total += result.fraction(o);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(VmCampaign, Low32StudyShrinksExceptions) {
  // §3.1 follow-up: restricting flips to the low 32 bits reduces the
  // exception share (fewer wild pointers) in favour of cfv/mem categories.
  VmCampaignConfig full;
  full.trials_per_workload = 60;
  VmCampaignConfig low = full;
  low.low32_only = true;
  const auto full_result = run_vm_campaign(full);
  const auto low_result = run_vm_campaign(low);
  EXPECT_LT(low_result.fraction(VmOutcome::kException),
            full_result.fraction(VmOutcome::kException));
}

TEST(VmCampaign, RegisterModelClassifies) {
  const auto& wl = workloads::by_name("vortex");
  // Flip a high bit of a hot pointer-carrying register mid-run: with high
  // probability the next dereference faults or control flow diverges.
  const auto result = run_vm_register_trial(wl, 2'000, 4 /*a2*/, 45);
  EXPECT_NE(result.outcome, VmOutcome::kMasked);
}

TEST(VmCampaign, RegisterModelCampaignRuns) {
  VmCampaignConfig config;
  config.model = VmFaultModel::kRegisterBit;
  config.trials_per_workload = 30;
  config.workloads = {"gzip", "mcf"};
  const auto result = run_vm_campaign(config);
  ASSERT_EQ(result.trials.size(), 60u);
  double total = 0;
  for (auto o : {VmOutcome::kMasked, VmOutcome::kException, VmOutcome::kCfv,
                 VmOutcome::kMemAddr, VmOutcome::kMemData, VmOutcome::kRegister}) {
    total += result.fraction(o);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Register flips at random times hit dead registers often: plenty masked.
  EXPECT_GT(result.fraction(VmOutcome::kMasked), 0.2);
}

TEST(VmCampaign, RejectsInvalidInjectionSite) {
  const auto& wl = workloads::by_name("gap");
  EXPECT_THROW(run_vm_trial(wl, ~u64{0} / 2, 0), std::invalid_argument);
}

// ---- microarchitectural campaign ----

TEST(UarchCampaign, DeterministicForSeed) {
  UarchCampaignConfig config;
  config.trials_per_workload = 16;
  config.workloads = {"mcf"};
  const auto a = run_uarch_campaign(config);
  const auto b = run_uarch_campaign(config);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].field_name, b.trials[i].field_name);
    EXPECT_EQ(a.trials[i].lat_exception, b.trials[i].lat_exception);
    EXPECT_EQ(a.trials[i].arch_corrupt_at_end, b.trials[i].arch_corrupt_at_end);
  }
}

TEST(UarchCampaign, LatchOnlyRestrictsFields) {
  UarchCampaignConfig config;
  config.trials_per_workload = 24;
  config.latches_only = true;
  config.workloads = {"gzip"};
  const auto result = run_uarch_campaign(config);
  const auto& reg = uarch::StateRegistry::instance();
  for (const auto& trial : result.trials) {
    EXPECT_EQ(reg.field(trial.bit).storage, uarch::StorageClass::kLatch)
        << trial.field_name;
  }
  EXPECT_EQ(result.eligible_bits,
            reg.total_bits(uarch::StorageClass::kLatch));
}

TEST(UarchCampaign, MajorityOfFaultsAreMasked) {
  UarchCampaignConfig config;
  config.trials_per_workload = 60;
  const auto result = run_uarch_campaign(config);
  const auto shares = category_shares(result.trials, DetectorModel::kPerfectCfv,
                                      ProtectionModel::kBaseline, 100);
  double masked_like = 0.0;
  for (const auto& [category, share] : shares) {
    if (category == UarchOutcome::kMasked || category == UarchOutcome::kOther) {
      masked_like += share;
    }
  }
  // Paper: ~92-93% of injected faults do not cause failure.
  EXPECT_GT(masked_like, 0.75);
  EXPECT_GT(failure_fraction(result.trials), 0.03);
  EXPECT_LT(failure_fraction(result.trials), 0.25);
}

TEST(UarchCampaign, CoverageImprovesWithInterval) {
  UarchCampaignConfig config;
  config.trials_per_workload = 60;
  const auto result = run_uarch_campaign(config);
  const double uncovered_25 = uncovered_fraction(
      result.trials, DetectorModel::kPerfectCfv, ProtectionModel::kBaseline, 25);
  const double uncovered_2000 = uncovered_fraction(
      result.trials, DetectorModel::kPerfectCfv, ProtectionModel::kBaseline, 2000);
  EXPECT_LE(uncovered_2000, uncovered_25);
}

TEST(UarchCampaign, JrsDetectorCoversNoMoreThanPerfectPlusRollbacks) {
  UarchCampaignConfig config;
  config.trials_per_workload = 40;
  const auto result = run_uarch_campaign(config);
  // The JRS-gated detector can never have more *exception/deadlock* coverage
  // and the overall MTBF orderings must hold: lhf+ReStore >= ReStore alone.
  const double m_restore = mtbf_improvement(result.trials, DetectorModel::kJrsConfidence,
                                            ProtectionModel::kBaseline, 100);
  const double m_lhf = mtbf_improvement(result.trials, DetectorModel::kJrsConfidence,
                                        ProtectionModel::kLhf, 100);
  EXPECT_GE(m_restore, 1.0);
  EXPECT_GE(m_lhf, m_restore);
}

// ---- classifier unit behaviour ----

UarchTrialRecord failing_trial() {
  UarchTrialRecord trial;
  trial.arch_corrupt_at_end = true;
  trial.trace_diverged = true;
  return trial;
}

TEST(Classifier, PrecedenceDeadlockFirst) {
  UarchTrialRecord trial = failing_trial();
  trial.lat_deadlock = 500;
  trial.lat_exception = 10;
  EXPECT_EQ(classify_trial(trial, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kDeadlock);
}

TEST(Classifier, ExceptionCoverageRespectsInterval) {
  UarchTrialRecord trial = failing_trial();
  trial.lat_exception = 150;
  EXPECT_EQ(classify_trial(trial, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kSdc);
  EXPECT_EQ(classify_trial(trial, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 200),
            UarchOutcome::kException);
}

TEST(Classifier, DetectorModelSelectsCfvLatency) {
  UarchTrialRecord trial = failing_trial();
  trial.lat_cfv = 50;
  trial.lat_hiconf = 400;
  EXPECT_EQ(classify_trial(trial, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kCfv);
  EXPECT_EQ(classify_trial(trial, DetectorModel::kJrsConfidence,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kSdc);
  EXPECT_EQ(classify_trial(trial, DetectorModel::kJrsConfidence,
                           ProtectionModel::kBaseline, 500),
            UarchOutcome::kCfv);
}

TEST(Classifier, LhfAbsorbsProtectedFaults) {
  UarchTrialRecord trial = failing_trial();
  trial.protection = uarch::LhfProtection::kEcc;
  EXPECT_EQ(classify_trial(trial, DetectorModel::kPerfectCfv,
                           ProtectionModel::kLhf, 100),
            UarchOutcome::kOther);
  EXPECT_EQ(classify_trial(trial, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kSdc);
}

TEST(Classifier, HealedDivergenceIsMasked) {
  UarchTrialRecord trial;
  trial.trace_diverged = true;  // wrong value retired...
  trial.arch_corrupt_at_end = false;  // ...but overwritten before the end
  EXPECT_EQ(classify_trial(trial, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kMasked);
}

TEST(Classifier, LatentVsOtherByLiveness) {
  UarchTrialRecord trial;
  trial.uarch_state_equal = false;
  trial.live_state_diff = true;
  EXPECT_EQ(classify_trial(trial, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kLatent);
  trial.live_state_diff = false;
  EXPECT_EQ(classify_trial(trial, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kOther);
  trial.uarch_state_equal = true;
  EXPECT_EQ(classify_trial(trial, DetectorModel::kPerfectCfv,
                           ProtectionModel::kBaseline, 100),
            UarchOutcome::kMasked);
}

TEST(Classifier, SharesSumToOne) {
  UarchCampaignConfig config;
  config.trials_per_workload = 30;
  config.workloads = {"bzip2", "parser"};
  const auto result = run_uarch_campaign(config);
  for (const u64 interval : checkpoint_interval_sweep()) {
    const auto shares = category_shares(result.trials, DetectorModel::kJrsConfidence,
                                        ProtectionModel::kBaseline, interval);
    double total = 0;
    for (const auto& [category, share] : shares) total += share;
    EXPECT_NEAR(total, 1.0, 1e-9) << interval;
  }
}

}  // namespace
}  // namespace restore::faultinject
