// Tests for the SYNC instruction: assembly, VM semantics, core retirement,
// and the forced-checkpoint behaviour the paper requires for synchronizing
// events (§2.1).
#include <gtest/gtest.h>

#include "core/restore_core.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "uarch/core.hpp"
#include "vm/vm.hpp"

namespace restore {
namespace {

constexpr const char* kSyncProgram =
    "main:\n"
    "  li s0, 30\n"
    "loop:\n"
    "  sd s0, 0(sp)\n"
    "  sync\n"
    "  addi s0, s0, -1\n"
    "  bnez s0, loop\n"
    "  halt\n";

TEST(Sync, Assembles) {
  const auto program = isa::assemble("main: sync\n halt\n");
  EXPECT_EQ(isa::disassemble(isa::encode_sync()), "sync");
  (void)program;
}

TEST(Sync, VmTreatsItAsOrderingNoop) {
  vm::Vm vm(isa::assemble(kSyncProgram));
  bool saw_sync = false;
  while (auto rec = vm.step()) {
    if (rec->is_sync) {
      saw_sync = true;
      EXPECT_FALSE(rec->wrote_reg);
      EXPECT_FALSE(rec->is_store);
      EXPECT_EQ(rec->next_pc, rec->pc + 4);
    }
  }
  EXPECT_EQ(vm.status(), vm::Vm::Status::kHalted);
  EXPECT_TRUE(saw_sync);
}

TEST(Sync, CoreCosimsWithVm) {
  const auto program = isa::assemble(kSyncProgram);
  vm::Vm vm(program);
  uarch::Core core(program);
  while (core.running()) {
    core.cycle();
    for (const auto& rec : core.retired_this_cycle()) {
      const auto ref = vm.step();
      ASSERT_TRUE(ref.has_value());
      ASSERT_TRUE(rec.same_effect(*ref));
      EXPECT_EQ(rec.is_sync, ref->is_sync);
    }
  }
  EXPECT_EQ(core.status(), uarch::Core::Status::kHalted);
}

TEST(Sync, ForcesCheckpointsInReStore) {
  // With a huge interval, periodic checkpointing never fires; the 30 syncs
  // must still force one checkpoint each.
  const auto program = isa::assemble(kSyncProgram);
  core::ReStoreOptions options;
  options.checkpoint_interval = 1'000'000;
  core::ReStoreCore restore(program, options);
  restore.run(1'000'000);
  EXPECT_EQ(restore.status(), core::ReStoreCore::Status::kHalted);
  // 1 at construction + one per sync.
  EXPECT_GE(restore.checkpoints().checkpoints_taken(), 31u);
}

TEST(Sync, WithoutSyncNoForcedCheckpoints) {
  const auto program = isa::assemble(
      "main:\n"
      "  li s0, 30\n"
      "loop:\n"
      "  sd s0, 0(sp)\n"
      "  addi s0, s0, -1\n"
      "  bnez s0, loop\n"
      "  halt\n");
  core::ReStoreOptions options;
  options.checkpoint_interval = 1'000'000;
  core::ReStoreCore restore(program, options);
  restore.run(1'000'000);
  EXPECT_EQ(restore.status(), core::ReStoreCore::Status::kHalted);
  EXPECT_EQ(restore.checkpoints().checkpoints_taken(), 1u);
}

}  // namespace
}  // namespace restore
