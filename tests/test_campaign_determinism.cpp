// Golden-determinism regression: a fixed-seed campaign must export
// byte-identical results at any worker count — both the assembled in-memory
// trial list and the streamed JSONL trace. This is the property the resume
// machinery rests on, so it is pinned here for the VM (Figure 2 style) and
// uarch (Figure 4 style) campaigns.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "faultinject/export.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"

namespace restore::faultinject {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_trace(const std::string& tag) {
  return testing::TempDir() + "restore_determinism_" + tag + ".jsonl";
}

TEST(CampaignDeterminism, VmCampaignIsByteIdenticalAcrossWorkerCounts) {
  VmCampaignConfig config;
  config.seed = 0xD373;
  config.trials_per_workload = 30;
  config.workloads = {"gzip", "mcf"};

  std::vector<std::string> exports;
  std::vector<std::string> traces;
  for (const std::size_t workers : {0u, 1u, 2u, 8u}) {
    CampaignRunOptions opts;
    opts.workers = workers;
    opts.shard_trials = 8;  // several shards per workload
    opts.out_jsonl = temp_trace("vm_w" + std::to_string(workers));
    const auto result = run_vm_campaign(config, opts);
    ASSERT_EQ(result.trials.size(), 60u);
    std::ostringstream csv;
    write_vm_trials_csv(csv, result.trials);
    exports.push_back(csv.str());
    traces.push_back(slurp(opts.out_jsonl));
  }
  for (std::size_t i = 1; i < exports.size(); ++i) {
    EXPECT_EQ(exports[0], exports[i]) << i;
    EXPECT_EQ(traces[0], traces[i]) << i;
  }
}

TEST(CampaignDeterminism, UarchCampaignIsByteIdenticalAcrossWorkerCounts) {
  UarchCampaignConfig config;
  config.seed = 0xD374;
  config.trials_per_workload = 12;
  config.workloads = {"gzip"};

  std::vector<std::string> exports;
  std::vector<std::string> traces;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    CampaignRunOptions opts;
    opts.workers = workers;
    opts.shard_trials = 4;
    opts.out_jsonl = temp_trace("uarch_w" + std::to_string(workers));
    const auto result = run_uarch_campaign(config, opts);
    EXPECT_FALSE(result.trials.empty());
    std::ostringstream csv;
    write_uarch_trials_csv(csv, result.trials);
    exports.push_back(csv.str());
    traces.push_back(slurp(opts.out_jsonl));
  }
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(exports[0], exports[2]);
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(traces[0], traces[2]);
}

// Expanded fault models draw their plans from per-shard substreams
// (model_stream_seed), so the same worker-count and interrupt+resume
// guarantees must hold for every model, not just the paper's single-bit one.

UarchCampaignConfig small_uarch_config(FaultModel model) {
  UarchCampaignConfig config;
  config.seed = 0xD375;
  config.trials_per_workload = 8;
  config.workloads = {"gzip"};
  config.monitor_cycles = 300;
  config.catchup_cycles = 300;
  config.fault_model.model = model;
  config.fault_model.multi_bits = 3;
  config.fault_model.burst_entries = 2;
  config.fault_model.upset_ppm = 500'000;  // rate: a mix of upset/no-upset
  return config;
}

TEST(CampaignDeterminism, UarchCampaignIsByteIdenticalPerFaultModel) {
  for (const FaultModel model :
       {FaultModel::kMultiBitAdjacent, FaultModel::kBurst, FaultModel::kSet,
        FaultModel::kTargeted, FaultModel::kRateDriven}) {
    const UarchCampaignConfig config = small_uarch_config(model);
    const std::string token(to_string(model));
    std::vector<std::string> traces;
    for (const std::size_t workers : {0u, 2u, 8u}) {
      CampaignRunOptions opts;
      opts.workers = workers;
      opts.shard_trials = 4;
      opts.out_jsonl = temp_trace("uarch_" + token + "_w" + std::to_string(workers));
      const auto result = run_uarch_campaign(config, opts);
      ASSERT_EQ(result.trials.size(), 8u) << token;
      // The model must actually be recorded per trial (trace schema).
      for (const auto& trial : result.trials) {
        EXPECT_EQ(trial.model, token);
      }
      traces.push_back(slurp(opts.out_jsonl));
    }
    EXPECT_EQ(traces[0], traces[1]) << token;
    EXPECT_EQ(traces[0], traces[2]) << token;
  }
}

TEST(CampaignDeterminism, VmCampaignIsByteIdenticalPerFaultModel) {
  // Burst/SET are uarch-only; the vm campaign supports the other expansions.
  for (const FaultModel model : {FaultModel::kMultiBitAdjacent,
                                 FaultModel::kTargeted, FaultModel::kRateDriven}) {
    VmCampaignConfig config;
    config.seed = 0xD376;
    config.trials_per_workload = 16;
    config.workloads = {"gzip", "mcf"};
    config.fault_model.model = model;
    config.fault_model.multi_bits = 4;
    config.fault_model.upset_ppm = 500'000;
    const std::string token(to_string(model));
    std::vector<std::string> traces;
    for (const std::size_t workers : {0u, 2u, 8u}) {
      CampaignRunOptions opts;
      opts.workers = workers;
      opts.shard_trials = 8;
      opts.out_jsonl = temp_trace("vm_" + token + "_w" + std::to_string(workers));
      const auto result = run_vm_campaign(config, opts);
      ASSERT_EQ(result.trials.size(), 32u) << token;
      for (const auto& trial : result.trials) {
        EXPECT_EQ(trial.model, token);
      }
      traces.push_back(slurp(opts.out_jsonl));
    }
    EXPECT_EQ(traces[0], traces[1]) << token;
    EXPECT_EQ(traces[0], traces[2]) << token;
  }
}

TEST(CampaignDeterminism, BurstAndSetCampaignsResumeByteIdentically) {
  for (const FaultModel model : {FaultModel::kBurst, FaultModel::kSet}) {
    const UarchCampaignConfig config = small_uarch_config(model);
    const std::string token(to_string(model));

    CampaignRunOptions uninterrupted;
    uninterrupted.workers = 2;
    uninterrupted.shard_trials = 4;
    uninterrupted.out_jsonl = temp_trace("resume_" + token + "_full");
    run_uarch_campaign(config, uninterrupted);
    const std::string golden = slurp(uninterrupted.out_jsonl);

    // Kill the campaign after its first shard, then resume: the replayed
    // trace must be byte-identical to the uninterrupted run.
    CampaignRunOptions interrupted = uninterrupted;
    interrupted.out_jsonl = temp_trace("resume_" + token + "_cut");
    interrupted.max_shards = 1;
    run_uarch_campaign(config, interrupted);
    EXPECT_NE(slurp(interrupted.out_jsonl), golden) << token;

    CampaignRunOptions resumed = interrupted;
    resumed.max_shards = 0;
    resumed.resume = true;
    run_uarch_campaign(config, resumed);
    EXPECT_EQ(slurp(resumed.out_jsonl), golden) << token;
  }
}

TEST(CampaignDeterminism, ShardStreamSeedsAreStableAndDistinct) {
  const u64 a = shard_stream_seed(42, "gzip", 0);
  EXPECT_EQ(a, shard_stream_seed(42, "gzip", 0));
  EXPECT_NE(a, shard_stream_seed(42, "gzip", 1));
  EXPECT_NE(a, shard_stream_seed(42, "mcf", 0));
  EXPECT_NE(a, shard_stream_seed(43, "gzip", 0));
}

TEST(CampaignDeterminism, PlanShardsCutsExactTrialRanges) {
  const auto shards = plan_shards(7, {"gzip", "mcf"}, 20, 8);
  ASSERT_EQ(shards.size(), 6u);  // 8 + 8 + 4, per workload
  u64 gzip_trials = 0, mcf_trials = 0;
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.seed,
              shard_stream_seed(7, shard.workload, shard.trial_begin / 8));
    (shard.workload == "gzip" ? gzip_trials : mcf_trials) += shard.trial_count;
  }
  EXPECT_EQ(gzip_trials, 20u);
  EXPECT_EQ(mcf_trials, 20u);
  // Shard indices are the global manifest keys: consecutive from zero.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].index, i);
  }
}

}  // namespace
}  // namespace restore::faultinject
