// Golden-determinism regression: a fixed-seed campaign must export
// byte-identical results at any worker count — both the assembled in-memory
// trial list and the streamed JSONL trace. This is the property the resume
// machinery rests on, so it is pinned here for the VM (Figure 2 style) and
// uarch (Figure 4 style) campaigns.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "faultinject/export.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"

namespace restore::faultinject {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_trace(const std::string& tag) {
  return testing::TempDir() + "restore_determinism_" + tag + ".jsonl";
}

TEST(CampaignDeterminism, VmCampaignIsByteIdenticalAcrossWorkerCounts) {
  VmCampaignConfig config;
  config.seed = 0xD373;
  config.trials_per_workload = 30;
  config.workloads = {"gzip", "mcf"};

  std::vector<std::string> exports;
  std::vector<std::string> traces;
  for (const std::size_t workers : {0u, 1u, 2u, 8u}) {
    CampaignRunOptions opts;
    opts.workers = workers;
    opts.shard_trials = 8;  // several shards per workload
    opts.out_jsonl = temp_trace("vm_w" + std::to_string(workers));
    const auto result = run_vm_campaign(config, opts);
    ASSERT_EQ(result.trials.size(), 60u);
    std::ostringstream csv;
    write_vm_trials_csv(csv, result.trials);
    exports.push_back(csv.str());
    traces.push_back(slurp(opts.out_jsonl));
  }
  for (std::size_t i = 1; i < exports.size(); ++i) {
    EXPECT_EQ(exports[0], exports[i]) << i;
    EXPECT_EQ(traces[0], traces[i]) << i;
  }
}

TEST(CampaignDeterminism, UarchCampaignIsByteIdenticalAcrossWorkerCounts) {
  UarchCampaignConfig config;
  config.seed = 0xD374;
  config.trials_per_workload = 12;
  config.workloads = {"gzip"};

  std::vector<std::string> exports;
  std::vector<std::string> traces;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    CampaignRunOptions opts;
    opts.workers = workers;
    opts.shard_trials = 4;
    opts.out_jsonl = temp_trace("uarch_w" + std::to_string(workers));
    const auto result = run_uarch_campaign(config, opts);
    EXPECT_FALSE(result.trials.empty());
    std::ostringstream csv;
    write_uarch_trials_csv(csv, result.trials);
    exports.push_back(csv.str());
    traces.push_back(slurp(opts.out_jsonl));
  }
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(exports[0], exports[2]);
  EXPECT_EQ(traces[0], traces[1]);
  EXPECT_EQ(traces[0], traces[2]);
}

TEST(CampaignDeterminism, ShardStreamSeedsAreStableAndDistinct) {
  const u64 a = shard_stream_seed(42, "gzip", 0);
  EXPECT_EQ(a, shard_stream_seed(42, "gzip", 0));
  EXPECT_NE(a, shard_stream_seed(42, "gzip", 1));
  EXPECT_NE(a, shard_stream_seed(42, "mcf", 0));
  EXPECT_NE(a, shard_stream_seed(43, "gzip", 0));
}

TEST(CampaignDeterminism, PlanShardsCutsExactTrialRanges) {
  const auto shards = plan_shards(7, {"gzip", "mcf"}, 20, 8);
  ASSERT_EQ(shards.size(), 6u);  // 8 + 8 + 4, per workload
  u64 gzip_trials = 0, mcf_trials = 0;
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.seed,
              shard_stream_seed(7, shard.workload, shard.trial_begin / 8));
    (shard.workload == "gzip" ? gzip_trials : mcf_trials) += shard.trial_count;
  }
  EXPECT_EQ(gzip_trials, 20u);
  EXPECT_EQ(mcf_trials, 20u);
  // Shard indices are the global manifest keys: consecutive from zero.
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].index, i);
  }
}

}  // namespace
}  // namespace restore::faultinject
