// Co-simulation: the out-of-order core must retire exactly the same
// architectural instruction stream as the architectural VM for every
// workload. This is the correctness bar the paper's golden-model comparison
// (§4.2) rests on.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "uarch/core.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace restore::uarch {
namespace {

// Run `core` and `vm` in lockstep, comparing every retirement record.
// Returns the number of instructions compared; FAILs on first divergence.
u64 cosim(Core& core, vm::Vm& vm, u64 max_cycles) {
  u64 compared = 0;
  for (u64 c = 0; c < max_cycles && core.running(); ++c) {
    core.cycle();
    for (const auto& rec : core.retired_this_cycle()) {
      const auto ref = vm.step();
      if (!ref.has_value()) {
        ADD_FAILURE() << "core retired more instructions than the VM at #"
                      << compared << " pc=0x" << std::hex << rec.pc;
        return compared;
      }
      if (!rec.same_effect(*ref)) {
        ADD_FAILURE() << "divergence at instruction #" << compared << "\n  core: pc=0x"
                      << std::hex << rec.pc << " next=0x" << rec.next_pc << " rd=r"
                      << std::dec << int(rec.rd) << " val=0x" << std::hex
                      << rec.rd_value << " store=" << rec.is_store << "@0x"
                      << rec.store_addr << "\n  vm:   pc=0x" << ref->pc << " next=0x"
                      << ref->next_pc << " rd=r" << std::dec << int(ref->rd)
                      << " val=0x" << std::hex << ref->rd_value
                      << " store=" << ref->is_store << "@0x" << ref->store_addr
                      << std::dec << "  insn: " << isa::disassemble(ref->insn);
        return compared;
      }
      ++compared;
    }
  }
  return compared;
}

class CosimSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(CosimSuite, RetiredStreamMatchesVm) {
  const auto& wl = workloads::by_name(GetParam());
  Core core(wl.program);
  vm::Vm vm(wl.program);
  const u64 compared = cosim(core, vm, 10'000'000);
  if (::testing::Test::HasFailure()) return;
  EXPECT_EQ(core.status(), Core::Status::kHalted)
      << "core did not halt (status=" << static_cast<int>(core.status())
      << ", compared=" << compared << ")";
  EXPECT_EQ(compared, wl.clean_insns);
  EXPECT_EQ(core.output(), wl.clean_output);
  EXPECT_EQ(core.retired_count(), vm.retired_count());
}

TEST_P(CosimSuite, ArchSnapshotMatchesVmState) {
  const auto& wl = workloads::by_name(GetParam());
  Core core(wl.program);
  vm::Vm vm(wl.program);
  // Run ~2000 instructions, then compare architectural snapshots.
  u64 done = 0;
  while (core.running() && done < 2000) {
    core.cycle();
    for (const auto& rec : core.retired_this_cycle()) {
      (void)rec;
      vm.step();
      ++done;
    }
  }
  const vm::ArchSnapshot snap = core.arch_snapshot();
  EXPECT_EQ(snap.pc, vm.pc());
  for (u8 r = 0; r < isa::kNumArchRegs; ++r) {
    EXPECT_EQ(snap.regs[r], vm.reg(r)) << "r" << int(r);
  }
}

TEST_P(CosimSuite, IpcIsPlausible) {
  const auto& wl = workloads::by_name(GetParam());
  Core core(wl.program);
  core.run(10'000'000);
  ASSERT_EQ(core.status(), Core::Status::kHalted);
  const double ipc =
      static_cast<double>(core.retired_count()) / core.cycle_count();
  EXPECT_GT(ipc, 0.2) << "suspiciously low IPC";
  EXPECT_LE(ipc, 4.0) << "IPC exceeds retire width";
}

INSTANTIATE_TEST_SUITE_P(AllSeven, CosimSuite,
                         ::testing::Values("bzip2", "gap", "gcc", "gzip", "mcf",
                                           "parser", "vortex"));

TEST(CoreBasics, SmallProgramRuns) {
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 6\n"
      "  li r2, 7\n"
      "  mul r3, r1, r2\n"
      "  out r3\n"
      "  halt\n");
  Core core(program);
  core.run(10'000);
  EXPECT_EQ(core.status(), Core::Status::kHalted);
  EXPECT_EQ(core.output(), "*");  // 42
}

TEST(CoreBasics, ExceptionStopsBaselineCore) {
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 0x40000000\n"
      "  ld r2, 0(r1)\n"
      "  halt\n");
  Core core(program);
  core.run(10'000);
  EXPECT_EQ(core.status(), Core::Status::kFaulted);
  EXPECT_EQ(core.fault(), isa::ExceptionKind::kMemTranslation);
}

TEST(CoreBasics, BranchyLoopMatchesVm) {
  const auto program = isa::assemble(
      "main:\n"
      "  li s0, 200\n"
      "  li s1, 0\n"
      "loop:\n"
      "  andi t0, s0, 1\n"
      "  beqz t0, even\n"
      "  add s1, s1, s0\n"
      "  j next\n"
      "even:\n"
      "  sub s1, s1, s0\n"
      "next:\n"
      "  addi s0, s0, -1\n"
      "  bnez s0, loop\n"
      "  out s1\n"
      "  halt\n");
  Core core(program);
  vm::Vm vm(program);
  cosim(core, vm, 100'000);
  EXPECT_EQ(core.status(), Core::Status::kHalted);
  EXPECT_EQ(core.output(), vm.output());
}

TEST(CoreBasics, StoreForwardingPath) {
  // A store immediately followed by an overlapping load exercises STQ
  // forwarding; a narrower store then a wider load exercises the
  // partial-overlap replay path.
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 0x11223344\n"
      "  sw r1, 0(sp)\n"
      "  lw r2, 0(sp)\n"   // full forward
      "  sb r1, 8(sp)\n"
      "  ld r3, 8(sp)\n"   // partial overlap: waits for drain
      "  add r4, r2, r3\n"
      "  out r4\n"
      "  halt\n");
  Core core(program);
  vm::Vm vm(program);
  cosim(core, vm, 100'000);
  EXPECT_EQ(core.status(), Core::Status::kHalted);
  EXPECT_EQ(core.output(), vm.output());
}

TEST(CoreBasics, ResetToRestoresArchState) {
  const auto program = isa::assemble(
      "main:\n"
      "  li r1, 1\n"
      "  li r2, 2\n"
      "  li r3, 3\n"
      "  add r4, r1, r2\n"
      "  add r5, r4, r3\n"
      "  out r5\n"
      "  halt\n");
  Core core(program);
  // Run to completion once; snapshot at the start, restore, rerun.
  core.run(10'000);
  ASSERT_EQ(core.status(), Core::Status::kHalted);
  const std::string first_output = core.output();

  Core fresh(program);
  fresh.cycle();
  const vm::ArchSnapshot snap = fresh.arch_snapshot();
  fresh.run(10'000);
  ASSERT_EQ(fresh.status(), Core::Status::kHalted);
  fresh.reset_to(snap);
  EXPECT_TRUE(fresh.running());
  fresh.run(10'000);
  EXPECT_EQ(fresh.status(), Core::Status::kHalted);
  // Output accumulates across the rollback (two complete executions).
  EXPECT_EQ(fresh.output().size(), 2 * first_output.size());
}

TEST(CoreBasics, WatchdogCatchesWedgedMachine) {
  // A machine whose ROB head is corrupted to an invalid entry stops retiring;
  // the watchdog must catch it.
  const auto program = isa::assemble(
      "main:\n"
      "loop: addi r1, r1, 1\n"
      "  j loop\n");
  CoreConfig config;
  config.watchdog_cycles = 256;
  Core core(program, config);
  core.run(100);
  ASSERT_TRUE(core.running());
  core.rob_count_ = 33;  // corrupt occupancy: head now points at junk
  core.rob_head_ = (core.rob_head_ + 40) & (kRobEntries - 1);
  core.run(100'000);
  EXPECT_EQ(core.status(), Core::Status::kDeadlocked);
}

}  // namespace
}  // namespace restore::uarch
