// Tests for the SRA-64 two-pass assembler: labels, directives, pseudo-ops,
// immediate materialisation, and error reporting.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/instruction.hpp"

namespace restore::isa {
namespace {

u32 word_at(const Program& p, u64 vaddr) {
  for (const auto& seg : p.segments) {
    if (vaddr >= seg.vaddr && vaddr + 4 <= seg.vaddr + seg.bytes.size()) {
      const std::size_t off = vaddr - seg.vaddr;
      return static_cast<u32>(seg.bytes[off]) |
             (static_cast<u32>(seg.bytes[off + 1]) << 8) |
             (static_cast<u32>(seg.bytes[off + 2]) << 16) |
             (static_cast<u32>(seg.bytes[off + 3]) << 24);
    }
  }
  throw std::out_of_range("word_at");
}

u8 byte_at(const Program& p, u64 vaddr) {
  for (const auto& seg : p.segments) {
    if (vaddr >= seg.vaddr && vaddr < seg.vaddr + seg.bytes.size()) {
      return seg.bytes[vaddr - seg.vaddr];
    }
  }
  throw std::out_of_range("byte_at");
}

TEST(Assembler, MinimalProgram) {
  const Program p = assemble("main: halt\n");
  EXPECT_EQ(p.entry, 0x10000u);
  ASSERT_EQ(p.segments.size(), 1u);
  EXPECT_EQ(p.segments[0].perms, Perms::kReadExec);
  EXPECT_EQ(word_at(p, 0x10000), encode_halt());
}

TEST(Assembler, RegisterAliases) {
  EXPECT_EQ(parse_register("zero"), 31);
  EXPECT_EQ(parse_register("sp"), 30);
  EXPECT_EQ(parse_register("ra"), 29);
  EXPECT_EQ(parse_register("rv"), 1);
  EXPECT_EQ(parse_register("a0"), 2);
  EXPECT_EQ(parse_register("a5"), 7);
  EXPECT_EQ(parse_register("t0"), 8);
  EXPECT_EQ(parse_register("t11"), 19);
  EXPECT_EQ(parse_register("s0"), 20);
  EXPECT_EQ(parse_register("s8"), 28);
  EXPECT_EQ(parse_register("r17"), 17);
  EXPECT_THROW(parse_register("bogus"), AsmError);
}

TEST(Assembler, BasicInstructions) {
  const Program p = assemble(
      "main:\n"
      "  add r1, r2, r3\n"
      "  addi r4, r5, -12\n"
      "  ld r6, 16(sp)\n"
      "  sd r7, -8(sp)\n"
      "  halt\n");
  EXPECT_EQ(word_at(p, 0x10000), encode_rtype(Opcode::kAdd, 1, 2, 3));
  EXPECT_EQ(word_at(p, 0x10004), encode_itype(Opcode::kAddi, 4, 5, -12));
  EXPECT_EQ(word_at(p, 0x10008), encode_load(Opcode::kLd, 6, 30, 16));
  EXPECT_EQ(word_at(p, 0x1000C), encode_store(Opcode::kSd, 7, 30, -8));
}

TEST(Assembler, BranchesResolveLabels) {
  const Program p = assemble(
      "main:\n"
      "loop: addi r1, r1, 1\n"
      "  bne r1, r2, loop\n"
      "  beq r1, r2, done\n"
      "done: halt\n");
  // bne at 0x10004 targets 0x10000: disp = -8.
  EXPECT_EQ(word_at(p, 0x10004), encode_branch(Opcode::kBne, 1, 2, -8));
  // beq at 0x10008 targets 0x1000C: disp = 0.
  EXPECT_EQ(word_at(p, 0x10008), encode_branch(Opcode::kBeq, 1, 2, 0));
}

TEST(Assembler, PseudoOps) {
  const Program p = assemble(
      "main:\n"
      "  nop\n"
      "  mv r1, r2\n"
      "  j main\n"
      "  call func\n"
      "  beqz r3, main\n"
      "  bnez r4, main\n"
      "func: ret\n");
  EXPECT_EQ(word_at(p, 0x10000), encode_nop());
  EXPECT_EQ(word_at(p, 0x10004), encode_itype(Opcode::kAddi, 1, 2, 0));
  EXPECT_EQ(word_at(p, 0x10008), encode_jal(kZeroReg, -12));
  EXPECT_EQ(word_at(p, 0x1000C), encode_jal(29, 8));
  EXPECT_EQ(word_at(p, 0x10010), encode_branch(Opcode::kBeq, 3, kZeroReg, -20));
  EXPECT_EQ(word_at(p, 0x10018), encode_jalr(kZeroReg, 29, 0));
}

TEST(Assembler, LiSmallConstants) {
  const Program p = assemble(
      "main:\n"
      "  li r1, 100\n"
      "  li r2, -3\n"
      "  li r3, 0xFFFF\n"
      "  halt\n");
  EXPECT_EQ(word_at(p, 0x10000), encode_itype(Opcode::kAddi, 1, kZeroReg, 100));
  EXPECT_EQ(word_at(p, 0x10004), encode_itype(Opcode::kAddi, 2, kZeroReg, -3));
  EXPECT_EQ(word_at(p, 0x10008), encode_itype(Opcode::kOri, 3, kZeroReg, 0xFFFF));
}

TEST(Assembler, DataDirectives) {
  const Program p = assemble(
      "main: halt\n"
      ".data\n"
      "bytes: .byte 1, 2, 255\n"
      "       .align 8\n"
      "big:   .word64 0x1122334455667788\n"
      "hole:  .space 4\n"
      "small: .word32 0xAABBCCDD\n"
      "text:  .asciz \"hi\\n\"\n");
  const u64 base = p.symbol("bytes");
  EXPECT_EQ(base, 0x200000u);
  EXPECT_EQ(byte_at(p, base), 1);
  EXPECT_EQ(byte_at(p, base + 2), 255);
  const u64 big = p.symbol("big");
  EXPECT_EQ(big % 8, 0u);
  EXPECT_EQ(byte_at(p, big), 0x88);
  EXPECT_EQ(byte_at(p, big + 7), 0x11);
  const u64 small = p.symbol("small");
  EXPECT_EQ(small, p.symbol("hole") + 4);
  EXPECT_EQ(byte_at(p, small), 0xDD);
  const u64 text = p.symbol("text");
  EXPECT_EQ(byte_at(p, text), 'h');
  EXPECT_EQ(byte_at(p, text + 2), '\n');
  EXPECT_EQ(byte_at(p, text + 3), 0);
}

TEST(Assembler, Word64CanHoldLabel) {
  const Program p = assemble(
      "main: halt\n"
      ".data\n"
      "ptr: .word64 target\n"
      "target: .word64 7\n");
  const u64 ptr = p.symbol("ptr");
  u64 value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | byte_at(p, ptr + i);
  EXPECT_EQ(value, p.symbol("target"));
}

TEST(Assembler, CommentsAndBlankLines) {
  const Program p = assemble(
      "# full line comment\n"
      "\n"
      "main: halt  # trailing comment\n"
      "; alt comment style\n");
  EXPECT_EQ(word_at(p, 0x10000), encode_halt());
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("main: bogus r1\n"), AsmError);
  EXPECT_THROW(assemble("main: add r1, r2\n"), AsmError);        // arity
  EXPECT_THROW(assemble("main: addi r1, r2, 99999\n"), AsmError);  // imm range
  EXPECT_THROW(assemble("main: ld r1, 8[sp]\n"), AsmError);      // syntax
  EXPECT_THROW(assemble("main: beq r1, r2, nowhere\n"), AsmError);
  EXPECT_THROW(assemble("dup: halt\ndup: halt\nmain: halt\n"), AsmError);
  EXPECT_THROW(assemble("notmain: halt\n"), AsmError);  // missing entry
  EXPECT_THROW(assemble("main: .bogus 1\n"), AsmError);
  EXPECT_THROW(assemble("main: .align 3\n"), AsmError);
}

TEST(Assembler, ErrorReportsLineNumber) {
  try {
    assemble("main: halt\n  junk r1\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

// The li materialisation property: assembling "li r1, V" and interpreting the
// emitted instructions must reproduce V for a spread of 64-bit constants.
class LiProperty : public ::testing::TestWithParam<u64> {};

TEST_P(LiProperty, MaterialisesExactValue) {
  const u64 value = GetParam();
  char buf[64];
  std::snprintf(buf, sizeof buf, "main: li r1, 0x%llx\n halt\n",
                static_cast<unsigned long long>(value));
  const Program p = assemble(buf);

  // Interpret the emitted words with a two-register evaluator.
  u64 r1 = 0;
  for (u64 pc = 0x10000;; pc += 4) {
    const DecodedInst inst = decode(word_at(p, pc));
    ASSERT_TRUE(inst.valid);
    if (inst.op == Opcode::kHalt) break;
    ASSERT_EQ(inst.rd, 1u);
    u64 rs1 = inst.rs1 == 1 ? r1 : 0;
    switch (inst.op) {
      case Opcode::kAddi: r1 = rs1 + static_cast<u64>(inst.imm); break;
      case Opcode::kOri: r1 = rs1 | static_cast<u64>(inst.imm); break;
      case Opcode::kSlli: r1 = rs1 << (inst.imm & 63); break;
      default: FAIL() << "unexpected opcode in li expansion";
    }
  }
  EXPECT_EQ(r1, value);
}

INSTANTIATE_TEST_SUITE_P(
    Constants, LiProperty,
    ::testing::Values(u64{0}, u64{1}, u64{0x7FFF}, u64{0x8000}, u64{0xFFFF},
                      u64{0x10000}, u64{0x12345678}, u64{0xFFFFFFFF},
                      u64{0x100000000}, u64{0x123456789ABCDEF0},
                      ~u64{0}, u64{0x8000000000000000}, u64{0xFFFF0000FFFF0000},
                      u64{0x0000FFFF00000001}));

}  // namespace
}  // namespace restore::isa
