// Golden-file audit of the injectable state surface.
//
// StateRegistry::audit() renders every registered field (name, storage class,
// protection, entries x bits) plus subtotals; this suite compares it
// byte-for-byte against tests/golden/state_manifest.txt. Any drift in the
// registered surface — which silently changes fig4 denominators and the
// sampler's bit ordinals — therefore fails CI until the golden file (and the
// fixed-seed figure baselines) are deliberately regenerated. The current
// manifest is always written to state_manifest_current.txt in the working
// directory so regeneration is a copy, never a hand edit (see EXPERIMENTS.md).
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "uarch/state_registry.hpp"

#ifndef RESTORE_GOLDEN_MANIFEST
#error "RESTORE_GOLDEN_MANIFEST must point at tests/golden/state_manifest.txt"
#endif

namespace restore::uarch {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(StateManifest, MatchesGolden) {
  const std::string current = StateRegistry::instance().audit();
  std::ofstream("state_manifest_current.txt", std::ios::binary) << current;
  const std::string golden = read_file(RESTORE_GOLDEN_MANIFEST);
  ASSERT_FALSE(golden.empty())
      << "cannot read golden manifest at " << RESTORE_GOLDEN_MANIFEST;
  EXPECT_EQ(golden, current)
      << "the injectable state surface drifted from the golden manifest. If "
         "this is intentional, copy state_manifest_current.txt (written next "
         "to the test binary) over tests/golden/state_manifest.txt and "
         "regenerate the fixed-seed fig4 baselines (EXPERIMENTS.md).";
}

TEST(StateManifest, TotalBitsInPaperBand) {
  // The paper's §4.2 surface is ~46k eligible bits; the model must stay in
  // the same band or fig4's per-bit FIT scaling stops being comparable.
  const u64 total = StateRegistry::instance().total_bits();
  EXPECT_GE(total, 40'000u);
  EXPECT_LE(total, 50'000u);
}

TEST(StateManifest, SubtotalsAreConsistent) {
  const auto& reg = StateRegistry::instance();
  u64 sum = 0;
  for (const auto& f : reg.fields()) sum += f.total_bits();
  EXPECT_EQ(sum, reg.total_bits());
  EXPECT_EQ(reg.total_bits(StorageClass::kLatch) +
                reg.total_bits(StorageClass::kSram),
            reg.total_bits());
}

TEST(StateManifest, AuditFooterMatchesTotals) {
  const auto& reg = StateRegistry::instance();
  const std::string manifest = reg.audit();
  const std::string latch_line =
      "class latch = " + std::to_string(reg.total_bits(StorageClass::kLatch));
  const std::string sram_line =
      "class sram = " + std::to_string(reg.total_bits(StorageClass::kSram));
  const std::string total_line = "total = " + std::to_string(reg.total_bits());
  EXPECT_NE(manifest.find(latch_line), std::string::npos);
  EXPECT_NE(manifest.find(sram_line), std::string::npos);
  EXPECT_NE(manifest.find(total_line), std::string::npos);
}

TEST(StateManifest, EveryFieldHasAManifestLine) {
  const auto& reg = StateRegistry::instance();
  const std::string manifest = reg.audit();
  for (const auto& f : reg.fields()) {
    EXPECT_NE(manifest.find("field " + f.name + ' '), std::string::npos)
        << "field '" << f.name << "' missing from audit manifest";
  }
}

}  // namespace
}  // namespace restore::uarch
