// JobQueue semantics: identity-keyed dedup (attach), priority-FIFO ordering,
// cache-hit submission, drain behaviour, and the spec -> campaign config
// mapping (including exit-code semantics shared with the batch CLI).
#include "service/job_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "faultinject/orchestrator.hpp"

using namespace restore;
using service::JobQueue;
using service::JobSpec;
using service::JobState;

namespace {

JobSpec small_vm_spec(u64 seed = 7) {
  JobSpec spec;
  spec.kind = "vm";
  spec.seed = seed;
  spec.trials = 8;
  spec.shard_trials = 4;
  spec.workloads = {"gzip", "mcf"};
  return spec;
}

}  // namespace

TEST(ServiceJobQueue, DuplicateSubmissionAttaches) {
  JobQueue queue;
  const JobSpec spec = small_vm_spec();
  const auto first = queue.submit(spec, 0, "spool/a.jsonl", false);
  EXPECT_FALSE(first.attached);
  EXPECT_EQ(first.state, JobState::kQueued);

  // Same identity: attach, even while still queued.
  const auto dup = queue.submit(spec, 0, "spool/a.jsonl", false);
  EXPECT_TRUE(dup.attached);
  EXPECT_EQ(dup.id, first.id);

  // Still the same identity after it starts running.
  const auto popped = queue.pop_ready();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, first.id);
  const auto dup2 = queue.submit(spec, 0, "spool/a.jsonl", false);
  EXPECT_TRUE(dup2.attached);
  EXPECT_EQ(dup2.id, first.id);
  EXPECT_EQ(dup2.state, JobState::kRunning);

  // A different shard geometry is a different job (different trace bytes).
  JobSpec other = spec;
  other.shard_trials = 8;
  const auto fresh = queue.submit(other, 0, "spool/b.jsonl", false);
  EXPECT_FALSE(fresh.attached);
  EXPECT_NE(fresh.id, first.id);
}

TEST(ServiceJobQueue, FinishedJobsDoNotCaptureResubmits) {
  JobQueue queue;
  const JobSpec spec = small_vm_spec();
  const auto first = queue.submit(spec, 0, "spool/a.jsonl", false);
  ASSERT_TRUE(queue.pop_ready().has_value());
  queue.mark_finished(first.id, JobState::kFailed, "boom");

  // The identity slot is released on finish: a resubmit is a fresh job (a
  // failed run must be retryable without restarting the daemon).
  const auto retry = queue.submit(spec, 0, "spool/a.jsonl", false);
  EXPECT_FALSE(retry.attached);
  EXPECT_NE(retry.id, first.id);

  const auto failed = queue.snapshot(first.id);
  ASSERT_TRUE(failed.has_value());
  EXPECT_EQ(failed->state, JobState::kFailed);
  EXPECT_EQ(failed->exit_code, 1u);
  EXPECT_EQ(failed->error, "boom");
}

TEST(ServiceJobQueue, PriorityFifoOrdering) {
  JobQueue queue;
  // Distinct seeds -> distinct identities -> four independent jobs.
  const auto low_a = queue.submit(small_vm_spec(1), 0, "a", false);
  const auto high = queue.submit(small_vm_spec(2), 5, "b", false);
  const auto low_b = queue.submit(small_vm_spec(3), 0, "c", false);
  const auto high_b = queue.submit(small_vm_spec(4), 5, "d", false);

  // Highest priority first; FIFO within a priority band.
  EXPECT_EQ(queue.pop_ready(), high.id);
  EXPECT_EQ(queue.pop_ready(), high_b.id);
  EXPECT_EQ(queue.pop_ready(), low_a.id);
  EXPECT_EQ(queue.pop_ready(), low_b.id);
}

TEST(ServiceJobQueue, AlreadyCompleteNeverQueues) {
  JobQueue queue;
  const auto cached = queue.submit(small_vm_spec(), 0, "spool/a.jsonl", true);
  EXPECT_FALSE(cached.attached);
  EXPECT_EQ(cached.state, JobState::kDone);

  const auto snap = queue.snapshot(cached.id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->state, JobState::kDone);
  EXPECT_EQ(snap->exit_code, 0u);

  // Nothing to pop: a cache hit must not trigger a re-run. (shutdown() so the
  // assertion doesn't block forever if this regresses.)
  queue.shutdown();
  EXPECT_FALSE(queue.pop_ready().has_value());

  // And a later identical submission is its own cache-hit record, not an
  // attach onto the finished job.
  const auto again = queue.submit(small_vm_spec(), 0, "spool/a.jsonl", true);
  EXPECT_FALSE(again.attached);
  EXPECT_NE(again.id, cached.id);
}

TEST(ServiceJobQueue, ShutdownWakesBlockedWorkers) {
  JobQueue queue;
  std::vector<std::thread> workers;
  std::atomic<int> woke{0};
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&queue, &woke] {
      EXPECT_FALSE(queue.pop_ready().has_value());
      woke.fetch_add(1);
    });
  }
  queue.shutdown();
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(ServiceJobQueue, StopQueuedDrainsWithResumableExitCode) {
  JobQueue queue;
  const auto running = queue.submit(small_vm_spec(1), 0, "a", false);
  const auto queued_a = queue.submit(small_vm_spec(2), 0, "b", false);
  const auto queued_b = queue.submit(small_vm_spec(3), 0, "c", false);
  ASSERT_EQ(queue.pop_ready(), running.id);

  const auto stopped = queue.stop_queued();
  EXPECT_EQ(stopped.size(), 2u);

  for (const u64 id : {queued_a.id, queued_b.id}) {
    const auto snap = queue.snapshot(id);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->state, JobState::kStopped);
    EXPECT_EQ(snap->exit_code, 130u);  // matches the batch CLI's SIGTERM exit
  }
  // The running job is the runner's to finish; stop_queued leaves it alone.
  EXPECT_EQ(queue.snapshot(running.id)->state, JobState::kRunning);
}

TEST(ServiceJobQueue, ProgressAndSnapshotOrder) {
  JobQueue queue;
  const auto a = queue.submit(small_vm_spec(1), 0, "a", false);
  const auto b = queue.submit(small_vm_spec(2), 9, "b", false);
  queue.update_progress(a.id, 10, 16, 2, 4, 1, 2500);

  const auto snap = queue.snapshot(a.id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->trials_done, 10u);
  EXPECT_EQ(snap->trials_total, 16u);
  EXPECT_EQ(snap->shards_done, 2u);
  EXPECT_EQ(snap->shards_total, 4u);
  EXPECT_EQ(snap->quarantined_shards, 1u);
  EXPECT_EQ(snap->rate_milli, 2500u);

  // job_ids lists submission order regardless of priority.
  const auto ids = queue.job_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], a.id);
  EXPECT_EQ(ids[1], b.id);

  EXPECT_FALSE(queue.snapshot(999).has_value());
}

TEST(ServiceJobState, ExitCodesMatchBatchCli) {
  EXPECT_EQ(service::job_state_exit_code(JobState::kDone), 0u);
  EXPECT_EQ(service::job_state_exit_code(JobState::kQuarantined), 3u);
  EXPECT_EQ(service::job_state_exit_code(JobState::kStopped), 130u);
  EXPECT_EQ(service::job_state_exit_code(JobState::kFailed), 1u);

  EXPECT_FALSE(service::job_state_terminal(JobState::kQueued));
  EXPECT_FALSE(service::job_state_terminal(JobState::kRunning));
  EXPECT_TRUE(service::job_state_terminal(JobState::kDone));
  EXPECT_TRUE(service::job_state_terminal(JobState::kQuarantined));
  EXPECT_TRUE(service::job_state_terminal(JobState::kStopped));
  EXPECT_TRUE(service::job_state_terminal(JobState::kFailed));
}

TEST(ServiceJobSpecMapping, ValidationCatchesBadSpecs) {
  EXPECT_FALSE(service::spec_error(small_vm_spec()).has_value());

  JobSpec spec = small_vm_spec();
  spec.kind = "fpga";
  EXPECT_TRUE(service::spec_error(spec).has_value());

  spec = small_vm_spec();
  spec.model = "cosmic";
  EXPECT_TRUE(service::spec_error(spec).has_value());

  spec = small_vm_spec();
  spec.workloads = {"gzip", "no-such-workload"};
  const auto err = service::spec_error(spec);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("no-such-workload"), std::string::npos);

  JobSpec uarch;
  uarch.kind = "uarch";
  EXPECT_FALSE(service::spec_error(uarch).has_value());
}

TEST(ServiceJobSpecMapping, ConfigsCarryTheSpec) {
  JobSpec spec = small_vm_spec(0xABC);
  spec.low32 = true;
  spec.model = "register";
  const auto vm = service::vm_config_for(spec);
  EXPECT_EQ(vm.seed, 0xABCu);
  EXPECT_EQ(vm.trials_per_workload, 8u);
  EXPECT_TRUE(vm.low32_only);
  EXPECT_EQ(vm.workloads.size(), 2u);

  JobSpec uspec;
  uspec.kind = "uarch";
  uspec.seed = 0xDEF;
  uspec.trials = 6;
  uspec.latches_only = true;
  const auto uarch = service::uarch_config_for(uspec);
  EXPECT_EQ(uarch.seed, 0xDEFu);
  EXPECT_EQ(uarch.trials_per_workload, 6u);
  EXPECT_TRUE(uarch.latches_only);

  // config_hash dispatches on kind and matches the underlying campaign hash.
  EXPECT_EQ(service::spec_config_hash(spec), faultinject::config_hash(vm));
  EXPECT_EQ(service::spec_config_hash(uspec), faultinject::config_hash(uarch));
}

TEST(ServiceJobSpecMapping, TraceFilenameEncodesIdentity) {
  JobSpec spec = small_vm_spec();
  const std::string name = service::spec_trace_filename(spec);
  EXPECT_EQ(name.rfind("vm-", 0), 0u);
  EXPECT_NE(name.find("-s4.jsonl"), std::string::npos);

  // shard_trials = 0 resolves to the orchestrator default geometry.
  JobSpec defaulted = spec;
  defaulted.shard_trials = 0;
  EXPECT_EQ(service::spec_shard_trials(defaulted),
            faultinject::kDefaultShardTrials);
  JobSpec explicit_default = spec;
  explicit_default.shard_trials = faultinject::kDefaultShardTrials;
  EXPECT_EQ(service::spec_trace_filename(defaulted),
            service::spec_trace_filename(explicit_default));
}

// ---- condition-variable discipline under contention -----------------------
// pop_ready() blocks in a predicate loop around CondVar::wait_locked (the
// predicate-free primitive from common/thread_annotations.hpp), so a spurious
// wakeup — or a wakeup stolen by another consumer — must re-check the queue
// and keep waiting instead of returning a phantom job. These tests hammer
// that loop from many threads; the `tsan` label re-runs them under
// ThreadSanitizer in CI.

TEST(ServiceJobQueueConcurrency, ContendedPopsDeliverEveryJobExactlyOnce) {
  JobQueue queue;
  constexpr u64 kJobs = 64;
  constexpr int kConsumers = 8;

  std::vector<std::vector<u64>> popped(kConsumers);
  std::atomic<u64> total{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &popped, &total, c] {
      // Every wakeup either carries a real job or, after shutdown, nullopt;
      // a spurious wakeup must never surface as a value here.
      while (const auto id = queue.pop_ready()) {
        popped[static_cast<std::size_t>(c)].push_back(*id);
        total.fetch_add(1);
      }
    });
  }

  // Distinct seeds give every submission its own campaign identity, so none
  // of them attach to an earlier job.
  for (u64 n = 0; n < kJobs; ++n) {
    const auto sub =
        queue.submit(small_vm_spec(1000 + n), n % 3, "spool/x.jsonl", false);
    EXPECT_FALSE(sub.attached);
  }
  while (total.load() < kJobs) std::this_thread::yield();
  queue.shutdown();
  for (auto& t : consumers) t.join();

  std::set<u64> seen;
  u64 count = 0;
  for (const auto& ids : popped) {
    for (const u64 id : ids) {
      EXPECT_TRUE(seen.insert(id).second) << "job " << id << " popped twice";
      ++count;
    }
  }
  EXPECT_EQ(count, kJobs);
  // Once shut down, a fresh pop returns immediately with nothing.
  EXPECT_FALSE(queue.pop_ready().has_value());
}

TEST(ServiceJobQueueConcurrency, ShutdownWakesEveryBlockedWaiter) {
  JobQueue queue;
  constexpr int kWaiters = 8;
  std::atomic<int> woke{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int c = 0; c < kWaiters; ++c) {
    waiters.emplace_back([&queue, &woke] {
      EXPECT_FALSE(queue.pop_ready().has_value());  // empty queue: blocks
      woke.fetch_add(1);
    });
  }
  queue.shutdown();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}
