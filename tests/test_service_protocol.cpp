// Wire-protocol tests for the restored campaign service: framing under
// arbitrary fragmentation (fuzzed with the repo's deterministic Rng),
// oversize-frame poisoning, and exact round-trips of every message type.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "service/job_queue.hpp"

using namespace restore;
using service::FrameReader;
using service::JobSpec;
using service::MessageType;
using service::WireMessage;

namespace {

std::vector<std::string> sample_payloads() {
  std::vector<std::string> payloads;
  payloads.push_back("");
  payloads.push_back("x");
  payloads.push_back(R"({"type":"ping"})");
  payloads.push_back(std::string(4096, 'a'));
  payloads.push_back(std::string("\x00\x01\xff\x7f bin", 8));
  payloads.push_back(std::string(service::kMaxFramePayload, 'z'));
  return payloads;
}

}  // namespace

TEST(ServiceFraming, RoundTripWhole) {
  FrameReader reader;
  std::string stream;
  const auto payloads = sample_payloads();
  for (const auto& payload : payloads) {
    stream += service::encode_frame(payload);
  }
  reader.feed(stream.data(), stream.size());
  for (const auto& payload : payloads) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.error());
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(ServiceFraming, ByteAtATime) {
  FrameReader reader;
  const std::string frame = service::encode_frame("hello frames");
  for (const char c : frame) {
    // Nothing may surface until the final byte arrives.
    const bool last = &c == &frame.back();
    if (!last) {
      EXPECT_FALSE(reader.next().has_value());
    }
    reader.feed(&c, 1);
  }
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "hello frames");
}

TEST(ServiceFraming, FuzzedSplitAndCoalescedReads) {
  // 100 rounds of random payload batches, each delivered in random-sized
  // chunks (frequently cutting length prefixes in half and coalescing
  // adjacent frames). The reader must reproduce every payload in order.
  Rng rng(0xF7A3E5);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::string> payloads;
    const u64 count = rng.range(1, 8);
    std::string stream;
    for (u64 i = 0; i < count; ++i) {
      std::string payload;
      const u64 size = rng.below(3) == 0 ? rng.below(4) : rng.below(9000);
      payload.reserve(size);
      for (u64 b = 0; b < size; ++b) {
        payload.push_back(static_cast<char>(rng.below(256)));
      }
      stream += service::encode_frame(payload);
      payloads.push_back(std::move(payload));
    }

    FrameReader reader;
    std::vector<std::string> decoded;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const u64 chunk = rng.range(1, 257);
      const std::size_t take = std::min<std::size_t>(chunk, stream.size() - offset);
      reader.feed(stream.data() + offset, take);
      offset += take;
      while (const auto payload = reader.next()) decoded.push_back(*payload);
    }
    ASSERT_FALSE(reader.error()) << "round " << round;
    ASSERT_EQ(decoded.size(), payloads.size()) << "round " << round;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      EXPECT_EQ(decoded[i], payloads[i]) << "round " << round << " frame " << i;
    }
    EXPECT_EQ(reader.pending_bytes(), 0u);
  }
}

TEST(ServiceFraming, FinishFlagsTruncatedStreams) {
  // EOF mid-payload: the peer died with a frame in flight.
  {
    FrameReader reader;
    const std::string frame = service::encode_frame("cut short");
    reader.feed(frame.data(), frame.size() - 3);
    EXPECT_FALSE(reader.next().has_value());
    reader.finish();
    EXPECT_TRUE(reader.error());
    EXPECT_EQ(reader.error_code(), service::FrameError::kTruncated);
    EXPECT_EQ(reader.pending_bytes(), 0u);  // poisoned readers hold nothing
  }
  // EOF mid-header: even a partial length prefix counts as truncation.
  {
    FrameReader reader;
    const char header_byte = 0;
    reader.feed(&header_byte, 1);
    reader.finish();
    EXPECT_EQ(reader.error_code(), service::FrameError::kTruncated);
  }
  // Clean EOF between frames is not an error, and finish() is idempotent.
  {
    FrameReader reader;
    const std::string frame = service::encode_frame("whole");
    reader.feed(frame.data(), frame.size());
    EXPECT_TRUE(reader.next().has_value());
    reader.finish();
    reader.finish();
    EXPECT_FALSE(reader.error());
    EXPECT_EQ(reader.error_code(), service::FrameError::kNone);
  }
}

TEST(ServiceFraming, CustomPayloadLimitBoundsAllocation) {
  // An embedder fronting an untrusted network can cap payloads below the
  // protocol-wide limit; a frame over the cap poisons with kOversize.
  FrameReader reader(64);
  const std::string small = service::encode_frame(std::string(64, 's'));
  reader.feed(small.data(), small.size());
  ASSERT_TRUE(reader.next().has_value());

  const std::string big = service::encode_frame(std::string(65, 'b'));
  reader.feed(big.data(), big.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.error_code(), service::FrameError::kOversize);
}

TEST(ServiceFraming, MalformedByteSoupNeverThrowsOrOverbuffers) {
  // Adversarial-input property: feed random byte soup (which constantly
  // fabricates wild length prefixes) through a capped reader. The reader
  // must never throw, and — poisoned or not — must never buffer more than
  // one max-size payload beyond what it already delivered.
  constexpr u32 kCap = 4096;
  Rng rng(0xBADF00D);
  for (int round = 0; round < 200; ++round) {
    FrameReader reader(kCap);
    const u64 total = rng.range(1, 8192);
    u64 fed = 0;
    while (fed < total) {
      char chunk[257];
      const u64 take = std::min<u64>(rng.range(1, 257), total - fed);
      for (u64 i = 0; i < take; ++i) {
        chunk[i] = static_cast<char>(rng.below(256));
      }
      reader.feed(chunk, take);
      fed += take;
      while (reader.next()) {
      }
      ASSERT_LE(reader.pending_bytes(), static_cast<std::size_t>(kCap) + 4)
          << "round " << round;
    }
    reader.finish();
    // After EOF the reader has a definite verdict; byte soup almost always
    // ends poisoned, but a lucky clean parse is legal too.
    if (reader.error()) {
      EXPECT_NE(reader.error_code(), service::FrameError::kNone);
    }
  }
}

TEST(ServiceFraming, EncodeRejectsOversizePayload) {
  EXPECT_THROW(
      service::encode_frame(std::string(service::kMaxFramePayload + 1, 'x')),
      std::length_error);
}

TEST(ServiceFraming, OversizeFramePoisonsTheStream) {
  FrameReader reader;
  // A hand-built header claiming kMaxFramePayload+1 bytes.
  const u32 size = service::kMaxFramePayload + 1;
  char header[4] = {static_cast<char>(size >> 24), static_cast<char>(size >> 16),
                    static_cast<char>(size >> 8), static_cast<char>(size)};
  reader.feed(header, sizeof header);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.error());
  EXPECT_NE(reader.error_text().find("oversize"), std::string::npos);

  // A poisoned stream never resyncs: even a well-formed frame afterwards
  // yields nothing.
  const std::string good = service::encode_frame("too late");
  reader.feed(good.data(), good.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.error());
}

namespace {

// Every message type with every type-relevant field set to a distinctive
// value, so encode -> decode -> encode proves the wire form is a fixpoint.
std::vector<WireMessage> one_of_each_type() {
  std::vector<WireMessage> messages;

  WireMessage ping;
  ping.type = MessageType::kPing;
  messages.push_back(ping);

  WireMessage submit;
  submit.type = MessageType::kSubmit;
  submit.spec.kind = "uarch";
  submit.spec.seed = 0xC0FFEE;
  submit.spec.trials = 24;
  submit.spec.shard_trials = 8;
  submit.spec.workloads = {"gzip", "mcf"};
  submit.spec.low32 = true;
  submit.spec.model = "register";
  submit.spec.latches_only = true;
  submit.priority = 7;
  submit.want_events = true;
  messages.push_back(submit);

  WireMessage status;
  status.type = MessageType::kStatus;
  status.job = 3;
  messages.push_back(status);

  WireMessage list;
  list.type = MessageType::kList;
  messages.push_back(list);

  WireMessage subscribe;
  subscribe.type = MessageType::kSubscribe;
  subscribe.job = 9;
  messages.push_back(subscribe);

  WireMessage fetch;
  fetch.type = MessageType::kFetch;
  fetch.job = 4;
  messages.push_back(fetch);

  WireMessage analyze;
  analyze.type = MessageType::kAnalyze;
  analyze.job = 4;
  analyze.interval = 250;
  analyze.json = true;
  messages.push_back(analyze);

  WireMessage pong;
  pong.type = MessageType::kPong;
  pong.version = service::kProtocolVersion;
  messages.push_back(pong);

  WireMessage submitted;
  submitted.type = MessageType::kSubmitted;
  submitted.job = 11;
  submitted.config_hash = 0x123456789abcdef0ULL;
  submitted.state = "queued";
  submitted.attached = true;
  submitted.cached = false;
  submitted.trace = "spool/vm-123-s8.jsonl";
  messages.push_back(submitted);

  WireMessage event;
  event.type = MessageType::kEvent;
  event.job = 11;
  event.event = "attempt-failed";
  event.shard = 5;
  event.workload = "vortex";
  event.attempt = 2;
  event.attempts_max = 3;
  event.shards_done = 4;
  event.shards_total = 12;
  event.trials_done = 32;
  event.trials_total = 96;
  event.text = "shard 5 (vortex) attempt 2/3 failed: boom";
  messages.push_back(event);

  WireMessage done;
  done.type = MessageType::kDone;
  done.job = 11;
  done.state = "quarantined";
  done.exit_code = 3;
  done.trials_done = 88;
  done.trace = "spool/vm-123-s8.jsonl";
  done.text = "shard 5 kept throwing";
  messages.push_back(done);

  WireMessage job_status;
  job_status.type = MessageType::kJobStatus;
  job_status.job = 12;
  job_status.spec.kind = "vm";
  job_status.state = "running";
  job_status.config_hash = 0xfeedface;
  job_status.priority = 1;
  job_status.trials_done = 10;
  job_status.trials_total = 20;
  job_status.shards_done = 2;
  job_status.shards_total = 4;
  job_status.quarantined = 1;
  job_status.exit_code = 0;
  job_status.trace = "spool/vm-feed-s4.jsonl";
  job_status.text = "";
  messages.push_back(job_status);

  WireMessage list_end;
  list_end.type = MessageType::kListEnd;
  list_end.count = 2;
  messages.push_back(list_end);

  WireMessage trace_data;
  trace_data.type = MessageType::kTraceData;
  trace_data.job = 12;
  trace_data.data = "{\"shard\":0}\n{\"shard\":1}\nwith \"quotes\" \\ and\ttabs";
  messages.push_back(trace_data);

  WireMessage trace_end;
  trace_end.type = MessageType::kTraceEnd;
  trace_end.job = 12;
  trace_end.bytes = 1605;
  messages.push_back(trace_end);

  WireMessage analyze_result;
  analyze_result.type = MessageType::kAnalyzeResult;
  analyze_result.job = 4;
  analyze_result.data = "{\"kind\":\"vm\",\"rows\":168,\"outcomes\":[]}";
  analyze_result.json = true;
  analyze_result.cached = true;
  messages.push_back(analyze_result);

  WireMessage error;
  error.type = MessageType::kError;
  error.text = "unknown workload 'spice'";
  messages.push_back(error);

  WireMessage shutdown;
  shutdown.type = MessageType::kShutdown;
  shutdown.text = "daemon draining";
  messages.push_back(shutdown);

  WireMessage lease;
  lease.type = MessageType::kLease;
  lease.lease = 17;
  lease.shard = 5;
  lease.deadline_ms = 60'000;
  lease.spec.kind = "vm";
  lease.spec.seed = 7;
  lease.spec.trials = 8;
  lease.spec.shard_trials = 4;
  lease.spec.workloads = {"gzip", "mcf"};
  messages.push_back(lease);

  WireMessage lease_cancel;
  lease_cancel.type = MessageType::kLeaseCancel;
  lease_cancel.lease = 17;
  messages.push_back(lease_cancel);

  WireMessage worker_status;
  worker_status.type = MessageType::kWorkerStatus;
  messages.push_back(worker_status);

  WireMessage lease_data;
  lease_data.type = MessageType::kLeaseData;
  lease_data.lease = 17;
  lease_data.data = "{\"shard\":5,\"slot\":0}\n";
  messages.push_back(lease_data);

  WireMessage lease_result;
  lease_result.type = MessageType::kLeaseResult;
  lease_result.lease = 17;
  lease_result.shard = 5;
  lease_result.trials_done = 4;
  lease_result.bytes = 512;
  lease_result.cached = true;
  messages.push_back(lease_result);

  WireMessage lease_failed;
  lease_failed.type = MessageType::kLeaseFailed;
  lease_failed.lease = 18;
  lease_failed.shard = 6;
  lease_failed.text = "bad_alloc running the shard";
  messages.push_back(lease_failed);

  WireMessage worker_info;
  worker_info.type = MessageType::kWorkerInfo;
  worker_info.version = service::kProtocolVersion;
  worker_info.leases_done = 42;
  worker_info.cache_hits = 7;
  worker_info.failures = 1;
  worker_info.active = 2;
  messages.push_back(worker_info);

  return messages;
}

}  // namespace

TEST(ServiceMessages, EveryTypeRoundTripsExactly) {
  const auto messages = one_of_each_type();
  ASSERT_EQ(messages.size(), service::kMessageTypeCount);  // one per MessageType
  for (const auto& msg : messages) {
    const std::string wire = service::encode_message(msg);
    const auto decoded = service::decode_message(wire);
    ASSERT_TRUE(decoded.has_value()) << wire;
    EXPECT_EQ(decoded->type, msg.type) << wire;
    // The wire form must be a fixpoint: re-encoding the decoded message
    // reproduces the bytes, so no field is lost or reordered.
    EXPECT_EQ(service::encode_message(*decoded), wire);
  }
}

TEST(ServiceMessages, SubmitFieldsSurviveDecode) {
  WireMessage submit;
  submit.type = MessageType::kSubmit;
  submit.spec.kind = "vm";
  submit.spec.seed = 7;
  submit.spec.trials = 8;
  submit.spec.shard_trials = 4;
  submit.spec.workloads = {"gzip", "mcf"};
  submit.spec.model = "result";
  submit.priority = 3;
  submit.want_events = true;

  const auto decoded = service::decode_message(service::encode_message(submit));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->spec, submit.spec);
  EXPECT_EQ(decoded->priority, 3u);
  EXPECT_TRUE(decoded->want_events);
}

TEST(ServiceMessages, DecodeRejectsMalformedInput) {
  EXPECT_FALSE(service::decode_message("not json").has_value());
  EXPECT_FALSE(service::decode_message("{}").has_value());
  EXPECT_FALSE(service::decode_message(R"({"type":"teleport"})").has_value());
  // Job-scoped without a job id.
  EXPECT_FALSE(service::decode_message(R"({"type":"status"})").has_value());
  // Submit without the required kind/seed.
  EXPECT_FALSE(service::decode_message(R"({"type":"submit"})").has_value());
  EXPECT_FALSE(
      service::decode_message(R"({"type":"submit","kind":"vm"})").has_value());
  // Event without its tag; error without text.
  EXPECT_FALSE(service::decode_message(R"({"type":"event","job":1})").has_value());
  EXPECT_FALSE(service::decode_message(R"({"type":"error"})").has_value());
  // Analyze without a job id; analyze-result without its document.
  EXPECT_FALSE(service::decode_message(R"({"type":"analyze"})").has_value());
  EXPECT_FALSE(
      service::decode_message(R"({"type":"analyze-result","job":1})").has_value());
  // Lease-scoped without a lease id.
  EXPECT_FALSE(service::decode_message(R"({"type":"lease-cancel"})").has_value());
  EXPECT_FALSE(
      service::decode_message(R"({"type":"lease-data","data":"x"})").has_value());
  // Lease without its shard/spec; lease-result without a shard; lease-failed
  // without its error text.
  EXPECT_FALSE(service::decode_message(R"({"type":"lease","lease":1})").has_value());
  EXPECT_FALSE(
      service::decode_message(R"({"type":"lease","lease":1,"shard":0})").has_value());
  EXPECT_FALSE(
      service::decode_message(R"({"type":"lease-result","lease":1})").has_value());
  EXPECT_FALSE(service::decode_message(
                   R"({"type":"lease-failed","lease":1,"shard":0})")
                   .has_value());
}

TEST(ServiceMessages, TypeNamesRoundTrip) {
  for (const auto& msg : one_of_each_type()) {
    const auto name = service::to_string(msg.type);
    const auto back = service::message_type_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, msg.type);
  }
  EXPECT_FALSE(service::message_type_from_string("nope").has_value());
}

// Generated exhaustiveness sweep: iterate the raw enumerator range instead of
// a hand-maintained list, so a new MessageType that is missing a wire name, a
// from_string mapping, or a one_of_each_type() entry fails here even if every
// hand-written test above was left untouched.
TEST(ServiceMessages, MessageTypeSurfaceIsExhaustive) {
  std::set<MessageType> built;
  for (const auto& msg : one_of_each_type()) {
    EXPECT_TRUE(built.insert(msg.type).second)
        << "duplicate one_of_each_type() entry for "
        << service::to_string(msg.type);
  }
  for (std::size_t raw = 0; raw < service::kMessageTypeCount; ++raw) {
    const auto type = static_cast<MessageType>(raw);
    const auto name = service::to_string(type);
    EXPECT_NE(name, "?") << "enumerator " << raw << " has no wire name";
    const auto back = service::message_type_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, type) << name;
    EXPECT_TRUE(built.count(type))
        << "one_of_each_type() never builds '" << name
        << "', so its encode/decode round trip is untested";
  }
}

TEST(ServiceJobSpec, IdentityKeyCoversGeometry) {
  JobSpec a;
  a.kind = "vm";
  a.seed = 7;
  a.trials = 8;
  a.shard_trials = 4;
  JobSpec b = a;
  EXPECT_EQ(service::spec_trace_filename(a), service::spec_trace_filename(b));
  b.shard_trials = 8;  // same config_hash, different sampling geometry
  EXPECT_EQ(service::spec_config_hash(a), service::spec_config_hash(b));
  EXPECT_NE(service::spec_trace_filename(a), service::spec_trace_filename(b));
  b.shard_trials = a.shard_trials;
  b.seed = 8;  // different campaign entirely
  EXPECT_NE(service::spec_config_hash(a), service::spec_config_hash(b));
  EXPECT_NE(service::spec_trace_filename(a), service::spec_trace_filename(b));
}
