// Property-based suites over the substrates: paged-memory laws, checkpoint
// undo-log inversion, assembler/disassembler agreement, and statistics
// invariants. Parameterised gtest sweeps provide the property-style coverage.
#include <gtest/gtest.h>

#include <map>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/checkpoint.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "uarch/core.hpp"
#include "vm/memory.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace restore {
namespace {

// ---- PagedMemory laws ----

class MemoryLaw : public ::testing::TestWithParam<unsigned> {};

TEST_P(MemoryLaw, StoreThenLoadReturnsStoredValue) {
  const unsigned bytes = GetParam();
  vm::PagedMemory mem;
  mem.map_region(0x10000, 0x4000, isa::Perms::kReadWrite);
  Rng rng(bytes * 1000003);
  for (int i = 0; i < 3000; ++i) {
    const u64 addr = 0x10000 + rng.below(0x4000 / bytes) * bytes;
    const u64 value = rng.next();
    ASSERT_TRUE(mem.store(addr, bytes, value).ok());
    const auto loaded = mem.load(addr, bytes);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value, value & mask64(bytes * 8)) << addr;
  }
}

TEST_P(MemoryLaw, MisalignedAccessesAlwaysFault) {
  const unsigned bytes = GetParam();
  if (bytes == 1) return;  // bytes are always aligned
  vm::PagedMemory mem;
  mem.map_region(0x10000, 0x1000, isa::Perms::kReadWrite);
  Rng rng(bytes);
  for (int i = 0; i < 500; ++i) {
    const u64 misalign = 1 + rng.below(bytes - 1);
    const u64 addr = 0x10000 + rng.below(0x800 / bytes) * bytes + misalign;
    EXPECT_EQ(mem.load(addr, bytes).fault, isa::ExceptionKind::kMemAlignment);
    EXPECT_EQ(mem.store(addr, bytes, 0).fault, isa::ExceptionKind::kMemAlignment);
  }
}

TEST_P(MemoryLaw, NarrowStoresOnlyTouchTheirBytes) {
  const unsigned bytes = GetParam();
  if (bytes == 8) return;
  vm::PagedMemory mem;
  mem.map_region(0x10000, 0x1000, isa::Perms::kReadWrite);
  Rng rng(99 + bytes);
  for (int i = 0; i < 500; ++i) {
    const u64 base = 0x10000 + rng.below(0x100) * 8;
    const u64 canvas = rng.next();
    mem.store(base, 8, canvas);
    const unsigned slot = static_cast<unsigned>(rng.below(8 / bytes));
    const u64 narrow = rng.next();
    mem.store(base + slot * bytes, bytes, narrow);
    const u64 readback = mem.load(base, 8).value;
    // Bytes outside the narrow store are unchanged.
    const u64 narrow_mask = mask64(bytes * 8) << (slot * bytes * 8);
    EXPECT_EQ(readback & ~narrow_mask, canvas & ~narrow_mask);
    EXPECT_EQ((readback & narrow_mask) >> (slot * bytes * 8),
              narrow & mask64(bytes * 8));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MemoryLaw, ::testing::Values(1u, 2u, 4u, 8u));

// ---- checkpoint undo-log inversion ----

TEST(CheckpointProperty, UndoLogExactlyInvertsRandomStoreSequences) {
  // Drive random store sequences through a real core while checkpointing;
  // rolling back must reproduce the memory image that existed at the
  // checkpoint, byte for byte (digest compare against a shadow copy).
  Rng rng(0x5EED);
  for (int round = 0; round < 10; ++round) {
    const auto& wl = workloads::by_name(round % 2 ? "vortex" : "bzip2");
    uarch::Core core(wl.program);
    core.run(200 + rng.below(3'000));
    if (!core.running()) continue;

    core::CheckpointManager mgr(50 + rng.below(100), 2);
    mgr.maybe_checkpoint(core, true);

    // Advance with bookkeeping, remembering the memory image at each
    // checkpoint.
    std::map<u64, u64> digest_at;  // retired_at -> memory digest
    digest_at[core.retired_count()] = core.memory().digest();
    const u64 until = core.retired_count() + 400 + rng.below(800);
    while (core.running() && core.retired_count() < until) {
      core.cycle();
      for (const auto& rec : core.retired_this_cycle()) mgr.on_retired(rec);
      if (mgr.maybe_checkpoint(core)) {
        digest_at[core.retired_count()] = core.memory().digest();
      }
    }
    if (!core.running()) continue;

    const u64 target = mgr.oldest().retired_at;
    ASSERT_TRUE(digest_at.count(target)) << target;
    mgr.rollback(core);
    EXPECT_EQ(core.memory().digest(), digest_at[target]) << "round " << round;
  }
}

// ---- assembler / disassembler agreement ----

TEST(AsmDisasmProperty, DisassembledRealInstructionsReassembleIdentically) {
  // Every text-segment word of every workload must survive
  // decode -> disassemble -> reassemble unchanged.
  for (const auto& wl : workloads::all()) {
    for (const auto& seg : wl.program.segments) {
      if (!isa::has_perm(seg.perms, isa::Perms::kExec)) continue;
      int checked = 0;
      for (std::size_t off = 0; off + 4 <= seg.bytes.size(); off += 4) {
        u32 word = 0;
        for (int b = 3; b >= 0; --b) word = (word << 8) | seg.bytes[off + b];
        const isa::DecodedInst inst = isa::decode(word);
        if (!inst.valid) continue;
        // Branch/jump displacements print as byte offsets which the
        // assembler expects as labels; skip control flow in the round-trip.
        if (isa::is_control(inst.op)) continue;
        const std::string text = "main: " + isa::disassemble(inst) + "\nhalt\n";
        isa::Program reassembled;
        ASSERT_NO_THROW(reassembled = isa::assemble(text)) << text;
        u32 word2 = 0;
        const auto& bytes = reassembled.segments.at(0).bytes;
        for (int b = 3; b >= 0; --b) word2 = (word2 << 8) | bytes[b];
        EXPECT_EQ(word2, word) << text;
        ++checked;
      }
      EXPECT_GT(checked, 20) << wl.name;
    }
  }
}

// ---- statistics invariants ----

TEST(StatsProperty, WilsonIntervalAlwaysContainsTheEstimate) {
  Rng rng(31337);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t n = 1 + rng.below(20'000);
    const std::size_t k = rng.below(n + 1);
    const auto ci = wilson_interval(k, n);
    EXPECT_LE(ci.lo, ci.estimate + 1e-12);
    EXPECT_GE(ci.hi, ci.estimate - 1e-12);
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_LE(ci.hi, 1.0);
  }
}

TEST(StatsProperty, WilsonMarginShrinksWithSamples) {
  double last = 1.0;
  for (std::size_t n : {10u, 100u, 1'000u, 10'000u, 100'000u}) {
    const double margin = wilson_interval(n / 2, n).margin();
    EXPECT_LT(margin, last);
    last = margin;
  }
}

TEST(StatsProperty, OnlineStatsMatchesBatchForRandomData) {
  Rng rng(4242);
  for (int round = 0; round < 50; ++round) {
    OnlineStats online;
    std::vector<double> data;
    const int n = 2 + static_cast<int>(rng.below(500));
    for (int i = 0; i < n; ++i) {
      const double x = static_cast<double>(rng.next() % 1'000'000) / 1000.0;
      online.add(x);
      data.push_back(x);
    }
    double mean = 0;
    for (double x : data) mean += x;
    mean /= n;
    double var = 0;
    for (double x : data) var += (x - mean) * (x - mean);
    var /= (n - 1);
    EXPECT_NEAR(online.mean(), mean, 1e-6 * std::max(1.0, mean));
    EXPECT_NEAR(online.variance(), var, 1e-5 * std::max(1.0, var));
  }
}

// ---- VM snapshot/restore determinism ----

TEST(VmProperty, RestoreFromSnapshotReplaysIdentically) {
  Rng rng(808);
  const auto& wl = workloads::by_name("parser");
  for (int round = 0; round < 5; ++round) {
    vm::Vm vm(wl.program);
    vm.run(1'000 + rng.below(20'000));
    ASSERT_TRUE(vm.running());
    const vm::ArchSnapshot snap = vm.snapshot();
    const u64 digest_before = vm.memory().digest();

    // Continue two clones from the same snapshot (memory is shared state, so
    // clone the whole VM and restore registers).
    vm::Vm a = vm;
    vm::Vm b = vm;
    a.restore(snap);
    b.restore(snap);
    a.run(5'000);
    b.run(5'000);
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.memory().digest(), b.memory().digest());
    for (u8 r = 0; r < isa::kNumArchRegs; ++r) EXPECT_EQ(a.reg(r), b.reg(r));
    (void)digest_before;
  }
}

}  // namespace
}  // namespace restore
