// The campaign runner must produce bit-identical results regardless of the
// worker-thread count (bits are pre-sampled sequentially; trials are
// independent).
#include <gtest/gtest.h>

#include "faultinject/uarch_campaign.hpp"

namespace restore::faultinject {
namespace {

TEST(CampaignParallelism, WorkerCountDoesNotChangeResults) {
  UarchCampaignConfig serial;
  serial.trials_per_workload = 24;
  serial.workloads = {"gzip", "mcf"};
  serial.seed = 0xBEE;
  UarchCampaignConfig threaded = serial;
  threaded.workers = 3;

  const auto a = run_uarch_campaign(serial);
  const auto b = run_uarch_campaign(threaded);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].field_name, b.trials[i].field_name) << i;
    EXPECT_EQ(a.trials[i].lat_exception, b.trials[i].lat_exception) << i;
    EXPECT_EQ(a.trials[i].lat_cfv, b.trials[i].lat_cfv) << i;
    EXPECT_EQ(a.trials[i].lat_hiconf, b.trials[i].lat_hiconf) << i;
    EXPECT_EQ(a.trials[i].lat_deadlock, b.trials[i].lat_deadlock) << i;
    EXPECT_EQ(a.trials[i].trace_diverged, b.trials[i].trace_diverged) << i;
    EXPECT_EQ(a.trials[i].arch_corrupt_at_end, b.trials[i].arch_corrupt_at_end) << i;
    EXPECT_EQ(a.trials[i].uarch_state_equal, b.trials[i].uarch_state_equal) << i;
    EXPECT_EQ(a.trials[i].live_state_diff, b.trials[i].live_state_diff) << i;
  }
}

}  // namespace
}  // namespace restore::faultinject
