// Tests for the paged memory and architectural VM: load/store semantics,
// exception generation, control flow, and snapshot/restore.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "vm/exec.hpp"
#include "vm/memory.hpp"
#include "vm/vm.hpp"

namespace restore::vm {
namespace {

using isa::ExceptionKind;
using isa::Opcode;
using isa::Perms;

Vm make_vm(const std::string& asm_source) {
  return Vm(isa::assemble(asm_source));
}

// ---- PagedMemory ----

TEST(Memory, UnmappedAccessFaults) {
  PagedMemory mem;
  EXPECT_EQ(mem.load(0x5000, 8).fault, ExceptionKind::kMemTranslation);
  EXPECT_EQ(mem.store(0x5000, 8, 1).fault, ExceptionKind::kMemTranslation);
  EXPECT_EQ(mem.fetch(0x5000).fault, ExceptionKind::kMemTranslation);
}

TEST(Memory, AlignmentCheckedBeforeTranslation) {
  PagedMemory mem;
  EXPECT_EQ(mem.load(0x5001, 8).fault, ExceptionKind::kMemAlignment);
  EXPECT_EQ(mem.load(0x5002, 4).fault, ExceptionKind::kMemAlignment);
  EXPECT_EQ(mem.fetch(0x5002).fault, ExceptionKind::kMemAlignment);
}

TEST(Memory, PermissionsEnforced) {
  PagedMemory mem;
  mem.map_region(0x1000, 0x1000, Perms::kReadExec);
  EXPECT_EQ(mem.store(0x1000, 8, 1).fault, ExceptionKind::kMemProtection);
  EXPECT_TRUE(mem.load(0x1000, 8).ok());
  EXPECT_TRUE(mem.fetch(0x1000).ok());

  mem.map_region(0x3000, 0x1000, Perms::kReadWrite);
  EXPECT_EQ(mem.fetch(0x3000).fault, ExceptionKind::kMemProtection);
}

TEST(Memory, LoadStoreRoundTrip) {
  PagedMemory mem;
  mem.map_region(0x2000, 0x1000, Perms::kReadWrite);
  EXPECT_TRUE(mem.store(0x2008, 8, 0x1122334455667788ull).ok());
  EXPECT_EQ(mem.load(0x2008, 8).value, 0x1122334455667788ull);
  EXPECT_EQ(mem.load(0x2008, 4).value, 0x55667788u);   // little-endian
  EXPECT_EQ(mem.load(0x2008, 1).value, 0x88u);
  EXPECT_TRUE(mem.store(0x200C, 2, 0xABCD).ok());
  EXPECT_EQ(mem.load(0x200C, 2).value, 0xABCDu);
}

TEST(Memory, CrossPageRegionsMapped) {
  PagedMemory mem;
  mem.map_region(0x1F00, 0x200, Perms::kReadWrite);  // spans two pages
  EXPECT_TRUE(mem.store(0x1FF8, 8, 42).ok());
  EXPECT_TRUE(mem.store(0x2000, 8, 43).ok());
  EXPECT_EQ(mem.mapped_pages(), 2u);
}

TEST(Memory, DigestChangesWithContents) {
  PagedMemory a, b;
  a.map_region(0x1000, 0x1000, Perms::kReadWrite);
  b.map_region(0x1000, 0x1000, Perms::kReadWrite);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_TRUE(a == b);
  a.store(0x1000, 8, 7);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_FALSE(a == b);
}

// ---- exec helpers ----

TEST(Exec, TrappingArithmetic) {
  isa::DecodedInst addv;
  addv.op = Opcode::kAddv;
  addv.valid = true;
  const u64 max = 0x7FFFFFFFFFFFFFFFull;
  EXPECT_EQ(exec_int_op(addv, max, 1).fault, ExceptionKind::kArithOverflow);
  EXPECT_TRUE(exec_int_op(addv, 1, 2).ok());

  isa::DecodedInst mulv;
  mulv.op = Opcode::kMulv;
  mulv.valid = true;
  EXPECT_EQ(exec_int_op(mulv, max, 2).fault, ExceptionKind::kArithOverflow);
}

TEST(Exec, DivByZeroTraps) {
  isa::DecodedInst divu;
  divu.op = Opcode::kDivu;
  divu.valid = true;
  EXPECT_EQ(exec_int_op(divu, 10, 0).fault, ExceptionKind::kDivByZero);
  EXPECT_EQ(exec_int_op(divu, 10, 3).value, 3u);
}

TEST(Exec, WordOpsSignExtend) {
  isa::DecodedInst addw;
  addw.op = Opcode::kAddw;
  addw.valid = true;
  EXPECT_EQ(exec_int_op(addw, 0x7FFFFFFF, 1).value, 0xFFFFFFFF80000000ull);
}

TEST(Exec, BranchConditions) {
  EXPECT_TRUE(eval_branch(Opcode::kBeq, 5, 5));
  EXPECT_FALSE(eval_branch(Opcode::kBeq, 5, 6));
  EXPECT_TRUE(eval_branch(Opcode::kBlt, static_cast<u64>(-1), 0));   // signed
  EXPECT_FALSE(eval_branch(Opcode::kBltu, static_cast<u64>(-1), 0));  // unsigned
  EXPECT_TRUE(eval_branch(Opcode::kBgeu, static_cast<u64>(-1), 0));
}

TEST(Exec, LoadExtension) {
  EXPECT_EQ(extend_load(Opcode::kLb, 0x80), 0xFFFFFFFFFFFFFF80ull);
  EXPECT_EQ(extend_load(Opcode::kLbu, 0x80), 0x80u);
  EXPECT_EQ(extend_load(Opcode::kLw, 0x80000000), 0xFFFFFFFF80000000ull);
  EXPECT_EQ(extend_load(Opcode::kLwu, 0x80000000), 0x80000000u);
}

// ---- VM ----

TEST(Vm, ArithmeticProgram) {
  Vm vm = make_vm(
      "main:\n"
      "  li r1, 6\n"
      "  li r2, 7\n"
      "  mul r3, r1, r2\n"
      "  halt\n");
  vm.run(100);
  EXPECT_EQ(vm.status(), Vm::Status::kHalted);
  EXPECT_EQ(vm.reg(3), 42u);
}

TEST(Vm, LoopComputesSum) {
  Vm vm = make_vm(
      "main:\n"
      "  li r1, 0\n"      // sum
      "  li r2, 10\n"     // counter
      "loop:\n"
      "  beqz r2, done\n"
      "  add r1, r1, r2\n"
      "  addi r2, r2, -1\n"
      "  j loop\n"
      "done: halt\n");
  vm.run(1000);
  EXPECT_EQ(vm.status(), Vm::Status::kHalted);
  EXPECT_EQ(vm.reg(1), 55u);
}

TEST(Vm, MemoryAndStack) {
  Vm vm = make_vm(
      "main:\n"
      "  addi sp, sp, -16\n"
      "  li r1, 0x1234\n"
      "  sd r1, 8(sp)\n"
      "  ld r2, 8(sp)\n"
      "  halt\n");
  vm.run(100);
  EXPECT_EQ(vm.status(), Vm::Status::kHalted);
  EXPECT_EQ(vm.reg(2), 0x1234u);
}

TEST(Vm, FunctionCallAndReturn) {
  Vm vm = make_vm(
      "main:\n"
      "  li a0, 5\n"
      "  call double_it\n"
      "  halt\n"
      "double_it:\n"
      "  add rv, a0, a0\n"
      "  ret\n");
  vm.run(100);
  EXPECT_EQ(vm.status(), Vm::Status::kHalted);
  EXPECT_EQ(vm.reg(isa::parse_register("rv")), 10u);
}

TEST(Vm, OutputDevice) {
  Vm vm = make_vm(
      "main:\n"
      "  li r1, 72\n"   // 'H'
      "  out r1\n"
      "  li r1, 105\n"  // 'i'
      "  out r1\n"
      "  halt\n");
  vm.run(100);
  EXPECT_EQ(vm.output(), "Hi");
}

TEST(Vm, ZeroRegisterAlwaysZero) {
  Vm vm = make_vm(
      "main:\n"
      "  addi zero, zero, 55\n"
      "  add r1, zero, zero\n"
      "  halt\n");
  vm.run(100);
  EXPECT_EQ(vm.reg(1), 0u);
  EXPECT_EQ(vm.reg(31), 0u);
}

TEST(Vm, UnmappedLoadFaults) {
  Vm vm = make_vm(
      "main:\n"
      "  li r1, 0x40000000\n"
      "  ld r2, 0(r1)\n"
      "  halt\n");
  vm.run(100);
  EXPECT_EQ(vm.status(), Vm::Status::kFaulted);
  EXPECT_EQ(vm.fault(), ExceptionKind::kMemTranslation);
}

TEST(Vm, MisalignedStoreFaults) {
  Vm vm = make_vm(
      "main:\n"
      "  li r1, 0x200001\n"
      "  sd r2, 0(r1)\n"
      "  halt\n"
      ".data\n"
      "x: .word64 0\n");
  vm.run(100);
  EXPECT_EQ(vm.status(), Vm::Status::kFaulted);
  EXPECT_EQ(vm.fault(), ExceptionKind::kMemAlignment);
}

TEST(Vm, WriteToTextFaults) {
  Vm vm = make_vm(
      "main:\n"
      "  li r1, 0x10000\n"
      "  sd r2, 0(r1)\n"
      "  halt\n");
  vm.run(100);
  EXPECT_EQ(vm.status(), Vm::Status::kFaulted);
  EXPECT_EQ(vm.fault(), ExceptionKind::kMemProtection);
}

TEST(Vm, ArithmeticOverflowFaults) {
  Vm vm = make_vm(
      "main:\n"
      "  li r1, 0x7FFFFFFFFFFFFFFF\n"
      "  li r2, 1\n"
      "  addv r3, r1, r2\n"
      "  halt\n");
  vm.run(100);
  EXPECT_EQ(vm.status(), Vm::Status::kFaulted);
  EXPECT_EQ(vm.fault(), ExceptionKind::kArithOverflow);
}

TEST(Vm, RetiredRecordsDescribeEffects) {
  Vm vm = make_vm(
      "main:\n"
      "  li r1, 5\n"
      "  sw r1, 0(sp)\n"
      "  beq r1, r1, target\n"
      "  nop\n"
      "target: halt\n");
  const auto li = vm.step();
  ASSERT_TRUE(li.has_value());
  EXPECT_TRUE(li->wrote_reg);
  EXPECT_EQ(li->rd, 1);
  EXPECT_EQ(li->rd_value, 5u);

  const auto sw = vm.step();
  ASSERT_TRUE(sw.has_value());
  EXPECT_TRUE(sw->is_store);
  EXPECT_EQ(sw->store_bytes, 4);
  EXPECT_EQ(sw->store_data, 5u);

  const auto beq = vm.step();
  ASSERT_TRUE(beq.has_value());
  EXPECT_TRUE(beq->is_cond_branch);
  EXPECT_TRUE(beq->taken);
  EXPECT_EQ(beq->next_pc, beq->pc + 8);

  const auto halt = vm.step();
  ASSERT_TRUE(halt.has_value());
  EXPECT_TRUE(halt->halted);
  EXPECT_FALSE(vm.step().has_value());
}

TEST(Vm, SnapshotRestoreRoundTrip) {
  Vm vm = make_vm(
      "main:\n"
      "  li r1, 1\n"
      "  li r2, 2\n"
      "  li r3, 3\n"
      "  halt\n");
  vm.step();
  const ArchSnapshot snap = vm.snapshot();
  vm.run(10);
  EXPECT_EQ(vm.status(), Vm::Status::kHalted);
  vm.restore(snap);
  EXPECT_TRUE(vm.running());
  EXPECT_EQ(vm.pc(), snap.pc);
  EXPECT_EQ(vm.reg(1), 1u);
  vm.run(10);
  EXPECT_EQ(vm.status(), Vm::Status::kHalted);
  EXPECT_EQ(vm.reg(3), 3u);
}

TEST(Vm, RunRespectsBudget) {
  Vm vm = make_vm(
      "main:\n"
      "loop: addi r1, r1, 1\n"
      "  j loop\n");
  EXPECT_EQ(vm.run(500), 500u);
  EXPECT_TRUE(vm.running());
  EXPECT_EQ(vm.retired_count(), 500u);
}

}  // namespace
}  // namespace restore::vm
