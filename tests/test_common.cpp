// Unit tests for src/common: bit utilities, RNG determinism, statistics,
// latency tables, thread pool, and CLI parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/bits.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace restore {
namespace {

TEST(Bits, Mask64) {
  EXPECT_EQ(mask64(0), 0u);
  EXPECT_EQ(mask64(1), 1u);
  EXPECT_EQ(mask64(16), 0xFFFFu);
  EXPECT_EQ(mask64(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(mask64(64), ~u64{0});
}

TEST(Bits, GetSetFlip) {
  u64 v = 0;
  v = set_bit(v, 5, true);
  EXPECT_TRUE(get_bit(v, 5));
  EXPECT_EQ(v, 32u);
  v = flip_bit(v, 5);
  EXPECT_EQ(v, 0u);
  v = flip_bit(v, 63);
  EXPECT_TRUE(get_bit(v, 63));
  v = set_bit(v, 63, false);
  EXPECT_EQ(v, 0u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend(0x7FFF, 16), 32767);
  EXPECT_EQ(sign_extend(0xFFFF, 16), -1);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
  EXPECT_EQ(sign_extend(0xFFFFFFFF00000001ull, 32), 1);
}

TEST(Bits, ExtractAndIndexBits) {
  EXPECT_EQ(extract_bits(0xABCD1234u, 8, 8), 0x12u);
  EXPECT_EQ(index_bits(64), 6u);
  EXPECT_EQ(index_bits(128), 7u);
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(9);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng fork1 = a.fork(1);
  Rng fork2 = a.fork(2);
  EXPECT_NE(fork1.next(), fork2.next());
}

TEST(Stats, OnlineMoments) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, WilsonIntervalBasics) {
  const auto ci = wilson_interval(500, 1000);
  EXPECT_NEAR(ci.estimate, 0.5, 1e-9);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_NEAR(ci.margin(), 0.031, 0.002);
}

TEST(Stats, WilsonIntervalPaperScale) {
  // The paper: 12-13k trials => error margin < 0.9% at 95% confidence.
  const auto ci = wilson_interval(6000, 12500);
  EXPECT_LT(ci.margin(), 0.009);
}

TEST(Stats, WilsonEdgeCases) {
  EXPECT_EQ(wilson_interval(0, 0).estimate, 0.0);
  const auto all = wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(all.estimate, 1.0);
  EXPECT_LE(all.hi, 1.0);
  const auto none = wilson_interval(0, 100);
  EXPECT_GE(none.lo, 0.0);
}

TEST(Stats, Figure2Bins) {
  const auto bins = figure2_latency_bins();
  ASSERT_EQ(bins.size(), 9u);
  EXPECT_EQ(bins.front(), 25u);
  EXPECT_EQ(bins.back(), kNever);
}

TEST(Stats, CategoryLatencyTable) {
  CategoryLatencyTable table(figure2_latency_bins());
  table.add("exception", 10);
  table.add("exception", 80);
  table.add("exception", 5000);
  table.add("masked", kNever);
  EXPECT_EQ(table.total(), 4u);
  EXPECT_EQ(table.count("exception"), 3u);
  EXPECT_EQ(table.count_within("exception", 100), 2u);
  EXPECT_EQ(table.count_within("exception", 25), 1u);
  EXPECT_EQ(table.count_within("exception", kNever), 3u);
  EXPECT_EQ(table.count("missing"), 0u);
  EXPECT_EQ(table.count_within("masked", 25), 0u);
}

TEST(ThreadPool, InlineModeRunsTasks) {
  ThreadPool pool(0);
  int counter = 0;
  pool.submit([&] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter, 1);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(Cli, FlagForms) {
  const char* argv[] = {"prog", "--trials", "500", "--low32", "--seed=99", "pos"};
  CliArgs args(6, argv);
  EXPECT_TRUE(args.has_flag("trials"));
  EXPECT_TRUE(args.has_flag("low32"));
  EXPECT_FALSE(args.has_flag("missing"));
  EXPECT_EQ(args.value_u64("trials", 0), 500u);
  EXPECT_EQ(args.value_u64("seed", 0), 99u);
  EXPECT_EQ(args.value_u64("absent", 7), 7u);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(Cli, TrialResolutionPrecedence) {
  const char* argv[] = {"prog", "--trials", "123"};
  CliArgs args(3, argv);
  EXPECT_EQ(resolve_trial_count(args, 10), 123u);
  const char* argv2[] = {"prog"};
  CliArgs bare(1, argv2);
  unsetenv("RESTORE_TRIALS");
  EXPECT_EQ(resolve_trial_count(bare, 10), 10u);
  setenv("RESTORE_TRIALS", "77", 1);
  EXPECT_EQ(resolve_trial_count(bare, 10), 77u);
  unsetenv("RESTORE_TRIALS");
}

TEST(Table, RendersAlignedRows) {
  TextTable t({"col", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| col"), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(TextTable::fmt_pct(0.0712, 1), "7.1%");
  EXPECT_EQ(TextTable::fmt_f(1.5, 2), "1.50");
  EXPECT_EQ(TextTable::fmt_u(123), "123");
}

}  // namespace
}  // namespace restore
