// Multi-node campaign fabric: ShardLeaseBook lease accounting, and the
// coordinator/worker pair end-to-end over real localhost sockets — byte
// identity of the merged trace versus the direct single-process campaign,
// content-addressed result caching, dead-node quarantine with its manifest
// record, crash-mid-campaign re-leasing, and interrupt + resume.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "faultinject/campaign_io.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/vm_campaign.hpp"
#include "service/fleet_coordinator.hpp"
#include "service/fleet_worker.hpp"
#include "service/job_queue.hpp"

namespace restore::service {
namespace {

using faultinject::ShardLeaseBook;

// ---- lease-book unit tests (pure state machine, no sockets) ----

TEST(ShardLeaseBookTest, PendingShardsLeaseFifo) {
  ShardLeaseBook book(3);
  const auto a = book.acquire("n1", 0, 1000);
  const auto b = book.acquire("n2", 0, 1000);
  const auto c = book.acquire("n1", 0, 1000);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->shard, 0u);
  EXPECT_EQ(b->shard, 1u);
  EXPECT_EQ(c->shard, 2u);
  EXPECT_FALSE(a->stolen || b->stolen || c->stolen);
  // Everything is leased and too young to steal.
  EXPECT_FALSE(book.acquire("n3", 100, 1000).has_value());
}

TEST(ShardLeaseBookTest, FirstCommitWinsAndStaleIdsAreNoOps) {
  ShardLeaseBook book(1);
  const auto first = book.acquire("n1", 0, 0);
  const auto stolen = book.acquire("n2", 10, 0);  // immediate steal age
  ASSERT_TRUE(first && stolen);
  EXPECT_EQ(stolen->shard, 0u);
  EXPECT_TRUE(stolen->stolen);
  EXPECT_TRUE(book.commit(stolen->id));
  EXPECT_FALSE(book.commit(first->id));  // losing duplicate must not merge
  EXPECT_FALSE(book.commit(first->id));  // and stays a no-op forever
  EXPECT_TRUE(book.done(0));
  EXPECT_TRUE(book.all_terminal());
  EXPECT_EQ(book.done_count(), 1u);
}

TEST(ShardLeaseBookTest, StealRequiresAgeAndADifferentNode) {
  ShardLeaseBook book(1);
  const auto lease = book.acquire("n1", 0, 0);
  ASSERT_TRUE(lease);
  // Too young at steal_age 500.
  EXPECT_FALSE(book.acquire("n2", 400, 500).has_value());
  // The holder itself never duplicates its own shard.
  EXPECT_FALSE(book.acquire("n1", 900, 500).has_value());
  const auto steal = book.acquire("n2", 900, 500);
  ASSERT_TRUE(steal);
  EXPECT_TRUE(steal->stolen);
  EXPECT_EQ(book.attempts(0), 2u);
  // A third node can stack another steal once the age gate passes again.
  EXPECT_FALSE(book.acquire("n2", 2000, 500).has_value());  // already co-leased
  EXPECT_TRUE(book.acquire("n3", 2000, 500).has_value());
}

TEST(ShardLeaseBookTest, ReleaseRequeuesUnlessCovered) {
  ShardLeaseBook book(2);
  const auto a = book.acquire("n1", 0, 0);
  const auto b = book.acquire("n2", 0, 0);
  ASSERT_TRUE(a && b);
  // Release with no other lease: the shard must circulate again.
  book.release(a->id);
  const auto again = book.acquire("n3", 1, 1000);
  ASSERT_TRUE(again);
  EXPECT_EQ(again->shard, 0u);
  EXPECT_FALSE(again->stolen);
  // A released shard still outstanding elsewhere is not requeued.
  const auto stolen = book.acquire("n1", 10, 0);
  ASSERT_TRUE(stolen);
  EXPECT_EQ(stolen->shard, 1u);
  book.release(b->id);
  EXPECT_FALSE(book.acquire("n4", 11, 1000).has_value());
  book.release(b->id);  // stale id: no-op
  EXPECT_EQ(book.outstanding_count(), 2u);
}

TEST(ShardLeaseBookTest, QuarantineRemovesFromCirculation) {
  ShardLeaseBook book(2);
  book.mark_quarantined(1);
  const auto a = book.acquire("n1", 0, 0);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->shard, 0u);
  EXPECT_FALSE(book.acquire("n2", 0, 1000).has_value());  // 1 is terminal
  EXPECT_TRUE(book.commit(a->id));
  EXPECT_TRUE(book.all_terminal());
  EXPECT_EQ(book.done_count(), 1u);  // quarantine is terminal but not done
}

TEST(ShardLeaseBookTest, ResumeMarksDoneWithoutALease) {
  ShardLeaseBook book(3);
  book.mark_done(0);
  book.mark_done(0);  // idempotent
  EXPECT_EQ(book.done_count(), 1u);
  const auto a = book.acquire("n1", 0, 0);
  ASSERT_TRUE(a);
  EXPECT_EQ(a->shard, 1u);  // 0 is skipped on the way out of the queue
}

// ---- end-to-end fixtures ----

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_path(const std::string& tag) {
  return testing::TempDir() + "restore_fleet_" + tag;
}

JobSpec small_spec() {
  JobSpec spec;
  spec.kind = "vm";
  spec.seed = 0x4E02;
  spec.trials = 8;
  spec.shard_trials = 4;  // 2 shards per workload, 4 total
  spec.workloads = {"gzip", "mcf"};
  return spec;
}

// The reference bytes: the same campaign through the local orchestrator.
std::string direct_trace(const JobSpec& spec, const std::string& tag) {
  faultinject::VmCampaignConfig config = vm_config_for(spec);
  faultinject::CampaignRunOptions opts;
  opts.workers = 1;
  opts.shard_trials = spec.shard_trials;
  opts.out_jsonl = temp_path(tag + "_direct.jsonl");
  run_vm_campaign(config, opts);
  return slurp(opts.out_jsonl);
}

// A worker bound to an ephemeral port, serving on a background thread.
class WorkerHandle {
 public:
  explicit WorkerHandle(FleetWorkerOptions opts) : worker_(std::move(opts)) {
    worker_.start();
    thread_ = std::thread([this] { worker_.run(); });
  }
  ~WorkerHandle() {
    worker_.stop();
    thread_.join();
  }
  FleetWorker& worker() { return worker_; }
  std::string address() { return worker_.address(); }

 private:
  FleetWorker worker_;
  std::thread thread_;
};

FleetWorkerOptions quiet_worker(const std::string& cache_dir = "") {
  FleetWorkerOptions opts;
  opts.listen = "127.0.0.1:0";
  opts.cache_dir = cache_dir;
  opts.quiet = true;
  return opts;
}

FleetOptions fast_fleet(const std::string& out) {
  FleetOptions opts;
  opts.out_jsonl = out;
  opts.connect_timeout_ms = 500;
  opts.node_retries = 0;
  opts.retry_backoff_ms = 1;
  opts.quiet = true;
  return opts;
}

// An address nobody listens on: bind an ephemeral worker, read its port,
// and tear it down again.
std::string dead_address() {
  FleetWorker probe(quiet_worker());
  probe.start();
  return probe.address();
}

// ---- end-to-end tests ----

TEST(FleetTest, TwoNodesMergeByteIdenticalToDirectRun) {
  const JobSpec spec = small_spec();
  const std::string reference = direct_trace(spec, "two");

  WorkerHandle w1(quiet_worker());
  WorkerHandle w2(quiet_worker());
  FleetOptions opts = fast_fleet(temp_path("two.jsonl"));
  opts.nodes = {w1.address(), w2.address()};
  FleetTelemetry telemetry;
  EXPECT_EQ(run_fleet_campaign(spec, opts, &telemetry), 0);
  EXPECT_TRUE(telemetry.complete);
  EXPECT_EQ(telemetry.shards_done, 4u);
  EXPECT_EQ(slurp(opts.out_jsonl), reference);
  // The manifest is complete and identical in identity to the direct run's.
  const auto manifest =
      faultinject::read_manifest(faultinject::manifest_path_for(opts.out_jsonl));
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->completed.size(), 4u);
  EXPECT_FALSE(manifest->has_node_quarantine());
}

TEST(FleetTest, SecondRunIsServedFromTheWorkerCache) {
  const JobSpec spec = small_spec();
  const std::string cache = temp_path("cache_dir");
  std::filesystem::remove_all(cache);
  WorkerHandle w(quiet_worker(cache));

  FleetOptions opts = fast_fleet(temp_path("cache.jsonl"));
  opts.nodes = {w.address()};
  EXPECT_EQ(run_fleet_campaign(spec, opts, nullptr), 0);
  const std::string first = slurp(opts.out_jsonl);
  EXPECT_EQ(w.worker().cache_hits(), 0u);

  FleetTelemetry telemetry;
  EXPECT_EQ(run_fleet_campaign(spec, opts, &telemetry), 0);
  EXPECT_EQ(w.worker().cache_hits(), 4u);  // every shard answered from cache
  EXPECT_EQ(telemetry.nodes[0].cache_hits, 4u);
  EXPECT_EQ(slurp(opts.out_jsonl), first);  // cached bytes == computed bytes
}

TEST(FleetTest, DeadNodeIsQuarantinedAndRecordedInTheManifest) {
  const JobSpec spec = small_spec();
  const std::string reference = direct_trace(spec, "dead");

  WorkerHandle live(quiet_worker());
  FleetOptions opts = fast_fleet(temp_path("dead.jsonl"));
  opts.nodes = {live.address(), dead_address()};
  opts.node_faults_max = 2;
  FleetTelemetry telemetry;
  // Complete trace, but exit 3: the benched node must not read as healthy.
  EXPECT_EQ(run_fleet_campaign(spec, opts, &telemetry), 3);
  EXPECT_TRUE(telemetry.complete);
  EXPECT_EQ(telemetry.quarantined_nodes, 1u);
  EXPECT_TRUE(telemetry.nodes[1].quarantined);
  EXPECT_GE(telemetry.nodes[1].faults, 2u);
  EXPECT_EQ(slurp(opts.out_jsonl), reference);

  const auto manifest =
      faultinject::read_manifest(faultinject::manifest_path_for(opts.out_jsonl));
  ASSERT_TRUE(manifest.has_value());
  ASSERT_TRUE(manifest->has_node_quarantine());
  EXPECT_EQ(manifest->node_quarantined.size(), 1u);
  EXPECT_EQ(manifest->node_quarantined[0], opts.nodes[1]);
  EXPECT_GE(manifest->node_faults[0], 2u);
  EXPECT_FALSE(manifest->node_errors[0].empty());
}

TEST(FleetTest, NodeCrashMidCampaignIsReLeasedByteIdentical) {
  // Finer shard geometry than small_spec(): with only 4 shards the healthy
  // node can drain the queue before the crashed one accrues its second
  // transport fault, leaving it un-quarantined and the test flaky. Eight
  // shards give the crash several lease attempts of slack; the merged bytes
  // are still checked against the direct run of the same geometry.
  JobSpec spec = small_spec();
  spec.shard_trials = 2;  // 4 shards per workload, 8 total
  const std::string reference = direct_trace(spec, "crash");

  // The flaky node serves exactly one lease, then drops every connection on
  // the floor mid-protocol — what a SIGKILLed worker looks like on the wire.
  FleetWorkerOptions flaky_opts = quiet_worker();
  flaky_opts.fail_after_leases = 1;
  WorkerHandle flaky(std::move(flaky_opts));
  WorkerHandle healthy(quiet_worker());

  FleetOptions opts = fast_fleet(temp_path("crash.jsonl"));
  opts.nodes = {flaky.address(), healthy.address()};
  opts.node_faults_max = 2;
  FleetTelemetry telemetry;
  EXPECT_EQ(run_fleet_campaign(spec, opts, &telemetry), 3);
  EXPECT_TRUE(telemetry.complete);
  EXPECT_TRUE(telemetry.nodes[0].quarantined);
  EXPECT_EQ(telemetry.nodes[0].shards_committed, 1u);
  // Every shard the crashed node dropped was re-leased and committed by the
  // healthy one, and the merged bytes are still the single-process bytes.
  EXPECT_EQ(telemetry.shards_done, 8u);
  EXPECT_EQ(slurp(opts.out_jsonl), reference);
}

TEST(FleetTest, InterruptAndResumeConvergeByteIdentical) {
  const JobSpec spec = small_spec();
  const std::string reference = direct_trace(spec, "resume");

  WorkerHandle w(quiet_worker());
  FleetOptions opts = fast_fleet(temp_path("resume.jsonl"));
  opts.nodes = {w.address()};
  opts.max_shards = 2;  // the interrupt hook
  FleetTelemetry cut;
  EXPECT_EQ(run_fleet_campaign(spec, opts, &cut), 130);
  EXPECT_FALSE(cut.complete);
  EXPECT_TRUE(cut.stopped);
  EXPECT_EQ(cut.shards_done, 2u);

  opts.max_shards = 0;
  opts.resume = true;
  FleetTelemetry resumed;
  EXPECT_EQ(run_fleet_campaign(spec, opts, &resumed), 0);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.resumed_shards, 2u);  // reloaded, not re-run
  EXPECT_EQ(slurp(opts.out_jsonl), reference);
}

TEST(FleetTest, ResumeRefusesAnAlienManifest) {
  const JobSpec spec = small_spec();
  WorkerHandle w(quiet_worker());
  FleetOptions opts = fast_fleet(temp_path("alien.jsonl"));
  opts.nodes = {w.address()};
  ASSERT_EQ(run_fleet_campaign(spec, opts, nullptr), 0);

  JobSpec other = spec;
  other.seed = spec.seed + 1;
  opts.resume = true;
  EXPECT_THROW(run_fleet_campaign(other, opts, nullptr), std::runtime_error);
}

}  // namespace
}  // namespace restore::service
