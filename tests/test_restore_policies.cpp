// Focused tests on rollback-policy mechanics and checkpoint-store edge cases
// that the end-to-end suites exercise only incidentally.
#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/restore_core.hpp"
#include "isa/assembler.hpp"
#include "workloads/workloads.hpp"

namespace restore::core {
namespace {

TEST(CheckpointEdge, SingleLiveCheckpointRollsBackToItself) {
  const auto& wl = workloads::by_name("gap");
  uarch::Core core(wl.program);
  core.run(1'000);
  ASSERT_TRUE(core.running());
  CheckpointManager mgr(100, 1);
  mgr.maybe_checkpoint(core, true);
  const u64 position = mgr.oldest().retired_at;
  // Advance less than one interval: the only live checkpoint is the one just
  // taken, so rollback distance equals progress since then.
  while (core.running() && core.retired_count() < position + 40) {
    core.cycle();
    for (const auto& rec : core.retired_this_cycle()) mgr.on_retired(rec);
  }
  const u64 distance = mgr.rollback(core);
  EXPECT_LE(distance, 45u);
  EXPECT_TRUE(core.running());
}

TEST(CheckpointEdge, EvictionKeepsNewestN) {
  const auto& wl = workloads::by_name("gzip");
  uarch::Core core(wl.program);
  CheckpointManager mgr(50, 4);
  mgr.maybe_checkpoint(core, true);
  u64 last_oldest = mgr.oldest().retired_at;
  while (core.running() && core.retired_count() < 2'000) {
    core.cycle();
    for (const auto& rec : core.retired_this_cycle()) mgr.on_retired(rec);
    mgr.maybe_checkpoint(core);
    ASSERT_LE(mgr.live(), 4u);
    // The oldest checkpoint only moves forward.
    ASSERT_GE(mgr.oldest().retired_at, last_oldest);
    last_oldest = mgr.oldest().retired_at;
  }
  EXPECT_EQ(mgr.live(), 4u);
}

TEST(CheckpointEdge, ForceCheckpointIgnoresInterval) {
  const auto& wl = workloads::by_name("gzip");
  uarch::Core core(wl.program);
  CheckpointManager mgr(1'000'000, 2);
  EXPECT_TRUE(mgr.maybe_checkpoint(core, true));
  EXPECT_FALSE(mgr.maybe_checkpoint(core));        // interval not elapsed
  EXPECT_TRUE(mgr.maybe_checkpoint(core, true));   // forced anyway
  EXPECT_EQ(mgr.checkpoints_taken(), 2u);
}

TEST(DelayedPolicy, RollbackWaitsForTheIntervalBoundary) {
  // Construct a program with one guaranteed high-confidence misprediction (a
  // long-trained loop exit), run under the delayed policy, and check the
  // rollback happens at/after the boundary rather than at the symptom.
  const auto program = isa::assemble(
      "main:\n"
      "  li s0, 400\n"
      "loop:\n"
      "  addi s0, s0, -1\n"
      "  bnez s0, loop\n"     // exit mispredicts with saturated confidence
      "  li s1, 500\n"
      "tail:\n"
      "  addi s1, s1, -1\n"
      "  bnez s1, tail\n"
      "  halt\n");
  ReStoreOptions options;
  options.policy = RollbackPolicy::kDelayed;
  options.checkpoint_interval = 100;
  options.throttle_max_rollbacks = ~u64{0};
  ReStoreCore restore(program, options);
  restore.run(1'000'000);
  EXPECT_EQ(restore.status(), ReStoreCore::Status::kHalted);
  if (restore.stats().branch_rollbacks > 0) {
    // Delayed rollback goes to the boundary: mean distance ~2 intervals.
    const double mean_distance =
        static_cast<double>(restore.stats().reexecuted_insns) /
        restore.stats().rollbacks;
    EXPECT_GE(mean_distance, options.checkpoint_interval);
  }
}

TEST(DelayedPolicy, OnlyOneRollbackPerInterval) {
  const auto& wl = workloads::by_name("gap");
  ReStoreOptions imm;
  imm.checkpoint_interval = 200;
  imm.throttle_max_rollbacks = ~u64{0};
  ReStoreOptions delayed = imm;
  delayed.policy = RollbackPolicy::kDelayed;

  ReStoreCore a(wl.program, imm);
  a.run(400'000'000);
  ReStoreCore b(wl.program, delayed);
  b.run(400'000'000);
  ASSERT_EQ(a.status(), ReStoreCore::Status::kHalted);
  ASSERT_EQ(b.status(), ReStoreCore::Status::kHalted);
  // Batching cannot produce more rollbacks than the immediate policy.
  EXPECT_LE(b.stats().rollbacks, a.stats().rollbacks);
  EXPECT_EQ(a.output(), b.output());
}

TEST(Throttle, WindowResetsAfterQuietPeriod) {
  const auto& wl = workloads::by_name("gap");
  ReStoreOptions options;
  options.checkpoint_interval = 100;
  options.throttle_window = 5'000;
  options.throttle_max_rollbacks = 1;
  options.throttle_penalty = 2'000;
  ReStoreCore restore(wl.program, options);
  restore.run(400'000'000);
  EXPECT_EQ(restore.status(), ReStoreCore::Status::kHalted);
  // Throttling engaged on this false-positive-heavy workload, yet rollbacks
  // resumed after the penalty windows (the schedule has many symptom bursts).
  EXPECT_GT(restore.stats().throttle_engagements, 0u);
  EXPECT_GE(restore.stats().branch_rollbacks, options.throttle_max_rollbacks);
}

}  // namespace
}  // namespace restore::core
