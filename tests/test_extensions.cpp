// Tests for the extension features beyond the paper's baseline evaluation:
// the illegal-control-flow watchdog, the cache-miss-burst symptom, the
// perfect-confidence ablation mode, and their integration with ReStoreCore.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/restore_core.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "isa/assembler.hpp"
#include "uarch/core.hpp"
#include "workloads/workloads.hpp"

namespace restore {
namespace {

using uarch::Core;
using uarch::CoreConfig;
using uarch::SymptomEvent;

// ---- illegal-control-flow watchdog ----

TEST(IllegalFlowWatchdog, SilentOnCleanRuns) {
  CoreConfig config;
  config.illegal_flow_watchdog = true;
  for (const auto& wl : workloads::all()) {
    Core core(wl.program, config);
    u64 events = 0;
    while (core.running()) {
      core.cycle();
      for (const auto& ev : core.symptoms_this_cycle()) {
        if (ev.kind == SymptomEvent::Kind::kIllegalFlow) ++events;
      }
    }
    EXPECT_EQ(core.status(), Core::Status::kHalted) << wl.name;
    EXPECT_EQ(events, 0u) << wl.name;
  }
}

TEST(IllegalFlowWatchdog, CatchesCorruptedCommitTarget) {
  const auto& wl = workloads::by_name("gzip");
  CoreConfig config;
  config.illegal_flow_watchdog = true;
  Core core(wl.program, config);
  core.run(3'000);
  ASSERT_TRUE(core.running());
  // Corrupt the committed successor of an already-executed non-branch.
  bool corrupted = false;
  for (auto& e : core.rob_) {
    if (e.valid && e.done && !e.is_branch && !e.is_halt) {
      e.actual_target ^= u64{1} << 9;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  u64 events = 0;
  for (int c = 0; c < 400 && core.running(); ++c) {
    core.cycle();
    for (const auto& ev : core.symptoms_this_cycle()) {
      if (ev.kind == SymptomEvent::Kind::kIllegalFlow) ++events;
    }
  }
  EXPECT_GE(events, 1u);
}

TEST(IllegalFlowWatchdog, DisabledByDefault) {
  const auto& wl = workloads::by_name("gzip");
  Core core(wl.program);  // default config
  core.run(3'000);
  ASSERT_TRUE(core.running());
  for (auto& e : core.rob_) {
    if (e.valid && e.done && !e.is_branch && !e.is_halt) {
      e.actual_target ^= u64{1} << 9;
      break;
    }
  }
  for (int c = 0; c < 400 && core.running(); ++c) {
    core.cycle();
    for (const auto& ev : core.symptoms_this_cycle()) {
      EXPECT_NE(ev.kind, SymptomEvent::Kind::kIllegalFlow);
    }
  }
}

TEST(IllegalFlowWatchdog, ReStoreRecoversFlowCorruption) {
  const auto& wl = workloads::by_name("mcf");
  CoreConfig config;
  config.illegal_flow_watchdog = true;
  core::ReStoreOptions options;
  options.illegal_flow_symptom = true;
  core::ReStoreCore restore(wl.program, options, config);
  restore.run(2'000);
  ASSERT_TRUE(restore.running());
  for (auto& e : restore.core().rob_) {
    if (e.valid && e.done && !e.is_branch && !e.is_halt) {
      e.actual_target ^= u64{1} << 7;
      break;
    }
  }
  restore.run(50'000'000);
  EXPECT_EQ(restore.status(), core::ReStoreCore::Status::kHalted);
  EXPECT_EQ(restore.output(), wl.clean_output);
}

// ---- cache-miss-burst symptom ----

TEST(CacheBurstSymptom, FiresOnMissStorms) {
  // A pointer walk over a huge stride defeats the L1D: every access misses.
  const auto program = isa::assemble(
      "main:\n"
      "  la s0, arena\n"
      "  li s1, 64\n"          // accesses
      "loop:\n"
      "  ld t0, 0(s0)\n"
      "  addi s0, s0, 4096\n"  // one page per access: all misses
      "  addi s1, s1, -1\n"
      "  bnez s1, loop\n"
      "  halt\n"
      ".data\n"
      "arena: .space 266240\n");  // 65 pages
  CoreConfig config;
  config.cache_burst_symptom = true;
  config.cache_burst_window = 64;
  config.cache_burst_threshold = 4;
  Core core(program, config);
  u64 events = 0;
  while (core.running()) {
    core.cycle();
    for (const auto& ev : core.symptoms_this_cycle()) {
      if (ev.kind == SymptomEvent::Kind::kCacheMissBurst) ++events;
    }
  }
  EXPECT_EQ(core.status(), Core::Status::kHalted);
  EXPECT_GE(events, 1u);
}

TEST(CacheBurstSymptom, QuietOnCacheFriendlyCode) {
  const auto program = isa::assemble(
      "main:\n"
      "  li s1, 2000\n"
      "loop:\n"
      "  ld t0, 0(sp)\n"  // same line every time
      "  addi s1, s1, -1\n"
      "  bnez s1, loop\n"
      "  halt\n");
  CoreConfig config;
  config.cache_burst_symptom = true;
  Core core(program, config);
  u64 events = 0;
  while (core.running()) {
    core.cycle();
    for (const auto& ev : core.symptoms_this_cycle()) {
      if (ev.kind == SymptomEvent::Kind::kCacheMissBurst) ++events;
    }
  }
  EXPECT_EQ(events, 0u);
}

TEST(CacheBurstSymptom, ReStoreSurvivesWithCacheSymptomEnabled) {
  // Even with the noisy §3.3 candidate wired in, programs must complete
  // correctly (rollbacks are false positives; throttling bounds them).
  const auto& wl = workloads::by_name("vortex");
  CoreConfig config;
  config.cache_burst_symptom = true;
  core::ReStoreOptions options;
  options.cache_symptom = true;
  core::ReStoreCore restore(wl.program, options, config);
  restore.run(100'000'000);
  EXPECT_EQ(restore.status(), core::ReStoreCore::Status::kHalted);
  EXPECT_EQ(restore.output(), wl.clean_output);
}

// ---- perfect-confidence ablation mode ----

TEST(PerfectConfidence, FlagsEveryMispredictHighConfidence) {
  const auto& wl = workloads::by_name("gcc");  // high mispredict rate
  CoreConfig config;
  config.all_mispredicts_high_conf = true;
  Core core(wl.program, config);
  core.run(100'000'000);
  ASSERT_EQ(core.status(), Core::Status::kHalted);
  EXPECT_EQ(core.counters().high_conf_mispredicts,
            core.counters().cond_mispredicts);

  Core plain(wl.program);
  plain.run(100'000'000);
  EXPECT_LT(plain.counters().high_conf_mispredicts,
            plain.counters().cond_mispredicts);
}

TEST(PerfectConfidence, IncreasesCampaignCfvCoverage) {
  faultinject::UarchCampaignConfig jrs;
  jrs.trials_per_workload = 60;
  jrs.seed = 0xFACE;
  auto perfect = jrs;
  perfect.core_config.all_mispredicts_high_conf = true;

  const auto jrs_result = run_uarch_campaign(jrs);
  const auto perfect_result = run_uarch_campaign(perfect);
  const double jrs_uncovered = faultinject::uncovered_fraction(
      jrs_result.trials, faultinject::DetectorModel::kJrsConfidence,
      faultinject::ProtectionModel::kBaseline, 100);
  const double perfect_uncovered = faultinject::uncovered_fraction(
      perfect_result.trials, faultinject::DetectorModel::kJrsConfidence,
      faultinject::ProtectionModel::kBaseline, 100);
  // §5.2.1: a perfect confidence predictor yields more coverage.
  EXPECT_LE(perfect_uncovered, jrs_uncovered);
}

// ---- classifier with the new detector model ----

TEST(JrsPlusIllegalFlow, UsesEarliestOfTheTwoLatencies) {
  faultinject::UarchTrialRecord trial;
  trial.arch_corrupt_at_end = true;
  trial.lat_hiconf = 500;
  trial.lat_illegal_flow = 40;
  EXPECT_EQ(classify_trial(trial, faultinject::DetectorModel::kJrsPlusIllegalFlow,
                           faultinject::ProtectionModel::kBaseline, 100),
            faultinject::UarchOutcome::kCfv);
  EXPECT_EQ(classify_trial(trial, faultinject::DetectorModel::kJrsConfidence,
                           faultinject::ProtectionModel::kBaseline, 100),
            faultinject::UarchOutcome::kSdc);
}

// ---- event-log replay hints ----

TEST(ReplayHints, ConsumedDuringReExecution) {
  const auto& wl = workloads::by_name("gap");
  core::ReStoreOptions options;
  options.checkpoint_interval = 500;
  options.throttle_max_rollbacks = ~u64{0};
  core::ReStoreCore restore(wl.program, options);
  while (restore.running() && restore.stats().rollbacks == 0) restore.cycle();
  ASSERT_TRUE(restore.running());
  const std::size_t installed = restore.core().replay_hints_remaining();
  EXPECT_GT(installed, 0u) << "rollback should install event-log hints";
  const u64 rollbacks_before = restore.stats().rollbacks;
  std::size_t min_remaining = installed;
  for (int c = 0; c < 3'000 && restore.running() &&
                  restore.stats().rollbacks == rollbacks_before;
       ++c) {
    restore.cycle();
    min_remaining = std::min(min_remaining, restore.core().replay_hints_remaining());
  }
  // The replay window consumed the batch (fully, in the common case).
  EXPECT_LT(min_remaining, installed / 4 + 1)
      << "re-execution should consume hints";
  // The run must still finish correctly.
  restore.run(100'000'000);
  EXPECT_EQ(restore.status(), core::ReStoreCore::Status::kHalted);
  EXPECT_EQ(restore.output(), wl.clean_output);
}

TEST(ReplayHints, CleanRunsDetectNoErrors) {
  // With the gap-free event log, fault-free executions must never report a
  // detected error regardless of rollback count.
  const auto& wl = workloads::by_name("gap");
  core::ReStoreOptions options;
  options.checkpoint_interval = 200;
  options.throttle_max_rollbacks = ~u64{0};
  core::ReStoreCore restore(wl.program, options);
  restore.run(400'000'000);
  ASSERT_EQ(restore.status(), core::ReStoreCore::Status::kHalted);
  EXPECT_GT(restore.stats().rollbacks, 5u) << "test needs rollback traffic";
  EXPECT_EQ(restore.stats().detected_errors, 0u);
}

TEST(ReplayHints, DisablingThemStillRecovers) {
  const auto& wl = workloads::by_name("mcf");
  core::ReStoreOptions options;
  options.event_log_replay = false;
  core::ReStoreCore restore(wl.program, options);
  restore.run(2'000);
  ASSERT_TRUE(restore.running());
  restore.core().fetch_pc_ ^= u64{1} << 41;
  restore.run(100'000'000);
  EXPECT_EQ(restore.status(), core::ReStoreCore::Status::kHalted);
  EXPECT_EQ(restore.output(), wl.clean_output);
}

}  // namespace
}  // namespace restore
