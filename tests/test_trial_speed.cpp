// Equivalence regression for the trial inner-loop fast paths: the
// continuation cache, the trial arena and the convergence shortcut are pure
// optimisations, so a fixed-seed campaign must produce byte-identical
// exports and JSONL traces with every fast path on and every fast path off,
// at any worker count — and under an eviction-thrashing one-entry cache.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "faultinject/export.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/trial_speed.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"

namespace restore::faultinject {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string temp_trace(const std::string& tag) {
  return testing::TempDir() + "restore_trial_speed_" + tag + ".jsonl";
}

// Restores the process-wide trial-speed config (and drains the continuation
// cache) when a test exits, so test order cannot leak settings.
class TrialSpeedTest : public testing::Test {
 protected:
  void TearDown() override {
    set_trial_speed(TrialSpeedConfig{});
    clear_continuation_cache();
  }
};

TrialSpeedConfig all_off() {
  TrialSpeedConfig config;
  config.continuation_cache = false;
  config.trial_arena = false;
  config.convergence_shortcut = false;
  return config;
}

struct UarchRun {
  std::string csv;
  std::string trace;
};

UarchRun run_uarch(const UarchCampaignConfig& config, std::size_t workers,
                   const std::string& tag) {
  CampaignRunOptions opts;
  opts.workers = workers;
  opts.shard_trials = 4;
  opts.out_jsonl = temp_trace(tag);
  const auto result = run_uarch_campaign(config, opts);
  EXPECT_FALSE(result.trials.empty());
  std::ostringstream csv;
  write_uarch_trials_csv(csv, result.trials);
  return {csv.str(), slurp(opts.out_jsonl)};
}

TEST_F(TrialSpeedTest, UarchFastPathsAreByteIdenticalAcrossWorkerCounts) {
  UarchCampaignConfig config;
  config.seed = 0x5EED;
  config.trials_per_workload = 12;
  config.workloads = {"gzip", "mcf"};
  // Short window keeps the reference (all-off) runs fast; the convergence
  // shortcut still fires via the dense early checkpoints.
  config.monitor_cycles = 2'000;
  config.catchup_cycles = 2'000;

  set_trial_speed(all_off());
  clear_continuation_cache();
  const UarchRun reference = run_uarch(config, 0, "uarch_off_w0");

  int run = 0;
  for (const std::size_t workers : {0u, 2u, 8u}) {
    set_trial_speed(all_off());
    clear_continuation_cache();
    const UarchRun off = run_uarch(
        config, workers, "uarch_off_" + std::to_string(run));
    set_trial_speed(TrialSpeedConfig{});
    clear_continuation_cache();
    const UarchRun on = run_uarch(
        config, workers, "uarch_on_" + std::to_string(run));
    ++run;
    EXPECT_EQ(reference.csv, off.csv) << "workers=" << workers;
    EXPECT_EQ(reference.trace, off.trace) << "workers=" << workers;
    EXPECT_EQ(reference.csv, on.csv) << "workers=" << workers;
    EXPECT_EQ(reference.trace, on.trace) << "workers=" << workers;
  }
  // The fast-path runs must actually have exercised the cache.
  const auto stats = continuation_cache_stats();
  EXPECT_GT(stats.misses, 0u);
}

TEST_F(TrialSpeedTest, LruEvictionUnderPressureStaysDeterministic) {
  UarchCampaignConfig config;
  config.seed = 0x5EEE;
  config.trials_per_workload = 16;
  config.workloads = {"gzip"};
  config.monitor_cycles = 1'000;
  config.catchup_cycles = 1'000;
  // Several injection points per shard so a one-entry cache must evict
  // continuously while the shard works through its points.
  config.trials_per_point = 2;

  set_trial_speed(all_off());
  clear_continuation_cache();
  const UarchRun reference = run_uarch(config, 0, "lru_off");

  TrialSpeedConfig tiny;
  tiny.continuation_cache_capacity = 1;
  set_trial_speed(tiny);
  clear_continuation_cache();
  const UarchRun thrashed = run_uarch(config, 2, "lru_tiny");
  const auto stats = continuation_cache_stats();

  EXPECT_EQ(reference.csv, thrashed.csv);
  EXPECT_EQ(reference.trace, thrashed.trace);
  EXPECT_GT(stats.evictions, 0u);  // the pressure was real
}

TEST_F(TrialSpeedTest, VmArenaIsByteIdenticalAcrossWorkerCounts) {
  VmCampaignConfig config;
  config.seed = 0x5EEF;
  config.trials_per_workload = 24;
  config.workloads = {"gzip", "mcf"};

  set_trial_speed(all_off());
  const auto reference = [&] {
    CampaignRunOptions opts;
    opts.workers = 0;
    opts.shard_trials = 8;
    opts.out_jsonl = temp_trace("vm_off");
    const auto result = run_vm_campaign(config, opts);
    std::ostringstream csv;
    write_vm_trials_csv(csv, result.trials);
    return UarchRun{csv.str(), slurp(opts.out_jsonl)};
  }();

  set_trial_speed(TrialSpeedConfig{});
  int run = 0;
  for (const std::size_t workers : {0u, 2u, 8u}) {
    CampaignRunOptions opts;
    opts.workers = workers;
    opts.shard_trials = 8;
    opts.out_jsonl = temp_trace("vm_on_" + std::to_string(run++));
    const auto result = run_vm_campaign(config, opts);
    std::ostringstream csv;
    write_vm_trials_csv(csv, result.trials);
    EXPECT_EQ(reference.csv, csv.str()) << "workers=" << workers;
    EXPECT_EQ(reference.trace, slurp(opts.out_jsonl)) << "workers=" << workers;
  }
}

// Budget-limited trials must bypass the convergence shortcut (their abort
// points depend on executing real cycles) and still match the reference.
TEST_F(TrialSpeedTest, BudgetedTrialsMatchWithFastPathsOn) {
  UarchCampaignConfig config;
  config.seed = 0x5EF0;
  config.trials_per_workload = 8;
  config.workloads = {"gzip"};
  config.monitor_cycles = 1'000;
  config.catchup_cycles = 1'000;
  config.trial_budget.max_cycles = 1'500;

  set_trial_speed(all_off());
  clear_continuation_cache();
  const UarchRun reference = run_uarch(config, 0, "budget_off");

  set_trial_speed(TrialSpeedConfig{});
  clear_continuation_cache();
  const UarchRun fast = run_uarch(config, 2, "budget_on");

  EXPECT_EQ(reference.csv, fast.csv);
  EXPECT_EQ(reference.trace, fast.trace);
}

}  // namespace
}  // namespace restore::faultinject
