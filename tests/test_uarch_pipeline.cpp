// Targeted pipeline-behaviour tests: the store-to-load forwarding matrix
// across all size/offset combinations, return-address-stack and BTB
// effectiveness, and the register-renaming conservation invariant.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <sstream>

#include "isa/assembler.hpp"
#include "uarch/core.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace restore::uarch {
namespace {

// ---- store-to-load forwarding matrix ----
//
// For every (store width, load width, offset) combination where the load lies
// within the store, forwarding must produce the architecturally correct
// value; where it only partially overlaps, the replay path must still produce
// the correct value (by waiting for the store to drain).

struct FwdCase {
  const char* store_op;
  unsigned store_bytes;
  const char* load_op;
  unsigned load_bytes;
  unsigned offset;
};

std::string fwd_name(const ::testing::TestParamInfo<FwdCase>& info) {
  std::ostringstream out;
  out << info.param.store_op << "_" << info.param.load_op << "_off"
      << info.param.offset;
  return out.str();
}

class ForwardingMatrix : public ::testing::TestWithParam<FwdCase> {};

TEST_P(ForwardingMatrix, CoreMatchesVm) {
  const FwdCase& c = GetParam();
  std::ostringstream source;
  source << "main:\n"
         << "  li r1, 0x1BADF00DCAFE1234\n"
         << "  li r2, 0x7777777777777777\n"
         << "  sd r2, 0(sp)\n"           // background pattern, drained
         << "  li r9, 40\n"
         << "w: addi r9, r9, -1\n"       // let the background store drain
         << "  bnez r9, w\n"
         << "  " << c.store_op << " r1, 0(sp)\n"
         << "  " << c.load_op << " r3, " << c.offset << "(sp)\n"  // in shadow
         << "  add r4, r3, r3\n"
         << "  out r3\n"
         << "  halt\n";
  const auto program = isa::assemble(source.str());

  vm::Vm vm(program);
  vm.run(10'000);
  ASSERT_EQ(vm.status(), vm::Vm::Status::kHalted);

  Core core(program);
  core.run(100'000);
  ASSERT_EQ(core.status(), Core::Status::kHalted);
  EXPECT_EQ(core.output(), vm.output()) << source.str();
  EXPECT_EQ(core.arch_snapshot().regs[3], vm.reg(3)) << source.str();
}

std::vector<FwdCase> forwarding_cases() {
  std::vector<FwdCase> cases;
  struct Op {
    const char* store;
    const char* load;
    unsigned bytes;
  };
  const Op ops[] = {{"sb", "lbu", 1}, {"sh", "lhu", 2}, {"sw", "lwu", 4},
                    {"sd", "ld", 8}};
  for (const Op& st : ops) {
    for (const Op& ld : ops) {
      for (unsigned offset = 0; offset + ld.bytes <= 8; offset += ld.bytes) {
        // Only offsets aligned to the load size are legal accesses.
        cases.push_back({st.store, st.bytes, ld.load, ld.bytes, offset});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, ForwardingMatrix,
                         ::testing::ValuesIn(forwarding_cases()), fwd_name);

// ---- RAS effectiveness ----

TEST(RasEffectiveness, NestedCallsDoNotFlushThePipe) {
  // An 6-deep call chain executed repeatedly: with a working RAS the returns
  // predict perfectly after warmup, so flushes stay near the loop-exit count.
  const auto program = isa::assemble(
      "main:\n"
      "  li s0, 200\n"
      "outer:\n"
      "  call f1\n"
      "  addi s0, s0, -1\n"
      "  bnez s0, outer\n"
      "  halt\n"
      "f1: addi sp, sp, -8\n  sd ra, 0(sp)\n  call f2\n  ld ra, 0(sp)\n"
      "  addi sp, sp, 8\n  ret\n"
      "f2: addi sp, sp, -8\n  sd ra, 0(sp)\n  call f3\n  ld ra, 0(sp)\n"
      "  addi sp, sp, 8\n  ret\n"
      "f3: addi sp, sp, -8\n  sd ra, 0(sp)\n  call f4\n  ld ra, 0(sp)\n"
      "  addi sp, sp, 8\n  ret\n"
      "f4: addi sp, sp, -8\n  sd ra, 0(sp)\n  call f5\n  ld ra, 0(sp)\n"
      "  addi sp, sp, 8\n  ret\n"
      "f5: addi r1, r1, 1\n  ret\n");
  Core core(program);
  core.run(10'000'000);
  ASSERT_EQ(core.status(), Core::Status::kHalted);
  // 200 iterations x 5 returns = 1000 returns; a broken RAS would flush on
  // most of them.
  EXPECT_LT(core.counters().flushes, 300u)
      << "returns are mispredicting: RAS ineffective";
}

TEST(BtbEffectiveness, IndirectJumpTargetLearned) {
  // A jalr that repeatedly jumps to the same computed target: after the BTB
  // warms up, fetch follows it without flushing every iteration.
  const auto program = isa::assemble(
      "main:\n"
      "  la s1, hop\n"
      "  li s0, 300\n"
      "loop:\n"
      "  jalr r8, s1, 0\n"
      "back:\n"
      "  addi s0, s0, -1\n"
      "  bnez s0, loop\n"
      "  halt\n"
      "hop:\n"
      "  addi r1, r1, 1\n"
      "  jalr zero, r8, 0\n");  // indirect return via r8 (not the RAS reg)
  Core core(program);
  core.run(10'000'000);
  ASSERT_EQ(core.status(), Core::Status::kHalted);
  // 300 iterations x 2 indirect jumps; without a BTB every one flushes.
  EXPECT_LT(core.counters().flushes, 250u);
}

// ---- renaming conservation invariant ----

// At any instant, every physical register tag is accounted for exactly once:
// it is either in the live window of the free list, mapped by the speculative
// RAT, or held as the previous mapping (pold) of an in-flight writer.
void check_tag_conservation(const Core& core, u64 cycle) {
  std::multiset<unsigned> tags;
  // Free-list live window.
  for (unsigned i = 0; i < core.fl_count_; ++i) {
    tags.insert(core.free_ring_[(core.fl_head_ + i) & (kFreeListEntries - 1)] &
                (kNumPhysRegs - 1));
  }
  // Speculative map.
  for (unsigned r = 0; r < isa::kNumArchRegs; ++r) {
    tags.insert(core.spec_rat_[r] & (kNumPhysRegs - 1));
  }
  // Previous mappings of in-flight writers.
  for (unsigned i = 0; i < core.rob_count_; ++i) {
    const RobEntry& e = core.rob_[(core.rob_head_ + i) & (kRobEntries - 1)];
    if (e.valid && e.writes_reg) tags.insert(e.pold & (kNumPhysRegs - 1));
  }
  ASSERT_EQ(tags.size(), kNumPhysRegs) << "cycle " << cycle;
  unsigned expected = 0;
  for (const unsigned tag : tags) {
    ASSERT_EQ(tag, expected) << "tag accounted twice or lost at cycle " << cycle;
    ++expected;
  }
}

TEST(RenameInvariant, TagConservationHoldsThroughoutExecution) {
  for (const char* name : {"gzip", "gcc", "parser"}) {
    Core core(workloads::by_name(name).program);
    u64 cycle = 0;
    while (core.running() && cycle < 30'000) {
      core.cycle();
      if (++cycle % 97 == 0) {
        check_tag_conservation(core, cycle);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(RenameInvariant, HoldsAcrossResetTo) {
  const auto& wl = workloads::by_name("mcf");
  Core core(wl.program);
  core.run(2'000);
  ASSERT_TRUE(core.running());
  const vm::ArchSnapshot snap = core.arch_snapshot();
  core.run(1'000);
  core.reset_to(snap);
  check_tag_conservation(core, 0);
  core.run(500);
  check_tag_conservation(core, 500);
}

}  // namespace
}  // namespace restore::uarch
