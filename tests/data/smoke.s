# smoke-test fixture: 21 * 2 = 42, emitted once
main:
  li a0, 21
  add rv, a0, a0
  out rv
  halt
