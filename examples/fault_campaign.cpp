// fault_campaign: run a small microarchitectural fault-injection campaign on
// one workload and print a per-field breakdown — which structures' faults get
// masked, which become symptomatic, and which slip through as silent data
// corruption. This is the workflow a reliability engineer would use to decide
// where parity/ECC budget goes.
//
//   $ ./fault_campaign --workload vortex --trials 200
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/uarch_campaign.hpp"

using namespace restore;
using faultinject::UarchOutcome;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string workload = args.value("workload").value_or("vortex");

  faultinject::UarchCampaignConfig config;
  config.workloads = {workload};
  config.trials_per_workload = resolve_trial_count(args, 200);
  config.seed = resolve_seed(args, 42);
  // Containment budget flags (--trial-max-insns etc.) apply here too.
  config.trial_budget = resolve_campaign_cli(args).trial_budget;

  std::printf("fault campaign: workload=%s trials=%llu\n\n", workload.c_str(),
              static_cast<unsigned long long>(config.trials_per_workload));
  const auto result = run_uarch_campaign(config);

  struct FieldStats {
    int trials = 0;
    int masked = 0;
    int covered = 0;
    int escaped = 0;
  };
  std::map<std::string, FieldStats> by_field;
  for (const auto& trial : result.trials) {
    if (trial.aborted()) continue;  // tool artefact, not a protection signal
    auto& stats = by_field[trial.field_name];
    ++stats.trials;
    const auto outcome =
        classify_trial(trial, faultinject::DetectorModel::kJrsConfidence,
                       faultinject::ProtectionModel::kBaseline, 100);
    if (outcome == UarchOutcome::kMasked || outcome == UarchOutcome::kOther) {
      ++stats.masked;
    } else if (faultinject::is_covered(outcome)) {
      ++stats.covered;
    } else {
      ++stats.escaped;
    }
  }

  // Rank by escapes (the bits most worth protecting).
  std::vector<std::pair<std::string, FieldStats>> ranked(by_field.begin(),
                                                         by_field.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.escaped > b.second.escaped;
  });

  TextTable table({"field", "trials", "masked", "ReStore-covered", "escaped"});
  for (const auto& [field, stats] : ranked) {
    if (stats.trials == 0) continue;
    table.add_row({field, std::to_string(stats.trials), std::to_string(stats.masked),
                   std::to_string(stats.covered), std::to_string(stats.escaped)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\n'escaped' = silent corruption or latent fault at a 100-insn\n"
              "checkpoint interval with the JRS-gated detectors. Fields at the\n"
              "top of this table are where ECC/parity budget pays off most.\n");
  return 0;
}
