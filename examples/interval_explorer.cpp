// interval_explorer: sweep the checkpoint interval and chart the coverage /
// performance trade-off that drives ReStore's main design decision (§3.3's
// three symptom metrics, applied to the whole system): longer intervals catch
// longer error-to-symptom latencies but cost more per false-positive
// rollback.
//
//   $ ./interval_explorer --workload gzip
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/restore_core.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "uarch/core.hpp"
#include "workloads/workloads.hpp"

using namespace restore;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string name = args.value("workload").value_or("gzip");
  const auto& wl = workloads::by_name(name);

  // Coverage side: one fault-injection campaign, classified per interval.
  faultinject::UarchCampaignConfig campaign_config;
  campaign_config.workloads = {name};
  campaign_config.trials_per_workload = resolve_trial_count(args, 160);
  campaign_config.seed = resolve_seed(args, 7);
  std::printf("campaign on %s (%llu trials)...\n\n", name.c_str(),
              static_cast<unsigned long long>(campaign_config.trials_per_workload));
  const auto campaign = run_uarch_campaign(campaign_config);
  const double base_failures = faultinject::failure_fraction(campaign.trials);

  // Performance side: the real ReStoreCore per interval.
  uarch::Core baseline(wl.program);
  baseline.run(200'000'000);

  TextTable table({"interval", "coverage of failures", "slowdown", "rollbacks",
                   "checkpoints"});
  for (const u64 interval : checkpoint_interval_sweep()) {
    const double uncovered = faultinject::uncovered_fraction(
        campaign.trials, faultinject::DetectorModel::kJrsConfidence,
        faultinject::ProtectionModel::kBaseline, interval);
    const double coverage =
        base_failures > 0 ? 1.0 - uncovered / base_failures : 0.0;

    core::ReStoreOptions options;
    options.checkpoint_interval = interval;
    options.throttle_max_rollbacks = ~u64{0};
    core::ReStoreCore restore(wl.program, options);
    restore.run(400'000'000);
    const double slowdown =
        static_cast<double>(restore.cycle_count()) / baseline.cycle_count() - 1.0;

    table.add_row({std::to_string(interval), TextTable::fmt_pct(coverage, 1),
                   TextTable::fmt_pct(slowdown, 1),
                   std::to_string(restore.stats().rollbacks),
                   std::to_string(restore.checkpoints().checkpoints_taken())});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nbaseline failure probability: %s — pick the interval where\n"
              "added coverage stops paying for added slowdown.\n",
              TextTable::fmt_pct(base_failures, 1).c_str());
  return 0;
}
