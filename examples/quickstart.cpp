// Quickstart: assemble a program, run it on the ReStore core, inject a soft
// error, and watch symptom-based detection recover it.
//
//   $ ./quickstart
//
// Walks through the library's three layers:
//   1. isa::assemble     - SRA-64 assembly -> loadable program
//   2. uarch::Core       - the detailed out-of-order machine
//   3. core::ReStoreCore - checkpoints + symptom-triggered rollback
#include <cstdio>

#include "core/restore_core.hpp"
#include "isa/assembler.hpp"
#include "uarch/core.hpp"

using namespace restore;

namespace {

constexpr const char* kProgram = R"(
# Sum a 512-entry array of 64-bit values through a pointer walk, then print
# the 8-byte result. The pointer in s0 is what we will corrupt.
main:
  la s0, table       # element pointer
  li s1, 512         # remaining elements
  li s2, 0           # sum
loop:
  ld t0, 0(s0)
  add s2, s2, t0
  addi s0, s0, 8
  addi s1, s1, -1
  bnez s1, loop
  mv r1, s2
  li t0, 8
emit:
  out r1
  srli r1, r1, 8
  addi t0, t0, -1
  bnez t0, emit
  halt
.data
.align 8
table:
)";

std::string build_source() {
  std::string source = kProgram;
  for (int i = 1; i <= 512; ++i) {
    source += "  .word64 " + std::to_string(i * 3) + "\n";
  }
  return source;
}

void print_output(const std::string& output) {
  u64 value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<u8>(i < static_cast<int>(output.size())
                                               ? output[i]
                                               : 0);
  }
  // sum(3..1536 step 3) = 3 * 512*513/2 = 393984
  std::printf("  program output: %llu (expected 393984)\n",
              static_cast<unsigned long long>(value));
}

}  // namespace

int main() {
  // 1. Assemble.
  const isa::Program program = isa::assemble(build_source());
  std::printf("assembled %zu bytes, entry at 0x%llx\n\n", program.image_bytes(),
              static_cast<unsigned long long>(program.entry));

  // 2. Run on the plain out-of-order core.
  {
    uarch::Core core(program);
    core.run(1'000'000);
    std::printf("plain core: %llu instructions in %llu cycles (IPC %.2f)\n",
                static_cast<unsigned long long>(core.retired_count()),
                static_cast<unsigned long long>(core.cycle_count()),
                static_cast<double>(core.retired_count()) / core.cycle_count());
    print_output(core.output());
  }

  // The injected soft error: a single bit flip in the fetch program counter.
  // Fetch wanders into unmapped memory, which the machine discovers as an
  // instruction-fetch translation exception at retirement.
  const auto strike = [](uarch::Core& machine) {
    machine.fetch_pc_ ^= u64{1} << 44;
  };

  // 2b. The same injection on the *unprotected* core crashes it.
  {
    uarch::Core core(program);
    core.run(500);
    strike(core);
    core.run(1'000'000);
    std::printf("\nplain core + fetch-pc bit flip: status=%d (2 = faulted, "
                "fault=%s)\n",
                static_cast<int>(core.status()),
                std::string(isa::to_string(core.fault())).c_str());
  }

  // 3. Under ReStore the same fault is a symptom: the exception triggers
  //    rollback to the last-but-one checkpoint, which restores a clean pc and
  //    register state, and the program completes correctly.
  {
    core::ReStoreOptions options;
    options.checkpoint_interval = 100;
    core::ReStoreCore restore(program, options);
    restore.run(500);  // warm up mid-loop

    strike(restore.core());
    std::printf("\ninjected: bit 44 flip in the fetch program counter\n");

    restore.run(10'000'000);
    std::printf("ReStore core: status=%s, rollbacks=%llu (exception=%llu, "
                "branch=%llu), re-executed %llu insns\n",
                restore.status() == core::ReStoreCore::Status::kHalted ? "halted"
                                                                        : "failed",
                static_cast<unsigned long long>(restore.stats().rollbacks),
                static_cast<unsigned long long>(restore.stats().exception_rollbacks),
                static_cast<unsigned long long>(restore.stats().branch_rollbacks),
                static_cast<unsigned long long>(restore.stats().reexecuted_insns));
    print_output(restore.output());
  }
  return 0;
}
