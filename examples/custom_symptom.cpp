// custom_symptom: build your own symptom detector on the public pieces —
// the paper's §3.3 generalization. ReStore is "a framework into which other
// symptom-based detection can be easily integrated"; candidate symptoms are
// judged on three metrics:
//   (1) how often failure-causing errors generate the symptom,
//   (2) the error-to-symptom propagation latency,
//   (3) the symptom's frequency in the absence of errors (false positives).
//
// This example wires a *data-cache-miss-burst* detector (the paper's own
// example of a dubious candidate) directly onto uarch::Core +
// CheckpointManager — no ReStoreCore — and evaluates it on all three
// metrics against the exception symptom.
//
//   $ ./custom_symptom
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/checkpoint.hpp"
#include "uarch/core.hpp"
#include "uarch/state_registry.hpp"
#include "workloads/workloads.hpp"

using namespace restore;

namespace {

// A hand-rolled symptom detector: fires when L1D misses spike within a short
// window (possible wild-pointer signature... or just a working-set change).
class MissBurstDetector {
 public:
  explicit MissBurstDetector(const uarch::Core& core)
      : last_misses_(core.counters().l1d_misses) {}

  // Returns true when the symptom fires this cycle.
  bool observe(const uarch::Core& core) {
    const u64 misses = core.counters().l1d_misses;
    window_misses_ += misses - last_misses_;
    last_misses_ = misses;
    if (++window_cycles_ < kWindow) return false;
    const bool fire = window_misses_ >= kThreshold;
    window_cycles_ = 0;
    window_misses_ = 0;
    return fire;
  }

 private:
  static constexpr u64 kWindow = 128;     // cycles
  static constexpr u64 kThreshold = 6;    // misses within the window
  u64 last_misses_;
  u64 window_cycles_ = 0;
  u64 window_misses_ = 0;
};

struct Metrics {
  u64 fault_trials = 0;
  u64 fired_on_fault = 0;        // metric 1
  OnlineStats latency;           // metric 2 (retired insns to symptom)
  u64 clean_false_positives = 0; // metric 3 (per clean run)
  u64 clean_insns = 0;
};

}  // namespace

int main() {
  const auto& wl = workloads::by_name("vortex");
  const auto& reg = uarch::StateRegistry::instance();
  Rng rng(2025);

  Metrics burst, exception;

  // Metric 3: false-positive rate on a clean run.
  {
    uarch::Core core(wl.program);
    MissBurstDetector detector(core);
    while (core.running()) {
      core.cycle();
      if (detector.observe(core)) ++burst.clean_false_positives;
      for (const auto& ev : core.symptoms_this_cycle()) {
        if (ev.kind == uarch::SymptomEvent::Kind::kException) {
          ++exception.clean_false_positives;  // impossible on a clean run
        }
      }
    }
    burst.clean_insns = exception.clean_insns = core.retired_count();
  }

  // Metrics 1-2: inject faults, watch both detectors.
  uarch::Core warm(wl.program);
  warm.run(4'000);
  for (int trial = 0; trial < 150; ++trial) {
    uarch::Core faulty = warm;
    reg.flip(faulty, reg.sample(rng));
    MissBurstDetector detector(faulty);
    const u64 base = faulty.retired_count();
    ++burst.fault_trials;
    ++exception.fault_trials;
    bool burst_fired = false, exception_fired = false;
    for (u64 c = 0; c < 8'000 && faulty.running(); ++c) {
      faulty.cycle();
      if (!burst_fired && detector.observe(faulty)) {
        burst_fired = true;
        ++burst.fired_on_fault;
        burst.latency.add(static_cast<double>(faulty.retired_count() - base));
      }
      for (const auto& ev : faulty.symptoms_this_cycle()) {
        if (!exception_fired &&
            ev.kind == uarch::SymptomEvent::Kind::kException) {
          exception_fired = true;
          ++exception.fired_on_fault;
          exception.latency.add(static_cast<double>(ev.retired_count - base));
        }
      }
    }
  }

  TextTable table({"metric", "L1D-miss burst", "ISA exception"});
  table.add_row({"fires after an injected fault",
                 TextTable::fmt_pct(static_cast<double>(burst.fired_on_fault) /
                                        burst.fault_trials, 1),
                 TextTable::fmt_pct(static_cast<double>(exception.fired_on_fault) /
                                        exception.fault_trials, 1)});
  table.add_row({"mean error-to-symptom latency (insns)",
                 TextTable::fmt_f(burst.latency.mean(), 0),
                 TextTable::fmt_f(exception.latency.mean(), 0)});
  table.add_row({"false positives per clean kilo-insn",
                 TextTable::fmt_f(1000.0 * burst.clean_false_positives /
                                      burst.clean_insns, 3),
                 TextTable::fmt_f(1000.0 * exception.clean_false_positives /
                                      exception.clean_insns, 3)});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nthe paper's verdict on cache-miss symptoms (sec. 3.3): good on\n"
              "metrics 1-2, but \"may not be sufficiently rare enough in the\n"
              "absence of transient faults\" — exactly what the last row shows.\n");
  return 0;
}
