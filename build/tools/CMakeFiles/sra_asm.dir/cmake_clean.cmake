file(REMOVE_RECURSE
  "CMakeFiles/sra_asm.dir/sra_asm.cpp.o"
  "CMakeFiles/sra_asm.dir/sra_asm.cpp.o.d"
  "sra_asm"
  "sra_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sra_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
