# Empty dependencies file for sra_asm.
# This may be replaced when dependencies are built.
