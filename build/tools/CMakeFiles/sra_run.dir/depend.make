# Empty dependencies file for sra_run.
# This may be replaced when dependencies are built.
