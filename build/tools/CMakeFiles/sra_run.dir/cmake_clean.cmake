file(REMOVE_RECURSE
  "CMakeFiles/sra_run.dir/sra_run.cpp.o"
  "CMakeFiles/sra_run.dir/sra_run.cpp.o.d"
  "sra_run"
  "sra_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sra_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
