# Empty compiler generated dependencies file for custom_symptom.
# This may be replaced when dependencies are built.
