file(REMOVE_RECURSE
  "CMakeFiles/custom_symptom.dir/custom_symptom.cpp.o"
  "CMakeFiles/custom_symptom.dir/custom_symptom.cpp.o.d"
  "custom_symptom"
  "custom_symptom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_symptom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
