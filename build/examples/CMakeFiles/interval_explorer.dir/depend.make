# Empty dependencies file for interval_explorer.
# This may be replaced when dependencies are built.
