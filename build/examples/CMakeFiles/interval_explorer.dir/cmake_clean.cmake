file(REMOVE_RECURSE
  "CMakeFiles/interval_explorer.dir/interval_explorer.cpp.o"
  "CMakeFiles/interval_explorer.dir/interval_explorer.cpp.o.d"
  "interval_explorer"
  "interval_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
