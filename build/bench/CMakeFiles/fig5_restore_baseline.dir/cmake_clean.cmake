file(REMOVE_RECURSE
  "CMakeFiles/fig5_restore_baseline.dir/fig5_restore_baseline.cpp.o"
  "CMakeFiles/fig5_restore_baseline.dir/fig5_restore_baseline.cpp.o.d"
  "fig5_restore_baseline"
  "fig5_restore_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_restore_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
