# Empty compiler generated dependencies file for fig5_restore_baseline.
# This may be replaced when dependencies are built.
