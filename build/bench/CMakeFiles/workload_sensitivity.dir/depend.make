# Empty dependencies file for workload_sensitivity.
# This may be replaced when dependencies are built.
