file(REMOVE_RECURSE
  "CMakeFiles/workload_sensitivity.dir/workload_sensitivity.cpp.o"
  "CMakeFiles/workload_sensitivity.dir/workload_sensitivity.cpp.o.d"
  "workload_sensitivity"
  "workload_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
