# Empty dependencies file for ablation_detectors.
# This may be replaced when dependencies are built.
