file(REMOVE_RECURSE
  "CMakeFiles/fig2_vm_injection.dir/fig2_vm_injection.cpp.o"
  "CMakeFiles/fig2_vm_injection.dir/fig2_vm_injection.cpp.o.d"
  "fig2_vm_injection"
  "fig2_vm_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_vm_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
