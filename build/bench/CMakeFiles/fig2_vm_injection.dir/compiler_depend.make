# Empty compiler generated dependencies file for fig2_vm_injection.
# This may be replaced when dependencies are built.
