# Empty dependencies file for fig4_uarch_all_state.
# This may be replaced when dependencies are built.
