file(REMOVE_RECURSE
  "CMakeFiles/fig4_uarch_all_state.dir/fig4_uarch_all_state.cpp.o"
  "CMakeFiles/fig4_uarch_all_state.dir/fig4_uarch_all_state.cpp.o.d"
  "fig4_uarch_all_state"
  "fig4_uarch_all_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_uarch_all_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
