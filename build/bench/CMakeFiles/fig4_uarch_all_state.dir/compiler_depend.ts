# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_uarch_all_state.
