# Empty dependencies file for fig6_restore_hardened.
# This may be replaced when dependencies are built.
