file(REMOVE_RECURSE
  "CMakeFiles/fig6_restore_hardened.dir/fig6_restore_hardened.cpp.o"
  "CMakeFiles/fig6_restore_hardened.dir/fig6_restore_hardened.cpp.o.d"
  "fig6_restore_hardened"
  "fig6_restore_hardened.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_restore_hardened.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
