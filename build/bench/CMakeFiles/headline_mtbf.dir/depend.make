# Empty dependencies file for headline_mtbf.
# This may be replaced when dependencies are built.
