file(REMOVE_RECURSE
  "CMakeFiles/headline_mtbf.dir/headline_mtbf.cpp.o"
  "CMakeFiles/headline_mtbf.dir/headline_mtbf.cpp.o.d"
  "headline_mtbf"
  "headline_mtbf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_mtbf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
