add_test([=[CampaignParallelism.WorkerCountDoesNotChangeResults]=]  /root/repo/build/tests/test_campaign_parallel [==[--gtest_filter=CampaignParallelism.WorkerCountDoesNotChangeResults]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[CampaignParallelism.WorkerCountDoesNotChangeResults]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_campaign_parallel_TESTS CampaignParallelism.WorkerCountDoesNotChangeResults)
