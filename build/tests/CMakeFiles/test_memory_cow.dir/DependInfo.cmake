
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_memory_cow.cpp" "tests/CMakeFiles/test_memory_cow.dir/test_memory_cow.cpp.o" "gcc" "tests/CMakeFiles/test_memory_cow.dir/test_memory_cow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/restore_core.dir/DependInfo.cmake"
  "/root/repo/build/src/faultinject/CMakeFiles/restore_faultinject.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/restore_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/restore_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/restore_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/restore_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
