# Empty dependencies file for test_memory_cow.
# This may be replaced when dependencies are built.
