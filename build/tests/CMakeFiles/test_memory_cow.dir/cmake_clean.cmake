file(REMOVE_RECURSE
  "CMakeFiles/test_memory_cow.dir/test_memory_cow.cpp.o"
  "CMakeFiles/test_memory_cow.dir/test_memory_cow.cpp.o.d"
  "test_memory_cow"
  "test_memory_cow.pdb"
  "test_memory_cow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_cow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
