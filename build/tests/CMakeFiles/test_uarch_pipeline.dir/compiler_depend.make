# Empty compiler generated dependencies file for test_uarch_pipeline.
# This may be replaced when dependencies are built.
