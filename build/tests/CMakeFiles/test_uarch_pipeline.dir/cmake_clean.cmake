file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_pipeline.dir/test_uarch_pipeline.cpp.o"
  "CMakeFiles/test_uarch_pipeline.dir/test_uarch_pipeline.cpp.o.d"
  "test_uarch_pipeline"
  "test_uarch_pipeline.pdb"
  "test_uarch_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
