file(REMOVE_RECURSE
  "CMakeFiles/test_timing_independence.dir/test_timing_independence.cpp.o"
  "CMakeFiles/test_timing_independence.dir/test_timing_independence.cpp.o.d"
  "test_timing_independence"
  "test_timing_independence.pdb"
  "test_timing_independence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
