# Empty compiler generated dependencies file for test_timing_independence.
# This may be replaced when dependencies are built.
