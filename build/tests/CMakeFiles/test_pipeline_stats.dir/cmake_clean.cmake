file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_stats.dir/test_pipeline_stats.cpp.o"
  "CMakeFiles/test_pipeline_stats.dir/test_pipeline_stats.cpp.o.d"
  "test_pipeline_stats"
  "test_pipeline_stats.pdb"
  "test_pipeline_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
