file(REMOVE_RECURSE
  "CMakeFiles/test_restore_core.dir/test_restore_core.cpp.o"
  "CMakeFiles/test_restore_core.dir/test_restore_core.cpp.o.d"
  "test_restore_core"
  "test_restore_core.pdb"
  "test_restore_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_restore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
