# Empty dependencies file for test_restore_core.
# This may be replaced when dependencies are built.
