# Empty dependencies file for test_fuzz_cosim.
# This may be replaced when dependencies are built.
