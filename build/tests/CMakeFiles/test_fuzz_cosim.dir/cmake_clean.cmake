file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_cosim.dir/test_fuzz_cosim.cpp.o"
  "CMakeFiles/test_fuzz_cosim.dir/test_fuzz_cosim.cpp.o.d"
  "test_fuzz_cosim"
  "test_fuzz_cosim.pdb"
  "test_fuzz_cosim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
