file(REMOVE_RECURSE
  "CMakeFiles/test_uarch_units.dir/test_uarch_units.cpp.o"
  "CMakeFiles/test_uarch_units.dir/test_uarch_units.cpp.o.d"
  "test_uarch_units"
  "test_uarch_units.pdb"
  "test_uarch_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
