# Empty compiler generated dependencies file for test_uarch_units.
# This may be replaced when dependencies are built.
