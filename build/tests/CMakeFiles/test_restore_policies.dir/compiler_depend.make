# Empty compiler generated dependencies file for test_restore_policies.
# This may be replaced when dependencies are built.
