file(REMOVE_RECURSE
  "CMakeFiles/test_restore_policies.dir/test_restore_policies.cpp.o"
  "CMakeFiles/test_restore_policies.dir/test_restore_policies.cpp.o.d"
  "test_restore_policies"
  "test_restore_policies.pdb"
  "test_restore_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_restore_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
