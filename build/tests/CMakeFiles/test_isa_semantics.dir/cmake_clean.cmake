file(REMOVE_RECURSE
  "CMakeFiles/test_isa_semantics.dir/test_isa_semantics.cpp.o"
  "CMakeFiles/test_isa_semantics.dir/test_isa_semantics.cpp.o.d"
  "test_isa_semantics"
  "test_isa_semantics.pdb"
  "test_isa_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
