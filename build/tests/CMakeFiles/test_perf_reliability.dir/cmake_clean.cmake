file(REMOVE_RECURSE
  "CMakeFiles/test_perf_reliability.dir/test_perf_reliability.cpp.o"
  "CMakeFiles/test_perf_reliability.dir/test_perf_reliability.cpp.o.d"
  "test_perf_reliability"
  "test_perf_reliability.pdb"
  "test_perf_reliability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
