# Empty dependencies file for test_core_cosim.
# This may be replaced when dependencies are built.
