file(REMOVE_RECURSE
  "CMakeFiles/test_core_cosim.dir/test_core_cosim.cpp.o"
  "CMakeFiles/test_core_cosim.dir/test_core_cosim.cpp.o.d"
  "test_core_cosim"
  "test_core_cosim.pdb"
  "test_core_cosim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
