file(REMOVE_RECURSE
  "CMakeFiles/restore_faultinject.dir/classify.cpp.o"
  "CMakeFiles/restore_faultinject.dir/classify.cpp.o.d"
  "CMakeFiles/restore_faultinject.dir/export.cpp.o"
  "CMakeFiles/restore_faultinject.dir/export.cpp.o.d"
  "CMakeFiles/restore_faultinject.dir/uarch_campaign.cpp.o"
  "CMakeFiles/restore_faultinject.dir/uarch_campaign.cpp.o.d"
  "CMakeFiles/restore_faultinject.dir/vm_campaign.cpp.o"
  "CMakeFiles/restore_faultinject.dir/vm_campaign.cpp.o.d"
  "librestore_faultinject.a"
  "librestore_faultinject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_faultinject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
