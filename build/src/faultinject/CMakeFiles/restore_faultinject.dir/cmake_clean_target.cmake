file(REMOVE_RECURSE
  "librestore_faultinject.a"
)
