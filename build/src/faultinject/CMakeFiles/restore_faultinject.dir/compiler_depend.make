# Empty compiler generated dependencies file for restore_faultinject.
# This may be replaced when dependencies are built.
