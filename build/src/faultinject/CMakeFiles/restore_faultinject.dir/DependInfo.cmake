
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faultinject/classify.cpp" "src/faultinject/CMakeFiles/restore_faultinject.dir/classify.cpp.o" "gcc" "src/faultinject/CMakeFiles/restore_faultinject.dir/classify.cpp.o.d"
  "/root/repo/src/faultinject/export.cpp" "src/faultinject/CMakeFiles/restore_faultinject.dir/export.cpp.o" "gcc" "src/faultinject/CMakeFiles/restore_faultinject.dir/export.cpp.o.d"
  "/root/repo/src/faultinject/uarch_campaign.cpp" "src/faultinject/CMakeFiles/restore_faultinject.dir/uarch_campaign.cpp.o" "gcc" "src/faultinject/CMakeFiles/restore_faultinject.dir/uarch_campaign.cpp.o.d"
  "/root/repo/src/faultinject/vm_campaign.cpp" "src/faultinject/CMakeFiles/restore_faultinject.dir/vm_campaign.cpp.o" "gcc" "src/faultinject/CMakeFiles/restore_faultinject.dir/vm_campaign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uarch/CMakeFiles/restore_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/restore_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/restore_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restore_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/restore_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
