file(REMOVE_RECURSE
  "librestore_workloads.a"
)
