# Empty dependencies file for restore_workloads.
# This may be replaced when dependencies are built.
