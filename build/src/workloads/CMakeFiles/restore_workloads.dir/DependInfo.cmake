
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/wl_bzip2.cpp" "src/workloads/CMakeFiles/restore_workloads.dir/wl_bzip2.cpp.o" "gcc" "src/workloads/CMakeFiles/restore_workloads.dir/wl_bzip2.cpp.o.d"
  "/root/repo/src/workloads/wl_crafty.cpp" "src/workloads/CMakeFiles/restore_workloads.dir/wl_crafty.cpp.o" "gcc" "src/workloads/CMakeFiles/restore_workloads.dir/wl_crafty.cpp.o.d"
  "/root/repo/src/workloads/wl_gap.cpp" "src/workloads/CMakeFiles/restore_workloads.dir/wl_gap.cpp.o" "gcc" "src/workloads/CMakeFiles/restore_workloads.dir/wl_gap.cpp.o.d"
  "/root/repo/src/workloads/wl_gcc.cpp" "src/workloads/CMakeFiles/restore_workloads.dir/wl_gcc.cpp.o" "gcc" "src/workloads/CMakeFiles/restore_workloads.dir/wl_gcc.cpp.o.d"
  "/root/repo/src/workloads/wl_gzip.cpp" "src/workloads/CMakeFiles/restore_workloads.dir/wl_gzip.cpp.o" "gcc" "src/workloads/CMakeFiles/restore_workloads.dir/wl_gzip.cpp.o.d"
  "/root/repo/src/workloads/wl_mcf.cpp" "src/workloads/CMakeFiles/restore_workloads.dir/wl_mcf.cpp.o" "gcc" "src/workloads/CMakeFiles/restore_workloads.dir/wl_mcf.cpp.o.d"
  "/root/repo/src/workloads/wl_parser.cpp" "src/workloads/CMakeFiles/restore_workloads.dir/wl_parser.cpp.o" "gcc" "src/workloads/CMakeFiles/restore_workloads.dir/wl_parser.cpp.o.d"
  "/root/repo/src/workloads/wl_twolf.cpp" "src/workloads/CMakeFiles/restore_workloads.dir/wl_twolf.cpp.o" "gcc" "src/workloads/CMakeFiles/restore_workloads.dir/wl_twolf.cpp.o.d"
  "/root/repo/src/workloads/wl_vortex.cpp" "src/workloads/CMakeFiles/restore_workloads.dir/wl_vortex.cpp.o" "gcc" "src/workloads/CMakeFiles/restore_workloads.dir/wl_vortex.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/workloads/CMakeFiles/restore_workloads.dir/workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/restore_workloads.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/restore_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/restore_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
