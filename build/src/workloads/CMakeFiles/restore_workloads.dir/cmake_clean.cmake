file(REMOVE_RECURSE
  "CMakeFiles/restore_workloads.dir/wl_bzip2.cpp.o"
  "CMakeFiles/restore_workloads.dir/wl_bzip2.cpp.o.d"
  "CMakeFiles/restore_workloads.dir/wl_crafty.cpp.o"
  "CMakeFiles/restore_workloads.dir/wl_crafty.cpp.o.d"
  "CMakeFiles/restore_workloads.dir/wl_gap.cpp.o"
  "CMakeFiles/restore_workloads.dir/wl_gap.cpp.o.d"
  "CMakeFiles/restore_workloads.dir/wl_gcc.cpp.o"
  "CMakeFiles/restore_workloads.dir/wl_gcc.cpp.o.d"
  "CMakeFiles/restore_workloads.dir/wl_gzip.cpp.o"
  "CMakeFiles/restore_workloads.dir/wl_gzip.cpp.o.d"
  "CMakeFiles/restore_workloads.dir/wl_mcf.cpp.o"
  "CMakeFiles/restore_workloads.dir/wl_mcf.cpp.o.d"
  "CMakeFiles/restore_workloads.dir/wl_parser.cpp.o"
  "CMakeFiles/restore_workloads.dir/wl_parser.cpp.o.d"
  "CMakeFiles/restore_workloads.dir/wl_twolf.cpp.o"
  "CMakeFiles/restore_workloads.dir/wl_twolf.cpp.o.d"
  "CMakeFiles/restore_workloads.dir/wl_vortex.cpp.o"
  "CMakeFiles/restore_workloads.dir/wl_vortex.cpp.o.d"
  "CMakeFiles/restore_workloads.dir/workloads.cpp.o"
  "CMakeFiles/restore_workloads.dir/workloads.cpp.o.d"
  "librestore_workloads.a"
  "librestore_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
