file(REMOVE_RECURSE
  "CMakeFiles/restore_core.dir/checkpoint.cpp.o"
  "CMakeFiles/restore_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/restore_core.dir/event_log.cpp.o"
  "CMakeFiles/restore_core.dir/event_log.cpp.o.d"
  "CMakeFiles/restore_core.dir/restore_core.cpp.o"
  "CMakeFiles/restore_core.dir/restore_core.cpp.o.d"
  "librestore_core.a"
  "librestore_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
