file(REMOVE_RECURSE
  "librestore_core.a"
)
