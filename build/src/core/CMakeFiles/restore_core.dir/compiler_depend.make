# Empty compiler generated dependencies file for restore_core.
# This may be replaced when dependencies are built.
