file(REMOVE_RECURSE
  "CMakeFiles/restore_common.dir/cli.cpp.o"
  "CMakeFiles/restore_common.dir/cli.cpp.o.d"
  "CMakeFiles/restore_common.dir/stats.cpp.o"
  "CMakeFiles/restore_common.dir/stats.cpp.o.d"
  "CMakeFiles/restore_common.dir/table.cpp.o"
  "CMakeFiles/restore_common.dir/table.cpp.o.d"
  "CMakeFiles/restore_common.dir/thread_pool.cpp.o"
  "CMakeFiles/restore_common.dir/thread_pool.cpp.o.d"
  "librestore_common.a"
  "librestore_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
