file(REMOVE_RECURSE
  "librestore_common.a"
)
