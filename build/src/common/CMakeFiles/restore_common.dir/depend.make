# Empty dependencies file for restore_common.
# This may be replaced when dependencies are built.
