# Empty compiler generated dependencies file for restore_vm.
# This may be replaced when dependencies are built.
