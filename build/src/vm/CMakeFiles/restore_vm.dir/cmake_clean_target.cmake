file(REMOVE_RECURSE
  "librestore_vm.a"
)
