file(REMOVE_RECURSE
  "CMakeFiles/restore_vm.dir/exec.cpp.o"
  "CMakeFiles/restore_vm.dir/exec.cpp.o.d"
  "CMakeFiles/restore_vm.dir/memory.cpp.o"
  "CMakeFiles/restore_vm.dir/memory.cpp.o.d"
  "CMakeFiles/restore_vm.dir/vm.cpp.o"
  "CMakeFiles/restore_vm.dir/vm.cpp.o.d"
  "librestore_vm.a"
  "librestore_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
