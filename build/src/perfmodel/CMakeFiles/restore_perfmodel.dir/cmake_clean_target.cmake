file(REMOVE_RECURSE
  "librestore_perfmodel.a"
)
