file(REMOVE_RECURSE
  "CMakeFiles/restore_perfmodel.dir/overhead.cpp.o"
  "CMakeFiles/restore_perfmodel.dir/overhead.cpp.o.d"
  "librestore_perfmodel.a"
  "librestore_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
