# Empty compiler generated dependencies file for restore_perfmodel.
# This may be replaced when dependencies are built.
