file(REMOVE_RECURSE
  "librestore_reliability.a"
)
