# Empty compiler generated dependencies file for restore_reliability.
# This may be replaced when dependencies are built.
