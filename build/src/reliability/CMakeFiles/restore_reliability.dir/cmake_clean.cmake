file(REMOVE_RECURSE
  "CMakeFiles/restore_reliability.dir/fit.cpp.o"
  "CMakeFiles/restore_reliability.dir/fit.cpp.o.d"
  "librestore_reliability.a"
  "librestore_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
