# Empty dependencies file for restore_uarch.
# This may be replaced when dependencies are built.
