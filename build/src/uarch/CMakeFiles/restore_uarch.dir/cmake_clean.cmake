file(REMOVE_RECURSE
  "CMakeFiles/restore_uarch.dir/caches.cpp.o"
  "CMakeFiles/restore_uarch.dir/caches.cpp.o.d"
  "CMakeFiles/restore_uarch.dir/core.cpp.o"
  "CMakeFiles/restore_uarch.dir/core.cpp.o.d"
  "CMakeFiles/restore_uarch.dir/pipeline_stats.cpp.o"
  "CMakeFiles/restore_uarch.dir/pipeline_stats.cpp.o.d"
  "CMakeFiles/restore_uarch.dir/predictors.cpp.o"
  "CMakeFiles/restore_uarch.dir/predictors.cpp.o.d"
  "CMakeFiles/restore_uarch.dir/state_registry.cpp.o"
  "CMakeFiles/restore_uarch.dir/state_registry.cpp.o.d"
  "librestore_uarch.a"
  "librestore_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
