
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/caches.cpp" "src/uarch/CMakeFiles/restore_uarch.dir/caches.cpp.o" "gcc" "src/uarch/CMakeFiles/restore_uarch.dir/caches.cpp.o.d"
  "/root/repo/src/uarch/core.cpp" "src/uarch/CMakeFiles/restore_uarch.dir/core.cpp.o" "gcc" "src/uarch/CMakeFiles/restore_uarch.dir/core.cpp.o.d"
  "/root/repo/src/uarch/pipeline_stats.cpp" "src/uarch/CMakeFiles/restore_uarch.dir/pipeline_stats.cpp.o" "gcc" "src/uarch/CMakeFiles/restore_uarch.dir/pipeline_stats.cpp.o.d"
  "/root/repo/src/uarch/predictors.cpp" "src/uarch/CMakeFiles/restore_uarch.dir/predictors.cpp.o" "gcc" "src/uarch/CMakeFiles/restore_uarch.dir/predictors.cpp.o.d"
  "/root/repo/src/uarch/state_registry.cpp" "src/uarch/CMakeFiles/restore_uarch.dir/state_registry.cpp.o" "gcc" "src/uarch/CMakeFiles/restore_uarch.dir/state_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/restore_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/restore_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/restore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
