file(REMOVE_RECURSE
  "librestore_uarch.a"
)
