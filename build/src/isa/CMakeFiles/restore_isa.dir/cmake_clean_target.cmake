file(REMOVE_RECURSE
  "librestore_isa.a"
)
