# Empty dependencies file for restore_isa.
# This may be replaced when dependencies are built.
