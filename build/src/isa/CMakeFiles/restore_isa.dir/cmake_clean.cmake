file(REMOVE_RECURSE
  "CMakeFiles/restore_isa.dir/assembler.cpp.o"
  "CMakeFiles/restore_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/restore_isa.dir/disasm.cpp.o"
  "CMakeFiles/restore_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/restore_isa.dir/instruction.cpp.o"
  "CMakeFiles/restore_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/restore_isa.dir/program.cpp.o"
  "CMakeFiles/restore_isa.dir/program.cpp.o.d"
  "librestore_isa.a"
  "librestore_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restore_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
