// restore-analyze — compact campaign traces into the columnar trial store
// and query it (src/analytics).
//
// Subcommands:
//   compact TRACE.jsonl [--out PATH] [--threads N] [--no-root-cause]
//       Compact a completed trace + manifest into a columnar store
//       (default PATH: TRACE.jsonl.cols). Byte-deterministic: the same trace
//       compacts to the same bytes at any --threads value.
//   query STORE.cols --query NAME [--interval N] [--threads N] [--json]
//       One aggregate over the store: outcomes | avf | latency | defeat |
//       by-pc | by-opcode (the last two need a vm store compacted with
//       root-cause columns).
//   report STORE.cols [--interval N] [--threads N] [--json]
//       The full analysis report (every query, one document).
//
// The `outcomes` query reproduces campaign_status's per-model outcome counts
// over the source JSONL exactly — `campaign_status --json TRACE.jsonl` and
// `restore-analyze query STORE.cols --query outcomes --json` emit the same
// breakdown rows.
//
// Exit status: 0 ok, 1 I/O or parse errors, 2 usage errors.
#include <cstdio>
#include <string>

#include "analytics/column_store.hpp"
#include "analytics/compact.hpp"
#include "analytics/queries.hpp"
#include "analytics/report.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace restore;

namespace {

void print_usage() {
  std::fprintf(
      stderr,
      "usage: restore-analyze compact TRACE.jsonl [--out PATH] [--threads N]\n"
      "                               [--no-root-cause]\n"
      "       restore-analyze query STORE.cols --query NAME [--interval N]\n"
      "                               [--threads N] [--json]\n"
      "       restore-analyze report STORE.cols [--interval N] [--threads N]\n"
      "                               [--json]\n"
      "  queries: outcomes avf latency defeat by-pc by-opcode\n");
}

int run_compact(const CliArgs& args) {
  const std::string& trace = args.positional()[1];
  const std::string out =
      args.value("out").value_or(analytics::store_path_for(trace));
  analytics::CompactOptions options;
  options.threads = args.value_u64("threads", 0);
  options.derive_root_cause = !args.has_flag("no-root-cause");
  const auto result = analytics::compact_trace(trace, out, options);
  std::printf("compacted %llu trial(s): %llu -> %llu bytes (%.1f%%) at %s\n",
              static_cast<unsigned long long>(result.rows),
              static_cast<unsigned long long>(result.jsonl_bytes),
              static_cast<unsigned long long>(result.store_bytes),
              result.jsonl_bytes > 0
                  ? 100.0 * static_cast<double>(result.store_bytes) /
                        static_cast<double>(result.jsonl_bytes)
                  : 0.0,
              out.c_str());
  return 0;
}

int run_query(const CliArgs& args) {
  const auto query = args.value("query");
  if (!query) {
    print_usage();
    return 2;
  }
  const analytics::ColumnStoreReader store(args.positional()[1]);
  analytics::QueryOptions options;
  options.interval = args.value_u64("interval", 100);
  options.threads = args.value_u64("threads", 0);
  const bool json = args.has_flag("json");

  if (*query == "outcomes") {
    const auto rows = analytics::outcome_counts(store, options);
    if (json) {
      std::printf("%s\n", analytics::breakdown_json(rows).c_str());
    } else {
      TextTable table({"model", "outcome", "count"});
      for (const auto& row : rows) {
        table.add_row({row.model, row.outcome, TextTable::fmt_u(row.count)});
      }
      std::fputs(table.render().c_str(), stdout);
    }
    return 0;
  }
  if (*query == "avf") {
    const auto rows = analytics::structure_avf(store, options);
    if (json) {
      std::printf("%s\n", analytics::avf_json(rows).c_str());
    } else {
      TextTable table({"structure", "trials", "failures", "avf", "ci95"});
      for (const auto& row : rows) {
        table.add_row({row.structure, TextTable::fmt_u(row.trials),
                       TextTable::fmt_u(row.failures),
                       TextTable::fmt_pct(row.avf.estimate),
                       TextTable::fmt_pct(row.avf.lo) + ".." +
                           TextTable::fmt_pct(row.avf.hi)});
      }
      std::fputs(table.render().c_str(), stdout);
    }
    return 0;
  }
  if (*query == "by-pc" || *query == "by-opcode") {
    const auto rows = analytics::site_vulnerability(
        store, *query == "by-opcode", args.value_u64("top", 0), options);
    if (json) {
      std::printf("%s\n", analytics::sites_json(rows).c_str());
    } else {
      TextTable table({"site", "trials", "failures", "avf"});
      for (const auto& row : rows) {
        table.add_row({row.site, TextTable::fmt_u(row.trials),
                       TextTable::fmt_u(row.failures),
                       TextTable::fmt_pct(row.avf.estimate)});
      }
      std::fputs(table.render().c_str(), stdout);
    }
    return 0;
  }
  if (*query == "latency") {
    const auto rows = analytics::latency_stats(store, options);
    if (json) {
      std::printf("%s\n", analytics::latency_json(rows).c_str());
    } else {
      TextTable table({"detector", "fired", "total", "p50", "p90", "p99"});
      for (const auto& row : rows) {
        table.add_row({row.detector, TextTable::fmt_u(row.fired),
                       TextTable::fmt_u(row.total), TextTable::fmt_u(row.p50),
                       TextTable::fmt_u(row.p90), TextTable::fmt_u(row.p99)});
      }
      std::fputs(table.render().c_str(), stdout);
    }
    return 0;
  }
  if (*query == "defeat") {
    const auto rows = analytics::defeat_matrix(store, options);
    if (json) {
      std::printf("%s\n", analytics::defeat_json(rows).c_str());
    } else {
      TextTable table({"workload", "detector", "failures", "defeated"});
      for (const auto& row : rows) {
        table.add_row({row.workload, row.detector, TextTable::fmt_u(row.failures),
                       TextTable::fmt_u(row.defeated)});
      }
      std::fputs(table.render().c_str(), stdout);
    }
    return 0;
  }
  std::fprintf(stderr, "restore-analyze: unknown query '%s'\n", query->c_str());
  print_usage();
  return 2;
}

int run_report(const CliArgs& args) {
  const analytics::ColumnStoreReader store(args.positional()[1]);
  analytics::QueryOptions options;
  options.interval = args.value_u64("interval", 100);
  options.threads = args.value_u64("threads", 0);
  const auto report = analytics::analyze(store, options);
  if (args.has_flag("json")) {
    std::printf("%s\n", analytics::report_json(report).c_str());
  } else {
    std::fputs(analytics::report_text(report).c_str(), stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has_flag("help") || args.positional().size() < 2) {
    print_usage();
    return args.has_flag("help") ? 0 : 2;
  }
  const std::string& command = args.positional().front();
  try {
    if (command == "compact") return run_compact(args);
    if (command == "query") return run_query(args);
    if (command == "report") return run_report(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "restore-analyze: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "restore-analyze: unknown command '%s'\n", command.c_str());
  print_usage();
  return 2;
}
