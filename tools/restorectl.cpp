// restorectl — client for the restored campaign daemon.
//
//   restorectl [--socket PATH | --connect HOST:PORT] <command> [flags]
//
// Commands:
//   ping                 round-trip check; prints the protocol version
//   submit               submit a campaign job
//     --kind vm|uarch --seed N --trials N --shard-trials N
//     --workloads a,b,c --low32 --model result|register --latches-only
//     --fault-model single|multi|burst|set|targeted|rate
//     --fault-bits K --burst-entries N --fault-target load|store
//     --vdd-mv MV --freq-mhz MHZ --upset-ppm PPM
//                        expanded fault model (RESTORE_FAULT_MODEL env
//                        fallback for the model name); part of the job's
//                        campaign identity, so differently-modelled
//                        submissions never dedup onto each other
//     --priority N       higher runs earlier
//     --follow           stream events until the job is done; exit with the
//                        job's exit code (0 done, 3 quarantined, 130 stopped,
//                        1 failed)
//     --fetch PATH       after --follow completes, download the trace to PATH
//   status --job N       one job's status line
//   list                 every job the daemon knows about
//   subscribe --job N    stream events of an in-flight job until done
//   fetch --job N --out PATH
//                        download a job's trace ("-" = stdout)
//   analyze --job N [--interval N] [--json]
//                        full analysis report over a finished job's compacted
//                        trial store (AVF per structure, symptom latencies,
//                        root-cause ranking); the daemon caches rendered
//                        reports, so repeat calls are a map lookup
//   fleet-status         probe a fleet worker (--connect HOST:PORT) and print
//                        its lease counters
//
// TCP connections honor --connect-timeout-ms N: each attempt gets a bounded
// non-blocking connect, retried up to 3 times with doubling backoff before
// giving up (0 or absent = a single blocking connect, as before).
//
// The daemon answers a duplicate submission (same campaign identity) with
// attached=true (still running) or cached=true (served from the spool); in
// both cases --follow converges on the same trace bytes.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include "common/cli.hpp"
#include "service/fleet_coordinator.hpp"
#include "service/job_queue.hpp"
#include "service/protocol.hpp"

namespace {

using namespace restore;
using service::FrameReader;
using service::MessageType;
using service::WireMessage;

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_UNIX) failed");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw std::runtime_error("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot connect to '" + path +
                             "': " + std::strerror(errno));
  }
  return fd;
}

int connect_tcp(const std::string& target) {
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    throw std::runtime_error("--connect expects HOST:PORT, got '" + target + "'");
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    throw std::runtime_error("bad --connect port in '" + target + "'");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<u16>(port));
  const std::string ip = host.empty() || host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad --connect host in '" + target + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket(AF_INET) failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot connect to '" + target +
                             "': " + std::strerror(errno));
  }
  return fd;
}

// --connect-timeout-ms: bounded non-blocking connect with up to 3 attempts
// and doubling backoff, so a client script probing a worker that is still
// binding fails fast instead of hanging in a blocking connect().
int connect_tcp_bounded(const std::string& target, u64 timeout_ms) {
  if (timeout_ms == 0) return connect_tcp(target);
  std::string error;
  for (u64 attempt = 1; attempt <= 3; ++attempt) {
    const int fd = service::connect_tcp_timeout(target, timeout_ms, &error);
    if (fd >= 0) return fd;
    if (attempt < 3) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(u64{100} << (attempt - 1)));
    }
  }
  throw std::runtime_error(error);
}

// One blocking client connection: framed writes, framed blocking reads.
class Connection {
 public:
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void send(const WireMessage& msg) {
    const std::string frame =
        service::encode_frame(service::encode_message(msg));
    std::size_t off = 0;
    while (off < frame.size()) {
      const auto n = ::send(fd_, frame.data() + off, frame.size() - off, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("send failed: " + std::string(std::strerror(errno)));
      }
      off += static_cast<std::size_t>(n);
    }
  }

  WireMessage receive() {
    while (true) {
      if (const auto payload = reader_.next()) {
        const auto msg = service::decode_message(*payload);
        if (!msg) throw std::runtime_error("malformed frame from daemon");
        return *msg;
      }
      if (reader_.error()) {
        throw std::runtime_error("protocol error: " + reader_.error_text());
      }
      char buffer[64 * 1024];
      const auto n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n == 0) throw std::runtime_error("daemon closed the connection");
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("recv failed: " + std::string(std::strerror(errno)));
      }
      reader_.feed(buffer, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  FrameReader reader_;
};

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const auto comma = text.find(',', begin);
    const auto end = comma == std::string::npos ? text.size() : comma;
    if (end > begin) out.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

service::JobSpec spec_from_cli(const CliArgs& args) {
  service::JobSpec spec;
  spec.kind = args.value("kind").value_or("vm");
  spec.seed = resolve_seed(args, spec.seed);
  spec.trials = resolve_trial_count(args, 0);
  spec.shard_trials = args.value_u64("shard-trials", 0);
  if (const auto names = args.value("workloads")) {
    spec.workloads = split_csv(*names);
  }
  spec.low32 = args.has_flag("low32");
  spec.model = args.value("model").value_or("result");
  spec.latches_only = args.has_flag("latches-only");
  spec.fault_model = resolve_fault_model_name(args).value_or("single");
  spec.fault_bits = args.value_u64("fault-bits", spec.fault_bits);
  spec.burst_entries = args.value_u64("burst-entries", spec.burst_entries);
  spec.fault_target = args.value("fault-target").value_or(spec.fault_target);
  spec.vdd_mv = args.value_u64("vdd-mv", spec.vdd_mv);
  spec.freq_mhz = args.value_u64("freq-mhz", spec.freq_mhz);
  spec.upset_ppm = args.value_u64("upset-ppm", spec.upset_ppm);
  return spec;
}

void print_job_status(const WireMessage& msg) {
  std::printf("job %llu  %-11s %-5s config %016llx  shards %llu/%llu  "
              "trials %llu/%llu  %.1f trials/s  quarantined %llu  exit %llu  %s\n",
              static_cast<unsigned long long>(msg.job), msg.state.c_str(),
              msg.spec.kind.c_str(),
              static_cast<unsigned long long>(msg.config_hash),
              static_cast<unsigned long long>(msg.shards_done),
              static_cast<unsigned long long>(msg.shards_total),
              static_cast<unsigned long long>(msg.trials_done),
              static_cast<unsigned long long>(msg.trials_total),
              static_cast<double>(msg.rate_milli) / 1000.0,
              static_cast<unsigned long long>(msg.quarantined),
              static_cast<unsigned long long>(msg.exit_code),
              msg.trace.c_str());
  if (!msg.text.empty()) std::printf("  note: %s\n", msg.text.c_str());
}

void print_event(const WireMessage& msg) {
  if (!msg.text.empty()) {
    std::printf("[job %llu] %s\n", static_cast<unsigned long long>(msg.job),
                msg.text.c_str());
  } else {
    std::printf("[job %llu] %s shard %llu (%s) | %llu/%llu shards | "
                "%llu/%llu trials | %.1f trials/s\n",
                static_cast<unsigned long long>(msg.job), msg.event.c_str(),
                static_cast<unsigned long long>(msg.shard), msg.workload.c_str(),
                static_cast<unsigned long long>(msg.shards_done),
                static_cast<unsigned long long>(msg.shards_total),
                static_cast<unsigned long long>(msg.trials_done),
                static_cast<unsigned long long>(msg.trials_total),
                static_cast<double>(msg.rate_milli) / 1000.0);
  }
  std::fflush(stdout);
}

// Download one job's trace over the connection into `path` ("-" = stdout).
int fetch_trace(Connection& conn, u64 job, const std::string& path) {
  WireMessage fetch;
  fetch.type = MessageType::kFetch;
  fetch.job = job;
  conn.send(fetch);

  std::FILE* out = path == "-" ? stdout : std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "restorectl: cannot open '%s' for writing\n",
                 path.c_str());
    return 1;
  }
  u64 bytes = 0;
  while (true) {
    const auto msg = conn.receive();
    if (msg.type == MessageType::kTraceData) {
      std::fwrite(msg.data.data(), 1, msg.data.size(), out);
      bytes += msg.data.size();
      continue;
    }
    if (msg.type == MessageType::kTraceEnd) {
      if (out != stdout) std::fclose(out);
      if (bytes != msg.bytes) {
        std::fprintf(stderr, "restorectl: trace stream truncated (%llu of %llu bytes)\n",
                     static_cast<unsigned long long>(bytes),
                     static_cast<unsigned long long>(msg.bytes));
        return 1;
      }
      if (out != stdout) {
        std::fprintf(stderr, "restorectl: wrote %llu bytes to %s\n",
                     static_cast<unsigned long long>(bytes), path.c_str());
      }
      return 0;
    }
    if (msg.type == MessageType::kError) {
      if (out != stdout) std::fclose(out);
      std::fprintf(stderr, "restorectl: %s\n", msg.text.c_str());
      return 1;
    }
    // Late events of a concurrent subscription interleave legally; skip them.
    if (msg.type == MessageType::kEvent) continue;
    if (out != stdout) std::fclose(out);
    std::fprintf(stderr, "restorectl: unexpected %s during fetch\n",
                 std::string(service::to_string(msg.type)).c_str());
    return 1;
  }
}

// Consume events until the job's `done` frame; returns the job's exit code.
int follow_job(Connection& conn, u64 job) {
  while (true) {
    const auto msg = conn.receive();
    if (msg.type == MessageType::kEvent && msg.job == job) {
      print_event(msg);
      continue;
    }
    if (msg.type == MessageType::kDone && msg.job == job) {
      std::printf("job %llu %s (exit %llu)%s%s\n",
                  static_cast<unsigned long long>(msg.job), msg.state.c_str(),
                  static_cast<unsigned long long>(msg.exit_code),
                  msg.text.empty() ? "" : ": ", msg.text.c_str());
      return static_cast<int>(msg.exit_code);
    }
    if (msg.type == MessageType::kShutdown) {
      std::fprintf(stderr, "restorectl: daemon shut down: %s\n", msg.text.c_str());
      return 130;
    }
    if (msg.type == MessageType::kError) {
      std::fprintf(stderr, "restorectl: %s\n", msg.text.c_str());
      return 1;
    }
  }
}

int run(const CliArgs& args) {
  const auto& positional = args.positional();
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: restorectl [--socket PATH | --connect HOST:PORT] "
                 "ping|submit|status|list|subscribe|fetch|analyze|fleet-status"
                 " [flags]\n");
    return 2;
  }
  const std::string& command = positional.front();

  const auto tcp_target = args.value("connect");
  Connection conn(tcp_target
                      ? connect_tcp_bounded(*tcp_target,
                                            args.value_u64("connect-timeout-ms", 0))
                      : connect_unix(resolve_socket_path(args, "restored.sock")));

  if (command == "fleet-status") {
    WireMessage probe;
    probe.type = MessageType::kWorkerStatus;
    conn.send(probe);
    const auto info = conn.receive();
    if (info.type != MessageType::kWorkerInfo) {
      std::fprintf(stderr, "restorectl: unexpected reply to fleet-status\n");
      return 1;
    }
    std::printf("fleet worker (protocol %llu): %llu leases served, "
                "%llu cache hits, %llu failures, %llu active\n",
                static_cast<unsigned long long>(info.version),
                static_cast<unsigned long long>(info.leases_done),
                static_cast<unsigned long long>(info.cache_hits),
                static_cast<unsigned long long>(info.failures),
                static_cast<unsigned long long>(info.active));
    return 0;
  }

  if (command == "ping") {
    WireMessage ping;
    ping.type = MessageType::kPing;
    conn.send(ping);
    const auto pong = conn.receive();
    if (pong.type != MessageType::kPong) {
      std::fprintf(stderr, "restorectl: unexpected reply to ping\n");
      return 1;
    }
    std::printf("pong (protocol version %llu)\n",
                static_cast<unsigned long long>(pong.version));
    return 0;
  }

  if (command == "submit") {
    WireMessage submit;
    submit.type = MessageType::kSubmit;
    submit.spec = spec_from_cli(args);
    submit.priority = args.value_u64("priority", 0);
    submit.want_events = args.has_flag("follow");
    conn.send(submit);
    const auto reply = conn.receive();
    if (reply.type == MessageType::kError) {
      std::fprintf(stderr, "restorectl: %s\n", reply.text.c_str());
      return 1;
    }
    if (reply.type != MessageType::kSubmitted) {
      std::fprintf(stderr, "restorectl: unexpected reply to submit\n");
      return 1;
    }
    std::printf("job %llu %s%s%s  config %016llx  trace %s\n",
                static_cast<unsigned long long>(reply.job), reply.state.c_str(),
                reply.attached ? " (attached to in-flight job)" : "",
                reply.cached ? " (served from spool)" : "",
                static_cast<unsigned long long>(reply.config_hash),
                reply.trace.c_str());
    std::fflush(stdout);
    if (!args.has_flag("follow")) return 0;
    const int code = follow_job(conn, reply.job);
    if (code == 0) {
      if (const auto out = args.value("fetch")) {
        return fetch_trace(conn, reply.job, *out);
      }
    }
    return code;
  }

  if (command == "status") {
    WireMessage status;
    status.type = MessageType::kStatus;
    status.job = args.value_u64("job", 0);
    conn.send(status);
    const auto reply = conn.receive();
    if (reply.type == MessageType::kError) {
      std::fprintf(stderr, "restorectl: %s\n", reply.text.c_str());
      return 1;
    }
    print_job_status(reply);
    return static_cast<int>(reply.exit_code);
  }

  if (command == "list") {
    WireMessage list;
    list.type = MessageType::kList;
    conn.send(list);
    u64 count = 0;
    while (true) {
      const auto reply = conn.receive();
      if (reply.type == MessageType::kJobStatus) {
        print_job_status(reply);
        ++count;
        continue;
      }
      if (reply.type == MessageType::kListEnd) {
        std::printf("%llu job(s)\n", static_cast<unsigned long long>(reply.count));
        return 0;
      }
      if (reply.type == MessageType::kError) {
        std::fprintf(stderr, "restorectl: %s\n", reply.text.c_str());
        return 1;
      }
    }
  }

  if (command == "subscribe") {
    WireMessage sub;
    sub.type = MessageType::kSubscribe;
    sub.job = args.value_u64("job", 0);
    conn.send(sub);
    const auto ack = conn.receive();
    if (ack.type == MessageType::kError) {
      std::fprintf(stderr, "restorectl: %s\n", ack.text.c_str());
      return 1;
    }
    print_job_status(ack);
    return follow_job(conn, sub.job);
  }

  if (command == "fetch") {
    return fetch_trace(conn, args.value_u64("job", 0),
                       args.value("out").value_or("-"));
  }

  if (command == "analyze") {
    WireMessage req;
    req.type = MessageType::kAnalyze;
    req.job = args.value_u64("job", 0);
    req.interval = args.value_u64("interval", 0);
    req.json = args.has_flag("json");
    conn.send(req);
    const auto reply = conn.receive();
    if (reply.type == MessageType::kError) {
      std::fprintf(stderr, "restorectl: %s\n", reply.text.c_str());
      return 1;
    }
    if (reply.type != MessageType::kAnalyzeResult) {
      std::fprintf(stderr, "restorectl: unexpected reply to analyze\n");
      return 1;
    }
    std::fputs(reply.data.c_str(), stdout);
    if (reply.data.empty() || reply.data.back() != '\n') std::fputc('\n', stdout);
    return 0;
  }

  std::fprintf(stderr, "restorectl: unknown command '%s'\n", command.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(restore::CliArgs(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "restorectl: %s\n", e.what());
    return 1;
  }
}
