// sra_asm: assemble an SRA-64 source file and print a listing — addresses,
// encodings, disassembly, segments, and the symbol table.
//
//   $ sra_asm program.s [--symbols]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"

using namespace restore;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: sra_asm <program.s> [--symbols]\n");
    return 2;
  }
  std::ifstream in(args.positional()[0]);
  if (!in) {
    std::fprintf(stderr, "sra_asm: cannot open %s\n", args.positional()[0].c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  isa::Program program;
  try {
    program = isa::assemble(buffer.str(), {}, args.positional()[0]);
  } catch (const isa::AsmError& e) {
    std::fprintf(stderr, "sra_asm: %s: %s\n", args.positional()[0].c_str(), e.what());
    return 1;
  }

  std::printf("%s: %zu bytes, entry 0x%llx\n\n", program.name.c_str(),
              program.image_bytes(), static_cast<unsigned long long>(program.entry));

  for (const auto& seg : program.segments) {
    const bool exec = isa::has_perm(seg.perms, isa::Perms::kExec);
    std::printf("segment 0x%llx..0x%llx  %s\n",
                static_cast<unsigned long long>(seg.vaddr),
                static_cast<unsigned long long>(seg.vaddr + seg.bytes.size()),
                exec ? "r-x" : "rw-");
    if (!exec) continue;
    for (std::size_t off = 0; off + 4 <= seg.bytes.size(); off += 4) {
      u32 word = 0;
      for (int b = 3; b >= 0; --b) word = (word << 8) | seg.bytes[off + b];
      // Label this address if a symbol points here.
      for (const auto& [name, addr] : program.symbols) {
        if (addr == seg.vaddr + off) std::printf("%s:\n", name.c_str());
      }
      std::printf("  %08llx:  %08x  %s\n",
                  static_cast<unsigned long long>(seg.vaddr + off), word,
                  isa::disassemble(word).c_str());
    }
  }

  if (args.has_flag("symbols")) {
    std::printf("\nsymbols:\n");
    for (const auto& [name, addr] : program.symbols) {
      std::printf("  %08llx  %s\n", static_cast<unsigned long long>(addr),
                  name.c_str());
    }
  }
  return 0;
}
