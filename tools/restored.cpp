// restored — the long-running campaign daemon.
//
// Accepts campaign jobs over a Unix-domain socket (and optionally TCP with
// --listen), runs them through the same sharded orchestrator the batch CLIs
// use, and streams progress events to subscribed clients. Jobs are keyed by
// campaign identity: a duplicate submission attaches to the in-flight run,
// and a submission whose spool trace is already complete is answered from
// the spool without running anything. SIGTERM/SIGINT drain gracefully —
// in-flight shards finish and are committed, queued jobs are marked stopped,
// and a restarted daemon resumes them from the manifest to the same
// byte-identical trace.
//
//   restored --socket restored.sock --spool spool --job-workers 2 --workers 4
//
// Flags:
//   --socket PATH        Unix socket to serve on (or RESTORE_SOCKET;
//                        default restored.sock)
//   --listen HOST:PORT   additionally serve on a TCP socket
//   --spool DIR          trace/manifest spool directory (default spool)
//   --job-workers N      campaigns run concurrently (default 1)
//   --workers N          shard workers per campaign (default 0 = inline)
//   --heartbeat N        heartbeat event cadence in shards (default 1)
//   --shard-retries N / --retry-backoff-ms N
//                        shard supervision knobs (defaults 2 / 50)
//   --quiet              no daemon log lines
//
// Fleet-worker mode (the execution end of restore-fleet):
//   restored --fleet-worker --listen 127.0.0.1:7701 --spool spool
// serves shard leases over TCP instead of running the job daemon. Shard
// results are cached content-addressed under <spool>/fleet-cache, so
// re-leased shards are answered byte-for-byte without recomputation. The
// bound address is logged ("fleet-worker: listening on HOST:PORT"), which is
// how scripts discover an ephemeral --listen :0 port.
//
// Exit code: 0 after a clean drain, 1 on startup failure.
#include <cstdio>

#include "common/cli.hpp"
#include "common/shutdown.hpp"
#include "service/fleet_worker.hpp"
#include "service/server.hpp"

namespace {

int run_fleet_worker(const restore::CliArgs& args) {
  using namespace restore;
  service::FleetWorkerOptions opts;
  opts.listen = args.value("listen").value_or("127.0.0.1:0");
  opts.cache_dir = args.value("spool").value_or("spool") + "/fleet-cache";
  opts.quiet = args.has_flag("quiet");
  opts.fail_after_leases = args.value_u64("fail-after-leases", 0);
  install_shutdown_signal_handlers();
  opts.stop_flag = shutdown_flag();
  try {
    service::FleetWorker worker(std::move(opts));
    worker.start();
    worker.run();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "restored: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace restore;
  const CliArgs args(argc, argv);
  if (args.has_flag("fleet-worker")) return run_fleet_worker(args);

  service::ServerOptions opts;
  opts.socket_path = resolve_socket_path(args, "restored.sock");
  opts.listen = args.value("listen").value_or("");
  opts.spool_dir = args.value("spool").value_or("spool");
  opts.job_workers = args.value_u64("job-workers", 1);
  opts.campaign_workers = args.value_u64("workers", 0);
  opts.heartbeat_every_shards = args.value_u64("heartbeat", 1);
  opts.shard_retries = args.value_u64("shard-retries", 2);
  opts.retry_backoff_ms = args.value_u64("retry-backoff-ms", 50);
  opts.log_stream = args.has_flag("quiet") ? nullptr : stderr;

  // Wake-pipe first, handlers second: a signal delivered in between still
  // sets the flag, and shutdown_wake_fd arms retroactively on creation.
  opts.wake_fd = shutdown_wake_fd();
  install_shutdown_signal_handlers();
  opts.stop_flag = shutdown_flag();

  try {
    service::CampaignServer server(std::move(opts));
    server.start();
    return server.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "restored: %s\n", e.what());
    return 1;
  }
}
