// restored — the long-running campaign daemon.
//
// Accepts campaign jobs over a Unix-domain socket (and optionally TCP with
// --listen), runs them through the same sharded orchestrator the batch CLIs
// use, and streams progress events to subscribed clients. Jobs are keyed by
// campaign identity: a duplicate submission attaches to the in-flight run,
// and a submission whose spool trace is already complete is answered from
// the spool without running anything. SIGTERM/SIGINT drain gracefully —
// in-flight shards finish and are committed, queued jobs are marked stopped,
// and a restarted daemon resumes them from the manifest to the same
// byte-identical trace.
//
//   restored --socket restored.sock --spool spool --job-workers 2 --workers 4
//
// Flags:
//   --socket PATH        Unix socket to serve on (or RESTORE_SOCKET;
//                        default restored.sock)
//   --listen HOST:PORT   additionally serve on a TCP socket
//   --spool DIR          trace/manifest spool directory (default spool)
//   --job-workers N      campaigns run concurrently (default 1)
//   --workers N          shard workers per campaign (default 0 = inline)
//   --heartbeat N        heartbeat event cadence in shards (default 1)
//   --shard-retries N / --retry-backoff-ms N
//                        shard supervision knobs (defaults 2 / 50)
//   --quiet              no daemon log lines
//
// Exit code: 0 after a clean drain, 1 on startup failure.
#include <cstdio>

#include "common/cli.hpp"
#include "common/shutdown.hpp"
#include "service/server.hpp"

int main(int argc, char** argv) {
  using namespace restore;
  const CliArgs args(argc, argv);

  service::ServerOptions opts;
  opts.socket_path = resolve_socket_path(args, "restored.sock");
  opts.listen = args.value("listen").value_or("");
  opts.spool_dir = args.value("spool").value_or("spool");
  opts.job_workers = args.value_u64("job-workers", 1);
  opts.campaign_workers = args.value_u64("workers", 0);
  opts.heartbeat_every_shards = args.value_u64("heartbeat", 1);
  opts.shard_retries = args.value_u64("shard-retries", 2);
  opts.retry_backoff_ms = args.value_u64("retry-backoff-ms", 50);
  opts.log_stream = args.has_flag("quiet") ? nullptr : stderr;

  // Wake-pipe first, handlers second: a signal delivered in between still
  // sets the flag, and shutdown_wake_fd arms retroactively on creation.
  opts.wake_fd = shutdown_wake_fd();
  install_shutdown_signal_handlers();
  opts.stop_flag = shutdown_flag();

  try {
    service::CampaignServer server(std::move(opts));
    server.start();
    return server.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "restored: %s\n", e.what());
    return 1;
  }
}
