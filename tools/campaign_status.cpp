// campaign_status — inspect streamed injection-campaign traces.
//
// Reads each JSONL trial trace plus its sidecar manifest and reports how far
// the campaign got (completed shards / trials, per-shard wall-time stats) and
// what it found so far (outcome counts over the trials already on disk), so
// an interrupted paper-scale run can be checked before deciding to --resume.
//
// With one trace the full single-campaign report is printed. With several —
// e.g. a whole `restored` spool directory's worth — an aggregate table is
// printed instead: one row per campaign plus a totals line, so a fleet of
// queued jobs can be audited at a glance.
//
// Usage: campaign_status TRACE.jsonl [TRACE2.jsonl ...] [--interval N] [--json]
//   --interval N   checkpoint interval used to classify uarch trials
//                  (default 100, matching the figure drivers' summary lines)
//   --json         machine-readable report on stdout. The "breakdown" array
//                  holds the same {"model","outcome","count"} rows that
//                  `restore-analyze query --query outcomes --json` emits for a
//                  compacted copy of the same trace, so the two tools can be
//                  diffed directly.
//
// Exit status: 0 healthy, 3 when any manifest records quarantined shards or
// quarantined fleet nodes (so scripts notice a partial campaign — or a trace
// that only completed because a sick node's shards were re-leased), 1 on I/O
// or parse errors, 2 on usage errors. With several traces the *worst* per-trace code is returned
// (quarantine outranks I/O errors: a partial campaign must never read as
// merely unreadable).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analytics/report.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "faultinject/campaign_io.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/export.hpp"
#include "faultinject/outcome.hpp"

using namespace restore;

namespace {

void print_usage() {
  std::fprintf(stderr,
               "usage: campaign_status TRACE.jsonl [TRACE2.jsonl ...] [--interval N]\n"
               "                       [--json]\n"
               "  Reports completion and outcome counts for campaign traces\n"
               "  written with --out-jsonl (manifest at TRACE.jsonl.manifest.json).\n"
               "  Several traces print one aggregate table instead of full reports.\n"
               "  --json emits the same report as one JSON document on stdout.\n");
}

void print_counts(const std::map<std::string, u64>& counts, u64 total) {
  for (const auto& [name, count] : counts) {
    std::printf("  %-12s %8llu  (%.1f%%)\n", name.c_str(),
                static_cast<unsigned long long>(count),
                total > 0 ? 100.0 * static_cast<double>(count) /
                                static_cast<double>(total)
                          : 0.0);
  }
}

// One trace/manifest pair reduced to what the aggregate table shows.
struct TraceSummary {
  std::string path;
  std::optional<faultinject::CampaignManifest> manifest;
  std::string error;     // manifest read failure ("" = readable)
  u64 done_shards = 0;
  u64 done_trials = 0;
  int exit_code = 0;     // per-trace: 0 healthy, 3 quarantined, 1 error
};

TraceSummary summarize(const std::string& trace_path) {
  TraceSummary summary;
  summary.path = trace_path;
  const auto manifest_path = faultinject::manifest_path_for(trace_path);
  try {
    summary.manifest = faultinject::read_manifest(manifest_path);
  } catch (const std::exception& e) {
    summary.error = e.what();
    summary.exit_code = 1;
    return summary;
  }
  if (!summary.manifest) {
    summary.error = "no manifest at " + manifest_path;
    summary.exit_code = 1;
    return summary;
  }
  for (const u64 trials : summary.manifest->completed_trials) {
    summary.done_trials += trials;
  }
  summary.done_shards = summary.manifest->completed.size();
  if (summary.manifest->has_quarantine() ||
      summary.manifest->has_node_quarantine()) {
    summary.exit_code = 3;
  }
  return summary;
}

std::string_view state_label(const TraceSummary& summary) {
  if (!summary.manifest) return "unreadable";
  if (summary.manifest->has_quarantine()) return "quarantined";
  if (summary.done_shards == summary.manifest->total_shards) {
    // Complete bytes, but a fleet node was benched getting there: the trace
    // is trustworthy (its shards were re-leased), the *host* is not.
    return summary.manifest->has_node_quarantine() ? "node-quarantine"
                                                   : "complete";
  }
  return "resumable";
}

// Per-fault-model outcome breakdown of one trace already on disk, classified
// by the manifest's campaign kind (uarch trials via the perfect-cfv detector
// and baseline pipeline at `interval`). Returns nullopt when the trace can't
// be read or parsed.
std::optional<std::vector<faultinject::ModelBreakdownRow>> trace_breakdown(
    const std::string& trace_path, const std::string& kind, u64 interval) {
  std::ifstream trace(trace_path);
  if (!trace) return std::nullopt;
  try {
    if (kind == "vm") {
      std::vector<faultinject::VmTrialResult> trials;
      for (auto& parsed : faultinject::read_vm_trials_jsonl(trace)) {
        trials.push_back(std::move(parsed.trial));
      }
      return faultinject::model_breakdown(trials);
    }
    std::vector<faultinject::UarchTrialRecord> trials;
    for (auto& parsed : faultinject::read_uarch_trials_jsonl(trace)) {
      trials.push_back(std::move(parsed.trial));
    }
    return faultinject::model_breakdown(trials,
                                        faultinject::DetectorModel::kPerfectCfv,
                                        faultinject::ProtectionModel::kBaseline,
                                        interval);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// Prints a breakdown, grouped by model. Single-model "single" data keeps the
// flat historical format; anything else gets one section per model.
void print_breakdown(const std::vector<faultinject::ModelBreakdownRow>& rows) {
  u64 total = 0;
  bool only_single = true;
  for (const auto& row : rows) {
    total += row.count;
    if (row.model != "single") only_single = false;
  }
  if (only_single) {
    std::map<std::string, u64> counts;
    for (const auto& row : rows) counts[row.outcome] += row.count;
    print_counts(counts, total);
    return;
  }
  std::string current;
  u64 model_total = 0;
  for (const auto& row : rows) {
    if (row.model != current) {
      current = row.model;
      model_total = 0;
      for (const auto& r : rows) {
        if (r.model == current) model_total += r.count;
      }
      std::printf("  model %s (%llu trials):\n", current.c_str(),
                  static_cast<unsigned long long>(model_total));
    }
    std::printf("    %-12s %8llu  (%.1f%%)\n", row.outcome.c_str(),
                static_cast<unsigned long long>(row.count),
                model_total > 0 ? 100.0 * static_cast<double>(row.count) /
                                      static_cast<double>(model_total)
                                : 0.0);
  }
}

// Shard-wall-clock throughput: completed trials over the summed per-shard
// wall times recorded in the manifest ("-" when no shard has finished).
std::string fmt_rate(u64 trials, u64 wall_ms_total) {
  if (wall_ms_total == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f",
                static_cast<double>(trials) * 1000.0 /
                    static_cast<double>(wall_ms_total));
  return buf;
}

// ---- --json rendering ----
//
// Built on analytics::JsonBuilder so field order, escaping, and number
// formatting match restore-analyze byte-for-byte where the documents overlap
// (the "breakdown" arrays are identical renderings of the same row type).

std::string quarantine_json(const faultinject::CampaignManifest& manifest) {
  std::vector<std::string> items;
  for (std::size_t i = 0; i < manifest.quarantined.size(); ++i) {
    items.push_back(analytics::JsonBuilder()
                        .field("shard", manifest.quarantined[i])
                        .field("workload", manifest.quarantine_workloads[i])
                        .field("attempts", manifest.quarantine_attempts[i])
                        .field("error", manifest.quarantine_errors[i])
                        .str());
  }
  return analytics::json_array(items);
}

std::string node_quarantine_json(const faultinject::CampaignManifest& manifest) {
  std::vector<std::string> items;
  for (std::size_t i = 0; i < manifest.node_quarantined.size(); ++i) {
    items.push_back(analytics::JsonBuilder()
                        .field("node", manifest.node_quarantined[i])
                        .field("faults", manifest.node_faults[i])
                        .field("error", manifest.node_errors[i])
                        .str());
  }
  return analytics::json_array(items);
}

// One trace rendered as a JSON object. Adds the trace's breakdown rows into
// `fleet` (when non-null) for the aggregate document, and widens `worst` to
// this trace's per-trace exit code (unreadable traces count as errors here,
// matching the text mode's stderr + exit-1 behaviour).
std::string trace_json(
    const TraceSummary& summary, u64 interval,
    std::map<std::pair<std::string, std::string>, u64>* fleet, int* worst) {
  analytics::JsonBuilder doc;
  doc.field("trace", summary.path);
  if (!summary.manifest) {
    doc.field("state", state_label(summary));
    doc.field("error", summary.error);
    doc.field("exit", static_cast<u64>(summary.exit_code));
    *worst = std::max(*worst, summary.exit_code);
    return doc.str();
  }
  const auto& manifest = *summary.manifest;
  char hash[17];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(manifest.config_hash));
  u64 wall_ms = 0;
  for (const u64 ms : manifest.wall_ms) wall_ms += ms;
  doc.field("kind", manifest.kind)
      .field("seed", manifest.seed)
      .field("config_hash", std::string_view(hash))
      .field("shard_trials", manifest.shard_trials)
      .field("shards_done", summary.done_shards)
      .field("shards_total", manifest.total_shards)
      .field("trials_done", summary.done_trials)
      .field("trials_total", manifest.total_trials)
      .field("wall_ms", wall_ms)
      .field("state", state_label(summary));
  doc.raw("quarantined", quarantine_json(manifest));
  doc.raw("node_quarantined", node_quarantine_json(manifest));
  int exit_code = summary.exit_code;
  if (const auto rows = trace_breakdown(summary.path, manifest.kind, interval)) {
    doc.raw("breakdown", analytics::breakdown_json(*rows));
    if (fleet) {
      for (const auto& row : *rows) {
        (*fleet)[{row.model, row.outcome}] += row.count;
      }
    }
  } else {
    doc.field("error", "trace unreadable, outcome breakdown omitted");
    exit_code = std::max(exit_code, 1);
  }
  doc.field("exit", static_cast<u64>(exit_code));
  *worst = std::max(*worst, exit_code);
  return doc.str();
}

int report_one_json(const std::string& trace_path, u64 interval) {
  int worst = 0;
  std::printf("%s\n", trace_json(summarize(trace_path), interval, nullptr,
                                 &worst).c_str());
  return worst;
}

int report_many_json(const std::vector<std::string>& paths, u64 interval) {
  std::vector<std::string> items;
  std::map<std::pair<std::string, std::string>, u64> fleet_counts;
  u64 total_shards_done = 0, total_shards = 0, total_quarantined = 0;
  u64 total_trials_done = 0, total_trials = 0, complete_jobs = 0;
  u64 total_wall_ms = 0;
  int worst = 0;
  for (const auto& path : paths) {
    const auto summary = summarize(path);
    items.push_back(trace_json(summary, interval, &fleet_counts, &worst));
    if (!summary.manifest) continue;
    const auto& manifest = *summary.manifest;
    total_shards_done += summary.done_shards;
    total_shards += manifest.total_shards;
    total_quarantined += manifest.quarantined.size();
    total_trials_done += summary.done_trials;
    total_trials += manifest.total_trials;
    for (const u64 ms : manifest.wall_ms) total_wall_ms += ms;
    if (summary.done_shards == manifest.total_shards) ++complete_jobs;
  }
  std::vector<faultinject::ModelBreakdownRow> rows;
  for (const auto& [key, count] : fleet_counts) {
    rows.push_back({key.first, key.second, count});
  }
  analytics::JsonBuilder totals;
  totals.field("jobs", static_cast<u64>(paths.size()))
      .field("complete_jobs", complete_jobs)
      .field("shards_done", total_shards_done)
      .field("shards_total", total_shards)
      .field("quarantined_shards", total_quarantined)
      .field("trials_done", total_trials_done)
      .field("trials_total", total_trials)
      .field("wall_ms", total_wall_ms);
  analytics::JsonBuilder doc;
  doc.raw("traces", analytics::json_array(items));
  doc.raw("totals", totals.str());
  doc.raw("breakdown", analytics::breakdown_json(rows));
  doc.field("worst_exit", static_cast<u64>(worst));
  std::printf("%s\n", doc.str().c_str());
  return worst;
}

// Aggregate mode: one row per trace, a totals line, a fleet-wide per-model
// outcome breakdown over every readable trace, worst exit code.
int report_many(const std::vector<std::string>& paths, u64 interval) {
  TextTable table({"trace", "kind", "shards", "quarantined", "trials",
                   "trials/s", "state", "exit"});
  u64 total_shards_done = 0, total_shards = 0, total_quarantined = 0;
  u64 total_trials_done = 0, total_trials = 0, complete_jobs = 0;
  u64 total_wall_ms = 0;
  std::map<std::pair<std::string, std::string>, u64> fleet_counts;
  int worst = 0;
  for (const auto& path : paths) {
    const auto summary = summarize(path);
    worst = std::max(worst, summary.exit_code);
    if (!summary.manifest) {
      table.add_row({summary.path, "?", "-", "-", "-", "-",
                     std::string(state_label(summary)),
                     std::to_string(summary.exit_code)});
      std::fprintf(stderr, "campaign_status: %s: %s\n", summary.path.c_str(),
                   summary.error.c_str());
      continue;
    }
    const auto& manifest = *summary.manifest;
    total_shards_done += summary.done_shards;
    total_shards += manifest.total_shards;
    total_quarantined += manifest.quarantined.size();
    total_trials_done += summary.done_trials;
    total_trials += manifest.total_trials;
    u64 wall_ms = 0;
    for (const u64 ms : manifest.wall_ms) wall_ms += ms;
    total_wall_ms += wall_ms;
    if (summary.done_shards == manifest.total_shards) ++complete_jobs;
    if (const auto rows = trace_breakdown(path, manifest.kind, interval)) {
      for (const auto& row : *rows) {
        fleet_counts[{row.model, row.outcome}] += row.count;
      }
    } else {
      std::fprintf(stderr, "campaign_status: %s: trace unreadable, outcome "
                   "breakdown omitted\n", path.c_str());
    }
    table.add_row(
        {summary.path, manifest.kind,
         TextTable::fmt_u(summary.done_shards) + "/" +
             TextTable::fmt_u(manifest.total_shards),
         TextTable::fmt_u(manifest.quarantined.size()),
         TextTable::fmt_u(summary.done_trials) + "/" +
             TextTable::fmt_u(manifest.total_trials),
         fmt_rate(summary.done_trials, wall_ms),
         std::string(state_label(summary)), std::to_string(summary.exit_code)});
  }
  table.add_row({"total", "",
                 TextTable::fmt_u(total_shards_done) + "/" +
                     TextTable::fmt_u(total_shards),
                 TextTable::fmt_u(total_quarantined),
                 TextTable::fmt_u(total_trials_done) + "/" +
                     TextTable::fmt_u(total_trials),
                 fmt_rate(total_trials_done, total_wall_ms),
                 "", std::to_string(worst)});
  std::fputs(table.render().c_str(), stdout);
  if (!fleet_counts.empty()) {
    std::vector<faultinject::ModelBreakdownRow> rows;
    for (const auto& [key, count] : fleet_counts) {
      rows.push_back({key.first, key.second, count});
    }
    std::printf("outcomes on disk (all traces, uarch classified "
                "perfect-cfv/baseline):\n");
    print_breakdown(rows);
  }
  std::printf("%zu job(s): %llu complete, %llu quarantined shard(s), worst exit %d\n",
              paths.size(), static_cast<unsigned long long>(complete_jobs),
              static_cast<unsigned long long>(total_quarantined), worst);
  return worst;
}

int report_one(const std::string& trace_path, u64 interval) {
  const auto summary = summarize(trace_path);
  if (!summary.manifest) {
    std::fprintf(stderr, "campaign_status: %s\n", summary.error.c_str());
    return 1;
  }
  const auto& manifest = *summary.manifest;
  double total_ms = 0, slowest_ms = 0;
  for (const u64 ms : manifest.wall_ms) {
    total_ms += static_cast<double>(ms);
    slowest_ms = std::max(slowest_ms, static_cast<double>(ms));
  }
  const u64 done_trials = summary.done_trials;
  const u64 done_shards = summary.done_shards;

  std::printf("campaign: kind=%s seed=%llu config_hash=%016llx shard_trials=%llu\n",
              manifest.kind.c_str(),
              static_cast<unsigned long long>(manifest.seed),
              static_cast<unsigned long long>(manifest.config_hash),
              static_cast<unsigned long long>(manifest.shard_trials));
  std::printf("progress: %llu/%llu shards, %llu/%llu trials (%.1f%%)%s\n",
              static_cast<unsigned long long>(done_shards),
              static_cast<unsigned long long>(manifest.total_shards),
              static_cast<unsigned long long>(done_trials),
              static_cast<unsigned long long>(manifest.total_trials),
              manifest.total_trials > 0
                  ? 100.0 * static_cast<double>(done_trials) /
                        static_cast<double>(manifest.total_trials)
                  : 0.0,
              done_shards == manifest.total_shards
                  ? "  [complete]"
                  : manifest.has_quarantine() ? "  [partial: quarantined shards]"
                                              : "  [resumable]");
  if (manifest.has_quarantine()) {
    std::printf("quarantined shards (%zu) — not completed; a --resume re-attempts "
                "them:\n",
                manifest.quarantined.size());
    for (std::size_t i = 0; i < manifest.quarantined.size(); ++i) {
      std::printf("  shard %llu (%s): %llu attempts, last error: %s\n",
                  static_cast<unsigned long long>(manifest.quarantined[i]),
                  manifest.quarantine_workloads[i].c_str(),
                  static_cast<unsigned long long>(manifest.quarantine_attempts[i]),
                  manifest.quarantine_errors[i].c_str());
    }
  }
  if (manifest.has_node_quarantine()) {
    std::printf("quarantined fleet nodes (%zu) — shards were re-leased to "
                "healthy nodes:\n",
                manifest.node_quarantined.size());
    for (std::size_t i = 0; i < manifest.node_quarantined.size(); ++i) {
      std::printf("  node %s: %llu transport faults, last error: %s\n",
                  manifest.node_quarantined[i].c_str(),
                  static_cast<unsigned long long>(manifest.node_faults[i]),
                  manifest.node_errors[i].c_str());
    }
  }
  if (done_shards > 0) {
    const double mean_ms = total_ms / static_cast<double>(done_shards);
    std::printf("shards: mean %.1f ms, slowest %.1f ms, %.1f trials/sec overall\n",
                mean_ms, slowest_ms,
                total_ms > 0 ? 1000.0 * static_cast<double>(done_trials) / total_ms
                             : 0.0);
  }

  std::ifstream trace(trace_path);
  if (!trace) {
    std::fprintf(stderr, "campaign_status: cannot open %s\n", trace_path.c_str());
    return 1;
  }
  trace.close();
  const auto rows = trace_breakdown(trace_path, manifest.kind, interval);
  if (!rows) {
    std::fprintf(stderr, "campaign_status: bad trace: %s\n", trace_path.c_str());
    return 1;
  }
  u64 lines = 0;
  for (const auto& row : *rows) lines += row.count;

  std::printf("trials on disk: %llu%s\n",
              static_cast<unsigned long long>(lines),
              manifest.kind == "uarch"
                  ? "  (classified: perfect-cfv detector, baseline pipeline)"
                  : "");
  print_breakdown(*rows);
  // Non-zero for quarantine so CI and shell scripts can't mistake a partial
  // campaign (or a fleet run that benched a node) for a healthy one.
  return manifest.has_quarantine() || manifest.has_node_quarantine() ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has_flag("help") || args.positional().empty()) {
    print_usage();
    return args.has_flag("help") ? 0 : 2;
  }
  const u64 interval = args.value_u64("interval", 100);
  const bool json = args.has_flag("json");
  if (args.positional().size() > 1) {
    return json ? report_many_json(args.positional(), interval)
                : report_many(args.positional(), interval);
  }
  return json ? report_one_json(args.positional().front(), interval)
              : report_one(args.positional().front(), interval);
}
