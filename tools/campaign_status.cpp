// campaign_status — inspect a streamed injection-campaign trace.
//
// Reads the JSONL trial trace plus its sidecar manifest and reports how far
// the campaign got (completed shards / trials, per-shard wall-time stats) and
// what it found so far (outcome counts over the trials already on disk), so
// an interrupted paper-scale run can be checked before deciding to --resume.
//
// Usage: campaign_status TRACE.jsonl [--interval N]
//   --interval N   checkpoint interval used to classify uarch trials
//                  (default 100, matching the figure drivers' summary lines)
//
// Exit status: 0 healthy, 3 when the manifest records quarantined shards
// (so scripts notice a partial campaign), 1 on I/O or parse errors, 2 on
// usage errors.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "common/cli.hpp"
#include "faultinject/campaign_io.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/outcome.hpp"

using namespace restore;

namespace {

void print_usage() {
  std::fprintf(stderr,
               "usage: campaign_status TRACE.jsonl [--interval N]\n"
               "  Reports completion and outcome counts for a campaign trace\n"
               "  written with --out-jsonl (manifest at TRACE.jsonl.manifest.json).\n");
}

void print_counts(const std::map<std::string, u64>& counts, u64 total) {
  for (const auto& [name, count] : counts) {
    std::printf("  %-12s %8llu  (%.1f%%)\n", name.c_str(),
                static_cast<unsigned long long>(count),
                total > 0 ? 100.0 * static_cast<double>(count) /
                                static_cast<double>(total)
                          : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has_flag("help") || args.positional().empty()) {
    print_usage();
    return args.has_flag("help") ? 0 : 2;
  }
  const std::string trace_path = args.positional().front();
  const u64 interval = args.value_u64("interval", 100);

  const auto manifest_path = faultinject::manifest_path_for(trace_path);
  std::optional<faultinject::CampaignManifest> manifest;
  try {
    manifest = faultinject::read_manifest(manifest_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_status: %s\n", e.what());
    return 1;
  }
  if (!manifest) {
    std::fprintf(stderr, "campaign_status: no manifest at %s\n",
                 manifest_path.c_str());
    return 1;
  }

  u64 done_trials = 0;
  double total_ms = 0, slowest_ms = 0;
  for (std::size_t i = 0; i < manifest->completed.size(); ++i) {
    done_trials += manifest->completed_trials[i];
    total_ms += static_cast<double>(manifest->wall_ms[i]);
    slowest_ms = std::max(slowest_ms, static_cast<double>(manifest->wall_ms[i]));
  }
  const u64 done_shards = manifest->completed.size();

  std::printf("campaign: kind=%s seed=%llu config_hash=%016llx shard_trials=%llu\n",
              manifest->kind.c_str(),
              static_cast<unsigned long long>(manifest->seed),
              static_cast<unsigned long long>(manifest->config_hash),
              static_cast<unsigned long long>(manifest->shard_trials));
  std::printf("progress: %llu/%llu shards, %llu/%llu trials (%.1f%%)%s\n",
              static_cast<unsigned long long>(done_shards),
              static_cast<unsigned long long>(manifest->total_shards),
              static_cast<unsigned long long>(done_trials),
              static_cast<unsigned long long>(manifest->total_trials),
              manifest->total_trials > 0
                  ? 100.0 * static_cast<double>(done_trials) /
                        static_cast<double>(manifest->total_trials)
                  : 0.0,
              done_shards == manifest->total_shards
                  ? "  [complete]"
                  : manifest->has_quarantine() ? "  [partial: quarantined shards]"
                                               : "  [resumable]");
  if (manifest->has_quarantine()) {
    std::printf("quarantined shards (%zu) — not completed; a --resume re-attempts "
                "them:\n",
                manifest->quarantined.size());
    for (std::size_t i = 0; i < manifest->quarantined.size(); ++i) {
      std::printf("  shard %llu (%s): %llu attempts, last error: %s\n",
                  static_cast<unsigned long long>(manifest->quarantined[i]),
                  manifest->quarantine_workloads[i].c_str(),
                  static_cast<unsigned long long>(manifest->quarantine_attempts[i]),
                  manifest->quarantine_errors[i].c_str());
    }
  }
  if (done_shards > 0) {
    const double mean_ms = total_ms / static_cast<double>(done_shards);
    std::printf("shards: mean %.1f ms, slowest %.1f ms, %.1f trials/sec overall\n",
                mean_ms, slowest_ms,
                total_ms > 0 ? 1000.0 * static_cast<double>(done_trials) / total_ms
                             : 0.0);
  }

  std::ifstream trace(trace_path);
  if (!trace) {
    std::fprintf(stderr, "campaign_status: cannot open %s\n", trace_path.c_str());
    return 1;
  }
  std::map<std::string, u64> counts;
  u64 lines = 0;
  try {
    if (manifest->kind == "vm") {
      for (const auto& parsed : faultinject::read_vm_trials_jsonl(trace)) {
        ++lines;
        counts[std::string(to_string(parsed.trial.outcome))]++;
      }
    } else {
      for (const auto& parsed : faultinject::read_uarch_trials_jsonl(trace)) {
        ++lines;
        const auto outcome = faultinject::classify_trial(
            parsed.trial, faultinject::DetectorModel::kPerfectCfv,
            faultinject::ProtectionModel::kBaseline, interval);
        counts[std::string(to_string(outcome))]++;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign_status: bad trace line: %s\n", e.what());
    return 1;
  }

  std::printf("trials on disk: %llu%s\n",
              static_cast<unsigned long long>(lines),
              manifest->kind == "uarch"
                  ? "  (classified: perfect-cfv detector, baseline pipeline)"
                  : "");
  print_counts(counts, lines);
  // Non-zero for quarantine so CI and shell scripts can't mistake a partial
  // campaign for a healthy one.
  return manifest->has_quarantine() ? 3 : 0;
}
