// pipeview: run a workload (or an .s file) on the detailed core and print a
// pipeline-utilisation profile — occupancy means, retire-slot usage, stall
// attribution, and an ASCII occupancy strip chart. Optionally dumps the full
// timeline as CSV.
//
//   $ pipeview gzip
//   $ pipeview path/to/program.s --chart rob --timeline-csv occ.csv
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "isa/assembler.hpp"
#include "uarch/core.hpp"
#include "uarch/pipeline_stats.hpp"
#include "workloads/workloads.hpp"

using namespace restore;

namespace {

isa::Program resolve_program(const std::string& arg) {
  if (arg.size() > 2 && arg.substr(arg.size() - 2) == ".s") {
    std::ifstream in(arg);
    if (!in) throw std::runtime_error("cannot open " + arg);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return isa::assemble(buffer.str(), {}, arg);
  }
  return workloads::by_name(arg).program;
}

// An ASCII strip chart: occupancy of one structure over time, downsampled to
// 72 columns, 8 intensity levels.
void print_chart(const uarch::PipelineStats& stats, const std::string& which,
                 std::ostream& unused) {
  (void)unused;
  std::ostringstream csv;
  stats.write_timeline_csv(csv);
  std::istringstream in(csv.str());
  std::string line;
  std::getline(in, line);  // header
  std::istringstream header(line);
  std::string col;
  int column = -1, idx = 0;
  while (std::getline(header, col, ',')) {
    if (col == which) column = idx;
    ++idx;
  }
  if (column < 0) {
    std::printf("unknown chart column '%s' (use rob/sched/fq/ldq/stq/exec)\n",
                which.c_str());
    return;
  }
  std::vector<unsigned> values;
  while (std::getline(in, line)) {
    std::istringstream cells(line);
    std::string cell;
    for (int i = 0; i <= column; ++i) std::getline(cells, cell, ',');
    values.push_back(static_cast<unsigned>(std::stoul(cell)));
  }
  if (values.empty()) return;
  const unsigned peak = *std::max_element(values.begin(), values.end());
  constexpr int kColumns = 72;
  const char* shades = " .:-=+*#@";
  std::string strip;
  for (int c = 0; c < kColumns; ++c) {
    const std::size_t lo = values.size() * c / kColumns;
    const std::size_t hi = std::max(lo + 1, values.size() * (c + 1) / kColumns);
    unsigned acc = 0;
    for (std::size_t i = lo; i < hi && i < values.size(); ++i) {
      acc = std::max(acc, values[i]);
    }
    const int level = peak ? static_cast<int>(8.0 * acc / peak) : 0;
    strip.push_back(shades[std::clamp(level, 0, 8)]);
  }
  std::printf("%s occupancy over time (peak %u):\n[%s]\n", which.c_str(), peak,
              strip.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: pipeview <workload|program.s> [--max N] [--chart col] "
                 "[--timeline-csv file]\n"
                 "workloads: bzip2 gap gcc gzip mcf parser vortex crafty twolf\n");
    return 2;
  }

  isa::Program program;
  try {
    program = resolve_program(args.positional()[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pipeview: %s\n", e.what());
    return 1;
  }

  uarch::Core core(program);
  uarch::PipelineStats stats;
  stats.enable_timeline(static_cast<unsigned>(args.value_u64("stride", 16)));
  const u64 budget = args.value_u64("max", 100'000'000);
  while (core.running() && core.cycle_count() < budget) {
    core.cycle();
    stats.observe(core);
  }

  std::printf("%s\n", stats.report().c_str());
  print_chart(stats, args.value("chart").value_or("rob"), std::cout);

  if (const auto path = args.value("timeline-csv")) {
    std::ofstream out(*path);
    stats.write_timeline_csv(out);
    std::printf("wrote timeline to %s\n", path->c_str());
  }
  return 0;
}
