// sra_run: assemble and execute an SRA-64 source file on any of the three
// machines in the library.
//
//   $ sra_run program.s                        # architectural VM
//   $ sra_run program.s --machine core         # detailed out-of-order core
//   $ sra_run program.s --machine restore --interval 100 --policy delayed
//                                              # full ReStore
//
// Options: --max N (instruction/cycle budget), --stats, --trace (VM only).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/cli.hpp"
#include "core/restore_core.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "uarch/core.hpp"
#include "vm/vm.hpp"

using namespace restore;

namespace {

void print_output(const std::string& output) {
  std::printf("output (%zu bytes):", output.size());
  for (const char c : output) {
    std::printf(" %02x", static_cast<unsigned char>(c));
  }
  std::printf("\n");
}

int run_vm(const isa::Program& program, u64 budget, bool trace) {
  vm::Vm vm(program);
  if (trace) {
    while (vm.running() && vm.retired_count() < budget) {
      const u64 pc = vm.pc();
      const auto rec = vm.step();
      if (!rec) break;
      std::printf("%08llx: %s\n", static_cast<unsigned long long>(pc),
                  isa::disassemble(rec->insn).c_str());
    }
  } else {
    vm.run(budget);
  }
  std::printf("vm: status=%d retired=%llu fault=%s\n",
              static_cast<int>(vm.status()),
              static_cast<unsigned long long>(vm.retired_count()),
              std::string(isa::to_string(vm.fault())).c_str());
  print_output(vm.output());
  return vm.status() == vm::Vm::Status::kHalted ? 0 : 1;
}

int run_core(const isa::Program& program, u64 budget, bool stats) {
  uarch::Core machine(program);
  machine.run(budget);
  std::printf("core: status=%d cycles=%llu retired=%llu ipc=%.2f fault=%s\n",
              static_cast<int>(machine.status()),
              static_cast<unsigned long long>(machine.cycle_count()),
              static_cast<unsigned long long>(machine.retired_count()),
              machine.cycle_count()
                  ? static_cast<double>(machine.retired_count()) /
                        machine.cycle_count()
                  : 0.0,
              std::string(isa::to_string(machine.fault())).c_str());
  if (stats) {
    const auto& c = machine.counters();
    std::printf("  cond branches=%llu mispredicts=%llu (%.2f%%) "
                "hiconf-mis=%llu l1d-misses=%llu flushes=%llu\n",
                static_cast<unsigned long long>(c.cond_branches),
                static_cast<unsigned long long>(c.cond_mispredicts),
                c.cond_branches ? 100.0 * c.cond_mispredicts / c.cond_branches : 0.0,
                static_cast<unsigned long long>(c.high_conf_mispredicts),
                static_cast<unsigned long long>(c.l1d_misses),
                static_cast<unsigned long long>(c.flushes));
  }
  print_output(machine.output());
  return machine.status() == uarch::Core::Status::kHalted ? 0 : 1;
}

int run_restore(const isa::Program& program, u64 budget, const CliArgs& args,
                bool stats) {
  core::ReStoreOptions options;
  options.checkpoint_interval = args.value_u64("interval", 100);
  if (args.value("policy").value_or("imm") == "delayed") {
    options.policy = core::RollbackPolicy::kDelayed;
  }
  core::ReStoreCore machine(program, options);
  machine.run(budget);
  std::printf("restore: status=%d cycles=%llu retired=%llu fault=%s\n",
              static_cast<int>(machine.status()),
              static_cast<unsigned long long>(machine.cycle_count()),
              static_cast<unsigned long long>(machine.retired_count()),
              std::string(isa::to_string(machine.architected_fault())).c_str());
  if (stats) {
    const auto& s = machine.stats();
    std::printf("  checkpoints=%llu rollbacks=%llu (exc=%llu br=%llu wd=%llu) "
                "reexec=%llu detected-errors=%llu\n",
                static_cast<unsigned long long>(
                    machine.checkpoints().checkpoints_taken()),
                static_cast<unsigned long long>(s.rollbacks),
                static_cast<unsigned long long>(s.exception_rollbacks),
                static_cast<unsigned long long>(s.branch_rollbacks),
                static_cast<unsigned long long>(s.watchdog_rollbacks),
                static_cast<unsigned long long>(s.reexecuted_insns),
                static_cast<unsigned long long>(s.detected_errors));
  }
  print_output(machine.output());
  return machine.status() == core::ReStoreCore::Status::kHalted ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: sra_run <program.s> [--machine vm|core|restore] "
                 "[--max N] [--interval N] [--policy imm|delayed] [--stats] "
                 "[--trace]\n");
    return 2;
  }
  std::ifstream in(args.positional()[0]);
  if (!in) {
    std::fprintf(stderr, "sra_run: cannot open %s\n", args.positional()[0].c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  isa::Program program;
  try {
    program = isa::assemble(buffer.str(), {}, args.positional()[0]);
  } catch (const isa::AsmError& e) {
    std::fprintf(stderr, "sra_run: %s: %s\n", args.positional()[0].c_str(), e.what());
    return 1;
  }

  const u64 budget = args.value_u64("max", 100'000'000);
  const std::string machine = args.value("machine").value_or("vm");
  const bool stats = args.has_flag("stats");
  if (machine == "vm") return run_vm(program, budget, args.has_flag("trace"));
  if (machine == "core") return run_core(program, budget, stats);
  if (machine == "restore") return run_restore(program, budget, args, stats);
  std::fprintf(stderr, "sra_run: unknown machine '%s'\n", machine.c_str());
  return 2;
}
