// restore-fleet — multi-node campaign coordinator.
//
// Decomposes a campaign into its deterministic shard plan and leases shards
// to remote fleet workers (restored --fleet-worker) over TCP, with lease
// deadlines, work stealing, bounded connect retry, and per-node quarantine.
// The merged trace (and its resume manifest) is byte-identical to the
// single-machine batch run at any node count, under any interleaving of node
// crashes, re-leases, and --resume.
//
//   restore-fleet --nodes 10.0.0.1:7701,10.0.0.2:7701 --kind vm
//       --seed 24029 --out fleet.jsonl  (one command line)
//
// Flags:
//   --nodes A,B,C          worker addresses, host:port (required)
//   --out PATH             merged trace path (required)
//   --resume               reuse completed shards from PATH's manifest
//   --kind vm|uarch --seed N --trials N --shard-trials N --workloads a,b,c
//   --low32 --model result|register --latches-only
//   --fault-model single|multi|burst|set|targeted|rate --fault-bits K
//   --burst-entries N --fault-target load|store --vdd-mv MV --freq-mhz MHZ
//   --upset-ppm PPM        the campaign spec (same grammar as restorectl
//                          submit; identity-class flags feed config_hash)
//   --connect-timeout-ms N bounded connect per attempt (default 2000)
//   --node-retries N       extra connect attempts per lease (default 2)
//   --retry-backoff-ms N   base backoff, doubles per attempt (default 50)
//   --lease-deadline-ms N  whole-lease receive deadline (default 60000)
//   --node-faults-max N    transport faults before node quarantine (default 3)
//   --steal-after-ms N     lease age before idle nodes steal it (default 10000)
//   --shard-lease-attempts N
//                          leases per shard before shard quarantine (default 3)
//   --max-shards N         stop after N fresh commits (interrupt hook)
//   --quiet                no coordinator log lines
//
// Exit code: 0 complete, 3 quarantine (shards or nodes), 130 stopped/cut,
// 1 on a coordinator failure.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/shutdown.hpp"
#include "service/fleet_coordinator.hpp"

namespace {

using namespace restore;

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : csv) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

service::JobSpec spec_from_cli(const CliArgs& args) {
  service::JobSpec spec;
  spec.kind = args.value("kind").value_or("vm");
  spec.seed = resolve_seed(args, spec.seed);
  spec.trials = resolve_trial_count(args, 0);
  spec.shard_trials = args.value_u64("shard-trials", 0);
  if (const auto names = args.value("workloads")) {
    spec.workloads = split_csv(*names);
  }
  spec.low32 = args.has_flag("low32");
  spec.model = args.value("model").value_or("result");
  spec.latches_only = args.has_flag("latches-only");
  spec.fault_model = resolve_fault_model_name(args).value_or("single");
  spec.fault_bits = args.value_u64("fault-bits", spec.fault_bits);
  spec.burst_entries = args.value_u64("burst-entries", spec.burst_entries);
  spec.fault_target = args.value("fault-target").value_or(spec.fault_target);
  spec.vdd_mv = args.value_u64("vdd-mv", spec.vdd_mv);
  spec.freq_mhz = args.value_u64("freq-mhz", spec.freq_mhz);
  spec.upset_ppm = args.value_u64("upset-ppm", spec.upset_ppm);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  service::FleetOptions opts;
  opts.nodes = split_csv(args.value("nodes").value_or(""));
  opts.out_jsonl = args.value("out").value_or("");
  opts.resume = args.has_flag("resume");
  opts.connect_timeout_ms = args.value_u64("connect-timeout-ms", 2'000);
  opts.node_retries = args.value_u64("node-retries", 2);
  opts.retry_backoff_ms = args.value_u64("retry-backoff-ms", 50);
  opts.lease_deadline_ms = args.value_u64("lease-deadline-ms", 60'000);
  opts.node_faults_max = args.value_u64("node-faults-max", 3);
  opts.steal_after_ms = args.value_u64("steal-after-ms", 10'000);
  opts.shard_lease_attempts = args.value_u64("shard-lease-attempts", 3);
  opts.max_shards = args.value_u64("max-shards", 0);
  opts.quiet = args.has_flag("quiet");

  install_shutdown_signal_handlers();
  opts.stop_flag = shutdown_flag();

  try {
    service::FleetTelemetry telemetry;
    const int code =
        service::run_fleet_campaign(spec_from_cli(args), opts, &telemetry);
    for (const auto& node : telemetry.nodes) {
      std::printf("node %-21s shards %llu (stolen %llu, cached %llu)  "
                  "faults %llu%s%s%s\n",
                  node.address.c_str(),
                  static_cast<unsigned long long>(node.shards_committed),
                  static_cast<unsigned long long>(node.stolen_commits),
                  static_cast<unsigned long long>(node.cache_hits),
                  static_cast<unsigned long long>(node.faults),
                  node.quarantined ? "  QUARANTINED" : "",
                  node.last_error.empty() ? "" : ": ",
                  node.last_error.c_str());
    }
    std::printf("fleet %s: %llu/%llu shards, %llu trials -> %s (exit %d)\n",
                telemetry.complete ? "complete"
                : telemetry.stopped ? "stopped"
                                    : "partial",
                static_cast<unsigned long long>(telemetry.shards_done),
                static_cast<unsigned long long>(telemetry.shards_total),
                static_cast<unsigned long long>(telemetry.trials_done),
                opts.out_jsonl.c_str(), code);
    return code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "restore-fleet: %s\n", e.what());
    return 1;
  }
}
