#!/usr/bin/env python3
"""simlint -- determinism & state-coverage static analysis for the ReStore simulator.

Every result this repo reports rests on three invariants:

  1. Campaigns are deterministic: byte-identical traces at any worker count,
     across interrupt+resume, and across platforms.
  2. The StateRegistry enumerates the *complete* injectable state surface, so
     fig4-style denominators (paper section 4.2, ~46k bits) are trustworthy.
  3. Shared state crossing worker threads and serialized state crossing the
     fleet wire stay consistent: every guarded member is annotated for
     Clang's thread-safety analysis, and every wire/trace schema surface
     (MessageType, JSONL keys) stays in sync with its readers and tests.

simlint checks all three statically, with seven rule families:

  DET  (nondeterminism)   std::random_device / rand / wall-clock reads /
                          getenv outside the CLI layer / standard-library
                          distributions (implementation-defined sequences) /
                          uninitialized members of aggregate payload structs.
                          Inside the *simulated* paths (det.sim_paths, the
                          vm/uarch machine models) additionally: host sleeps
                          and socket/IO syscalls (DET-SLEEP / DET-SOCKET) —
                          simulated time advances by cycle ticks and all
                          networking belongs to the service layer, which is
                          deliberately outside sim_paths.
  ITER (iteration order)  iteration over std::unordered_* containers and
                          pointer-keyed ordered containers anywhere results
                          can feed the trace/stats/export layers.
  COV  (registry cover)   cross-checks state_registry.cpp registrations
                          against the Core/payload-struct member declarations:
                          unregistered state, width/extent mismatches, dead
                          accessors, duplicate registrations, stale excludes.
  ID   (campaign identity) every CLI flag and environment override must be
                          classified (identity-hash / identity-manifest /
                          presentation / analysis); identity-relevant inputs
                          must demonstrably feed config_hash or the manifest
                          comparison, so campaign identity can never silently
                          drift.
  PERF (hot-path alloc)   allocation discipline in the declared trial
                          inner-loop files (perf.hot_paths): naked `new`,
                          make_unique/make_shared and whole-container copies
                          run once per trial — hundreds of thousands of
                          times per campaign — so each must be hoisted,
                          amortised (arena/cache), or carry an inline
                          allow() ledger entry explaining why it is cold.
  CONC (lock discipline)  mutex-owning classes with mutable members missing
                          RESTORE_GUARDED_BY annotations (the clang thread-
                          safety analysis only enforces what is annotated),
                          manual .lock()/.unlock() outside the RAII wrapper
                          types, and predicate-less condition-variable waits;
                          deliberate exceptions live in the [[conc.exclude]]
                          ledger with a mandatory reason.
  SCHEMA (wire drift)     cross-checks the MessageType enum against
                          kMessageTypeCount, the kTypeNames wire-name table,
                          the encode/decode switch arms, and the round-trip
                          protocol test, plus JSONL key symmetry between each
                          campaign_io writer and its paired reader.

The tool is engine-agnostic by design: when libclang's python bindings are
available they could replace the lexical engine, but the default engine is a
dependency-free comment/string-aware scanner so the lint runs in any
environment that has Python 3.11+ (tomllib). File discovery prefers the
compile_commands.json database (written by CMake with
CMAKE_EXPORT_COMPILE_COMMANDS=ON) and falls back to globbing the configured
roots.

Suppression: a line containing `simlint: allow(RULE-ID[, RULE-ID...]) -- reason`
suppresses those rules on that line and the next. The reason is mandatory.

Exit status: 0 clean, 1 findings, 2 configuration/internal error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from dataclasses import dataclass, field

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
    tomllib = None

# ---------------------------------------------------------------------------
# findings & suppression
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    path: str  # repo-relative
    line: int  # 1-based; 0 = file-level
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


ALLOW_RE = re.compile(r"simlint:\s*allow\(([A-Z0-9\-, ]+)\)\s*--\s*\S")


def allowed_rules_by_line(raw_text: str) -> dict[int, set[str]]:
    """Map line -> rules suppressed on that line (and the following line)."""
    allowed: dict[int, set[str]] = {}
    for i, line in enumerate(raw_text.splitlines(), start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        allowed.setdefault(i, set()).update(rules)
        allowed.setdefault(i + 1, set()).update(rules)
    return allowed


# ---------------------------------------------------------------------------
# lexical engine: comment/string-aware scrubbing
# ---------------------------------------------------------------------------


def scrub(text: str, keep_strings: bool) -> str:
    """Blank comments (and string/char contents unless keep_strings) with
    spaces, preserving line structure so regex matches carry line numbers."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_C, BLOCK_C, STR, CHR, RAWSTR = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_C
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_C
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = RAWSTR
                    out.append(" " * m.end())
                    i += m.end()
                    continue
            if c == '"':
                state = STR
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = CHR
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == LINE_C:
            if c == "\n":
                state = NORMAL
                out.append(c)
            elif c == "\\" and nxt == "\n":
                out.append(" \n")
                i += 1
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK_C:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
            i += 1
        elif state == STR:
            if c == "\\" and nxt:
                out.append(c + nxt if keep_strings else "  ")
                i += 2
                continue
            if c == '"':
                state = NORMAL
                out.append(c)
            elif c == "\n":  # unterminated; bail to normal
                state = NORMAL
                out.append(c)
            else:
                out.append(c if keep_strings else " ")
            i += 1
        elif state == CHR:
            if c == "\\" and nxt:
                out.append(c + nxt if keep_strings else "  ")
                i += 2
                continue
            if c == "'":
                state = NORMAL
                out.append(c)
            elif c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(c if keep_strings else " ")
            i += 1
        else:  # RAWSTR
            if text.startswith(raw_delim, i):
                state = NORMAL
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
                continue
            out.append(c if c == "\n" else (c if keep_strings else " "))
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


@dataclass
class SourceFile:
    path: str  # repo-relative, '/'-separated
    raw: str
    code: str = ""  # comments stripped, strings blanked
    code_str: str = ""  # comments stripped, strings kept
    allowed: dict[int, set[str]] = field(default_factory=dict)

    def __post_init__(self):
        self.code = scrub(self.raw, keep_strings=False)
        self.code_str = scrub(self.raw, keep_strings=True)
        self.allowed = allowed_rules_by_line(self.raw)


# ---------------------------------------------------------------------------
# config & file discovery
# ---------------------------------------------------------------------------


class ConfigError(Exception):
    pass


def load_config(path: str) -> dict:
    if tomllib is None:
        raise ConfigError("python >= 3.11 (tomllib) is required to read " + path)
    try:
        with open(path, "rb") as fh:
            return tomllib.load(fh)
    except OSError as e:
        raise ConfigError(f"cannot read config {path}: {e}") from e
    except tomllib.TOMLDecodeError as e:
        raise ConfigError(f"malformed config {path}: {e}") from e


def discover_files(repo: str, roots: list[str], compdb: str | None) -> list[str]:
    """Repo-relative paths of every .cpp/.hpp under `roots`. When a
    compile_commands.json is given, its entries are unioned in so generated
    or out-of-tree translation units in the build are linted too."""
    found: set[str] = set()
    for root in roots:
        base = os.path.join(repo, root)
        for ext in ("cpp", "hpp", "h", "cc"):
            for p in glob.glob(os.path.join(base, "**", f"*.{ext}"), recursive=True):
                found.add(os.path.relpath(p, repo).replace(os.sep, "/"))
    if compdb and os.path.exists(compdb):
        try:
            with open(compdb, "r", encoding="utf-8") as fh:
                entries = json.load(fh)
            for entry in entries:
                p = os.path.normpath(
                    os.path.join(entry.get("directory", ""), entry["file"])
                )
                rel = os.path.relpath(p, repo).replace(os.sep, "/")
                if rel.startswith(".."):
                    continue
                if any(rel == r or rel.startswith(r + "/") for r in roots):
                    found.add(rel)
        except (OSError, json.JSONDecodeError, KeyError):
            pass  # compdb is an accelerator, never a requirement
    return sorted(found)


def in_paths(path: str, roots: list[str]) -> bool:
    return any(
        r in (".", "") or path == r or path.startswith(r.rstrip("/") + "/")
        for r in roots
    )


# ---------------------------------------------------------------------------
# DET family: nondeterminism sources
# ---------------------------------------------------------------------------

DET_PATTERNS: list[tuple[str, re.Pattern, str]] = [
    (
        "DET-RAND",
        re.compile(
            r"\bstd::random_device\b|\brandom_device\b|\bsrand\s*\(|"
            r"(?<![\w:])rand\s*\(\s*\)|\bstd::rand\b|\brandom_shuffle\b"
        ),
        "hardware/libc randomness breaks campaign reproducibility; "
        "all randomness must flow through common/rng.hpp (Rng)",
    ),
    (
        "DET-RAND",
        re.compile(r"\bstd::\w+_distribution\b|\bstd::shuffle\b"),
        "standard-library distributions/shuffle have implementation-defined "
        "sequences; use Rng::below/range/uniform for cross-platform identity",
    ),
    (
        "DET-TIME",
        re.compile(
            r"\bsystem_clock\b|\bhigh_resolution_clock\b|\bgettimeofday\b|"
            r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&)|\bstd::time\s*\(|"
            r"(?<![\w:.])clock\s*\(\s*\)|\blocaltime\b|\bgmtime\b"
        ),
        "wall-clock reads are nondeterministic; steady_clock is allowed for "
        "telemetry only (never in a trial record)",
    ),
]

GETENV_RE = re.compile(r"\b(?:std::)?(?:secure_)?getenv\s*\(")

# Simulated-path-only hazards (det.sim_paths: the vm/uarch machine models).
# A sleep ties trial behaviour to the host scheduler; a socket syscall leaks
# host state into a trial. Both are legitimate *outside* the simulator — the
# orchestrator's retry backoff sleeps, and src/service is a socket server —
# so these rules scope to sim_paths instead of the whole det.paths set.
SIM_IO_PATTERNS: list[tuple[str, re.Pattern, str]] = [
    (
        "DET-SLEEP",
        re.compile(
            r"\bstd::this_thread::sleep_(?:for|until)\b|\bsleep_(?:for|until)\s*\(|"
            r"(?<![\w:])(?:u|nano)?sleep\s*\("
        ),
        "host sleeps inside simulated code tie trial behaviour to the host "
        "scheduler; simulated time advances via cycle ticks (host sleeps "
        "belong in the supervision/service layers)",
    ),
    (
        "DET-SOCKET",
        re.compile(
            r"(?<![\w.:])(?:::)?(?:socket|connect|bind|listen|accept|recv|"
            r"recvfrom|send|sendto|poll|select|epoll_wait)\s*\("
        ),
        "socket/IO syscalls inside simulated code leak host state into "
        "trials; networking belongs in the service layer (src/service)",
    ),
]


def check_det(files: list[SourceFile], cfg: dict) -> list[Finding]:
    findings: list[Finding] = []
    det_cfg = cfg.get("det", {})
    roots = det_cfg.get("paths", ["src"])
    sim_roots = det_cfg.get("sim_paths", [])
    env_allowed = set(det_cfg.get("env_allowed_files", []))
    for sf in files:
        if not in_paths(sf.path, roots):
            continue
        for rule, pat, msg in DET_PATTERNS:
            for m in pat.finditer(sf.code):
                findings.append(Finding(sf.path, line_of(sf.code, m.start()), rule, msg))
        if sim_roots and in_paths(sf.path, sim_roots):
            for rule, pat, msg in SIM_IO_PATTERNS:
                for m in pat.finditer(sf.code):
                    findings.append(
                        Finding(sf.path, line_of(sf.code, m.start()), rule, msg)
                    )
        if sf.path not in env_allowed:
            for m in GETENV_RE.finditer(sf.code):
                findings.append(
                    Finding(
                        sf.path,
                        line_of(sf.code, m.start()),
                        "DET-ENV",
                        "getenv outside the CLI layer bypasses the campaign "
                        "identity table; route overrides through common/cli",
                    )
                )
        findings.extend(check_uninit_members(sf))
    return findings


BUILTIN_WIDTHS = {
    "bool": 1,
    "char": 8,
    "u8": 8,
    "i8": 8,
    "u16": 16,
    "i16": 16,
    "short": 16,
    "u32": 32,
    "i32": 32,
    "int": 32,
    "unsigned": 32,
    "float": 32,
    "u64": 64,
    "i64": 64,
    "double": 64,
    "long": 64,
    "std::size_t": 64,
    "size_t": 64,
}

STRUCT_RE = re.compile(r"\b(struct|class)\s+(\w+)\s*(?:final\s*)?\{")
MEMBER_DECL_RE = re.compile(
    r"^\s*((?:std::)?[\w:]+(?:\s*<[^;<>]*(?:<[^<>]*>)?[^;<>]*>)?(?:\s*\*)?)\s+"
    r"(\w+)\s*(=\s*[^;]+|\{[^;]*\})?\s*;\s*$"
)
NON_MEMBER_KEYWORDS = (
    "return",
    "using",
    "typedef",
    "static",
    "constexpr",
    "friend",
    "explicit",
    "virtual",
    "operator",
    "if",
    "for",
    "while",
    "else",
    "case",
    "delete",
    "new",
    "throw",
    "goto",
    "namespace",
    "template",
    "enum",
)


def body_span(code: str, open_brace: int) -> int:
    """Offset just past the brace matching code[open_brace] ('{')."""
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def aggregate_struct_bodies(code: str):
    """Yield (name, body_text, body_line) for plain aggregate structs: a
    `struct X {` whose body has no access specifier, no user-declared
    constructor, and no nested braces other than member initializers."""
    for m in STRUCT_RE.finditer(code):
        kind, name = m.group(1), m.group(2)
        if kind != "struct":
            continue  # classes establish invariants in constructors
        open_brace = code.index("{", m.end() - 1)
        end = body_span(code, open_brace)
        body = code[open_brace + 1 : end - 1]
        if re.search(r"\b(public|private|protected)\s*:", body):
            continue
        if re.search(rf"\b{name}\s*\(", body):  # user-declared constructor
            continue
        yield name, body, line_of(code, open_brace)


def check_uninit_members(sf: SourceFile) -> list[Finding]:
    """DET-UNINIT: a builtin-typed member of an aggregate payload struct with
    no default member initializer. These structs are copied into latches,
    trace records and snapshots; an uninitialized member injects indeterminate
    (and platform-varying) bits into digests and traces."""
    findings: list[Finding] = []
    for name, body, body_line in aggregate_struct_bodies(sf.code):
        # Only scan top-level statements of the struct body.
        depth = 0
        stmt = []
        stmt_start_line = body_line
        line = body_line
        for ch in body:
            if ch == "\n":
                line += 1
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
            if depth == 0 and ch == ";":
                text = "".join(stmt).strip()
                stmt = []
                decl = MEMBER_DECL_RE.match(text + ";")
                if not decl:
                    stmt_start_line = line
                    continue
                type_name, member, init = decl.group(1), decl.group(2), decl.group(3)
                first_word = type_name.split("<")[0].strip().split()[0]
                if first_word in NON_MEMBER_KEYWORDS or "(" in text:
                    stmt_start_line = line
                    continue
                base = type_name.replace("*", "").strip()
                if init is None and (base in BUILTIN_WIDTHS or type_name.endswith("*")):
                    findings.append(
                        Finding(
                            sf.path,
                            stmt_start_line,
                            "DET-UNINIT",
                            f"member '{member}' of aggregate struct '{name}' has no "
                            "default initializer; indeterminate bits reach "
                            "snapshots/digests/trace records",
                        )
                    )
                stmt_start_line = line
            else:
                stmt.append(ch)
                if not "".join(stmt).strip():
                    stmt_start_line = line
    return findings


# ---------------------------------------------------------------------------
# ITER family: iteration-order hazards
# ---------------------------------------------------------------------------

UNORDERED_RE = re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\b")
PTRKEY_RE = re.compile(r"\bstd::(?:map|set|multimap|multiset)\s*<[^<>,]*\*\s*[,>]")


def check_iter(files: list[SourceFile], cfg: dict) -> list[Finding]:
    findings: list[Finding] = []
    roots = cfg.get("iter", {}).get("paths", ["src"])
    for sf in files:
        if not in_paths(sf.path, roots):
            continue
        for m in UNORDERED_RE.finditer(sf.code):
            findings.append(
                Finding(
                    sf.path,
                    line_of(sf.code, m.start()),
                    "ITER-UNORDERED",
                    "unordered containers have platform-varying iteration "
                    "order; anything reachable from the trace/stats/export "
                    "layers must use std::map/std::set/sorted vectors",
                )
            )
        for m in PTRKEY_RE.finditer(sf.code):
            findings.append(
                Finding(
                    sf.path,
                    line_of(sf.code, m.start()),
                    "ITER-PTRKEY",
                    "pointer-keyed ordered container iterates in allocation "
                    "(address) order, which varies run to run; key by a "
                    "stable id instead",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# PERF family: allocation churn in the trial inner loop
# ---------------------------------------------------------------------------

# The trial inner loop (run_trial and everything it calls per cycle) executes
# once per injected bit; a campaign runs it ~10^5-10^6 times. A single naked
# heap allocation there dominates the profile, which is exactly what the
# TrialArena / ContinuationCache work removed. These rules only apply to the
# files declared in perf.hot_paths; genuinely cold allocations inside them
# (one-time statics, per-cache-miss builds) carry allow() ledger entries.
PERF_PATTERNS: list[tuple[re.Pattern, str]] = [
    (
        re.compile(r"(?<![\w:.])new\s+[\w:(]"),
        "naked `new` in a trial hot path allocates per call; hoist it out of "
        "the inner loop or reuse an arena slot",
    ),
    (
        re.compile(r"\bstd::make_(?:unique|shared)\s*<"),
        "make_unique/make_shared in a trial hot path heap-allocates per "
        "call; amortise it (continuation cache, arena) or add an allow() "
        "entry explaining why the site is cold",
    ),
    (
        re.compile(
            r"\b(?:std::)?(?:vector|string|deque|map|set|unordered_map|"
            r"unordered_set)\s*<[^;<>]*(?:<[^<>]*>)?[^;<>]*>\s+\w+\s*=\s*"
            r"\w+(?:\.\w+\(\))?\s*;"
        ),
        "whole-container copy in a trial hot path churns the heap; take a "
        "const reference or reuse a preallocated buffer",
    ),
]


def check_perf(files: list[SourceFile], cfg: dict) -> list[Finding]:
    hot = set(cfg.get("perf", {}).get("hot_paths", []))
    findings: list[Finding] = []
    for sf in files:
        if sf.path not in hot:
            continue
        for pat, msg in PERF_PATTERNS:
            for m in pat.finditer(sf.code):
                findings.append(
                    Finding(sf.path, line_of(sf.code, m.start()), "PERF-ALLOC", msg)
                )
    return findings


# ---------------------------------------------------------------------------
# COV family: StateRegistry coverage
# ---------------------------------------------------------------------------

CONSTEXPR_RE = re.compile(
    r"\b(?:inline\s+)?constexpr\s+(?:unsigned|u8|u16|u32|u64|int|std::size_t|auto)\s+"
    r"(\w+)\s*=\s*([^;]+);"
)
EXPR_OK_RE = re.compile(r"^[\w\s+\-*/()]+$")


def parse_constants(texts: list[str]) -> dict[str, int]:
    """Collect `constexpr <int-type> kName = expr;` values, resolving
    references between them iteratively."""
    raw: dict[str, str] = {}
    for text in texts:
        for m in CONSTEXPR_RE.finditer(text):
            raw[m.group(1)] = m.group(2).strip()
    values: dict[str, int] = {}
    for _ in range(len(raw) + 1):
        progressed = False
        for name, expr in raw.items():
            if name in values:
                continue
            val = eval_int(expr, values)
            if val is not None:
                values[name] = val
                progressed = True
        if not progressed:
            break
    return values


def eval_int(expr: str, constants: dict[str, int]) -> int | None:
    expr = expr.replace("isa::", "").replace("uarch::", "").strip()
    if not EXPR_OK_RE.match(expr):
        return None
    for name in re.findall(r"[A-Za-z_]\w*", expr):
        if name not in constants:
            return None
    try:
        return int(eval(expr, {"__builtins__": {}}, dict(constants)))  # noqa: S307
    except Exception:
        return None


def parse_struct_fields(code: str) -> dict[str, list[tuple[str, str]]]:
    """struct name -> [(field, type)] for simple payload structs."""
    structs: dict[str, list[tuple[str, str]]] = {}
    for m in STRUCT_RE.finditer(code):
        name = m.group(2)
        open_brace = code.index("{", m.end() - 1)
        body = code[open_brace + 1 : body_span(code, open_brace) - 1]
        fields: list[tuple[str, str]] = []
        for stmt in body.split(";"):
            decl = MEMBER_DECL_RE.match(stmt.strip() + ";")
            if not decl:
                continue
            type_name = decl.group(1).strip()
            if type_name.split("<")[0].split()[0] in NON_MEMBER_KEYWORDS:
                continue
            # A defaulted `bool operator==(...) = default;` parses as a member
            # named "operator" (the `==...= default` tail matches the
            # initializer group); it is a function, not a field.
            if decl.group(2) in NON_MEMBER_KEYWORDS:
                continue
            fields.append((decl.group(2), type_name))
        if fields:
            structs[name] = fields
    return structs


MEMBER_REGION_START = re.compile(r"-{2,}\s*Machine state")
ARRAY_MEMBER_RE = re.compile(
    r"^std::array\s*<\s*(?:std::array\s*<\s*)?([\w:]+)\s*,\s*([\w:]+)\s*>"
    r"(?:\s*,\s*([\w:]+)\s*>)?$"
)


@dataclass
class CoreMember:
    name: str
    elem_type: str  # scalar type or payload struct name
    extent_expr: str  # "1" for scalars, product expr for arrays
    line: int
    injectable: bool  # False when annotated "not injectable"
    registrable: bool = True  # False for dynamic members (vector etc.)


def parse_core_members(sf: SourceFile, cfg: dict) -> list[Finding] | list[CoreMember]:
    """Parse the Core machine-state region (marker comment .. `private:`)."""
    code = sf.code
    m = MEMBER_REGION_START.search(sf.raw)
    if not m:
        return [
            Finding(
                sf.path,
                0,
                "COV-PARSE",
                "cannot find the '---- Machine state' marker in Core",
            )
        ]
    start_line = line_of(sf.raw, m.start())
    raw_lines = sf.raw.splitlines()
    code_lines = code.splitlines()
    members: list[CoreMember] = []
    annotated = False
    buf = ""
    buf_line = 0
    for idx in range(start_line, len(raw_lines)):
        raw_line = raw_lines[idx]
        code_line = code_lines[idx] if idx < len(code_lines) else ""
        stripped = raw_line.strip()
        if re.match(r"^\s*private\s*:", code_line):
            break
        if not stripped:
            annotated = False
            if not buf.strip():
                buf = ""
            continue
        if stripped.startswith("//"):
            if "not injectable" in stripped:
                annotated = True
            continue
        if not buf:
            buf_line = idx + 1
        buf += " " + code_line.split("//")[0]
        if ";" not in buf:
            continue
        stmt = buf.strip().rstrip(";").strip()
        buf = ""
        decl = re.match(r"^(.*?)\s+(\w+)\s*(?:=\s*[^;]+|\{\s*\})?$", stmt)
        if not decl:
            continue
        type_name, name = decl.group(1).strip(), decl.group(2)
        if type_name.split("<")[0].split()[0] in NON_MEMBER_KEYWORDS:
            continue
        if name in NON_MEMBER_KEYWORDS:  # e.g. a defaulted operator== decl
            continue
        arr = ARRAY_MEMBER_RE.match(type_name)
        if arr:
            elem, inner, outer = arr.group(1), arr.group(2), arr.group(3)
            extent = f"{inner} * {outer}" if outer else inner
            members.append(CoreMember(name, elem, extent, buf_line, not annotated))
        elif type_name.startswith("std::vector"):
            members.append(
                CoreMember(name, type_name, "0", buf_line, not annotated, False)
            )
        else:
            members.append(CoreMember(name, type_name, "1", buf_line, not annotated))
    return members


@dataclass
class Registration:
    name: str
    kind: str  # "int" | "flag"
    entries_expr: str
    bits_expr: str
    accessor: str  # lambda (or helper-call) body text
    ref_type: str  # declared `-> T&` type, "" if not found
    line: int
    member: str = ""
    field_name: str | None = None


ADD_CALL_RE = re.compile(r"\badd_(int|flag)\s*\(")
HELPER_RE = re.compile(
    r"\bauto\s+(\w+)\s*=\s*\[\]\s*\(\s*Core&\s*\w+\s*,\s*u32\s*\w+\s*\)\s*->\s*"
    r"([\w:]+)\s*&\s*\{\s*return\s+\w+\.(\w+)\s*\["
)
LOCAL_FN_RE = re.compile(r"\bbool\s+(\w+)\s*\(\s*const\s+Core&")


def split_top_args(text: str) -> list[str]:
    # Angle brackets are deliberately not tracked: `-> u64&` in accessor
    # lambdas would unbalance them, and template commas only occur inside
    # parens/braces in this codebase.
    args, depth, cur = [], 0, []
    for ch in text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if "".join(cur).strip():
        args.append("".join(cur).strip())
    return args


def parse_registrations(sf: SourceFile):
    """Extract add_int/add_flag calls, helper lambdas and liveness helpers
    from state_registry.cpp."""
    code = sf.code_str
    helpers: dict[str, tuple[str, str]] = {}  # helper -> (member, elem type)
    for m in HELPER_RE.finditer(code):
        helpers[m.group(1)] = (m.group(3), m.group(2))
    live_fns = {m.group(1) for m in LOCAL_FN_RE.finditer(code)}
    regs: list[Registration] = []
    findings: list[Finding] = []
    used_helpers: set[str] = set()
    used_live: set[str] = set()
    for m in ADD_CALL_RE.finditer(code):
        kind = m.group(1)
        open_paren = code.index("(", m.end() - 1)
        depth, end = 0, open_paren
        for i in range(open_paren, len(code)):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        call_line = line_of(code, m.start())
        args = split_top_args(code[open_paren + 1 : end])
        if args and args[0].startswith("std::move"):
            continue  # the generic `add` forwarder inside add_int/add_flag
        min_args = 7 if kind == "int" else 6
        if len(args) < min_args:
            findings.append(
                Finding(
                    sf.path, call_line, "COV-PARSE", f"unparseable add_{kind} call"
                )
            )
            continue
        name_lit = re.match(r'"([^"]+)"', args[0])
        if not name_lit:
            findings.append(
                Finding(sf.path, call_line, "COV-PARSE", "registration name is not a literal")
            )
            continue
        if kind == "int":
            entries_expr, bits_expr, accessor = args[3], args[4], args[5]
            live_arg = args[6]
        else:
            entries_expr, bits_expr, accessor = args[3], "1", args[4]
            live_arg = args[5]
        ref_m = re.search(r"->\s*([\w:]+)\s*&", accessor)
        ref_type = ref_m.group(1) if ref_m else ""
        reg = Registration(
            name_lit.group(1), kind, entries_expr, bits_expr, accessor, ref_type, call_line
        )
        body = re.search(r"return\s+([^;]+);", accessor)
        if body:
            expr = body.group(1).strip()
            direct = re.match(r"\w+\.(\w+)", expr)
            helper_call = re.match(r"(\w+)\s*\(\s*\w+\s*,\s*\w+\s*\)\.(\w+)", expr)
            if helper_call and helper_call.group(1) in helpers:
                used_helpers.add(helper_call.group(1))
                reg.member = helpers[helper_call.group(1)][0]
                reg.field_name = helper_call.group(2)
            elif direct:
                reg.member = direct.group(1)
        if live_arg.strip() in live_fns:
            used_live.add(live_arg.strip())
        regs.append(reg)
    for h in sorted(set(helpers) - used_helpers):
        findings.append(
            Finding(
                sf.path,
                0,
                "COV-DEAD",
                f"slot accessor '{h}' is defined but used by no registration",
            )
        )
    for fn in sorted(live_fns - used_live - {"always_live"}):
        findings.append(
            Finding(
                sf.path,
                0,
                "COV-DEAD",
                f"liveness predicate '{fn}' is defined but used by no registration",
            )
        )
    return regs, findings


def check_cov(files_by_path: dict[str, SourceFile], cfg: dict, repo: str) -> list[Finding]:
    cov = cfg.get("cov")
    if not cov:
        return []
    findings: list[Finding] = []

    def get(path_key: str) -> SourceFile | None:
        rel = cov.get(path_key)
        if rel is None:
            return None
        sf = files_by_path.get(rel)
        if sf is None and os.path.exists(os.path.join(repo, rel)):
            with open(os.path.join(repo, rel), "r", encoding="utf-8") as fh:
                sf = SourceFile(rel, fh.read())
            files_by_path[rel] = sf
        if sf is None:
            findings.append(
                Finding(rel, 0, "COV-PARSE", f"configured {path_key} not found")
            )
        return sf

    core_sf = get("core_header")
    payload_sf = get("payload_header")
    registry_sf = get("registry_source")
    if core_sf is None or registry_sf is None:
        return findings
    const_texts = []
    for rel in cov.get("config_headers", []):
        sf = files_by_path.get(rel)
        if sf is None and os.path.exists(os.path.join(repo, rel)):
            with open(os.path.join(repo, rel), "r", encoding="utf-8") as fh:
                sf = SourceFile(rel, fh.read())
                files_by_path[rel] = sf
        if sf is not None:
            const_texts.append(sf.code)
    const_texts.append(registry_sf.code_str)
    const_texts.append(core_sf.code)
    constants = parse_constants(const_texts)

    structs = parse_struct_fields(payload_sf.code) if payload_sf is not None else {}
    members_or_findings = parse_core_members(core_sf, cfg)
    if members_or_findings and isinstance(members_or_findings[0], Finding):
        return findings + members_or_findings
    members: list[CoreMember] = members_or_findings  # type: ignore[assignment]
    member_by_name = {m.name: m for m in members}

    regs, parse_findings = parse_registrations(registry_sf)
    findings.extend(parse_findings)

    # Exclusions: (member, field-or-None) -> reason, from config.
    exclusions: dict[tuple[str, str | None], str] = {}
    for entry in cov.get("exclude", []):
        member = entry.get("member")
        reason = entry.get("reason", "").strip()
        if not member or not reason:
            findings.append(
                Finding(
                    cov.get("registry_source", "simlint.toml"),
                    0,
                    "COV-CONFIG",
                    f"cov.exclude entry {entry!r} needs member and a non-empty reason",
                )
            )
            continue
        exclusions[(member, entry.get("field"))] = reason

    # Index registrations by coverage target.
    covered: dict[tuple[str, str | None], list[Registration]] = {}
    seen_names: dict[str, Registration] = {}
    for reg in regs:
        if reg.name in seen_names:
            findings.append(
                Finding(
                    registry_sf.path,
                    reg.line,
                    "COV-DUP",
                    f"registration name '{reg.name}' is registered twice",
                )
            )
        seen_names[reg.name] = reg
        if not reg.member:
            findings.append(
                Finding(
                    registry_sf.path,
                    reg.line,
                    "COV-PARSE",
                    f"cannot resolve the member accessed by '{reg.name}'",
                )
            )
            continue
        covered.setdefault((reg.member, reg.field_name), []).append(reg)

        if reg.member not in member_by_name:
            findings.append(
                Finding(
                    registry_sf.path,
                    reg.line,
                    "COV-DEAD",
                    f"registration '{reg.name}' accesses '{reg.member}', which is "
                    "not a Core machine-state member (dead accessor)",
                )
            )
            continue
        member = member_by_name[reg.member]

        # Width check: declared bits_per_entry must fit the storage type.
        width = BUILTIN_WIDTHS.get(reg.ref_type)
        bits = eval_int(reg.bits_expr, constants)
        if bits is None:
            findings.append(
                Finding(
                    registry_sf.path,
                    reg.line,
                    "COV-PARSE",
                    f"cannot evaluate bits expression '{reg.bits_expr}' of '{reg.name}'",
                )
            )
        elif width is not None and (bits < 1 or bits > width):
            findings.append(
                Finding(
                    registry_sf.path,
                    reg.line,
                    "COV-WIDTH",
                    f"'{reg.name}' declares {bits} bits_per_entry but its storage "
                    f"type {reg.ref_type} holds {width} bits",
                )
            )
        if reg.kind == "flag" and reg.ref_type and reg.ref_type != "bool":
            findings.append(
                Finding(
                    registry_sf.path,
                    reg.line,
                    "COV-WIDTH",
                    f"add_flag '{reg.name}' targets non-bool storage {reg.ref_type}",
                )
            )

        # Extent check: entries must equal the member's array extent.
        entries = eval_int(reg.entries_expr, constants)
        extent = eval_int(member.extent_expr, constants)
        if entries is None:
            findings.append(
                Finding(
                    registry_sf.path,
                    reg.line,
                    "COV-PARSE",
                    f"cannot evaluate entries expression '{reg.entries_expr}' of "
                    f"'{reg.name}'",
                )
            )
        elif extent is not None and entries != extent:
            findings.append(
                Finding(
                    registry_sf.path,
                    reg.line,
                    "COV-EXTENT",
                    f"'{reg.name}' registers {entries} entries but Core member "
                    f"'{member.name}' has extent {extent}",
                )
            )

    # Coverage: every injectable (member, field) pair must be registered or
    # excluded with a reason.
    expected: list[tuple[str, str | None, CoreMember]] = []
    for member in members:
        if not member.injectable or not member.registrable:
            continue
        if member.elem_type in structs:
            for field_name, _ftype in structs[member.elem_type]:
                expected.append((member.name, field_name, member))
        else:
            expected.append((member.name, None, member))
    for mname, fname, member in expected:
        key = (mname, fname)
        if key in covered:
            if key in exclusions:
                findings.append(
                    Finding(
                        core_sf.path,
                        member.line,
                        "COV-STALE-EXCLUDE",
                        f"exclusion for {mname}"
                        + (f".{fname}" if fname else "")
                        + " is stale: the pair is registered",
                    )
                )
            continue
        if key in exclusions or (mname, None) in exclusions:
            continue
        label = mname + (f".{fname}" if fname else "")
        findings.append(
            Finding(
                core_sf.path,
                member.line,
                "COV-UNREGISTERED",
                f"machine-state '{label}' is not enumerated by the StateRegistry "
                "and not excluded with a reason; fig4 denominators are wrong "
                "until it is registered or excluded in simlint.toml",
            )
        )
    known_pairs = {(m, f) for m, f, _ in expected} | set(covered)
    known_members = {m.name for m in members}
    for (mname, fname), _reason in exclusions.items():
        if mname not in known_members:
            findings.append(
                Finding(
                    core_sf.path,
                    0,
                    "COV-STALE-EXCLUDE",
                    f"exclusion references unknown Core member '{mname}'",
                )
            )
        elif fname is not None and (mname, fname) not in known_pairs:
            findings.append(
                Finding(
                    core_sf.path,
                    0,
                    "COV-STALE-EXCLUDE",
                    f"exclusion references unknown field '{mname}.{fname}'",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# ID family: campaign-identity coverage of CLI flags and env overrides
# ---------------------------------------------------------------------------

FLAG_USE_RE = re.compile(
    r"\.\s*(?:value|value_u64|value_double|has_flag)\s*\(\s*\"([a-z0-9\-]+)\""
)
ENV_TABLE_RE = re.compile(r'\{\s*"(\w+)"\s*,\s*EnvClass::k(\w+)\s*\}')
ENV_LITERAL_RE = re.compile(r'\bgetenv\s*\(\s*"(\w+)"|env_u64\s*\(\s*"(\w+)"')
ID_CLASSES = {"identity-hash", "identity-manifest", "presentation", "analysis"}


def function_body(code: str, signature_re: str) -> str:
    m = re.search(signature_re, code)
    if not m:
        return ""
    open_brace = code.find("{", m.end())
    if open_brace < 0:
        return ""
    return code[open_brace : body_span(code, open_brace)]


def check_id(files_by_path: dict[str, SourceFile], cfg: dict, repo: str) -> list[Finding]:
    ident = cfg.get("identity")
    if not ident:
        return []
    findings: list[Finding] = []
    scan_roots = ident.get("flag_scan_paths", ["src", "bench", "tools", "examples"])

    def load(rel: str) -> SourceFile | None:
        sf = files_by_path.get(rel)
        if sf is None and os.path.exists(os.path.join(repo, rel)):
            with open(os.path.join(repo, rel), "r", encoding="utf-8") as fh:
                sf = SourceFile(rel, fh.read())
            files_by_path[rel] = sf
        return sf

    # Hash-function and manifest-comparison bodies (coverage witnesses).
    hash_bodies = ""
    for rel in ident.get("hash_sources", []):
        sf = load(rel)
        if sf is None:
            findings.append(Finding(rel, 0, "ID-CONFIG", "hash source not found"))
            continue
        hash_bodies += function_body(sf.code_str, r"\bu64\s+config_hash\s*\(")
    manifest_body = ""
    rel = ident.get("manifest_source")
    if rel:
        sf = load(rel)
        if sf is not None:
            manifest_body = function_body(sf.code_str, r"\bbool\s+matches\s*\(")

    # Environment overrides: code table vs config classification.
    env_cfg: dict[str, dict] = ident.get("env", {})
    table_rel = ident.get("env_table_source", "src/common/cli.cpp")
    table_sf = load(table_rel)
    declared_env: dict[str, str] = {}
    if table_sf is None:
        findings.append(Finding(table_rel, 0, "ID-CONFIG", "env table source not found"))
    else:
        for m in ENV_TABLE_RE.finditer(table_sf.code_str):
            declared_env[m.group(1)] = m.group(2)
        if not declared_env:
            findings.append(
                Finding(
                    table_rel,
                    0,
                    "ID-ENV-TABLE",
                    "no kEnvOverrides table found; every env override must be "
                    "declared centrally with an EnvClass",
                )
            )
        for m in ENV_LITERAL_RE.finditer(table_sf.code_str):
            name = m.group(1) or m.group(2)
            if name not in declared_env:
                findings.append(
                    Finding(
                        table_sf.path,
                        line_of(table_sf.code_str, m.start()),
                        "ID-ENV-UNDECLARED",
                        f"environment override '{name}' is read but not declared "
                        "in the kEnvOverrides identity table",
                    )
                )
    for name, cls in declared_env.items():
        entry = env_cfg.get(name)
        if entry is None:
            findings.append(
                Finding(
                    table_rel,
                    0,
                    "ID-ENV-UNCLASSIFIED",
                    f"env override '{name}' is not classified in simlint.toml "
                    "[identity.env]",
                )
            )
            continue
        want = "Identity" if entry.get("class") == "identity" else "Presentation"
        if cls != want:
            findings.append(
                Finding(
                    table_rel,
                    0,
                    "ID-ENV-MISMATCH",
                    f"env override '{name}': code declares EnvClass::k{cls} but "
                    f"simlint.toml says {entry.get('class')}",
                )
            )
        if entry.get("class") == "identity":
            token = entry.get("hashed_via", "")
            if not token or token not in hash_bodies:
                findings.append(
                    Finding(
                        table_rel,
                        0,
                        "ID-ENV-UNHASHED",
                        f"identity env override '{name}' must feed config_hash via "
                        f"a config field; '{token or '<missing hashed_via>'}' not "
                        "found in any config_hash body",
                    )
                )
    for name in env_cfg:
        if declared_env and name not in declared_env:
            findings.append(
                Finding(
                    table_rel,
                    0,
                    "ID-STALE",
                    f"simlint.toml classifies env override '{name}' which is not "
                    "declared in the code table",
                )
            )

    # CLI flags: every literal consumed anywhere must be classified; identity
    # classes must point at a coverage witness.
    flags_cfg: dict[str, dict] = ident.get("flags", {})
    flags_seen: dict[str, tuple[str, int]] = {}
    for path, sf in sorted(files_by_path.items()):
        if not in_paths(path, scan_roots):
            continue
        for m in FLAG_USE_RE.finditer(sf.code_str):
            flags_seen.setdefault(m.group(1), (path, line_of(sf.code_str, m.start())))
    for flag, (path, line) in sorted(flags_seen.items()):
        entry = flags_cfg.get(flag)
        if entry is None:
            findings.append(
                Finding(
                    path,
                    line,
                    "ID-FLAG-UNCLASSIFIED",
                    f"CLI flag '--{flag}' is not classified in simlint.toml "
                    "[identity.flags]; classify it as identity-hash, "
                    "identity-manifest, presentation or analysis",
                )
            )
            continue
        cls = entry.get("class")
        if cls not in ID_CLASSES:
            findings.append(
                Finding(
                    path,
                    line,
                    "ID-CONFIG",
                    f"flag '--{flag}' has unknown class '{cls}'",
                )
            )
            continue
        if cls == "identity-hash":
            token = entry.get("hashed_via", "")
            if not token or token not in hash_bodies:
                findings.append(
                    Finding(
                        path,
                        line,
                        "ID-FLAG-UNHASHED",
                        f"identity flag '--{flag}' must feed config_hash; config "
                        f"field '{token or '<missing hashed_via>'}' not found in "
                        "any config_hash body",
                    )
                )
        elif cls == "identity-manifest":
            token = entry.get("manifest_field", "")
            if not token or token not in manifest_body:
                findings.append(
                    Finding(
                        path,
                        line,
                        "ID-FLAG-UNHASHED",
                        f"flag '--{flag}' claims manifest identity; field "
                        f"'{token or '<missing manifest_field>'}' not found in "
                        "CampaignManifest::matches()",
                    )
                )
        else:
            if not entry.get("reason", "").strip():
                findings.append(
                    Finding(
                        path,
                        line,
                        "ID-CONFIG",
                        f"{cls} flag '--{flag}' needs a non-empty reason",
                    )
                )
    for flag in sorted(flags_cfg):
        if flag not in flags_seen:
            findings.append(
                Finding(
                    "tools/simlint/simlint.toml",
                    0,
                    "ID-STALE",
                    f"simlint.toml classifies flag '--{flag}' which no binary "
                    "consumes any more",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# CONC family: lock discipline
# ---------------------------------------------------------------------------
#
# The compiler-enforced side of lock discipline is Clang's thread-safety
# analysis over the RESTORE_* capability annotations (thread_annotations.hpp,
# built with -DRESTORE_THREAD_SAFETY=ON in the clang CI job). CONC is the
# engine-agnostic complement that runs everywhere gcc does:
#
#   CONC-UNGUARDED   a class owns a mutex but has mutable members that carry
#                    no RESTORE_GUARDED_BY annotation — the clang analysis
#                    can only prove what is annotated, so an unannotated
#                    member silently opts out of enforcement.
#   CONC-RAW-LOCK    a manual `.lock()` / `.unlock()` call outside the RAII
#                    wrapper types; an exception (or early return) between
#                    the pair deadlocks or double-releases.
#   CONC-CV-NOPRED   a condition-variable wait with no predicate: a spurious
#                    wakeup returns with the condition false. Callers either
#                    pass a predicate or author the `while (!cond) wait;`
#                    loop around the predicate-free *_locked primitives.
#
# Deliberate exceptions live in the [[conc.exclude]] ledger (class + member +
# reason); entries that no longer match anything are CONC-STALE-EXCLUDE.

CONC_MUTEX_RE = re.compile(
    r"^(?:mutable\s+)?(?:restore::)?(?:std::)?"
    r"(?:recursive_mutex|shared_mutex|timed_mutex|recursive_timed_mutex|"
    r"mutex|Mutex)\s+(\w+)\s*(?:;|$)"
)
CONC_SYNC_TYPE_RE = re.compile(
    r"^(?:mutable\s+)?(?:restore::)?(?:std::)?"
    r"(?:condition_variable(?:_any)?|CondVar|atomic\b|atomic_\w+)"
)
CONC_STMT_SKIP_RE = re.compile(
    r"^(?:using|typedef|static|friend|enum|struct|class|union|template|"
    r"operator|virtual|explicit|inline|constexpr|public|private|protected)\b"
)
CONC_RAW_LOCK_RE = re.compile(r"[\w\)\]]\s*(?:\.|->)\s*(lock|unlock)\s*\(\s*\)")
CONC_CV_WAIT_RE = re.compile(r"(?:\.|->)\s*(wait_until|wait_for|wait)\s*\(")


def class_member_statements(body: str, body_line: int):
    """Yield (line, statement) for the top-level declarations of a class
    body. Function definitions are dropped (a `}` closing back to top level
    that is not a brace initializer ends the pending statement), so what
    remains is data members, nested types, and member-function declarations."""
    depth = 0
    stmt: list[str] = []
    line = body_line
    stmt_line = body_line
    i, n = 0, len(body)
    while i < n:
        ch = body[i]
        if ch == "\n":
            line += 1
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth == 0:
                j = i + 1
                while j < n and body[j] in " \t\n":
                    j += 1
                if j >= n or body[j] != ";":
                    # Function/ctor body, not a brace initializer: discard.
                    stmt = []
                    stmt_line = line
                    i += 1
                    continue
        if depth == 0 and ch == ";":
            text = " ".join("".join(stmt).split())
            if text:
                yield stmt_line, text
            stmt = []
            stmt_line = line
        else:
            if not stmt and ch not in " \t\n":
                stmt_line = line
            stmt.append(ch)
        i += 1


def check_conc(files: list[SourceFile], cfg: dict) -> list[Finding]:
    conc = cfg.get("conc", {})
    paths = conc.get("paths", ["src"])
    findings: list[Finding] = []

    # Exclusion ledger: (class, member) -> reason.
    exclusions: dict[tuple[str, str], str] = {}
    for entry in conc.get("exclude", []):
        cls, member = entry.get("class"), entry.get("member")
        reason = entry.get("reason", "").strip()
        if not cls or not member or not reason:
            findings.append(
                Finding(
                    "tools/simlint/simlint.toml",
                    0,
                    "CONC-CONFIG",
                    f"conc.exclude entry {entry!r} needs class, member and a "
                    "non-empty reason",
                )
            )
            continue
        exclusions[(cls, member)] = reason
    matched_exclusions: set[tuple[str, str]] = set()

    for sf in files:
        if not in_paths(sf.path, paths):
            continue

        # CONC-RAW-LOCK: manual lock()/unlock() outside the RAII wrappers.
        for m in CONC_RAW_LOCK_RE.finditer(sf.code):
            findings.append(
                Finding(
                    sf.path,
                    line_of(sf.code, m.start()),
                    "CONC-RAW-LOCK",
                    f"manual .{m.group(1)}() call; an exception between "
                    "lock/unlock deadlocks or double-releases — use "
                    "restore::MutexLock (or std::lock_guard) RAII instead",
                )
            )

        # CONC-CV-NOPRED: condition-variable waits without a predicate.
        for m in CONC_CV_WAIT_RE.finditer(sf.code):
            open_paren = sf.code.index("(", m.end() - 1)
            close = body_span(
                sf.code.replace("(", "{").replace(")", "}"), open_paren
            )
            args = split_top_args(sf.code[open_paren + 1 : close - 1])
            method = m.group(1)
            bare = (method == "wait" and len(args) == 1) or (
                method in ("wait_for", "wait_until") and len(args) == 2
            )
            if bare:
                findings.append(
                    Finding(
                        sf.path,
                        line_of(sf.code, m.start()),
                        "CONC-CV-NOPRED",
                        f"condition-variable {method}() without a predicate: a "
                        "spurious wakeup returns with the condition false — "
                        "pass a predicate or wrap the *_locked primitive in a "
                        "caller-authored while loop",
                    )
                )

        # CONC-UNGUARDED: mutex-owning classes with unannotated mutable state.
        for sm in STRUCT_RE.finditer(sf.code):
            cls_name = sm.group(2)
            open_brace = sf.code.index("{", sm.end() - 1)
            end = body_span(sf.code, open_brace)
            body = sf.code[open_brace + 1 : end - 1]
            body_line = line_of(sf.code, open_brace)
            mutexes: list[str] = []
            candidates: list[tuple[int, str]] = []  # (line, member)
            for stmt_line, text in class_member_statements(body, body_line):
                # Strip access-specifier labels glued to the statement.
                text = re.sub(
                    r"^(?:(?:public|private|protected)\s*:\s*)+", "", text
                )
                if mm := CONC_MUTEX_RE.match(text):
                    mutexes.append(mm.group(1))
                    continue
                if CONC_SYNC_TYPE_RE.match(text):
                    continue  # sync primitives guard, they are not guarded
                if CONC_STMT_SKIP_RE.match(text):
                    continue
                if "RESTORE_GUARDED_BY" in text or "RESTORE_PT_GUARDED_BY" in text:
                    continue  # annotated: the clang analysis owns it now
                if text.startswith("const ") or "&" in text.split("=")[0]:
                    continue  # immutable / reference members
                decl = MEMBER_DECL_RE.match(text + ";" if not text.endswith(";") else text)
                if not decl:
                    decl = MEMBER_DECL_RE.match(text.rstrip(";") + ";")
                if not decl or "(" in text.split("=")[0].split("{")[0]:
                    continue  # member functions / unparsable: conservative
                candidates.append((stmt_line, decl.group(2)))
            if not mutexes:
                continue
            for stmt_line, member in candidates:
                if (cls_name, member) in exclusions:
                    matched_exclusions.add((cls_name, member))
                    continue
                findings.append(
                    Finding(
                        sf.path,
                        stmt_line,
                        "CONC-UNGUARDED",
                        f"'{cls_name}::{member}' is mutable state in a class "
                        f"that owns mutex '{mutexes[0]}' but carries no "
                        "RESTORE_GUARDED_BY annotation; the clang thread-"
                        "safety analysis cannot enforce what is not annotated "
                        "(annotate it, or ledger it in [[conc.exclude]])",
                    )
                )

    for (cls, member), _reason in sorted(exclusions.items()):
        if (cls, member) not in matched_exclusions:
            findings.append(
                Finding(
                    "tools/simlint/simlint.toml",
                    0,
                    "CONC-STALE-EXCLUDE",
                    f"conc.exclude entry {cls}::{member} matches nothing: the "
                    "member is gone, annotated, or its class lost its mutex — "
                    "delete the stale ledger entry",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# SCHEMA family: wire-protocol and trace-schema drift
# ---------------------------------------------------------------------------
#
# The framed wire protocol and the JSONL trace format are both "stringly"
# contracts: nothing in the type system connects the MessageType enum to the
# encode/decode switches, the wire-name table, or the round-trip tests, and
# nothing connects a writer's JSONL keys to its reader's. SCHEMA closes both
# gaps lexically:
#
#   SCHEMA-ENUM       kMessageTypeCount disagrees with the enumerator count.
#   SCHEMA-NAME       an enumerator missing from (or duplicated in) the
#                     kTypeNames wire-name table.
#   SCHEMA-ENCODE     an enumerator with no `case MessageType::kX:` arm in
#                     encode_message.
#   SCHEMA-DECODE     same for decode_message.
#   SCHEMA-ROUNDTRIP  an enumerator not constructed in the round-trip
#                     builder of tests/test_service_protocol.cpp, so its
#                     encode/decode fixpoint is untested.
#   SCHEMA-JSONL      a key written by a campaign_io writer that its paired
#                     reader never reads, or read but never written.
#   SCHEMA-PARSE      a configured source/function could not be parsed.

SCHEMA_ENUM_RE = re.compile(r"enum\s+class\s+MessageType\s*(?::[^{;]*)?\{")
SCHEMA_COUNT_RE = re.compile(r"\bkMessageTypeCount\s*=\s*(\d+)")
SCHEMA_CASE_RE = re.compile(r"\bcase\s+MessageType::(k\w+)\s*:")
SCHEMA_NAME_PAIR_RE = re.compile(r"\{\s*MessageType::(k\w+)\s*,\s*\"([^\"]*)\"")
SCHEMA_USE_RE = re.compile(r"\bMessageType::(k\w+)\b")
SCHEMA_WRITER_KEY_RE = re.compile(
    r"\b(?:append_field|append_latency|append_array|append_string_array)"
    r"\s*\(\s*(?:\w+\s*,\s*)?\"([\w.]+)\""
)
SCHEMA_READER_KEY_RE = re.compile(
    r"\b(?:get_uint|get_string|get_bool|get_latency|find|read_array|"
    r"read_optional_array|read_optional_string_array|uints|strings)"
    r"\s*\(\s*(?:\*?\w+\s*,\s*)?\"([\w.]+)\""
)


def check_schema(files_by_path: dict[str, SourceFile], cfg: dict, repo: str) -> list[Finding]:
    schema = cfg.get("schema")
    if not schema:
        return []
    findings: list[Finding] = []

    def load_rel(rel: str, what: str) -> SourceFile | None:
        sf = files_by_path.get(rel)
        if sf is None and os.path.exists(os.path.join(repo, rel)):
            with open(os.path.join(repo, rel), "r", encoding="utf-8") as fh:
                sf = SourceFile(rel, fh.read())
            files_by_path[rel] = sf
        if sf is None:
            findings.append(
                Finding(rel, 0, "SCHEMA-PARSE", f"configured {what} not found")
            )
        return sf

    def load(key: str) -> SourceFile | None:
        rel = schema.get(key)
        if rel is None:
            return None
        return load_rel(rel, key)

    header_sf = load("protocol_header")
    source_sf = load("protocol_source")
    test_sf = load("protocol_test")

    # -- enumerators and the count constant --
    enumerators: list[str] = []
    if header_sf is not None:
        m = SCHEMA_ENUM_RE.search(header_sf.code)
        if not m:
            findings.append(
                Finding(
                    header_sf.path,
                    0,
                    "SCHEMA-PARSE",
                    "no `enum class MessageType` found",
                )
            )
        else:
            open_brace = header_sf.code.index("{", m.end() - 1)
            body = header_sf.code[
                open_brace + 1 : body_span(header_sf.code, open_brace) - 1
            ]
            enum_line = line_of(header_sf.code, open_brace)
            enumerators = [
                a.split("=")[0].strip()
                for a in split_top_args(body)
                if a.split("=")[0].strip()
            ]
            cm = SCHEMA_COUNT_RE.search(header_sf.code)
            if not cm:
                findings.append(
                    Finding(
                        header_sf.path,
                        enum_line,
                        "SCHEMA-ENUM",
                        "no kMessageTypeCount constant next to MessageType; "
                        "the exhaustiveness test and this lint key off it",
                    )
                )
            elif int(cm.group(1)) != len(enumerators):
                findings.append(
                    Finding(
                        header_sf.path,
                        line_of(header_sf.code, cm.start()),
                        "SCHEMA-ENUM",
                        f"kMessageTypeCount = {cm.group(1)} but MessageType "
                        f"declares {len(enumerators)} enumerators",
                    )
                )

    # -- wire-name table and the encode/decode switch arms --
    if source_sf is not None and enumerators:
        named: dict[str, str] = {}
        by_wire_name: dict[str, str] = {}
        for m in SCHEMA_NAME_PAIR_RE.finditer(source_sf.code_str):
            enum_name, wire = m.group(1), m.group(2)
            if enum_name in named:
                findings.append(
                    Finding(
                        source_sf.path,
                        line_of(source_sf.code_str, m.start()),
                        "SCHEMA-NAME",
                        f"MessageType::{enum_name} appears twice in the "
                        "kTypeNames table",
                    )
                )
            named[enum_name] = wire
            if wire in by_wire_name and by_wire_name[wire] != enum_name:
                findings.append(
                    Finding(
                        source_sf.path,
                        line_of(source_sf.code_str, m.start()),
                        "SCHEMA-NAME",
                        f"wire name '{wire}' maps to both "
                        f"{by_wire_name[wire]} and {enum_name}",
                    )
                )
            by_wire_name[wire] = enum_name
        for func, rule in (("encode_message", "SCHEMA-ENCODE"),
                           ("decode_message", "SCHEMA-DECODE")):
            body = function_body(source_sf.code, rf"\b{func}\s*\(")
            if not body:
                findings.append(
                    Finding(
                        source_sf.path,
                        0,
                        "SCHEMA-PARSE",
                        f"cannot locate the body of {func}()",
                    )
                )
                continue
            cases = {m.group(1) for m in SCHEMA_CASE_RE.finditer(body)}
            for enum_name in enumerators:
                if enum_name not in cases:
                    findings.append(
                        Finding(
                            source_sf.path,
                            0,
                            rule,
                            f"MessageType::{enum_name} has no case arm in "
                            f"{func}(); the type cannot cross the wire",
                        )
                    )
        for enum_name in enumerators:
            if named and enum_name not in named:
                findings.append(
                    Finding(
                        source_sf.path,
                        0,
                        "SCHEMA-NAME",
                        f"MessageType::{enum_name} is missing from the "
                        "kTypeNames wire-name table",
                    )
                )
        for enum_name in named:
            if enum_name not in enumerators:
                findings.append(
                    Finding(
                        source_sf.path,
                        0,
                        "SCHEMA-NAME",
                        f"kTypeNames entry {enum_name} names no MessageType "
                        "enumerator",
                    )
                )

    # -- round-trip coverage in the protocol test --
    if test_sf is not None and enumerators:
        builder = schema.get("roundtrip_function", "one_of_each_type")
        body = function_body(test_sf.code, rf"\b{builder}\s*\(")
        if not body:
            findings.append(
                Finding(
                    test_sf.path,
                    0,
                    "SCHEMA-PARSE",
                    f"cannot locate the round-trip builder {builder}() in the "
                    "protocol test",
                )
            )
        else:
            built = {m.group(1) for m in SCHEMA_USE_RE.finditer(body)}
            for enum_name in enumerators:
                if enum_name not in built:
                    findings.append(
                        Finding(
                            test_sf.path,
                            0,
                            "SCHEMA-ROUNDTRIP",
                            f"MessageType::{enum_name} is never built in "
                            f"{builder}(), so its encode/decode round trip is "
                            "untested",
                        )
                    )

    # -- JSONL writer/reader key symmetry --
    # Each entry pairs a writer with its reader inside one file: the
    # configured `campaign_io` source by default, or the entry's own `file`
    # (other flat-JSON schemas, e.g. the column-store footer, keep their
    # writer/reader pairs next to the format they serialize).
    io_sf = load("campaign_io")
    for pair in schema.get("jsonl", []):
        writer, reader = pair.get("writer"), pair.get("reader")
        label = pair.get("name", f"{writer}/{reader}")
        pair_rel = pair.get("file")
        pair_sf = (
            load_rel(pair_rel, f"schema.jsonl file for '{label}'")
            if pair_rel is not None
            else io_sf
        )
        if pair_sf is None:
            continue
        if not writer or not reader:
            findings.append(
                Finding(
                    pair_sf.path,
                    0,
                    "SCHEMA-PARSE",
                    f"schema.jsonl entry {pair!r} needs writer and reader",
                )
            )
            continue
        wbody = function_body(pair_sf.code_str, rf"\b{re.escape(writer)}\s*\(")
        rbody = function_body(pair_sf.code_str, rf"\b{re.escape(reader)}\s*\(")
        if not wbody or not rbody:
            missing = writer if not wbody else reader
            findings.append(
                Finding(
                    pair_sf.path,
                    0,
                    "SCHEMA-PARSE",
                    f"cannot locate the body of {missing}() for the "
                    f"'{label}' jsonl pair",
                )
            )
            continue
        wkeys = {m.group(1) for m in SCHEMA_WRITER_KEY_RE.finditer(wbody)}
        rkeys = {m.group(1) for m in SCHEMA_READER_KEY_RE.finditer(rbody)}
        for key in sorted(wkeys - rkeys):
            findings.append(
                Finding(
                    pair_sf.path,
                    0,
                    "SCHEMA-JSONL",
                    f"'{label}': key '{key}' is written by {writer}() but "
                    f"never read by {reader}() — schema drift",
                )
            )
        for key in sorted(rkeys - wkeys):
            findings.append(
                Finding(
                    pair_sf.path,
                    0,
                    "SCHEMA-JSONL",
                    f"'{label}': key '{key}' is read by {reader}() but "
                    f"never written by {writer}() — schema drift",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

FAMILIES = {"DET", "ITER", "COV", "ID", "PERF", "CONC", "SCHEMA"}


def run_lint(repo: str, cfg: dict, compdb: str | None, families: set[str]) -> list[Finding]:
    roots = sorted(
        set(cfg.get("det", {}).get("paths", ["src"]))
        | set(cfg.get("iter", {}).get("paths", ["src"]))
        | set(cfg.get("conc", {}).get("paths", ["src"]))
        | set(cfg.get("identity", {}).get("flag_scan_paths", []))
    )
    excluded = cfg.get("exclude_paths", [])
    discovered = set(discover_files(repo, roots, compdb))
    # Hot-path files are named individually (not as glob roots), so union
    # them into the scan set in case they sit outside the configured roots.
    for rel in cfg.get("perf", {}).get("hot_paths", []):
        if os.path.exists(os.path.join(repo, rel)):
            discovered.add(rel)
    files_by_path: dict[str, SourceFile] = {}
    for rel in sorted(discovered):
        if excluded and in_paths(rel, excluded):
            continue  # e.g. the lint's own negative fixtures
        try:
            with open(os.path.join(repo, rel), "r", encoding="utf-8") as fh:
                files_by_path[rel] = SourceFile(rel, fh.read())
        except (OSError, UnicodeDecodeError) as e:
            print(f"simlint: warning: skipping {rel}: {e}", file=sys.stderr)
    files = [files_by_path[p] for p in sorted(files_by_path)]

    findings: list[Finding] = []
    if "DET" in families:
        findings.extend(check_det(files, cfg))
    if "ITER" in families:
        findings.extend(check_iter(files, cfg))
    if "COV" in families:
        findings.extend(check_cov(files_by_path, cfg, repo))
    if "ID" in families:
        findings.extend(check_id(files_by_path, cfg, repo))
    if "PERF" in families:
        findings.extend(check_perf(files, cfg))
    if "CONC" in families:
        findings.extend(check_conc(files, cfg))
    if "SCHEMA" in families:
        findings.extend(check_schema(files_by_path, cfg, repo))

    # Apply inline suppressions.
    kept: list[Finding] = []
    for f in findings:
        sf = files_by_path.get(f.path)
        if sf is not None and f.rule in sf.allowed.get(f.line, set()):
            continue
        kept.append(f)
    return sorted(set(kept), key=lambda f: (f.path, f.line, f.rule, f.message))


EXPECT_RE = re.compile(r"//\s*expect:\s*([A-Z0-9\-]+)")


def self_test(fixtures_root: str) -> int:
    """Run every fixture directory and verify its expectations: each
    `// expect: RULE` must fire for that file, and no *unexpected* rule may
    fire in a fixture file. A fixture named `clean` must produce nothing."""
    failures = 0
    fixture_dirs = sorted(
        d
        for d in glob.glob(os.path.join(fixtures_root, "*"))
        if os.path.isdir(d) and os.path.exists(os.path.join(d, "fixture.toml"))
    )
    if not fixture_dirs:
        print(f"simlint: no fixtures under {fixtures_root}", file=sys.stderr)
        return 2
    for fixture in fixture_dirs:
        name = os.path.basename(fixture)
        try:
            cfg = load_config(os.path.join(fixture, "fixture.toml"))
        except ConfigError as e:
            print(f"[FAIL] {name}: {e}")
            failures += 1
            continue
        findings = run_lint(fixture, cfg, None, set(FAMILIES))
        # Findings anchored at non-source paths (e.g. config-level ID-STALE)
        # are declared in fixture.toml under [[expect_extra]].
        expected: dict[str, set[str]] = {}
        for extra in cfg.get("expect_extra", []):
            expected.setdefault(extra["path"], set()).add(extra["rule"])
        for src in glob.glob(os.path.join(fixture, "**", "*"), recursive=True):
            if not src.endswith((".cpp", ".hpp", ".h")):
                continue
            rel = os.path.relpath(src, fixture).replace(os.sep, "/")
            with open(src, "r", encoding="utf-8") as fh:
                for line in fh:
                    m = EXPECT_RE.search(line)
                    if m:
                        expected.setdefault(rel, set()).add(m.group(1))
        got: dict[str, set[str]] = {}
        for f in findings:
            got.setdefault(f.path, set()).add(f.rule)
        ok = True
        for rel, rules in sorted(expected.items()):
            missing = rules - got.get(rel, set())
            for rule in sorted(missing):
                print(f"[FAIL] {name}: expected {rule} in {rel}, not reported")
                ok = False
        for rel, rules in sorted(got.items()):
            unexpected = rules - expected.get(rel, set())
            for rule in sorted(unexpected):
                detail = "; ".join(
                    f.render() for f in findings if f.path == rel and f.rule == rule
                )
                print(f"[FAIL] {name}: unexpected {rule} in {rel}: {detail}")
                ok = False
        if name == "clean" and findings:
            ok = False
        n_rules = sum(len(r) for r in expected.values())
        print(f"[{'ok' if ok else 'FAIL'}] fixture {name}: {n_rules} expected rule(s)")
        if not ok:
            failures += 1
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="simlint", description=__doc__.splitlines()[0])
    parser.add_argument("--repo", default=None, help="repository root (default: auto)")
    parser.add_argument("--config", default=None, help="path to simlint.toml")
    parser.add_argument(
        "-p",
        "--build-dir",
        default=None,
        help="build dir containing compile_commands.json",
    )
    parser.add_argument(
        "--families",
        default="DET,ITER,COV,ID,PERF,CONC,SCHEMA",
        help="comma-separated rule families to run "
        "(DET,ITER,COV,ID,PERF,CONC,SCHEMA)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the negative fixtures and verify every rule family fires",
    )
    args = parser.parse_args(argv)

    tool_dir = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.abspath(args.repo) if args.repo else os.path.dirname(os.path.dirname(tool_dir))

    if args.self_test:
        return self_test(os.path.join(tool_dir, "fixtures"))

    families = {f.strip().upper() for f in args.families.split(",") if f.strip()}
    unknown = families - FAMILIES
    if unknown:
        print(f"simlint: unknown families: {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2
    config_path = args.config or os.path.join(tool_dir, "simlint.toml")
    try:
        cfg = load_config(config_path)
    except ConfigError as e:
        print(f"simlint: {e}", file=sys.stderr)
        return 2
    compdb = None
    if args.build_dir:
        compdb = os.path.join(args.build_dir, "compile_commands.json")
    elif os.path.exists(os.path.join(repo, "build", "compile_commands.json")):
        compdb = os.path.join(repo, "build", "compile_commands.json")

    findings = run_lint(repo, cfg, compdb, families)
    for f in findings:
        print(f.render())
    print(
        f"simlint: {len(findings)} finding(s) across families "
        f"{','.join(sorted(families))}",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
