// PERF fixture: a declared hot-path file with per-trial allocation churn.
// Every naked allocation below must fire PERF-ALLOC; the annotated cold
// site at the bottom must stay quiet (the allow() ledger works).
#include <memory>
#include <vector>

namespace fixture {

struct Trial {
  int bits = 0;
};

int run_trial(const std::vector<int>& plan) {
  Trial* scratch = new Trial();                // expect: PERF-ALLOC
  auto owned = std::make_unique<Trial>();      // expect: PERF-ALLOC
  auto shared = std::make_shared<Trial>();     // expect: PERF-ALLOC
  std::vector<int> copy = plan;                // expect: PERF-ALLOC
  // simlint: allow(PERF-ALLOC) -- fixture: annotated cold site stays quiet
  auto cold = std::make_shared<Trial>();
  const int sum = owned->bits + shared->bits + cold->bits;
  delete scratch;
  return sum + static_cast<int>(copy.size());
}

}  // namespace fixture
