// Idiomatic repo code: steady_clock for telemetry, ordered string-keyed
// containers, fully initialized payload structs. Must lint clean.
#include <chrono>
#include <map>
#include <string>

struct Telemetry {
  double seconds = 0.0;
  unsigned long long shards_done = 0;
};

inline double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start).count();
}

inline int lookup(const std::map<std::string, int>& table, const std::string& key) {
  const auto it = table.find(key);
  return it == table.end() ? -1 : it->second;
}
