// expect: SCHEMA-JSONL
#include <string>

void append_field(std::string& out, const char* key, unsigned long value);
unsigned long get_uint(int& obj, const char* key);

std::string trial_to_jsonl() {
  std::string out;
  append_field(out, "trial", 1);
  append_field(out, "outcome", 2);
  append_field(out, "cycles", 3);  // never read back -> SCHEMA-JSONL
  return out;
}

void trial_from_jsonl(int& obj) {
  get_uint(obj, "trial");
  get_uint(obj, "outcome");
  get_uint(obj, "detector");  // never written -> SCHEMA-JSONL
}
