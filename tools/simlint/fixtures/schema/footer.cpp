// expect: SCHEMA-JSONL
// A per-entry `file` override: this writer/reader pair lives outside the
// configured campaign_io source, like the column-store footer does.
#include <string>

void append_field(std::string& out, const char* key, unsigned long value);
unsigned long get_uint(int& obj, const char* key);

std::string footer_to_json() {
  std::string out;
  append_field(out, "rows", 1);
  append_field(out, "data_hash", 2);  // never read back -> SCHEMA-JSONL
  return out;
}

void footer_from_json(int& obj) {
  get_uint(obj, "rows");
}
