// expect: SCHEMA-ROUNDTRIP
#include "proto.hpp"

int one_of_each_type() {
  int built = 0;
  built += static_cast<int>(MessageType::kPing);
  built += static_cast<int>(MessageType::kData);
  // kBye is never built -> SCHEMA-ROUNDTRIP
  return built;
}
