// expect: SCHEMA-ENUM
#pragma once

enum class MessageType : unsigned char {
  kPing,
  kData,
  kBye,
};

// Deliberately stale: the enum above declares three enumerators.
inline constexpr unsigned kMessageTypeCount = 2;
