// expect: SCHEMA-NAME
// expect: SCHEMA-ENCODE
// expect: SCHEMA-DECODE
#include "proto.hpp"

struct TypeName {
  MessageType type;
  const char* name;
};

constexpr TypeName kTypeNames[] = {
    {MessageType::kPing, "ping"},
    {MessageType::kData, "data"},
    // kBye has no wire name -> SCHEMA-NAME
};

void encode_message(MessageType t) {
  switch (t) {
    case MessageType::kPing:
    case MessageType::kData:
      break;
    // kBye has no encode arm -> SCHEMA-ENCODE
    default:
      break;
  }
}

void decode_message(MessageType t) {
  switch (t) {
    case MessageType::kPing:
    case MessageType::kData:
      break;
    // kBye has no decode arm -> SCHEMA-DECODE
    default:
      break;
  }
}
