// Deliberate violation: unordered container feeding an export-shaped loop.
#include <string>
#include <unordered_map>

int sum_counts(const std::unordered_map<std::string, int>& counts) {  // expect: ITER-UNORDERED
  int total = 0;
  for (const auto& [name, n] : counts) total += n;
  return total;
}
