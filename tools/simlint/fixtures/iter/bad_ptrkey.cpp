// Deliberate violation: pointer-keyed ordered container (iterates in
// allocation order, which varies run to run).
#include <map>

struct Shard {
  int id = 0;
};

int first_id(const std::map<const Shard*, int>& order) {  // expect: ITER-PTRKEY
  return order.empty() ? -1 : order.begin()->first->id;
}
