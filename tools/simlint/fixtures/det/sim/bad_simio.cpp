// Deliberate violations: host sleeps and socket syscalls inside a simulated
// path (this directory is listed in det.sim_paths).
#include <chrono>
#include <thread>

void lazy_pipeline_stall() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // expect: DET-SLEEP
}

int exfiltrate_trial(int fd, const char* buf, unsigned long len) {
  return static_cast<int>(send(fd, buf, len, 0));  // expect: DET-SOCKET
}
