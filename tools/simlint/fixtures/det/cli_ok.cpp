// Allowed: this file stands in for the sanctioned CLI layer
// (det.env_allowed_files), so its getenv must NOT be reported.
#include <cstdlib>

const char* sanctioned() { return std::getenv("RESTORE_TRIALS"); }
