// Deliberate violation: getenv outside the sanctioned CLI layer.
#include <cstdlib>

const char* rogue_override() {
  return std::getenv("RESTORE_ROGUE");  // expect: DET-ENV
}
