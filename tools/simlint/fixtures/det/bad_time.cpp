// Deliberate violation: wall-clock read.
#include <chrono>

long long stamp() {
  auto now = std::chrono::system_clock::now();  // expect: DET-TIME
  return now.time_since_epoch().count();
}
