// Allowed: this file stands in for the service/supervision layers, which are
// *not* in det.sim_paths — its sleep and socket calls must NOT be reported.
#include <chrono>
#include <thread>

void retry_backoff() {
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

int serve(int fd, const char* buf, unsigned long len) {
  return static_cast<int>(send(fd, buf, len, 0));
}
