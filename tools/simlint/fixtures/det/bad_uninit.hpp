// Deliberate violation: aggregate payload struct with an uninitialized
// builtin member (indeterminate bits would reach snapshots/digests).
#pragma once

struct TracePayload {
  int cycle = 0;
  bool fault;  // expect: DET-UNINIT
};
