// Deliberate violation: hardware / standard-library randomness.
#include <random>

int noise() {
  std::random_device rd;                        // expect: DET-RAND
  std::uniform_int_distribution<int> dist(0, 9);
  return dist(rd);
}
