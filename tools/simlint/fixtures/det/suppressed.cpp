// Inline suppression: the allow() comment must silence the finding on the
// next line, so this file expects nothing.
#include <cstdlib>

const char* tz() {
  // simlint: allow(DET-ENV) -- fixture: exercises the suppression syntax
  return std::getenv("TZ");
}
