// Fixture flag consumers.
// expect: ID-FLAG-UNCLASSIFIED
// expect: ID-FLAG-UNHASHED
struct Args {
  unsigned long long value_u64(const char*, unsigned long long) const;
  const char* value(const char*, const char*) const;
  bool has_flag(const char*) const;
};

void run(const Args& args) {
  auto trials = args.value_u64("trials", 10);        // classified, hashed: ok
  auto shard = args.value_u64("shard-trials", 0);    // manifest identity: ok
  auto verbose = args.has_flag("verbose");           // presentation: ok
  auto seed = args.value_u64("seed", 1);             // unclassified
  auto workers = args.value_u64("workers", 1);       // bad hashed_via token
  auto model = args.value("fault-model", "single");  // hashed via fault_model: ok
  auto bits = args.value_u64("fault-bits", 2);       // same shared field: ok
  (void)trials, (void)shard, (void)verbose, (void)seed, (void)workers;
  (void)model, (void)bits;
}
