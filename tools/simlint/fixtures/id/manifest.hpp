// Fixture manifest: shard_trials participates in the identity comparison.
#pragma once

struct CampaignManifest {
  unsigned long long shard_trials = 0;

  bool matches(const CampaignManifest& other) const noexcept {
    return shard_trials == other.shard_trials;
  }
};
