// Fixture stand-in for the sanctioned CLI layer and its identity table.
// expect: ID-ENV-UNDECLARED
// expect: ID-ENV-UNCLASSIFIED
// expect: ID-ENV-UNHASHED
// expect: ID-STALE
#include <cstdlib>

enum class EnvClass { kIdentity, kPresentation };

struct EnvOverride {
  const char* name;
  EnvClass cls;
};

constexpr EnvOverride kEnvOverrides[] = {
    {"SIM_TRIALS", EnvClass::kIdentity},
    {"SIM_SEED", EnvClass::kIdentity},
    {"SIM_FAULT_MODEL", EnvClass::kIdentity},
    {"SIM_LOGS", EnvClass::kPresentation},
};

const char* rogue() { return std::getenv("SIM_ROGUE"); }
