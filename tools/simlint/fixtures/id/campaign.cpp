// Fixture config_hash: mentions `trials`, `seed`, and `fault_model` only.
using u64 = unsigned long long;

struct Config {
  u64 trials = 0;
  u64 seed = 0;
  u64 fault_model = 0;
};

u64 config_hash(const Config& config) {
  u64 h = 1469598103934665603ull;
  h = (h ^ config.trials) * 1099511628211ull;
  h = (h ^ config.seed) * 1099511628211ull;
  h = (h ^ config.fault_model) * 1099511628211ull;
  return h;
}
