// Deliberate lock-discipline violations for the CONC family self-test. The
// fixture is never compiled; the lint matches the annotation lexically, so a
// stand-in macro is enough.
#pragma once

#include <condition_variable>
#include <mutex>

#define RESTORE_GUARDED_BY(x)

class Sampler {
 public:
  void bump();

 private:
  std::mutex mutex_;
  int guarded_ok_ RESTORE_GUARDED_BY(mutex_) = 0;
  int epoch_ = 0;  // expect: CONC-UNGUARDED
  int ledgered_ = 0;  // covered by the [[conc.exclude]] ledger entry
  const int limit_ = 8;  // const: immutable, never flagged
};

// No mutex member: nothing here needs annotation.
struct PlainCounter {
  int ticks = 0;
};

inline void raw_locking(std::mutex& m) {
  m.lock();  // expect: CONC-RAW-LOCK
  m.unlock();  // expect: CONC-RAW-LOCK
}

inline bool bare_wait(std::condition_variable& cv,
                      std::unique_lock<std::mutex>& lock, const bool& ready) {
  cv.wait(lock);  // expect: CONC-CV-NOPRED
  cv.wait(lock, [&ready] { return ready; });  // predicate form: fine
  return ready;
}
