// expect: COV-STALE-EXCLUDE
#pragma once

#include <array>

#include "uop.hpp"

class Core {
 public:
  // ---- Machine state (fixture)
  std::array<Slot, kSlots> slots_{};
  u64 pc_ = 0;
  u32 watchdog_ = 0;
  bool stalled_ = false;  // expect: COV-UNREGISTERED

  // not injectable: derived telemetry, rebuilt every cycle
  u64 stat_cycles_ = 0;

 private:
  int hidden_ = 0;
};
