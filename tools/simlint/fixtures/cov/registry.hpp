// Fixture stand-in for the StateRegistry interface; never compiled.
#pragma once

#include "config.hpp"

enum StorageClass { kLatch, kSram };
enum LhfProtection { kNone, kParity, kEcc };

struct StateRegistry {
  auto int_adder();
  auto flag_adder();
};
