// Miniature registry with one deliberate violation per COV rule:
//   - slots.pc registers 2 entries against extent 4      -> COV-EXTENT
//   - watchdog declares 40 bits against u32 storage       -> COV-WIDTH
//   - slots.valid is registered twice                     -> COV-DUP
//   - ghost accesses a member Core does not declare       -> COV-DEAD
//   - dead_slot / never_used are defined but never used   -> COV-DEAD
//   - stalled_ is never registered (finding in core.hpp)  -> COV-UNREGISTERED
// expect: COV-DEAD
// expect: COV-DUP
// expect: COV-EXTENT
// expect: COV-WIDTH
#include "core.hpp"
#include "registry.hpp"

namespace {

bool always_live(const Core&, u32) { return true; }
bool never_used(const Core&, u32) { return false; }

auto slot_at = [](Core& c, u32 e) -> Slot& { return c.slots_[e % kSlots]; };
auto dead_slot = [](Core& c, u32 e) -> Slot& { return c.slots_[e]; };

}  // namespace

void register_all(StateRegistry& reg) {
  auto add_int = reg.int_adder();
  auto add_flag = reg.flag_adder();

  add_int("slots.pc", kLatch, kParity, 2, 64,
          [](Core& c, u32 e) -> u64& { return slot_at(c, e).pc; }, always_live);
  add_flag("slots.valid", kLatch, kParity, kSlots,
           [](Core& c, u32 e) -> bool& { return slot_at(c, e).valid; },
           always_live);
  add_flag("slots.valid", kLatch, kParity, kSlots,
           [](Core& c, u32 e) -> bool& { return slot_at(c, e).valid; },
           always_live);
  add_int("pc", kLatch, kParity, 1, 64,
          [](Core& c, u32) -> u64& { return c.pc_; }, always_live);
  add_int("watchdog", kLatch, kParity, 1, 40,
          [](Core& c, u32) -> u32& { return c.watchdog_; }, always_live);
  add_int("ghost", kLatch, kParity, 1, 64,
          [](Core& c, u32) -> u64& { return c.ghost_; }, always_live);
}
