#pragma once

#include "config.hpp"

struct Slot {
  u64 pc = 0;
  bool valid = false;
};
