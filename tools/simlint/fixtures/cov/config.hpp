#pragma once

using u8 = unsigned char;
using u32 = unsigned int;
using u64 = unsigned long long;

constexpr u32 kSlots = 4;
