#include "reliability/fit.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace restore::reliability {

double fit_rate(u64 bits, double fit_per_bit, double sdc_probability) {
  return static_cast<double>(bits) * fit_per_bit * sdc_probability;
}

std::vector<FitPoint> fit_scaling(const SdcRates& rates, const FitConfig& config) {
  std::vector<FitPoint> points;
  points.reserve(config.design_bits.size());
  for (const u64 bits : config.design_bits) {
    FitPoint point;
    point.bits = bits;
    point.fit_baseline = fit_rate(bits, config.fit_per_bit, rates.baseline);
    point.fit_restore = fit_rate(bits, config.fit_per_bit, rates.restore);
    point.fit_lhf = fit_rate(bits, config.fit_per_bit, rates.lhf);
    point.fit_lhf_restore = fit_rate(bits, config.fit_per_bit, rates.lhf_restore);
    points.push_back(point);
  }
  return points;
}

double mtbf_goal_fit(double years) {
  // FIT = failures per 1e9 hours; MTBF of `years` => 1e9 / (years * 8760).
  return 1e9 / (years * 8760.0);
}

u64 max_bits_meeting_goal(double goal_fit, double fit_per_bit,
                          double sdc_probability) {
  const double per_bit_sdc_fit = fit_per_bit * sdc_probability;
  if (per_bit_sdc_fit <= 0.0) return ~u64{0};
  return static_cast<u64>(goal_fit / per_bit_sdc_fit);
}

std::vector<u64> fit_weighted_allocation(const std::vector<FitStructure>& structures,
                                         u64 total_trials) {
  std::vector<double> contribution(structures.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < structures.size(); ++i) {
    const double w = structures[i].weight == 0.0 ? 1.0 : structures[i].weight;
    if (w < 0.0) throw std::invalid_argument("negative FIT weight: " + structures[i].name);
    contribution[i] = static_cast<double>(structures[i].bits) * w;
    total += contribution[i];
  }
  std::vector<u64> alloc(structures.size(), 0);
  if (total_trials == 0) return alloc;
  if (total <= 0.0) {
    throw std::invalid_argument("fit_weighted_allocation: no structure contributes FIT");
  }

  // Largest-remainder method: floor every quota, then hand the leftover
  // trials to the largest fractional remainders (ties to the lower index), so
  // the allocation is integral, exact, and deterministic.
  std::vector<double> remainder(structures.size(), 0.0);
  u64 assigned = 0;
  for (std::size_t i = 0; i < structures.size(); ++i) {
    const double quota =
        contribution[i] / total * static_cast<double>(total_trials);
    alloc[i] = static_cast<u64>(quota);
    remainder[i] = quota - static_cast<double>(alloc[i]);
    assigned += alloc[i];
  }
  std::vector<std::size_t> order(structures.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainder[a] > remainder[b];
  });
  for (std::size_t i = 0; assigned < total_trials; ++assigned) {
    ++alloc[order[i]];
    i = (i + 1) % order.size();
  }
  return alloc;
}

}  // namespace restore::reliability
