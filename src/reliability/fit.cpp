#include "reliability/fit.hpp"

namespace restore::reliability {

double fit_rate(u64 bits, double fit_per_bit, double sdc_probability) {
  return static_cast<double>(bits) * fit_per_bit * sdc_probability;
}

std::vector<FitPoint> fit_scaling(const SdcRates& rates, const FitConfig& config) {
  std::vector<FitPoint> points;
  points.reserve(config.design_bits.size());
  for (const u64 bits : config.design_bits) {
    FitPoint point;
    point.bits = bits;
    point.fit_baseline = fit_rate(bits, config.fit_per_bit, rates.baseline);
    point.fit_restore = fit_rate(bits, config.fit_per_bit, rates.restore);
    point.fit_lhf = fit_rate(bits, config.fit_per_bit, rates.lhf);
    point.fit_lhf_restore = fit_rate(bits, config.fit_per_bit, rates.lhf_restore);
    points.push_back(point);
  }
  return points;
}

double mtbf_goal_fit(double years) {
  // FIT = failures per 1e9 hours; MTBF of `years` => 1e9 / (years * 8760).
  return 1e9 / (years * 8760.0);
}

u64 max_bits_meeting_goal(double goal_fit, double fit_per_bit,
                          double sdc_probability) {
  const double per_bit_sdc_fit = fit_per_bit * sdc_probability;
  if (per_bit_sdc_fit <= 0.0) return ~u64{0};
  return static_cast<u64>(goal_fit / per_bit_sdc_fit);
}

}  // namespace restore::reliability
