// FIT-rate scaling model (paper §5.3, Figure 8).
//
// FIT = failures in 10^9 device-hours. The paper assumes a raw soft-error
// rate of 0.001 FIT per bit [Hazucha & Svensson], multiplies by the design's
// bit count and by the probability that a flipped bit becomes silent data
// corruption under each protection scheme, and extrapolates across design
// sizes assuming a constant masking rate. A 1000-year MTBF goal corresponds
// to ~114 FIT; designs above that line fail the goal.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace restore::reliability {

// Silent-data-corruption probabilities per injected fault, measured by the
// microarchitectural campaign (faultinject/classify.hpp):
struct SdcRates {
  double baseline = 0.0;     // no detection at all
  double restore = 0.0;      // ReStore symptoms (Fig. 5 uncovered fraction)
  double lhf = 0.0;          // hardened pipeline alone
  double lhf_restore = 0.0;  // hardened + ReStore (Fig. 6 uncovered fraction)
};

struct FitConfig {
  double fit_per_bit = 0.001;  // raw per-bit FIT (paper's assumption)
  // Design sizes in bits of unprotected "interesting" state. The paper sweeps
  // 50k (one core's worth) through 25.6M.
  std::vector<u64> design_bits = {50'000,    100'000,   200'000,  400'000,
                                  800'000,   1'600'000, 3'200'000, 6'400'000,
                                  12'800'000, 25'600'000};
};

struct FitPoint {
  u64 bits = 0;
  double fit_baseline = 0.0;
  double fit_restore = 0.0;
  double fit_lhf = 0.0;
  double fit_lhf_restore = 0.0;
};

// FIT for one configuration.
double fit_rate(u64 bits, double fit_per_bit, double sdc_probability);

// The whole Figure 8 sweep.
std::vector<FitPoint> fit_scaling(const SdcRates& rates, const FitConfig& config = {});

// FIT value of an MTBF goal expressed in years (paper: 1000 years -> ~114 FIT).
double mtbf_goal_fit(double years);

// Largest design size (bits) that meets `goal_fit` under `sdc_probability` —
// used for the paper's observation that lhf+ReStore matches a design 1/7th
// the size.
u64 max_bits_meeting_goal(double goal_fit, double fit_per_bit, double sdc_probability);

// One injectable structure of the design, as read from the audited state
// manifest: a name and its bit count. `weight` optionally scales the
// per-bit FIT (e.g. SRAM vs latch process sensitivity); 0 means 1.0.
struct FitStructure {
  std::string name;
  u64 bits = 0;
  double weight = 1.0;
};

// FIT-weighted campaign allocation: split `total_trials` across structures in
// proportion to their FIT contribution (bits * weight), using the
// largest-remainder method so the counts are integral, sum exactly to
// `total_trials`, and are deterministic (ties broken by lower index). A
// structure with zero FIT contribution gets zero trials. Throws
// std::invalid_argument when every contribution is zero but trials were
// requested.
std::vector<u64> fit_weighted_allocation(const std::vector<FitStructure>& structures,
                                         u64 total_trials);

}  // namespace restore::reliability
