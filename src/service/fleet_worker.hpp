// Fleet worker: the remote execution end of the multi-node campaign fabric.
//
// A worker is a small TCP server speaking the framed wire protocol
// (service/protocol.hpp). The coordinator (service/fleet_coordinator.hpp)
// connects, sends a `lease` frame naming a campaign spec and one shard index,
// and the worker answers with the shard's trace JSONL bytes — streamed as
// `lease-data` chunks and sealed with a `lease-result` — or a `lease-failed`
// if the shard itself throws. Shards are pure functions of (spec, index), so
// the worker needs no campaign state: every lease is self-contained, any
// worker can serve any shard, and duplicate leases (work stealing) are
// harmless.
//
// Results are content-addressed: with a cache directory configured, a served
// shard is persisted under <cache>/<trace-key>/shard-<index>.jsonl, where
// <trace-key> is the campaign identity key (config_hash x shard geometry,
// the spec_trace_filename stem). A re-leased or re-run shard is answered
// from the cache byte-for-byte instead of recomputed — which is what makes
// coordinator crash/retry loops cheap and is itself exercised by the
// byte-identity tests.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "service/protocol.hpp"

namespace restore::service {

struct FleetWorkerOptions {
  // host:port to bind; port 0 asks the kernel for an ephemeral port (tests
  // and the smoke script read the bound address back from port()/the log).
  std::string listen = "127.0.0.1:0";
  // Shard result cache root; empty disables caching (every lease recomputes).
  std::string cache_dir;
  // Graceful-shutdown flag, polled by the accept and connection loops.
  const std::atomic<bool>* stop_flag = nullptr;
  std::FILE* log_stream = nullptr;  // default stderr
  bool quiet = false;
  // Chaos hook: after serving N leases successfully, drop every later lease's
  // connection on the floor mid-protocol — exactly what a SIGKILLed node
  // looks like to the coordinator. 0 = never fail.
  u64 fail_after_leases = 0;
};

class FleetWorker {
 public:
  explicit FleetWorker(FleetWorkerOptions opts);
  ~FleetWorker();

  FleetWorker(const FleetWorker&) = delete;
  FleetWorker& operator=(const FleetWorker&) = delete;

  // Bind and listen (throws std::runtime_error on a bad address or a bind
  // failure). After start(), port()/address() report the bound endpoint.
  void start();

  // Accept loop; returns once stop() was called or the stop flag is set.
  // Connections are served on their own threads, joined before run() returns.
  void run();

  // Wake run() and refuse new connections. Idempotent, callable from a
  // signal-driven thread.
  void stop();

  u16 port() const noexcept { return port_; }
  std::string address() const;  // "host:port" actually bound

  // Counters (exposed over the wire via worker-status -> worker-info).
  u64 leases_served() const noexcept { return leases_served_.load(); }
  u64 cache_hits() const noexcept { return cache_hits_.load(); }
  u64 lease_failures() const noexcept { return lease_failures_.load(); }
  u64 leases_active() const noexcept { return active_.load(); }

 private:
  void serve_connection(int fd);
  // Serve one lease; false = drop the connection without replying (the chaos
  // hook fired or the peer is gone).
  bool handle_lease(int fd, const WireMessage& msg);
  void log(const char* format, ...);

  FleetWorkerOptions opts_;
  int listener_ = -1;
  u16 port_ = 0;
  std::string host_;
  std::atomic<bool> stopping_{false};
  std::atomic<u64> leases_served_{0};
  std::atomic<u64> cache_hits_{0};
  std::atomic<u64> lease_failures_{0};
  std::atomic<u64> active_{0};
  Mutex threads_mutex_;
  std::vector<std::thread> threads_ RESTORE_GUARDED_BY(threads_mutex_);
};

}  // namespace restore::service
