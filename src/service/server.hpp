// The `restored` campaign server.
//
// One IO thread owns every socket: it accepts connections on a Unix-domain
// listener (and an optional TCP listener), reassembles frames, decodes
// messages and writes replies. Campaign execution happens on a small pool of
// runner threads that block in JobQueue::pop_ready(); they never touch a
// socket. The two sides meet at a mutex-guarded notice queue: a runner's
// progress callback pushes campaign events (and one completion notice per
// job) and wakes the IO thread through a self-pipe, and the IO thread turns
// notices into `event` / `done` frames for subscribed clients.
//
// Jobs are deduplicated by campaign identity (spec_trace_filename): a spec
// matching a queued or running job attaches to it, and a spec whose spool
// trace is already complete (manifest matches, every shard committed, no
// quarantine) is answered from the spool without running anything. Traces are
// produced by the same run_sharded_campaign orchestrator the batch CLIs use,
// with resume enabled, so a daemon restarted mid-job converges to the same
// byte-identical trace a direct run produces.
//
// Analytics: a runner that completes a job compacts its spool trace into the
// columnar trial store (src/analytics) right after mark_finished — still on
// the runner thread, so the IO loop never blocks on compaction. An `analyze`
// request over a finished job streams the compacted store through the query
// engine and replies with the rendered report; rendered reports are cached
// per (job, interval, format), so repeat dashboards cost one map lookup.
// The store is byte-deterministic, so a daemon restart just re-derives the
// identical .cols file if it is missing.
//
// Shutdown: stop() — or the wake fd turning readable, wired to
// common/shutdown's SIGTERM self-pipe — closes the listeners, shuts the
// queue down and lets in-flight campaigns drain their running shards via the
// shared stop flag. Still-queued jobs are marked stopped (resumable on
// restart), subscribers get their `done` frames, every client gets a
// `shutdown` frame, and run() returns 0.
#pragma once

#include <atomic>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "faultinject/progress.hpp"
#include "common/thread_annotations.hpp"
#include "service/job_queue.hpp"

namespace restore::service {

struct ServerOptions {
  std::string socket_path;  // Unix-domain listener path (required)
  std::string listen;       // optional TCP "host:port" ("" = Unix only)
  std::string spool_dir = ".";  // traces + manifests live here
  // Runner threads = campaigns in flight at once. 0 is an accept-only test
  // hook: jobs queue up but never start, so attach behaviour is
  // deterministic to observe.
  std::size_t job_workers = 1;
  std::size_t campaign_workers = 0;  // shard workers per campaign (0 = inline)
  u64 heartbeat_every_shards = 1;
  u64 shard_retries = 2;
  u64 retry_backoff_ms = 50;
  // Graceful-stop flag handed to every campaign (usually
  // common/shutdown's process-wide flag; tests pass their own).
  const std::atomic<bool>* stop_flag = nullptr;
  // Becomes readable when the process should drain (usually
  // common/shutdown's wake fd); -1 = stop() only.
  int wake_fd = -1;
  std::FILE* log_stream = nullptr;  // daemon log lines; nullptr = quiet
};

class CampaignServer {
 public:
  explicit CampaignServer(ServerOptions opts);
  ~CampaignServer();
  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  // Create the spool dir, bind the listeners and spawn the runner threads.
  // Throws std::runtime_error when a listener cannot be bound.
  void start();

  // Serve until stop() is called or the wake fd turns readable. Returns the
  // daemon exit code: 0 after a clean drain.
  int run();

  // Request a drain from any thread (idempotent).
  void stop();

  // Campaigns actually executed by a runner — cache hits and attaches
  // excluded (test hook).
  u64 campaigns_run() const noexcept {
    return campaigns_run_.load(std::memory_order_relaxed);
  }

  const std::string& unix_socket_path() const noexcept {
    return opts_.socket_path;
  }

 private:
  struct Client {
    int fd = -1;
    FrameReader reader;
    std::string outbuf;    // framed bytes not yet written
    bool closing = false;  // close once outbuf drains (protocol error path)
    std::set<u64> subscriptions;  // job ids this client streams
  };

  // A runner -> IO-thread handoff: either one campaign event of `job` or
  // (finished) the news that `job` reached a terminal state.
  struct Notice {
    u64 job = 0;
    bool finished = false;
    faultinject::CampaignEvent event;
  };

  void runner_loop();
  void run_job(u64 id);
  void push_notice(Notice notice);
  void drain_notices();

  void accept_clients(int listener);
  void read_client(Client& client);
  void flush_client(Client& client);
  void close_client(int fd);
  void handle_message(Client& client, const WireMessage& msg);
  void handle_submit(Client& client, const WireMessage& msg);
  void handle_fetch(Client& client, const WireMessage& msg);
  void handle_analyze(Client& client, const WireMessage& msg);
  void send_message(Client& client, const WireMessage& msg);
  void send_error(Client& client, const std::string& text);
  void broadcast_done(u64 job);

  WireMessage job_status_message(const JobSnapshot& snap) const;
  WireMessage done_message(const JobSnapshot& snap) const;

  // Compact `trace_path` into its sidecar .cols store if it is not there yet
  // (runner threads after completion; the analyze path as a fallback for jobs
  // served straight from the spool). Returns the store path; throws when the
  // trace cannot be compacted.
  std::string ensure_store(const std::string& trace_path);

  void begin_drain();
  void finish_drain();
  void log(const char* format, ...);

  ServerOptions opts_;
  JobQueue queue_;
  std::vector<std::thread> runners_;
  std::atomic<std::size_t> runners_alive_{0};
  std::atomic<u64> campaigns_run_{0};
  std::atomic<bool> stopping_{false};

  Mutex notice_mutex_;
  std::deque<Notice> notices_ RESTORE_GUARDED_BY(notice_mutex_);

  // Rendered analysis reports, keyed by (job, interval, json-format). Filled
  // by the IO thread on the first analyze of a job; guarded because runner
  // threads share the object lifetime (they compact stores concurrently) and
  // future invalidation must not need a locking redesign.
  Mutex analytics_mutex_;
  std::map<std::tuple<u64, u64, bool>, std::string> analytics_cache_
      RESTORE_GUARDED_BY(analytics_mutex_);

  int unix_listener_ = -1;
  int tcp_listener_ = -1;
  int notify_read_ = -1;
  int notify_write_ = -1;
  std::map<int, Client> clients_;  // fd -> client (deterministic iteration)
  bool draining_ = false;          // IO-thread state: listeners closed
};

}  // namespace restore::service
