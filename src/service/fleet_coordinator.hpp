// Fleet coordinator: fault-tolerant multi-node campaign execution.
//
// The coordinator decomposes a campaign into its deterministic shard plan
// (service/job_queue.hpp: spec_shard_plan) and leases shards to remote fleet
// workers (service/fleet_worker.hpp) over the framed wire protocol. One
// thread per node drives its worker: acquire a lease from the shared
// ShardLeaseBook, ship it, stream the shard's JSONL bytes back, verify them,
// and commit first-wins into the merged trace.
//
// Fault tolerance:
//   - Connections are made with a bounded timeout and bounded exponential
//     retry; a transport fault (connect failure, mid-stream EOF, frame error,
//     deadline blown) releases the lease so another node picks the shard up.
//   - A node that keeps faulting is *quarantined*: benched for the rest of
//     the campaign and recorded in the manifest's node-quarantine arrays.
//     Its shards are re-leased elsewhere, so node quarantine alone never
//     makes a trace partial.
//   - When the pending queue drains, idle nodes *steal*: they duplicate the
//     oldest sufficiently-aged outstanding lease, bounding the campaign tail
//     by the fastest healthy node. Shards are deterministic and commits are
//     first-wins, so duplicate execution is harmless.
//   - A shard that fails on every node it is leased to (the shard itself
//     throws, not the transport) is quarantined exactly like the local
//     orchestrator's shard quarantine, and a later --resume re-attempts it.
//
// Byte identity: the merged trace is written with the same header, the same
// per-shard JSONL lines (workers run the same spec_shard_jsonl the local
// runner streams), and on completion the same canonical (shard, slot)
// rewrite — so a complete fleet trace is byte-identical to the single-node
// run at any node count, under any interleaving of crashes, re-leases and
// --resume.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "service/protocol.hpp"

namespace restore::service {

struct FleetOptions {
  std::vector<std::string> nodes;  // worker addresses, "host:port"
  std::string out_jsonl;           // merged trace path (required)
  bool resume = false;             // reuse completed shards from the manifest

  // Transport supervision.
  u64 connect_timeout_ms = 2'000;  // per connection attempt
  u64 node_retries = 2;            // extra connect attempts per lease
  u64 retry_backoff_ms = 50;       // base backoff (doubles per attempt)
  u64 lease_deadline_ms = 60'000;  // whole-lease receive deadline
  u64 node_faults_max = 3;         // transport faults before node quarantine

  // Scheduling.
  u64 steal_after_ms = 10'000;       // lease age before an idle node steals it
  u64 shard_lease_attempts = 3;      // leases per shard before shard quarantine
  u64 max_shards = 0;  // stop after N fresh commits (0 = run all); the
                       // chaos-test "interrupt mid-campaign" hook

  const std::atomic<bool>* stop_flag = nullptr;
  std::FILE* log_stream = nullptr;  // default stderr
  bool quiet = false;
};

struct FleetNodeTelemetry {
  std::string address;
  u64 shards_committed = 0;  // leases this node committed first
  u64 stolen_commits = 0;    // committed leases that were steals
  u64 cache_hits = 0;        // committed leases the worker served from cache
  u64 faults = 0;            // transport faults observed
  bool quarantined = false;
  std::string last_error;
};

struct FleetTelemetry {
  std::vector<FleetNodeTelemetry> nodes;  // FleetOptions::nodes order
  u64 shards_total = 0;
  u64 shards_done = 0;
  u64 resumed_shards = 0;
  u64 trials_done = 0;
  u64 stolen_commits = 0;
  u64 quarantined_shards = 0;
  u64 quarantined_nodes = 0;
  bool complete = false;  // every shard committed, trace canonicalized
  bool stopped = false;   // the stop flag (or max_shards) cut the run
};

// Connect to "host:port" with a bounded timeout (non-blocking connect +
// poll). Returns the connected fd, or -1 with *error describing the failure.
// Shared with restorectl's --connect-timeout-ms.
int connect_tcp_timeout(const std::string& address, u64 timeout_ms,
                        std::string* error);

// Run `spec` across the fleet. Returns the batch-CLI exit code: 0 complete,
// 3 quarantine (shards left behind or nodes benched), 130 stopped/cut, 1 on
// a coordinator-side failure. Throws std::runtime_error on unusable options
// (no nodes, no output path, invalid spec, alien resume manifest).
int run_fleet_campaign(const JobSpec& spec, const FleetOptions& opts,
                       FleetTelemetry* telemetry);

}  // namespace restore::service
