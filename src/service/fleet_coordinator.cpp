#include "service/fleet_coordinator.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/thread_annotations.hpp"
#include "faultinject/campaign_io.hpp"
#include "faultinject/orchestrator.hpp"
#include "service/job_queue.hpp"

namespace restore::service {

namespace {

using faultinject::CampaignManifest;
using faultinject::ShardLeaseBook;
using faultinject::ShardSpec;
using Clock = std::chrono::steady_clock;

// Receive-poll granularity: how often a blocked lease read re-checks the
// stop flag and the whole-lease deadline.
constexpr int kRecvPollMs = 200;

u64 ms_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(to - from).count());
}

void logf(std::FILE* stream, const char* format, ...) {
  if (stream == nullptr) return;
  std::va_list args;
  va_start(args, format);
  std::vfprintf(stream, format, args);
  va_end(args);
  std::fputc('\n', stream);
  std::fflush(stream);
}

// How one lease ended, from the coordinator's point of view.
struct LeaseOutcome {
  enum class Status {
    kOk,           // blob holds the shard's verified-length byte stream
    kShardFailed,  // the worker ran the shard and the shard threw
    kFault,        // transport trouble: the node, not the shard, is suspect
  };
  Status status = Status::kFault;
  std::string blob;  // newline-terminated shard JSONL (kOk only)
  u64 trials = 0;
  bool cached = false;
  std::string error;
};

// The blob a worker returned must be exactly the shard's planned lines:
// trial_count of them, keyed (shard.index, slot) in slot order. Anything
// else means a corrupt or confused node and is treated as a transport fault.
std::optional<std::string> verify_blob(const ShardSpec& shard,
                                       const std::string& blob) {
  u64 slot = 0;
  std::size_t pos = 0;
  while (pos < blob.size()) {
    const auto newline = blob.find('\n', pos);
    if (newline == std::string::npos) {
      return std::string("shard blob is not newline-terminated");
    }
    const auto key = faultinject::trial_line_key(blob.substr(pos, newline - pos));
    if (!key) {
      return "unparseable trial line at slot " + std::to_string(slot);
    }
    if (key->first != shard.index || key->second != slot) {
      return "trial line keyed (" + std::to_string(key->first) + "," +
             std::to_string(key->second) + ") where (" +
             std::to_string(shard.index) + "," + std::to_string(slot) +
             ") was expected";
    }
    ++slot;
    pos = newline + 1;
  }
  if (slot != shard.trial_count) {
    return "shard produced " + std::to_string(slot) + " trials, plan expects " +
           std::to_string(shard.trial_count);
  }
  return std::nullopt;
}

// Drive one lease against one worker: connect (with bounded retry), send the
// lease, collect the streamed reply. Never touches shared campaign state.
LeaseOutcome execute_lease(const std::string& address, const FleetOptions& opts,
                           const WireMessage& lease_msg,
                           const std::atomic<bool>& halted) {
  LeaseOutcome outcome;
  const auto stop_requested = [&] {
    return halted.load(std::memory_order_relaxed) ||
           (opts.stop_flag != nullptr &&
            opts.stop_flag->load(std::memory_order_relaxed));
  };

  // Bounded connect retry: a worker mid-restart deserves a second chance, a
  // dead host should fail fast and feed the node-fault budget.
  int fd = -1;
  std::string connect_error;
  const u64 attempts = 1 + opts.node_retries;
  for (u64 attempt = 1; attempt <= attempts && fd < 0; ++attempt) {
    fd = connect_tcp_timeout(address, opts.connect_timeout_ms, &connect_error);
    if (fd >= 0 || attempt == attempts || stop_requested()) break;
    const u64 backoff_ms = opts.retry_backoff_ms << (attempt - 1);
    if (backoff_ms != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }
  if (fd < 0) {
    outcome.error = connect_error.empty() ? "connect failed" : connect_error;
    return outcome;
  }

  if (!send_all(fd, encode_frame(encode_message(lease_msg)))) {
    ::close(fd);
    outcome.error = "lease send failed: " + std::string(std::strerror(errno));
    return outcome;
  }

  timeval tv{};
  tv.tv_usec = kRecvPollMs * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           opts.lease_deadline_ms);
  FrameReader reader;
  char buffer[16 * 1024];
  bool settled = false;
  while (!settled) {
    if (stop_requested()) {
      outcome.error = "stopped while waiting for the lease";
      break;
    }
    if (Clock::now() >= deadline) {
      outcome.error = "lease deadline blown (" +
                      std::to_string(opts.lease_deadline_ms) + " ms)";
      break;
    }
    const auto n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      outcome.error = std::string("recv failed: ") + std::strerror(errno);
      break;
    }
    if (n == 0) {
      reader.finish();
      outcome.error = reader.error_code() == FrameError::kTruncated
                          ? "connection closed mid-frame (node died)"
                          : "connection closed before the lease settled";
      break;
    }
    reader.feed(buffer, static_cast<std::size_t>(n));
    while (auto payload = reader.next()) {
      const auto msg = decode_message(*payload);
      if (!msg || msg->lease != lease_msg.lease) continue;
      if (msg->type == MessageType::kLeaseData) {
        outcome.blob += msg->data;
      } else if (msg->type == MessageType::kLeaseResult) {
        if (msg->bytes != outcome.blob.size()) {
          outcome.error = "lease stream sheared: result claims " +
                          std::to_string(msg->bytes) + " bytes, received " +
                          std::to_string(outcome.blob.size());
        } else {
          outcome.status = LeaseOutcome::Status::kOk;
          outcome.trials = msg->trials_done;
          outcome.cached = msg->cached;
        }
        settled = true;
        break;
      } else if (msg->type == MessageType::kLeaseFailed) {
        outcome.status = LeaseOutcome::Status::kShardFailed;
        outcome.error = msg->text;
        settled = true;
        break;
      }
    }
    if (reader.error()) {
      outcome.status = LeaseOutcome::Status::kFault;
      outcome.error =
          std::string("frame error: ") + std::string(to_string(reader.error_code()));
      break;
    }
  }
  ::close(fd);
  return outcome;
}

}  // namespace

int connect_tcp_timeout(const std::string& address, u64 timeout_ms,
                        std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return -1;
  };
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) {
    return fail("expected HOST:PORT, got '" + address + "'");
  }
  const std::string host = address.substr(0, colon);
  const int port = std::atoi(address.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return fail("bad port in '" + address + "'");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<u16>(port));
  const std::string ip = host.empty() || host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    return fail("bad host in '" + address + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket(AF_INET) failed");
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      const std::string what = std::strerror(errno);
      ::close(fd);
      return fail("cannot connect to '" + address + "': " + what);
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready <= 0) {
      ::close(fd);
      return fail("connect to '" + address + "' timed out after " +
                  std::to_string(timeout_ms) + " ms");
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      ::close(fd);
      return fail("cannot connect to '" + address +
                  "': " + std::strerror(so_error));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for framed sends
  return fd;
}

int run_fleet_campaign(const JobSpec& spec, const FleetOptions& opts,
                       FleetTelemetry* telemetry_out) {
  if (opts.nodes.empty()) {
    throw std::runtime_error("fleet: no worker nodes given (--nodes)");
  }
  if (opts.out_jsonl.empty()) {
    throw std::runtime_error("fleet: an output trace path is required (--out)");
  }
  if (const auto error = spec_error(spec)) {
    throw std::runtime_error("fleet: " + *error);
  }
  std::FILE* log_stream = opts.quiet ? nullptr
                          : opts.log_stream != nullptr ? opts.log_stream
                                                       : stderr;

  const auto shards = spec_shard_plan(spec);
  CampaignManifest identity = spec_identity_manifest(spec);
  identity.total_shards = shards.size();
  identity.total_trials = 0;
  for (const auto& shard : shards) identity.total_trials += shard.trial_count;
  const std::string manifest_path = faultinject::manifest_path_for(opts.out_jsonl);

  // -- resume: trust the manifest, reload completed shard blobs byte-for-byte --
  //
  // The coordinator never materializes trial records: a completed shard is
  // trusted only if every slot the manifest recorded survived in the trace,
  // and its blob is reassembled in slot order — the exact bytes the worker
  // streamed, so resume cannot perturb byte identity.
  std::vector<std::string> blobs(shards.size());
  std::vector<char> resumed(shards.size(), 0);
  std::vector<u64> wall_ms(shards.size(), 0);
  if (opts.resume) {
    if (const auto prior = faultinject::read_manifest(manifest_path)) {
      if (!prior->matches(identity)) {
        throw std::runtime_error(
            "fleet resume rejected: manifest at " + manifest_path +
            " was written by a different campaign (config/seed/shard geometry "
            "mismatch); delete the trace or rerun without --resume");
      }
      std::map<u64, u64> expected;  // shard -> trials the manifest saw
      for (std::size_t i = 0; i < prior->completed.size(); ++i) {
        expected[prior->completed[i]] = prior->completed_trials[i];
        if (prior->completed[i] < shards.size()) {
          wall_ms[prior->completed[i]] = prior->wall_ms[i];
        }
      }
      std::map<u64, std::map<u64, std::string>> lines;  // shard -> slot -> line
      std::ifstream trace(opts.out_jsonl);
      std::string line;
      while (trace && std::getline(trace, line)) {
        const auto key = faultinject::trial_line_key(line);
        if (!key || !expected.count(key->first)) continue;
        if (key->first >= shards.size() ||
            key->second >= shards[key->first].trial_count) {
          continue;
        }
        lines[key->first].emplace(key->second, line);
      }
      for (const auto& [shard, trials] : expected) {
        if (shard >= shards.size()) continue;
        const auto it = lines.find(shard);
        if (it == lines.end() || it->second.size() != trials ||
            trials > shards[shard].trial_count) {
          continue;  // torn shard: re-run it
        }
        // std::map iterates slots ascending; size==trials plus the last key
        // being trials-1 means the slots are exactly 0..trials-1.
        if (trials != 0 && it->second.rbegin()->first != trials - 1) continue;
        std::string blob;
        for (const auto& [slot, text] : it->second) {
          blob += text;
          blob.push_back('\n');
        }
        blobs[shard] = std::move(blob);
        resumed[shard] = 1;
      }
    }
  }

  // -- start the merged trace fresh with the resumed shards up front --
  std::ofstream trace_out(opts.out_jsonl, std::ios::trunc);
  if (!trace_out) {
    throw std::runtime_error("fleet: cannot open campaign trace for writing: " +
                             opts.out_jsonl);
  }
  trace_out << faultinject::trace_header_line(identity.kind) << '\n';
  u64 trials_done = 0;
  u64 resumed_shards = 0;
  ShardLeaseBook book(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (!resumed[s]) continue;
    trace_out << blobs[s];
    identity.completed.push_back(shards[s].index);
    identity.completed_trials.push_back(shards[s].trial_count);
    identity.wall_ms.push_back(wall_ms[s]);
    trials_done += shards[s].trial_count;
    ++resumed_shards;
    book.mark_done(shards[s].index);
  }
  trace_out.flush();
  faultinject::write_manifest(manifest_path, identity);

  FleetTelemetry telemetry;
  telemetry.nodes.resize(opts.nodes.size());
  for (std::size_t i = 0; i < opts.nodes.size(); ++i) {
    telemetry.nodes[i].address = opts.nodes[i];
  }
  telemetry.shards_total = shards.size();
  telemetry.resumed_shards = resumed_shards;

  // -- one thread per node, all sharing the lease book under one mutex --
  Mutex mutex;
  CondVar cv;
  std::atomic<bool> halted{false};  // max_shards budget spent
  u64 fresh_commits = 0;
  const auto campaign_start = Clock::now();
  const auto stop_requested = [&] {
    return halted.load(std::memory_order_relaxed) ||
           (opts.stop_flag != nullptr &&
            opts.stop_flag->load(std::memory_order_relaxed));
  };

  const auto node_loop = [&](std::size_t node_index) {
    const std::string& address = opts.nodes[node_index];
    FleetNodeTelemetry& node = telemetry.nodes[node_index];
    for (;;) {
      // -- acquire phase: lease a shard and build its message, locked --
      std::optional<faultinject::ShardLeaseBook::Lease> lease;
      WireMessage msg;
      {
        MutexLock lock(mutex);
        for (;;) {
          if (stop_requested() || book.all_terminal()) {
            cv.notify_all();
            return;
          }
          lease = book.acquire(address,
                               ms_between(campaign_start, Clock::now()),
                               opts.steal_after_ms);
          if (lease) break;
          // Every live shard is leased out and too young to steal; wake on a
          // commit/release notify, or time out so steal age can accrue.
          cv.wait_for_locked(lock, std::chrono::milliseconds(100));
        }
        const ShardSpec& shard = shards[lease->shard];
        msg.type = MessageType::kLease;
        msg.lease = lease->id;
        msg.shard = shard.index;
        msg.spec = spec;
        msg.deadline_ms = opts.lease_deadline_ms;
      }

      // -- execute phase: drive the remote lease with no lock held --
      const auto lease_start = Clock::now();
      LeaseOutcome outcome = execute_lease(address, opts, msg, halted);
      const u64 lease_wall = ms_between(lease_start, Clock::now());

      // -- settle phase: commit/release under the lock; backoff after --
      u64 backoff_ms = 0;
      {
        MutexLock lock(mutex);
        const ShardSpec& shard = shards[lease->shard];

        if (outcome.status == LeaseOutcome::Status::kOk) {
          // A node that streams a wrong-shaped blob is corrupt, not slow:
          // demote the outcome to a transport fault so the fault budget (and
          // eventually quarantine) applies.
          if (const auto bad = verify_blob(shard, outcome.blob)) {
            outcome.status = LeaseOutcome::Status::kFault;
            outcome.error = *bad;
          }
        }

        if (outcome.status == LeaseOutcome::Status::kOk) {
          if (book.commit(lease->id)) {
            trace_out << outcome.blob;
            trace_out.flush();
            identity.completed.push_back(shard.index);
            identity.completed_trials.push_back(outcome.trials);
            identity.wall_ms.push_back(lease_wall);
            faultinject::write_manifest(manifest_path, identity);
            blobs[lease->shard] = std::move(outcome.blob);
            wall_ms[lease->shard] = lease_wall;
            trials_done += outcome.trials;
            ++node.shards_committed;
            if (outcome.cached) ++node.cache_hits;
            if (lease->stolen) ++node.stolen_commits;
            logf(log_stream,
                 "fleet: shard %llu (%s) committed by %s (%llu trials%s%s)",
                 static_cast<unsigned long long>(shard.index),
                 shard.workload.c_str(), address.c_str(),
                 static_cast<unsigned long long>(outcome.trials),
                 outcome.cached ? ", cached" : "",
                 lease->stolen ? ", stolen" : "");
            if (opts.max_shards != 0 && ++fresh_commits >= opts.max_shards) {
              halted.store(true, std::memory_order_relaxed);
            }
          }
          // A losing duplicate (the shard committed first elsewhere): nothing
          // to do, commit() already refused it.
          cv.notify_all();
          continue;
        }

        book.release(lease->id);
        if (outcome.status == LeaseOutcome::Status::kShardFailed) {
          logf(log_stream, "fleet: shard %llu (%s) failed on %s: %s",
               static_cast<unsigned long long>(shard.index),
               shard.workload.c_str(), address.c_str(), outcome.error.c_str());
          // The shard itself is sick: after the lease budget, quarantine it
          // (exactly like the local orchestrator) so the rest can finish.
          if (!book.done(shard.index) &&
              book.attempts(shard.index) >= opts.shard_lease_attempts) {
            book.mark_quarantined(shard.index);
            identity.quarantined.push_back(shard.index);
            identity.quarantine_attempts.push_back(book.attempts(shard.index));
            identity.quarantine_workloads.push_back(shard.workload);
            identity.quarantine_errors.push_back(outcome.error);
            try {
              faultinject::write_manifest(manifest_path, identity);
            } catch (...) {
            }
            ++telemetry.quarantined_shards;
            logf(log_stream, "fleet: shard %llu quarantined after %llu leases",
                 static_cast<unsigned long long>(shard.index),
                 static_cast<unsigned long long>(book.attempts(shard.index)));
          }
          cv.notify_all();
          continue;
        }

        // Transport fault: the node, not the shard, is suspect.
        ++node.faults;
        node.last_error = outcome.error;
        logf(log_stream, "fleet: node %s fault %llu/%llu on shard %llu: %s",
             address.c_str(), static_cast<unsigned long long>(node.faults),
             static_cast<unsigned long long>(opts.node_faults_max),
             static_cast<unsigned long long>(shard.index), outcome.error.c_str());
        if (node.faults >= opts.node_faults_max) {
          node.quarantined = true;
          ++telemetry.quarantined_nodes;
          identity.node_quarantined.push_back(address);
          identity.node_faults.push_back(node.faults);
          identity.node_errors.push_back(node.last_error);
          try {
            faultinject::write_manifest(manifest_path, identity);
          } catch (...) {
          }
          logf(log_stream, "fleet: node %s quarantined (%s)", address.c_str(),
               node.last_error.c_str());
          cv.notify_all();
          return;  // this node is benched; its shards were released above
        }
        cv.notify_all();
        const u64 backoff_shift = node.faults > 6 ? 6 : node.faults - 1;
        backoff_ms = opts.retry_backoff_ms << backoff_shift;
      }  // settle phase ends; the backoff sleep runs with no lock held
      if (backoff_ms != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
    }
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(opts.nodes.size());
    for (std::size_t i = 0; i < opts.nodes.size(); ++i) {
      threads.emplace_back(node_loop, i);
    }
    for (auto& thread : threads) thread.join();
  }

  telemetry.trials_done = trials_done;
  telemetry.shards_done = book.done_count();
  for (const auto& node : telemetry.nodes) {
    telemetry.stolen_commits += node.stolen_commits;
  }
  telemetry.stopped = stop_requested();
  const bool complete = book.done_count() == shards.size();
  telemetry.complete = complete;

  if (complete) {
    // Canonicalize: rewrite the merged trace in (shard, slot) order — the
    // same rewrite the local orchestrator does, so a complete fleet trace is
    // byte-identical to the single-node one whatever the lease history was.
    trace_out.close();
    std::ofstream canonical(opts.out_jsonl, std::ios::trunc);
    canonical << faultinject::trace_header_line(identity.kind) << '\n';
    identity.completed.clear();
    identity.completed_trials.clear();
    identity.wall_ms.clear();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      canonical << blobs[s];
      identity.completed.push_back(shards[s].index);
      identity.completed_trials.push_back(shards[s].trial_count);
      identity.wall_ms.push_back(wall_ms[s]);
    }
    canonical.flush();
    faultinject::write_manifest(manifest_path, identity);
  }

  logf(log_stream,
       "fleet: %llu/%llu shards (%llu resumed, %llu stolen), %llu trials, "
       "%llu shard quarantines, %llu node quarantines%s",
       static_cast<unsigned long long>(telemetry.shards_done),
       static_cast<unsigned long long>(telemetry.shards_total),
       static_cast<unsigned long long>(telemetry.resumed_shards),
       static_cast<unsigned long long>(telemetry.stolen_commits),
       static_cast<unsigned long long>(telemetry.trials_done),
       static_cast<unsigned long long>(telemetry.quarantined_shards),
       static_cast<unsigned long long>(telemetry.quarantined_nodes),
       telemetry.stopped ? " (stopped)" : "");

  if (telemetry_out != nullptr) *telemetry_out = telemetry;
  if (!complete) {
    if (telemetry.stopped) return 130;
    return telemetry.quarantined_shards != 0 || telemetry.quarantined_nodes != 0
               ? 3
               : 130;
  }
  return telemetry.quarantined_nodes != 0 ? 3 : 0;
}

}  // namespace restore::service
