#include "service/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdarg>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "analytics/column_store.hpp"
#include "analytics/compact.hpp"
#include "analytics/queries.hpp"
#include "analytics/report.hpp"
#include "faultinject/campaign_io.hpp"
#include "faultinject/orchestrator.hpp"

namespace restore::service {

namespace {

void set_nonblocking_cloexec(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  ::fcntl(fd, F_SETFD, ::fcntl(fd, F_GETFD, 0) | FD_CLOEXEC);
}

std::string_view event_name(faultinject::CampaignEvent::Kind kind) noexcept {
  using Kind = faultinject::CampaignEvent::Kind;
  switch (kind) {
    case Kind::kHeartbeat: return "heartbeat";
    case Kind::kShardDone: return "shard-done";
    case Kind::kAttemptFailed: return "attempt-failed";
    case Kind::kQuarantine: return "quarantine";
    case Kind::kComplete: return "complete";
  }
  return "?";
}

// The spool's manifest when it already holds the complete trace of `spec`:
// the sidecar names the same campaign identity, every shard committed and
// none is quarantined. (A running job's manifest fails the completeness
// check; an unreadable or alien manifest is simply "not cached".)
std::optional<faultinject::CampaignManifest> complete_spool_manifest(
    const JobSpec& spec, const std::string& trace_path) {
  std::optional<faultinject::CampaignManifest> manifest;
  try {
    manifest =
        faultinject::read_manifest(faultinject::manifest_path_for(trace_path));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!manifest) return std::nullopt;
  faultinject::CampaignManifest want;
  want.kind = spec.kind;
  want.config_hash = spec_config_hash(spec);
  want.seed = spec.seed;
  want.shard_trials = spec_shard_trials(spec);
  want.total_shards = manifest->total_shards;
  want.total_trials = manifest->total_trials;
  if (!manifest->matches(want) ||
      manifest->completed.size() != manifest->total_shards ||
      manifest->has_quarantine()) {
    return std::nullopt;
  }
  return manifest;
}

}  // namespace

CampaignServer::CampaignServer(ServerOptions opts) : opts_(std::move(opts)) {}

CampaignServer::~CampaignServer() {
  stop();
  for (auto& runner : runners_) {
    if (runner.joinable()) runner.join();
  }
  for (auto& [fd, client] : clients_) ::close(fd);
  clients_.clear();
  for (const int fd : {unix_listener_, tcp_listener_, notify_read_, notify_write_}) {
    if (fd >= 0) ::close(fd);
  }
  if (!opts_.socket_path.empty()) ::unlink(opts_.socket_path.c_str());
}

void CampaignServer::start() {
  if (opts_.socket_path.empty()) {
    throw std::runtime_error("restored: socket_path is required");
  }
  std::error_code ec;
  std::filesystem::create_directories(opts_.spool_dir, ec);
  if (ec) {
    throw std::runtime_error("restored: cannot create spool dir '" +
                             opts_.spool_dir + "': " + ec.message());
  }

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("restored: pipe() failed");
  }
  notify_read_ = pipe_fds[0];
  notify_write_ = pipe_fds[1];
  set_nonblocking_cloexec(notify_read_);
  set_nonblocking_cloexec(notify_write_);

  // Unix-domain listener. A stale socket file from a previous run would make
  // bind fail, so remove it first (the daemon owns its socket path).
  unix_listener_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (unix_listener_ < 0) {
    throw std::runtime_error("restored: socket(AF_UNIX) failed");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("restored: socket path too long: " +
                             opts_.socket_path);
  }
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(opts_.socket_path.c_str());
  if (::bind(unix_listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(unix_listener_, 16) != 0) {
    throw std::runtime_error("restored: cannot bind unix socket '" +
                             opts_.socket_path + "': " + std::strerror(errno));
  }
  set_nonblocking_cloexec(unix_listener_);

  if (!opts_.listen.empty()) {
    const auto colon = opts_.listen.rfind(':');
    const std::string host =
        colon == std::string::npos ? "" : opts_.listen.substr(0, colon);
    const std::string port_text =
        colon == std::string::npos ? opts_.listen : opts_.listen.substr(colon + 1);
    const int port = std::atoi(port_text.c_str());
    if (port <= 0 || port > 65535) {
      throw std::runtime_error("restored: bad --listen port in '" +
                               opts_.listen + "'");
    }
    sockaddr_in inaddr{};
    inaddr.sin_family = AF_INET;
    inaddr.sin_port = htons(static_cast<u16>(port));
    if (host.empty() || host == "0.0.0.0") {
      inaddr.sin_addr.s_addr = htonl(INADDR_ANY);
    } else if (::inet_pton(AF_INET, host.c_str(), &inaddr.sin_addr) != 1) {
      throw std::runtime_error("restored: bad --listen host in '" +
                               opts_.listen + "'");
    }
    tcp_listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listener_ < 0) {
      throw std::runtime_error("restored: socket(AF_INET) failed");
    }
    const int one = 1;
    ::setsockopt(tcp_listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(tcp_listener_, reinterpret_cast<const sockaddr*>(&inaddr),
               sizeof inaddr) != 0 ||
        ::listen(tcp_listener_, 16) != 0) {
      throw std::runtime_error("restored: cannot bind tcp listener '" +
                               opts_.listen + "': " + std::strerror(errno));
    }
    set_nonblocking_cloexec(tcp_listener_);
  }

  runners_alive_.store(opts_.job_workers, std::memory_order_relaxed);
  runners_.reserve(opts_.job_workers);
  for (std::size_t i = 0; i < opts_.job_workers; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
  log("restored: listening on %s (%zu job workers)", opts_.socket_path.c_str(),
      opts_.job_workers);
}

void CampaignServer::stop() {
  if (stopping_.exchange(true, std::memory_order_relaxed)) return;
  // Wake the IO thread; push_notice also writes the pipe, but there may be
  // nothing in flight.
  if (notify_write_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(notify_write_, &byte, 1);
  }
}

// ---- runner side ----

void CampaignServer::runner_loop() {
  while (const auto id = queue_.pop_ready()) run_job(*id);
  runners_alive_.fetch_sub(1, std::memory_order_relaxed);
  push_notice(Notice{});  // wake the IO thread to notice the exit
}

void CampaignServer::run_job(u64 id) {
  const auto snap = queue_.snapshot(id);
  if (!snap) return;
  campaigns_run_.fetch_add(1, std::memory_order_relaxed);
  log("restored: job %llu starting (%s, trace %s)",
      static_cast<unsigned long long>(id), snap->spec.kind.c_str(),
      snap->trace_path.c_str());

  faultinject::CampaignRunOptions run;
  run.workers = opts_.campaign_workers;
  run.shard_trials = spec_shard_trials(snap->spec);
  run.out_jsonl = snap->trace_path;
  run.resume = true;  // converge on whatever a previous daemon left behind
  run.heartbeat_every_shards = opts_.heartbeat_every_shards;
  run.heartbeat_stream = opts_.log_stream;
  run.shard_retries = opts_.shard_retries;
  run.retry_backoff_ms = opts_.retry_backoff_ms;
  run.stop_flag = opts_.stop_flag;
  const auto quarantined = std::make_shared<std::atomic<u64>>(0);
  run.on_event = [this, id, quarantined](const faultinject::CampaignEvent& event) {
    if (event.kind == faultinject::CampaignEvent::Kind::kQuarantine) {
      quarantined->fetch_add(1, std::memory_order_relaxed);
    }
    queue_.update_progress(id, event.trials_done, event.trials_total,
                           event.shards_done, event.shards_total,
                           quarantined->load(std::memory_order_relaxed),
                           static_cast<u64>(event.rate * 1000.0));
    Notice notice;
    notice.job = id;
    notice.event = event;
    push_notice(std::move(notice));
  };

  JobState state = JobState::kDone;
  std::string error;
  try {
    faultinject::CampaignTelemetry telemetry;
    if (snap->spec.kind == "uarch") {
      faultinject::run_uarch_campaign(uarch_config_for(snap->spec), run,
                                      &telemetry);
    } else {
      faultinject::run_vm_campaign(vm_config_for(snap->spec), run, &telemetry);
    }
    if (telemetry.stopped) {
      state = JobState::kStopped;
      error = "campaign stopped before completion (resumable)";
    } else if (!telemetry.quarantined.empty()) {
      state = JobState::kQuarantined;
      error = telemetry.quarantined.front().error;
    }
  } catch (const std::exception& e) {
    state = JobState::kFailed;
    error = e.what();
  }
  queue_.mark_finished(id, state, error);
  log("restored: job %llu finished: %s", static_cast<unsigned long long>(id),
      std::string(to_string(state)).c_str());

  // Background compaction: fold the finished trace into its columnar store
  // while still on the runner thread, so the first analyze over this job is a
  // cache-warm read instead of a JSONL parse on the IO thread. Failure is
  // logged, never fatal — analyze re-attempts on demand.
  if (state == JobState::kDone) {
    try {
      const auto store = ensure_store(snap->trace_path);
      log("restored: job %llu compacted to %s",
          static_cast<unsigned long long>(id), store.c_str());
    } catch (const std::exception& e) {
      log("restored: job %llu compaction failed: %s",
          static_cast<unsigned long long>(id), e.what());
    }
  }

  Notice notice;
  notice.job = id;
  notice.finished = true;
  push_notice(std::move(notice));
}

void CampaignServer::push_notice(Notice notice) {
  {
    MutexLock lock(notice_mutex_);
    notices_.push_back(std::move(notice));
  }
  if (notify_write_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(notify_write_, &byte, 1);
  }
}

// ---- IO side ----

int CampaignServer::run() {
  while (true) {
    const bool external_stop =
        opts_.stop_flag != nullptr &&
        opts_.stop_flag->load(std::memory_order_relaxed);
    if ((stopping_.load(std::memory_order_relaxed) || external_stop) &&
        !draining_) {
      begin_drain();
    }
    if (draining_ && runners_alive_.load(std::memory_order_relaxed) == 0) {
      finish_drain();
      return 0;
    }

    std::vector<pollfd> fds;
    fds.push_back({notify_read_, POLLIN, 0});
    if (opts_.wake_fd >= 0) fds.push_back({opts_.wake_fd, POLLIN, 0});
    if (unix_listener_ >= 0) fds.push_back({unix_listener_, POLLIN, 0});
    if (tcp_listener_ >= 0) fds.push_back({tcp_listener_, POLLIN, 0});
    const std::size_t first_client = fds.size();
    for (const auto& [fd, client] : clients_) {
      short events = POLLIN;
      if (!client.outbuf.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }

    // The self-pipe wakes us for notices and stop(); the timeout is only a
    // backstop for an externally-set stop flag with no wake fd.
    const int ready = ::poll(fds.data(), fds.size(), 500);
    if (ready < 0 && errno != EINTR) return 1;

    // Drain wakeup bytes before acting on their reasons.
    for (const int fd : {notify_read_, opts_.wake_fd}) {
      if (fd < 0) continue;
      char sink[256];
      while (::read(fd, sink, sizeof sink) > 0) {
      }
    }
    if (opts_.wake_fd >= 0) {
      for (const auto& p : fds) {
        if (p.fd == opts_.wake_fd && (p.revents & POLLIN) != 0) stop();
      }
    }

    for (const auto& p : fds) {
      if (p.fd == unix_listener_ && (p.revents & POLLIN) != 0) {
        accept_clients(unix_listener_);
      }
      if (tcp_listener_ >= 0 && p.fd == tcp_listener_ &&
          (p.revents & POLLIN) != 0) {
        accept_clients(tcp_listener_);
      }
    }

    drain_notices();

    // Snapshot the fds before touching clients_: handlers may close clients.
    std::vector<std::pair<int, short>> client_events;
    for (std::size_t i = first_client; i < fds.size(); ++i) {
      client_events.emplace_back(fds[i].fd, fds[i].revents);
    }
    for (const auto& [fd, revents] : client_events) {
      const auto it = clients_.find(fd);
      if (it == clients_.end()) continue;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (revents & POLLIN) == 0) {
        close_client(fd);
        continue;
      }
      if ((revents & POLLIN) != 0) read_client(it->second);
    }
    // Flush after handling: replies usually fit the socket buffer, so most
    // round trips complete without waiting for the next POLLOUT.
    std::vector<int> flushable;
    for (const auto& [fd, client] : clients_) {
      if (!client.outbuf.empty() || client.closing) flushable.push_back(fd);
    }
    for (const int fd : flushable) {
      const auto it = clients_.find(fd);
      if (it != clients_.end()) flush_client(it->second);
    }
  }
}

void CampaignServer::accept_clients(int listener) {
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) return;
    if (draining_) {  // no new work during a drain
      ::close(fd);
      continue;
    }
    set_nonblocking_cloexec(fd);
    Client client;
    client.fd = fd;
    clients_.emplace(fd, std::move(client));
  }
}

void CampaignServer::read_client(Client& client) {
  char buffer[64 * 1024];
  while (true) {
    const auto n = ::recv(client.fd, buffer, sizeof buffer, 0);
    if (n == 0) {  // clean disconnect; a mid-stream subscriber just vanishes
      close_client(client.fd);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      close_client(client.fd);
      return;
    }
    client.reader.feed(buffer, static_cast<std::size_t>(n));
    if (static_cast<std::size_t>(n) < sizeof buffer) break;
  }
  while (const auto payload = client.reader.next()) {
    const auto msg = decode_message(*payload);
    if (!msg) {
      send_error(client, "malformed message");
      client.closing = true;
      return;
    }
    handle_message(client, *msg);
    if (client.closing) return;
  }
  if (client.reader.error()) {
    send_error(client, client.reader.error_text());
    client.closing = true;
  }
}

void CampaignServer::flush_client(Client& client) {
  while (!client.outbuf.empty()) {
    const auto n = ::send(client.fd, client.outbuf.data(), client.outbuf.size(),
                          MSG_NOSIGNAL);
    if (n < 0) {
      // EINTR is not back-pressure: retry immediately instead of parking the
      // partial frame until the next POLLOUT (a signal-heavy host would shear
      // frames across poll rounds for no reason).
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_client(client.fd);
      return;
    }
    client.outbuf.erase(0, static_cast<std::size_t>(n));
  }
  if (client.closing) close_client(client.fd);
}

void CampaignServer::close_client(int fd) {
  const auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  ::close(fd);
  clients_.erase(it);
}

void CampaignServer::send_message(Client& client, const WireMessage& msg) {
  client.outbuf += encode_frame(encode_message(msg));
}

void CampaignServer::send_error(Client& client, const std::string& text) {
  WireMessage msg;
  msg.type = MessageType::kError;
  msg.text = text;
  send_message(client, msg);
}

void CampaignServer::handle_message(Client& client, const WireMessage& msg) {
  switch (msg.type) {
    case MessageType::kPing: {
      WireMessage reply;
      reply.type = MessageType::kPong;
      reply.version = kProtocolVersion;
      send_message(client, reply);
      return;
    }
    case MessageType::kSubmit:
      handle_submit(client, msg);
      return;
    case MessageType::kStatus: {
      const auto snap = queue_.snapshot(msg.job);
      if (!snap) {
        send_error(client, "unknown job " + std::to_string(msg.job));
        return;
      }
      send_message(client, job_status_message(*snap));
      return;
    }
    case MessageType::kList: {
      const auto ids = queue_.job_ids();
      for (const u64 id : ids) {
        if (const auto snap = queue_.snapshot(id)) {
          send_message(client, job_status_message(*snap));
        }
      }
      WireMessage end;
      end.type = MessageType::kListEnd;
      end.count = ids.size();
      send_message(client, end);
      return;
    }
    case MessageType::kSubscribe: {
      const auto snap = queue_.snapshot(msg.job);
      if (!snap) {
        send_error(client, "unknown job " + std::to_string(msg.job));
        return;
      }
      send_message(client, job_status_message(*snap));
      if (job_state_terminal(snap->state)) {
        send_message(client, done_message(*snap));
      } else {
        client.subscriptions.insert(msg.job);
      }
      return;
    }
    case MessageType::kFetch:
      handle_fetch(client, msg);
      return;
    case MessageType::kAnalyze:
      handle_analyze(client, msg);
      return;
    default:
      send_error(client, "unexpected message type '" +
                             std::string(to_string(msg.type)) + "'");
      return;
  }
}

void CampaignServer::handle_submit(Client& client, const WireMessage& msg) {
  if (const auto problem = spec_error(msg.spec)) {
    send_error(client, *problem);
    return;
  }
  const std::string trace_path =
      opts_.spool_dir + "/" + spec_trace_filename(msg.spec);

  WireMessage reply;
  reply.type = MessageType::kSubmitted;
  reply.config_hash = spec_config_hash(msg.spec);
  reply.trace = trace_path;

  if (const auto manifest = complete_spool_manifest(msg.spec, trace_path)) {
    // Cache hit: the identical campaign already ran to completion. Record a
    // pre-finished job so status/list/fetch see it, and answer immediately.
    const auto submitted =
        queue_.submit(msg.spec, msg.priority, trace_path, /*already_complete=*/true);
    queue_.update_progress(submitted.id, manifest->total_trials,
                           manifest->total_trials, manifest->total_shards,
                           manifest->total_shards, 0, 0);
    reply.job = submitted.id;
    reply.state = std::string(to_string(JobState::kDone));
    reply.cached = true;
    send_message(client, reply);
    log("restored: job %llu served from spool (%s)",
        static_cast<unsigned long long>(submitted.id), trace_path.c_str());
    if (msg.want_events) {
      if (const auto snap = queue_.snapshot(submitted.id)) {
        send_message(client, done_message(*snap));
      }
    }
    return;
  }

  const auto submitted =
      queue_.submit(msg.spec, msg.priority, trace_path, /*already_complete=*/false);
  reply.job = submitted.id;
  reply.state = std::string(to_string(submitted.state));
  reply.attached = submitted.attached;
  send_message(client, reply);
  log("restored: job %llu %s (%s)", static_cast<unsigned long long>(submitted.id),
      submitted.attached ? "attached" : "queued", trace_path.c_str());
  if (msg.want_events) client.subscriptions.insert(submitted.id);
}

void CampaignServer::handle_fetch(Client& client, const WireMessage& msg) {
  const auto snap = queue_.snapshot(msg.job);
  if (!snap) {
    send_error(client, "unknown job " + std::to_string(msg.job));
    return;
  }
  std::ifstream in(snap->trace_path, std::ios::binary);
  if (!in) {
    send_error(client, "no trace on disk for job " + std::to_string(msg.job) +
                           " (state " + std::string(to_string(snap->state)) + ")");
    return;
  }
  u64 total = 0;
  std::string chunk(kTraceChunkBytes, '\0');
  while (in.read(chunk.data(), static_cast<std::streamsize>(chunk.size())) ||
         in.gcount() > 0) {
    WireMessage data;
    data.type = MessageType::kTraceData;
    data.job = msg.job;
    data.data.assign(chunk.data(), static_cast<std::size_t>(in.gcount()));
    total += static_cast<u64>(in.gcount());
    send_message(client, data);
  }
  WireMessage end;
  end.type = MessageType::kTraceEnd;
  end.job = msg.job;
  end.bytes = total;
  send_message(client, end);
}

std::string CampaignServer::ensure_store(const std::string& trace_path) {
  const std::string store_path = analytics::store_path_for(trace_path);
  std::error_code ec;
  if (std::filesystem::exists(store_path, ec)) return store_path;
  analytics::compact_trace(trace_path, store_path, analytics::CompactOptions{});
  return store_path;
}

void CampaignServer::handle_analyze(Client& client, const WireMessage& msg) {
  const auto snap = queue_.snapshot(msg.job);
  if (!snap) {
    send_error(client, "unknown job " + std::to_string(msg.job));
    return;
  }
  if (snap->state != JobState::kDone) {
    send_error(client, "job " + std::to_string(msg.job) +
                           " is not complete (state " +
                           std::string(to_string(snap->state)) +
                           "); analyze needs a finished trace");
    return;
  }
  const u64 interval = msg.interval == 0 ? 100 : msg.interval;
  const auto key = std::make_tuple(msg.job, interval, msg.json);

  WireMessage reply;
  reply.type = MessageType::kAnalyzeResult;
  reply.job = msg.job;
  reply.json = msg.json;
  {
    MutexLock lock(analytics_mutex_);
    const auto it = analytics_cache_.find(key);
    if (it != analytics_cache_.end()) {
      reply.data = it->second;
      reply.cached = true;
      send_message(client, reply);
      return;
    }
  }
  std::string rendered;
  try {
    // Jobs answered straight from the spool never ran a runner, so their
    // store may not exist yet; derive it here (byte-deterministic either way).
    const analytics::ColumnStoreReader store(ensure_store(snap->trace_path));
    analytics::QueryOptions options;
    options.interval = interval;
    const auto report = analytics::analyze(store, options);
    rendered = msg.json ? analytics::report_json(report)
                        : analytics::report_text(report);
  } catch (const std::exception& e) {
    send_error(client, "analyze failed for job " + std::to_string(msg.job) +
                           ": " + e.what());
    return;
  }
  {
    MutexLock lock(analytics_mutex_);
    analytics_cache_.emplace(key, rendered);
  }
  reply.data = std::move(rendered);
  reply.cached = false;
  send_message(client, reply);
  log("restored: job %llu analyzed (interval %llu, %s)",
      static_cast<unsigned long long>(msg.job),
      static_cast<unsigned long long>(interval), msg.json ? "json" : "text");
}

// ---- notices -> subscriber frames ----

void CampaignServer::drain_notices() {
  std::deque<Notice> batch;
  {
    MutexLock lock(notice_mutex_);
    batch.swap(notices_);
  }
  for (const auto& notice : batch) {
    if (notice.job == 0) continue;  // runner-exit wakeup
    if (notice.finished) {
      broadcast_done(notice.job);
      continue;
    }
    WireMessage msg;
    msg.type = MessageType::kEvent;
    msg.job = notice.job;
    msg.event = std::string(event_name(notice.event.kind));
    msg.shard = notice.event.shard;
    msg.workload = notice.event.workload;
    msg.attempt = notice.event.attempt;
    msg.attempts_max = notice.event.attempts_max;
    msg.shards_done = notice.event.shards_done;
    msg.shards_total = notice.event.shards_total;
    msg.trials_done = notice.event.trials_done;
    msg.trials_total = notice.event.trials_total;
    msg.rate_milli = static_cast<u64>(notice.event.rate * 1000.0);
    msg.text = notice.event.text.empty() ? notice.event.error : notice.event.text;
    for (auto& [fd, client] : clients_) {
      if (client.subscriptions.count(notice.job) != 0) {
        send_message(client, msg);
      }
    }
  }
}

void CampaignServer::broadcast_done(u64 job) {
  const auto snap = queue_.snapshot(job);
  if (!snap) return;
  const auto msg = done_message(*snap);
  for (auto& [fd, client] : clients_) {
    if (client.subscriptions.erase(job) != 0) send_message(client, msg);
  }
}

WireMessage CampaignServer::job_status_message(const JobSnapshot& snap) const {
  WireMessage msg;
  msg.type = MessageType::kJobStatus;
  msg.job = snap.id;
  msg.spec.kind = snap.spec.kind;
  msg.state = std::string(to_string(snap.state));
  msg.config_hash = snap.config_hash;
  msg.priority = snap.priority;
  msg.trials_done = snap.trials_done;
  msg.trials_total = snap.trials_total;
  msg.rate_milli = snap.rate_milli;
  msg.shards_done = snap.shards_done;
  msg.shards_total = snap.shards_total;
  msg.quarantined = snap.quarantined_shards;
  msg.exit_code = snap.exit_code;
  msg.trace = snap.trace_path;
  msg.text = snap.error;
  return msg;
}

WireMessage CampaignServer::done_message(const JobSnapshot& snap) const {
  WireMessage msg;
  msg.type = MessageType::kDone;
  msg.job = snap.id;
  msg.state = std::string(to_string(snap.state));
  msg.exit_code = snap.exit_code;
  msg.trials_done = snap.trials_done;
  msg.trace = snap.trace_path;
  msg.text = snap.error;
  return msg;
}

// ---- drain ----

void CampaignServer::begin_drain() {
  draining_ = true;
  log("restored: draining (in-flight campaigns finish their running shards)");
  for (int* listener : {&unix_listener_, &tcp_listener_}) {
    if (*listener >= 0) {
      ::close(*listener);
      *listener = -1;
    }
  }
  // Runners still inside a campaign observe the shared stop flag and return
  // with their in-flight shards committed; idle runners wake and exit.
  queue_.shutdown();
}

void CampaignServer::finish_drain() {
  drain_notices();  // final events from the last campaign to return
  for (const u64 id : queue_.stop_queued()) broadcast_done(id);
  WireMessage bye;
  bye.type = MessageType::kShutdown;
  bye.text = "daemon draining; queued jobs are stopped and resumable";
  for (auto& [fd, client] : clients_) {
    // Jobs that finished terminal states already broadcast their `done`;
    // anything a client still subscribes to was stopped mid-run.
    for (const u64 job : client.subscriptions) {
      if (const auto snap = queue_.snapshot(job)) {
        send_message(client, done_message(*snap));
      }
    }
    client.subscriptions.clear();
    send_message(client, bye);
  }
  // Best-effort flush; a slow client cannot hold the drain hostage forever.
  for (int round = 0; round < 50; ++round) {
    bool pending = false;
    std::vector<int> fds;
    for (const auto& [fd, client] : clients_) fds.push_back(fd);
    for (const int fd : fds) {
      const auto it = clients_.find(fd);
      if (it == clients_.end()) continue;
      flush_client(it->second);
      const auto again = clients_.find(fd);
      if (again != clients_.end() && !again->second.outbuf.empty()) {
        pending = true;
      }
    }
    if (!pending) break;
    ::poll(nullptr, 0, 20);
  }
  log("restored: drain complete");
}

void CampaignServer::log(const char* format, ...) {
  if (opts_.log_stream == nullptr) return;
  std::va_list args;
  va_start(args, format);
  std::vfprintf(opts_.log_stream, format, args);
  va_end(args);
  std::fputc('\n', opts_.log_stream);
  std::fflush(opts_.log_stream);
}

}  // namespace restore::service
