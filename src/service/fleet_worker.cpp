#include "service/fleet_worker.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdarg>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "service/job_queue.hpp"

namespace restore::service {

namespace {

// Receive-poll granularity: how often a blocked read re-checks the stop flag.
constexpr int kPollMs = 200;

std::pair<std::string, u16> parse_host_port(const std::string& address,
                                            const char* who) {
  const auto colon = address.rfind(':');
  const std::string host =
      colon == std::string::npos ? "" : address.substr(0, colon);
  const std::string port_text =
      colon == std::string::npos ? address : address.substr(colon + 1);
  const int port = std::atoi(port_text.c_str());
  if (port < 0 || port > 65535 || port_text.empty()) {
    throw std::runtime_error(std::string(who) + ": bad port in '" + address + "'");
  }
  return {host, static_cast<u16>(port)};
}

// The cache directory for one campaign identity: the trace filename stem
// (config_hash x shard geometry), so distinct campaigns can never collide.
std::string cache_key(const JobSpec& spec) {
  std::string key = spec_trace_filename(spec);
  const auto dot = key.rfind(".jsonl");
  if (dot != std::string::npos) key.resize(dot);
  return key;
}

}  // namespace

FleetWorker::FleetWorker(FleetWorkerOptions opts) : opts_(std::move(opts)) {
  if (opts_.log_stream == nullptr && !opts_.quiet) opts_.log_stream = stderr;
  if (opts_.quiet) opts_.log_stream = nullptr;
}

FleetWorker::~FleetWorker() {
  stop();
  {
    MutexLock lock(threads_mutex_);
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    threads_.clear();
  }
  if (listener_ >= 0) ::close(listener_);
}

void FleetWorker::start() {
  auto [host, port] = parse_host_port(opts_.listen, "fleet-worker");
  host_ = host.empty() ? "0.0.0.0" : host;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("fleet-worker: bad listen host in '" +
                             opts_.listen + "'");
  }
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) {
    throw std::runtime_error("fleet-worker: socket(AF_INET) failed");
  }
  const int one = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(listener_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(listener_, 16) != 0) {
    throw std::runtime_error("fleet-worker: cannot bind '" + opts_.listen +
                             "': " + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listener_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  log("fleet-worker: listening on %s:%u%s", host_.c_str(),
      static_cast<unsigned>(port_),
      opts_.cache_dir.empty() ? "" : (" (cache " + opts_.cache_dir + ")").c_str());
}

std::string FleetWorker::address() const {
  return host_ + ":" + std::to_string(port_);
}

void FleetWorker::run() {
  const auto stop_requested = [this] {
    return stopping_.load(std::memory_order_relaxed) ||
           (opts_.stop_flag != nullptr &&
            opts_.stop_flag->load(std::memory_order_relaxed));
  };
  while (!stop_requested()) {
    pollfd pfd{listener_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) continue;
    MutexLock lock(threads_mutex_);
    threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
  MutexLock lock(threads_mutex_);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void FleetWorker::stop() { stopping_.store(true, std::memory_order_relaxed); }

void FleetWorker::serve_connection(int fd) {
  // Bounded receive timeout so the connection loop re-checks the stop flag
  // even against a silent peer.
  timeval tv{};
  tv.tv_usec = kPollMs * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  FrameReader reader;
  char buffer[16 * 1024];
  bool open = true;
  while (open) {
    if (stopping_.load(std::memory_order_relaxed) ||
        (opts_.stop_flag != nullptr &&
         opts_.stop_flag->load(std::memory_order_relaxed))) {
      break;
    }
    const auto n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      reader.finish();  // clean or truncated EOF — either way, we're done
      break;
    }
    reader.feed(buffer, static_cast<std::size_t>(n));
    while (open) {
      const auto payload = reader.next();
      if (!payload) {
        if (reader.error()) open = false;  // oversize frame: hostile peer
        break;
      }
      const auto msg = decode_message(*payload);
      if (!msg) continue;  // unknown/malformed message: ignore, stay alive
      switch (msg->type) {
        case MessageType::kPing: {
          WireMessage pong;
          pong.type = MessageType::kPong;
          pong.version = kProtocolVersion;
          open = send_all(fd, encode_frame(encode_message(pong)));
          break;
        }
        case MessageType::kWorkerStatus: {
          WireMessage info;
          info.type = MessageType::kWorkerInfo;
          info.version = kProtocolVersion;
          info.leases_done = leases_served_.load();
          info.cache_hits = cache_hits_.load();
          info.failures = lease_failures_.load();
          info.active = active_.load();
          open = send_all(fd, encode_frame(encode_message(info)));
          break;
        }
        case MessageType::kLease:
          open = handle_lease(fd, *msg);
          break;
        case MessageType::kLeaseCancel:
          // Best-effort: a lease we already answered (or never saw). Nothing
          // to unwind — shard execution is idempotent.
          break;
        default:
          break;  // not a coordinator->worker message; ignore
      }
    }
  }
  ::close(fd);
}

bool FleetWorker::handle_lease(int fd, const WireMessage& msg) {
  // Chaos hook: emulate a node crash by dropping the connection without a
  // word once the configured lease budget is spent.
  if (opts_.fail_after_leases != 0 &&
      leases_served_.load() >= opts_.fail_after_leases) {
    log("fleet-worker: chaos hook tripped, dropping lease %llu (shard %llu)",
        static_cast<unsigned long long>(msg.lease),
        static_cast<unsigned long long>(msg.shard));
    return false;
  }

  active_.fetch_add(1);
  struct ActiveGuard {
    std::atomic<u64>& n;
    ~ActiveGuard() { n.fetch_sub(1); }
  } guard{active_};

  const auto fail = [&](const std::string& error) {
    lease_failures_.fetch_add(1);
    log("fleet-worker: lease %llu shard %llu failed: %s",
        static_cast<unsigned long long>(msg.lease),
        static_cast<unsigned long long>(msg.shard), error.c_str());
    WireMessage reply;
    reply.type = MessageType::kLeaseFailed;
    reply.lease = msg.lease;
    reply.shard = msg.shard;
    reply.text = error;
    return send_all(fd, encode_frame(encode_message(reply)));
  };

  if (const auto error = spec_error(msg.spec)) return fail(*error);
  const auto plan = spec_shard_plan(msg.spec);
  if (msg.shard >= plan.size()) {
    return fail("shard index " + std::to_string(msg.shard) +
                " out of range (plan has " + std::to_string(plan.size()) +
                " shards)");
  }

  // Content-addressed cache: identity key x shard index. A hit is served
  // byte-for-byte; shards are deterministic, so cached bytes equal recomputed
  // bytes by construction.
  std::string cache_path;
  std::string lines;
  bool cached = false;
  if (!opts_.cache_dir.empty()) {
    cache_path = opts_.cache_dir + "/" + cache_key(msg.spec) + "/shard-" +
                 std::to_string(msg.shard) + ".jsonl";
    std::ifstream in(cache_path, std::ios::binary);
    if (in) {
      std::ostringstream blob;
      blob << in.rdbuf();
      lines = blob.str();
      cached = !lines.empty();
    }
  }
  if (!cached) {
    try {
      lines = spec_shard_jsonl(msg.spec, plan[msg.shard]);
    } catch (const std::exception& e) {
      return fail(e.what());
    }
    if (!cache_path.empty()) {
      // Atomic publish (tmp + rename): a reader never sees a torn cache
      // entry, and concurrent writers of the same shard write the same bytes.
      std::error_code ec;
      std::filesystem::create_directories(
          std::filesystem::path(cache_path).parent_path(), ec);
      if (!ec) {
        const std::string tmp = cache_path + ".tmp." + std::to_string(fd);
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << lines;
        out.flush();
        if (out) {
          std::filesystem::rename(tmp, cache_path, ec);
        }
        if (!out || ec) std::filesystem::remove(tmp, ec);
      }
    }
  } else {
    cache_hits_.fetch_add(1);
  }

  // Stream the shard in bounded chunks, then seal with the result frame.
  for (std::size_t offset = 0; offset < lines.size(); offset += kTraceChunkBytes) {
    WireMessage chunk;
    chunk.type = MessageType::kLeaseData;
    chunk.lease = msg.lease;
    chunk.data = lines.substr(offset, kTraceChunkBytes);
    if (!send_all(fd, encode_frame(encode_message(chunk)))) return false;
  }
  u64 trials = 0;
  for (const char c : lines) trials += c == '\n';
  WireMessage result;
  result.type = MessageType::kLeaseResult;
  result.lease = msg.lease;
  result.shard = msg.shard;
  result.trials_done = trials;
  result.bytes = lines.size();
  result.cached = cached;
  if (!send_all(fd, encode_frame(encode_message(result)))) return false;
  leases_served_.fetch_add(1);
  log("fleet-worker: lease %llu shard %llu served (%llu trials, %zu bytes%s)",
      static_cast<unsigned long long>(msg.lease),
      static_cast<unsigned long long>(msg.shard),
      static_cast<unsigned long long>(trials), lines.size(),
      cached ? ", cached" : "");
  return true;
}

void FleetWorker::log(const char* format, ...) {
  if (opts_.log_stream == nullptr) return;
  std::va_list args;
  va_start(args, format);
  std::vfprintf(opts_.log_stream, format, args);
  va_end(args);
  std::fputc('\n', opts_.log_stream);
  std::fflush(opts_.log_stream);
}

}  // namespace restore::service
