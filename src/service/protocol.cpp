#include "service/protocol.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <iterator>
#include <stdexcept>

#include "common/flatjson.hpp"

namespace restore::service {

// ---- framing ----

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::length_error("service frame payload exceeds kMaxFramePayload (" +
                            std::to_string(payload.size()) + " bytes)");
  }
  const u32 size = static_cast<u32>(payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>((size >> 24) & 0xff));
  out.push_back(static_cast<char>((size >> 16) & 0xff));
  out.push_back(static_cast<char>((size >> 8) & 0xff));
  out.push_back(static_cast<char>(size & 0xff));
  out.append(payload);
  return out;
}

std::string_view to_string(FrameError error) noexcept {
  switch (error) {
    case FrameError::kNone: return "none";
    case FrameError::kOversize: return "oversize";
    case FrameError::kTruncated: return "truncated";
  }
  return "?";
}

void FrameReader::feed(const char* data, std::size_t size) {
  if (error()) return;  // a poisoned stream never resyncs
  buffer_.append(data, size);
}

void FrameReader::finish() {
  if (error()) return;
  if (pending_bytes() == 0) return;  // clean EOF on a frame boundary
  error_ = FrameError::kTruncated;
  error_text_ = "truncated stream: peer closed with " +
                std::to_string(pending_bytes()) +
                " bytes of an incomplete frame buffered";
  buffer_.clear();
  cursor_ = 0;
}

std::optional<std::string> FrameReader::next() {
  if (error()) return std::nullopt;
  if (buffer_.size() - cursor_ < kFrameHeaderBytes) return std::nullopt;
  const auto* head = reinterpret_cast<const unsigned char*>(buffer_.data() + cursor_);
  const u32 size = (static_cast<u32>(head[0]) << 24) |
                   (static_cast<u32>(head[1]) << 16) |
                   (static_cast<u32>(head[2]) << 8) | static_cast<u32>(head[3]);
  if (size > max_payload_) {
    error_ = FrameError::kOversize;
    error_text_ = "oversize frame: " + std::to_string(size) +
                  " bytes exceeds the " + std::to_string(max_payload_) +
                  "-byte payload limit";
    buffer_.clear();
    cursor_ = 0;
    return std::nullopt;
  }
  if (buffer_.size() - cursor_ < kFrameHeaderBytes + size) return std::nullopt;
  std::string payload = buffer_.substr(cursor_ + kFrameHeaderBytes, size);
  cursor_ += kFrameHeaderBytes + size;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (cursor_ > 4096 && cursor_ * 2 >= buffer_.size()) {
    buffer_.erase(0, cursor_);
    cursor_ = 0;
  }
  return payload;
}

bool send_all(int fd, std::string_view bytes) noexcept {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const auto n = ::send(fd, bytes.data() + off, bytes.size() - off,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// ---- message type tags ----

namespace {

struct TypeName {
  MessageType type;
  std::string_view name;
};

constexpr TypeName kTypeNames[] = {
    {MessageType::kPing, "ping"},
    {MessageType::kSubmit, "submit"},
    {MessageType::kStatus, "status"},
    {MessageType::kList, "list"},
    {MessageType::kSubscribe, "subscribe"},
    {MessageType::kFetch, "fetch"},
    {MessageType::kAnalyze, "analyze"},
    {MessageType::kPong, "pong"},
    {MessageType::kSubmitted, "submitted"},
    {MessageType::kEvent, "event"},
    {MessageType::kDone, "done"},
    {MessageType::kJobStatus, "job-status"},
    {MessageType::kListEnd, "list-end"},
    {MessageType::kTraceData, "trace-data"},
    {MessageType::kTraceEnd, "trace-end"},
    {MessageType::kAnalyzeResult, "analyze-result"},
    {MessageType::kError, "error"},
    {MessageType::kShutdown, "shutdown"},
    {MessageType::kLease, "lease"},
    {MessageType::kLeaseCancel, "lease-cancel"},
    {MessageType::kWorkerStatus, "worker-status"},
    {MessageType::kLeaseData, "lease-data"},
    {MessageType::kLeaseResult, "lease-result"},
    {MessageType::kLeaseFailed, "lease-failed"},
    {MessageType::kWorkerInfo, "worker-info"},
};

static_assert(std::size(kTypeNames) == kMessageTypeCount,
              "every MessageType enumerator needs a wire name (and vice "
              "versa); update kMessageTypeCount when the enum grows");

}  // namespace

std::string_view to_string(MessageType type) noexcept {
  for (const auto& entry : kTypeNames) {
    if (entry.type == type) return entry.name;
  }
  return "?";
}

std::optional<MessageType> message_type_from_string(std::string_view name) noexcept {
  for (const auto& entry : kTypeNames) {
    if (entry.name == name) return entry.type;
  }
  return std::nullopt;
}

// ---- message codec ----

namespace {

using flatjson::append_field;
using flatjson::get_bool;
using flatjson::get_string;
using flatjson::get_uint;

void field(std::string& out, std::string_view key, u64 value) {
  out.push_back(',');
  append_field(out, key, value);
}
void field(std::string& out, std::string_view key, bool value) {
  out.push_back(',');
  append_field(out, key, value);
}
void field(std::string& out, std::string_view key, std::string_view value) {
  out.push_back(',');
  append_field(out, key, value);
}
void field(std::string& out, std::string_view key,
           const std::vector<std::string>& values) {
  out.push_back(',');
  append_field(out, key, values);
}

bool job_scoped(MessageType type) {
  switch (type) {
    case MessageType::kStatus:
    case MessageType::kSubscribe:
    case MessageType::kFetch:
    case MessageType::kAnalyze:
    case MessageType::kSubmitted:
    case MessageType::kEvent:
    case MessageType::kDone:
    case MessageType::kJobStatus:
    case MessageType::kTraceData:
    case MessageType::kTraceEnd:
    case MessageType::kAnalyzeResult:
      return true;
    default:
      return false;
  }
}

// Fleet messages are scoped by the coordinator-issued lease id instead of a
// job id (a lease can be re-issued for the same shard; replies must bind to
// the issue, not the shard).
bool lease_scoped(MessageType type) {
  switch (type) {
    case MessageType::kLease:
    case MessageType::kLeaseCancel:
    case MessageType::kLeaseData:
    case MessageType::kLeaseResult:
    case MessageType::kLeaseFailed:
      return true;
    default:
      return false;
  }
}

// The campaign spec fields shared by kSubmit and kLease. Kept byte-for-byte
// identical to the historical submit layout (fault-model fields ride only on
// non-default models) so submit dedup identity is unchanged.
void encode_spec_fields(std::string& out, const JobSpec& spec) {
  field(out, "kind", std::string_view(spec.kind));
  field(out, "seed", spec.seed);
  field(out, "trials", spec.trials);
  field(out, "shard_trials", spec.shard_trials);
  if (!spec.workloads.empty()) field(out, "workloads", spec.workloads);
  field(out, "low32", spec.low32);
  field(out, "model", std::string_view(spec.model));
  field(out, "latches_only", spec.latches_only);
  if (spec.fault_model != "single") {
    field(out, "fault_model", std::string_view(spec.fault_model));
    field(out, "fault_bits", spec.fault_bits);
    field(out, "burst_entries", spec.burst_entries);
    field(out, "fault_target", std::string_view(spec.fault_target));
    field(out, "vdd_mv", spec.vdd_mv);
    field(out, "freq_mhz", spec.freq_mhz);
    field(out, "upset_ppm", spec.upset_ppm);
  }
}

bool decode_spec_fields(const flatjson::Object& obj, JobSpec& spec) {
  const auto kind = get_string(obj, "kind");
  const auto seed = get_uint(obj, "seed");
  if (!kind || !seed) return false;
  spec.kind = *kind;
  spec.seed = *seed;
  spec.trials = get_uint(obj, "trials").value_or(0);
  spec.shard_trials = get_uint(obj, "shard_trials").value_or(0);
  if (const auto* v = flatjson::find(obj, "workloads")) {
    if (v->kind == flatjson::Value::Kind::kStringArray) {
      spec.workloads = v->str_array;
    } else if (!(v->kind == flatjson::Value::Kind::kUintArray &&
                 v->array.empty())) {
      return false;
    }
  }
  spec.low32 = get_bool(obj, "low32").value_or(false);
  spec.model = get_string(obj, "model").value_or("result");
  spec.latches_only = get_bool(obj, "latches_only").value_or(false);
  spec.fault_model = get_string(obj, "fault_model").value_or("single");
  spec.fault_bits = get_uint(obj, "fault_bits").value_or(2);
  spec.burst_entries = get_uint(obj, "burst_entries").value_or(2);
  spec.fault_target = get_string(obj, "fault_target").value_or("load");
  spec.vdd_mv = get_uint(obj, "vdd_mv").value_or(1000);
  spec.freq_mhz = get_uint(obj, "freq_mhz").value_or(1000);
  spec.upset_ppm = get_uint(obj, "upset_ppm").value_or(1'000'000);
  return true;
}

}  // namespace

std::string encode_message(const WireMessage& msg) {
  std::string out = "{";
  flatjson::append_field(out, "type", to_string(msg.type));
  if (job_scoped(msg.type)) field(out, "job", msg.job);
  if (lease_scoped(msg.type)) field(out, "lease", msg.lease);
  switch (msg.type) {
    case MessageType::kPing:
    case MessageType::kList:
    case MessageType::kStatus:
    case MessageType::kSubscribe:
    case MessageType::kFetch:
    case MessageType::kWorkerStatus:
    case MessageType::kLeaseCancel:
      break;
    case MessageType::kAnalyze:
      field(out, "interval", msg.interval);
      field(out, "json", msg.json);
      break;
    case MessageType::kAnalyzeResult:
      field(out, "data", std::string_view(msg.data));
      field(out, "json", msg.json);
      field(out, "cached", msg.cached);
      break;
    case MessageType::kPong:
      field(out, "version", msg.version);
      break;
    case MessageType::kSubmit:
      encode_spec_fields(out, msg.spec);
      field(out, "priority", msg.priority);
      field(out, "subscribe", msg.want_events);
      break;
    case MessageType::kLease:
      encode_spec_fields(out, msg.spec);
      field(out, "shard", msg.shard);
      field(out, "deadline_ms", msg.deadline_ms);
      break;
    case MessageType::kLeaseData:
      field(out, "data", std::string_view(msg.data));
      break;
    case MessageType::kLeaseResult:
      field(out, "shard", msg.shard);
      field(out, "trials_done", msg.trials_done);
      field(out, "bytes", msg.bytes);
      field(out, "cached", msg.cached);
      break;
    case MessageType::kLeaseFailed:
      field(out, "shard", msg.shard);
      field(out, "text", std::string_view(msg.text));
      break;
    case MessageType::kWorkerInfo:
      field(out, "version", msg.version);
      field(out, "leases_done", msg.leases_done);
      field(out, "cache_hits", msg.cache_hits);
      field(out, "failures", msg.failures);
      field(out, "active", msg.active);
      break;
    case MessageType::kSubmitted:
      field(out, "config_hash", msg.config_hash);
      field(out, "state", std::string_view(msg.state));
      field(out, "attached", msg.attached);
      field(out, "cached", msg.cached);
      field(out, "trace", std::string_view(msg.trace));
      break;
    case MessageType::kEvent:
      field(out, "event", std::string_view(msg.event));
      field(out, "shard", msg.shard);
      if (!msg.workload.empty()) field(out, "workload", std::string_view(msg.workload));
      field(out, "attempt", msg.attempt);
      field(out, "attempts_max", msg.attempts_max);
      field(out, "shards_done", msg.shards_done);
      field(out, "shards_total", msg.shards_total);
      field(out, "trials_done", msg.trials_done);
      field(out, "trials_total", msg.trials_total);
      field(out, "rate_milli", msg.rate_milli);
      if (!msg.text.empty()) field(out, "text", std::string_view(msg.text));
      break;
    case MessageType::kDone:
      field(out, "state", std::string_view(msg.state));
      field(out, "exit_code", msg.exit_code);
      field(out, "trials_done", msg.trials_done);
      field(out, "trace", std::string_view(msg.trace));
      if (!msg.text.empty()) field(out, "text", std::string_view(msg.text));
      break;
    case MessageType::kJobStatus:
      field(out, "kind", std::string_view(msg.spec.kind));
      field(out, "state", std::string_view(msg.state));
      field(out, "config_hash", msg.config_hash);
      field(out, "priority", msg.priority);
      field(out, "trials_done", msg.trials_done);
      field(out, "trials_total", msg.trials_total);
      field(out, "rate_milli", msg.rate_milli);
      field(out, "shards_done", msg.shards_done);
      field(out, "shards_total", msg.shards_total);
      field(out, "quarantined", msg.quarantined);
      field(out, "exit_code", msg.exit_code);
      field(out, "trace", std::string_view(msg.trace));
      if (!msg.text.empty()) field(out, "text", std::string_view(msg.text));
      break;
    case MessageType::kListEnd:
      field(out, "count", msg.count);
      break;
    case MessageType::kTraceData:
      field(out, "data", std::string_view(msg.data));
      break;
    case MessageType::kTraceEnd:
      field(out, "bytes", msg.bytes);
      break;
    case MessageType::kError:
    case MessageType::kShutdown:
      field(out, "text", std::string_view(msg.text));
      break;
  }
  out.push_back('}');
  return out;
}

std::optional<WireMessage> decode_message(const std::string& payload) {
  const auto obj = flatjson::parse(payload);
  if (!obj) return std::nullopt;
  const auto type_name = get_string(*obj, "type");
  if (!type_name) return std::nullopt;
  const auto type = message_type_from_string(*type_name);
  if (!type) return std::nullopt;

  WireMessage msg;
  msg.type = *type;
  if (job_scoped(msg.type)) {
    const auto job = get_uint(*obj, "job");
    if (!job) return std::nullopt;
    msg.job = *job;
  }
  if (lease_scoped(msg.type)) {
    const auto lease = get_uint(*obj, "lease");
    if (!lease) return std::nullopt;
    msg.lease = *lease;
  }
  switch (msg.type) {
    case MessageType::kPing:
    case MessageType::kList:
    case MessageType::kStatus:
    case MessageType::kSubscribe:
    case MessageType::kFetch:
    case MessageType::kWorkerStatus:
    case MessageType::kLeaseCancel:
      break;
    case MessageType::kAnalyze:
      msg.interval = get_uint(*obj, "interval").value_or(0);
      msg.json = get_bool(*obj, "json").value_or(false);
      break;
    case MessageType::kAnalyzeResult: {
      const auto data = get_string(*obj, "data");
      if (!data) return std::nullopt;
      msg.data = *data;
      msg.json = get_bool(*obj, "json").value_or(false);
      msg.cached = get_bool(*obj, "cached").value_or(false);
      break;
    }
    case MessageType::kPong:
      msg.version = get_uint(*obj, "version").value_or(0);
      break;
    case MessageType::kSubmit: {
      if (!decode_spec_fields(*obj, msg.spec)) return std::nullopt;
      msg.priority = get_uint(*obj, "priority").value_or(0);
      msg.want_events = get_bool(*obj, "subscribe").value_or(false);
      break;
    }
    case MessageType::kLease: {
      if (!decode_spec_fields(*obj, msg.spec)) return std::nullopt;
      const auto shard = get_uint(*obj, "shard");
      if (!shard) return std::nullopt;
      msg.shard = *shard;
      msg.deadline_ms = get_uint(*obj, "deadline_ms").value_or(0);
      break;
    }
    case MessageType::kLeaseData: {
      const auto data = get_string(*obj, "data");
      if (!data) return std::nullopt;
      msg.data = *data;
      break;
    }
    case MessageType::kLeaseResult: {
      const auto shard = get_uint(*obj, "shard");
      if (!shard) return std::nullopt;
      msg.shard = *shard;
      msg.trials_done = get_uint(*obj, "trials_done").value_or(0);
      msg.bytes = get_uint(*obj, "bytes").value_or(0);
      msg.cached = get_bool(*obj, "cached").value_or(false);
      break;
    }
    case MessageType::kLeaseFailed: {
      const auto shard = get_uint(*obj, "shard");
      const auto text = get_string(*obj, "text");
      if (!shard || !text) return std::nullopt;
      msg.shard = *shard;
      msg.text = *text;
      break;
    }
    case MessageType::kWorkerInfo:
      msg.version = get_uint(*obj, "version").value_or(0);
      msg.leases_done = get_uint(*obj, "leases_done").value_or(0);
      msg.cache_hits = get_uint(*obj, "cache_hits").value_or(0);
      msg.failures = get_uint(*obj, "failures").value_or(0);
      msg.active = get_uint(*obj, "active").value_or(0);
      break;
    case MessageType::kSubmitted: {
      const auto state = get_string(*obj, "state");
      if (!state) return std::nullopt;
      msg.state = *state;
      msg.config_hash = get_uint(*obj, "config_hash").value_or(0);
      msg.attached = get_bool(*obj, "attached").value_or(false);
      msg.cached = get_bool(*obj, "cached").value_or(false);
      msg.trace = get_string(*obj, "trace").value_or("");
      break;
    }
    case MessageType::kEvent: {
      const auto event = get_string(*obj, "event");
      if (!event) return std::nullopt;
      msg.event = *event;
      msg.shard = get_uint(*obj, "shard").value_or(0);
      msg.workload = get_string(*obj, "workload").value_or("");
      msg.attempt = get_uint(*obj, "attempt").value_or(0);
      msg.attempts_max = get_uint(*obj, "attempts_max").value_or(0);
      msg.shards_done = get_uint(*obj, "shards_done").value_or(0);
      msg.shards_total = get_uint(*obj, "shards_total").value_or(0);
      msg.trials_done = get_uint(*obj, "trials_done").value_or(0);
      msg.trials_total = get_uint(*obj, "trials_total").value_or(0);
      msg.rate_milli = get_uint(*obj, "rate_milli").value_or(0);
      msg.text = get_string(*obj, "text").value_or("");
      break;
    }
    case MessageType::kDone: {
      const auto state = get_string(*obj, "state");
      if (!state) return std::nullopt;
      msg.state = *state;
      msg.exit_code = get_uint(*obj, "exit_code").value_or(0);
      msg.trials_done = get_uint(*obj, "trials_done").value_or(0);
      msg.trace = get_string(*obj, "trace").value_or("");
      msg.text = get_string(*obj, "text").value_or("");
      break;
    }
    case MessageType::kJobStatus: {
      const auto state = get_string(*obj, "state");
      if (!state) return std::nullopt;
      msg.state = *state;
      msg.spec.kind = get_string(*obj, "kind").value_or("");
      msg.config_hash = get_uint(*obj, "config_hash").value_or(0);
      msg.priority = get_uint(*obj, "priority").value_or(0);
      msg.trials_done = get_uint(*obj, "trials_done").value_or(0);
      msg.trials_total = get_uint(*obj, "trials_total").value_or(0);
      msg.rate_milli = get_uint(*obj, "rate_milli").value_or(0);
      msg.shards_done = get_uint(*obj, "shards_done").value_or(0);
      msg.shards_total = get_uint(*obj, "shards_total").value_or(0);
      msg.quarantined = get_uint(*obj, "quarantined").value_or(0);
      msg.exit_code = get_uint(*obj, "exit_code").value_or(0);
      msg.trace = get_string(*obj, "trace").value_or("");
      msg.text = get_string(*obj, "text").value_or("");
      break;
    }
    case MessageType::kListEnd:
      msg.count = get_uint(*obj, "count").value_or(0);
      break;
    case MessageType::kTraceData: {
      const auto data = get_string(*obj, "data");
      if (!data) return std::nullopt;
      msg.data = *data;
      break;
    }
    case MessageType::kTraceEnd:
      msg.bytes = get_uint(*obj, "bytes").value_or(0);
      break;
    case MessageType::kError:
    case MessageType::kShutdown: {
      const auto text = get_string(*obj, "text");
      if (!text) return std::nullopt;
      msg.text = *text;
      break;
    }
  }
  return msg;
}

}  // namespace restore::service
