#include "service/job_queue.hpp"

#include <limits>

#include "faultinject/campaign_io.hpp"
#include "faultinject/fault_model.hpp"
#include "faultinject/orchestrator.hpp"
#include "workloads/workloads.hpp"

namespace restore::service {

std::string_view to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kQuarantined: return "quarantined";
    case JobState::kStopped: return "stopped";
    case JobState::kFailed: return "failed";
  }
  return "?";
}

bool job_state_terminal(JobState state) noexcept {
  return state != JobState::kQueued && state != JobState::kRunning;
}

u64 job_state_exit_code(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
    case JobState::kRunning:
    case JobState::kDone: return 0;
    case JobState::kQuarantined: return 3;
    case JobState::kStopped: return 130;
    case JobState::kFailed: return 1;
  }
  return 1;
}

// ---- JobSpec -> campaign config mapping ----

namespace {

faultinject::FaultModelConfig fault_model_config_for(const JobSpec& spec) {
  faultinject::FaultModelConfig fm;
  if (const auto model = faultinject::fault_model_from_string(spec.fault_model)) {
    fm.model = *model;
  }
  fm.multi_bits = static_cast<u32>(spec.fault_bits);
  fm.burst_entries = static_cast<u32>(spec.burst_entries);
  fm.target = spec.fault_target;
  fm.vdd_mv = spec.vdd_mv;
  fm.freq_mhz = spec.freq_mhz;
  fm.upset_ppm = spec.upset_ppm;
  return fm;
}

}  // namespace

std::optional<std::string> spec_error(const JobSpec& spec) {
  if (spec.kind != "vm" && spec.kind != "uarch") {
    return "unknown campaign kind '" + spec.kind + "' (expected vm or uarch)";
  }
  if (spec.model != "result" && spec.model != "register") {
    return "unknown vm fault model '" + spec.model +
           "' (expected result or register)";
  }
  if (!faultinject::fault_model_from_string(spec.fault_model)) {
    return "unknown fault model '" + spec.fault_model +
           "' (expected single, multi, burst, set, targeted, or rate)";
  }
  const auto fm = fault_model_config_for(spec);
  try {
    faultinject::validate_fault_model(fm, /*vm_campaign=*/spec.kind == "vm");
  } catch (const std::exception& e) {
    return std::string(e.what());
  }
  if (spec.kind == "vm" && spec.model == "register" &&
      !faultinject::is_default_fault_model(fm)) {
    return "non-default fault models require the result-bit vm model";
  }
  for (const auto& name : spec.workloads) {
    try {
      workloads::by_name(name);
    } catch (const std::exception&) {
      return "unknown workload '" + name + "'";
    }
  }
  return std::nullopt;
}

faultinject::VmCampaignConfig vm_config_for(const JobSpec& spec) {
  faultinject::VmCampaignConfig config;
  config.seed = spec.seed;
  if (spec.trials != 0) config.trials_per_workload = spec.trials;
  config.low32_only = spec.low32;
  config.model = spec.model == "register" ? faultinject::VmFaultModel::kRegisterBit
                                          : faultinject::VmFaultModel::kResultBit;
  config.workloads = spec.workloads;
  config.fault_model = fault_model_config_for(spec);
  return config;
}

faultinject::UarchCampaignConfig uarch_config_for(const JobSpec& spec) {
  faultinject::UarchCampaignConfig config;
  config.seed = spec.seed;
  if (spec.trials != 0) config.trials_per_workload = spec.trials;
  config.latches_only = spec.latches_only;
  config.workloads = spec.workloads;
  config.fault_model = fault_model_config_for(spec);
  return config;
}

u64 spec_config_hash(const JobSpec& spec) {
  if (spec.kind == "uarch") return faultinject::config_hash(uarch_config_for(spec));
  return faultinject::config_hash(vm_config_for(spec));
}

u64 spec_shard_trials(const JobSpec& spec) {
  return spec.shard_trials != 0 ? spec.shard_trials
                                : faultinject::kDefaultShardTrials;
}

std::string spec_trace_filename(const JobSpec& spec) {
  char hash[17];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(spec_config_hash(spec)));
  return spec.kind + "-" + hash + "-s" + std::to_string(spec_shard_trials(spec)) +
         ".jsonl";
}

namespace {

// Workload names the spec's campaign runs over (empty = every workload), in
// the same order the campaign resolves them — shard indices depend on it.
std::vector<std::string> spec_workload_names(const JobSpec& spec) {
  if (!spec.workloads.empty()) return spec.workloads;
  std::vector<std::string> names;
  for (const auto& wl : workloads::all()) names.push_back(wl.name);
  return names;
}

// Effective trials per workload (0 resolved to the kind's campaign default).
u64 spec_trials_per_workload(const JobSpec& spec) {
  if (spec.kind == "uarch") return uarch_config_for(spec).trials_per_workload;
  return vm_config_for(spec).trials_per_workload;
}

}  // namespace

std::vector<faultinject::ShardSpec> spec_shard_plan(const JobSpec& spec) {
  return faultinject::plan_shards(spec.seed, spec_workload_names(spec),
                                  spec_trials_per_workload(spec),
                                  spec_shard_trials(spec));
}

faultinject::CampaignManifest spec_identity_manifest(const JobSpec& spec) {
  faultinject::CampaignManifest identity;
  identity.kind = spec.kind;
  identity.config_hash = spec_config_hash(spec);
  identity.seed = spec.seed;
  identity.shard_trials = spec_shard_trials(spec);
  return identity;
}

std::string spec_shard_jsonl(const JobSpec& spec,
                             const faultinject::ShardSpec& shard) {
  std::string lines;
  if (spec.kind == "uarch") {
    const auto records = faultinject::run_uarch_shard(uarch_config_for(spec), shard);
    for (std::size_t slot = 0; slot < records.size(); ++slot) {
      lines += faultinject::uarch_trial_to_jsonl(shard.index, slot, records[slot]);
      lines.push_back('\n');
    }
  } else {
    const auto records = faultinject::run_vm_shard(vm_config_for(spec), shard);
    for (std::size_t slot = 0; slot < records.size(); ++slot) {
      lines += faultinject::vm_trial_to_jsonl(shard.index, slot, records[slot]);
      lines.push_back('\n');
    }
  }
  return lines;
}

// ---- the queue ----

JobQueue::Submitted JobQueue::submit(const JobSpec& spec, u64 priority,
                                     std::string trace_path,
                                     bool already_complete) {
  MutexLock lock(mutex_);
  const std::string key = spec_trace_filename(spec);

  if (!already_complete) {
    if (const auto it = active_.find(key); it != active_.end()) {
      const Job& job = jobs_.at(it->second);
      return Submitted{it->second, /*attached=*/true, job.snap.state};
    }
  }

  Job job;
  job.seq = next_seq_++;
  job.snap.id = next_id_++;
  job.snap.spec = spec;
  job.snap.config_hash = spec_config_hash(spec);
  job.snap.priority = priority;
  job.snap.trace_path = std::move(trace_path);
  if (already_complete) {
    job.snap.state = JobState::kDone;
    job.snap.exit_code = job_state_exit_code(JobState::kDone);
  } else {
    job.snap.state = JobState::kQueued;
    active_.emplace(key, job.snap.id);
    ready_.emplace(std::numeric_limits<u64>::max() - priority, job.seq,
                   job.snap.id);
  }
  const Submitted result{job.snap.id, /*attached=*/false, job.snap.state};
  jobs_.emplace(job.snap.id, std::move(job));
  if (!already_complete) ready_cv_.notify_one();
  return result;
}

std::optional<u64> JobQueue::pop_ready() {
  MutexLock lock(mutex_);
  while (!shutdown_ && ready_.empty()) ready_cv_.wait_locked(lock);
  if (shutdown_) return std::nullopt;
  const auto it = ready_.begin();
  const u64 id = std::get<2>(*it);
  ready_.erase(it);
  jobs_.at(id).snap.state = JobState::kRunning;
  return id;
}

void JobQueue::shutdown() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
}

void JobQueue::update_progress(u64 id, u64 trials_done, u64 trials_total,
                               u64 shards_done, u64 shards_total,
                               u64 quarantined_shards, u64 rate_milli) {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  it->second.snap.trials_done = trials_done;
  it->second.snap.trials_total = trials_total;
  it->second.snap.shards_done = shards_done;
  it->second.snap.shards_total = shards_total;
  it->second.snap.quarantined_shards = quarantined_shards;
  it->second.snap.rate_milli = rate_milli;
}

void JobQueue::mark_finished(u64 id, JobState state, const std::string& error) {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  it->second.snap.state = state;
  it->second.snap.exit_code = job_state_exit_code(state);
  it->second.snap.error = error;
  active_.erase(spec_trace_filename(it->second.snap.spec));
}

std::vector<u64> JobQueue::stop_queued() {
  MutexLock lock(mutex_);
  std::vector<u64> stopped;
  for (const auto& [inv_priority, seq, id] : ready_) {
    auto& snap = jobs_.at(id).snap;
    snap.state = JobState::kStopped;
    snap.exit_code = job_state_exit_code(JobState::kStopped);
    snap.error = "daemon drained before the job started";
    active_.erase(spec_trace_filename(snap.spec));
    stopped.push_back(id);
  }
  ready_.clear();
  return stopped;
}

std::optional<JobSnapshot> JobQueue::snapshot(u64 id) const {
  MutexLock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.snap;
}

std::vector<u64> JobQueue::job_ids() const {
  MutexLock lock(mutex_);
  std::vector<u64> ids;
  ids.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) ids.push_back(id);
  return ids;
}

}  // namespace restore::service
