// Campaign job queue of the `restored` service.
//
// Jobs are keyed by campaign identity: the existing config_hash of the
// campaign config a JobSpec maps onto, extended with the shard geometry
// (shard_trials changes the sampling and therefore the trace). Submitting a
// spec whose identity matches a queued or running job *attaches* to it
// instead of creating a second run; a spec whose spool trace is already
// complete is a cache hit and never reaches the queue at all (the server
// makes that call — the queue just accepts the pre-finished job record).
//
// Scheduling is a priority FIFO: higher `priority` pops first, ties run in
// submission order. Worker threads block in pop_ready(); shutdown() wakes
// them all with "no more work" so a draining daemon can join its runners.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/thread_annotations.hpp"
#include "faultinject/orchestrator.hpp"
#include "faultinject/uarch_campaign.hpp"
#include "faultinject/vm_campaign.hpp"
#include "service/protocol.hpp"

namespace restore::service {

enum class JobState : u8 {
  kQueued,
  kRunning,
  kDone,         // complete trace on disk, exit 0
  kQuarantined,  // partial: quarantined shards remain, exit 3
  kStopped,      // graceful shutdown cut the run, exit 130, resumable
  kFailed,       // the campaign threw (bad spec, alien spool manifest), exit 1
};

std::string_view to_string(JobState state) noexcept;
bool job_state_terminal(JobState state) noexcept;

// Process exit-code semantics of a terminal state (matches the batch CLI:
// 0 complete, 3 quarantined, 130 stopped, 1 failed).
u64 job_state_exit_code(JobState state) noexcept;

struct JobSnapshot {
  u64 id = 0;
  JobSpec spec;
  u64 config_hash = 0;   // campaign config hash (identity also covers geometry)
  u64 priority = 0;
  JobState state = JobState::kQueued;
  std::string trace_path;
  u64 trials_done = 0;
  u64 trials_total = 0;
  u64 rate_milli = 0;  // live trials/sec * 1000 from the latest progress event
  u64 shards_done = 0;
  u64 shards_total = 0;
  u64 quarantined_shards = 0;
  u64 exit_code = 0;
  std::string error;
};

// ---- JobSpec -> campaign config mapping (implemented over faultinject) ----

// Human-readable validation; nullopt when the spec is runnable.
std::optional<std::string> spec_error(const JobSpec& spec);

// The campaign configs a spec maps onto (spec.kind selects which is used).
faultinject::VmCampaignConfig vm_config_for(const JobSpec& spec);
faultinject::UarchCampaignConfig uarch_config_for(const JobSpec& spec);

// The campaign config_hash the spec maps onto (kind-dispatched).
u64 spec_config_hash(const JobSpec& spec);

// Effective shard geometry (0 resolved to the orchestrator default).
u64 spec_shard_trials(const JobSpec& spec);

// Dedup/spool key: config_hash x shard geometry, as a filesystem-safe name
// ("vm-0123456789abcdef-s32.jsonl"). Two specs with the same key produce
// byte-identical traces, which is what makes attaching and caching sound.
std::string spec_trace_filename(const JobSpec& spec);

// The exact shard plan the spec's campaign runs locally (kind-dispatched,
// empty workload list resolved to all workloads). The fleet coordinator and
// workers both derive the plan from the spec alone, which is what lets any
// node execute any shard and the merged trace stay byte-identical to the
// single-machine run.
std::vector<faultinject::ShardSpec> spec_shard_plan(const JobSpec& spec);

// Identity manifest of the spec's campaign (kind, config_hash, seed, shard
// geometry; totals left for the runner), bit-compatible with the manifest the
// orchestrated campaign writes.
faultinject::CampaignManifest spec_identity_manifest(const JobSpec& spec);

// Run one planned shard of the spec and serialize it as its trace JSONL
// lines, newline-terminated, in slot order — exactly the bytes the local
// orchestrator would stream for the shard. Throws on a failing shard (the
// fleet worker converts that into a lease-failed frame).
std::string spec_shard_jsonl(const JobSpec& spec,
                             const faultinject::ShardSpec& shard);

class JobQueue {
 public:
  struct Submitted {
    u64 id = 0;
    bool attached = false;  // identity matched a queued/running job
    JobState state = JobState::kQueued;
  };

  // Enqueue `spec`, or attach to the queued/running job with the same
  // identity. With `already_complete`, record the job as kDone without
  // enqueueing it (the server verified a complete spool trace).
  Submitted submit(const JobSpec& spec, u64 priority, std::string trace_path,
                   bool already_complete);

  // Block until a queued job is available (marks it running and returns its
  // id) or shutdown() was called (returns nullopt).
  std::optional<u64> pop_ready();

  // Wake every pop_ready() waiter; subsequent pops return nullopt. Queued
  // jobs stay queued — the draining server marks them stopped itself.
  void shutdown();

  // Runner-side bookkeeping.
  void update_progress(u64 id, u64 trials_done, u64 trials_total, u64 shards_done,
                       u64 shards_total, u64 quarantined_shards, u64 rate_milli);
  void mark_finished(u64 id, JobState state, const std::string& error);

  // Mark every still-queued job kStopped and return their ids (drain path).
  std::vector<u64> stop_queued();

  std::optional<JobSnapshot> snapshot(u64 id) const;
  std::vector<u64> job_ids() const;  // submission order

 private:
  struct Job {
    u64 seq = 0;  // FIFO tiebreak within a priority band
    JobSnapshot snap;
  };

  mutable Mutex mutex_;
  CondVar ready_cv_;
  // id -> job, submission order
  std::map<u64, Job> jobs_ RESTORE_GUARDED_BY(mutex_);
  // identity key -> queued/running id
  std::map<std::string, u64> active_ RESTORE_GUARDED_BY(mutex_);
  // Ascending iteration pops (max priority, min seq) first: (~priority, seq, id)
  std::set<std::tuple<u64, u64, u64>> ready_ RESTORE_GUARDED_BY(mutex_);
  u64 next_id_ RESTORE_GUARDED_BY(mutex_) = 1;
  u64 next_seq_ RESTORE_GUARDED_BY(mutex_) = 0;
  bool shutdown_ RESTORE_GUARDED_BY(mutex_) = false;
};

}  // namespace restore::service
