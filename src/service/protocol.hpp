// Wire protocol of the `restored` campaign service.
//
// Transport: a byte stream (Unix-domain or TCP socket) carrying framed
// messages. Each frame is a 4-byte big-endian payload length followed by
// exactly that many payload bytes; payloads larger than kMaxFramePayload are
// a protocol error and poison the connection (a stream cannot be resynced
// once a length prefix is untrusted). FrameReader reassembles frames from
// arbitrarily split or coalesced reads, so callers just feed it whatever
// recv() returned.
//
// Payloads are flat JSON objects (common/flatjson.hpp) with a mandatory
// "type" field. The full message grammar lives in docs/ARCHITECTURE.md;
// in short:
//
//   client -> server   ping | submit | status | list | subscribe | fetch |
//                      analyze
//   server -> client   pong | submitted | event | done | job-status |
//                      list-end | trace-data | trace-end | analyze-result |
//                      error | shutdown
//
// The fleet fabric (fleet_coordinator.hpp / fleet_worker.hpp) rides the same
// framing with its own message family:
//
//   coordinator -> worker   lease | lease-cancel | worker-status
//   worker -> coordinator   lease-data | lease-result | lease-failed |
//                           worker-info
//
// Every value is an unsigned integer, bool, string, or string array, so a
// decoded message reconstructs the encoded one bit-for-bit (round-trip
// exactness is what lets the service hand back byte-identical traces).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace restore::service {

// ---- framing ----

inline constexpr std::size_t kFrameHeaderBytes = 4;
// Generous for control messages and trace chunks alike; a frame above this is
// a corrupt or hostile stream, not a big message.
inline constexpr u32 kMaxFramePayload = 1u << 20;
// Trace bytes are streamed in chunks of this size (before JSON escaping).
inline constexpr std::size_t kTraceChunkBytes = 48 * 1024;
inline constexpr u64 kProtocolVersion = 1;

// Length-prefix `payload`; throws std::length_error above kMaxFramePayload.
std::string encode_frame(std::string_view payload);

// Why a framed decode failed. The distinction matters to callers: kOversize
// means a corrupt or hostile peer (drop immediately, never retry), while
// kTruncated means the stream ended mid-frame (a crashed peer; the work it
// carried may be retried elsewhere).
enum class FrameError : u8 {
  kNone,
  kOversize,   // length prefix beyond the payload limit
  kTruncated,  // EOF with a partial header or payload buffered (see finish())
};

std::string_view to_string(FrameError error) noexcept;

// Incremental frame reassembly over a byte stream. Feed it raw read() data in
// any fragmentation; next() yields complete payloads in order. An oversize
// length prefix puts the reader in a permanent error state (and next()
// returns nullopt forever): the connection must be dropped.
//
// The payload limit is kMaxFramePayload by default; adversarial-input tests
// (and embedders fronting untrusted networks) can pass a smaller one. The
// limit bounds allocation: a hostile 4-byte header can never make the reader
// buffer more than `max_payload` bytes past the frames already delivered.
class FrameReader {
 public:
  FrameReader() = default;
  explicit FrameReader(u32 max_payload) : max_payload_(max_payload) {}

  void feed(const char* data, std::size_t size);
  std::optional<std::string> next();

  // Signal end-of-stream: bytes still buffered mean the peer died mid-frame,
  // which poisons the reader with kTruncated. Idempotent; a clean EOF (no
  // pending bytes) leaves the reader error-free.
  void finish();

  bool error() const noexcept { return error_ != FrameError::kNone; }
  FrameError error_code() const noexcept { return error_; }
  const std::string& error_text() const noexcept { return error_text_; }
  // Bytes buffered but not yet returned (tests).
  std::size_t pending_bytes() const noexcept { return buffer_.size() - cursor_; }

 private:
  std::string buffer_;
  std::size_t cursor_ = 0;  // consumed prefix of buffer_
  u32 max_payload_ = kMaxFramePayload;
  FrameError error_ = FrameError::kNone;
  std::string error_text_;
};

// Write all of `bytes` to a socket fd, retrying short writes and EINTR (with
// MSG_NOSIGNAL, so a dead peer surfaces as false instead of SIGPIPE). A frame
// passed through here can never shear mid-stream. Returns false on any other
// send error.
bool send_all(int fd, std::string_view bytes) noexcept;

// ---- messages ----

enum class MessageType : u8 {
  // client -> server
  kPing,
  kSubmit,
  kStatus,
  kList,
  kSubscribe,
  kFetch,
  kAnalyze,  // aggregate report over a finished job's compacted trial store
  // server -> client
  kPong,
  kSubmitted,
  kEvent,
  kDone,
  kJobStatus,
  kListEnd,
  kTraceData,
  kTraceEnd,
  kAnalyzeResult,  // rendered analysis report (kAnalyze reply)
  kError,
  kShutdown,
  // fleet: coordinator -> worker
  kLease,         // run one shard of a campaign spec under a lease id
  kLeaseCancel,   // best-effort: the lease was re-leased elsewhere
  kWorkerStatus,  // liveness + counters probe
  // fleet: worker -> coordinator
  kLeaseData,    // chunk of the shard's JSONL lines (kTraceChunkBytes-sized)
  kLeaseResult,  // terminal success: trial count, byte count, cache provenance
  kLeaseFailed,  // terminal failure: the shard itself threw on the worker
  kWorkerInfo,   // kWorkerStatus reply
};

// Number of MessageType enumerators. Every schema surface keys off this:
// protocol.cpp static_asserts the kTypeNames table against it, the protocol
// test iterates 0..kMessageTypeCount-1 for to_string/from_string coverage,
// and the simlint SCHEMA family cross-checks it against the enum body.
inline constexpr std::size_t kMessageTypeCount = 25;

std::string_view to_string(MessageType type) noexcept;
std::optional<MessageType> message_type_from_string(std::string_view name) noexcept;

// A campaign job as submitted over the wire. Maps 1:1 onto the fields of
// VmCampaignConfig / UarchCampaignConfig that the service exposes; the
// server derives the campaign identity (config_hash) from it, so two
// submissions with equal specs are the same job.
struct JobSpec {
  std::string kind = "vm";  // "vm" | "uarch"
  u64 seed = 0x5EED;
  u64 trials = 0;           // trials per workload; 0 = campaign default
  u64 shard_trials = 0;     // shard geometry; 0 = orchestrator default
  std::vector<std::string> workloads;  // empty = all seven
  bool low32 = false;                  // vm: restrict flips to low 32 bits
  std::string model = "result";        // vm: "result" | "register"
  bool latches_only = false;           // uarch: pipeline latches only

  // Expanded fault model (faultinject/fault_model.hpp): the model token plus
  // every model knob. Encoded on the wire only when `fault_model` is not
  // "single", so pre-existing submit encodings — and their dedup identity —
  // are byte-unchanged.
  std::string fault_model = "single";
  u64 fault_bits = 2;        // multi: adjacent bits per upset
  u64 burst_entries = 2;     // burst: consecutive SRAM entries in the column
  std::string fault_target = "load";  // targeted: "load" | "store"
  u64 vdd_mv = 1000;         // rate: operating point
  u64 freq_mhz = 1000;
  u64 upset_ppm = 1'000'000;

  bool operator==(const JobSpec&) const = default;
};

// One decoded protocol message: the `type` tag plus the superset of fields
// the individual types use. encode_message writes only the fields relevant
// for msg.type; decode_message validates the type-specific required fields.
struct WireMessage {
  MessageType type = MessageType::kPing;

  JobSpec spec;              // submit
  u64 priority = 0;          // submit (higher runs earlier), job-status
  bool want_events = false;  // submit: stream events until done

  u64 job = 0;          // every job-scoped message
  u64 config_hash = 0;  // submitted, job-status
  std::string state;    // submitted, job-status, done
  bool attached = false;  // submitted: deduped onto an in-flight job
  bool cached = false;    // submitted: served complete from the spool;
                          // analyze-result: report served from the daemon's
                          // aggregate cache
  std::string trace;      // submitted, job-status, done: spool trace path

  std::string event;     // event: heartbeat|shard-done|attempt-failed|
                         //        quarantine|complete
  u64 shard = 0;         // event (shard-scoped kinds)
  std::string workload;  // event (shard-scoped kinds)
  u64 attempt = 0;       // event
  u64 attempts_max = 0;  // event
  u64 shards_done = 0;   // event, job-status
  u64 shards_total = 0;  // event, job-status
  u64 trials_done = 0;   // event, job-status
  u64 trials_total = 0;  // event, job-status
  u64 rate_milli = 0;    // event, job-status: live trials/sec * 1000
  u64 quarantined = 0;   // job-status: quarantined shard count

  u64 exit_code = 0;  // done, job-status
  u64 count = 0;      // list-end: job-status frames that preceded it
  u64 bytes = 0;      // trace-end: total trace bytes streamed;
                      // lease-result: shard JSONL bytes that were streamed
  u64 version = 0;    // pong, worker-info
  std::string data;   // trace-data / lease-data chunk, analyze-result document
  std::string text;   // error/shutdown message, event line, done/job-status
                      // failure detail, lease-failed error

  // ---- analytics fields ----
  u64 interval = 0;   // analyze: uarch classification interval (0 = default)
  bool json = false;  // analyze: render the report as JSON instead of text;
                      // analyze-result: how `data` was rendered

  // ---- fleet fields ----
  u64 lease = 0;        // every lease-scoped message: coordinator-issued id
  u64 deadline_ms = 0;  // lease: worker-side execution deadline hint
  u64 leases_done = 0;  // worker-info: leases served since start
  u64 cache_hits = 0;   // worker-info: leases answered from the shard cache
  u64 failures = 0;     // worker-info: leases that ended in lease-failed
  u64 active = 0;       // worker-info: leases executing right now
};

// Serialize one message as a flat-JSON payload (no framing).
std::string encode_message(const WireMessage& msg);

// Parse a payload; nullopt on malformed JSON, unknown type, or a missing
// required field for the tagged type.
std::optional<WireMessage> decode_message(const std::string& payload);

}  // namespace restore::service
