// Compact binary columnar trial store — the analytics layer's on-disk format.
//
// A completed JSONL trace + manifest compacts (compact.hpp) into one `.cols`
// file: typed, dictionary-encoded column segments grouped into fixed-size row
// groups, followed by a flat-JSON footer carrying the campaign identity
// (kind, config_hash, seed, shard geometry) and the segment directory, and a
// fixed-size trailer that lets a reader locate the footer from the file end.
//
//   [8B head magic "RSTORCOL"]
//   [column segments, directory order: group-major, column-minor]
//   [footer: one flat-JSON object]
//   [8B LE footer length][8B tail magic "RSTORFTR"]
//
// Identity rules:
//   - The footer repeats the manifest's kind/config_hash/seed/shard geometry,
//     so a store can be matched to its campaign without the sidecar files.
//   - Encoding is fully deterministic: dictionaries are built in first-
//     appearance (row) order, rows keep the trace's line order, and segments
//     are laid out in directory order — so the same trace compacts to the
//     same bytes on every run and at every thread count.
//   - `data_hash` is FNV-1a over all segment bytes; readers verify it, so a
//     truncated or bit-rotted store fails loudly instead of mis-aggregating.
//
// Column encodings (all independently decodable given the group's row count):
//   varint   LEB128-coded u64 per row
//   dict     varint dict size, then len-prefixed dict strings in first-
//            appearance order, then one varint dict index per row
//   bitmap   ceil(rows/8) bytes, LSB-first
//   list     per row: varint element count, then that many varint values
// Latency columns store 0 for kNever and latency+1 otherwise, keeping the
// varint short for the common "symptom fired quickly" case.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace restore::analytics {

inline constexpr u64 kColumnStoreVersion = 1;
inline constexpr u64 kRowGroupRows = 4096;
inline constexpr std::string_view kHeadMagic = "RSTORCOL";
inline constexpr std::string_view kTailMagic = "RSTORFTR";

// Sidecar path for a trace's compacted store: `<trace>.cols`.
std::string store_path_for(const std::string& jsonl_path);

// ---- footer ----

struct StoreFooter {
  u64 store_version = kColumnStoreVersion;
  std::string kind;  // "vm" | "uarch"
  u64 config_hash = 0;
  u64 seed = 0;
  u64 shard_trials = 0;
  u64 total_shards = 0;
  u64 total_trials = 0;
  u64 rows = 0;                  // trial rows actually stored
  u64 source_schema_version = 0; // trace schema the rows round-trip to
  u64 row_group_rows = kRowGroupRows;
  std::vector<u64> group_rows;         // rows per group (last may be short)
  std::vector<std::string> columns;    // column names, segment order
  std::vector<std::string> encodings;  // parallel: varint|latency|dict|bitmap|list
  std::vector<u64> offsets;  // absolute file offset per (group, column)
  std::vector<u64> sizes;    // segment byte size per (group, column)
  u64 data_hash = 0;         // fnv1a over all segment bytes, directory order
};

// Serialize the footer as one flat-JSON object (campaign_io discipline: every
// value is an unsigned integer, identifier-like string or homogeneous array,
// so the round trip is exact; simlint's SCHEMA family cross-checks the two).
std::string write_footer(const StoreFooter& footer);
std::optional<StoreFooter> read_footer(const std::string& text);

// ---- segment encodings ----

void put_varint(std::string& out, u64 value);
// Decodes one varint at `pos`, advancing it; nullopt on truncated input.
std::optional<u64> get_varint(std::string_view bytes, std::size_t& pos);

// Latency transport mapping: kNever <-> 0, latency <-> latency + 1.
constexpr u64 encode_latency_value(u64 latency) noexcept {
  return latency == kNever ? 0 : latency + 1;
}
constexpr u64 decode_latency_value(u64 coded) noexcept {
  return coded == 0 ? kNever : coded - 1;
}

std::string encode_u64_column(const std::vector<u64>& values);
std::string encode_dict_column(const std::vector<std::string>& values);
std::string encode_bool_column(const std::vector<bool>& values);
std::string encode_list_column(const std::vector<std::vector<u64>>& values);

// Decoders throw std::runtime_error on malformed segments.
std::vector<u64> decode_u64_column(std::string_view bytes, u64 rows);
std::vector<std::string> decode_dict_column(std::string_view bytes, u64 rows);
std::vector<bool> decode_bool_column(std::string_view bytes, u64 rows);
std::vector<std::vector<u64>> decode_list_column(std::string_view bytes, u64 rows);

// ---- writer / reader ----

// Accumulates encoded segments group-major and writes the final file
// atomically (write-then-rename, like write_manifest).
class ColumnStoreWriter {
 public:
  // `footer` supplies identity + column names/encodings; group_rows, offsets,
  // sizes, rows and data_hash are filled in as segments arrive.
  explicit ColumnStoreWriter(StoreFooter footer);

  // Append one group: `segments` must be parallel to footer().columns.
  void add_group(u64 rows, std::vector<std::string> segments);

  const StoreFooter& footer() const noexcept { return footer_; }

  // Assemble the complete store image (header, segments, footer, trailer).
  std::string finish();

  // finish() + atomic write to `path`; throws std::runtime_error on I/O error.
  void write(const std::string& path);

 private:
  StoreFooter footer_;
  std::vector<std::string> segments_;  // group-major, column-minor
  bool finished_ = false;
};

// Loads a store into memory, verifies magic/version/data_hash, and decodes
// requested (group, column) segments on demand — a query touches only the
// columns it needs, never the JSONL. Throws std::runtime_error on a file
// that is missing, truncated, corrupt, or written by a future version.
class ColumnStoreReader {
 public:
  explicit ColumnStoreReader(const std::string& path);

  const StoreFooter& footer() const noexcept { return footer_; }
  std::size_t group_count() const noexcept { return footer_.group_rows.size(); }
  u64 group_rows(std::size_t group) const { return footer_.group_rows.at(group); }

  // Column accessors by name; throw on unknown name or encoding mismatch.
  std::vector<u64> u64_column(std::size_t group, std::string_view name) const;
  std::vector<std::string> string_column(std::size_t group, std::string_view name) const;
  std::vector<bool> bool_column(std::size_t group, std::string_view name) const;
  std::vector<std::vector<u64>> list_column(std::size_t group,
                                            std::string_view name) const;
  bool has_column(std::string_view name) const noexcept;

 private:
  std::size_t column_index(std::string_view name) const;
  std::string_view segment(std::size_t group, std::size_t column) const;

  std::string data_;  // whole file image
  StoreFooter footer_;
};

}  // namespace restore::analytics
