#include "analytics/compact.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "isa/instruction.hpp"
#include "vm/vm.hpp"
#include "workloads/workloads.hpp"

namespace restore::analytics {

namespace {

using faultinject::ParsedUarchTrial;
using faultinject::ParsedVmTrial;

[[noreturn]] void bad_trace(const std::string& what) {
  throw std::runtime_error("compact: " + what);
}

// The dynamic-instruction sites of one workload's golden run, indexed by
// inject_index. Opcode strings are ISA mnemonics.
struct GoldenSites {
  std::vector<u64> pc;
  std::vector<std::string> opcode;
};

GoldenSites replay_workload(const std::string& name) {
  GoldenSites sites;
  const workloads::Workload* workload = nullptr;
  try {
    workload = &workloads::by_name(name);
  } catch (const std::exception&) {
    return sites;  // unknown workload: derived columns stay "?"/0
  }
  vm::Vm vm(workload->program);
  while (const auto retired = vm.step()) {
    sites.pc.push_back(retired->pc);
    const isa::DecodedInst inst = isa::decode(retired->insn);
    sites.opcode.emplace_back(inst.valid ? isa::mnemonic(inst.op) : "?");
  }
  return sites;
}

// Split the trace into its header (if any) and trial lines.
struct TraceLines {
  u64 source_schema_version = 1;  // 1 = legacy header-less trace
  std::vector<std::string> lines;
};

TraceLines read_trace_lines(const std::string& jsonl_path, u64& jsonl_bytes) {
  std::ifstream in(jsonl_path, std::ios::binary);
  if (!in) bad_trace("cannot open " + jsonl_path);
  TraceLines out;
  std::string line;
  bool first = true;
  jsonl_bytes = 0;
  while (std::getline(in, line)) {
    jsonl_bytes += line.size() + 1;
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (const auto header = faultinject::parse_trace_header(line)) {
        if (header->schema_version > faultinject::kCampaignSchemaVersion) {
          bad_trace(jsonl_path + " was written by a future schema version");
        }
        out.source_schema_version = header->schema_version;
        continue;
      }
    }
    out.lines.push_back(line);
  }
  return out;
}

template <class Parsed, class ParseLine>
std::vector<Parsed> parse_lines(const std::vector<std::string>& lines,
                                std::size_t threads, const ParseLine& parse_line) {
  std::vector<Parsed> records(lines.size());
  std::vector<u8> ok(lines.size(), 0);
  ThreadPool pool(threads);
  pool.parallel_for(lines.size(), [&](std::size_t i) {
    if (auto parsed = parse_line(lines[i])) {
      auto& [shard, slot, trial] = *parsed;
      records[i].shard = shard;
      records[i].slot = slot;
      records[i].trial = std::move(trial);
      ok[i] = 1;
    }
  });
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!ok[i]) bad_trace("malformed trial line: " + lines[i]);
  }
  return records;
}

std::vector<std::pair<std::size_t, std::size_t>> group_ranges(std::size_t rows) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t begin = 0; begin < rows; begin += kRowGroupRows) {
    ranges.emplace_back(begin, std::min(rows, begin + kRowGroupRows));
  }
  if (ranges.empty()) ranges.emplace_back(0, 0);  // empty trace: one empty group
  return ranges;
}

StoreFooter footer_for(const faultinject::CampaignManifest& manifest,
                       u64 source_schema_version,
                       std::vector<std::string> columns,
                       std::vector<std::string> encodings) {
  StoreFooter footer;
  footer.kind = manifest.kind;
  footer.config_hash = manifest.config_hash;
  footer.seed = manifest.seed;
  footer.shard_trials = manifest.shard_trials;
  footer.total_shards = manifest.total_shards;
  footer.total_trials = manifest.total_trials;
  footer.source_schema_version = source_schema_version;
  footer.columns = std::move(columns);
  footer.encodings = std::move(encodings);
  return footer;
}

CompactResult compact_vm(const std::string& store_path,
                         const faultinject::CampaignManifest& manifest,
                         const TraceLines& trace, u64 jsonl_bytes,
                         const CompactOptions& options) {
  const auto records = parse_lines<ParsedVmTrial>(
      trace.lines, options.threads, faultinject::vm_trial_from_jsonl);

  // Golden replays for the root-cause columns, one per workload present.
  std::map<std::string, GoldenSites> sites;
  if (options.derive_root_cause) {
    for (const auto& record : records) sites.try_emplace(record.trial.workload);
    for (auto& [name, golden] : sites) golden = replay_workload(name);
  }

  std::vector<std::string> columns = {
      "shard",      "slot",      "workload", "outcome",    "latency",
      "inject_index", "bit",     "abort_type", "abort_msg", "model",
      "extra_bits", "upset"};
  std::vector<std::string> encodings = {
      "varint", "varint", "dict", "dict", "latency",
      "varint", "varint", "dict", "dict", "dict",
      "list",   "bitmap"};
  if (options.derive_root_cause) {
    columns.insert(columns.end(), {"pc", "opcode"});
    encodings.insert(encodings.end(), {"varint", "dict"});
  }
  ColumnStoreWriter writer(
      footer_for(manifest, trace.source_schema_version, columns, encodings));

  for (const auto& [begin, end] : group_ranges(records.size())) {
    const std::size_t rows = end - begin;
    std::vector<u64> shard(rows), slot(rows), latency(rows), inject(rows),
        bit(rows);
    std::vector<std::string> workload(rows), outcome(rows), abort_type(rows),
        abort_msg(rows), model(rows);
    std::vector<std::vector<u64>> extra_bits(rows);
    std::vector<bool> upset(rows);
    std::vector<u64> pc(rows);
    std::vector<std::string> opcode(rows, "?");  // "?" = site not derivable
    for (std::size_t i = 0; i < rows; ++i) {
      const auto& record = records[begin + i];
      const auto& trial = record.trial;
      shard[i] = record.shard;
      slot[i] = record.slot;
      workload[i] = trial.workload;
      outcome[i] = std::string(to_string(trial.outcome));
      latency[i] = encode_latency_value(trial.latency);
      inject[i] = trial.inject_index;
      bit[i] = trial.bit;
      abort_type[i] = trial.abort_type;
      abort_msg[i] = trial.abort_message;
      model[i] = trial.model;
      extra_bits[i] = trial.extra_bits;
      upset[i] = trial.upset;
      if (options.derive_root_cause) {
        const auto it = sites.find(trial.workload);
        if (it != sites.end() && trial.inject_index < it->second.pc.size()) {
          pc[i] = it->second.pc[trial.inject_index];
          opcode[i] = it->second.opcode[trial.inject_index];
        }
      }
    }
    std::vector<std::string> segments = {
        encode_u64_column(shard),        encode_u64_column(slot),
        encode_dict_column(workload),    encode_dict_column(outcome),
        encode_u64_column(latency),      encode_u64_column(inject),
        encode_u64_column(bit),          encode_dict_column(abort_type),
        encode_dict_column(abort_msg),   encode_dict_column(model),
        encode_list_column(extra_bits),  encode_bool_column(upset)};
    if (options.derive_root_cause) {
      segments.push_back(encode_u64_column(pc));
      segments.push_back(encode_dict_column(opcode));
    }
    writer.add_group(rows, std::move(segments));
  }
  CompactResult result;
  result.rows = records.size();
  result.jsonl_bytes = jsonl_bytes;
  writer.write(store_path);
  {
    std::ifstream in(store_path, std::ios::binary | std::ios::ate);
    result.store_bytes = in ? static_cast<u64>(in.tellg()) : 0;
  }
  return result;
}

CompactResult compact_uarch(const std::string& store_path,
                            const faultinject::CampaignManifest& manifest,
                            const TraceLines& trace, u64 jsonl_bytes,
                            const CompactOptions& options) {
  const auto records = parse_lines<ParsedUarchTrial>(
      trace.lines, options.threads, faultinject::uarch_trial_from_jsonl);

  const std::vector<std::string> columns = {
      "shard",          "slot",        "workload",       "field",
      "entry",          "bit",         "field_name",     "storage",
      "protection",     "lat_exception", "lat_cfv",      "lat_hiconf",
      "lat_deadlock",   "lat_illegal_flow", "lat_cache_burst",
      "trace_diverged", "arch_corrupt", "uarch_equal",   "live_diff",
      "end_status",     "abort_type",  "abort_msg",      "abort_resource",
      "model",          "extra_bits",  "upset"};
  const std::vector<std::string> encodings = {
      "varint",  "varint",  "dict",    "varint",
      "varint",  "varint",  "dict",    "dict",
      "dict",    "latency", "latency", "latency",
      "latency", "latency", "latency",
      "bitmap",  "bitmap",  "bitmap",  "bitmap",
      "varint",  "dict",    "dict",    "bitmap",
      "dict",    "list",    "bitmap"};
  ColumnStoreWriter writer(
      footer_for(manifest, trace.source_schema_version, columns, encodings));

  for (const auto& [begin, end] : group_ranges(records.size())) {
    const std::size_t rows = end - begin;
    std::vector<u64> shard(rows), slot(rows), field(rows), entry(rows), bit(rows),
        lat_exception(rows), lat_cfv(rows), lat_hiconf(rows), lat_deadlock(rows),
        lat_illegal_flow(rows), lat_cache_burst(rows), end_status(rows);
    std::vector<std::string> workload(rows), field_name(rows), storage(rows),
        protection(rows), abort_type(rows), abort_msg(rows), model(rows);
    std::vector<bool> trace_diverged(rows), arch_corrupt(rows), uarch_equal(rows),
        live_diff(rows), abort_resource(rows), upset(rows);
    std::vector<std::vector<u64>> extra_bits(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      const auto& record = records[begin + i];
      const auto& trial = record.trial;
      shard[i] = record.shard;
      slot[i] = record.slot;
      workload[i] = trial.workload;
      field[i] = trial.bit.field;
      entry[i] = trial.bit.entry;
      bit[i] = trial.bit.bit;
      field_name[i] = trial.field_name;
      storage[i] = std::string(faultinject::to_string(trial.storage));
      protection[i] = std::string(faultinject::to_string(trial.protection));
      lat_exception[i] = encode_latency_value(trial.lat_exception);
      lat_cfv[i] = encode_latency_value(trial.lat_cfv);
      lat_hiconf[i] = encode_latency_value(trial.lat_hiconf);
      lat_deadlock[i] = encode_latency_value(trial.lat_deadlock);
      lat_illegal_flow[i] = encode_latency_value(trial.lat_illegal_flow);
      lat_cache_burst[i] = encode_latency_value(trial.lat_cache_burst);
      trace_diverged[i] = trial.trace_diverged;
      arch_corrupt[i] = trial.arch_corrupt_at_end;
      uarch_equal[i] = trial.uarch_state_equal;
      live_diff[i] = trial.live_state_diff;
      end_status[i] = static_cast<u64>(trial.end_status);
      abort_type[i] = trial.abort_type;
      abort_msg[i] = trial.abort_message;
      abort_resource[i] = trial.abort_resource;
      model[i] = trial.model;
      extra_bits[i] = trial.extra_bits;
      upset[i] = trial.upset;
    }
    std::vector<std::string> segments = {
        encode_u64_column(shard),
        encode_u64_column(slot),
        encode_dict_column(workload),
        encode_u64_column(field),
        encode_u64_column(entry),
        encode_u64_column(bit),
        encode_dict_column(field_name),
        encode_dict_column(storage),
        encode_dict_column(protection),
        encode_u64_column(lat_exception),
        encode_u64_column(lat_cfv),
        encode_u64_column(lat_hiconf),
        encode_u64_column(lat_deadlock),
        encode_u64_column(lat_illegal_flow),
        encode_u64_column(lat_cache_burst),
        encode_bool_column(trace_diverged),
        encode_bool_column(arch_corrupt),
        encode_bool_column(uarch_equal),
        encode_bool_column(live_diff),
        encode_u64_column(end_status),
        encode_dict_column(abort_type),
        encode_dict_column(abort_msg),
        encode_bool_column(abort_resource),
        encode_dict_column(model),
        encode_list_column(extra_bits),
        encode_bool_column(upset)};
    writer.add_group(rows, std::move(segments));
  }
  CompactResult result;
  result.rows = records.size();
  result.jsonl_bytes = jsonl_bytes;
  writer.write(store_path);
  {
    std::ifstream in(store_path, std::ios::binary | std::ios::ate);
    result.store_bytes = in ? static_cast<u64>(in.tellg()) : 0;
  }
  return result;
}

}  // namespace

CompactResult compact_trace(const std::string& jsonl_path,
                            const std::string& store_path,
                            const CompactOptions& options) {
  const auto manifest =
      faultinject::read_manifest(faultinject::manifest_path_for(jsonl_path));
  if (!manifest) {
    bad_trace("no manifest for " + jsonl_path +
              " — only completed campaigns compact");
  }
  u64 jsonl_bytes = 0;
  const TraceLines trace = read_trace_lines(jsonl_path, jsonl_bytes);
  if (manifest->kind == "vm") {
    return compact_vm(store_path, *manifest, trace, jsonl_bytes, options);
  }
  if (manifest->kind == "uarch") {
    return compact_uarch(store_path, *manifest, trace, jsonl_bytes, options);
  }
  bad_trace("unknown campaign kind '" + manifest->kind + "'");
}

std::vector<ParsedVmTrial> reconstruct_vm_group(const ColumnStoreReader& store,
                                                std::size_t g) {
  if (store.footer().kind != "vm") bad_trace("store is not a vm trace");
  std::vector<ParsedVmTrial> records;
  {
    const u64 rows = store.group_rows(g);
    records.reserve(rows);
    const auto shard = store.u64_column(g, "shard");
    const auto slot = store.u64_column(g, "slot");
    const auto workload = store.string_column(g, "workload");
    const auto outcome = store.string_column(g, "outcome");
    const auto latency = store.u64_column(g, "latency");
    const auto inject = store.u64_column(g, "inject_index");
    const auto bit = store.u64_column(g, "bit");
    const auto abort_type = store.string_column(g, "abort_type");
    const auto abort_msg = store.string_column(g, "abort_msg");
    const auto model = store.string_column(g, "model");
    const auto extra_bits = store.list_column(g, "extra_bits");
    const auto upset = store.bool_column(g, "upset");
    for (u64 i = 0; i < rows; ++i) {
      ParsedVmTrial record;
      record.shard = shard[i];
      record.slot = slot[i];
      record.trial.workload = workload[i];
      const auto parsed_outcome = faultinject::vm_outcome_from_string(outcome[i]);
      if (!parsed_outcome) bad_trace("store holds unknown outcome " + outcome[i]);
      record.trial.outcome = *parsed_outcome;
      record.trial.latency = decode_latency_value(latency[i]);
      record.trial.inject_index = inject[i];
      record.trial.bit = static_cast<u32>(bit[i]);
      record.trial.abort_type = abort_type[i];
      record.trial.abort_message = abort_msg[i];
      record.trial.model = model[i];
      record.trial.extra_bits = extra_bits[i];
      record.trial.upset = upset[i];
      records.push_back(std::move(record));
    }
  }
  return records;
}

std::vector<ParsedVmTrial> reconstruct_vm_trials(const ColumnStoreReader& store) {
  std::vector<ParsedVmTrial> records;
  records.reserve(store.footer().rows);
  for (std::size_t g = 0; g < store.group_count(); ++g) {
    auto group = reconstruct_vm_group(store, g);
    for (auto& record : group) records.push_back(std::move(record));
  }
  return records;
}

std::vector<ParsedUarchTrial> reconstruct_uarch_group(
    const ColumnStoreReader& store, std::size_t g) {
  if (store.footer().kind != "uarch") bad_trace("store is not a uarch trace");
  std::vector<ParsedUarchTrial> records;
  {
    const u64 rows = store.group_rows(g);
    records.reserve(rows);
    const auto shard = store.u64_column(g, "shard");
    const auto slot = store.u64_column(g, "slot");
    const auto workload = store.string_column(g, "workload");
    const auto field = store.u64_column(g, "field");
    const auto entry = store.u64_column(g, "entry");
    const auto bit = store.u64_column(g, "bit");
    const auto field_name = store.string_column(g, "field_name");
    const auto storage = store.string_column(g, "storage");
    const auto protection = store.string_column(g, "protection");
    const auto lat_exception = store.u64_column(g, "lat_exception");
    const auto lat_cfv = store.u64_column(g, "lat_cfv");
    const auto lat_hiconf = store.u64_column(g, "lat_hiconf");
    const auto lat_deadlock = store.u64_column(g, "lat_deadlock");
    const auto lat_illegal_flow = store.u64_column(g, "lat_illegal_flow");
    const auto lat_cache_burst = store.u64_column(g, "lat_cache_burst");
    const auto trace_diverged = store.bool_column(g, "trace_diverged");
    const auto arch_corrupt = store.bool_column(g, "arch_corrupt");
    const auto uarch_equal = store.bool_column(g, "uarch_equal");
    const auto live_diff = store.bool_column(g, "live_diff");
    const auto end_status = store.u64_column(g, "end_status");
    const auto abort_type = store.string_column(g, "abort_type");
    const auto abort_msg = store.string_column(g, "abort_msg");
    const auto abort_resource = store.bool_column(g, "abort_resource");
    const auto model = store.string_column(g, "model");
    const auto extra_bits = store.list_column(g, "extra_bits");
    const auto upset = store.bool_column(g, "upset");
    for (u64 i = 0; i < rows; ++i) {
      ParsedUarchTrial record;
      record.shard = shard[i];
      record.slot = slot[i];
      auto& trial = record.trial;
      trial.workload = workload[i];
      trial.bit.field = static_cast<u32>(field[i]);
      trial.bit.entry = static_cast<u32>(entry[i]);
      trial.bit.bit = static_cast<u32>(bit[i]);
      trial.field_name = field_name[i];
      const auto parsed_storage = faultinject::storage_from_string(storage[i]);
      const auto parsed_protection =
          faultinject::protection_from_string(protection[i]);
      if (!parsed_storage || !parsed_protection) {
        bad_trace("store holds unknown storage/protection token");
      }
      trial.storage = *parsed_storage;
      trial.protection = *parsed_protection;
      trial.lat_exception = decode_latency_value(lat_exception[i]);
      trial.lat_cfv = decode_latency_value(lat_cfv[i]);
      trial.lat_hiconf = decode_latency_value(lat_hiconf[i]);
      trial.lat_deadlock = decode_latency_value(lat_deadlock[i]);
      trial.lat_illegal_flow = decode_latency_value(lat_illegal_flow[i]);
      trial.lat_cache_burst = decode_latency_value(lat_cache_burst[i]);
      trial.trace_diverged = trace_diverged[i];
      trial.arch_corrupt_at_end = arch_corrupt[i];
      trial.uarch_state_equal = uarch_equal[i];
      trial.live_state_diff = live_diff[i];
      trial.end_status = static_cast<uarch::Core::Status>(end_status[i]);
      trial.abort_type = abort_type[i];
      trial.abort_message = abort_msg[i];
      trial.abort_resource = abort_resource[i];
      trial.model = model[i];
      trial.extra_bits = extra_bits[i];
      trial.upset = upset[i];
      records.push_back(std::move(record));
    }
  }
  return records;
}

std::vector<ParsedUarchTrial> reconstruct_uarch_trials(
    const ColumnStoreReader& store) {
  std::vector<ParsedUarchTrial> records;
  records.reserve(store.footer().rows);
  for (std::size_t g = 0; g < store.group_count(); ++g) {
    auto group = reconstruct_uarch_group(store, g);
    for (auto& record : group) records.push_back(std::move(record));
  }
  return records;
}

std::string reconstruct_trace_jsonl(const ColumnStoreReader& store) {
  std::string out;
  const StoreFooter& footer = store.footer();
  if (footer.source_schema_version >= 2) {
    out = faultinject::trace_header_line(footer.kind);
    out.push_back('\n');
  }
  if (footer.kind == "vm") {
    for (const auto& record : reconstruct_vm_trials(store)) {
      out += faultinject::vm_trial_to_jsonl(record.shard, record.slot, record.trial);
      out.push_back('\n');
    }
  } else {
    for (const auto& record : reconstruct_uarch_trials(store)) {
      out += faultinject::uarch_trial_to_jsonl(record.shard, record.slot,
                                               record.trial);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace restore::analytics
