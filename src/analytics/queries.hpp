// Query engine over the columnar trial store: every aggregate the paper's
// Figures 2-6 need, streaming over column blocks without ever re-parsing
// JSONL.
//
// Determinism contract: each query aggregates per row group and merges the
// partial results in group order into ordered containers, so the answer is
// identical at any thread count — byte-for-byte once rendered.
//
// Parity contract: `outcome_counts` reproduces faultinject::model_breakdown
// exactly (uarch traces classified with the perfect-cfv detector and baseline
// pipeline at `interval`), so a columnar query and campaign_status over the
// source JSONL must agree to the last trial.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analytics/column_store.hpp"
#include "common/stats.hpp"
#include "faultinject/export.hpp"

namespace restore::analytics {

struct QueryOptions {
  u64 interval = 100;       // checkpoint interval for uarch classification
  std::size_t threads = 0;  // row-group parallelism; 0 = inline
};

// Per-structure AVF: failing trials over architecturally meaningful trials
// (contained aborts are excluded from both sides — they are tool artifacts),
// with a Wilson 95% confidence interval. Structures are uarch field names,
// or workloads for a vm trace.
struct StructureAvfRow {
  std::string structure;
  u64 trials = 0;    // non-abort trials
  u64 failures = 0;
  ProportionCi avf;
};

// Root-cause vulnerability ranking (vm traces with derived pc/opcode
// columns): failures and AVF per injected instruction site.
struct SiteVulnRow {
  std::string site;  // "pc 0x..." or an opcode mnemonic
  u64 trials = 0;
  u64 failures = 0;
  ProportionCi avf;
};

// Symptom-latency distribution of one detector channel: trials where the
// channel fired, Figure 2 latency-bin counts (bins from
// figure2_latency_bins(); the last bin is "no symptom"/never), and
// nearest-rank percentiles over the fired latencies.
struct LatencyStatsRow {
  std::string detector;
  u64 fired = 0;
  u64 total = 0;
  std::vector<u64> bin_counts;
  u64 p50 = 0;
  u64 p90 = 0;
  u64 p99 = 0;
};

// Workload x detector defeat matrix: of the failing trials of `workload`,
// how many did detector channel `detector` never see? (Azambuja-style
// head-to-head: which workload idiom defeats which symptom detector.)
struct DefeatRow {
  std::string workload;
  std::string detector;
  u64 failures = 0;
  u64 defeated = 0;
};

// Per-(model, outcome) trial counts — exact parity with
// faultinject::model_breakdown over the reconstructed trials.
std::vector<faultinject::ModelBreakdownRow> outcome_counts(
    const ColumnStoreReader& store, const QueryOptions& options = {});

std::vector<StructureAvfRow> structure_avf(const ColumnStoreReader& store,
                                           const QueryOptions& options = {});

// Ranking by pc (by_opcode = false) or by opcode mnemonic (true); vm stores
// with root-cause columns only — throws otherwise. Rows are sorted by
// descending failures then site, truncated to `top_n` (0 = all).
std::vector<SiteVulnRow> site_vulnerability(const ColumnStoreReader& store,
                                            bool by_opcode,
                                            std::size_t top_n = 0,
                                            const QueryOptions& options = {});

std::vector<LatencyStatsRow> latency_stats(const ColumnStoreReader& store,
                                           const QueryOptions& options = {});

std::vector<DefeatRow> defeat_matrix(const ColumnStoreReader& store,
                                     const QueryOptions& options = {});

// Everything at once (the `report` subcommand / daemon aggregate payload).
struct AnalysisReport {
  std::string kind;
  u64 rows = 0;
  u64 config_hash = 0;
  u64 interval = 0;
  std::vector<faultinject::ModelBreakdownRow> outcomes;
  std::vector<StructureAvfRow> avf;
  std::vector<SiteVulnRow> by_pc;      // vm with root-cause columns only
  std::vector<SiteVulnRow> by_opcode;  // vm with root-cause columns only
  std::vector<LatencyStatsRow> latencies;
  std::vector<DefeatRow> defeats;
};

AnalysisReport analyze(const ColumnStoreReader& store,
                       const QueryOptions& options = {});

}  // namespace restore::analytics
