#include "analytics/column_store.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>

#include "common/flatjson.hpp"
#include "faultinject/campaign_io.hpp"

namespace restore::analytics {

namespace {

[[noreturn]] void bad_store(const std::string& what) {
  throw std::runtime_error("column store: " + what);
}

void put_u64_le(std::string& out, u64 value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

u64 get_u64_le(std::string_view bytes) {
  u64 value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<u64>(static_cast<u8>(bytes[static_cast<std::size_t>(i)]))
             << (8 * i);
  }
  return value;
}

}  // namespace

std::string store_path_for(const std::string& jsonl_path) {
  return jsonl_path + ".cols";
}

// ---- footer ----

std::string write_footer(const StoreFooter& footer) {
  using flatjson::append_field;
  std::string out = "{";
  append_field(out, "store_version", footer.store_version);
  out.push_back(',');
  append_field(out, "kind", std::string_view(footer.kind));
  out.push_back(',');
  append_field(out, "config_hash", footer.config_hash);
  out.push_back(',');
  append_field(out, "seed", footer.seed);
  out.push_back(',');
  append_field(out, "shard_trials", footer.shard_trials);
  out.push_back(',');
  append_field(out, "total_shards", footer.total_shards);
  out.push_back(',');
  append_field(out, "total_trials", footer.total_trials);
  out.push_back(',');
  append_field(out, "rows", footer.rows);
  out.push_back(',');
  append_field(out, "source_schema_version", footer.source_schema_version);
  out.push_back(',');
  append_field(out, "row_group_rows", footer.row_group_rows);
  out.push_back(',');
  append_field(out, "group_rows", footer.group_rows);
  out.push_back(',');
  append_field(out, "columns", footer.columns);
  out.push_back(',');
  append_field(out, "encodings", footer.encodings);
  out.push_back(',');
  append_field(out, "offsets", footer.offsets);
  out.push_back(',');
  append_field(out, "sizes", footer.sizes);
  out.push_back(',');
  append_field(out, "data_hash", footer.data_hash);
  out.push_back('}');
  return out;
}

std::optional<StoreFooter> read_footer(const std::string& text) {
  using flatjson::find;
  using flatjson::get_string;
  using flatjson::get_uint;
  const auto obj = flatjson::parse(text);
  if (!obj) return std::nullopt;
  const auto store_version = get_uint(*obj, "store_version");
  const auto kind = get_string(*obj, "kind");
  const auto config_hash = get_uint(*obj, "config_hash");
  const auto seed = get_uint(*obj, "seed");
  const auto shard_trials = get_uint(*obj, "shard_trials");
  const auto total_shards = get_uint(*obj, "total_shards");
  const auto total_trials = get_uint(*obj, "total_trials");
  const auto rows = get_uint(*obj, "rows");
  const auto source_schema_version = get_uint(*obj, "source_schema_version");
  const auto row_group_rows = get_uint(*obj, "row_group_rows");
  const auto data_hash = get_uint(*obj, "data_hash");
  if (!store_version || !kind || !config_hash || !seed || !shard_trials ||
      !total_shards || !total_trials || !rows || !source_schema_version ||
      !row_group_rows || !data_hash) {
    return std::nullopt;
  }
  StoreFooter footer;
  footer.store_version = *store_version;
  footer.kind = *kind;
  footer.config_hash = *config_hash;
  footer.seed = *seed;
  footer.shard_trials = *shard_trials;
  footer.total_shards = *total_shards;
  footer.total_trials = *total_trials;
  footer.rows = *rows;
  footer.source_schema_version = *source_schema_version;
  footer.row_group_rows = *row_group_rows;
  footer.data_hash = *data_hash;
  const auto uints = [&](const char* key, std::vector<u64>& into) {
    const flatjson::Value* v = find(*obj, key);
    if (v == nullptr || v->kind != flatjson::Value::Kind::kUintArray) return false;
    into = v->array;
    return true;
  };
  const auto strings = [&](const char* key, std::vector<std::string>& into) {
    const flatjson::Value* v = find(*obj, key);
    if (v == nullptr) return false;
    // An empty array parses as kUintArray; accept it as an empty string list.
    if (v->kind == flatjson::Value::Kind::kUintArray && v->array.empty()) {
      into.clear();
      return true;
    }
    if (v->kind != flatjson::Value::Kind::kStringArray) return false;
    into = v->str_array;
    return true;
  };
  if (!uints("group_rows", footer.group_rows)) return std::nullopt;
  if (!strings("columns", footer.columns)) return std::nullopt;
  if (!strings("encodings", footer.encodings)) return std::nullopt;
  if (!uints("offsets", footer.offsets)) return std::nullopt;
  if (!uints("sizes", footer.sizes)) return std::nullopt;
  return footer;
}

// ---- segment encodings ----

void put_varint(std::string& out, u64 value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::optional<u64> get_varint(std::string_view bytes, std::size_t& pos) {
  u64 value = 0;
  int shift = 0;
  while (pos < bytes.size()) {
    const u8 byte = static_cast<u8>(bytes[pos++]);
    if (shift >= 63 && byte > 1) return std::nullopt;  // u64 overflow
    value |= static_cast<u64>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // truncated
}

namespace {

u64 need_varint(std::string_view bytes, std::size_t& pos) {
  const auto v = get_varint(bytes, pos);
  if (!v) bad_store("truncated or malformed varint in segment");
  return *v;
}

}  // namespace

std::string encode_u64_column(const std::vector<u64>& values) {
  std::string out;
  for (const u64 v : values) put_varint(out, v);
  return out;
}

std::vector<u64> decode_u64_column(std::string_view bytes, u64 rows) {
  std::vector<u64> values;
  values.reserve(rows);
  std::size_t pos = 0;
  for (u64 i = 0; i < rows; ++i) values.push_back(need_varint(bytes, pos));
  if (pos != bytes.size()) bad_store("trailing bytes in varint segment");
  return values;
}

std::string encode_dict_column(const std::vector<std::string>& values) {
  // First-appearance order keeps the bytes deterministic in row order.
  std::vector<std::string_view> dict;
  std::map<std::string_view, u64> index_of;
  std::vector<u64> indices;
  indices.reserve(values.size());
  for (const std::string& value : values) {
    auto [it, inserted] = index_of.try_emplace(value, dict.size());
    if (inserted) dict.push_back(value);
    indices.push_back(it->second);
  }
  std::string out;
  put_varint(out, dict.size());
  for (const std::string_view entry : dict) {
    put_varint(out, entry.size());
    out.append(entry);
  }
  for (const u64 index : indices) put_varint(out, index);
  return out;
}

std::vector<std::string> decode_dict_column(std::string_view bytes, u64 rows) {
  std::size_t pos = 0;
  const u64 dict_size = need_varint(bytes, pos);
  std::vector<std::string> dict;
  dict.reserve(dict_size);
  for (u64 i = 0; i < dict_size; ++i) {
    const u64 len = need_varint(bytes, pos);
    if (pos + len > bytes.size()) bad_store("truncated dict entry");
    dict.emplace_back(bytes.substr(pos, len));
    pos += len;
  }
  std::vector<std::string> values;
  values.reserve(rows);
  for (u64 i = 0; i < rows; ++i) {
    const u64 index = need_varint(bytes, pos);
    if (index >= dict.size()) bad_store("dict index out of range");
    values.push_back(dict[index]);
  }
  if (pos != bytes.size()) bad_store("trailing bytes in dict segment");
  return values;
}

std::string encode_bool_column(const std::vector<bool>& values) {
  std::string out((values.size() + 7) / 8, '\0');
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i]) out[i / 8] = static_cast<char>(out[i / 8] | (1 << (i % 8)));
  }
  return out;
}

std::vector<bool> decode_bool_column(std::string_view bytes, u64 rows) {
  if (bytes.size() != (rows + 7) / 8) bad_store("bitmap segment size mismatch");
  std::vector<bool> values(rows);
  for (u64 i = 0; i < rows; ++i) {
    values[i] = (static_cast<u8>(bytes[i / 8]) >> (i % 8)) & 1;
  }
  return values;
}

std::string encode_list_column(const std::vector<std::vector<u64>>& values) {
  std::string out;
  for (const auto& list : values) {
    put_varint(out, list.size());
    for (const u64 v : list) put_varint(out, v);
  }
  return out;
}

std::vector<std::vector<u64>> decode_list_column(std::string_view bytes, u64 rows) {
  std::vector<std::vector<u64>> values;
  values.reserve(rows);
  std::size_t pos = 0;
  for (u64 i = 0; i < rows; ++i) {
    const u64 count = need_varint(bytes, pos);
    std::vector<u64> list;
    list.reserve(count);
    for (u64 j = 0; j < count; ++j) list.push_back(need_varint(bytes, pos));
    values.push_back(std::move(list));
  }
  if (pos != bytes.size()) bad_store("trailing bytes in list segment");
  return values;
}

// ---- writer ----

ColumnStoreWriter::ColumnStoreWriter(StoreFooter footer)
    : footer_(std::move(footer)) {
  if (footer_.columns.size() != footer_.encodings.size()) {
    bad_store("columns/encodings directory mismatch");
  }
  footer_.group_rows.clear();
  footer_.offsets.clear();
  footer_.sizes.clear();
  footer_.rows = 0;
}

void ColumnStoreWriter::add_group(u64 rows, std::vector<std::string> segments) {
  if (finished_) bad_store("add_group after finish");
  if (segments.size() != footer_.columns.size()) {
    bad_store("group segment count does not match the column directory");
  }
  footer_.group_rows.push_back(rows);
  footer_.rows += rows;
  for (auto& segment : segments) segments_.push_back(std::move(segment));
}

std::string ColumnStoreWriter::finish() {
  finished_ = true;
  u64 offset = kHeadMagic.size();
  u64 hash = 0xcbf29ce484222325ULL;
  footer_.offsets.reserve(segments_.size());
  footer_.sizes.reserve(segments_.size());
  for (const std::string& segment : segments_) {
    footer_.offsets.push_back(offset);
    footer_.sizes.push_back(segment.size());
    offset += segment.size();
    hash = faultinject::fnv1a(segment, hash);
  }
  footer_.data_hash = hash;

  std::string out;
  out.reserve(offset + 1024);
  out.append(kHeadMagic);
  for (const std::string& segment : segments_) out.append(segment);
  const std::string footer_text = write_footer(footer_);
  out.append(footer_text);
  put_u64_le(out, footer_text.size());
  out.append(kTailMagic);
  return out;
}

void ColumnStoreWriter::write(const std::string& path) {
  const std::string image = finish();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) bad_store("cannot open " + tmp + " for writing");
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) bad_store("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    bad_store("cannot rename " + tmp + " to " + path);
  }
}

// ---- reader ----

ColumnStoreReader::ColumnStoreReader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad_store("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  data_ = std::move(data);
  const std::size_t min_size = kHeadMagic.size() + 8 + kTailMagic.size();
  if (data_.size() < min_size) bad_store(path + " is truncated");
  if (std::string_view(data_).substr(0, kHeadMagic.size()) != kHeadMagic) {
    bad_store(path + " has no column-store header");
  }
  const std::string_view tail =
      std::string_view(data_).substr(data_.size() - kTailMagic.size());
  if (tail != kTailMagic) bad_store(path + " has no column-store trailer");
  const u64 footer_size = get_u64_le(std::string_view(data_).substr(
      data_.size() - kTailMagic.size() - 8, 8));
  const std::size_t footer_end = data_.size() - kTailMagic.size() - 8;
  if (footer_size > footer_end - kHeadMagic.size()) {
    bad_store(path + " footer length is out of range");
  }
  const std::string footer_text =
      data_.substr(footer_end - footer_size, footer_size);
  const auto footer = read_footer(footer_text);
  if (!footer) bad_store(path + " footer does not parse");
  footer_ = *footer;
  if (footer_.store_version > kColumnStoreVersion) {
    bad_store(path + " was written by a future store version " +
              std::to_string(footer_.store_version));
  }
  const std::size_t segments = footer_.group_rows.size() * footer_.columns.size();
  if (footer_.offsets.size() != segments || footer_.sizes.size() != segments ||
      footer_.columns.size() != footer_.encodings.size()) {
    bad_store(path + " footer directory is inconsistent");
  }
  u64 hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < segments; ++i) {
    if (footer_.offsets[i] + footer_.sizes[i] > footer_end - footer_size) {
      bad_store(path + " segment directory points past the footer");
    }
    hash = faultinject::fnv1a(
        std::string_view(data_).substr(footer_.offsets[i], footer_.sizes[i]), hash);
  }
  if (hash != footer_.data_hash) {
    bad_store(path + " segment bytes do not match data_hash (corrupt store)");
  }
}

bool ColumnStoreReader::has_column(std::string_view name) const noexcept {
  for (const std::string& column : footer_.columns) {
    if (column == name) return true;
  }
  return false;
}

std::size_t ColumnStoreReader::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < footer_.columns.size(); ++i) {
    if (footer_.columns[i] == name) return i;
  }
  bad_store("unknown column " + std::string(name));
}

std::string_view ColumnStoreReader::segment(std::size_t group,
                                            std::size_t column) const {
  const std::size_t index = group * footer_.columns.size() + column;
  return std::string_view(data_).substr(footer_.offsets.at(index),
                                        footer_.sizes.at(index));
}

std::vector<u64> ColumnStoreReader::u64_column(std::size_t group,
                                               std::string_view name) const {
  const std::size_t column = column_index(name);
  const std::string& encoding = footer_.encodings[column];
  if (encoding != "varint" && encoding != "latency") {
    bad_store("column " + std::string(name) + " is not varint-encoded");
  }
  return decode_u64_column(segment(group, column), footer_.group_rows.at(group));
}

std::vector<std::string> ColumnStoreReader::string_column(
    std::size_t group, std::string_view name) const {
  const std::size_t column = column_index(name);
  if (footer_.encodings[column] != "dict") {
    bad_store("column " + std::string(name) + " is not dict-encoded");
  }
  return decode_dict_column(segment(group, column), footer_.group_rows.at(group));
}

std::vector<bool> ColumnStoreReader::bool_column(std::size_t group,
                                                 std::string_view name) const {
  const std::size_t column = column_index(name);
  if (footer_.encodings[column] != "bitmap") {
    bad_store("column " + std::string(name) + " is not bitmap-encoded");
  }
  return decode_bool_column(segment(group, column), footer_.group_rows.at(group));
}

std::vector<std::vector<u64>> ColumnStoreReader::list_column(
    std::size_t group, std::string_view name) const {
  const std::size_t column = column_index(name);
  if (footer_.encodings[column] != "list") {
    bad_store("column " + std::string(name) + " is not list-encoded");
  }
  return decode_list_column(segment(group, column), footer_.group_rows.at(group));
}

}  // namespace restore::analytics
