#include "analytics/report.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/flatjson.hpp"
#include "common/table.hpp"

namespace restore::analytics {

namespace {

std::string fmt_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

}  // namespace

JsonBuilder& JsonBuilder::field(std::string_view key, u64 value) {
  if (!body_.empty()) body_.push_back(',');
  flatjson::append_field(body_, key, value);
  return *this;
}

JsonBuilder& JsonBuilder::field(std::string_view key, bool value) {
  if (!body_.empty()) body_.push_back(',');
  flatjson::append_field(body_, key, value);
  return *this;
}

JsonBuilder& JsonBuilder::field(std::string_view key, std::string_view value) {
  if (!body_.empty()) body_.push_back(',');
  flatjson::append_field(body_, key, value);
  return *this;
}

JsonBuilder& JsonBuilder::field_f(std::string_view key, double value) {
  if (!body_.empty()) body_.push_back(',');
  flatjson::append_string(body_, key);
  body_.push_back(':');
  body_ += fmt_double(value);
  return *this;
}

JsonBuilder& JsonBuilder::raw(std::string_view key, std::string_view rendered_json) {
  if (!body_.empty()) body_.push_back(',');
  flatjson::append_string(body_, key);
  body_.push_back(':');
  body_.append(rendered_json);
  return *this;
}

std::string JsonBuilder::str() const { return "{" + body_ + "}"; }

std::string json_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(items[i]);
  }
  out.push_back(']');
  return out;
}

std::string breakdown_json(const std::vector<faultinject::ModelBreakdownRow>& rows) {
  std::vector<std::string> items;
  items.reserve(rows.size());
  for (const auto& row : rows) {
    items.push_back(JsonBuilder()
                        .field("model", std::string_view(row.model))
                        .field("outcome", std::string_view(row.outcome))
                        .field("count", row.count)
                        .str());
  }
  return json_array(items);
}

std::string avf_json(const std::vector<StructureAvfRow>& rows) {
  std::vector<std::string> items;
  items.reserve(rows.size());
  for (const auto& row : rows) {
    items.push_back(JsonBuilder()
                        .field("structure", std::string_view(row.structure))
                        .field("trials", row.trials)
                        .field("failures", row.failures)
                        .field_f("avf", row.avf.estimate)
                        .field_f("lo", row.avf.lo)
                        .field_f("hi", row.avf.hi)
                        .str());
  }
  return json_array(items);
}

std::string sites_json(const std::vector<SiteVulnRow>& rows) {
  std::vector<std::string> items;
  items.reserve(rows.size());
  for (const auto& row : rows) {
    items.push_back(JsonBuilder()
                        .field("site", std::string_view(row.site))
                        .field("trials", row.trials)
                        .field("failures", row.failures)
                        .field_f("avf", row.avf.estimate)
                        .field_f("lo", row.avf.lo)
                        .field_f("hi", row.avf.hi)
                        .str());
  }
  return json_array(items);
}

std::string latency_json(const std::vector<LatencyStatsRow>& rows) {
  std::vector<std::string> items;
  items.reserve(rows.size());
  for (const auto& row : rows) {
    JsonBuilder builder;
    builder.field("detector", std::string_view(row.detector))
        .field("fired", row.fired)
        .field("total", row.total)
        .field("p50", row.p50)
        .field("p90", row.p90)
        .field("p99", row.p99);
    std::string bins;
    flatjson::append_field(bins, "bins", row.bin_counts);
    // append_field renders `"bins":[...]`; keep just the value.
    builder.raw("bins", std::string_view(bins).substr(bins.find(':') + 1));
    items.push_back(builder.str());
  }
  return json_array(items);
}

std::string defeat_json(const std::vector<DefeatRow>& rows) {
  std::vector<std::string> items;
  items.reserve(rows.size());
  for (const auto& row : rows) {
    items.push_back(JsonBuilder()
                        .field("workload", std::string_view(row.workload))
                        .field("detector", std::string_view(row.detector))
                        .field("failures", row.failures)
                        .field("defeated", row.defeated)
                        .str());
  }
  return json_array(items);
}

std::string report_json(const AnalysisReport& report) {
  char hash[24];
  std::snprintf(hash, sizeof hash, "%016" PRIx64, report.config_hash);
  JsonBuilder builder;
  builder.field("kind", std::string_view(report.kind))
      .field("rows", report.rows)
      .field("config_hash", std::string_view(hash))
      .field("interval", report.interval)
      .raw("outcomes", breakdown_json(report.outcomes))
      .raw("avf", avf_json(report.avf));
  if (!report.by_pc.empty()) builder.raw("by_pc", sites_json(report.by_pc));
  if (!report.by_opcode.empty()) {
    builder.raw("by_opcode", sites_json(report.by_opcode));
  }
  builder.raw("latency", latency_json(report.latencies))
      .raw("defeat", defeat_json(report.defeats));
  return builder.str();
}

std::string report_text(const AnalysisReport& report) {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof line,
                "analysis: kind=%s rows=%llu config_hash=%016" PRIx64
                " interval=%llu\n",
                report.kind.c_str(),
                static_cast<unsigned long long>(report.rows), report.config_hash,
                static_cast<unsigned long long>(report.interval));
  out += line;

  out += "outcomes:\n";
  {
    TextTable table({"model", "outcome", "count"});
    for (const auto& row : report.outcomes) {
      table.add_row({row.model, row.outcome, TextTable::fmt_u(row.count)});
    }
    out += table.render();
  }

  out += report.kind == "vm" ? "AVF per workload:\n" : "AVF per structure:\n";
  {
    TextTable table({"structure", "trials", "failures", "avf", "ci95"});
    for (const auto& row : report.avf) {
      table.add_row({row.structure, TextTable::fmt_u(row.trials),
                     TextTable::fmt_u(row.failures),
                     TextTable::fmt_pct(row.avf.estimate),
                     TextTable::fmt_pct(row.avf.lo) + ".." +
                         TextTable::fmt_pct(row.avf.hi)});
    }
    out += table.render();
  }

  if (!report.by_pc.empty()) {
    out += "most vulnerable injection sites (by pc):\n";
    TextTable table({"pc", "trials", "failures", "avf"});
    for (const auto& row : report.by_pc) {
      table.add_row({row.site, TextTable::fmt_u(row.trials),
                     TextTable::fmt_u(row.failures),
                     TextTable::fmt_pct(row.avf.estimate)});
    }
    out += table.render();
  }
  if (!report.by_opcode.empty()) {
    out += "vulnerability by opcode:\n";
    TextTable table({"opcode", "trials", "failures", "avf"});
    for (const auto& row : report.by_opcode) {
      table.add_row({row.site, TextTable::fmt_u(row.trials),
                     TextTable::fmt_u(row.failures),
                     TextTable::fmt_pct(row.avf.estimate)});
    }
    out += table.render();
  }

  out += "symptom latency (retired instructions to first symptom):\n";
  {
    TextTable table({"detector", "fired", "total", "p50", "p90", "p99"});
    for (const auto& row : report.latencies) {
      table.add_row({row.detector, TextTable::fmt_u(row.fired),
                     TextTable::fmt_u(row.total), TextTable::fmt_u(row.p50),
                     TextTable::fmt_u(row.p90), TextTable::fmt_u(row.p99)});
    }
    out += table.render();
  }

  out += "workload x detector defeat matrix (failures the detector never saw):\n";
  {
    TextTable table({"workload", "detector", "failures", "defeated"});
    for (const auto& row : report.defeats) {
      table.add_row({row.workload, row.detector, TextTable::fmt_u(row.failures),
                     TextTable::fmt_u(row.defeated)});
    }
    out += table.render();
  }
  return out;
}

}  // namespace restore::analytics
