#include "analytics/queries.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "analytics/compact.hpp"
#include "common/thread_pool.hpp"
#include "faultinject/classify.hpp"
#include "faultinject/outcome.hpp"

namespace restore::analytics {

namespace {

using faultinject::ModelBreakdownRow;

// Run `body(group)` for every row group (optionally in parallel) and collect
// the per-group partial results in group order, so any merge downstream sees
// a thread-count-independent sequence. Worker exceptions are latched and
// rethrown on the calling thread (ThreadPool tasks must not throw).
template <class Partial, class Body>
std::vector<Partial> per_group(const ColumnStoreReader& store,
                               std::size_t threads, const Body& body) {
  const std::size_t groups = store.group_count();
  std::vector<Partial> partials(groups);
  std::vector<std::string> errors(groups);
  ThreadPool pool(threads);
  pool.parallel_for(groups, [&](std::size_t g) {
    try {
      partials[g] = body(g);
    } catch (const std::exception& e) {
      errors[g] = e.what();
    }
  });
  for (const std::string& error : errors) {
    if (!error.empty()) throw std::runtime_error(error);
  }
  return partials;
}

using CountMap = std::map<std::pair<std::string, std::string>, u64>;

std::vector<ModelBreakdownRow> flatten_counts(const CountMap& counts) {
  std::vector<ModelBreakdownRow> rows;
  rows.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    rows.push_back({key.first, key.second, count});
  }
  return rows;
}

struct AvfPartial {
  std::map<std::string, std::pair<u64, u64>> per_structure;  // trials, failures
};

std::vector<StructureAvfRow> flatten_avf(const std::vector<AvfPartial>& partials) {
  std::map<std::string, std::pair<u64, u64>> merged;
  for (const auto& partial : partials) {
    for (const auto& [structure, tf] : partial.per_structure) {
      auto& slot = merged[structure];
      slot.first += tf.first;
      slot.second += tf.second;
    }
  }
  std::vector<StructureAvfRow> rows;
  rows.reserve(merged.size());
  for (const auto& [structure, tf] : merged) {
    StructureAvfRow row;
    row.structure = structure;
    row.trials = tf.first;
    row.failures = tf.second;
    row.avf = wilson_interval(tf.second, tf.first);
    rows.push_back(std::move(row));
  }
  return rows;
}

// vm outcome-token predicates (Table 1: everything except masked fails;
// contained aborts are tool artifacts, not failures).
bool vm_contained_impl(const std::string& outcome) {
  return outcome == "sim-abort" || outcome == "resource-exhausted";
}

bool vm_failure(const std::string& outcome) {
  return outcome != "masked" && !vm_contained_impl(outcome);
}

}  // namespace

std::vector<ModelBreakdownRow> outcome_counts(const ColumnStoreReader& store,
                                              const QueryOptions& options) {
  const bool vm = store.footer().kind == "vm";
  const auto partials = per_group<CountMap>(
      store, options.threads, [&](std::size_t g) {
        CountMap counts;
        if (vm) {
          const auto model = store.string_column(g, "model");
          const auto outcome = store.string_column(g, "outcome");
          for (std::size_t i = 0; i < outcome.size(); ++i) {
            const std::string& m = model[i].empty() ? "single" : model[i];
            ++counts[{m, outcome[i]}];
          }
        } else {
          for (const auto& record : reconstruct_uarch_group(store, g)) {
            const auto& trial = record.trial;
            const std::string model = trial.model.empty() ? "single" : trial.model;
            const auto outcome = faultinject::classify_trial(
                trial, faultinject::DetectorModel::kPerfectCfv,
                faultinject::ProtectionModel::kBaseline, options.interval);
            ++counts[{model, std::string(to_string(outcome))}];
          }
        }
        return counts;
      });
  CountMap merged;
  for (const auto& partial : partials) {
    for (const auto& [key, count] : partial) merged[key] += count;
  }
  return flatten_counts(merged);
}

std::vector<StructureAvfRow> structure_avf(const ColumnStoreReader& store,
                                           const QueryOptions& options) {
  const bool vm = store.footer().kind == "vm";
  const auto partials = per_group<AvfPartial>(
      store, options.threads, [&](std::size_t g) {
        AvfPartial partial;
        if (vm) {
          const auto workload = store.string_column(g, "workload");
          const auto outcome = store.string_column(g, "outcome");
          for (std::size_t i = 0; i < outcome.size(); ++i) {
            if (vm_contained_impl(outcome[i])) continue;
            auto& slot = partial.per_structure[workload[i]];
            ++slot.first;
            if (vm_failure(outcome[i])) ++slot.second;
          }
        } else {
          for (const auto& record : reconstruct_uarch_group(store, g)) {
            const auto outcome = faultinject::classify_trial(
                record.trial, faultinject::DetectorModel::kPerfectCfv,
                faultinject::ProtectionModel::kBaseline, options.interval);
            if (is_contained_abort(outcome)) continue;
            auto& slot = partial.per_structure[record.trial.field_name];
            ++slot.first;
            if (is_failure(outcome)) ++slot.second;
          }
        }
        return partial;
      });
  return flatten_avf(partials);
}

std::vector<SiteVulnRow> site_vulnerability(const ColumnStoreReader& store,
                                            bool by_opcode, std::size_t top_n,
                                            const QueryOptions& options) {
  if (store.footer().kind != "vm" || !store.has_column("pc")) {
    throw std::runtime_error(
        "site_vulnerability needs a vm store with derived root-cause columns");
  }
  const auto partials = per_group<AvfPartial>(
      store, options.threads, [&](std::size_t g) {
        AvfPartial partial;
        const auto outcome = store.string_column(g, "outcome");
        std::vector<std::string> site(outcome.size());
        if (by_opcode) {
          site = store.string_column(g, "opcode");
        } else {
          const auto pc = store.u64_column(g, "pc");
          for (std::size_t i = 0; i < pc.size(); ++i) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "0x%08" PRIx64, pc[i]);
            site[i] = buf;
          }
        }
        for (std::size_t i = 0; i < outcome.size(); ++i) {
          if (vm_contained_impl(outcome[i])) continue;
          auto& slot = partial.per_structure[site[i]];
          ++slot.first;
          if (vm_failure(outcome[i])) ++slot.second;
        }
        return partial;
      });
  std::vector<SiteVulnRow> rows;
  for (const auto& avf_row : flatten_avf(partials)) {
    SiteVulnRow row;
    row.site = avf_row.structure;
    row.trials = avf_row.trials;
    row.failures = avf_row.failures;
    row.avf = avf_row.avf;
    rows.push_back(std::move(row));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const SiteVulnRow& a, const SiteVulnRow& b) {
                     if (a.failures != b.failures) return a.failures > b.failures;
                     return a.site < b.site;
                   });
  if (top_n > 0 && rows.size() > top_n) rows.resize(top_n);
  return rows;
}

namespace {

// (detector name, fired latencies, total) per group; vm uses the outcome
// categories as channels, uarch the six symptom channels.
struct LatencyPartial {
  std::map<std::string, std::vector<u64>> fired;
  std::map<std::string, u64> total;
};

}  // namespace

std::vector<LatencyStatsRow> latency_stats(const ColumnStoreReader& store,
                                           const QueryOptions& options) {
  const bool vm = store.footer().kind == "vm";
  static constexpr std::string_view kUarchChannels[] = {
      "lat_exception", "lat_cfv",          "lat_hiconf",
      "lat_deadlock",  "lat_illegal_flow", "lat_cache_burst"};
  const auto partials = per_group<LatencyPartial>(
      store, options.threads, [&](std::size_t g) {
        LatencyPartial partial;
        if (vm) {
          const auto outcome = store.string_column(g, "outcome");
          const auto latency = store.u64_column(g, "latency");
          for (std::size_t i = 0; i < outcome.size(); ++i) {
            if (vm_contained_impl(outcome[i]) || outcome[i] == "masked") continue;
            ++partial.total[outcome[i]];
            const u64 lat = decode_latency_value(latency[i]);
            if (lat != kNever) partial.fired[outcome[i]].push_back(lat);
          }
        } else {
          const u64 rows = store.group_rows(g);
          for (const std::string_view channel : kUarchChannels) {
            const auto coded = store.u64_column(g, channel);
            auto& fired = partial.fired[std::string(channel)];
            partial.total[std::string(channel)] += rows;
            for (u64 i = 0; i < rows; ++i) {
              const u64 lat = decode_latency_value(coded[i]);
              if (lat != kNever) fired.push_back(lat);
            }
          }
        }
        return partial;
      });
  // Merge in group order; sorting afterwards is order-insensitive anyway.
  std::map<std::string, std::vector<u64>> fired;
  std::map<std::string, u64> total;
  for (const auto& partial : partials) {
    for (const auto& [channel, lats] : partial.fired) {
      auto& into = fired[channel];
      into.insert(into.end(), lats.begin(), lats.end());
    }
    for (const auto& [channel, count] : partial.total) total[channel] += count;
  }
  const std::vector<u64> edges = figure2_latency_bins();
  std::vector<LatencyStatsRow> rows;
  for (auto& [channel, lats] : fired) {
    LatencyStatsRow row;
    row.detector = channel;
    row.total = total[channel];
    row.fired = lats.size();
    std::sort(lats.begin(), lats.end());
    row.bin_counts.assign(edges.size(), 0);
    for (const u64 lat : lats) {
      for (std::size_t b = 0; b < edges.size(); ++b) {
        if (lat <= edges[b]) {
          ++row.bin_counts[b];
          break;
        }
      }
    }
    const auto rank = [&](double q) -> u64 {
      if (lats.empty()) return 0;
      const std::size_t n = lats.size();
      std::size_t index = static_cast<std::size_t>(q * static_cast<double>(n));
      if (index > 0) --index;
      if (index >= n) index = n - 1;
      return lats[index];
    };
    row.p50 = rank(0.50);
    row.p90 = rank(0.90);
    row.p99 = rank(0.99);
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

struct DefeatPartial {
  // (workload, detector) -> (failures, defeated)
  std::map<std::pair<std::string, std::string>, std::pair<u64, u64>> cells;
};

}  // namespace

std::vector<DefeatRow> defeat_matrix(const ColumnStoreReader& store,
                                     const QueryOptions& options) {
  const bool vm = store.footer().kind == "vm";
  const auto partials = per_group<DefeatPartial>(
      store, options.threads, [&](std::size_t g) {
        DefeatPartial partial;
        if (vm) {
          const auto workload = store.string_column(g, "workload");
          const auto outcome = store.string_column(g, "outcome");
          const auto latency = store.u64_column(g, "latency");
          for (std::size_t i = 0; i < outcome.size(); ++i) {
            if (!vm_failure(outcome[i])) continue;
            auto& cell = partial.cells[{workload[i], outcome[i]}];
            ++cell.first;
            if (decode_latency_value(latency[i]) == kNever) ++cell.second;
          }
        } else {
          static constexpr std::pair<std::string_view, u64 faultinject::UarchTrialRecord::*>
              kChannels[] = {
                  {"exception", &faultinject::UarchTrialRecord::lat_exception},
                  {"cfv", &faultinject::UarchTrialRecord::lat_cfv},
                  {"hiconf", &faultinject::UarchTrialRecord::lat_hiconf},
                  {"deadlock", &faultinject::UarchTrialRecord::lat_deadlock},
                  {"illegal-flow", &faultinject::UarchTrialRecord::lat_illegal_flow},
                  {"cache-burst", &faultinject::UarchTrialRecord::lat_cache_burst}};
          for (const auto& record : reconstruct_uarch_group(store, g)) {
            const auto& trial = record.trial;
            const auto outcome = faultinject::classify_trial(
                trial, faultinject::DetectorModel::kPerfectCfv,
                faultinject::ProtectionModel::kBaseline, options.interval);
            if (!is_failure(outcome)) continue;
            for (const auto& [name, member] : kChannels) {
              auto& cell = partial.cells[{trial.workload, std::string(name)}];
              ++cell.first;
              if (trial.*member == kNever) ++cell.second;
            }
          }
        }
        return partial;
      });
  std::map<std::pair<std::string, std::string>, std::pair<u64, u64>> merged;
  for (const auto& partial : partials) {
    for (const auto& [key, cell] : partial.cells) {
      auto& into = merged[key];
      into.first += cell.first;
      into.second += cell.second;
    }
  }
  std::vector<DefeatRow> rows;
  rows.reserve(merged.size());
  for (const auto& [key, cell] : merged) {
    rows.push_back({key.first, key.second, cell.first, cell.second});
  }
  return rows;
}

AnalysisReport analyze(const ColumnStoreReader& store,
                       const QueryOptions& options) {
  AnalysisReport report;
  report.kind = store.footer().kind;
  report.rows = store.footer().rows;
  report.config_hash = store.footer().config_hash;
  report.interval = options.interval;
  report.outcomes = outcome_counts(store, options);
  report.avf = structure_avf(store, options);
  if (report.kind == "vm" && store.has_column("pc")) {
    report.by_pc = site_vulnerability(store, /*by_opcode=*/false, 20, options);
    report.by_opcode = site_vulnerability(store, /*by_opcode=*/true, 0, options);
  }
  report.latencies = latency_stats(store, options);
  report.defeats = defeat_matrix(store, options);
  return report;
}

}  // namespace restore::analytics
