// Report rendering shared by restore-analyze and campaign_status: a small
// deterministic JSON builder (nested objects/arrays over the same escaping
// rules as common/flatjson) plus renderers for the query engine's aggregate
// rows as text tables or JSON documents.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analytics/queries.hpp"
#include "faultinject/export.hpp"

namespace restore::analytics {

// Builds one JSON object field-by-field; values added in call order. Nested
// values (arrays of objects) are passed pre-rendered via raw(). Doubles
// render with %.10g, so equal inputs render to equal bytes.
class JsonBuilder {
 public:
  JsonBuilder& field(std::string_view key, u64 value);
  JsonBuilder& field(std::string_view key, bool value);
  JsonBuilder& field(std::string_view key, std::string_view value);
  JsonBuilder& field_f(std::string_view key, double value);
  JsonBuilder& raw(std::string_view key, std::string_view rendered_json);
  std::string str() const;  // "{...}"

 private:
  std::string body_;
};

// "[item,item,...]" over pre-rendered JSON items.
std::string json_array(const std::vector<std::string>& items);

// ---- aggregate-row renderers ----

// One row per (model, outcome): {"model":...,"outcome":...,"count":N}. The
// same rows campaign_status prints as its breakdown table — both tools emit
// this array so scripts can diff them directly.
std::string breakdown_json(const std::vector<faultinject::ModelBreakdownRow>& rows);

std::string avf_json(const std::vector<StructureAvfRow>& rows);
std::string sites_json(const std::vector<SiteVulnRow>& rows);
std::string latency_json(const std::vector<LatencyStatsRow>& rows);
std::string defeat_json(const std::vector<DefeatRow>& rows);
std::string report_json(const AnalysisReport& report);

// Human-readable rendering of the full report (TextTable sections).
std::string report_text(const AnalysisReport& report);

}  // namespace restore::analytics
