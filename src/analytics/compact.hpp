// Trace compaction: JSONL trial trace + sidecar manifest -> columnar store
// (column_store.hpp), and exact reconstruction back.
//
// Compaction parses trial lines in parallel (the only data-parallel stage),
// then encodes columns sequentially in the trace's line order, so the output
// bytes are identical at any thread count. For vm traces it also derives the
// root-cause columns — the pc and opcode mnemonic of the corrupted
// instruction — by replaying each workload's golden run once and indexing it
// with `inject_index`; derived columns are analysis products and take no part
// in the round trip.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analytics/column_store.hpp"
#include "faultinject/campaign_io.hpp"

namespace restore::analytics {

struct CompactOptions {
  std::size_t threads = 0;  // JSONL parse parallelism; 0 = inline
  // Derive vm root-cause pc/opcode columns via one golden replay per
  // workload. Off saves the replays when only outcome/latency queries are
  // needed (the columns are then absent from the store).
  bool derive_root_cause = true;
};

struct CompactResult {
  u64 rows = 0;
  u64 jsonl_bytes = 0;  // source trace size
  u64 store_bytes = 0;  // compacted size
};

// Compact `jsonl_path` (manifest required at manifest_path_for(jsonl_path))
// into `store_path`, atomically. Throws std::runtime_error on a missing or
// malformed trace/manifest.
CompactResult compact_trace(const std::string& jsonl_path,
                            const std::string& store_path,
                            const CompactOptions& options = {});

// Reconstruct the typed records of one row group, in stored (source line)
// order — the query engine's unit of streaming.
std::vector<faultinject::ParsedVmTrial> reconstruct_vm_group(
    const ColumnStoreReader& store, std::size_t group);
std::vector<faultinject::ParsedUarchTrial> reconstruct_uarch_group(
    const ColumnStoreReader& store, std::size_t group);

// Reconstruct the typed records of the whole store.
std::vector<faultinject::ParsedVmTrial> reconstruct_vm_trials(
    const ColumnStoreReader& store);
std::vector<faultinject::ParsedUarchTrial> reconstruct_uarch_trials(
    const ColumnStoreReader& store);

// Reconstruct the canonical trace bytes: the v2 header line (when the source
// had one) followed by every trial line, exactly as campaign_io serializes
// them — byte-identical to the complete source trace.
std::string reconstruct_trace_jsonl(const ColumnStoreReader& store);

}  // namespace restore::analytics
