#include "uarch/predictors.hpp"

namespace restore::uarch {

namespace {

u8 bump(u8 counter, bool up, u8 max = 3) noexcept {
  if (up) return counter < max ? static_cast<u8>(counter + 1) : counter;
  return counter > 0 ? static_cast<u8>(counter - 1) : counter;
}

}  // namespace

BranchPredictor::BranchPredictor() noexcept {
  bimodal_.fill(2);  // weakly taken
  gshare_.fill(2);
  chooser_.fill(2);  // weakly prefer gshare
}

u32 BranchPredictor::bimodal_index(u64 pc) noexcept {
  return (pc >> 2) & (kTableSize - 1);
}

u32 BranchPredictor::gshare_index(u64 pc, u16 ghist) noexcept {
  return ((pc >> 2) ^ ghist) & (kTableSize - 1);
}

bool BranchPredictor::predict(u64 pc, u16 ghist) const noexcept {
  const bool bim = bimodal_[bimodal_index(pc)] >= 2;
  const bool gsh = gshare_[gshare_index(pc, ghist)] >= 2;
  const bool use_gshare = chooser_[bimodal_index(pc)] >= 2;
  return use_gshare ? gsh : bim;
}

void BranchPredictor::update(u64 pc, u16 ghist, bool taken) noexcept {
  const u32 bi = bimodal_index(pc);
  const u32 gi = gshare_index(pc, ghist);
  const bool bim_correct = (bimodal_[bi] >= 2) == taken;
  const bool gsh_correct = (gshare_[gi] >= 2) == taken;
  if (bim_correct != gsh_correct) {
    chooser_[bi] = bump(chooser_[bi], gsh_correct);
  }
  bimodal_[bi] = bump(bimodal_[bi], taken);
  gshare_[gi] = bump(gshare_[gi], taken);
}

std::optional<u64> Btb::lookup(u64 pc) const noexcept {
  const Entry& e = entries_[index(pc)];
  if (e.valid && e.tag == tag(pc)) return e.target;
  return std::nullopt;
}

void Btb::update(u64 pc, u64 target) noexcept {
  entries_[index(pc)] = Entry{true, tag(pc), target};
}

void ReturnAddressStack::push(u64 address) noexcept {
  stack_[top_] = address;
  top_ = static_cast<u8>((top_ + 1) % kDepth);
  if (depth_ < kDepth) ++depth_;
}

u64 ReturnAddressStack::pop() noexcept {
  if (depth_ == 0) return 0;
  top_ = static_cast<u8>((top_ + kDepth - 1) % kDepth);
  --depth_;
  return stack_[top_];
}

u32 JrsConfidence::index(u64 pc, u16 ghist) noexcept {
  return ((pc >> 2) ^ (static_cast<u32>(ghist) << 2)) & (kTableSize - 1);
}

bool JrsConfidence::high_confidence(u64 pc, u16 ghist, unsigned threshold) const noexcept {
  return counters_[index(pc, ghist)] >= threshold;
}

void JrsConfidence::update(u64 pc, u16 ghist, bool prediction_correct,
                           unsigned counter_max) noexcept {
  u8& counter = counters_[index(pc, ghist)];
  if (prediction_correct) {
    if (counter < counter_max) ++counter;
  } else {
    counter = 0;  // resetting counter
  }
}

}  // namespace restore::uarch
