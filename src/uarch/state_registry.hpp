// Enumeration of every injectable state bit in the core.
//
// The paper's fault model is "a single bit flip of a state element" with the
// bit "selected randomly across all of the eligible state of the processor",
// excluding caches and predictor tables (§4.2). The registry provides exactly
// that surface: each field carries its storage class (pipeline latch vs SRAM
// array — §5.1.2 injects latches only), the protection the §5.2.2
// "low-hanging-fruit" pipeline would give it (parity on control-word latches,
// ECC on the register file and other key data stores), and an entry-level
// liveness predicate used to separate the paper's `latent` and `other`
// outcome categories.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "uarch/core.hpp"

namespace restore::uarch {

enum class StorageClass : u8 {
  kLatch,  // pipeline latch / flip-flop
  kSram,   // RAM array (register file, RATs, queues)
};

// Protection assigned by the "lhf" (low-hanging-fruit) hardened pipeline of
// §5.2.2. The baseline pipeline has no protection anywhere.
enum class LhfProtection : u8 {
  kNone,    // unprotected even in the hardened pipeline (e.g. datapath values)
  kParity,  // detected -> recovered via flush/checkpoint
  kEcc,     // corrected in place
};

struct StateField {
  std::string name;
  StorageClass storage = StorageClass::kLatch;
  LhfProtection protection = LhfProtection::kNone;
  u32 entries = 1;
  u32 bits_per_entry = 1;
  // Accessors: read/write the raw (width-masked) value of one entry.
  std::function<u64(const Core&, u32)> get;
  std::function<void(Core&, u32, u64)> set;
  // Entry-level liveness: false when the entry is architecturally dead (e.g.
  // an invalid queue slot or an unmapped physical register).
  std::function<bool(const Core&, u32)> live;

  u64 total_bits() const noexcept {
    return static_cast<u64>(entries) * bits_per_entry;
  }
};

// A specific bit in the state space.
struct BitRef {
  u32 field = 0;
  u32 entry = 0;
  u32 bit = 0;
};

class StateRegistry {
 public:
  // The registry is immutable and describes the Core type, not an instance.
  static const StateRegistry& instance();

  const std::vector<StateField>& fields() const noexcept { return fields_; }
  const StateField& field(const BitRef& ref) const { return fields_[ref.field]; }

  u64 total_bits() const noexcept { return total_bits_; }
  u64 total_bits(StorageClass storage) const noexcept;

  // Map a flat bit index in [0, total_bits()) to a field/entry/bit.
  BitRef locate(u64 global_bit) const;

  // Uniformly sample an eligible bit, optionally restricted to one storage
  // class (the paper's latch-only campaign).
  BitRef sample(Rng& rng, std::optional<StorageClass> filter = std::nullopt) const;

  void flip(Core& core, const BitRef& ref) const;
  u64 read(const Core& core, const BitRef& ref) const;
  bool bit_live(const Core& core, const BitRef& ref) const;

  // Digest of all registered state (used for exact golden comparison).
  u64 hash_state(const Core& core) const;

  // Canonical manifest of the injectable state surface: one line per field
  // (name, storage class, protection, entries x bits = total) plus
  // per-storage-class subtotals and the grand total. The golden copy lives at
  // tests/golden/state_manifest.txt and is compared byte-for-byte in ctest,
  // so any change to the registered surface — which silently shifts fig4's
  // denominators and the sampler's bit ordinals — shows up as a reviewed
  // golden-file diff. See EXPERIMENTS.md for the regeneration workflow.
  std::string audit() const;

  // Names of fields whose state differs between two cores (diagnostics) and
  // a liveness-aware classification: returns {any_diff, any_live_diff}.
  struct DiffSummary {
    bool any = false;
    bool any_live = false;
  };
  DiffSummary diff(const Core& a, const Core& b) const;

 private:
  StateRegistry();
  std::vector<StateField> fields_;
  std::vector<u64> cumulative_bits_;  // prefix sums for locate()
  u64 total_bits_ = 0;
};

}  // namespace restore::uarch
