#include "uarch/caches.hpp"

namespace restore::uarch {

bool TagCache::access(u64 address) noexcept {
  const u64 line_addr = address >> line_shift_;
  const u32 index = static_cast<u32>(line_addr) & ((1u << lines_log2_) - 1);
  const u64 tag = line_addr >> lines_log2_;
  Line& line = lines_[index & (kMaxLines - 1)];
  if (line.valid && line.tag == tag) {
    ++hits_;
    return true;
  }
  ++misses_;
  line.valid = true;
  line.tag = tag;
  return false;
}

void TagCache::invalidate_all() noexcept {
  for (auto& line : lines_) line.valid = false;
}

bool Tlb::access(u64 address) noexcept {
  const u64 vpn = address >> 12;
  for (auto& entry : entries_) {
    if (entry.valid && entry.vpn == vpn) return true;
  }
  ++misses_;
  entries_[next_victim_ % kEntries] = {true, vpn};
  next_victim_ = static_cast<u8>((next_victim_ + 1) % kEntries);
  return false;
}

}  // namespace restore::uarch
