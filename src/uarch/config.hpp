// Microarchitecture parameters.
//
// The modelled core follows the paper's §4.1 description: a superscalar,
// dynamically scheduled pipeline in the Alpha 21264 / AMD Athlon class —
// 12 effective stages, up to 132 instructions in flight, a 32-entry dynamic
// scheduler issuing up to 6 instructions per cycle (3 ALU, 1 branch, 2 memory),
// a 64-entry reorder buffer, separate load/store queues, and sophisticated
// branch prediction with a JRS confidence estimator.
//
// Structure capacities are compile-time powers of two: every index field then
// has an exact bit width, so an injected bit flip always produces a
// representable (if wrong) index instead of undefined behaviour — mirroring
// real hardware, where a flipped pointer selects a different valid entry.
#pragma once

#include "common/types.hpp"

namespace restore::uarch {

// Capacities (powers of two; see file comment).
inline constexpr unsigned kNumPhysRegs = 128;   // physical register file
inline constexpr unsigned kPhysTagBits = 7;
inline constexpr unsigned kRobEntries = 64;
inline constexpr unsigned kRobIdBits = 6;
inline constexpr unsigned kSchedEntries = 32;
inline constexpr unsigned kFetchQueueEntries = 32;
inline constexpr unsigned kLdqEntries = 16;
inline constexpr unsigned kStqEntries = 16;
inline constexpr unsigned kFreeListEntries = kNumPhysRegs;

// Widths.
inline constexpr unsigned kFetchWidth = 4;
inline constexpr unsigned kDecodeWidth = 4;
inline constexpr unsigned kRenameWidth = 4;
inline constexpr unsigned kIssueWidth = 6;
inline constexpr unsigned kIssueAlu = 3;
inline constexpr unsigned kIssueBranch = 1;
inline constexpr unsigned kIssueMem = 2;
inline constexpr unsigned kRetireWidth = 4;

// In-flight execution buffer (functional units are pipelined; up to this many
// ops may be mid-execution at once).
inline constexpr unsigned kExecSlots = 16;

// Extra front-end latch stages between fetch and the fetch queue; together
// with decode, rename, schedule, regread, execute and retire this yields the
// paper's ~12-stage depth and a realistic misprediction penalty.
inline constexpr unsigned kFrontLatchStages = 2;

// Tunable timing/behaviour knobs (defaults approximate the paper's model).
struct CoreConfig {
  unsigned alu_latency = 1;
  unsigned mul_latency = 3;
  unsigned div_latency = 12;
  unsigned agen_latency = 1;        // address generation before cache access
  unsigned l1d_hit_latency = 2;     // after AGEN
  unsigned l1d_miss_latency = 14;
  unsigned l1i_miss_penalty = 10;   // fetch stall cycles on an I-cache miss
  unsigned store_forward_latency = 1;

  // Watchdog: a saturated timer (no retirement for this many cycles) signals
  // deadlock/livelock (paper §4.2).
  unsigned watchdog_cycles = 1024;

  // JRS resetting-counter confidence predictor (paper §3.2.2): a conditional
  // branch prediction is "high confidence" when its miss-distance counter is
  // saturated at or above this threshold.
  // The paper selects JRS "prioritizing performance over coverage": the
  // predictor must have been correct many consecutive times before a
  // misprediction is treated as a soft-error symptom.
  unsigned jrs_threshold = 24;
  unsigned jrs_counter_max = 31;

  // When true (the baseline machine), an exception retires architecturally
  // and stops the core. The ReStore wrapper sets this false and instead
  // consumes the exception as a symptom, rolling back to a checkpoint.
  bool trap_on_exception = true;

  // ---- extension symptoms (paper §3.3 / §5.2.1 discussion) ----

  // Ablation: treat every conditional-branch prediction as high confidence
  // ("a perfect confidence predictor would yield nearly twice the error
  // coverage", §5.2.1).
  bool all_mispredicts_high_conf = false;

  // Control-flow monitoring watchdog [Mahmood & McCluskey]: validate at
  // retirement that every control transfer is a legal successor of the
  // instruction's static encoding ("a control flow monitoring watchdog would
  // capture these events", §5.2.1). Emits SymptomEvent::Kind::kIllegalFlow.
  bool illegal_flow_watchdog = false;

  // Cache-miss-burst symptom (the paper's §3.3 candidate): fires when L1D
  // misses within `cache_burst_window` cycles reach `cache_burst_threshold`.
  bool cache_burst_symptom = false;
  unsigned cache_burst_window = 128;
  unsigned cache_burst_threshold = 6;
};

}  // namespace restore::uarch
