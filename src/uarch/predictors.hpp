// Branch direction/target prediction and the JRS confidence estimator.
//
// Direction: a McFarling-style combining predictor (bimodal + gshare +
// chooser) [McFarling'93], as "sophisticated branch prediction" per §4.1.
// Targets: a BTB for indirect jumps and an 8-entry return-address stack.
// Confidence: the JRS resetting-counter estimator [Jacobsen/Rotenberg/Smith,
// MICRO-29], selected by the paper (§3.2.2) to gate control-flow symptoms.
//
// Predictor tables are deliberately NOT part of the fault-injection state
// space: "corrupt predictor table entries cannot lead to failure" (§4.2).
#pragma once

#include <array>
#include <optional>

#include "common/types.hpp"

namespace restore::uarch {

inline constexpr unsigned kGhistBits = 12;

class BranchPredictor {
 public:
  BranchPredictor() noexcept;

  bool predict(u64 pc, u16 ghist) const noexcept;
  void update(u64 pc, u16 ghist, bool taken) noexcept;

  bool operator==(const BranchPredictor&) const noexcept = default;

 private:
  static constexpr unsigned kTableSize = 4096;
  static u32 bimodal_index(u64 pc) noexcept;
  static u32 gshare_index(u64 pc, u16 ghist) noexcept;

  // 2-bit saturating counters, initialised weakly taken.
  std::array<u8, kTableSize> bimodal_{};
  std::array<u8, kTableSize> gshare_{};
  std::array<u8, kTableSize> chooser_{};  // 0/1 -> bimodal, 2/3 -> gshare
};

class Btb {
 public:
  std::optional<u64> lookup(u64 pc) const noexcept;
  void update(u64 pc, u64 target) noexcept;

  bool operator==(const Btb&) const noexcept = default;

 private:
  static constexpr unsigned kEntries = 512;
  struct Entry {
    bool valid = false;
    u16 tag = 0;
    u64 target = 0;

    bool operator==(const Entry&) const noexcept = default;
  };
  static u32 index(u64 pc) noexcept { return (pc >> 2) & (kEntries - 1); }
  static u16 tag(u64 pc) noexcept { return static_cast<u16>(pc >> 11); }
  std::array<Entry, kEntries> entries_{};
};

class ReturnAddressStack {
 public:
  void push(u64 address) noexcept;
  u64 pop() noexcept;  // returns 0 when empty
  bool empty() const noexcept { return depth_ == 0; }

  bool operator==(const ReturnAddressStack&) const noexcept = default;

 private:
  static constexpr unsigned kDepth = 8;
  std::array<u64, kDepth> stack_{};
  u8 top_ = 0;    // index of next push slot (wraps)
  u8 depth_ = 0;  // saturates at kDepth
};

// JRS resetting-counter confidence predictor: a per-branch counter that
// increments on every correct prediction and resets to zero on a
// misprediction. A prediction is "high confidence" when the counter has
// reached the threshold — i.e. the predictor has been right many times in a
// row for this (pc, history) slot.
class JrsConfidence {
 public:
  bool high_confidence(u64 pc, u16 ghist, unsigned threshold) const noexcept;
  void update(u64 pc, u16 ghist, bool prediction_correct, unsigned counter_max) noexcept;

  bool operator==(const JrsConfidence&) const noexcept = default;

 private:
  static constexpr unsigned kTableSize = 4096;
  static u32 index(u64 pc, u16 ghist) noexcept;
  std::array<u8, kTableSize> counters_{};  // 5-bit resetting counters
};

}  // namespace restore::uarch
