#include "uarch/state_registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bits.hpp"

namespace restore::uarch {

namespace {

constexpr auto kLatch = StorageClass::kLatch;
constexpr auto kSram = StorageClass::kSram;
constexpr auto kNone = LhfProtection::kNone;
constexpr auto kParity = LhfProtection::kParity;
constexpr auto kEcc = LhfProtection::kEcc;

bool always_live(const Core&, u32) { return true; }

// ---- liveness predicates ----

bool fq_live(const Core& c, u32 entry) {
  const u32 pos = (entry + kFetchQueueEntries - (c.fq_head_ & (kFetchQueueEntries - 1))) %
                  kFetchQueueEntries;
  return pos < c.fq_count_;
}

bool dec_live(const Core& c, u32 entry) {
  const u32 pos = (entry + kDecodeWidth - (c.dec_head_ & (kDecodeWidth - 1))) %
                  kDecodeWidth;
  return pos < c.dec_count_ && c.dec_[entry].valid;
}

bool fb_live(const Core& c, u32 entry) {
  return c.fb_[entry / kFetchWidth][entry % kFetchWidth].valid;
}

bool free_ring_live(const Core& c, u32 entry) {
  // A free-list slot matters if it will be popped: it lies within
  // [head, head+count).
  const u32 pos = (entry + kFreeListEntries - (c.fl_head_ & (kFreeListEntries - 1))) %
                  kFreeListEntries;
  return pos < c.fl_count_;
}

bool prf_live(const Core& c, u32 tag) {
  // A physical register is live when some architectural register maps to it
  // (speculatively or architecturally) or an in-flight producer targets it.
  for (u32 i = 0; i < isa::kNumArchRegs; ++i) {
    if ((c.spec_rat_[i] & (kNumPhysRegs - 1)) == tag) return true;
    if ((c.arch_rat_[i] & (kNumPhysRegs - 1)) == tag) return true;
  }
  for (const auto& e : c.rob_) {
    if (e.valid && e.writes_reg && (e.prd & (kNumPhysRegs - 1)) == tag) return true;
  }
  return false;
}

bool sched_live(const Core& c, u32 entry) { return c.sched_[entry].valid; }
bool exec_live(const Core& c, u32 entry) { return c.exec_[entry].valid; }
bool ldq_live(const Core& c, u32 entry) { return c.ldq_[entry].valid; }
bool stq_live(const Core& c, u32 entry) { return c.stq_[entry].valid; }
bool rob_live(const Core& c, u32 entry) { return c.rob_[entry].valid; }

}  // namespace

StateRegistry::StateRegistry() {
  using Get = std::function<u64(const Core&, u32)>;
  using Set = std::function<void(Core&, u32, u64)>;
  using Live = std::function<bool(const Core&, u32)>;

  auto add = [this](std::string name, StorageClass storage, LhfProtection prot,
                    u32 entries, u32 bits, Get get, Set set, Live live) {
    StateField f;
    f.name = std::move(name);
    f.storage = storage;
    f.protection = prot;
    f.entries = entries;
    f.bits_per_entry = bits;
    f.get = std::move(get);
    f.set = std::move(set);
    f.live = std::move(live);
    fields_.push_back(std::move(f));
  };

  // Generic helpers over a reference-yielding accessor.
  auto add_int = [&](std::string name, StorageClass storage, LhfProtection prot,
                     u32 entries, u32 bits, auto ref, Live live) {
    add(std::move(name), storage, prot, entries, bits,
        [ref, bits](const Core& c, u32 e) -> u64 {
          return static_cast<u64>(ref(const_cast<Core&>(c), e)) & mask64(bits);
        },
        [ref, bits](Core& c, u32 e, u64 v) {
          using T = std::remove_reference_t<decltype(ref(c, e))>;
          ref(c, e) = static_cast<T>(v & mask64(bits));
        },
        std::move(live));
  };
  auto add_flag = [&](std::string name, StorageClass storage, LhfProtection prot,
                      u32 entries, auto ref, Live live) {
    add(std::move(name), storage, prot, entries, 1,
        [ref](const Core& c, u32 e) -> u64 {
          return ref(const_cast<Core&>(c), e) ? 1 : 0;
        },
        [ref](Core& c, u32 e, u64 v) { ref(c, e) = (v & 1) != 0; },
        std::move(live));
  };

  // ---- front end ----
  add_int("fetch.pc", kLatch, kParity, 1, 64,
          [](Core& c, u32) -> u64& { return c.fetch_pc_; }, always_live);
  add_flag("fetch.stalled", kLatch, kParity, 1,
           [](Core& c, u32) -> bool& { return c.fetch_stalled_; }, always_live);
  add_int("fetch.icache_stall", kLatch, kParity, 1, 4,
          [](Core& c, u32) -> u8& { return c.icache_stall_; }, always_live);

  constexpr u32 kFbSlots = kFrontLatchStages * kFetchWidth;
  auto fb_slot = [](Core& c, u32 e) -> FetchSlot& {
    return c.fb_[(e / kFetchWidth) % kFrontLatchStages][e % kFetchWidth];
  };
  add_flag("fb.valid", kLatch, kParity, kFbSlots,
           [fb_slot](Core& c, u32 e) -> bool& { return fb_slot(c, e).valid; },
           always_live);
  add_int("fb.pc", kLatch, kParity, kFbSlots, 64,
          [fb_slot](Core& c, u32 e) -> u64& { return fb_slot(c, e).pc; }, fb_live);
  add_int("fb.raw", kLatch, kParity, kFbSlots, 32,
          [fb_slot](Core& c, u32 e) -> u32& { return fb_slot(c, e).raw; }, fb_live);
  add_flag("fb.pred_taken", kLatch, kParity, kFbSlots,
           [fb_slot](Core& c, u32 e) -> bool& { return fb_slot(c, e).pred_taken; },
           fb_live);
  add_int("fb.pred_target", kLatch, kParity, kFbSlots, 64,
          [fb_slot](Core& c, u32 e) -> u64& { return fb_slot(c, e).pred_target; },
          fb_live);
  add_flag("fb.is_cond", kLatch, kParity, kFbSlots,
           [fb_slot](Core& c, u32 e) -> bool& { return fb_slot(c, e).is_cond; },
           fb_live);
  add_flag("fb.conf_high", kLatch, kParity, kFbSlots,
           [fb_slot](Core& c, u32 e) -> bool& { return fb_slot(c, e).conf_high; },
           fb_live);
  add_int("fb.fault", kLatch, kParity, kFbSlots, 3,
          [fb_slot](Core& c, u32 e) -> u8& { return fb_slot(c, e).fault; }, fb_live);

  // Fetch queue (an SRAM buffer; ECC'd by the hardened pipeline, §5.2.2).
  auto fq_slot = [](Core& c, u32 e) -> FetchSlot& {
    return c.fq_[e & (kFetchQueueEntries - 1)];
  };
  add_int("fq.pc", kSram, kEcc, kFetchQueueEntries, 64,
          [fq_slot](Core& c, u32 e) -> u64& { return fq_slot(c, e).pc; }, fq_live);
  add_int("fq.raw", kSram, kEcc, kFetchQueueEntries, 32,
          [fq_slot](Core& c, u32 e) -> u32& { return fq_slot(c, e).raw; }, fq_live);
  add_flag("fq.pred_taken", kSram, kEcc, kFetchQueueEntries,
           [fq_slot](Core& c, u32 e) -> bool& { return fq_slot(c, e).pred_taken; },
           fq_live);
  add_int("fq.pred_target", kSram, kEcc, kFetchQueueEntries, 64,
          [fq_slot](Core& c, u32 e) -> u64& { return fq_slot(c, e).pred_target; },
          fq_live);
  add_flag("fq.conf_high", kSram, kEcc, kFetchQueueEntries,
           [fq_slot](Core& c, u32 e) -> bool& { return fq_slot(c, e).conf_high; },
           fq_live);
  add_int("fq.fault", kSram, kEcc, kFetchQueueEntries, 3,
          [fq_slot](Core& c, u32 e) -> u8& { return fq_slot(c, e).fault; }, fq_live);
  add_int("fq.head", kLatch, kParity, 1, 5,
          [](Core& c, u32) -> u8& { return c.fq_head_; }, always_live);
  add_int("fq.count", kLatch, kParity, 1, 6,
          [](Core& c, u32) -> u8& { return c.fq_count_; }, always_live);

  // Decode latch.
  auto dec_slot = [](Core& c, u32 e) -> Uop& { return c.dec_[e & (kDecodeWidth - 1)]; };
  add_flag("dec.valid", kLatch, kParity, kDecodeWidth,
           [dec_slot](Core& c, u32 e) -> bool& { return dec_slot(c, e).valid; },
           always_live);
  add_int("dec.pc", kLatch, kParity, kDecodeWidth, 64,
          [dec_slot](Core& c, u32 e) -> u64& { return dec_slot(c, e).pc; }, dec_live);
  add_int("dec.opcode", kLatch, kParity, kDecodeWidth, 6,
          [dec_slot](Core& c, u32 e) -> u8& { return dec_slot(c, e).opcode; }, dec_live);
  add_int("dec.rd", kLatch, kParity, kDecodeWidth, 5,
          [dec_slot](Core& c, u32 e) -> u8& { return dec_slot(c, e).rd; }, dec_live);
  add_int("dec.rs1", kLatch, kParity, kDecodeWidth, 5,
          [dec_slot](Core& c, u32 e) -> u8& { return dec_slot(c, e).rs1; }, dec_live);
  add_int("dec.rs2", kLatch, kParity, kDecodeWidth, 5,
          [dec_slot](Core& c, u32 e) -> u8& { return dec_slot(c, e).rs2; }, dec_live);
  add_int("dec.imm21", kLatch, kParity, kDecodeWidth, 21,
          [dec_slot](Core& c, u32 e) -> u32& { return dec_slot(c, e).imm21; }, dec_live);
  add_flag("dec.illegal", kLatch, kParity, kDecodeWidth,
           [dec_slot](Core& c, u32 e) -> bool& { return dec_slot(c, e).illegal; },
           dec_live);
  add_int("dec.fault", kLatch, kParity, kDecodeWidth, 3,
          [dec_slot](Core& c, u32 e) -> u8& { return dec_slot(c, e).fault; }, dec_live);
  add_flag("dec.pred_taken", kLatch, kParity, kDecodeWidth,
           [dec_slot](Core& c, u32 e) -> bool& { return dec_slot(c, e).pred_taken; },
           dec_live);
  add_int("dec.pred_target", kLatch, kParity, kDecodeWidth, 64,
          [dec_slot](Core& c, u32 e) -> u64& { return dec_slot(c, e).pred_target; },
          dec_live);

  // ---- rename ----
  add_int("rat.spec", kSram, kEcc, isa::kNumArchRegs, kPhysTagBits,
          [](Core& c, u32 e) -> u8& { return c.spec_rat_[e & 31]; }, always_live);
  add_int("rat.arch", kSram, kEcc, isa::kNumArchRegs, kPhysTagBits,
          [](Core& c, u32 e) -> u8& { return c.arch_rat_[e & 31]; }, always_live);
  add_int("freelist.ring", kSram, kNone, kFreeListEntries, kPhysTagBits,
          [](Core& c, u32 e) -> u8& { return c.free_ring_[e & (kFreeListEntries - 1)]; },
          free_ring_live);
  add_int("freelist.head", kLatch, kParity, 1, 7,
          [](Core& c, u32) -> u8& { return c.fl_head_; }, always_live);
  add_int("freelist.tail", kLatch, kParity, 1, 7,
          [](Core& c, u32) -> u8& { return c.fl_tail_; }, always_live);
  add_int("freelist.count", kLatch, kParity, 1, 8,
          [](Core& c, u32) -> u8& { return c.fl_count_; }, always_live);

  // ---- physical register file ----
  add_int("prf.value", kSram, kEcc, kNumPhysRegs, 64,
          [](Core& c, u32 e) -> u64& { return c.prf_[e & (kNumPhysRegs - 1)]; },
          prf_live);
  add_flag("prf.ready", kLatch, kNone, kNumPhysRegs,
           [](Core& c, u32 e) -> bool& { return c.prf_ready_[e & (kNumPhysRegs - 1)]; },
           prf_live);

  // ---- scheduler ----
  auto sch = [](Core& c, u32 e) -> SchedEntry& {
    return c.sched_[e & (kSchedEntries - 1)];
  };
  add_flag("sched.valid", kLatch, kNone, kSchedEntries,
           [sch](Core& c, u32 e) -> bool& { return sch(c, e).valid; }, always_live);
  add_int("sched.rob_id", kLatch, kNone, kSchedEntries, kRobIdBits,
          [sch](Core& c, u32 e) -> u8& { return sch(c, e).rob_id; }, sched_live);
  add_int("sched.opcode", kLatch, kNone, kSchedEntries, 6,
          [sch](Core& c, u32 e) -> u8& { return sch(c, e).opcode; }, sched_live);
  add_int("sched.prs1", kLatch, kNone, kSchedEntries, kPhysTagBits,
          [sch](Core& c, u32 e) -> u8& { return sch(c, e).prs1; }, sched_live);
  add_int("sched.prs2", kLatch, kNone, kSchedEntries, kPhysTagBits,
          [sch](Core& c, u32 e) -> u8& { return sch(c, e).prs2; }, sched_live);
  add_int("sched.prd", kLatch, kNone, kSchedEntries, kPhysTagBits,
          [sch](Core& c, u32 e) -> u8& { return sch(c, e).prd; }, sched_live);
  add_flag("sched.use_rs1", kLatch, kNone, kSchedEntries,
           [sch](Core& c, u32 e) -> bool& { return sch(c, e).use_rs1; }, sched_live);
  add_flag("sched.use_rs2", kLatch, kNone, kSchedEntries,
           [sch](Core& c, u32 e) -> bool& { return sch(c, e).use_rs2; }, sched_live);
  add_flag("sched.writes_reg", kLatch, kNone, kSchedEntries,
           [sch](Core& c, u32 e) -> bool& { return sch(c, e).writes_reg; }, sched_live);
  add_int("sched.imm21", kLatch, kNone, kSchedEntries, 21,
          [sch](Core& c, u32 e) -> u32& { return sch(c, e).imm21; }, sched_live);
  add_int("sched.ldq_id", kLatch, kNone, kSchedEntries, 4,
          [sch](Core& c, u32 e) -> u8& { return sch(c, e).ldq_id; }, sched_live);
  add_int("sched.stq_id", kLatch, kNone, kSchedEntries, 4,
          [sch](Core& c, u32 e) -> u8& { return sch(c, e).stq_id; }, sched_live);
  add_flag("sched.is_load", kLatch, kNone, kSchedEntries,
           [sch](Core& c, u32 e) -> bool& { return sch(c, e).is_load; }, sched_live);
  add_flag("sched.is_store", kLatch, kNone, kSchedEntries,
           [sch](Core& c, u32 e) -> bool& { return sch(c, e).is_store; }, sched_live);
  add_flag("sched.is_branch", kLatch, kNone, kSchedEntries,
           [sch](Core& c, u32 e) -> bool& { return sch(c, e).is_branch; }, sched_live);
  add_flag("sched.issued", kLatch, kNone, kSchedEntries,
           [](Core& c, u32 e) -> bool& { return c.sched_issued_[e & (kSchedEntries - 1)]; },
           sched_live);

  // ---- execution pipelines ----
  auto ex = [](Core& c, u32 e) -> ExecSlot& { return c.exec_[e & (kExecSlots - 1)]; };
  add_flag("exec.valid", kLatch, kParity, kExecSlots,
           [ex](Core& c, u32 e) -> bool& { return ex(c, e).valid; }, always_live);
  add_int("exec.rob_id", kLatch, kParity, kExecSlots, kRobIdBits,
          [ex](Core& c, u32 e) -> u8& { return ex(c, e).rob_id; }, exec_live);
  add_int("exec.sched_id", kLatch, kParity, kExecSlots, 5,
          [ex](Core& c, u32 e) -> u8& { return ex(c, e).sched_id; }, exec_live);
  add_int("exec.opcode", kLatch, kParity, kExecSlots, 6,
          [ex](Core& c, u32 e) -> u8& { return ex(c, e).opcode; }, exec_live);
  add_int("exec.prd", kLatch, kParity, kExecSlots, kPhysTagBits,
          [ex](Core& c, u32 e) -> u8& { return ex(c, e).prd; }, exec_live);
  // Operand values are datapath bits: unprotected even in the "lhf" pipeline.
  add_int("exec.val1", kLatch, kNone, kExecSlots, 64,
          [ex](Core& c, u32 e) -> u64& { return ex(c, e).val1; }, exec_live);
  add_int("exec.val2", kLatch, kNone, kExecSlots, 64,
          [ex](Core& c, u32 e) -> u64& { return ex(c, e).val2; }, exec_live);
  add_int("exec.imm21", kLatch, kParity, kExecSlots, 21,
          [ex](Core& c, u32 e) -> u32& { return ex(c, e).imm21; }, exec_live);
  add_flag("exec.writes_reg", kLatch, kParity, kExecSlots,
           [ex](Core& c, u32 e) -> bool& { return ex(c, e).writes_reg; }, exec_live);
  add_int("exec.remaining", kLatch, kParity, kExecSlots, 5,
          [ex](Core& c, u32 e) -> u8& { return ex(c, e).remaining; }, exec_live);
  add_flag("exec.is_load", kLatch, kParity, kExecSlots,
           [ex](Core& c, u32 e) -> bool& { return ex(c, e).is_load; }, exec_live);
  add_flag("exec.is_store", kLatch, kParity, kExecSlots,
           [ex](Core& c, u32 e) -> bool& { return ex(c, e).is_store; }, exec_live);
  add_flag("exec.is_branch", kLatch, kParity, kExecSlots,
           [ex](Core& c, u32 e) -> bool& { return ex(c, e).is_branch; }, exec_live);
  add_int("exec.ldq_id", kLatch, kParity, kExecSlots, 4,
          [ex](Core& c, u32 e) -> u8& { return ex(c, e).ldq_id; }, exec_live);
  add_int("exec.stq_id", kLatch, kParity, kExecSlots, 4,
          [ex](Core& c, u32 e) -> u8& { return ex(c, e).stq_id; }, exec_live);

  // ---- load queue ----
  auto ld = [](Core& c, u32 e) -> LdqEntry& { return c.ldq_[e & (kLdqEntries - 1)]; };
  add_flag("ldq.valid", kLatch, kNone, kLdqEntries,
           [ld](Core& c, u32 e) -> bool& { return ld(c, e).valid; }, always_live);
  add_int("ldq.rob_id", kLatch, kNone, kLdqEntries, kRobIdBits,
          [ld](Core& c, u32 e) -> u8& { return ld(c, e).rob_id; }, ldq_live);
  add_flag("ldq.addr_valid", kLatch, kNone, kLdqEntries,
           [ld](Core& c, u32 e) -> bool& { return ld(c, e).addr_valid; }, ldq_live);
  add_int("ldq.addr", kLatch, kNone, kLdqEntries, 64,
          [ld](Core& c, u32 e) -> u64& { return ld(c, e).addr; }, ldq_live);
  add_int("ldq.size", kLatch, kNone, kLdqEntries, 2,
          [ld](Core& c, u32 e) -> u8& { return ld(c, e).size_log2; }, ldq_live);
  add_int("ldq.head", kLatch, kNone, 1, 4,
          [](Core& c, u32) -> u8& { return c.ldq_head_; }, always_live);
  add_int("ldq.count", kLatch, kNone, 1, 5,
          [](Core& c, u32) -> u8& { return c.ldq_count_; }, always_live);

  // ---- store queue ----
  auto st = [](Core& c, u32 e) -> StqEntry& { return c.stq_[e & (kStqEntries - 1)]; };
  add_flag("stq.valid", kLatch, kNone, kStqEntries,
           [st](Core& c, u32 e) -> bool& { return st(c, e).valid; }, always_live);
  add_int("stq.rob_id", kLatch, kNone, kStqEntries, kRobIdBits,
          [st](Core& c, u32 e) -> u8& { return st(c, e).rob_id; }, stq_live);
  add_flag("stq.addr_valid", kLatch, kNone, kStqEntries,
           [st](Core& c, u32 e) -> bool& { return st(c, e).addr_valid; }, stq_live);
  add_int("stq.addr", kLatch, kNone, kStqEntries, 64,
          [st](Core& c, u32 e) -> u64& { return st(c, e).addr; }, stq_live);
  add_int("stq.size", kLatch, kNone, kStqEntries, 2,
          [st](Core& c, u32 e) -> u8& { return st(c, e).size_log2; }, stq_live);
  // Store data is a "key data store": ECC'd in the hardened pipeline.
  add_int("stq.data", kSram, kNone, kStqEntries, 64,
          [st](Core& c, u32 e) -> u64& { return st(c, e).data; }, stq_live);
  add_int("stq.head", kLatch, kNone, 1, 4,
          [](Core& c, u32) -> u8& { return c.stq_head_; }, always_live);
  add_int("stq.count", kLatch, kNone, 1, 5,
          [](Core& c, u32) -> u8& { return c.stq_count_; }, always_live);

  // ---- reorder buffer (an SRAM array; ECC'd by the hardened pipeline) ----
  auto rb = [](Core& c, u32 e) -> RobEntry& { return c.rob_[e & (kRobEntries - 1)]; };
  add_flag("rob.valid", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).valid; }, always_live);
  add_flag("rob.done", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).done; }, rob_live);
  add_int("rob.pc", kSram, kEcc, kRobEntries, 64,
          [rb](Core& c, u32 e) -> u64& { return rb(c, e).pc; }, rob_live);
  add_int("rob.opcode", kSram, kEcc, kRobEntries, 6,
          [rb](Core& c, u32 e) -> u8& { return rb(c, e).opcode; }, rob_live);
  add_int("rob.rd", kSram, kEcc, kRobEntries, 5,
          [rb](Core& c, u32 e) -> u8& { return rb(c, e).rd; }, rob_live);
  add_flag("rob.writes_reg", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).writes_reg; }, rob_live);
  add_int("rob.prd", kSram, kEcc, kRobEntries, kPhysTagBits,
          [rb](Core& c, u32 e) -> u8& { return rb(c, e).prd; }, rob_live);
  add_int("rob.pold", kSram, kEcc, kRobEntries, kPhysTagBits,
          [rb](Core& c, u32 e) -> u8& { return rb(c, e).pold; }, rob_live);
  add_int("rob.fault", kSram, kEcc, kRobEntries, 3,
          [rb](Core& c, u32 e) -> u8& { return rb(c, e).fault; }, rob_live);
  add_flag("rob.is_store", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).is_store; }, rob_live);
  add_int("rob.stq_id", kSram, kEcc, kRobEntries, 4,
          [rb](Core& c, u32 e) -> u8& { return rb(c, e).stq_id; }, rob_live);
  add_flag("rob.is_load", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).is_load; }, rob_live);
  add_int("rob.ldq_id", kSram, kEcc, kRobEntries, 4,
          [rb](Core& c, u32 e) -> u8& { return rb(c, e).ldq_id; }, rob_live);
  add_flag("rob.is_branch", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).is_branch; }, rob_live);
  add_flag("rob.is_cond", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).is_cond; }, rob_live);
  add_flag("rob.pred_taken", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).pred_taken; }, rob_live);
  add_int("rob.pred_target", kSram, kEcc, kRobEntries, 64,
          [rb](Core& c, u32 e) -> u64& { return rb(c, e).pred_target; }, rob_live);
  add_flag("rob.actual_taken", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).actual_taken; }, rob_live);
  add_int("rob.actual_target", kSram, kEcc, kRobEntries, 64,
          [rb](Core& c, u32 e) -> u64& { return rb(c, e).actual_target; }, rob_live);
  add_flag("rob.mispredicted", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).mispredicted; }, rob_live);
  add_flag("rob.conf_high", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).conf_high; }, rob_live);
  add_int("rob.ghist", kSram, kEcc, kRobEntries, kGhistBits,
          [rb](Core& c, u32 e) -> u16& { return rb(c, e).ghist; }, rob_live);
  add_flag("rob.is_out", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).is_out; }, rob_live);
  add_flag("rob.is_halt", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).is_halt; }, rob_live);
  add_flag("rob.is_sync", kSram, kEcc, kRobEntries,
           [rb](Core& c, u32 e) -> bool& { return rb(c, e).is_sync; }, rob_live);
  add_int("rob.head", kLatch, kParity, 1, kRobIdBits,
          [](Core& c, u32) -> u8& { return c.rob_head_; }, always_live);
  add_int("rob.count", kLatch, kParity, 1, 7,
          [](Core& c, u32) -> u8& { return c.rob_count_; }, always_live);

  // ---- retirement state ----
  add_int("retire.commit_pc", kLatch, kParity, 1, 64,
          [](Core& c, u32) -> u64& { return c.commit_pc_; }, always_live);
  add_int("retire.watchdog", kLatch, kParity, 1, 16,
          [](Core& c, u32) -> u16& { return c.watchdog_; }, always_live);

  // Prefix sums for flat-bit addressing.
  cumulative_bits_.reserve(fields_.size() + 1);
  cumulative_bits_.push_back(0);
  for (const auto& f : fields_) {
    cumulative_bits_.push_back(cumulative_bits_.back() + f.total_bits());
  }
  total_bits_ = cumulative_bits_.back();
}

const StateRegistry& StateRegistry::instance() {
  static const StateRegistry registry;
  return registry;
}

u64 StateRegistry::total_bits(StorageClass storage) const noexcept {
  u64 total = 0;
  for (const auto& f : fields_) {
    if (f.storage == storage) total += f.total_bits();
  }
  return total;
}

BitRef StateRegistry::locate(u64 global_bit) const {
  if (global_bit >= total_bits_) throw std::out_of_range("locate: bit index");
  const auto it = std::upper_bound(cumulative_bits_.begin(), cumulative_bits_.end(),
                                   global_bit);
  const u32 field = static_cast<u32>(it - cumulative_bits_.begin() - 1);
  const u64 offset = global_bit - cumulative_bits_[field];
  const u32 bits = fields_[field].bits_per_entry;
  return {field, static_cast<u32>(offset / bits), static_cast<u32>(offset % bits)};
}

BitRef StateRegistry::sample(Rng& rng, std::optional<StorageClass> filter) const {
  if (!filter) return locate(rng.below(total_bits_));
  const u64 subset = total_bits(*filter);
  u64 pick = rng.below(subset);
  for (u32 field = 0; field < fields_.size(); ++field) {
    if (fields_[field].storage != *filter) continue;
    if (pick < fields_[field].total_bits()) {
      const u32 bits = fields_[field].bits_per_entry;
      return {field, static_cast<u32>(pick / bits), static_cast<u32>(pick % bits)};
    }
    pick -= fields_[field].total_bits();
  }
  throw std::logic_error("sample: inconsistent subset size");
}

void StateRegistry::flip(Core& core, const BitRef& ref) const {
  const StateField& f = fields_[ref.field];
  const u64 value = f.get(core, ref.entry);
  f.set(core, ref.entry, value ^ (u64{1} << ref.bit));
}

u64 StateRegistry::read(const Core& core, const BitRef& ref) const {
  const StateField& f = fields_[ref.field];
  return (f.get(core, ref.entry) >> ref.bit) & 1;
}

bool StateRegistry::bit_live(const Core& core, const BitRef& ref) const {
  return fields_[ref.field].live(core, ref.entry);
}

u64 StateRegistry::hash_state(const Core& core) const {
  u64 hash = 0xcbf29ce484222325ULL;
  auto mix = [&hash](u64 v) {
    hash ^= v;
    hash *= 0x100000001b3ULL;
    hash ^= hash >> 32;
  };
  for (const auto& f : fields_) {
    for (u32 e = 0; e < f.entries; ++e) mix(f.get(core, e));
  }
  return hash;
}

std::string StateRegistry::audit() const {
  auto storage_name = [](StorageClass s) {
    return s == StorageClass::kLatch ? "latch" : "sram";
  };
  auto protection_name = [](LhfProtection p) {
    switch (p) {
      case LhfProtection::kNone: return "none";
      case LhfProtection::kParity: return "parity";
      case LhfProtection::kEcc: return "ecc";
    }
    return "?";
  };
  std::string out =
      "# StateRegistry audit manifest -- the injectable state surface.\n"
      "# field <name> <storage> <protection> <entries>x<bits> = <total bits>\n";
  u64 latch_bits = 0;
  u64 sram_bits = 0;
  for (const auto& f : fields_) {
    (f.storage == StorageClass::kLatch ? latch_bits : sram_bits) += f.total_bits();
    out += "field " + f.name + ' ' + storage_name(f.storage) + ' ' +
           protection_name(f.protection) + ' ' + std::to_string(f.entries) +
           'x' + std::to_string(f.bits_per_entry) + " = " +
           std::to_string(f.total_bits()) + '\n';
  }
  out += "class latch = " + std::to_string(latch_bits) + '\n';
  out += "class sram = " + std::to_string(sram_bits) + '\n';
  out += "total = " + std::to_string(total_bits_) + '\n';
  return out;
}

StateRegistry::DiffSummary StateRegistry::diff(const Core& a, const Core& b) const {
  DiffSummary summary;
  for (const auto& f : fields_) {
    for (u32 e = 0; e < f.entries; ++e) {
      if (f.get(a, e) == f.get(b, e)) continue;
      summary.any = true;
      if (f.live(a, e) || f.live(b, e)) {
        summary.any_live = true;
        return summary;
      }
    }
  }
  return summary;
}

}  // namespace restore::uarch
