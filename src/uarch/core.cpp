#include "uarch/core.hpp"

#include <algorithm>
#include <vector>

#include "common/bits.hpp"
#include "isa/instruction.hpp"
#include "vm/exec.hpp"

namespace restore::uarch {

using isa::DecodedInst;
using isa::ExceptionKind;
using isa::Format;
using isa::Opcode;

namespace {

constexpr u64 kGhistMask = (u64{1} << kGhistBits) - 1;

// Rebuild instruction semantics from the latched pipeline fields (opcode,
// registers, raw immediate). Execution uses latched fields — not the original
// instruction word — so that flips in any pipeline latch propagate exactly as
// they would in hardware.
DecodedInst rebuild_inst(u8 opcode, u8 rd, u8 rs1, u8 rs2, u32 imm21) noexcept {
  DecodedInst d;
  d.op = static_cast<Opcode>(opcode & 63);
  const Format fmt = isa::format_of(d.op);
  d.valid = fmt != Format::kIllegal;
  d.rd = rd & 31;
  d.rs1 = rs1 & 31;
  d.rs2 = rs2 & 31;
  const u64 imm16 = imm21 & 0xFFFF;
  switch (fmt) {
    case Format::kIType:
      if (d.op == Opcode::kAndi || d.op == Opcode::kOri || d.op == Opcode::kXori) {
        d.imm = static_cast<i64>(imm16);
      } else {
        d.imm = sign_extend(imm16, 16);
      }
      break;
    case Format::kLoad:
    case Format::kStore:
    case Format::kJalr:
      d.imm = sign_extend(imm16, 16);
      break;
    case Format::kBranch:
      d.imm = sign_extend(imm16, 16) * 4;
      break;
    case Format::kJal:
      d.imm = sign_extend(imm21 & 0x1FFFFF, 21) * 4;
      break;
    default:
      break;
  }
  return d;
}

unsigned size_log2_of(Opcode op) noexcept {
  switch (isa::mem_access_bytes(op)) {
    case 2: return 1;
    case 4: return 2;
    case 8: return 3;
    default: return 0;
  }
}

}  // namespace

Core::Core(const isa::Program& program, const CoreConfig& config) : config_(config) {
  memory_.load_program(program);
  fetch_pc_ = program.entry;
  commit_pc_ = program.entry;
  for (u8 i = 0; i < isa::kNumArchRegs; ++i) {
    spec_rat_[i] = i;
    arch_rat_[i] = i;
  }
  for (unsigned i = 0; i < kNumPhysRegs - isa::kNumArchRegs; ++i) {
    free_ring_[i] = static_cast<u8>(isa::kNumArchRegs + i);
  }
  fl_head_ = 0;
  fl_tail_ = static_cast<u8>((kNumPhysRegs - isa::kNumArchRegs) & (kFreeListEntries - 1));
  fl_count_ = kNumPhysRegs - isa::kNumArchRegs;
  prf_.fill(0);
  prf_[30] = program.stack_top;  // sp
  prf_ready_.fill(true);
}

vm::ArchSnapshot Core::arch_snapshot() const noexcept {
  vm::ArchSnapshot snap;
  for (u8 i = 0; i < isa::kNumArchRegs; ++i) {
    snap.regs[i] = prf_[arch_rat_[i] & (kNumPhysRegs - 1)];
  }
  snap.regs[isa::kZeroReg] = 0;
  snap.pc = commit_pc_;
  return snap;
}

void Core::set_replay_hints(std::vector<ReplayHint> hints) {
  replay_hints_ = std::move(hints);
  replay_cursor_ = 0;
}

void Core::reset_to(const vm::ArchSnapshot& snapshot) {
  replay_hints_.clear();
  replay_cursor_ = 0;
  for (u8 i = 0; i < isa::kNumArchRegs; ++i) {
    spec_rat_[i] = i;
    arch_rat_[i] = i;
    prf_[i] = snapshot.regs[i];
  }
  prf_[isa::kZeroReg] = 0;
  for (unsigned i = 32; i < kNumPhysRegs; ++i) prf_[i] = 0;
  prf_ready_.fill(true);
  for (unsigned i = 0; i < kNumPhysRegs - isa::kNumArchRegs; ++i) {
    free_ring_[i] = static_cast<u8>(isa::kNumArchRegs + i);
  }
  fl_head_ = 0;
  fl_tail_ = static_cast<u8>((kNumPhysRegs - isa::kNumArchRegs) & (kFreeListEntries - 1));
  fl_count_ = kNumPhysRegs - isa::kNumArchRegs;

  for (auto& stage : fb_) stage.fill(FetchSlot{});
  fq_.fill(FetchSlot{});
  fq_head_ = fq_count_ = 0;
  dec_.fill(Uop{});
  dec_head_ = dec_count_ = 0;
  sched_.fill(SchedEntry{});
  sched_issued_.fill(false);
  exec_.fill(ExecSlot{});
  ldq_.fill(LdqEntry{});
  ldq_head_ = ldq_count_ = 0;
  stq_.fill(StqEntry{});
  stq_head_ = stq_count_ = 0;
  rob_.fill(RobEntry{});
  rob_head_ = rob_count_ = 0;

  fetch_pc_ = snapshot.pc;
  commit_pc_ = snapshot.pc;
  fetch_stalled_ = false;
  icache_stall_ = 0;
  watchdog_ = 0;
  status_ = Status::kRunning;
  fault_ = ExceptionKind::kNone;
}

void Core::complete_write(u8 prd, u64 value) {
  const u8 tag = prd & (kNumPhysRegs - 1);
  prf_[tag] = value;
  prf_ready_[tag] = true;
  // Wakeup broadcast: edge-triggered, as in real select/wakeup loops. A lost
  // or corrupted ready bit is not silently repaired — the consumer stalls and
  // the watchdog eventually catches the wedge.
  for (auto& e : sched_) {
    if (!e.valid) continue;
    if (e.use_rs1 && (e.prs1 & (kNumPhysRegs - 1)) == tag) e.rs1_ready = true;
    if (e.use_rs2 && (e.prs2 & (kNumPhysRegs - 1)) == tag) e.rs2_ready = true;
  }
}

void Core::emit_symptom(SymptomEvent::Kind kind, ExceptionKind fault) {
  if (symptom_buf_count_ < symptom_buf_.size()) {
    symptom_buf_[symptom_buf_count_++] = {kind, fault, retired_total_};
  }
}

void Core::append_retired(const vm::Retired& record) {
  if (retired_buf_count_ < retired_buf_.size()) {
    retired_buf_[retired_buf_count_++] = record;
  }
}

void Core::cycle() {
  if (status_ != Status::kRunning) return;
  if (budget_.max_cycles != 0 && cycle_count_ >= budget_.max_cycles) {
    throw BudgetExceeded(BudgetKind::kCycles, budget_.max_cycles, cycle_count_ + 1);
  }
  if (budget_.max_retired != 0 && retired_total_ >= budget_.max_retired) {
    throw BudgetExceeded(BudgetKind::kRetired, budget_.max_retired, retired_total_);
  }
  retired_buf_count_ = 0;
  symptom_buf_count_ = 0;
  ++cycle_count_;

  do_retire();
  if (status_ == Status::kRunning) {
    do_writeback();
    do_select();
    do_rename();
    do_decode();
    do_fetch();
  }

  // Cache-miss-burst extension symptom (§3.3 candidate).
  if (config_.cache_burst_symptom && status_ == Status::kRunning) {
    const u64 misses = counters_.l1d_misses;
    burst_misses_ = static_cast<u16>(burst_misses_ + (misses - burst_last_misses_));
    burst_last_misses_ = misses;
    if (++burst_cycles_ >= config_.cache_burst_window) {
      if (burst_misses_ >= config_.cache_burst_threshold) {
        emit_symptom(SymptomEvent::Kind::kCacheMissBurst, ExceptionKind::kNone);
      }
      burst_cycles_ = 0;
      burst_misses_ = 0;
    }
  }

  // Watchdog: saturates when nothing retires for too long (paper §4.2).
  if (status_ == Status::kRunning) {
    if (retired_buf_count_ == 0) {
      if (++watchdog_ >= config_.watchdog_cycles) {
        status_ = Status::kDeadlocked;
        emit_symptom(SymptomEvent::Kind::kWatchdog, ExceptionKind::kNone);
      }
    } else {
      watchdog_ = 0;
    }
  }
}

u64 Core::run(u64 max_cycles) {
  u64 cycles = 0;
  while (cycles < max_cycles && status_ == Status::kRunning) {
    cycle();
    ++cycles;
  }
  return cycles;
}

// ---------------------------------------------------------------------------
// Retire
// ---------------------------------------------------------------------------

void Core::do_retire() {
  for (unsigned slot = 0; slot < kRetireWidth; ++slot) {
    if (rob_count_ == 0) return;
    RobEntry& e = rob_[rob_head_ & (kRobEntries - 1)];
    if (!e.valid || !e.done) return;

    vm::Retired rec;
    rec.pc = e.pc;
    rec.next_pc = e.actual_target;

    const auto fault_kind = static_cast<ExceptionKind>(e.fault & 7);
    if (fault_kind != ExceptionKind::kNone) {
      rec.fault = fault_kind;
      rec.next_pc = e.pc + 4;
      append_retired(rec);
      ++retired_total_;
      emit_symptom(SymptomEvent::Kind::kException, fault_kind);
      status_ = Status::kFaulted;
      fault_ = fault_kind;
      return;
    }

    if (e.is_halt) {
      rec.halted = true;
      append_retired(rec);
      ++retired_total_;
      commit_pc_ = e.actual_target;
      status_ = Status::kHalted;
      return;
    }

    if (e.is_store) {
      StqEntry& s = stq_[e.stq_id & (kStqEntries - 1)];
      const unsigned bytes = 1u << (s.size_log2 & 3);
      rec.is_store = true;
      rec.store_addr = s.addr;
      rec.store_bytes = static_cast<u8>(bytes);
      rec.store_data = s.data & mask64(bytes * 8);
      const vm::MemAccess old = memory_.load(s.addr, bytes);
      if (old.ok()) rec.store_old_data = old.value;
      const vm::MemAccess write = memory_.store(s.addr, bytes, s.data);
      if (!write.ok()) {
        // The address was corrupted between execute (where it was probed) and
        // retirement; surface it as a precise exception.
        rec.fault = write.fault;
        rec.is_store = false;
        append_retired(rec);
        ++retired_total_;
        emit_symptom(SymptomEvent::Kind::kException, write.fault);
        status_ = Status::kFaulted;
        fault_ = write.fault;
        return;
      }
      // Drain the store-queue head.
      stq_[stq_head_ & (kStqEntries - 1)] = StqEntry{};
      stq_head_ = static_cast<u8>((stq_head_ + 1) & (kStqEntries - 1));
      if (stq_count_ > 0) --stq_count_;
    }

    if (e.is_load) {
      const LdqEntry& l = ldq_[e.ldq_id & (kLdqEntries - 1)];
      rec.is_load = true;
      rec.load_addr = l.addr;
      ldq_[ldq_head_ & (kLdqEntries - 1)] = LdqEntry{};
      ldq_head_ = static_cast<u8>((ldq_head_ + 1) & (kLdqEntries - 1));
      if (ldq_count_ > 0) --ldq_count_;
    }

    if (e.is_branch) {
      rec.is_ctrl = true;
      rec.taken = e.actual_taken;
      if (e.is_cond) {
        rec.is_cond_branch = true;
        ++counters_.cond_branches;
        if (e.mispredicted) {
          ++counters_.cond_mispredicts;
          if (e.conf_high) ++counters_.high_conf_mispredicts;
        }
        bpred_.update(e.pc, e.ghist, e.actual_taken);
        jrs_.update(e.pc, e.ghist, !e.mispredicted, config_.jrs_counter_max);
      } else if (static_cast<Opcode>(e.opcode & 63) == Opcode::kJalr) {
        btb_.update(e.pc, e.actual_target);
      }
    }

    if (e.is_sync) rec.is_sync = true;

    if (e.is_out) {
      // OUT reads its source through the (now current) architectural map.
      const u64 value = prf_[arch_rat_[e.rd & 31] & (kNumPhysRegs - 1)];
      rec.is_out = true;
      rec.out_byte = static_cast<u8>(value & 0xFF);
      output_.push_back(static_cast<char>(rec.out_byte));
    }

    if (e.writes_reg) {
      rec.wrote_reg = true;
      rec.rd = e.rd & 31;
      rec.rd_value = prf_[e.prd & (kNumPhysRegs - 1)];
      arch_rat_[e.rd & 31] = e.prd & (kNumPhysRegs - 1);
      // Free the previous mapping.
      free_ring_[fl_tail_ & (kFreeListEntries - 1)] = e.pold & (kNumPhysRegs - 1);
      fl_tail_ = static_cast<u8>((fl_tail_ + 1) & (kFreeListEntries - 1));
      if (fl_count_ < kFreeListEntries) ++fl_count_;
    }

    if (config_.illegal_flow_watchdog) check_control_flow(rec);

    // Advance the replay-hint cursor in retirement order (non-speculative).
    if (rec.is_ctrl && replay_cursor_ < replay_hints_.size()) {
      if (replay_hints_[replay_cursor_].pc == rec.pc) {
        ++replay_cursor_;
      } else {
        // Skew recovery: search a short window; give up (disable the rest)
        // if the streams have genuinely diverged.
        std::size_t found = replay_hints_.size();
        const std::size_t window_end =
            std::min(replay_cursor_ + 8, replay_hints_.size());
        for (std::size_t i = replay_cursor_; i < window_end; ++i) {
          if (replay_hints_[i].pc == rec.pc) {
            found = i + 1;
            break;
          }
        }
        replay_cursor_ = found;
      }
    }

    append_retired(rec);
    ++retired_total_;
    commit_pc_ = e.actual_target;
    e.valid = false;
    rob_head_ = static_cast<u8>((rob_head_ + 1) & (kRobEntries - 1));
    --rob_count_;
  }
}

// Control-flow monitoring watchdog: verify (a) stream continuity — this
// instruction's pc must be the previous instruction's committed successor —
// and (b) that the committed successor is one the instruction's static
// encoding allows. Catches the *illegal* control-flow violations that
// confidence-gated misprediction symptoms miss (about a third of all cfv per
// §5.2.1); legal-but-wrong-direction branches remain invisible to it.
void Core::check_control_flow(const vm::Retired& rec) {
  if (rec.pc != commit_pc_) {
    // commit_pc_ still holds the previous instruction's successor here (it is
    // updated after this check).
    emit_symptom(SymptomEvent::Kind::kIllegalFlow, ExceptionKind::kNone);
    return;
  }
  const vm::MemAccess fetched = memory_.fetch(rec.pc);
  if (!fetched.ok()) {
    emit_symptom(SymptomEvent::Kind::kIllegalFlow, ExceptionKind::kNone);
    return;
  }
  const DecodedInst d = isa::decode(static_cast<u32>(fetched.value));
  bool legal = true;
  if (!d.valid) {
    legal = false;  // an undecodable word retired without a fault
  } else if (isa::is_cond_branch(d.op)) {
    legal = rec.next_pc == rec.pc + 4 ||
            rec.next_pc == rec.pc + 4 + static_cast<u64>(d.imm);
  } else if (d.op == Opcode::kJal) {
    legal = rec.next_pc == rec.pc + 4 + static_cast<u64>(d.imm);
  } else if (d.op == Opcode::kJalr) {
    legal = (rec.next_pc & 3) == 0;  // register-indirect: only alignment checkable
  } else if (!rec.halted) {
    legal = rec.next_pc == rec.pc + 4;
  }
  if (!legal) emit_symptom(SymptomEvent::Kind::kIllegalFlow, ExceptionKind::kNone);
}

// ---------------------------------------------------------------------------
// Writeback / branch resolution / recovery
// ---------------------------------------------------------------------------

u32 Core::min_unknown_store_age() const noexcept {
  u32 min_age = kRobEntries;  // older than any real age
  for (const auto& s : stq_) {
    if (!s.valid || s.addr_valid) continue;
    min_age = std::min(min_age, rob_age(s.rob_id));
  }
  return min_age;
}

int Core::scan_stq(u64 addr, unsigned bytes, u32 load_age, u64* fwd) const noexcept {
  // Find the youngest older store overlapping [addr, addr+bytes).
  const StqEntry* best = nullptr;
  u32 best_age = 0;
  for (const auto& s : stq_) {
    if (!s.valid || !s.addr_valid) continue;
    const u32 age = rob_age(s.rob_id);
    if (age >= load_age) continue;
    const unsigned sbytes = 1u << (s.size_log2 & 3);
    const bool overlap = s.addr < addr + bytes && addr < s.addr + sbytes;
    if (!overlap) continue;
    if (best == nullptr || age > best_age) {
      best = &s;
      best_age = age;
    }
  }
  if (best == nullptr) return 0;
  const unsigned sbytes = 1u << (best->size_log2 & 3);
  if (best->addr <= addr && addr + bytes <= best->addr + sbytes) {
    const unsigned shift = static_cast<unsigned>(addr - best->addr) * 8;
    *fwd = (best->data >> shift) & mask64(bytes * 8);
    return 1;  // full forward
  }
  return 2;  // partial overlap: wait for the store to drain
}

void Core::flush_frontend() {
  for (auto& stage : fb_) stage.fill(FetchSlot{});
  fq_.fill(FetchSlot{});
  fq_head_ = fq_count_ = 0;
  dec_.fill(Uop{});
  dec_head_ = dec_count_ = 0;
  fetch_stalled_ = false;
  icache_stall_ = 0;
}

void Core::recover_from(u8 branch_rob_id, u64 correct_pc, u16 ghist_after) {
  const u32 branch_age = rob_age(branch_rob_id);

  // Walk the ROB tail back to the branch, undoing rename state youngest-first.
  for (unsigned guard = 0; guard < kRobEntries; ++guard) {
    if (rob_count_ == 0) break;
    const u8 tail_idx =
        static_cast<u8>((rob_head_ + rob_count_ - 1) & (kRobEntries - 1));
    if (tail_idx == (branch_rob_id & (kRobEntries - 1))) break;
    RobEntry& e = rob_[tail_idx];
    if (e.valid) {
      if (e.writes_reg) {
        spec_rat_[e.rd & 31] = e.pold & (kNumPhysRegs - 1);
        // Return the allocated tag to the front of the free list.
        fl_head_ = static_cast<u8>((fl_head_ + kFreeListEntries - 1) &
                                   (kFreeListEntries - 1));
        free_ring_[fl_head_] = e.prd & (kNumPhysRegs - 1);
        if (fl_count_ < kFreeListEntries) ++fl_count_;
      }
      if (e.is_load && ldq_count_ > 0) {
        const u8 lt = static_cast<u8>((ldq_head_ + ldq_count_ - 1) & (kLdqEntries - 1));
        ldq_[lt] = LdqEntry{};
        --ldq_count_;
      }
      if (e.is_store && stq_count_ > 0) {
        const u8 st = static_cast<u8>((stq_head_ + stq_count_ - 1) & (kStqEntries - 1));
        stq_[st] = StqEntry{};
        --stq_count_;
      }
    }
    e = RobEntry{};
    --rob_count_;
  }

  // Kill younger ops in the scheduler and execution pipelines.
  for (unsigned i = 0; i < kSchedEntries; ++i) {
    if (sched_[i].valid && rob_age(sched_[i].rob_id) > branch_age) {
      sched_[i] = SchedEntry{};
      sched_issued_[i] = false;
    }
  }
  for (auto& slot : exec_) {
    if (slot.valid && rob_age(slot.rob_id) > branch_age) slot = ExecSlot{};
  }

  flush_frontend();
  fetch_pc_ = correct_pc;
  ghist_ = static_cast<u16>(ghist_after & kGhistMask);
  ++counters_.flushes;
}

void Core::resolve_branch(const ExecSlot& slot, RobEntry& entry) {
  const DecodedInst inst =
      rebuild_inst(slot.opcode, entry.rd, 0, 0, slot.imm21);
  const u64 pc = entry.pc;
  bool taken = true;
  u64 target = pc + 4;

  if (isa::is_cond_branch(inst.op)) {
    taken = vm::eval_branch(inst.op, slot.val1, slot.val2);
    target = taken ? pc + 4 + static_cast<u64>(inst.imm) : pc + 4;
  } else if (inst.op == Opcode::kJal) {
    target = pc + 4 + static_cast<u64>(inst.imm);
  } else if (inst.op == Opcode::kJalr) {
    target = vm::jalr_target(inst, slot.val1);
  } else {
    // A corrupted opcode turned a branch into something else; treat as
    // fall-through so the machine keeps moving (the wrong result will
    // surface through other channels).
    taken = false;
  }

  entry.actual_taken = taken;
  entry.actual_target = target;

  const bool mispredicted =
      (taken != entry.pred_taken) || (taken && target != entry.pred_target);
  entry.mispredicted = mispredicted;

  if (slot.writes_reg) complete_write(slot.prd, pc + 4);  // JAL/JALR link value
  entry.done = true;

  if (mispredicted) {
    emit_symptom(SymptomEvent::Kind::kMispredict, ExceptionKind::kNone);
    if (entry.is_cond && entry.conf_high) {
      emit_symptom(SymptomEvent::Kind::kHighConfMispredict, ExceptionKind::kNone);
    }
    u16 ghist_after = entry.ghist;
    if (entry.is_cond) {
      ghist_after = static_cast<u16>(((entry.ghist << 1) | (taken ? 1 : 0)) & kGhistMask);
    }
    recover_from(slot.rob_id, target, ghist_after);
  }
}

void Core::do_writeback() {
  // Collect slots completing this cycle, oldest first, so that an older
  // mispredicted branch squashes younger completions before they commit
  // state.
  std::array<unsigned, kExecSlots> completing{};
  std::array<u32, kExecSlots> age_of{};
  unsigned n = 0;
  for (unsigned i = 0; i < kExecSlots; ++i) {
    ExecSlot& slot = exec_[i];
    if (!slot.valid) continue;
    if (slot.remaining > 1) {
      --slot.remaining;
      continue;
    }
    slot.remaining = 0;
    age_of[i] = rob_age(slot.rob_id);
    completing[n++] = i;
  }
  // Precomputed keys: rob_head_ cannot move before the sort, so these are the
  // exact ages the old comparator recomputed — same comparator results, same
  // permutation, ties included.
  std::sort(completing.begin(), completing.begin() + n,
            [&age_of](unsigned a, unsigned b) { return age_of[a] < age_of[b]; });

  for (unsigned k = 0; k < n; ++k) {
    ExecSlot& slot = exec_[completing[k]];
    if (!slot.valid) continue;  // squashed by an older branch this cycle
    RobEntry& entry = rob_[slot.rob_id & (kRobEntries - 1)];

    const auto free_sched = [this, &slot] {
      sched_[slot.sched_id & (kSchedEntries - 1)] = SchedEntry{};
      sched_issued_[slot.sched_id & (kSchedEntries - 1)] = false;
    };

    if (!entry.valid) {
      // Corrupted linkage: the op points at an empty ROB slot. Drop it.
      free_sched();
      slot = ExecSlot{};
      continue;
    }

    if (slot.is_branch) {
      free_sched();
      resolve_branch(slot, entry);
      slot = ExecSlot{};
      continue;
    }

    const DecodedInst inst = rebuild_inst(slot.opcode, entry.rd, 0, 0, slot.imm21);

    if (slot.is_store) {
      const u64 addr = slot.val1 + static_cast<u64>(inst.imm);
      const unsigned bytes = isa::mem_access_bytes(inst.op);
      const unsigned safe_bytes = bytes ? bytes : 1;
      const ExceptionKind fault = memory_.probe(addr, safe_bytes, /*write=*/true);
      dtlb_.access(addr);
      StqEntry& s = stq_[slot.stq_id & (kStqEntries - 1)];
      s.addr = addr;
      s.addr_valid = true;
      s.size_log2 = static_cast<u8>(size_log2_of(inst.op));
      s.data = slot.val2 & mask64(safe_bytes * 8);
      if (fault != ExceptionKind::kNone) entry.fault = static_cast<u8>(fault);
      entry.done = true;
      free_sched();
      slot = ExecSlot{};
      continue;
    }

    if (slot.is_load) {
      const u64 addr = slot.val1 + static_cast<u64>(inst.imm);
      const unsigned bytes = isa::mem_access_bytes(inst.op);
      const unsigned safe_bytes = bytes ? bytes : 1;
      LdqEntry& l = ldq_[slot.ldq_id & (kLdqEntries - 1)];
      l.addr = addr;
      l.addr_valid = true;
      l.size_log2 = static_cast<u8>(size_log2_of(inst.op));

      const ExceptionKind fault = memory_.probe(addr, safe_bytes, /*write=*/false);
      if (fault != ExceptionKind::kNone) {
        entry.fault = static_cast<u8>(fault);
        entry.done = true;
        free_sched();
        slot = ExecSlot{};
        continue;
      }
      u64 value = 0;
      const int conflict = scan_stq(addr, safe_bytes, rob_age(slot.rob_id), &value);
      if (conflict == 2) {
        // Partial overlap with an older store: replay until it drains.
        sched_issued_[slot.sched_id & (kSchedEntries - 1)] = false;
        slot = ExecSlot{};
        continue;
      }
      if (conflict == 0) {
        value = memory_.load(addr, safe_bytes).value;
      }
      value = vm::extend_load(inst.op, value);
      if (slot.writes_reg) complete_write(slot.prd, value);
      entry.done = true;
      free_sched();
      slot = ExecSlot{};
      continue;
    }

    // Integer ALU op.
    const vm::ExecResult result = vm::exec_int_op(inst, slot.val1, slot.val2);
    if (!result.ok()) {
      entry.fault = static_cast<u8>(result.fault);
    } else if (slot.writes_reg) {
      complete_write(slot.prd, result.value);
    }
    entry.done = true;
    free_sched();
    slot = ExecSlot{};
  }
}

// ---------------------------------------------------------------------------
// Select / issue
// ---------------------------------------------------------------------------

void Core::do_select() {
  // Oldest-first selection respecting per-class issue limits. Ages are
  // precomputed once per select (rob_head_ is stable here) and the oldest
  // unknown-address store bound is hoisted out of the candidate scan; the
  // sort comparator reads the same precomputed keys it would have recomputed,
  // so the selection order (ties included) is bit-identical to sorting on
  // rob_age directly.
  std::array<unsigned, kSchedEntries> candidates{};
  std::array<u32, kSchedEntries> age_of{};
  const u32 unknown_store_bound = min_unknown_store_age();
  unsigned n = 0;
  for (unsigned i = 0; i < kSchedEntries; ++i) {
    const SchedEntry& e = sched_[i];
    if (!e.valid || sched_issued_[i]) continue;
    if (!e.rs1_ready || !e.rs2_ready) continue;
    const u32 age = rob_age(e.rob_id);
    if (e.is_load && age > unknown_store_bound) continue;
    age_of[i] = age;
    candidates[n++] = i;
  }
  std::sort(candidates.begin(), candidates.begin() + n,
            [&age_of](unsigned a, unsigned b) { return age_of[a] < age_of[b]; });

  unsigned alu_left = kIssueAlu;
  unsigned br_left = kIssueBranch;
  unsigned mem_left = kIssueMem;
  unsigned issued = 0;
  unsigned exec_search = 0;  // first-free exec slot only moves forward

  for (unsigned k = 0; k < n && issued < kIssueWidth; ++k) {
    SchedEntry& e = sched_[candidates[k]];
    unsigned* budget = nullptr;
    if (e.is_branch) {
      budget = &br_left;
    } else if (e.is_load || e.is_store) {
      budget = &mem_left;
    } else {
      budget = &alu_left;
    }
    if (*budget == 0) continue;

    // Find a free execution slot (slots never free mid-select, so the scan
    // resumes where the last one stopped).
    unsigned exec_idx = kExecSlots;
    for (unsigned x = exec_search; x < kExecSlots; ++x) {
      if (!exec_[x].valid) {
        exec_idx = x;
        break;
      }
    }
    if (exec_idx == kExecSlots) break;
    exec_search = exec_idx + 1;

    ExecSlot slot;
    slot.valid = true;
    slot.rob_id = e.rob_id;
    slot.sched_id = static_cast<u8>(candidates[k]);
    slot.opcode = e.opcode;
    slot.prd = e.prd;
    slot.writes_reg = e.writes_reg;
    slot.imm21 = e.imm21;
    slot.val1 = e.use_rs1 ? prf_[e.prs1 & (kNumPhysRegs - 1)] : 0;
    slot.val2 = e.use_rs2 ? prf_[e.prs2 & (kNumPhysRegs - 1)] : 0;
    slot.is_load = e.is_load;
    slot.is_store = e.is_store;
    slot.is_branch = e.is_branch;
    slot.ldq_id = e.ldq_id;
    slot.stq_id = e.stq_id;

    // Latency.
    const Opcode op = static_cast<Opcode>(e.opcode & 63);
    unsigned latency = config_.alu_latency;
    if (e.is_branch) {
      latency = config_.alu_latency;
    } else if (e.is_store) {
      latency = config_.agen_latency;
    } else if (e.is_load) {
      const u64 addr = slot.val1 + static_cast<u64>(
          rebuild_inst(e.opcode, 0, 0, 0, e.imm21).imm);
      u64 fwd_unused = 0;
      const int conflict =
          scan_stq(addr, std::max(1u, isa::mem_access_bytes(op)),
                   rob_age(e.rob_id), &fwd_unused);
      if (conflict == 1) {
        latency = config_.agen_latency + config_.store_forward_latency;
      } else {
        dtlb_.access(addr);
        const bool hit = l1d_.access(addr);
        if (!hit) ++counters_.l1d_misses;
        latency = config_.agen_latency +
                  (hit ? config_.l1d_hit_latency : config_.l1d_miss_latency);
      }
    } else if (op == Opcode::kMul || op == Opcode::kMulw || op == Opcode::kMulv) {
      latency = config_.mul_latency;
    } else if (op == Opcode::kDivu || op == Opcode::kRemu) {
      latency = config_.div_latency;
    }
    slot.remaining = static_cast<u8>(std::max(1u, latency) & 31);
    if (slot.remaining == 0) slot.remaining = 1;

    exec_[exec_idx] = slot;
    sched_issued_[candidates[k]] = true;
    --*budget;
    ++issued;
  }
}

// ---------------------------------------------------------------------------
// Rename / dispatch
// ---------------------------------------------------------------------------

void Core::do_rename() {
  unsigned sched_search = 0;  // first-free scheduler slot only moves forward
  for (unsigned renamed = 0; renamed < kRenameWidth; ++renamed) {
    if (dec_count_ == 0) return;
    Uop& u = dec_[dec_head_ & (kDecodeWidth - 1)];
    if (!u.valid) {
      dec_head_ = static_cast<u8>((dec_head_ + 1) & (kDecodeWidth - 1));
      --dec_count_;
      continue;
    }

    const DecodedInst d = rebuild_inst(u.opcode, u.rd, u.rs1, u.rs2, u.imm21);
    const Opcode op = d.op;
    const bool has_fault = u.fault != 0 || u.illegal || !d.valid;
    const bool is_halt = d.valid && op == Opcode::kHalt;
    const bool is_out = d.valid && op == Opcode::kOut;
    const bool is_sync = d.valid && op == Opcode::kSync;
    const bool needs_exec = !has_fault && !is_halt && !is_out && !is_sync;
    const bool writes = needs_exec && d.writes_reg();
    const bool is_load = needs_exec && isa::is_load(op);
    const bool is_store = needs_exec && isa::is_store(op);

    // Resource checks (stall on shortage).
    if (rob_count_ >= kRobEntries) return;
    if (writes && fl_count_ == 0) return;
    if (is_load && ldq_count_ >= kLdqEntries) return;
    if (is_store && stq_count_ >= kStqEntries) return;
    unsigned sched_idx = kSchedEntries;
    if (needs_exec) {
      // Entries never free mid-rename, so the first-free scan resumes where
      // the previous uop's stopped.
      for (unsigned i = sched_search; i < kSchedEntries; ++i) {
        if (!sched_[i].valid) {
          sched_idx = i;
          break;
        }
      }
      if (sched_idx == kSchedEntries) return;
      sched_search = sched_idx + 1;
    }

    // Allocate the ROB entry.
    const u8 rob_id = static_cast<u8>((rob_head_ + rob_count_) & (kRobEntries - 1));
    RobEntry& e = rob_[rob_id];
    e = RobEntry{};
    e.valid = true;
    e.pc = u.pc;
    e.opcode = u.opcode & 63;
    e.actual_target = u.pc + 4;
    e.is_halt = is_halt;
    e.is_out = is_out;
    e.is_sync = is_sync;
    e.ghist = u.ghist;
    e.conf_high = u.conf_high;
    e.pred_taken = u.pred_taken;
    e.pred_target = u.pred_target;
    if (has_fault) {
      e.fault = u.fault != 0
                    ? (u.fault & 7)
                    : static_cast<u8>(ExceptionKind::kIllegalInstruction);
      e.done = true;
    } else if (is_halt) {
      e.done = true;
    } else if (is_out) {
      e.rd = u.rs1 & 31;  // OUT's source register, read at retirement
      e.done = true;
    } else if (is_sync) {
      e.done = true;  // single-core machine: ordering is free; the ReStore
                      // layer forces a checkpoint at its retirement (§2.1)
    }

    if (needs_exec) {
      e.is_branch = isa::is_control(op);
      e.is_cond = isa::is_cond_branch(op);
      e.is_load = is_load;
      e.is_store = is_store;
      e.rd = d.rd;

      // Read source mappings BEFORE installing the destination mapping, or an
      // instruction like "add r1, r1, r2" would wait on itself forever.
      const u8 prs1 = spec_rat_[d.rs1 & 31];
      const u8 prs2 = spec_rat_[d.rs2 & 31];

      if (writes) {
        const u8 prd = free_ring_[fl_head_ & (kFreeListEntries - 1)] &
                       (kNumPhysRegs - 1);
        fl_head_ = static_cast<u8>((fl_head_ + 1) & (kFreeListEntries - 1));
        --fl_count_;
        e.writes_reg = true;
        e.prd = prd;
        e.pold = spec_rat_[d.rd & 31];
        spec_rat_[d.rd & 31] = prd;
        prf_ready_[prd] = false;
      }

      if (is_load) {
        const u8 lid = static_cast<u8>((ldq_head_ + ldq_count_) & (kLdqEntries - 1));
        ldq_[lid] = LdqEntry{};
        ldq_[lid].valid = true;
        ldq_[lid].rob_id = rob_id;
        ++ldq_count_;
        e.ldq_id = lid;
      }
      if (is_store) {
        const u8 sid = static_cast<u8>((stq_head_ + stq_count_) & (kStqEntries - 1));
        stq_[sid] = StqEntry{};
        stq_[sid].valid = true;
        stq_[sid].rob_id = rob_id;
        ++stq_count_;
        e.stq_id = sid;
      }

      SchedEntry& s = sched_[sched_idx];
      s = SchedEntry{};
      s.valid = true;
      s.rob_id = rob_id;
      s.opcode = u.opcode & 63;
      s.imm21 = u.imm21 & 0x1FFFFF;
      s.use_rs1 = d.reads_rs1();
      s.use_rs2 = d.reads_rs2();
      s.prs1 = prs1;
      s.prs2 = prs2;
      s.rs1_ready = !s.use_rs1 || prf_ready_[prs1 & (kNumPhysRegs - 1)];
      s.rs2_ready = !s.use_rs2 || prf_ready_[prs2 & (kNumPhysRegs - 1)];
      s.writes_reg = e.writes_reg;
      s.prd = e.prd;
      s.is_load = is_load;
      s.is_store = is_store;
      s.is_branch = e.is_branch;
      s.ldq_id = e.ldq_id;
      s.stq_id = e.stq_id;
      sched_issued_[sched_idx] = false;
    }

    ++rob_count_;
    dec_head_ = static_cast<u8>((dec_head_ + 1) & (kDecodeWidth - 1));
    --dec_count_;
  }
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

void Core::do_decode() {
  if (dec_count_ != 0) return;  // rename has not consumed the current group
  dec_.fill(Uop{});
  dec_head_ = 0;
  unsigned produced = 0;
  while (produced < kDecodeWidth && fq_count_ > 0) {
    const FetchSlot& slot = fq_[fq_head_ & (kFetchQueueEntries - 1)];
    Uop u;
    u.valid = true;
    u.pc = slot.pc;
    const DecodedInst d = isa::decode(slot.raw);
    u.opcode = static_cast<u8>((slot.raw >> 26) & 63);
    u.rd = d.rd;
    u.rs1 = d.rs1;
    u.rs2 = d.rs2;
    u.imm21 = slot.raw & 0x1FFFFF;
    u.illegal = !d.valid && slot.fault == 0;
    u.fault = slot.fault;
    u.pred_taken = slot.pred_taken;
    u.pred_target = slot.pred_target;
    u.conf_high = slot.conf_high;
    u.ghist = slot.ghist;
    dec_[produced] = u;
    ++produced;
    fq_[fq_head_ & (kFetchQueueEntries - 1)] = FetchSlot{};
    fq_head_ = static_cast<u8>((fq_head_ + 1) & (kFetchQueueEntries - 1));
    --fq_count_;
  }
  dec_count_ = static_cast<u8>(produced);
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

void Core::do_fetch() {
  // Drain the oldest front-end latch stage into the fetch queue.
  auto& oldest = fb_[kFrontLatchStages - 1];
  unsigned pending = 0;
  for (const auto& slot : oldest) {
    if (slot.valid) ++pending;
  }
  if (pending > kFetchQueueEntries - fq_count_) return;  // back-pressure
  for (auto& slot : oldest) {
    if (!slot.valid) continue;
    const u8 tail = static_cast<u8>((fq_head_ + fq_count_) & (kFetchQueueEntries - 1));
    fq_[tail] = slot;
    ++fq_count_;
  }
  for (unsigned s = kFrontLatchStages - 1; s > 0; --s) fb_[s] = fb_[s - 1];
  fb_[0].fill(FetchSlot{});

  if (fetch_stalled_) return;
  if (icache_stall_ > 0) {
    --icache_stall_;
    return;
  }

  u64 pc = fetch_pc_;
  for (unsigned i = 0; i < kFetchWidth; ++i) {
    itlb_.access(pc);
    const vm::MemAccess fetched = memory_.fetch(pc);
    if (!fetched.ok()) {
      FetchSlot bad;
      bad.valid = true;
      bad.pc = pc;
      bad.fault = static_cast<u8>(fetched.fault) & 7;
      fb_[0][i] = bad;
      fetch_stalled_ = true;  // wait for a redirect
      fetch_pc_ = pc;
      return;
    }
    if (!l1i_.access(pc)) {
      icache_stall_ = static_cast<u8>(config_.l1i_miss_penalty);
      fetch_pc_ = pc;
      return;  // the missed line is now allocated; retry after the stall
    }

    FetchSlot slot;
    slot.valid = true;
    slot.pc = pc;
    slot.raw = static_cast<u32>(fetched.value);
    slot.ghist = ghist_;

    const DecodedInst d = isa::decode(slot.raw);
    u64 next = pc + 4;

    // Event-log replay: a hinted control instruction fetches with its logged
    // outcome as the prediction (perfect re-execution control flow) and is
    // never treated as a high-confidence symptom candidate. Fetch only PEEKS
    // (a small window absorbs in-flight skew); the cursor itself advances
    // non-speculatively at retirement, so wrong-path fetches cannot orphan
    // the remaining hints.
    const ReplayHint* hint = nullptr;
    if (d.valid && isa::is_control(d.op)) {
      const std::size_t window_end =
          std::min(replay_cursor_ + 8, replay_hints_.size());
      for (std::size_t i = replay_cursor_; i < window_end; ++i) {
        if (replay_hints_[i].pc == pc) {
          hint = &replay_hints_[i];
          break;
        }
      }
    }

    if (d.valid && isa::is_cond_branch(d.op)) {
      slot.is_cond = true;
      const bool pred = hint ? hint->taken : bpred_.predict(pc, ghist_);
      slot.pred_taken = pred;
      slot.pred_target = hint && hint->taken
                             ? hint->target
                             : pc + 4 + static_cast<u64>(d.imm);
      slot.conf_high = hint ? false
                            : (config_.all_mispredicts_high_conf ||
                               jrs_.high_confidence(pc, ghist_,
                                                    config_.jrs_threshold));
      ghist_ = static_cast<u16>(((ghist_ << 1) | (pred ? 1 : 0)) & kGhistMask);
      if (pred) next = slot.pred_target;
    } else if (hint != nullptr) {
      // Hinted jal/jalr: follow the logged target directly.
      slot.pred_taken = true;
      slot.pred_target = hint->target;
      if (d.op == Opcode::kJal && d.rd != isa::kZeroReg) ras_.push(pc + 4);
      next = slot.pred_target;
    } else if (d.valid && d.op == Opcode::kJal) {
      slot.pred_taken = true;
      slot.pred_target = pc + 4 + static_cast<u64>(d.imm);
      if (d.rd != isa::kZeroReg) ras_.push(pc + 4);  // call
      next = slot.pred_target;
    } else if (d.valid && d.op == Opcode::kJalr) {
      slot.pred_taken = true;
      const bool is_return = d.rd == isa::kZeroReg && d.rs1 == 29;
      if (is_return && !ras_.empty()) {
        slot.pred_target = ras_.pop();
      } else {
        if (d.rd != isa::kZeroReg) ras_.push(pc + 4);  // indirect call
        slot.pred_target = btb_.lookup(pc).value_or(pc + 4);
      }
      next = slot.pred_target;
    }

    fb_[0][i] = slot;
    pc = next;
    if (slot.pred_taken) break;  // redirected: next group starts at the target
  }
  fetch_pc_ = pc;
}

// ---------------------------------------------------------------------------
// Behavioural equality
// ---------------------------------------------------------------------------

bool Core::state_equal(const Core& other) const noexcept {
  // Cheap, high-discrimination scalars first: any timing perturbation shows
  // up in the cycle-aligned counters long before the big arrays differ.
  if (cycle_count_ != other.cycle_count_ ||
      retired_total_ != other.retired_total_ || status_ != other.status_ ||
      fault_ != other.fault_ || commit_pc_ != other.commit_pc_ ||
      fetch_pc_ != other.fetch_pc_ || ghist_ != other.ghist_ ||
      watchdog_ != other.watchdog_ || fetch_stalled_ != other.fetch_stalled_ ||
      icache_stall_ != other.icache_stall_) {
    return false;
  }
  if (fq_head_ != other.fq_head_ || fq_count_ != other.fq_count_ ||
      dec_head_ != other.dec_head_ || dec_count_ != other.dec_count_ ||
      fl_head_ != other.fl_head_ || fl_tail_ != other.fl_tail_ ||
      fl_count_ != other.fl_count_ || ldq_head_ != other.ldq_head_ ||
      ldq_count_ != other.ldq_count_ || stq_head_ != other.stq_head_ ||
      stq_count_ != other.stq_count_ || rob_head_ != other.rob_head_ ||
      rob_count_ != other.rob_count_) {
    return false;
  }
  if (!(counters_ == other.counters_)) return false;
  if (l1i_.hits() != other.l1i_.hits() || l1i_.misses() != other.l1i_.misses() ||
      l1d_.hits() != other.l1d_.hits() || l1d_.misses() != other.l1d_.misses() ||
      itlb_.misses() != other.itlb_.misses() ||
      dtlb_.misses() != other.dtlb_.misses()) {
    return false;
  }

  // Registered machine state (where injected flips live).
  if (spec_rat_ != other.spec_rat_ || arch_rat_ != other.arch_rat_ ||
      free_ring_ != other.free_ring_ || prf_ready_ != other.prf_ready_ ||
      sched_issued_ != other.sched_issued_) {
    return false;
  }
  if (sched_ != other.sched_ || exec_ != other.exec_ || ldq_ != other.ldq_ ||
      stq_ != other.stq_ || rob_ != other.rob_ || fq_ != other.fq_ ||
      fb_ != other.fb_ || dec_ != other.dec_ || prf_ != other.prf_) {
    return false;
  }

  // Timing/steering state a flip perturbs only indirectly.
  if (!(bpred_ == other.bpred_) || !(btb_ == other.btb_) ||
      !(ras_ == other.ras_) || !(jrs_ == other.jrs_) ||
      !(l1i_ == other.l1i_) || !(l1d_ == other.l1d_) ||
      !(itlb_ == other.itlb_) || !(dtlb_ == other.dtlb_)) {
    return false;
  }

  // Detector-internal bookkeeping and architectural side effects.
  if (burst_last_misses_ != other.burst_last_misses_ ||
      burst_cycles_ != other.burst_cycles_ ||
      burst_misses_ != other.burst_misses_ ||
      replay_cursor_ != other.replay_cursor_ ||
      replay_hints_ != other.replay_hints_ || output_ != other.output_) {
    return false;
  }

  // Memory last: digest equality, the campaign's memory-comparison
  // convention. Per-page digest caches make repeated checks cheap.
  return memory_.digest() == other.memory_.digest();
}

}  // namespace restore::uarch
