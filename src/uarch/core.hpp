// The detailed out-of-order core (the paper's §4.1 processor model).
//
// A superscalar, dynamically-scheduled SRA-64 pipeline: 4-wide fetch with a
// McFarling combining predictor, BTB, return-address stack and JRS confidence
// estimator; a 32-entry fetch queue; 4-wide decode and rename (spec/arch RAT
// + free list); a 32-entry scheduler issuing up to 6 ops/cycle (3 ALU, 1
// branch, 2 memory); a 128-entry physical register file; load/store queues
// with store-to-load forwarding; a 64-entry ROB retiring 4/cycle; timing-only
// L1 caches and TLBs; and a watchdog timer.
//
// Design constraints driven by fault injection (DESIGN.md §4):
//  * The whole Core has value semantics: a trial snapshot is a plain copy.
//    Memory is copy-on-write (vm::PagedMemory), so a snapshot costs
//    O(mapped pages) regardless of footprint, and campaign workers may fork
//    trial cores from one quiescent golden snapshot concurrently.
//  * All machine state lives in fixed-size arrays of explicit-width fields;
//    the StateRegistry (state_registry.hpp) enumerates every injectable bit.
//  * Every array index is masked at use, so arbitrarily corrupted state
//    steers execution (possibly into a wedge the watchdog catches) but never
//    into undefined behaviour of the simulator itself.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/types.hpp"
#include "isa/program.hpp"
#include "uarch/caches.hpp"
#include "uarch/config.hpp"
#include "uarch/predictors.hpp"
#include "uarch/uop.hpp"
#include "vm/memory.hpp"
#include "vm/retired.hpp"
#include "vm/vm.hpp"

namespace restore::uarch {

// A detection event surfaced to the ReStore layer (paper §3.3): the two
// chosen symptoms plus the watchdog, with the retire-stream position at which
// the event fired (used to measure error-to-symptom latency).
struct SymptomEvent {
  enum class Kind : u8 {
    kException,            // ISA exception reached retirement
    kMispredict,           // any resolved control-flow misprediction
    kHighConfMispredict,   // misprediction the JRS predictor called high-confidence
    kWatchdog,             // watchdog timer saturated (deadlock/livelock)
    kIllegalFlow,          // retired control transfer is not a legal successor
    kCacheMissBurst,       // L1D miss burst (extension symptom, §3.3)
  };
  Kind kind = Kind::kException;
  isa::ExceptionKind fault = isa::ExceptionKind::kNone;
  u64 retired_count = 0;  // instructions retired when the event fired
};

// A control-flow outcome recorded before a rollback and fed back to fetch
// during re-execution (the paper's event-log "perfect prediction of control
// flow", §5.2.3).
struct ReplayHint {
  u64 pc = 0;
  bool taken = false;
  u64 target = 0;

  bool operator==(const ReplayHint&) const noexcept = default;
};

class Core {
 public:
  enum class Status : u8 {
    kRunning,
    kHalted,      // retired HALT
    kFaulted,     // retired an instruction with an ISA exception
    kDeadlocked,  // watchdog saturated
  };

  explicit Core(const isa::Program& program, const CoreConfig& config = {});

  // Advance one clock cycle. No-op unless running. Throws BudgetExceeded when
  // a resource budget installed via set_resource_budget is already spent.
  void cycle();

  // Run until not running or `max_cycles` more cycles elapse; returns cycles.
  u64 run(u64 max_cycles);

  // Install an *absolute* resource budget (limits compare against
  // cycle_count()/retired_count(), 0 = unlimited): cycle() throws
  // BudgetExceeded once a limit is reached, and the page limit is enforced by
  // the memory itself. The fault-injection containment boundary uses this to
  // bound runaway trials deterministically; a default (empty) budget costs
  // two compares per cycle and can never fire.
  void set_resource_budget(const ResourceBudget& budget) noexcept {
    budget_ = budget;
    memory_.set_page_budget(budget.max_pages);
  }
  const ResourceBudget& resource_budget() const noexcept { return budget_; }

  Status status() const noexcept { return status_; }
  bool running() const noexcept { return status_ == Status::kRunning; }
  isa::ExceptionKind fault() const noexcept { return fault_; }

  u64 cycle_count() const noexcept { return cycle_count_; }
  u64 retired_count() const noexcept { return retired_total_; }
  const std::string& output() const noexcept { return output_; }

  // Records retired during the most recent cycle() (at most kRetireWidth).
  std::span<const vm::Retired> retired_this_cycle() const noexcept {
    return {retired_buf_.data(), retired_buf_count_};
  }
  // Symptom events raised during the most recent cycle().
  std::span<const SymptomEvent> symptoms_this_cycle() const noexcept {
    return {symptom_buf_.data(), symptom_buf_count_};
  }

  // Architectural state at the current retirement boundary (what ReStore's
  // checkpoint hardware snapshots).
  vm::ArchSnapshot arch_snapshot() const noexcept;

  // Restore architectural state and flush all microarchitectural state —
  // ReStore's checkpoint restoration. Memory is NOT touched (the checkpoint
  // store replays its undo log through memory() separately). Predictor state
  // survives, as it would in hardware.
  void reset_to(const vm::ArchSnapshot& snapshot);

  // Install event-log replay hints: while any remain, fetch predicts hinted
  // control instructions with the logged outcome (and marks them low
  // confidence so they cannot re-trigger symptoms). Hints are consumed in
  // order as fetch encounters matching pcs; reset_to() clears them.
  void set_replay_hints(std::vector<ReplayHint> hints);
  std::size_t replay_hints_remaining() const noexcept {
    return replay_hints_.size() - std::min<std::size_t>(replay_cursor_,
                                                        replay_hints_.size());
  }

  vm::PagedMemory& memory() noexcept { return memory_; }
  const vm::PagedMemory& memory() const noexcept { return memory_; }

  const CoreConfig& config() const noexcept { return config_; }

  // Performance counters (branch behaviour feeds the Fig. 7 overhead model).
  struct Counters {
    u64 cond_branches = 0;
    u64 cond_mispredicts = 0;
    u64 high_conf_mispredicts = 0;
    u64 l1d_misses = 0;
    u64 flushes = 0;

    bool operator==(const Counters&) const noexcept = default;
  };
  const Counters& counters() const noexcept { return counters_; }

  // Exact behavioural equality with another core of the same program and
  // config: every piece of state that can influence future execution or a
  // trial record — registered machine state, predictors, caches, TLBs,
  // performance counters, architectural output, cycle/retire counts and
  // memory contents — compared cheapest-and-most-discriminating first so
  // unequal cores exit early. Excluded on purpose: the per-cycle
  // retired/symptom buffers (scratch, recomputed by the next cycle()) and the
  // installed resource budget (callers gate on matching budgets). Memory is
  // compared by digest, the campaign's existing convention for memory
  // equality. If this returns true, both cores produce bit-identical
  // behaviour for every future cycle.
  bool state_equal(const Core& other) const noexcept;

  // ---- Machine state (public: enumerated by StateRegistry, examined by
  // tests; treat as read-only outside uarch/faultinject). ----

  // Front end.
  u64 fetch_pc_ = 0;
  bool fetch_stalled_ = false;  // waiting for redirect after a fetch fault
  u8 icache_stall_ = 0;         // remaining I-cache miss stall cycles
  std::array<std::array<FetchSlot, kFetchWidth>, kFrontLatchStages> fb_{};
  std::array<FetchSlot, kFetchQueueEntries> fq_{};
  u8 fq_head_ = 0;
  u8 fq_count_ = 0;
  std::array<Uop, kDecodeWidth> dec_{};
  u8 dec_head_ = 0;   // next unconsumed decode slot
  u8 dec_count_ = 0;  // valid slots remaining
  u16 ghist_ = 0;

  // Rename.
  std::array<u8, isa::kNumArchRegs> spec_rat_{};
  std::array<u8, isa::kNumArchRegs> arch_rat_{};
  std::array<u8, kFreeListEntries> free_ring_{};
  u8 fl_head_ = 0;
  u8 fl_tail_ = 0;
  u8 fl_count_ = 0;

  // Physical register file + ready bits.
  std::array<u64, kNumPhysRegs> prf_{};
  std::array<bool, kNumPhysRegs> prf_ready_{};

  // Scheduler, with an issued flag per entry (cleared on replay).
  std::array<SchedEntry, kSchedEntries> sched_{};
  std::array<bool, kSchedEntries> sched_issued_{};

  // Execution pipelines.
  std::array<ExecSlot, kExecSlots> exec_{};

  // Load/store queues.
  std::array<LdqEntry, kLdqEntries> ldq_{};
  u8 ldq_head_ = 0;
  u8 ldq_count_ = 0;
  std::array<StqEntry, kStqEntries> stq_{};
  u8 stq_head_ = 0;
  u8 stq_count_ = 0;

  // Reorder buffer.
  std::array<RobEntry, kRobEntries> rob_{};
  u8 rob_head_ = 0;
  u8 rob_count_ = 0;

  // Retirement-boundary pc (pc of the next instruction to retire).
  u64 commit_pc_ = 0;

  // Watchdog.
  u16 watchdog_ = 0;

  // Event-log replay hints (detector-internal; not injectable).
  std::vector<ReplayHint> replay_hints_;
  std::size_t replay_cursor_ = 0;

  // Cache-burst symptom bookkeeping (detector-internal; not injectable).
  u64 burst_last_misses_ = 0;
  u16 burst_cycles_ = 0;
  u16 burst_misses_ = 0;

 private:
  // ---- pipeline stages (called in reverse order by cycle()) ----
  void do_retire();
  void do_writeback();
  void do_select();
  void do_rename();
  void do_decode();
  void do_fetch();

  // Branch resolution helpers.
  void resolve_branch(const ExecSlot& slot, RobEntry& entry);
  void recover_from(u8 branch_rob_id, u64 correct_pc, u16 ghist_after);
  void flush_frontend();

  // Rob-index age relative to the current head (0 = oldest). kRobEntries is a
  // power of two, so the mask is exact.
  u32 rob_age(u8 rob_id) const noexcept {
    return (static_cast<u32>(rob_id & (kRobEntries - 1)) + kRobEntries -
            (rob_head_ & (kRobEntries - 1))) &
           (kRobEntries - 1);
  }

  // Store-queue scan for a load at `addr`/`bytes` with ROB age `load_age`.
  // Returns: 0 = no conflict (use memory), 1 = full forward (value in *fwd),
  // 2 = partial overlap (must replay until the store drains).
  int scan_stq(u64 addr, unsigned bytes, u32 load_age, u64* fwd) const noexcept;

  // Youngest-possible age bound: the minimum ROB age over valid stores whose
  // address is still unknown (kRobEntries when none). A load of age L may
  // issue iff L <= this bound. Recomputed from scratch each select — derived
  // state must never persist across cycles, where an injected flip could
  // silently invalidate it.
  u32 min_unknown_store_age() const noexcept;

  // Write a completed result to the PRF and broadcast the wakeup.
  void complete_write(u8 prd, u64 value);

  void emit_symptom(SymptomEvent::Kind kind, isa::ExceptionKind fault);
  void append_retired(const vm::Retired& record);
  void check_control_flow(const vm::Retired& record);

  CoreConfig config_;
  ResourceBudget budget_;  // absolute limits; empty = unlimited
  vm::PagedMemory memory_;
  Status status_ = Status::kRunning;
  isa::ExceptionKind fault_ = isa::ExceptionKind::kNone;
  std::string output_;

  u64 cycle_count_ = 0;
  u64 retired_total_ = 0;
  Counters counters_;

  // Predictors (timing/steering state; excluded from fault injection).
  BranchPredictor bpred_;
  Btb btb_;
  ReturnAddressStack ras_;
  JrsConfidence jrs_;
  TagCache l1i_{6, 7};  // 64B lines, 128 lines = 8 KiB
  TagCache l1d_{6, 8};  // 64B lines, 256 lines = 16 KiB
  Tlb itlb_;
  Tlb dtlb_;

  // Per-cycle output buffers.
  std::array<vm::Retired, kRetireWidth> retired_buf_{};
  std::size_t retired_buf_count_ = 0;
  std::array<SymptomEvent, 8> symptom_buf_{};
  std::size_t symptom_buf_count_ = 0;

  friend struct CoreStateAccess;  // state_registry.cpp
};

}  // namespace restore::uarch
