// Pipeline payload types ("control words" in the paper's terminology).
// These are the latch-resident structures whose bits the fault injector can
// flip, so fields are stored at their logical widths and consumers mask
// indices at use.
#pragma once

#include "common/types.hpp"
#include "isa/exception.hpp"
#include "uarch/config.hpp"

namespace restore::uarch {

// A fetched (not yet decoded) instruction plus its prediction metadata.
// Lives in the fetch-stage latches and the fetch queue.
struct FetchSlot {
  bool valid = false;
  u64 pc = 0;
  u32 raw = 0;             // raw instruction word
  bool pred_taken = false;
  u64 pred_target = 0;
  bool is_cond = false;    // predecoded: conditional branch
  bool conf_high = false;  // JRS confidence for conditional predictions
  u16 ghist = 0;           // global-history snapshot at prediction time
  u8 fault = 0;            // fetch-side exception (isa::ExceptionKind, 3 bits)

  bool operator==(const FetchSlot&) const noexcept = default;
};

// A decoded, renamed micro-op. Lives in the decode/rename latches and (in
// part) in the scheduler. Execution uses these latched fields, not the raw
// instruction word, so corruption here propagates exactly as a latch flip in
// a real decode/rename packet would.
struct Uop {
  bool valid = false;
  u64 pc = 0;
  u8 opcode = 0;   // 6-bit primary opcode
  u8 rd = 31;      // architectural registers (5 bits each)
  u8 rs1 = 31;
  u8 rs2 = 31;
  u32 imm21 = 0;   // low 21 raw bits: imm16 for most formats, disp21 for JAL
  bool illegal = false;  // decoder marked the encoding ISA-illegal
  u8 fault = 0;          // fetch-side exception carried from the fetch slot

  // Prediction metadata carried from fetch.
  bool pred_taken = false;
  u64 pred_target = 0;
  bool conf_high = false;
  u16 ghist = 0;

  bool operator==(const Uop&) const noexcept = default;
};

// Scheduler (issue-queue) entry.
struct SchedEntry {
  bool valid = false;
  u8 rob_id = 0;   // 6 bits
  u8 opcode = 0;   // 6 bits
  u8 prs1 = 0;     // 7 bits
  u8 prs2 = 0;
  u8 prd = 0;
  bool use_rs1 = false;
  bool use_rs2 = false;
  bool rs1_ready = false;
  bool rs2_ready = false;
  bool writes_reg = false;
  u32 imm21 = 0;   // 21 bits
  u8 ldq_id = 0;   // 4 bits
  u8 stq_id = 0;   // 4 bits
  bool is_load = false;
  bool is_store = false;
  bool is_branch = false;  // any control op

  bool operator==(const SchedEntry&) const noexcept = default;
};

// Reorder-buffer entry.
struct RobEntry {
  bool valid = false;
  bool done = false;
  u64 pc = 0;
  u8 opcode = 0;        // 6 bits
  u8 rd = 31;           // 5 bits (31 = no destination)
  bool writes_reg = false;
  u8 prd = 0;           // 7 bits: new mapping
  u8 pold = 0;          // 7 bits: previous mapping of rd
  u8 fault = 0;         // isa::ExceptionKind, 3 bits
  bool is_store = false;
  u8 stq_id = 0;        // 4 bits
  bool is_load = false;
  u8 ldq_id = 0;
  bool is_branch = false;     // any control op
  bool is_cond = false;
  bool pred_taken = false;
  u64 pred_target = 0;        // predicted target carried from fetch
  bool actual_taken = false;
  u64 actual_target = 0;      // next_pc after this instruction
  bool mispredicted = false;
  bool conf_high = false;
  u16 ghist = 0;              // history snapshot for predictor update
  bool is_out = false;        // OUT instruction
  bool is_halt = false;
  bool is_sync = false;       // synchronizing instruction

  bool operator==(const RobEntry&) const noexcept = default;
};

// Load-queue entry.
struct LdqEntry {
  bool valid = false;
  u8 rob_id = 0;
  bool addr_valid = false;
  u64 addr = 0;
  u8 size_log2 = 0;  // 2 bits: access size = 1 << size_log2

  bool operator==(const LdqEntry&) const noexcept = default;
};

// Store-queue entry.
struct StqEntry {
  bool valid = false;
  u8 rob_id = 0;
  bool addr_valid = false;
  u64 addr = 0;
  u8 size_log2 = 0;
  u64 data = 0;

  bool operator==(const StqEntry&) const noexcept = default;
};

// An op in flight in an execution pipeline (issued, counting down latency).
struct ExecSlot {
  bool valid = false;
  u8 rob_id = 0;
  u8 sched_id = 0;  // 5 bits: scheduler entry to free on completion
  u8 opcode = 0;
  u8 prd = 0;
  u64 val1 = 0;  // operand values read at register-read
  u64 val2 = 0;
  u32 imm21 = 0;
  bool writes_reg = false;
  u8 remaining = 0;  // cycles until completion (5 bits)
  bool is_load = false;
  bool is_store = false;
  bool is_branch = false;
  u8 ldq_id = 0;
  u8 stq_id = 0;

  bool operator==(const ExecSlot&) const noexcept = default;
};

}  // namespace restore::uarch
