// Non-invasive pipeline profiler: samples structure occupancy and attributes
// stall cycles by observing a Core between cycles. Used by the pipeview tool
// and by performance debugging of the workloads.
#pragma once

#include <array>
#include <iosfwd>
#include <string>

#include "common/stats.hpp"
#include "uarch/core.hpp"

namespace restore::uarch {

class PipelineStats {
 public:
  // Sample the core's state after a cycle() call.
  void observe(const Core& core);

  u64 cycles() const noexcept { return cycles_; }
  u64 retired() const noexcept { return retired_; }
  double ipc() const noexcept {
    return cycles_ ? static_cast<double>(retired_) / cycles_ : 0.0;
  }

  // Mean occupancy of each major structure.
  const OnlineStats& rob_occupancy() const noexcept { return rob_; }
  const OnlineStats& sched_occupancy() const noexcept { return sched_; }
  const OnlineStats& fq_occupancy() const noexcept { return fq_; }
  const OnlineStats& ldq_occupancy() const noexcept { return ldq_; }
  const OnlineStats& stq_occupancy() const noexcept { return stq_; }
  const OnlineStats& exec_occupancy() const noexcept { return exec_; }

  // Retirement-slot utilisation: distribution of instructions retired per
  // cycle (0..kRetireWidth).
  const std::array<u64, kRetireWidth + 1>& retire_histogram() const noexcept {
    return retire_hist_;
  }

  // Cycles in which nothing retired, attributed to the observable cause.
  struct StallBreakdown {
    u64 rob_empty = 0;        // nothing in flight (front-end starvation)
    u64 head_executing = 0;   // oldest instruction still executing
    u64 machine_stopped = 0;  // halted/faulted/deadlocked
  };
  const StallBreakdown& stalls() const noexcept { return stalls_; }

  // Human-readable summary report.
  std::string report() const;

  // CSV time series of occupancies (one row per `stride` cycles). Must be
  // enabled before observing.
  void enable_timeline(unsigned stride) { timeline_stride_ = stride; }
  void write_timeline_csv(std::ostream& out) const;

 private:
  u64 cycles_ = 0;
  u64 retired_ = 0;
  OnlineStats rob_, sched_, fq_, ldq_, stq_, exec_;
  std::array<u64, kRetireWidth + 1> retire_hist_{};
  StallBreakdown stalls_;

  unsigned timeline_stride_ = 0;
  struct TimelinePoint {
    u64 cycle = 0;
    u8 rob = 0, sched = 0, fq = 0, ldq = 0, stq = 0, exec = 0;
  };
  std::vector<TimelinePoint> timeline_;
};

}  // namespace restore::uarch
