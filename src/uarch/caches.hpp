// Timing-only L1 caches and TLBs.
//
// Data always comes from the backing memory image (or store-queue
// forwarding); the caches model hit/miss *timing* only. This keeps the
// memory hierarchy trivially coherent with the store queue while preserving
// the performance behaviour (and the cache-miss events the paper lists among
// candidate symptoms, §3.3). Cache and TLB arrays are excluded from fault
// injection, matching the paper: "we chose to exclude caches ... since caches
// are easily protected by ECC or parity" (§4.2).
#pragma once

#include <array>

#include "common/types.hpp"

namespace restore::uarch {

// Direct-mapped tag store; `access` returns true on hit and allocates the
// line on miss.
class TagCache {
 public:
  TagCache(unsigned line_bytes_log2, unsigned num_lines_log2) noexcept
      : line_shift_(line_bytes_log2), lines_log2_(num_lines_log2) {}

  bool access(u64 address) noexcept;
  void invalidate_all() noexcept;
  u64 hits() const noexcept { return hits_; }
  u64 misses() const noexcept { return misses_; }

  bool operator==(const TagCache&) const noexcept = default;

 private:
  static constexpr unsigned kMaxLines = 512;
  struct Line {
    bool valid = false;
    u64 tag = 0;

    bool operator==(const Line&) const noexcept = default;
  };
  unsigned line_shift_;
  unsigned lines_log2_;
  std::array<Line, kMaxLines> lines_{};
  u64 hits_ = 0;
  u64 misses_ = 0;
};

// Fully-functional-translation, timing-only TLB (translation in this machine
// is identity; the TLB models reach misses only).
class Tlb {
 public:
  bool access(u64 address) noexcept;  // true on hit
  u64 misses() const noexcept { return misses_; }

  bool operator==(const Tlb&) const noexcept = default;

 private:
  static constexpr unsigned kEntries = 32;
  struct Entry {
    bool valid = false;
    u64 vpn = 0;

    bool operator==(const Entry&) const noexcept = default;
  };
  std::array<Entry, kEntries> entries_{};
  u8 next_victim_ = 0;
  u64 misses_ = 0;
};

}  // namespace restore::uarch
