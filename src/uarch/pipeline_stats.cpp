#include "uarch/pipeline_stats.hpp"

#include <ostream>
#include <sstream>

namespace restore::uarch {

void PipelineStats::observe(const Core& core) {
  ++cycles_;
  const std::size_t retired_now = core.retired_this_cycle().size();
  retired_ += retired_now;
  retire_hist_[std::min<std::size_t>(retired_now, kRetireWidth)]++;

  unsigned sched_valid = 0;
  for (const auto& e : core.sched_) sched_valid += e.valid ? 1 : 0;
  unsigned exec_valid = 0;
  for (const auto& e : core.exec_) exec_valid += e.valid ? 1 : 0;

  rob_.add(core.rob_count_);
  sched_.add(sched_valid);
  fq_.add(core.fq_count_);
  ldq_.add(core.ldq_count_);
  stq_.add(core.stq_count_);
  exec_.add(exec_valid);

  if (retired_now == 0) {
    if (!core.running()) {
      ++stalls_.machine_stopped;
    } else if (core.rob_count_ == 0) {
      ++stalls_.rob_empty;
    } else {
      ++stalls_.head_executing;
    }
  }

  if (timeline_stride_ != 0 && cycles_ % timeline_stride_ == 0) {
    timeline_.push_back({cycles_, core.rob_count_,
                         static_cast<u8>(sched_valid), core.fq_count_,
                         core.ldq_count_, core.stq_count_,
                         static_cast<u8>(exec_valid)});
  }
}

std::string PipelineStats::report() const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(2);
  out << "cycles=" << cycles_ << " retired=" << retired_ << " ipc=" << ipc()
      << "\n";
  out << "occupancy (mean/max): rob " << rob_.mean() << "/" << rob_.max()
      << "  sched " << sched_.mean() << "/" << sched_.max() << "  fq "
      << fq_.mean() << "/" << fq_.max() << "  ldq " << ldq_.mean() << "/"
      << ldq_.max() << "  stq " << stq_.mean() << "/" << stq_.max() << "  exec "
      << exec_.mean() << "/" << exec_.max() << "\n";
  out << "retire slots:";
  for (unsigned i = 0; i <= kRetireWidth; ++i) {
    out << "  " << i << "-wide "
        << (cycles_ ? 100.0 * retire_hist_[i] / cycles_ : 0.0) << "%";
  }
  out << "\n";
  out << "no-retire cycles: frontend-starved "
      << (cycles_ ? 100.0 * stalls_.rob_empty / cycles_ : 0.0)
      << "%  head-executing "
      << (cycles_ ? 100.0 * stalls_.head_executing / cycles_ : 0.0) << "%\n";
  return out.str();
}

void PipelineStats::write_timeline_csv(std::ostream& out) const {
  out << "cycle,rob,sched,fq,ldq,stq,exec\n";
  for (const auto& p : timeline_) {
    out << p.cycle << ',' << unsigned(p.rob) << ',' << unsigned(p.sched) << ','
        << unsigned(p.fq) << ',' << unsigned(p.ldq) << ',' << unsigned(p.stq)
        << ',' << unsigned(p.exec) << '\n';
  }
}

}  // namespace restore::uarch
