#include "core/event_log.hpp"

namespace restore::core {

EventLog::EventLog(std::size_t capacity) : capacity_(capacity) {}

void EventLog::record(const vm::Retired& record, u64 retired_index) {
  if (!record.is_ctrl) return;
  log_.push_back({retired_index, record.pc, record.taken, record.next_pc});
  while (log_.size() > capacity_) {
    log_.pop_front();
    if (replay_cursor_ > 0) --replay_cursor_;
  }
}

void EventLog::begin_replay(u64 from_retired_index, u64 until_retired_index) {
  replaying_ = true;
  replay_end_stamp_ = until_retired_index;
  replay_cursor_ = 0;
  while (replay_cursor_ < log_.size() &&
         log_[replay_cursor_].retired_index <= from_retired_index) {
    ++replay_cursor_;
  }
}

bool EventLog::compare(const vm::Retired& record) {
  if (!record.is_ctrl) return true;
  if (replay_cursor_ >= log_.size() ||
      log_[replay_cursor_].retired_index > replay_end_stamp_) {
    return true;  // past the original pass over the rollback region
  }
  const BranchOutcome& logged = log_[replay_cursor_++];
  ++compared_;
  const bool match = logged.pc == record.pc && logged.taken == record.taken &&
                     logged.target == record.next_pc;
  if (!match) ++mismatches_;
  return match;
}

void EventLog::end_replay() {
  replaying_ = false;
  replay_cursor_ = 0;
  replay_end_stamp_ = 0;
}

void EventLog::clear() {
  log_.clear();
  replaying_ = false;
  replay_cursor_ = 0;
  replay_end_stamp_ = 0;
}

}  // namespace restore::core
