// ReStoreCore — the ReStore processor architecture (the paper's primary
// contribution, §2-§3): an out-of-order core augmented with periodic
// architectural checkpoints and symptom-triggered rollback.
//
//   * Checkpoints every n retired instructions, two live at a time.
//   * Symptoms: ISA exceptions, high-confidence branch mispredictions (JRS),
//     and watchdog saturation. Each can be enabled independently.
//   * Rollback policies: immediate (roll back as soon as a symptom fires) or
//     delayed (finish the current checkpoint interval first) — the `imm` and
//     `delayed` configurations of Figure 7.
//   * Exceptions that recur at the same pc after rollback are genuine and are
//     delivered architecturally (§3.2.1).
//   * The event log compares original and redundant executions, counting
//     detected soft errors, and drives dynamic false-positive throttling
//     (§3.2.3): a burst of rollbacks without detected errors temporarily
//     disables the control-flow symptom.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/event_log.hpp"
#include "uarch/core.hpp"

namespace restore::core {

enum class RollbackPolicy : u8 {
  kImmediate,  // roll back upon symptom discovery
  kDelayed,    // defer rollback to the end of the current interval
};

struct ReStoreOptions {
  u64 checkpoint_interval = 100;  // instructions (paper: 10..1000)
  unsigned live_checkpoints = 2;
  RollbackPolicy policy = RollbackPolicy::kImmediate;

  bool exception_symptom = true;
  bool branch_symptom = true;  // high-confidence mispredictions
  bool watchdog_symptom = true;
  // Extension symptoms (require the matching CoreConfig flags):
  bool illegal_flow_symptom = false;  // control-flow monitoring watchdog
  bool cache_symptom = false;         // L1D miss bursts (§3.3 candidate)

  // Feed the event log back to fetch during re-execution so re-executed
  // control flow predicts perfectly (the paper's §5.2.3 idealisation). Turn
  // off to measure the conservative no-hint replay.
  bool event_log_replay = true;

  // Checkpoint hardware cost. The paper models ideal zero-latency
  // checkpoint/restore (§4.3); these knobs quantify what real hardware would
  // add: the machine stalls for `checkpoint_latency_cycles` at every
  // checkpoint creation and `restore_latency_cycles` on every rollback.
  unsigned checkpoint_latency_cycles = 0;
  unsigned restore_latency_cycles = 0;

  // A recurring exception at the same pc is genuine after this many rollback
  // attempts (paper suggests re-executing "a third time" to be sure; 1 means
  // one rollback + one recurrence decides).
  unsigned max_exception_retries = 1;

  // Dynamic throttling (§3.2.3): if more than `throttle_max_rollbacks`
  // branch-symptom rollbacks occur within `throttle_window` retired
  // instructions, ignore branch symptoms for `throttle_penalty` instructions.
  u64 throttle_window = 2'000;
  u64 throttle_max_rollbacks = 4;
  u64 throttle_penalty = 10'000;
};

class ReStoreCore {
 public:
  enum class Status : u8 {
    kRunning,
    kHalted,             // program completed
    kArchitectedFault,   // genuine exception delivered after verification
  };

  ReStoreCore(const isa::Program& program, const ReStoreOptions& options = {},
              uarch::CoreConfig core_config = {});

  // Advance one cycle (checkpointing, symptom handling, rollback included).
  void cycle();
  u64 run(u64 max_cycles);

  Status status() const noexcept { return status_; }
  bool running() const noexcept { return status_ == Status::kRunning; }
  isa::ExceptionKind architected_fault() const noexcept { return genuine_fault_; }

  // Program output with rollback-aware staging: bytes emitted between a
  // symptom and its rollback are discarded and re-emitted by the replay, so
  // the device sees each byte exactly once.
  std::string output() const;
  // Total cycles including checkpoint/restore stall cycles.
  u64 cycle_count() const noexcept { return core_.cycle_count() + stall_cycles_; }
  u64 stall_cycles() const noexcept { return stall_cycles_; }
  // Cumulative retirements, including re-executed instructions.
  u64 retired_count() const noexcept { return core_.retired_count(); }

  // Direct access to the underlying machine (fault injection in tests/bench).
  uarch::Core& core() noexcept { return core_; }
  const uarch::Core& core() const noexcept { return core_; }
  const CheckpointManager& checkpoints() const noexcept { return checkpoints_; }
  const EventLog& event_log() const noexcept { return event_log_; }

  struct Stats {
    u64 rollbacks = 0;
    u64 exception_rollbacks = 0;
    u64 branch_rollbacks = 0;
    u64 watchdog_rollbacks = 0;
    u64 illegal_flow_rollbacks = 0;
    u64 cache_rollbacks = 0;
    u64 genuine_exceptions = 0;
    u64 detected_errors = 0;   // event-log mismatches between executions
    u64 throttle_engagements = 0;
    u64 reexecuted_insns = 0;  // total rollback distance
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  void handle_symptoms();
  bool handle_speculative_symptom(uarch::SymptomEvent::Kind kind);
  void do_rollback(uarch::SymptomEvent::Kind reason);
  bool branch_symptoms_active() const noexcept;

  ReStoreOptions options_;
  uarch::Core core_;
  CheckpointManager checkpoints_;
  EventLog event_log_;
  Status status_ = Status::kRunning;
  isa::ExceptionKind genuine_fault_ = isa::ExceptionKind::kNone;
  Stats stats_;

  // Replay window: until this cumulative retirement count, the event log
  // provides outcomes and control-flow symptoms are suppressed (the paper's
  // perfect re-execution prediction).
  u64 replay_until_ = 0;

  // Pending delayed rollback.
  std::optional<uarch::SymptomEvent::Kind> pending_rollback_;

  // Exception verification: a rollback triggered by an exception remembers
  // where it fired; recurrence at the same pc is genuine.
  struct PendingException {
    u64 pc = 0;
    isa::ExceptionKind kind = isa::ExceptionKind::kNone;
    unsigned retries = 0;
  };
  std::optional<PendingException> pending_exception_;

  // Output staging: (cumulative retirement index, byte).
  std::vector<std::pair<u64, u8>> staged_output_;

  // Checkpoint-hardware stall accounting.
  u64 stall_cycles_ = 0;
  unsigned pending_stall_ = 0;

  // Throttling state.
  u64 recent_branch_rollbacks_ = 0;
  u64 throttle_window_start_ = 0;
  u64 throttle_off_until_ = 0;
};

}  // namespace restore::core
