// Event log (paper §3.2.3): records the control-flow events leading up to a
// symptom so that the original and redundant (post-rollback) executions can
// be compared. A mismatch between logged and re-executed branch outcomes is a
// *detected* soft error, enabling error logging and the dynamic tuning of the
// coverage/performance trade-off. The log also stands in for the paper's
// "perfect prediction of control flow" during re-execution (Load Value Queue
// style input replication is unnecessary here because stores drain at retire).
#pragma once

#include <deque>
#include <vector>

#include "common/types.hpp"
#include "vm/retired.hpp"

namespace restore::core {

struct BranchOutcome {
  u64 retired_index = 0;  // cumulative retirement count of this instruction
  u64 pc = 0;
  bool taken = false;
  u64 target = 0;

  bool operator==(const BranchOutcome&) const = default;
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 4096);

  // Append the control-flow outcome of a retired instruction (no-op for
  // non-control instructions). `retired_index` is the cumulative retirement
  // count of the instruction. Recording continues during replay — the
  // re-executed pass appends with its own (larger) stamps, keeping the
  // history gap-free across nested rollbacks.
  void record(const vm::Retired& record, u64 retired_index);

  // --- re-execution ---
  // Switch to replay mode: compare against logged outcomes with
  // from_retired_index < stamp <= until_retired_index (the original pass over
  // the rollback region).
  void begin_replay(u64 from_retired_index, u64 until_retired_index);
  bool replaying() const noexcept { return replaying_; }

  // Compare a re-executed retirement against the log. Returns true when the
  // outcome matches (or the instruction is not control / the logged region is
  // exhausted); a false return is a detected soft error in the original
  // execution.
  bool compare(const vm::Retired& record);

  // Leave replay mode; the history is left intact.
  void end_replay();

  std::size_t size() const noexcept { return log_.size(); }
  const std::deque<BranchOutcome>& entries() const noexcept { return log_; }
  u64 mismatches() const noexcept { return mismatches_; }
  u64 compared() const noexcept { return compared_; }

  void clear();

 private:
  std::size_t capacity_;
  std::deque<BranchOutcome> log_;
  bool replaying_ = false;
  std::size_t replay_cursor_ = 0;
  u64 replay_end_stamp_ = 0;
  u64 mismatches_ = 0;
  u64 compared_ = 0;
};

}  // namespace restore::core
