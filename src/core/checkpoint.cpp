#include "core/checkpoint.hpp"

#include <stdexcept>

namespace restore::core {

CheckpointManager::CheckpointManager(u64 interval, unsigned live_checkpoints)
    : interval_(interval == 0 ? 1 : interval),
      max_live_(live_checkpoints == 0 ? 1 : live_checkpoints) {}

void CheckpointManager::on_retired(const vm::Retired& record) {
  if (!record.is_store || checkpoints_.empty()) return;
  checkpoints_.back().undo.push_back(
      {record.store_addr, record.store_bytes, record.store_old_data});
}

bool CheckpointManager::maybe_checkpoint(const uarch::Core& core, bool force) {
  const u64 retired = core.retired_count();
  if (!force && have_any_ && retired - last_checkpoint_retired_ < interval_) {
    return false;
  }
  Checkpoint cp;
  cp.arch = core.arch_snapshot();
  cp.retired_at = retired;
  checkpoints_.push_back(std::move(cp));
  // Age out beyond the live window. The evicted checkpoint's undo records are
  // permanently committed; its successor's logs still cover the live range.
  while (checkpoints_.size() > max_live_) checkpoints_.pop_front();
  last_checkpoint_retired_ = retired;
  have_any_ = true;
  ++taken_;
  return true;
}

const Checkpoint& CheckpointManager::oldest() const {
  if (checkpoints_.empty()) throw std::logic_error("no live checkpoint");
  return checkpoints_.front();
}

u64 CheckpointManager::rollback(uarch::Core& core) {
  if (checkpoints_.empty()) throw std::logic_error("no live checkpoint");
  const u64 now = core.retired_count();

  // Undo memory effects, newest epoch first, newest store first. Each write
  // goes through PagedMemory::store — the copy-on-write mutator — so rolling
  // back a forked machine never disturbs snapshots or sibling forks that
  // still share its pages.
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    for (auto undo_it = it->undo.rbegin(); undo_it != it->undo.rend(); ++undo_it) {
      core.memory().store(undo_it->addr, undo_it->bytes, undo_it->old_data);
    }
  }

  Checkpoint target = checkpoints_.front();
  const u64 distance = now - target.retired_at;
  core.reset_to(target.arch);

  // Re-arm: the restored state is the only valid checkpoint now. Its position
  // is expressed in the core's cumulative retirement counter (which keeps
  // counting across re-execution), i.e. "here".
  target.undo.clear();
  target.retired_at = core.retired_count();
  checkpoints_.clear();
  checkpoints_.push_back(std::move(target));
  last_checkpoint_retired_ = checkpoints_.front().retired_at;
  ++rollbacks_;
  return distance;
}

}  // namespace restore::core
