#include "core/restore_core.hpp"

namespace restore::core {

using uarch::SymptomEvent;

namespace {

uarch::CoreConfig restore_mode(uarch::CoreConfig config) {
  // ReStore consumes exceptions as symptoms instead of trapping.
  config.trap_on_exception = false;
  return config;
}

}  // namespace

ReStoreCore::ReStoreCore(const isa::Program& program, const ReStoreOptions& options,
                         uarch::CoreConfig core_config)
    : options_(options),
      core_(program, restore_mode(core_config)),
      checkpoints_(options.checkpoint_interval, options.live_checkpoints) {
  checkpoints_.maybe_checkpoint(core_, /*force=*/true);
}

bool ReStoreCore::branch_symptoms_active() const noexcept {
  return options_.branch_symptom && core_.retired_count() >= throttle_off_until_ &&
         core_.retired_count() >= replay_until_;
}

void ReStoreCore::cycle() {
  if (status_ != Status::kRunning) return;

  // Checkpoint-hardware stall: the pipeline holds while the checkpoint store
  // copies state (zero by default, matching the paper's idealisation).
  if (pending_stall_ > 0) {
    --pending_stall_;
    ++stall_cycles_;
    return;
  }

  core_.cycle();

  // Bookkeeping for every retired instruction: undo logs, event log (record
  // during normal execution, compare during replay), rollback-aware output
  // staging (an OUT between a symptom and its rollback must not reach the
  // device twice).
  u64 index = core_.retired_count() - core_.retired_this_cycle().size();
  bool sync_retired = false;
  for (const auto& rec : core_.retired_this_cycle()) {
    ++index;
    checkpoints_.on_retired(rec);
    if (rec.is_sync) sync_retired = true;
    if (rec.is_out) staged_output_.push_back({index, rec.out_byte});
    if (event_log_.replaying() && !event_log_.compare(rec)) {
      ++stats_.detected_errors;
    }
    event_log_.record(rec, index);
  }

  handle_symptoms();
  if (status_ != Status::kRunning && status_ != Status::kHalted) return;

  if (event_log_.replaying() && core_.retired_count() > replay_until_) {
    event_log_.end_replay();
    // The re-execution survived past the symptom point: any pending exception
    // was transient (successfully detected and recovered).
    pending_exception_.reset();
  }

  // Delayed-policy rollback at the interval boundary.
  if (pending_rollback_.has_value() && core_.running()) {
    const u64 since = core_.retired_count() - checkpoints_.last_checkpoint_at();
    if (since >= options_.checkpoint_interval) {
      const auto reason = *pending_rollback_;
      pending_rollback_.reset();
      do_rollback(reason);
      return;
    }
  }

  // Periodic checkpointing (suppressed while a delayed rollback is pending so
  // the pre-symptom checkpoint stays live).
  // Synchronizing instructions force a checkpoint regardless of the interval
  // (paper §2.1: "checkpoints must be taken on external synchronization
  // events"); otherwise checkpoint periodically.
  if (core_.running() && !pending_rollback_.has_value() &&
      (sync_retired || core_.retired_count() >= replay_until_)) {
    if (checkpoints_.maybe_checkpoint(core_, /*force=*/sync_retired)) {
      pending_stall_ += options_.checkpoint_latency_cycles;
    }
  }

  if (core_.status() == uarch::Core::Status::kHalted) status_ = Status::kHalted;
}

void ReStoreCore::handle_symptoms() {
  for (const auto& ev : core_.symptoms_this_cycle()) {
    switch (ev.kind) {
      case SymptomEvent::Kind::kException: {
        if (!options_.exception_symptom) {
          genuine_fault_ = ev.fault;
          status_ = Status::kArchitectedFault;
          return;
        }
        // Recurrence check: same pc as the exception that caused the last
        // exception rollback => genuine.
        const u64 fault_pc = core_.arch_snapshot().pc;
        if (pending_exception_.has_value() && pending_exception_->pc == fault_pc &&
            pending_exception_->kind == ev.fault) {
          if (pending_exception_->retries >= options_.max_exception_retries) {
            ++stats_.genuine_exceptions;
            genuine_fault_ = ev.fault;
            status_ = Status::kArchitectedFault;
            return;
          }
          ++pending_exception_->retries;
        } else {
          pending_exception_ = PendingException{fault_pc, ev.fault, 0};
        }
        // Execution cannot continue past an exception, so even the delayed
        // policy rolls back now (§3.2.1).
        do_rollback(SymptomEvent::Kind::kException);
        return;
      }
      case SymptomEvent::Kind::kHighConfMispredict: {
        if (!options_.branch_symptom) break;
        if (handle_speculative_symptom(SymptomEvent::Kind::kHighConfMispredict)) {
          return;
        }
        break;
      }
      case SymptomEvent::Kind::kCacheMissBurst: {
        if (!options_.cache_symptom) break;
        if (handle_speculative_symptom(SymptomEvent::Kind::kCacheMissBurst)) {
          return;
        }
        break;
      }
      case SymptomEvent::Kind::kIllegalFlow: {
        if (!options_.illegal_flow_symptom) break;
        if (core_.retired_count() < replay_until_) break;  // replaying already
        // Verification mirrors the exception path: a recurrence at the same
        // pc after clean re-execution cannot be a transient.
        const u64 flow_pc = core_.arch_snapshot().pc;
        if (pending_exception_.has_value() && pending_exception_->pc == flow_pc &&
            pending_exception_->kind == isa::ExceptionKind::kNone) {
          if (pending_exception_->retries >= options_.max_exception_retries) {
            status_ = Status::kArchitectedFault;
            genuine_fault_ = isa::ExceptionKind::kNone;
            return;
          }
          ++pending_exception_->retries;
        } else {
          pending_exception_ =
              PendingException{flow_pc, isa::ExceptionKind::kNone, 0};
        }
        do_rollback(SymptomEvent::Kind::kIllegalFlow);
        return;
      }
      case SymptomEvent::Kind::kWatchdog: {
        if (!options_.watchdog_symptom) {
          status_ = Status::kArchitectedFault;
          genuine_fault_ = isa::ExceptionKind::kNone;
          return;
        }
        do_rollback(SymptomEvent::Kind::kWatchdog);
        return;
      }
      default:
        break;
    }
  }
}

// Shared path for "the machine might be fine" symptoms (high-confidence
// mispredictions, cache bursts): throttled, policy-aware. Returns true when a
// rollback happened (symptom processing must stop for this cycle).
bool ReStoreCore::handle_speculative_symptom(SymptomEvent::Kind kind) {
  if (core_.retired_count() < throttle_off_until_ ||
      core_.retired_count() < replay_until_) {
    return false;
  }
  const u64 now = core_.retired_count();
  if (now - throttle_window_start_ > options_.throttle_window) {
    throttle_window_start_ = now;
    recent_branch_rollbacks_ = 0;
  }
  if (++recent_branch_rollbacks_ > options_.throttle_max_rollbacks) {
    throttle_off_until_ = now + options_.throttle_penalty;
    ++stats_.throttle_engagements;
    return false;
  }
  if (options_.policy == RollbackPolicy::kDelayed) {
    if (!pending_rollback_.has_value()) pending_rollback_ = kind;
    return false;
  }
  do_rollback(kind);
  return true;
}

void ReStoreCore::do_rollback(SymptomEvent::Kind reason) {
  const u64 checkpoint_position = checkpoints_.oldest().retired_at;
  const u64 rollback_position = core_.retired_count();
  const u64 distance = checkpoints_.rollback(core_);
  pending_stall_ += options_.restore_latency_cycles;
  stats_.reexecuted_insns += distance;
  ++stats_.rollbacks;
  switch (reason) {
    case SymptomEvent::Kind::kException: ++stats_.exception_rollbacks; break;
    case SymptomEvent::Kind::kHighConfMispredict: ++stats_.branch_rollbacks; break;
    case SymptomEvent::Kind::kWatchdog: ++stats_.watchdog_rollbacks; break;
    case SymptomEvent::Kind::kIllegalFlow: ++stats_.illegal_flow_rollbacks; break;
    case SymptomEvent::Kind::kCacheMissBurst: ++stats_.cache_rollbacks; break;
    default: break;
  }

  // Discard staged output past the restored checkpoint: those OUTs will
  // re-execute and be staged again.
  while (!staged_output_.empty() && staged_output_.back().first > checkpoint_position) {
    staged_output_.pop_back();
  }

  // Replay window: re-execute `distance` instructions with event-log
  // comparison and control-flow symptoms suppressed (perfect re-execution
  // prediction, §3.2.3/§5.2.3). The small slack keeps the re-fired symptom of
  // the instruction that triggered the rollback inside the window.
  replay_until_ = core_.retired_count() + distance + 4;
  event_log_.begin_replay(checkpoint_position, rollback_position);

  // Feed logged outcomes back to fetch: re-executed control flow follows the
  // original execution without mispredicting.
  if (options_.event_log_replay) {
    std::vector<uarch::ReplayHint> hints;
    hints.reserve(event_log_.size());
    for (const auto& outcome : event_log_.entries()) {
      if (outcome.retired_index <= checkpoint_position ||
          outcome.retired_index > rollback_position) {
        continue;
      }
      hints.push_back({outcome.pc, outcome.taken, outcome.target});
    }
    core_.set_replay_hints(std::move(hints));
  }
  pending_rollback_.reset();
}

std::string ReStoreCore::output() const {
  std::string out;
  out.reserve(staged_output_.size());
  for (const auto& [index, byte] : staged_output_) {
    out.push_back(static_cast<char>(byte));
  }
  return out;
}

u64 ReStoreCore::run(u64 max_cycles) {
  u64 cycles = 0;
  while (cycles < max_cycles && status_ == Status::kRunning) {
    cycle();
    ++cycles;
  }
  return cycles;
}

}  // namespace restore::core
