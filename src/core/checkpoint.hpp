// Checkpoint store for the ReStore architecture (paper §2).
//
// A checkpoint is a snapshot of architectural register state plus a memory
// undo log: every retired store between two checkpoints records the old
// memory contents, so rolling back replays the undo records in reverse. Two
// checkpoints are live at all times (paper §5.2.3): restoring always goes to
// the *older* one, giving a rollback distance between one and two intervals
// (1.5x on average).
#pragma once

#include <deque>
#include <vector>

#include "common/types.hpp"
#include "uarch/core.hpp"
#include "vm/memory.hpp"
#include "vm/retired.hpp"
#include "vm/vm.hpp"

namespace restore::core {

struct UndoRecord {
  u64 addr = 0;
  u8 bytes = 0;
  u64 old_data = 0;
};

struct Checkpoint {
  vm::ArchSnapshot arch;
  u64 retired_at = 0;  // retirement count when the checkpoint was taken
  // Stores retired since THIS checkpoint was taken (undo records, oldest
  // first). Rolling back to this checkpoint undoes these in reverse.
  std::vector<UndoRecord> undo;
};

class CheckpointManager {
 public:
  // `interval` = instructions between checkpoints (paper: 10..1000);
  // `live_checkpoints` >= 1 (paper evaluates 2).
  explicit CheckpointManager(u64 interval = 100, unsigned live_checkpoints = 2);

  u64 interval() const noexcept { return interval_; }

  // Observe one retired instruction (undo-log bookkeeping). Call for every
  // record the core retires.
  void on_retired(const vm::Retired& record);

  // Take a checkpoint of the core's current retirement boundary if the
  // interval has elapsed (or `force`). Returns true if one was taken.
  bool maybe_checkpoint(const uarch::Core& core, bool force = false);

  // Roll the core back to the *oldest* live checkpoint: restores memory via
  // the undo logs, resets the pipeline to the checkpointed register state,
  // and re-arms the checkpoint store. Returns the rollback distance in
  // instructions. Requires at least one checkpoint (one is always taken at
  // construction time via the first maybe_checkpoint call).
  u64 rollback(uarch::Core& core);

  // Oldest live checkpoint (throws std::logic_error if none).
  const Checkpoint& oldest() const;
  std::size_t live() const noexcept { return checkpoints_.size(); }

  // Retirement count at which the newest checkpoint was taken.
  u64 last_checkpoint_at() const noexcept { return last_checkpoint_retired_; }

  u64 checkpoints_taken() const noexcept { return taken_; }
  u64 rollbacks() const noexcept { return rollbacks_; }

 private:
  u64 interval_;
  unsigned max_live_;
  std::deque<Checkpoint> checkpoints_;  // oldest at front
  u64 last_checkpoint_retired_ = 0;
  bool have_any_ = false;
  u64 taken_ = 0;
  u64 rollbacks_ = 0;
};

}  // namespace restore::core
