// gzip-analog: LZ77-style compression with a hash-head table of previous
// positions and greedy match extension. Mirrors gzip's deflate inner loop:
// hashing, backward matching, and token emission.
#include <sstream>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace restore::workloads {

namespace {

// Input with genuine repetition: random phrases spliced from earlier output.
std::vector<u8> make_input(std::size_t size) {
  Rng rng(0x6219);
  std::vector<u8> data;
  data.reserve(size);
  while (data.size() < size) {
    if (data.size() > 32 && rng.below(2)) {
      // Copy an earlier phrase.
      const u64 start = rng.below(data.size() - 16);
      const u64 len = 4 + rng.below(12);
      for (u64 i = 0; i < len && data.size() < size; ++i) {
        data.push_back(data[start + i]);
      }
    } else {
      const u64 len = 2 + rng.below(6);
      for (u64 i = 0; i < len && data.size() < size; ++i) {
        data.push_back(static_cast<u8>(32 + rng.below(64)));
      }
    }
  }
  return data;
}

}  // namespace

std::string wl_gzip_source() {
  constexpr std::size_t kInputLen = 1024;
  std::ostringstream out;
  out << R"(# gzip-analog: LZ77 with hash heads
main:
  # Clear the 256-entry hash-head table (word32 entries, 0 = empty).
  la t0, heads
  li t1, 256
clear_heads:
  sw zero, 0(t0)
  addi t0, t0, 4
  addi t1, t1, -1
  bnez t1, clear_heads

  li s0, 0            # position
  li s1, )" << kInputLen << R"(    # input length
  la s2, input
  li r1, 0            # checksum
  li s5, 0            # token count

pos_loop:
  addi t0, s1, -4
  bge s0, t0, tail    # need 4 bytes of lookahead for a match attempt

  # hash of the 2-byte prefix at position s0
  add t1, s2, s0
  lbu t2, 0(t1)
  lbu t3, 1(t1)
  slli t4, t2, 4
  xor t4, t4, t3
  andi t4, t4, 255
  la t5, heads
  slli t6, t4, 2
  add t5, t5, t6      # &heads[h]
  lwu t7, 0(t5)       # candidate position + 1 (0 = empty)
  addi t8, s0, 1
  sw t8, 0(t5)        # heads[h] = pos + 1

  beqz t7, literal
  addi t7, t7, -1     # candidate position
  bge t7, s0, literal # must be strictly earlier

  # extend the match up to 15 bytes or end of input
  li t9, 0            # match length
  add t0, s2, t7      # candidate cursor
  add t1, s2, s0      # current cursor
match_loop:
  add t2, s0, t9
  bge t2, s1, match_done
  slti t3, t9, 15
  beqz t3, match_done
  lbu t4, 0(t0)
  lbu t5, 0(t1)
  bne t4, t5, match_done
  addi t0, t0, 1
  addi t1, t1, 1
  addi t9, t9, 1
  j match_loop
match_done:
  slti t3, t9, 4
  bnez t3, literal    # matches shorter than 4 are emitted as literals

  # emit (length, distance) token: checksum = checksum*33 + len*4096 + dist
  sub t4, s0, t7      # distance
  slli t5, t9, 12
  add t5, t5, t4
  li t6, 33
  mul r1, r1, t6
  add r1, r1, t5
  addi s5, s5, 1
  add s0, s0, t9
  j pos_loop

literal:
  add t1, s2, s0
  lbu t2, 0(t1)
  li t6, 33
  mul r1, r1, t6
  add r1, r1, t2
  addi s5, s5, 1
  addi s0, s0, 1
  j pos_loop

tail:
  # Remaining bytes are literals.
  bge s0, s1, finish
  add t1, s2, s0
  lbu t2, 0(t1)
  li t6, 33
  mul r1, r1, t6
  add r1, r1, t2
  addi s5, s5, 1
  addi s0, s0, 1
  j tail

finish:
  slli t0, s5, 48
  xor r1, r1, t0      # fold token count into the checksum
  j __emit
)";
  out << detail::kChecksumEpilogue;
  out << ".data\n";
  out << ".align 4\n";
  out << "heads: .space 1024\n";  // 256 * 4
  out << "input:\n" << detail::emit_bytes(make_input(kInputLen));
  return out.str();
}

}  // namespace restore::workloads
