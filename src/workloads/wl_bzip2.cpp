// bzip2-analog: move-to-front transform followed by run-length encoding over
// a low-entropy input buffer. Mirrors bzip2's inner loops: byte scans over a
// small table, data-dependent branches, and streaming stores.
#include <sstream>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace restore::workloads {

namespace {

// Low-entropy input: runs of symbols drawn from a 16-symbol alphabet so the
// MTF scan loop stays short, as it does on compressible data.
std::vector<u8> make_input(std::size_t size) {
  Rng rng(0xB21B);
  std::vector<u8> data;
  data.reserve(size);
  u8 symbol = 0;
  while (data.size() < size) {
    symbol = static_cast<u8>(rng.below(16) * 7 + 3);
    const u64 run = 1 + rng.below(6);
    for (u64 i = 0; i < run && data.size() < size; ++i) data.push_back(symbol);
  }
  return data;
}

}  // namespace

std::string wl_bzip2_source() {
  constexpr std::size_t kInputLen = 768;
  std::ostringstream out;
  out << R"(# bzip2-analog: MTF + RLE
main:
  # Initialise the 256-entry move-to-front table: mtf[i] = i.
  la t0, mtf
  li t1, 0
mtf_init:
  sb t1, 0(t0)
  addi t0, t0, 1
  addi t1, t1, 1
  slti t2, t1, 256
  bnez t2, mtf_init

  la s0, input        # input cursor
  li s1, )" << kInputLen << R"(
  la s2, output       # output cursor
  li s3, -1           # current run symbol (MTF index)
  li s4, 0            # current run length
  li r1, 0            # checksum accumulator

byte_loop:
  beqz s1, flush_run
  lbu t0, 0(s0)
  addi s0, s0, 1
  addi s1, s1, -1

  # MTF: linear scan for t0, index in t2.
  la t1, mtf
  li t2, 0
mtf_scan:
  lbu t3, 0(t1)
  beq t3, t0, mtf_found
  addi t1, t1, 1
  addi t2, t2, 1
  j mtf_scan
mtf_found:
  mv t7, t2           # preserve the MTF index for RLE
  # Shift table[0..idx-1] up one slot, then place the symbol at the front.
  la t4, mtf
  add t5, t4, t2
mtf_shift:
  beqz t2, mtf_place
  lbu t6, -1(t5)
  sb t6, 0(t5)
  addi t5, t5, -1
  addi t2, t2, -1
  j mtf_shift
mtf_place:
  sb t0, 0(t4)

  # RLE over MTF indices.
  beq t7, s3, extend_run
  call emit_run
  mv s3, t7
  li s4, 1
  j byte_loop
extend_run:
  addi s4, s4, 1
  # Cap runs at 255 so they fit one output byte.
  slti t0, s4, 255
  bnez t0, byte_loop
  call emit_run
  li s4, 0
  j byte_loop

flush_run:
  call emit_run
  j __emit

# emit_run: append (symbol s3, length s4) to the output stream and fold the
# pair into the checksum. Skips empty runs (s4 == 0 or s3 == -1 sentinel).
emit_run:
  beqz s4, emit_done
  sb s3, 0(s2)
  sb s4, 1(s2)
  addi s2, s2, 2
  # checksum = checksum*31 + symbol*256 + length
  slli t8, s3, 8
  add t8, t8, s4
  li t9, 31
  mul r1, r1, t9
  add r1, r1, t8
emit_done:
  ret
)";
  out << detail::kChecksumEpilogue;
  out << ".data\n";
  out << "mtf: .space 256\n";
  out << "input:\n" << detail::emit_bytes(make_input(kInputLen));
  out << "output: .space 2048\n";
  return out.str();
}

}  // namespace restore::workloads
