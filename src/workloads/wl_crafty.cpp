// crafty-analog (extended set): chess-engine bitboard kernels — attack-set
// generation by shift/mask, population counts, and a perft-style accumulation
// over pseudo-random positions. Almost pure 64-bit ALU work with very little
// memory traffic, the opposite mix from vortex/mcf.
#include <sstream>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace restore::workloads {

namespace {

std::vector<u64> make_positions(std::size_t count) {
  Rng rng(0xC4AF);
  std::vector<u64> positions;
  positions.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Sparse occupancy boards (~12 pieces).
    u64 board = 0;
    for (int p = 0; p < 12; ++p) board |= u64{1} << rng.below(64);
    positions.push_back(board);
  }
  return positions;
}

}  // namespace

std::string wl_crafty_source() {
  constexpr std::size_t kPositions = 160;
  std::ostringstream out;
  out << R"(# crafty-analog: bitboard attack generation + popcount
main:
  la s0, boards
  li s1, )" << kPositions << R"(
  li r1, 0            # checksum

pos_loop:
  beqz s1, finish
  ld s2, 0(s0)        # occupancy board
  addi s0, s0, 8
  addi s1, s1, -1

  # King-attack spread: north/south/east/west + diagonals, with file masks to
  # stop wraparound (files A and H).
  li t4, 0x7f7f
  slli t4, t4, 16
  ori t4, t4, 0x7f7f
  slli t4, t4, 16
  ori t4, t4, 0x7f7f
  slli t4, t4, 16
  ori t4, t4, 0x7f7f  # t4 = 0x7f7f... (not-H-file)
  li t5, 0xfefe
  slli t5, t5, 16
  ori t5, t5, 0xfefe
  slli t5, t5, 16
  ori t5, t5, 0xfefe
  slli t5, t5, 16
  ori t5, t5, 0xfefe  # t5 = 0xfefe... (not-A-file)

  slli t0, s2, 8      # north
  srli t1, s2, 8      # south
  and t2, s2, t4
  slli t2, t2, 1      # east (masked)
  and t3, s2, t5
  srli t3, t3, 1      # west (masked)
  or t0, t0, t1
  or t0, t0, t2
  or t0, t0, t3       # attack set

  # popcount(t0) via Kernighan's loop (data-dependent trip count)
  li t6, 0
popcnt:
  beqz t0, counted
  addi t7, t0, -1
  and t0, t0, t7
  addi t6, t6, 1
  j popcnt
counted:

  # perft-style accumulation: fold count and a board hash into the checksum
  li t8, 0x9E37
  slli t8, t8, 16
  ori t8, t8, 0x79B9  # golden-ratio-ish multiplier
  mul t9, s2, t8
  srli t9, t9, 32
  add t9, t9, t6
  li t10, 131
  mul r1, r1, t10
  xor r1, r1, t9
  j pos_loop

finish:
  j __emit
)";
  out << detail::kChecksumEpilogue;
  out << ".data\n.align 8\n";
  out << "boards:\n" << detail::emit_words64(make_positions(kPositions));
  return out.str();
}

}  // namespace restore::workloads
