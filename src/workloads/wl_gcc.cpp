// gcc-analog: expression-tree construction from an RPN token stream (bump
// allocation, pointer-heavy stores), recursive evaluation, a constant-folding
// pass, and re-evaluation. Mirrors gcc's tree manipulation: pointer chasing,
// recursion, and dispatch on node kinds.
#include <sstream>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace restore::workloads {

namespace {

// Token stream: values 0..3 are binary operators (add/sub/mul/xor); values
// >= 4 encode the leaf constant (token - 4). The stream is generated so the
// operand-stack depth stays within [1, 24] and ends at exactly 1.
std::vector<u8> make_token_stream(std::size_t tokens) {
  Rng rng(0x6CC6);
  std::vector<u8> stream;
  stream.reserve(tokens + 32);
  int depth = 0;
  while (stream.size() < tokens) {
    const bool can_op = depth >= 2;
    const bool must_push = depth < 2;
    const bool push = must_push || (!can_op ? true : rng.below(100) < 45 || depth >= 24);
    if (push) {
      stream.push_back(static_cast<u8>(4 + rng.below(120)));
      ++depth;
    } else {
      stream.push_back(static_cast<u8>(rng.below(4)));
      --depth;
    }
  }
  while (depth > 1) {
    stream.push_back(static_cast<u8>(rng.below(4)));
    --depth;
  }
  return stream;
}

}  // namespace

std::string wl_gcc_source() {
  constexpr std::size_t kTokens = 480;
  const auto stream = make_token_stream(kTokens);
  std::ostringstream out;
  // Node layout (32 bytes): +0 op (0..3 = binary op, 255 = leaf),
  // +8 left ptr, +16 right ptr, +24 value.
  out << R"(# gcc-analog: expression trees (build, eval, fold, re-eval)
main:
  la s0, tokens       # token cursor
  li s1, )" << stream.size() << R"(    # tokens remaining
  la s2, heap         # bump allocator cursor
  la s3, opstack      # operand stack base (grows up, holds node ptrs)

build_loop:
  beqz s1, built
  lbu t0, 0(s0)
  addi s0, s0, 1
  addi s1, s1, -1
  slti t1, t0, 4
  bnez t1, build_op

  # Leaf: allocate node {op=255, value=token-4}.
  li t2, 255
  sb t2, 0(s2)
  addi t3, t0, -4
  sd t3, 24(s2)
  sd s2, 0(s3)        # push node
  addi s3, s3, 8
  addi s2, s2, 32
  j build_loop

build_op:
  # Operator: pop right, pop left, allocate op node, push it.
  addi s3, s3, -8
  ld t2, 0(s3)        # right
  addi s3, s3, -8
  ld t3, 0(s3)        # left
  sb t0, 0(s2)
  sd t3, 8(s2)
  sd t2, 16(s2)
  sd s2, 0(s3)
  addi s3, s3, 8
  addi s2, s2, 32
  j build_loop

built:
  addi s3, s3, -8
  ld s4, 0(s3)        # root node

  mv a0, s4
  call eval           # first evaluation
  mv s5, rv           # save value

  mv a0, s4
  call fold           # constant folding pass (returns folded-node count)
  mv s6, rv

  mv a0, s4
  call eval           # re-evaluation must agree
  # checksum = eval1 * 2654435761 + eval2 + folds*65599
  li t0, 2654435761
  mul r1, s5, t0
  add r1, r1, rv
  li t0, 65599
  mul t1, s6, t0
  add r1, r1, t1
  j __emit

# eval(a0 = node) -> rv: recursive evaluation with op dispatch.
eval:
  lbu t0, 0(a0)
  seqi t1, t0, 255
  beqz t1, eval_op
  ld rv, 24(a0)
  ret
eval_op:
  addi sp, sp, -32
  sd ra, 0(sp)
  sd s0, 8(sp)
  sd s1, 16(sp)
  sd a0, 24(sp)
  mv s0, a0
  ld a0, 8(s0)
  call eval
  mv s1, rv           # left value
  ld a0, 16(s0)
  call eval           # rv = right value
  lbu t0, 0(s0)
  beqz t0, eval_add
  seqi t1, t0, 1
  bnez t1, eval_sub
  seqi t1, t0, 2
  bnez t1, eval_mul
  xor rv, s1, rv
  j eval_done
eval_add:
  add rv, s1, rv
  j eval_done
eval_sub:
  sub rv, s1, rv
  j eval_done
eval_mul:
  mul rv, s1, rv
eval_done:
  ld ra, 0(sp)
  ld s0, 8(sp)
  ld s1, 16(sp)
  ld a0, 24(sp)
  addi sp, sp, 32
  ret

# fold(a0 = node) -> rv: replace op nodes whose children are both leaves with
# a leaf holding the computed value; returns the number of folded nodes.
fold:
  lbu t0, 0(a0)
  seqi t1, t0, 255
  beqz t1, fold_op
  li rv, 0
  ret
fold_op:
  addi sp, sp, -32
  sd ra, 0(sp)
  sd s0, 8(sp)
  sd s1, 16(sp)
  sd a0, 24(sp)
  mv s0, a0
  ld a0, 8(s0)
  call fold
  mv s1, rv
  ld a0, 16(s0)
  call fold
  add s1, s1, rv      # folds in subtrees
  # If both children are now leaves, fold this node.
  ld t2, 8(s0)
  lbu t3, 0(t2)
  seqi t4, t3, 255
  beqz t4, fold_no
  ld t5, 16(s0)
  lbu t6, 0(t5)
  seqi t7, t6, 255
  beqz t7, fold_no
  # Compute value via eval of this node (children are leaves: cheap).
  mv a0, s0
  call eval
  li t0, 255
  sb t0, 0(s0)
  sd rv, 24(s0)
  addi s1, s1, 1
fold_no:
  mv rv, s1
  ld ra, 0(sp)
  ld s0, 8(sp)
  ld s1, 16(sp)
  ld a0, 24(sp)
  addi sp, sp, 32
  ret
)";
  out << detail::kChecksumEpilogue;
  out << ".data\n";
  out << "tokens:\n" << detail::emit_bytes(stream);
  out << ".align 8\n";
  out << "opstack: .space 512\n";
  out << "heap: .space " << (stream.size() * 32 + 64) << "\n";
  return out.str();
}

}  // namespace restore::workloads
