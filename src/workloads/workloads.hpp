// The seven SPEC2000-integer-analog workloads used throughout the evaluation.
//
// The paper runs bzip2, gap, gcc, gzip, mcf, parser, and vortex (§4.2). These
// kernels mimic each program's dominant idiom — compression loops, group
// arithmetic, pointer-chasing tree manipulation, LZ matching, graph
// relaxation, recursive-descent parsing, and hashed record storage — written
// in SRA-64 assembly so they run on both the architectural VM and the
// detailed out-of-order core. Each workload ends by emitting an 8-byte
// checksum through the OUT device and halting; the checksum makes silent data
// corruption observable at the program level.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hpp"

namespace restore::workloads {

struct Workload {
  std::string name;
  isa::Program program;
  // Dynamic instruction count of a clean run (filled by the registry from a
  // VM run at construction; used to size injection windows).
  u64 clean_insns = 0;
  // Output bytes of a clean run (the golden checksum).
  std::string clean_output;
};

// The paper's seven workloads, assembled and golden-run once (cached).
const std::vector<Workload>& all();

// Extended set beyond the paper's evaluation (crafty and twolf analogs,
// covering ALU-heavy bitboard and annealing mixes). Not included in `all()`
// so the default campaigns match the paper's workload selection.
const std::vector<Workload>& extended();

// Lookup by name; throws std::out_of_range for unknown names.
const Workload& by_name(std::string_view name);

// Assembly sources (exposed for tests and tooling).
std::string wl_bzip2_source();
std::string wl_crafty_source();
std::string wl_gap_source();
std::string wl_gcc_source();
std::string wl_gzip_source();
std::string wl_mcf_source();
std::string wl_parser_source();
std::string wl_twolf_source();
std::string wl_vortex_source();

}  // namespace restore::workloads
