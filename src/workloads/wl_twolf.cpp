// twolf-analog (extended set): simulated-annealing standard-cell placement —
// random cell swaps with a Manhattan wirelength cost function and a cooling
// acceptance threshold. An in-assembly LCG drives the annealing schedule, so
// the kernel mixes indexed loads/stores, multiplies, data-dependent branches
// and abs-value idioms.
#include <sstream>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace restore::workloads {

namespace {

constexpr u32 kCells = 32;
constexpr u32 kNets = 48;
constexpr u32 kSwaps = 220;

// Cell coordinates (x, y) packed as two word32s.
std::vector<u32> make_cells() {
  Rng rng(0x201F);
  std::vector<u32> coords;
  coords.reserve(kCells * 2);
  for (u32 i = 0; i < kCells; ++i) {
    coords.push_back(static_cast<u32>(rng.below(64)));
    coords.push_back(static_cast<u32>(rng.below(64)));
  }
  return coords;
}

// Two-pin nets: pairs of cell indices.
std::vector<u32> make_nets() {
  Rng rng(0x2E75);
  std::vector<u32> nets;
  nets.reserve(kNets * 2);
  for (u32 i = 0; i < kNets; ++i) {
    const u32 a = static_cast<u32>(rng.below(kCells));
    u32 b = static_cast<u32>(rng.below(kCells));
    if (b == a) b = (b + 1) % kCells;
    nets.push_back(a);
    nets.push_back(b);
  }
  return nets;
}

}  // namespace

std::string wl_twolf_source() {
  std::ostringstream out;
  out << R"(# twolf-analog: annealing placement with Manhattan wirelength
main:
  li s5, 12345        # LCG state
  li s6, )" << kSwaps << R"(    # remaining swaps
  li s7, 4096         # "temperature" threshold (cools every swap)
  li s8, 0            # checksum (s8: rv aliases r1)

  call wirelength
  mv s4, rv           # current cost

swap_loop:
  beqz s6, finish

  # LCG: s5 = s5 * 1103515245 + 12345 (mod 2^31); pick two cells.
  li t0, 0x41C6
  slli t0, t0, 16
  ori t0, t0, 0x4E6D
  mul s5, s5, t0
  addi s5, s5, 12345
  li t1, 0x7FFF
  slli t1, t1, 16
  ori t1, t1, 0xFFFF
  and s5, s5, t1

  srli t2, s5, 3
  andi t2, t2, 31     # cell a
  srli t3, s5, 9
  andi t3, t3, 31     # cell b

  # Swap coordinates of cells a and b (8 bytes each: x,y word32 pairs).
  la t4, cells
  slli t5, t2, 3
  add t5, t4, t5
  slli t6, t3, 3
  add t6, t4, t6
  ld t7, 0(t5)
  ld t8, 0(t6)
  sd t8, 0(t5)
  sd t7, 0(t6)

  call wirelength     # rv = new cost

  # Accept if better, or if worse by less than the temperature.
  sub t0, rv, s4      # delta
  blt t0, s7, accept
  # Reject: swap back.
  la t4, cells
  slli t5, t2, 3
  add t5, t4, t5
  slli t6, t3, 3
  add t6, t4, t6
  ld t7, 0(t5)
  ld t8, 0(t6)
  sd t8, 0(t5)
  sd t7, 0(t6)
  j cooled
accept:
  mv s4, rv
cooled:
  # Cool: temperature *= 15/16.
  slli t0, s7, 4
  sub t0, t0, s7
  srli s7, t0, 4
  addi s6, s6, -1
  # checksum folds the accepted cost trajectory
  li t1, 33
  mul s8, s8, t1
  add s8, s8, s4
  j swap_loop

finish:
  slli t0, s7, 40
  xor s8, s8, t0
  mv r1, s8
  j __emit

# wirelength() -> rv: sum over nets of |dx| + |dy|.
wirelength:
  la t0, nets
  li t1, )" << kNets << R"(
  li rv, 0
wl_loop:
  beqz t1, wl_done
  lwu t2, 0(t0)       # cell a index
  lwu t3, 4(t0)       # cell b index
  addi t0, t0, 8
  addi t1, t1, -1
  la t4, cells
  slli t5, t2, 3
  add t5, t4, t5
  slli t6, t3, 3
  add t6, t4, t6
  lwu t7, 0(t5)       # ax
  lwu t8, 0(t6)       # bx
  sub t9, t7, t8
  bge t9, zero, dx_pos
  sub t9, zero, t9
dx_pos:
  add rv, rv, t9
  lwu t7, 4(t5)       # ay
  lwu t8, 4(t6)       # by
  sub t9, t7, t8
  bge t9, zero, dy_pos
  sub t9, zero, t9
dy_pos:
  add rv, rv, t9
  j wl_loop
wl_done:
  ret
)";
  out << detail::kChecksumEpilogue;
  out << ".data\n.align 8\n";
  out << "cells:\n" << detail::emit_words32(make_cells());
  out << "nets:\n" << detail::emit_words32(make_nets());
  return out.str();
}

}  // namespace restore::workloads
