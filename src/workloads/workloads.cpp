#include "workloads/workloads.hpp"

#include <stdexcept>

#include "isa/assembler.hpp"
#include "vm/vm.hpp"

namespace restore::workloads {

namespace {

Workload build(const std::string& name, const std::string& source) {
  Workload wl;
  wl.name = name;
  wl.program = isa::assemble(source, isa::AsmOptions{}, name);

  // Golden run: every workload must halt cleanly (no exceptions) within a
  // generous budget; record length and checksum output.
  vm::Vm golden(wl.program);
  constexpr u64 kBudget = 2'000'000;
  golden.run(kBudget);
  if (golden.status() != vm::Vm::Status::kHalted) {
    throw std::logic_error("workload '" + name + "' did not halt cleanly (status " +
                           std::to_string(static_cast<int>(golden.status())) + ")");
  }
  wl.clean_insns = golden.retired_count();
  wl.clean_output = golden.output();
  return wl;
}

}  // namespace

const std::vector<Workload>& all() {
  static const std::vector<Workload> workloads = [] {
    std::vector<Workload> list;
    list.push_back(build("bzip2", wl_bzip2_source()));
    list.push_back(build("gap", wl_gap_source()));
    list.push_back(build("gcc", wl_gcc_source()));
    list.push_back(build("gzip", wl_gzip_source()));
    list.push_back(build("mcf", wl_mcf_source()));
    list.push_back(build("parser", wl_parser_source()));
    list.push_back(build("vortex", wl_vortex_source()));
    return list;
  }();
  return workloads;
}

const std::vector<Workload>& extended() {
  static const std::vector<Workload> workloads = [] {
    std::vector<Workload> list;
    list.push_back(build("crafty", wl_crafty_source()));
    list.push_back(build("twolf", wl_twolf_source()));
    return list;
  }();
  return workloads;
}

const Workload& by_name(std::string_view name) {
  for (const auto& wl : all()) {
    if (wl.name == name) return wl;
  }
  for (const auto& wl : extended()) {
    if (wl.name == name) return wl;
  }
  throw std::out_of_range("unknown workload: " + std::string(name));
}

}  // namespace restore::workloads
