// gap-analog: computational group theory on permutations — repeated
// composition of byte permutations and cycle-structure analysis. Mirrors
// gap's indexed table walks and short data-dependent loops.
#include <numeric>
#include <sstream>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace restore::workloads {

namespace {

std::vector<u8> make_permutation(u64 seed, std::size_t n) {
  std::vector<u8> perm(n);
  std::iota(perm.begin(), perm.end(), u8{0});
  Rng rng(seed);
  for (std::size_t i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.below(i + 1)]);
  }
  return perm;
}

}  // namespace

std::string wl_gap_source() {
  constexpr int kPermSize = 64;
  constexpr int kRounds = 48;
  std::ostringstream out;
  out << R"(# gap-analog: permutation composition + cycle structure
main:
  li s0, )" << kRounds << R"(     # composition rounds
  li r1, 0                        # checksum

round_loop:
  beqz s0, analyse

  # r = p o q  (r[i] = p[q[i]])
  la t0, perm_q
  la t1, perm_p
  la t2, perm_r
  li t3, 0
compose:
  lbu t4, 0(t0)
  add t5, t1, t4
  lbu t6, 0(t5)
  sb t6, 0(t2)
  addi t0, t0, 1
  addi t2, t2, 1
  addi t3, t3, 1
  slti t7, t3, )" << kPermSize << R"(
  bnez t7, compose

  # p <- r, and fold r[0] into the checksum.
  la t0, perm_r
  la t1, perm_p
  li t3, 0
copy_back:
  lbu t4, 0(t0)
  sb t4, 0(t1)
  addi t0, t0, 1
  addi t1, t1, 1
  addi t3, t3, 1
  slti t7, t3, )" << kPermSize << R"(
  bnez t7, copy_back
  la t0, perm_r
  lbu t4, 0(t0)
  slli r1, r1, 1
  add r1, r1, t4

  addi s0, s0, -1
  j round_loop

analyse:
  # Cycle structure of the final permutation: for each unvisited start,
  # follow the cycle, marking visited, and fold cycle lengths into checksum.
  la s1, visited
  li t3, 0
clear_visited:
  sb zero, 0(s1)
  addi s1, s1, 1
  addi t3, t3, 1
  slti t7, t3, )" << kPermSize << R"(
  bnez t7, clear_visited

  li s2, 0            # start index
start_loop:
  la t0, visited
  add t0, t0, s2
  lbu t1, 0(t0)
  bnez t1, next_start
  # Walk the cycle beginning at s2.
  mv t2, s2           # current element
  li t3, 0            # cycle length
cycle_walk:
  la t4, visited
  add t4, t4, t2
  lbu t5, 0(t4)
  bnez t5, cycle_done
  li t5, 1
  sb t5, 0(t4)
  la t6, perm_p
  add t6, t6, t2
  lbu t2, 0(t6)
  addi t3, t3, 1
  j cycle_walk
cycle_done:
  # checksum = checksum*131 + length*64 + start
  li t8, 131
  mul r1, r1, t8
  slli t9, t3, 6
  add t9, t9, s2
  add r1, r1, t9
next_start:
  addi s2, s2, 1
  slti t7, s2, )" << kPermSize << R"(
  bnez t7, start_loop
  j __emit
)";
  out << detail::kChecksumEpilogue;
  out << ".data\n";
  out << "perm_p:\n" << detail::emit_bytes(make_permutation(0xA1, kPermSize));
  out << "perm_q:\n" << detail::emit_bytes(make_permutation(0xB2, kPermSize));
  out << "perm_r: .space " << kPermSize << "\n";
  out << "visited: .space " << kPermSize << "\n";
  return out.str();
}

}  // namespace restore::workloads
