// mcf-analog: Bellman-Ford shortest-path relaxation over an edge list.
// Mirrors mcf's network-simplex flavour: repeated sweeps over edge arrays
// with data-dependent updates and an early-exit convergence test.
#include <sstream>

#include "workloads/wl_util.hpp"
#include "workloads/workloads.hpp"

namespace restore::workloads {

namespace {

constexpr u32 kNodes = 64;
constexpr u32 kEdges = 288;

// Edge list as (src, dst, weight) triples. The graph is connected from node 0
// via a random spanning path plus random extra edges.
std::vector<u32> make_edges() {
  Rng rng(0x3CF3);
  std::vector<u32> triples;
  triples.reserve(kEdges * 3);
  // Spanning chain guarantees reachability (so distances are finite).
  for (u32 i = 1; i < kNodes; ++i) {
    triples.push_back(i - 1);
    triples.push_back(i);
    triples.push_back(static_cast<u32>(1 + rng.below(64)));
  }
  while (triples.size() < kEdges * 3) {
    const u32 src = static_cast<u32>(rng.below(kNodes));
    u32 dst = static_cast<u32>(rng.below(kNodes));
    if (dst == src) dst = (dst + 1) % kNodes;
    triples.push_back(src);
    triples.push_back(dst);
    triples.push_back(static_cast<u32>(1 + rng.below(250)));
  }
  return triples;
}

}  // namespace

std::string wl_mcf_source() {
  std::ostringstream out;
  out << R"(# mcf-analog: Bellman-Ford over an edge list
main:
  # dist[0] = 0; dist[i] = BIG for i > 0.
  la t0, dist
  sd zero, 0(t0)
  addi t0, t0, 8
  li t1, 0x3FFFFFFF
  li t2, 1
init_loop:
  sd t1, 0(t0)
  addi t0, t0, 8
  addi t2, t2, 1
  slti t3, t2, )" << kNodes << R"(
  bnez t3, init_loop

  li s0, 0            # round counter
round_loop:
  li s1, 0            # changed flag
  la s2, edges
  li s3, 0            # edge index
edge_loop:
  lwu t0, 0(s2)       # src
  lwu t1, 4(s2)       # dst
  lwu t2, 8(s2)       # weight
  la t3, dist
  slli t4, t0, 3
  add t4, t3, t4
  ld t5, 0(t4)        # dist[src]
  add t5, t5, t2      # candidate
  slli t6, t1, 3
  add t6, t3, t6
  ld t7, 0(t6)        # dist[dst]
  bge t5, t7, no_relax
  sd t5, 0(t6)
  li s1, 1
no_relax:
  addi s2, s2, 12
  addi s3, s3, 1
  slti t8, s3, )" << kEdges << R"(
  bnez t8, edge_loop

  addi s0, s0, 1
  beqz s1, converged
  slti t8, s0, )" << kNodes << R"(
  bnez t8, round_loop

converged:
  # checksum: fold all distances plus the round count.
  li r1, 0
  la t0, dist
  li t1, 0
sum_loop:
  ld t2, 0(t0)
  li t3, 31
  mul r1, r1, t3
  add r1, r1, t2
  addi t0, t0, 8
  addi t1, t1, 1
  slti t3, t1, )" << kNodes << R"(
  bnez t3, sum_loop
  slli t4, s0, 16
  add r1, r1, t4
  j __emit
)";
  out << detail::kChecksumEpilogue;
  out << ".data\n";
  out << ".align 8\n";
  out << "dist: .space " << (kNodes * 8) << "\n";
  out << ".align 4\n";
  out << "edges:\n" << detail::emit_words32(make_edges());
  return out.str();
}

}  // namespace restore::workloads
